// Benchmarks: one per paper table/figure (see DESIGN.md E1–E12) plus
// the design-choice ablations. Run all with:
//
//	go test -bench=. -benchmem
package locheat_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"locheat/internal/analysis"
	"locheat/internal/api"
	"locheat/internal/attack"
	"locheat/internal/backpressure"
	"locheat/internal/cheatercode"
	"locheat/internal/cluster"
	"locheat/internal/core"
	"locheat/internal/crawler"
	"locheat/internal/defense"
	"locheat/internal/device"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/nmea"
	"locheat/internal/obs"
	"locheat/internal/replica"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/stream"
	"locheat/internal/synth"
	"locheat/internal/trace"
	"locheat/internal/web"
)

// Shared fixtures, built once per bench binary.
var (
	benchOnce  sync.Once
	benchWorld *synth.World
	benchDB    *store.DB
)

func benchFixtures(b *testing.B) (*synth.World, *store.DB) {
	b.Helper()
	benchOnce.Do(func() {
		benchWorld = synth.Generate(synth.Config{Seed: 5, Users: 5000, Venues: 15000})
		benchDB = store.New()
		benchWorld.FillStore(benchDB)
	})
	return benchWorld, benchDB
}

func newBenchService(b *testing.B) (*lbsn.Service, *simclock.Simulated) {
	b.Helper()
	clock := simclock.NewSimulated(simclock.Epoch())
	return lbsn.New(lbsn.DefaultConfig(), clock, nil), clock
}

// BenchmarkE1SpoofedCheckin measures the spoofed check-in path per
// vector (E1, Figs 3.1/3.2).
func BenchmarkE1SpoofedCheckin(b *testing.B) {
	for _, method := range device.AllSpoofMethods() {
		b.Run(method.String(), func(b *testing.B) {
			svc, clock := newBenchService(b)
			sf, _ := geo.FindCity("San Francisco")
			u := svc.RegisterUser("bench", "", "Lincoln")
			// A venue ring so consecutive check-ins don't trip rules.
			venues := make([]lbsn.VenueID, 32)
			for i := range venues {
				loc := sf.Center.Destination(float64(i*11), float64(200+i*150))
				id, err := svc.AddVenue("B", "", "San Francisco", loc, nil)
				if err != nil {
					b.Fatal(err)
				}
				venues[i] = id
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := venues[i%len(venues)]
				view, _ := svc.Venue(v)
				clock.Advance(2 * time.Hour)
				if _, err := device.SpoofedCheckin(method, svc, u, v, view.Location); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2CheaterCode measures the rule engine per observation
// (E2, §2.3).
func BenchmarkE2CheaterCode(b *testing.B) {
	det := cheatercode.NewDetector(cheatercode.DefaultConfig())
	base := geo.Point{Lat: 35.08, Lon: -106.62}
	t0 := simclock.Epoch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := cheatercode.Observation{
			UserID:   uint64(i % 64),
			VenueID:  uint64(i),
			At:       t0.Add(time.Duration(i) * 10 * time.Minute),
			Location: base.Destination(float64(i%360), float64(i%1600)),
		}
		_ = det.Check(obs)
	}
}

// BenchmarkE3Crawler measures end-to-end HTTP crawl throughput at the
// paper's thread counts (E3, Fig 3.3). b.N counts crawled pages.
func BenchmarkE3Crawler(b *testing.B) {
	for _, workers := range []int{1, 5, 14} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			lab, err := core.NewLab(core.LabConfig{Scale: 0.05, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			baseURL, shutdown, err := lab.ServeLocal()
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = shutdown() }()
			maxID := uint64(lab.Service.UserCount())
			db := store.New()
			c := crawler.New(crawler.Config{BaseURL: baseURL, Workers: workers}, db)
			b.ResetTimer()
			crawled := 0
			for crawled < b.N {
				n := b.N - crawled
				if n > int(maxID) {
					n = int(maxID)
				}
				if _, err := c.Crawl(context.Background(), crawler.ModeUsers, 1, uint64(n)); err != nil {
					b.Fatal(err)
				}
				crawled += n
			}
		})
	}
}

// BenchmarkE4StarbucksQuery measures the Fig 3.4 LIKE query over the
// crawled venue table.
func BenchmarkE4StarbucksQuery(b *testing.B) {
	_, db := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := db.VenuesByNameLike("Starbucks")
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkE5VirtualTour measures planning + executing a 25-stop
// cheating tour (E5, Fig 3.5). One iteration = one full tour.
func BenchmarkE5VirtualTour(b *testing.B) {
	svc, clock := newBenchService(b)
	base := geo.Point{Lat: 35.0844, Lon: -106.6504}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			loc := base.Destination(0, float64(i)*300).Destination(90, float64(j)*300)
			if _, err := svc.AddVenue("Grid", "", "Albuquerque", loc, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		user := svc.RegisterUser("bench", "", "")
		venues, _, err := attack.PlanTour(svc, base, attack.RightTurnTour(24, 450))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := attack.NewCheater(svc, user, clock).
			Execute(attack.Plan(attack.DefaultPlannerConfig(), venues))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Denied != 0 {
			b.Fatalf("tour denied %d stops", rep.Denied)
		}
	}
}

// BenchmarkE6TargetAnalysis measures §3.4 venue-profile target
// selection over the full crawled store.
func BenchmarkE6TargetAnalysis(b *testing.B) {
	_, db := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = attack.OrphanSpecials(db)
		_ = attack.OpenSpecials(db)
		_ = attack.WeaklyHeldSpecials(db, 5)
	}
}

// BenchmarkE7RecentVsTotal measures the Fig 4.1 aggregation.
func BenchmarkE7RecentVsTotal(b *testing.B) {
	_, db := benchFixtures(b)
	db.DeriveStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := analysis.RecentVsTotal(db, 2000, 50); len(c) == 0 {
			b.Fatal("empty curve")
		}
	}
}

// BenchmarkE8BadgesVsTotal measures the Fig 4.2 aggregation.
func BenchmarkE8BadgesVsTotal(b *testing.B) {
	_, db := benchFixtures(b)
	db.DeriveStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := analysis.BadgesVsTotal(db, 14000, 250); len(c) == 0 {
			b.Fatal("empty curve")
		}
	}
}

// BenchmarkE9Marginals measures the §4.2 population statistics pass.
func BenchmarkE9Marginals(b *testing.B) {
	_, db := benchFixtures(b)
	db.DeriveStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := analysis.ComputeMarginals(db)
		if m.Users == 0 {
			b.Fatal("no users")
		}
	}
}

// BenchmarkE10Classify measures the full three-factor classifier scan
// (Figs 4.3/4.4).
func BenchmarkE10Classify(b *testing.B) {
	_, db := benchFixtures(b)
	db.DeriveStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := analysis.Classify(db, analysis.DefaultClassifierConfig()); len(s) == 0 {
			b.Fatal("no suspects")
		}
	}
}

// BenchmarkE11Defenses measures one verification per technique (§5.1).
func BenchmarkE11Defenses(b *testing.B) {
	venue := geo.Point{Lat: 37.7749, Lon: -122.4194}
	wifi := defense.NewWiFiVerification()
	wifi.RegisterRouter(venue, 100)
	verifiers := []defense.Verifier{
		&defense.DistanceBounding{Rng: rand.New(rand.NewSource(1))},
		defense.NewAddressMapping(),
		wifi,
	}
	dev := defense.Device{TrueLocation: venue.Destination(90, 60), IPCity: "San Francisco"}
	for _, v := range verifiers {
		b.Run(v.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = v.Verify(venue, dev)
			}
		})
	}
}

// BenchmarkE12AntiCrawl measures crawl attempts against a defended vs
// open site; b.N counts attempted pages.
func BenchmarkE12AntiCrawl(b *testing.B) {
	for _, hardened := range []bool{false, true} {
		name := "open"
		cfg := core.LabConfig{Scale: 0.05, Seed: 4}
		if hardened {
			name = "login-wall"
			cfg.WebOptions = []web.Option{web.WithLoginWall()}
		}
		b.Run(name, func(b *testing.B) {
			lab, err := core.NewLab(cfg)
			if err != nil {
				b.Fatal(err)
			}
			baseURL, shutdown, err := lab.ServeLocal()
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = shutdown() }()
			db := store.New()
			c := crawler.New(crawler.Config{BaseURL: baseURL, Workers: 8}, db)
			maxID := uint64(lab.Service.UserCount())
			b.ResetTimer()
			done := 0
			for done < b.N {
				n := b.N - done
				if n > int(maxID) {
					n = int(maxID)
				}
				if _, err := c.Crawl(context.Background(), crawler.ModeUsers, 1, uint64(n)); err != nil {
					b.Fatal(err)
				}
				done += n
			}
		})
	}
}

// BenchmarkAblationGridIndex compares the spatial index against the
// linear scan baseline for nearest-venue search (DESIGN.md ablation).
func BenchmarkAblationGridIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const n = 20000
	items := make(map[uint64]geo.Point, n)
	grid := geo.NewGridIndex(0.01)
	for i := uint64(1); i <= n; i++ {
		p := geo.Point{Lat: 30 + rng.Float64()*15, Lon: -120 + rng.Float64()*40}
		items[i] = p
		grid.Insert(i, p)
	}
	queries := make([]geo.Point, 256)
	for i := range queries {
		queries[i] = geo.Point{Lat: 30 + rng.Float64()*15, Lon: -120 + rng.Float64()*40}
	}
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, ok := grid.Nearest(queries[i%len(queries)]); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, ok := geo.NearestLinear(items, queries[i%len(queries)]); !ok {
				b.Fatal("miss")
			}
		}
	})
}

// BenchmarkAblationRecentListCap measures the check-in hot path as the
// venue recent-visitor list cap grows (the Fig 4.1 signal depends on
// this truncation).
func BenchmarkAblationRecentListCap(b *testing.B) {
	for _, cap := range []int{5, 10, 50, 200} {
		b.Run(fmt.Sprintf("cap-%d", cap), func(b *testing.B) {
			cfg := lbsn.DefaultConfig()
			cfg.RecentVisitorCap = cap
			clock := simclock.NewSimulated(simclock.Epoch())
			svc := lbsn.New(cfg, clock, nil)
			loc := geo.Point{Lat: 40.81, Lon: -96.70}
			venue, err := svc.AddVenue("Hot", "", "Lincoln", loc, nil)
			if err != nil {
				b.Fatal(err)
			}
			users := make([]lbsn.UserID, 512)
			for i := range users {
				users[i] = svc.RegisterUser("u", "", "")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock.Advance(61 * time.Minute)
				req := lbsn.CheckinRequest{UserID: users[i%len(users)], VenueID: venue, Reported: loc}
				if _, err := svc.CheckIn(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSpeedThreshold measures the detection trade-off
// sweep itself.
func BenchmarkAblationSpeedThreshold(b *testing.B) {
	limits := []float64{3, 5, 10, 15, 30, 60}
	for i := 0; i < b.N; i++ {
		rows := core.AblationSpeedThreshold(limits)
		if len(rows) != len(limits) {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkAPICheckin measures the developer-API JSON check-in path
// end to end over HTTP (§3.1 vector 3 at scale).
func BenchmarkAPICheckin(b *testing.B) {
	svc, clock := newBenchService(b)
	loc := geo.Point{Lat: 37.7749, Lon: -122.4194}
	venues := make([]lbsn.VenueID, 64)
	for i := range venues {
		id, err := svc.AddVenue("B", "", "SF", loc.Destination(float64(i*5), float64(200+i*120)), nil)
		if err != nil {
			b.Fatal(err)
		}
		venues[i] = id
	}
	user := svc.RegisterUser("bench", "", "")
	srv := api.NewServer(svc)
	srv.IssueKey("bench-key")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := api.NewClient(ts.URL, "bench-key")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := venues[i%len(venues)]
		view, _ := svc.Venue(v)
		clock.Advance(2 * time.Hour)
		if _, err := client.CheckIn(uint64(user), uint64(v), view.Location); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamPipeline measures online-detection throughput: events
// published into the internal/stream pipeline and drained through all
// four detector stages, at 1, 4, and GOMAXPROCS shards. Reported
// events/sec counts fully processed events.
func BenchmarkStreamPipeline(b *testing.B) {
	shardCounts := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		shardCounts = append(shardCounts, g)
	}
	// Pre-build a reusable event ring: many users, a venue ring per
	// user, timestamps pre-spread so detector state stays warm but
	// bounded.
	const ringSize = 1 << 14
	base := geo.Point{Lat: 40.8136, Lon: -96.7026}
	events := make([]lbsn.CheckinEvent, ringSize)
	t0 := simclock.Epoch()
	for i := range events {
		loc := base.Destination(float64(i%360), float64(200+i%1600))
		events[i] = lbsn.CheckinEvent{
			UserID:   lbsn.UserID(i%1024 + 1),
			VenueID:  lbsn.VenueID(i%4096 + 1),
			At:       t0.Add(time.Duration(i) * 37 * time.Second),
			Venue:    loc,
			Reported: loc,
			Accepted: true,
		}
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			p := stream.New(stream.Config{
				Shards:      shards,
				ShardBuffer: 1 << 14,
				Clock:       simclock.NewSimulated(t0),
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := events[i%ringSize]
				// Advance event time across ring reuse so windows and
				// dedupe keys keep moving forward.
				ev.At = ev.At.Add(time.Duration(i/ringSize) * 7 * 24 * time.Hour)
				for !p.Publish(ev) {
					// Full shard queue: yield to the workers.
					runtime.Gosched()
				}
			}
			p.Close() // drain: throughput counts processed events
			elapsed := b.Elapsed()
			if st := p.Stats(); st.Processed != uint64(b.N) {
				b.Fatalf("processed %d of %d", st.Processed, b.N)
			}
			if secs := elapsed.Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "events/sec")
			}
		})
	}
}

// BenchmarkStreamPipelineBatch measures the batched hot path end to
// end: PublishBatch feeding the shard rings in chunks, the workers
// draining stage-major. StatsWindow is one hour so the measurement is
// detection work, not window-bucket churn from the synthetic stream's
// compressed timeline. The steady-state target is zero allocs/op on
// the publish side at chunk >= 32.
func BenchmarkStreamPipelineBatch(b *testing.B) {
	const ringSize = 1 << 14
	base := geo.Point{Lat: 40.8136, Lon: -96.7026}
	events := make([]lbsn.CheckinEvent, ringSize)
	t0 := simclock.Epoch()
	for i := range events {
		loc := base.Destination(float64(i%360), float64(200+i%1600))
		events[i] = lbsn.CheckinEvent{
			UserID:   lbsn.UserID(i%1024 + 1),
			VenueID:  lbsn.VenueID(i%4096 + 1),
			At:       t0.Add(time.Duration(i) * 37 * time.Second),
			Venue:    loc,
			Reported: loc,
			Accepted: true,
		}
	}
	for _, chunk := range []int{32, 256} {
		b.Run(fmt.Sprintf("chunk-%d", chunk), func(b *testing.B) {
			p := stream.New(stream.Config{
				Shards:      runtime.GOMAXPROCS(0),
				ShardBuffer: 1 << 14,
				StatsWindow: time.Hour,
				Clock:       simclock.NewSimulated(t0),
			})
			pending := make([]lbsn.CheckinEvent, 0, chunk)
			retry := make([]lbsn.CheckinEvent, 0, chunk)
			var rejected []int
			reject := func(i int) { rejected = append(rejected, i) }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; {
				pending = pending[:0]
				for k := 0; k < chunk && i+k < b.N; k++ {
					ev := events[(i+k)%ringSize]
					ev.At = ev.At.Add(time.Duration((i+k)/ringSize) * 7 * 24 * time.Hour)
					pending = append(pending, ev)
				}
				i += len(pending)
				// Full shard rings reject the run's tail; re-offer those
				// events so throughput counts every event exactly once.
				for {
					rejected = rejected[:0]
					p.PublishBatch(pending, reject)
					if len(rejected) == 0 {
						break
					}
					retry = retry[:0]
					for _, idx := range rejected {
						retry = append(retry, pending[idx])
					}
					pending, retry = retry, pending
					runtime.Gosched()
				}
			}
			p.Close() // drain: throughput counts processed events
			elapsed := b.Elapsed()
			if st := p.Stats(); st.Processed != uint64(b.N) {
				b.Fatalf("processed %d of %d", st.Processed, b.N)
			}
			if secs := elapsed.Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "events/sec")
			}
		})
	}
}

// journalBenchAlert builds one representative alert for the journal
// benchmarks.
func journalBenchAlert(i int) store.Alert {
	return store.Alert{
		Seq:      uint64(i),
		Detector: stream.StageSpeed,
		UserID:   uint64(i%4096 + 1),
		VenueID:  uint64(i%1024 + 1),
		At:       simclock.Epoch().Add(time.Duration(i) * time.Second),
		Detail:   "impossible travel: 2230462 m in 600 s = 3717.4 m/s exceeds 15.0 m/s",
	}
}

// BenchmarkAlertJournalAppend measures the durable alert path per
// record across the two segment record formats (v1 JSON vs v2 binary)
// and several fsync batch sizes — the cost the pipeline pays to make
// an alert survive a restart, and what the binary codec shaves off it.
func BenchmarkAlertJournalAppend(b *testing.B) {
	for _, codec := range []struct {
		name   string
		format store.JournalFormat
	}{
		{"v1json", store.JournalFormatJSON},
		{"v2bin", store.JournalFormatBinary},
		{"v3table", store.JournalFormatBinaryTable},
	} {
		for _, fsyncEvery := range []int{1, 64, 1024} {
			b.Run(fmt.Sprintf("%s/fsync-%d", codec.name, fsyncEvery), func(b *testing.B) {
				j, err := store.OpenAlertJournal(store.JournalConfig{
					Dir:        b.TempDir(),
					FsyncEvery: fsyncEvery,
					Format:     codec.format,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer j.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := j.Append(journalBenchAlert(i)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "alerts/sec")
				}
			})
		}
	}
}

// BenchmarkAlertJournalAppendBatch measures the batched durable path:
// AppendBatch landing pooled pipeline batches as one framed write per
// segment, across the binary record formats. allocs/op is per alert —
// the steady-state target is zero.
func BenchmarkAlertJournalAppendBatch(b *testing.B) {
	for _, codec := range []struct {
		name   string
		format store.JournalFormat
	}{
		{"v2bin", store.JournalFormatBinary},
		{"v3table", store.JournalFormatBinaryTable},
	} {
		for _, size := range []int{64, 1024} {
			b.Run(fmt.Sprintf("%s/batch-%d", codec.name, size), func(b *testing.B) {
				j, err := store.OpenAlertJournal(store.JournalConfig{
					Dir:        b.TempDir(),
					FsyncEvery: 1024,
					Format:     codec.format,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer j.Close()
				batch := make([]store.Alert, size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; {
					n := size
					if rem := b.N - i; rem < n {
						n = rem
					}
					for k := 0; k < n; k++ {
						batch[k] = journalBenchAlert(i + k)
					}
					if _, err := j.AppendBatch(batch[:n]); err != nil {
						b.Fatal(err)
					}
					i += n
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "alerts/sec")
				}
			})
		}
	}
}

// BenchmarkReplay measures journal replay-on-open — the restart cost of
// serving pre-restart alert history. One iteration opens (and fully
// replays) a 10k-alert journal.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	j, err := store.OpenAlertJournal(store.JournalConfig{Dir: dir, FsyncEvery: 1024})
	if err != nil {
		b.Fatal(err)
	}
	const alerts = 10_000
	for i := 0; i < alerts; i++ {
		if err := j.Append(journalBenchAlert(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := store.OpenAlertJournal(store.JournalConfig{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if st := j.Stats(); st.Replayed != alerts {
			b.Fatalf("replayed %d of %d", st.Replayed, alerts)
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*alerts/secs, "alerts/sec")
	}
}

// benchLateHandler lets the HTTP server exist before the cluster node
// whose handler it serves (the node wants the server URL as its
// address).
type benchLateHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (l *benchLateHandler) set(h http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h = h
}

func (l *benchLateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	h.ServeHTTP(w, r)
}

// BenchmarkClusterForward measures the cross-node ingest hop: events
// ingested at a non-owner node, batched over loopback HTTP into the
// owner's pipeline. Two knobs matter: the batch size (how many events
// share one POST) and the wire codec (negotiated binary vs the JSON a
// mixed-version cluster falls back to).
func BenchmarkClusterForward(b *testing.B) {
	for _, codec := range []string{"json", "bin"} {
		for _, batchSize := range []int{1, 32, 256} {
			b.Run(fmt.Sprintf("%s/batch-%d", codec, batchSize), func(b *testing.B) {
				t0 := simclock.Epoch()
				late := &benchLateHandler{}
				srvB := httptest.NewServer(late)
				defer srvB.Close()
				peers := []cluster.Member{
					{ID: "a", Addr: "http://unused"},
					{ID: "b", Addr: srvB.URL},
				}

				pipeB := stream.New(stream.Config{Shards: 4, ShardBuffer: 1 << 14, Clock: simclock.NewSimulated(t0)})
				defer pipeB.Close()
				svcB := lbsn.New(lbsn.DefaultConfig(), simclock.NewSimulated(t0), nil)
				nodeB, err := cluster.NewNode(svcB, pipeB, cluster.Config{
					Self: peers[1], Peers: peers,
					// A JSON-pinned receiver stands in for the pre-upgrade
					// baseline; the sender negotiates down to JSON.
					DisableBinaryWire: codec == "json",
				})
				if err != nil {
					b.Fatal(err)
				}
				late.set(nodeB.Handler())

				pipeA := stream.New(stream.Config{Shards: 1, Clock: simclock.NewSimulated(t0)})
				defer pipeA.Close()
				svcA := lbsn.New(lbsn.DefaultConfig(), simclock.NewSimulated(t0), nil)
				nodeA, err := cluster.NewNode(svcA, pipeA, cluster.Config{
					Self:    peers[0],
					Peers:   peers,
					Forward: cluster.ForwarderConfig{BatchSize: batchSize, QueueSize: 1 << 14},
				})
				if err != nil {
					b.Fatal(err)
				}
				// One heartbeat round teaches a what codec b takes.
				nodeA.Tick()

				// Events only for users the ring assigns to b: every Ingest at
				// a takes the forwarding path.
				var owned []uint64
				for uid := uint64(1); len(owned) < 512; uid++ {
					if nodeA.Owner(uid) == "b" {
						owned = append(owned, uid)
					}
				}
				base := geo.Point{Lat: 40.8136, Lon: -96.7026}
				const ringSize = 1 << 12
				events := make([]lbsn.CheckinEvent, ringSize)
				for i := range events {
					loc := base.Destination(float64(i%360), float64(200+i%1600))
					events[i] = lbsn.CheckinEvent{
						UserID:   lbsn.UserID(owned[i%len(owned)]),
						VenueID:  lbsn.VenueID(i%4096 + 1),
						At:       t0.Add(time.Duration(i) * 41 * time.Second),
						Venue:    loc,
						Reported: loc,
						Accepted: true,
					}
				}

				// Published is cumulative across the harness's b.N ramp-up
				// runs; measure this run's delivery against its own baseline
				// (otherwise the drain wait passes vacuously, the enqueue-only
				// cost looks like the per-event cost, and b.N explodes).
				baseline := pipeB.Stats().Published
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := events[i%ringSize]
					ev.At = ev.At.Add(time.Duration(i/ringSize) * 7 * 24 * time.Hour)
					for !nodeA.Ingest(ev) {
						// Full forward queue: back off so the sender gets the
						// CPU (each refused try counts a drop — that is the
						// contract — so the producer, not the hop, is the
						// bottleneck here by design).
						time.Sleep(20 * time.Microsecond)
					}
				}
				// Throughput counts delivered events: drain the hop completely.
				nodeA.FlushForwards()
				deadline := time.Now().Add(time.Minute)
				for pipeB.Stats().Published-baseline < uint64(b.N) {
					if time.Now().After(deadline) {
						b.Fatalf("owner received %d of %d", pipeB.Stats().Published-baseline, b.N)
					}
					runtime.Gosched()
				}
				elapsed := b.Elapsed()
				b.StopTimer()
				if st := nodeA.Status(); st.Forward.Errors > 0 || st.Forward.RemoteDropped > 0 {
					b.Fatalf("forwarding lost events: %+v", st.Forward)
				}
				if secs := elapsed.Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "events/sec")
				}
			})
		}
	}
}

// BenchmarkReplicaShip measures journal replication end to end: alerts
// appended to a primary journal, shipped in batches over loopback HTTP
// to a follower node's replica log (durable apply + cursor persist),
// in both wire codecs. Reported alerts/sec counts alerts ACKED by the
// follower — the rate at which durability actually advances, not the
// enqueue rate.
func BenchmarkReplicaShip(b *testing.B) {
	for _, codec := range []string{"json", "bin"} {
		for _, batchSize := range []int{64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/batch-%d", codec, batchSize), func(b *testing.B) {
				t0 := simclock.Epoch()
				late := &benchLateHandler{}
				srvB := httptest.NewServer(late)
				defer srvB.Close()
				peers := []cluster.Member{
					{ID: "a", Addr: "http://unused"},
					{ID: "b", Addr: srvB.URL},
				}

				// Follower node b: replica set enabled, no shipping of its
				// own. JSON-pinned for the pre-upgrade baseline runs.
				pipeB := stream.New(stream.Config{Shards: 1, Clock: simclock.NewSimulated(t0)})
				defer pipeB.Close()
				svcB := lbsn.New(lbsn.DefaultConfig(), simclock.NewSimulated(t0), nil)
				nodeB, err := cluster.NewNode(svcB, pipeB, cluster.Config{
					Self: peers[1], Peers: peers,
					Replica:           cluster.ReplicaOptions{Dir: b.TempDir()},
					DisableBinaryWire: codec == "json",
				})
				if err != nil {
					b.Fatal(err)
				}
				defer nodeB.Shutdown()
				late.set(nodeB.Handler())

				// Primary node a: journal-backed pipeline shipping to b.
				journal, err := store.OpenAlertJournal(store.JournalConfig{
					Dir: b.TempDir(), FsyncEvery: 1024, SegmentBytes: 4 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer journal.Close()
				pipeA := stream.New(stream.Config{Shards: 1, Clock: simclock.NewSimulated(t0), Store: journal})
				defer pipeA.Close()
				svcA := lbsn.New(lbsn.DefaultConfig(), simclock.NewSimulated(t0), nil)
				nodeA, err := cluster.NewNode(svcA, pipeA, cluster.Config{
					Self: peers[0], Peers: peers,
					Replica: cluster.ReplicaOptions{
						Dir: b.TempDir(), Factor: 2,
						ShipBatch: batchSize, ShipInterval: time.Millisecond,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				// Shut the shipper (and broadcaster) down with the sub-bench,
				// or its retry loop keeps hammering the closed follower for
				// the rest of the benchmark binary's run.
				defer nodeA.Shutdown()
				// One heartbeat round teaches a what codec b takes.
				nodeA.Tick()

				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := journal.Append(journalBenchAlert(i)); err != nil {
						b.Fatal(err)
					}
				}
				// Durability means acked: wait for the follower's cursor to
				// cover every append. Poll gently — Status() snapshots the
				// whole node and a hot spin would measure the pollster, not
				// the pipeline.
				deadline := time.Now().Add(time.Minute)
				target := journal.NextIndex()
				for {
					st := nodeA.Status().Replication
					if len(st.Followers) == 1 && st.Followers[0].Synced && st.Followers[0].Cursor >= target {
						break
					}
					if time.Now().After(deadline) {
						b.Fatalf("follower never caught up: %+v", st)
					}
					time.Sleep(200 * time.Microsecond)
				}
				elapsed := b.Elapsed()
				b.StopTimer()
				if secs := elapsed.Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "alerts/sec")
				}
			})
		}
	}
}

// BenchmarkOutboxReplay measures the lossless-forwarding recovery
// path: spill b.N events to the on-disk outbox, then drain them back
// through delivery. Reported events/sec counts drained events (spill
// cost is measured too, under the same timer — the path is
// spill+replay end to end).
func BenchmarkOutboxReplay(b *testing.B) {
	r, err := replica.OpenOutbox(replica.OutboxConfig{
		Dir:             b.TempDir(),
		MaxBytesPerPeer: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 0, 256)
	payload = append(payload, `{"user":42,"venue":7,"at":"2011-06-20T12:00:00Z","venueLoc":{"lat":37.77,"lon":-122.42},"reported":{"lat":37.77,"lon":-122.42},"accepted":true,"fwdSeq":12345}`...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Append("peer", payload) {
			b.Fatal("spill refused")
		}
	}
	delivered, requeued := r.Drain("peer", func([]byte) bool { return true })
	b.StopTimer()
	if delivered != b.N || requeued != 0 {
		b.Fatalf("drained %d/%d, requeued %d", delivered, b.N, requeued)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "events/sec")
	}
}

// BenchmarkNMEARoundTrip measures sentence generation + parsing, the
// per-fix cost of the vector-2 receiver simulation.
func BenchmarkNMEARoundTrip(b *testing.B) {
	p := geo.Point{Lat: 37.7749, Lon: -122.4194}
	at := simclock.Epoch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := nmea.FormatGGA(p, at, 9)
		if _, err := nmea.Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreDiff measures snapshot comparison, the E14 hot path.
func BenchmarkStoreDiff(b *testing.B) {
	w, db := benchFixtures(b)
	_ = w
	newer := db.Clone()
	// Perturb ~1% of relations.
	for i := uint64(1); i <= 200; i++ {
		newer.AddRecentCheckin(i, 100000+i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := store.ComputeDiff(db, newer)
		if len(d.NewRelations) == 0 {
			b.Fatal("no diff")
		}
	}
}

// BenchmarkRapidBitExchange measures one full 20-round
// distance-bounding protocol run.
func BenchmarkRapidBitExchange(b *testing.B) {
	cfg := defense.RapidBitConfig{Rounds: 20}
	rng := rand.New(rand.NewSource(1))
	prover := defense.Prover{DistanceMeters: 40}
	for i := 0; i < b.N; i++ {
		if res := defense.RunRapidBitExchange(cfg, prover, rng); !res.Accepted {
			b.Fatal("honest prover rejected")
		}
	}
}

// BenchmarkWorldGeneration measures synthetic world generation, the
// setup cost every experiment pays.
func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := synth.Generate(synth.Config{Seed: int64(i), Users: 2000, Venues: 6000})
		if len(w.Users) != 2000 {
			b.Fatal("bad world")
		}
	}
}

// BenchmarkObsOverheadJournalAppend measures what the telemetry tier
// costs the durable alert path: the same v2-binary fsync-64 append,
// with and without a registry attached. "off" exercises the nil-handle
// fast path every unobserved deployment takes; the delta is the price
// of the append/fsync histograms and journal counters.
func BenchmarkObsOverheadJournalAppend(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			cfg := store.JournalConfig{Dir: b.TempDir(), FsyncEvery: 64}
			if mode == "on" {
				cfg.Obs = obs.NewRegistry()
			}
			j, err := store.OpenAlertJournal(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.Append(journalBenchAlert(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "alerts/sec")
			}
		})
	}
}

// BenchmarkObsOverheadStreamPipeline measures the telemetry cost of the
// detection hot path end to end: publish → stage chain → (no store),
// with and without the per-stage latency histograms, detection-latency
// stamping and read-through counters armed. Throughput counts processed
// events, so the delta covers both the Publish-side stamp and the
// worker-side stage timing.
func BenchmarkObsOverheadStreamPipeline(b *testing.B) {
	base := geo.Point{Lat: 40.8136, Lon: -96.7026}
	t0 := simclock.Epoch()
	const ringSize = 1 << 12
	events := make([]lbsn.CheckinEvent, ringSize)
	for i := range events {
		loc := base.Destination(float64(i%360), float64(200+i%1600))
		events[i] = lbsn.CheckinEvent{
			UserID:   lbsn.UserID(i%2048 + 1),
			VenueID:  lbsn.VenueID(i%4096 + 1),
			At:       t0.Add(time.Duration(i) * 41 * time.Second),
			Venue:    loc,
			Reported: loc,
			Accepted: true,
		}
	}
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			cfg := stream.Config{Shards: 4, ShardBuffer: 1 << 14, Clock: simclock.NewSimulated(t0)}
			if mode == "on" {
				cfg.Obs = obs.NewRegistry()
			}
			p := stream.New(cfg)
			defer p.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := events[i%ringSize]
				ev.At = ev.At.Add(time.Duration(i/ringSize) * 7 * 24 * time.Hour)
				for !p.Publish(ev) {
					runtime.Gosched()
				}
			}
			for p.Stats().Processed < uint64(b.N) {
				runtime.Gosched()
			}
			elapsed := b.Elapsed()
			b.StopTimer()
			if secs := elapsed.Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "events/sec")
			}
		})
	}
}

// BenchmarkTraceOverhead measures what the tracing tier costs the two
// hot paths it instruments.
//
// pipeline/*: the batched publish → stage chain path of
// BenchmarkStreamPipelineBatch (chunk 256). "off" has no tracer
// compiled into the pipeline; "sample-0" has the tracer armed at rate
// 0 — the production default, whose contract is zero allocs/op and no
// measurable cost on untraced events; "sample-1" traces every event,
// the worst case (span recording plus recorder retention for each).
//
// forward/*: the cross-node hop of BenchmarkClusterForward
// (bin/batch-256). "off" is the untraced baseline; "sample-1" traces
// every event through the bin/2 wire — ID propagation, hop spans on
// the origin, Begin/stage spans on the owner.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("pipeline", func(b *testing.B) {
		const ringSize = 1 << 14
		const chunk = 256
		base := geo.Point{Lat: 40.8136, Lon: -96.7026}
		events := make([]lbsn.CheckinEvent, ringSize)
		t0 := simclock.Epoch()
		for i := range events {
			loc := base.Destination(float64(i%360), float64(200+i%1600))
			events[i] = lbsn.CheckinEvent{
				UserID:   lbsn.UserID(i%1024 + 1),
				VenueID:  lbsn.VenueID(i%4096 + 1),
				At:       t0.Add(time.Duration(i) * 37 * time.Second),
				Venue:    loc,
				Reported: loc,
				Accepted: true,
			}
		}
		for _, mode := range []struct {
			name string
			rate float64
			on   bool
		}{
			{"off", 0, false},
			{"sample-0", 0, true},
			{"sample-1", 1, true},
		} {
			b.Run(mode.name, func(b *testing.B) {
				cfg := stream.Config{
					Shards:      runtime.GOMAXPROCS(0),
					ShardBuffer: 1 << 14,
					StatsWindow: time.Hour,
					Clock:       simclock.NewSimulated(t0),
				}
				if mode.on {
					cfg.Tracer = trace.New(trace.Config{Node: "bench", SampleRate: mode.rate})
				}
				p := stream.New(cfg)
				pending := make([]lbsn.CheckinEvent, 0, chunk)
				retry := make([]lbsn.CheckinEvent, 0, chunk)
				var rejected []int
				reject := func(i int) { rejected = append(rejected, i) }
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; {
					pending = pending[:0]
					for k := 0; k < chunk && i+k < b.N; k++ {
						ev := events[(i+k)%ringSize]
						ev.At = ev.At.Add(time.Duration((i+k)/ringSize) * 7 * 24 * time.Hour)
						pending = append(pending, ev)
					}
					i += len(pending)
					for {
						rejected = rejected[:0]
						p.PublishBatch(pending, reject)
						if len(rejected) == 0 {
							break
						}
						retry = retry[:0]
						for _, idx := range rejected {
							retry = append(retry, pending[idx])
						}
						pending, retry = retry, pending
						runtime.Gosched()
					}
				}
				p.Close()
				elapsed := b.Elapsed()
				if st := p.Stats(); st.Processed != uint64(b.N) {
					b.Fatalf("processed %d of %d", st.Processed, b.N)
				}
				if secs := elapsed.Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "events/sec")
				}
			})
		}
	})

	b.Run("forward", func(b *testing.B) {
		for _, mode := range []struct {
			name string
			rate float64
		}{
			{"off", 0},
			{"sample-1", 1},
		} {
			b.Run(mode.name, func(b *testing.B) {
				t0 := simclock.Epoch()
				late := &benchLateHandler{}
				srvB := httptest.NewServer(late)
				defer srvB.Close()
				peers := []cluster.Member{
					{ID: "a", Addr: "http://unused"},
					{ID: "b", Addr: srvB.URL},
				}

				var trA, trB *trace.Tracer
				if mode.rate > 0 {
					trA = trace.New(trace.Config{Node: "a", SampleRate: mode.rate})
					trB = trace.New(trace.Config{Node: "b", SampleRate: mode.rate})
				}
				pipeB := stream.New(stream.Config{
					Shards: 4, ShardBuffer: 1 << 14,
					Clock: simclock.NewSimulated(t0), Tracer: trB,
				})
				defer pipeB.Close()
				svcB := lbsn.New(lbsn.DefaultConfig(), simclock.NewSimulated(t0), nil)
				nodeB, err := cluster.NewNode(svcB, pipeB, cluster.Config{
					Self: peers[1], Peers: peers, Tracer: trB,
				})
				if err != nil {
					b.Fatal(err)
				}
				late.set(nodeB.Handler())

				pipeA := stream.New(stream.Config{Shards: 1, Clock: simclock.NewSimulated(t0), Tracer: trA})
				defer pipeA.Close()
				svcA := lbsn.New(lbsn.DefaultConfig(), simclock.NewSimulated(t0), nil)
				nodeA, err := cluster.NewNode(svcA, pipeA, cluster.Config{
					Self:    peers[0],
					Peers:   peers,
					Forward: cluster.ForwarderConfig{BatchSize: 256, QueueSize: 1 << 14},
					Tracer:  trA,
				})
				if err != nil {
					b.Fatal(err)
				}
				nodeA.Tick()

				var owned []uint64
				for uid := uint64(1); len(owned) < 512; uid++ {
					if nodeA.Owner(uid) == "b" {
						owned = append(owned, uid)
					}
				}
				base := geo.Point{Lat: 40.8136, Lon: -96.7026}
				const ringSize = 1 << 12
				events := make([]lbsn.CheckinEvent, ringSize)
				for i := range events {
					loc := base.Destination(float64(i%360), float64(200+i%1600))
					events[i] = lbsn.CheckinEvent{
						UserID:   lbsn.UserID(owned[i%len(owned)]),
						VenueID:  lbsn.VenueID(i%4096 + 1),
						At:       t0.Add(time.Duration(i) * 41 * time.Second),
						Venue:    loc,
						Reported: loc,
						Accepted: true,
					}
				}

				baseline := pipeB.Stats().Published
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := events[i%ringSize]
					ev.At = ev.At.Add(time.Duration(i/ringSize) * 7 * 24 * time.Hour)
					for !nodeA.Ingest(ev) {
						time.Sleep(20 * time.Microsecond)
					}
				}
				nodeA.FlushForwards()
				deadline := time.Now().Add(time.Minute)
				for pipeB.Stats().Published-baseline < uint64(b.N) {
					if time.Now().After(deadline) {
						b.Fatalf("owner received %d of %d", pipeB.Stats().Published-baseline, b.N)
					}
					runtime.Gosched()
				}
				elapsed := b.Elapsed()
				b.StopTimer()
				if st := nodeA.Status(); st.Forward.Errors > 0 || st.Forward.RemoteDropped > 0 {
					b.Fatalf("forwarding lost events: %+v", st.Forward)
				}
				if secs := elapsed.Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "events/sec")
				}
			})
		}
	})
}

// BenchmarkObsScrape measures one full /metrics render over a registry
// populated like a busy node's — the cost a Prometheus scrape interval
// imposes on the daemon.
func BenchmarkObsScrape(b *testing.B) {
	reg := obs.NewRegistry()
	cfg := stream.Config{Shards: 4, Clock: simclock.NewSimulated(simclock.Epoch()), Obs: reg}
	p := stream.New(cfg)
	defer p.Close()
	h := reg.Histogram("locheat_detection_latency_seconds_bench", "bench fill", obs.Seconds)
	for i := 0; i < 100_000; i++ {
		h.Observe(int64(i) * 1000)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := reg.WritePrometheus(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if buf.Len() == 0 {
		b.Fatal("empty scrape")
	}
}

// BenchmarkAdmissionOverhead pins the admission controller's per-
// request cost at the API ingest edge — the contract that lets it sit
// on the hot path unconditionally. "nil" is the detached baseline
// (admission disabled), "unsaturated" the normal-operation fast path
// (Classify fingerprint probe + one atomic severity load), "engaged"
// the full-saturation path where every Normal decision sheds and
// computes a Retry-After.
func BenchmarkAdmissionOverhead(b *testing.B) {
	run := func(b *testing.B, a *backpressure.Admission) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u, v := uint64(i), uint64(i%4096)
			a.Admit(a.Classify(u, v, false))
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "checks/sec")
		}
	}
	depth := 0
	newAdm := func() *backpressure.Admission {
		mon := backpressure.NewMonitor(backpressure.Stage{
			Name:   "stream",
			Sample: func() (int, int) { return depth, 100 },
		})
		return backpressure.NewAdmission(backpressure.AdmissionConfig{Monitor: mon, Interval: -1})
	}
	b.Run("nil", func(b *testing.B) { run(b, nil) })
	b.Run("unsaturated", func(b *testing.B) {
		depth = 0
		a := newAdm()
		defer a.Close()
		a.Tick()
		run(b, a)
	})
	b.Run("engaged", func(b *testing.B) {
		depth = 200
		a := newAdm()
		defer a.Close()
		for i := 0; i < 20; i++ {
			a.Tick()
		}
		if !a.Saturated() {
			b.Fatal("controller failed to engage")
		}
		run(b, a)
	})
}
