#!/usr/bin/env sh
# Soak gate: boot a 3-node lbsnd cluster, drive it with cmd/loadgen
# (benign open-loop traffic inside the detection envelope plus
# compressed attack cohorts), and fail on any report violation —
# critical-priority shed, detection-latency p99 breach, silent drops,
# or an unbounded post-traffic drain. CI runs this scaled down
# (SOAK_USERS=50000, SOAK_DURATION=60s); the full million-user run is
# the same script with the knobs turned up.
#
# SOAK_CHAOS=1 turns the soak into the elastic drill: the nodes boot
# with -chaos (mounting the fault-injection surface), and while the
# load runs the script joins a 4th node via the gossip handshake
# (~25% of the window), kill -9s n2 (~60%), partitions n3 from the
# survivors (~75%) and heals it (~85%) — the partition window sits
# inside the suspect phase of the failure detector (fail 3s, suspect
# +6s at default 1s heartbeats), so healing must cost zero rebalances.
# The loadgen gate then also requires full post-rebalance recall: an
# attacker lost to handoff or re-replication fails the run.
#
# Tunables (env):
#   SOAK_USERS      world scale                     (default 50000)
#   SOAK_DURATION   traffic window                  (default 60s)
#   SOAK_RATE       benign check-ins/sec            (default 100)
#   SOAK_ATTACKERS  attackers per cohort            (default 8)
#   SOAK_TIME_SCALE attack time compression         (default 600)
#   SOAK_MAX_P99    detection-latency gate          (default 50ms)
#   SOAK_SEED       world seed                      (default 42)
#   SOAK_OUT        JSON report path                (default soak_report.json)
#   SOAK_CHAOS      1 = run the membership drill    (default 0)
set -eu

USERS="${SOAK_USERS:-50000}"
DURATION="${SOAK_DURATION:-60s}"
RATE="${SOAK_RATE:-100}"
ATTACKERS="${SOAK_ATTACKERS:-8}"
TIME_SCALE="${SOAK_TIME_SCALE:-600}"
MAX_P99="${SOAK_MAX_P99:-50ms}"
SEED="${SOAK_SEED:-42}"
OUT="${SOAK_OUT:-soak_report.json}"
CHAOS="${SOAK_CHAOS:-0}"
API_KEY=soak

CHAOS_FLAG=""
if [ "$CHAOS" = 1 ]; then
    CHAOS_FLAG="-chaos"
    # The choreography schedules against seconds; accept 90 or 90s.
    case "$DURATION" in
        *m*|*h*) echo "soak: SOAK_CHAOS needs SOAK_DURATION in seconds (got $DURATION)" >&2; exit 1 ;;
    esac
    DUR_S="${DURATION%s}"
fi

WORK="$(mktemp -d)"
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "soak: building lbsnd + loadgen"
go build -o "$WORK/lbsnd" ./cmd/lbsnd
go build -o "$WORK/loadgen" ./cmd/loadgen

# Three nodes: public API on 1809x, internal cluster surface on 1909x.
PEERS="n1=http://127.0.0.1:19091,n2=http://127.0.0.1:19092,n3=http://127.0.0.1:19093"
TARGETS="http://127.0.0.1:18091,http://127.0.0.1:18092,http://127.0.0.1:18093"
for i in 1 2 3; do
    mkdir -p "$WORK/journal-n$i"
    "$WORK/lbsnd" \
        -users "$USERS" -seed "$SEED" -api-key "$API_KEY" \
        -addr "127.0.0.1:1809$i" \
        -cluster-node "n$i" -cluster-peers "$PEERS" \
        -cluster-listen "127.0.0.1:1909$i" \
        -journal-dir "$WORK/journal-n$i" -replica-factor 2 \
        $CHAOS_FLAG \
        >"$WORK/n$i.log" 2>&1 &
    PIDS="$PIDS $!"
    eval "N${i}_PID=$!"
done

echo "soak: waiting for readiness ($USERS users per node)"
for i in 1 2 3; do
    ok=0
    for _ in $(seq 1 150); do
        if curl -fsS "http://127.0.0.1:1809$i/readyz" >/dev/null 2>&1; then
            ok=1
            break
        fi
        sleep 0.4
    done
    if [ "$ok" != 1 ]; then
        echo "soak: node n$i never became ready; log tail:" >&2
        tail -20 "$WORK/n$i.log" >&2
        exit 1
    fi
done

# fault POSTs one command to a node's chaos control surface; a dead or
# partitioned-off node is tolerated (the drill may have removed it).
fault() {
    curl -fsS -X POST "http://127.0.0.1:$1/cluster/v1/fault" -d "$2" >/dev/null 2>&1 || true
}

# sleep_until sleeps to an absolute offset (seconds) from the drill
# start, so a slow step (n4's world generation) doesn't slip the rest
# of the schedule.
sleep_until() {
    _now=$(date +%s)
    _d=$((CHAOS_T0 + $1 - _now))
    if [ "$_d" -gt 0 ]; then sleep "$_d"; fi
}

choreograph() {
    CHAOS_T0=$(date +%s)

    # ~25%: a 4th node joins the running cluster through the gossip
    # handshake — no static peer roll. Its /readyz answers 503
    # "joining" until the member table marks it alive and it owns
    # traffic, which is exactly what the readiness poll waits out.
    sleep_until $((DUR_S / 4))
    echo "soak: chaos: n4 joining via n1"
    mkdir -p "$WORK/journal-n4"
    "$WORK/lbsnd" \
        -users "$USERS" -seed "$SEED" -api-key "$API_KEY" \
        -addr "127.0.0.1:18094" \
        -cluster-node n4 \
        -cluster-join "http://127.0.0.1:19091" \
        -cluster-listen "127.0.0.1:19094" \
        -cluster-advertise "http://127.0.0.1:19094" \
        -journal-dir "$WORK/journal-n4" -replica-factor 2 \
        $CHAOS_FLAG \
        >"$WORK/n4.log" 2>&1 &
    PIDS="$PIDS $!"
    for _ in $(seq 1 150); do
        if curl -fsS "http://127.0.0.1:18094/readyz" >/dev/null 2>&1; then
            echo "soak: chaos: n4 joined and ready"
            break
        fi
        sleep 0.4
    done

    # ~60%: kill -9 n2 — no leave notice. The failure detector must
    # walk it through suspect to left (~9s at defaults), the survivors
    # rebalance its users, and chain repair re-ships its promoted logs
    # until replica factor is restored.
    sleep_until $((DUR_S * 3 / 5))
    echo "soak: chaos: kill -9 n2"
    kill -9 "$N2_PID" 2>/dev/null || true

    # ~75%: partition n3 from the survivors, both directions, via the
    # fault surface on each side.
    sleep_until $((DUR_S * 3 / 4))
    echo "soak: chaos: partitioning n3"
    fault 19091 '{"action":"partition","hosts":["127.0.0.1:19093"]}'
    fault 19094 '{"action":"partition","hosts":["127.0.0.1:19093"]}'
    fault 19093 '{"action":"partition","hosts":["127.0.0.1:19091","127.0.0.1:19092","127.0.0.1:19094"]}'

    # ~85%: heal. The window is shorter than FailAfter+SuspectAfter, so
    # n3 only ever reached suspect — it kept its ring seat and the heal
    # must cost zero rebalances.
    sleep_until $((DUR_S * 17 / 20))
    echo "soak: chaos: healing the partition"
    fault 19091 '{"action":"heal"}'
    fault 19093 '{"action":"heal"}'
    fault 19094 '{"action":"heal"}'
}

echo "soak: driving $RATE ev/s for $DURATION (attackers: 3x$ATTACKERS, time scale $TIME_SCALE)"
status=0
if [ "$CHAOS" = 1 ]; then
    # The drill gates on full post-rebalance recall on top of the
    # standing invariants: an attacker lost to handoff, re-replication
    # or the partition is a violation.
    "$WORK/loadgen" \
        -targets "$TARGETS" -api-key "$API_KEY" \
        -users "$USERS" -seed "$SEED" \
        -rate "$RATE" -duration "$DURATION" \
        -attack-users "$ATTACKERS" -time-scale "$TIME_SCALE" \
        -max-p99 "$MAX_P99" \
        -out "$OUT" -fail-on-violations -require-full-recall &
    LOADGEN_PID=$!
    choreograph
    wait "$LOADGEN_PID" || status=$?
else
    "$WORK/loadgen" \
        -targets "$TARGETS" -api-key "$API_KEY" \
        -users "$USERS" -seed "$SEED" \
        -rate "$RATE" -duration "$DURATION" \
        -attack-users "$ATTACKERS" -time-scale "$TIME_SCALE" \
        -max-p99 "$MAX_P99" \
        -out "$OUT" -fail-on-violations || status=$?
fi

if [ "$status" != 0 ]; then
    echo "soak: FAILED (exit $status); report: $OUT" >&2
    if [ "$CHAOS" = 1 ]; then
        for i in 1 2 3 4; do
            echo "--- n$i log tail ---" >&2
            tail -15 "$WORK/n$i.log" >&2 2>/dev/null || true
        done
    fi
    exit "$status"
fi
echo "soak: PASS; report: $OUT"
