#!/usr/bin/env sh
# Soak gate: boot a 3-node lbsnd cluster, drive it with cmd/loadgen
# (benign open-loop traffic inside the detection envelope plus
# compressed attack cohorts), and fail on any report violation —
# critical-priority shed, detection-latency p99 breach, silent drops,
# or an unbounded post-traffic drain. CI runs this scaled down
# (SOAK_USERS=50000, SOAK_DURATION=60s); the full million-user run is
# the same script with the knobs turned up.
#
# Tunables (env):
#   SOAK_USERS      world scale                     (default 50000)
#   SOAK_DURATION   traffic window                  (default 60s)
#   SOAK_RATE       benign check-ins/sec            (default 100)
#   SOAK_ATTACKERS  attackers per cohort            (default 8)
#   SOAK_TIME_SCALE attack time compression         (default 600)
#   SOAK_MAX_P99    detection-latency gate          (default 50ms)
#   SOAK_SEED       world seed                      (default 42)
#   SOAK_OUT        JSON report path                (default soak_report.json)
set -eu

USERS="${SOAK_USERS:-50000}"
DURATION="${SOAK_DURATION:-60s}"
RATE="${SOAK_RATE:-100}"
ATTACKERS="${SOAK_ATTACKERS:-8}"
TIME_SCALE="${SOAK_TIME_SCALE:-600}"
MAX_P99="${SOAK_MAX_P99:-50ms}"
SEED="${SOAK_SEED:-42}"
OUT="${SOAK_OUT:-soak_report.json}"
API_KEY=soak

WORK="$(mktemp -d)"
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "soak: building lbsnd + loadgen"
go build -o "$WORK/lbsnd" ./cmd/lbsnd
go build -o "$WORK/loadgen" ./cmd/loadgen

# Three nodes: public API on 1809x, internal cluster surface on 1909x.
PEERS="n1=http://127.0.0.1:19091,n2=http://127.0.0.1:19092,n3=http://127.0.0.1:19093"
TARGETS="http://127.0.0.1:18091,http://127.0.0.1:18092,http://127.0.0.1:18093"
for i in 1 2 3; do
    mkdir -p "$WORK/journal-n$i"
    "$WORK/lbsnd" \
        -users "$USERS" -seed "$SEED" -api-key "$API_KEY" \
        -addr "127.0.0.1:1809$i" \
        -cluster-node "n$i" -cluster-peers "$PEERS" \
        -cluster-listen "127.0.0.1:1909$i" \
        -journal-dir "$WORK/journal-n$i" -replica-factor 2 \
        >"$WORK/n$i.log" 2>&1 &
    PIDS="$PIDS $!"
done

echo "soak: waiting for readiness ($USERS users per node)"
for i in 1 2 3; do
    ok=0
    for _ in $(seq 1 150); do
        if curl -fsS "http://127.0.0.1:1809$i/readyz" >/dev/null 2>&1; then
            ok=1
            break
        fi
        sleep 0.4
    done
    if [ "$ok" != 1 ]; then
        echo "soak: node n$i never became ready; log tail:" >&2
        tail -20 "$WORK/n$i.log" >&2
        exit 1
    fi
done

echo "soak: driving $RATE ev/s for $DURATION (attackers: 3x$ATTACKERS, time scale $TIME_SCALE)"
status=0
"$WORK/loadgen" \
    -targets "$TARGETS" -api-key "$API_KEY" \
    -users "$USERS" -seed "$SEED" \
    -rate "$RATE" -duration "$DURATION" \
    -attack-users "$ATTACKERS" -time-scale "$TIME_SCALE" \
    -max-p99 "$MAX_P99" \
    -out "$OUT" -fail-on-violations || status=$?

if [ "$status" != 0 ]; then
    echo "soak: FAILED (exit $status); report: $OUT" >&2
    exit "$status"
fi
echo "soak: PASS; report: $OUT"
