// Package locheat reproduces "Location Cheating: A Security Challenge
// to Location-based Social Network Services" (Mai Ren, ICDCS 2011): a
// Foursquare-like LBSN service with its reward economy and
// anti-cheating rules, the client-side GPS-spoofing attack vectors,
// the multi-threaded profile crawler and its database, the automated
// virtual-tour cheating tool, the chapter-4 detection analytics, and
// the chapter-5 defences.
//
// Beyond the paper's batch analytics, internal/stream runs the same
// detection online: a channel-based pipeline, sharded by user, that
// consumes every check-in event the lbsn service publishes and raises
// alerts for impossible travel, rate abuse (escalated to the §5.1
// rapid-bit distance-bounding challenge), and cheater-code violations
// — served live by cmd/lbsnd at /api/v1/alerts.
//
// See DESIGN.md for the system inventory and the per-experiment index
// (E1–E12), EXPERIMENTS.md for paper-vs-measured results, and
// cmd/experiments to regenerate every table and figure.
package locheat
