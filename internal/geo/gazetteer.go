package geo

// City is one entry in the built-in United States gazetteer. Weight is
// a rough relative metropolitan population used by the synthetic world
// generator to distribute venues the way national chains distribute
// branches: proportionally to population, which is what makes the
// crawled Starbucks scatter in Fig 3.4 trace the shape of the US
// territory.
type City struct {
	Name   string
	State  string
	Center Point
	Weight float64
}

// USCities returns the built-in gazetteer: a copy, so callers may
// mutate freely. The list spans the continental US plus Alaska and
// Hawaii (the paper's suspected cheater in Fig 4.3 had check-ins in
// Alaska), and includes the two cities the experiments were run from
// (Albuquerque, NM and Lincoln, NE) plus the attack target city (San
// Francisco, CA).
func USCities() []City {
	return append([]City(nil), usCities...)
}

// FindCity returns the gazetteer entry with the given name, if any.
func FindCity(name string) (City, bool) {
	for _, c := range usCities {
		if c.Name == name {
			return c, true
		}
	}
	return City{}, false
}

// usCities holds approximate downtown coordinates. Weights are 2010-era
// metro populations in millions, rounded; the absolute scale is
// irrelevant, only the ratios matter.
var usCities = []City{
	{Name: "New York", State: "NY", Center: Point{Lat: 40.7128, Lon: -74.0060}, Weight: 19.0},
	{Name: "Los Angeles", State: "CA", Center: Point{Lat: 34.0522, Lon: -118.2437}, Weight: 12.8},
	{Name: "Chicago", State: "IL", Center: Point{Lat: 41.8781, Lon: -87.6298}, Weight: 9.5},
	{Name: "Dallas", State: "TX", Center: Point{Lat: 32.7767, Lon: -96.7970}, Weight: 6.4},
	{Name: "Houston", State: "TX", Center: Point{Lat: 29.7604, Lon: -95.3698}, Weight: 5.9},
	{Name: "Philadelphia", State: "PA", Center: Point{Lat: 39.9526, Lon: -75.1652}, Weight: 6.0},
	{Name: "Washington", State: "DC", Center: Point{Lat: 38.9072, Lon: -77.0369}, Weight: 5.6},
	{Name: "Miami", State: "FL", Center: Point{Lat: 25.7617, Lon: -80.1918}, Weight: 5.5},
	{Name: "Atlanta", State: "GA", Center: Point{Lat: 33.7490, Lon: -84.3880}, Weight: 5.3},
	{Name: "Boston", State: "MA", Center: Point{Lat: 42.3601, Lon: -71.0589}, Weight: 4.6},
	{Name: "San Francisco", State: "CA", Center: Point{Lat: 37.7749, Lon: -122.4194}, Weight: 4.3},
	{Name: "Detroit", State: "MI", Center: Point{Lat: 42.3314, Lon: -83.0458}, Weight: 4.3},
	{Name: "Phoenix", State: "AZ", Center: Point{Lat: 33.4484, Lon: -112.0740}, Weight: 4.2},
	{Name: "Seattle", State: "WA", Center: Point{Lat: 47.6062, Lon: -122.3321}, Weight: 3.4},
	{Name: "Minneapolis", State: "MN", Center: Point{Lat: 44.9778, Lon: -93.2650}, Weight: 3.3},
	{Name: "San Diego", State: "CA", Center: Point{Lat: 32.7157, Lon: -117.1611}, Weight: 3.1},
	{Name: "Tampa", State: "FL", Center: Point{Lat: 27.9506, Lon: -82.4572}, Weight: 2.8},
	{Name: "Denver", State: "CO", Center: Point{Lat: 39.7392, Lon: -104.9903}, Weight: 2.5},
	{Name: "St. Louis", State: "MO", Center: Point{Lat: 38.6270, Lon: -90.1994}, Weight: 2.8},
	{Name: "Baltimore", State: "MD", Center: Point{Lat: 39.2904, Lon: -76.6122}, Weight: 2.7},
	{Name: "Charlotte", State: "NC", Center: Point{Lat: 35.2271, Lon: -80.8431}, Weight: 1.8},
	{Name: "Portland", State: "OR", Center: Point{Lat: 45.5152, Lon: -122.6784}, Weight: 2.2},
	{Name: "San Antonio", State: "TX", Center: Point{Lat: 29.4241, Lon: -98.4936}, Weight: 2.1},
	{Name: "Orlando", State: "FL", Center: Point{Lat: 28.5383, Lon: -81.3792}, Weight: 2.1},
	{Name: "Sacramento", State: "CA", Center: Point{Lat: 38.5816, Lon: -121.4944}, Weight: 2.1},
	{Name: "Pittsburgh", State: "PA", Center: Point{Lat: 40.4406, Lon: -79.9959}, Weight: 2.4},
	{Name: "Las Vegas", State: "NV", Center: Point{Lat: 36.1699, Lon: -115.1398}, Weight: 1.9},
	{Name: "Cincinnati", State: "OH", Center: Point{Lat: 39.1031, Lon: -84.5120}, Weight: 2.1},
	{Name: "Cleveland", State: "OH", Center: Point{Lat: 41.4993, Lon: -81.6944}, Weight: 2.1},
	{Name: "Kansas City", State: "MO", Center: Point{Lat: 39.0997, Lon: -94.5786}, Weight: 2.0},
	{Name: "Columbus", State: "OH", Center: Point{Lat: 39.9612, Lon: -82.9988}, Weight: 1.8},
	{Name: "Indianapolis", State: "IN", Center: Point{Lat: 39.7684, Lon: -86.1581}, Weight: 1.7},
	{Name: "Austin", State: "TX", Center: Point{Lat: 30.2672, Lon: -97.7431}, Weight: 1.7},
	{Name: "Nashville", State: "TN", Center: Point{Lat: 36.1627, Lon: -86.7816}, Weight: 1.6},
	{Name: "Milwaukee", State: "WI", Center: Point{Lat: 43.0389, Lon: -87.9065}, Weight: 1.6},
	{Name: "Jacksonville", State: "FL", Center: Point{Lat: 30.3322, Lon: -81.6557}, Weight: 1.3},
	{Name: "Memphis", State: "TN", Center: Point{Lat: 35.1495, Lon: -90.0490}, Weight: 1.3},
	{Name: "Oklahoma City", State: "OK", Center: Point{Lat: 35.4676, Lon: -97.5164}, Weight: 1.3},
	{Name: "Louisville", State: "KY", Center: Point{Lat: 38.2527, Lon: -85.7585}, Weight: 1.3},
	{Name: "New Orleans", State: "LA", Center: Point{Lat: 29.9511, Lon: -90.0715}, Weight: 1.2},
	{Name: "Raleigh", State: "NC", Center: Point{Lat: 35.7796, Lon: -78.6382}, Weight: 1.1},
	{Name: "Salt Lake City", State: "UT", Center: Point{Lat: 40.7608, Lon: -111.8910}, Weight: 1.1},
	{Name: "Richmond", State: "VA", Center: Point{Lat: 37.5407, Lon: -77.4360}, Weight: 1.2},
	{Name: "Birmingham", State: "AL", Center: Point{Lat: 33.5186, Lon: -86.8104}, Weight: 1.1},
	{Name: "Buffalo", State: "NY", Center: Point{Lat: 42.8864, Lon: -78.8784}, Weight: 1.1},
	{Name: "Hartford", State: "CT", Center: Point{Lat: 41.7658, Lon: -72.6734}, Weight: 1.2},
	{Name: "Tucson", State: "AZ", Center: Point{Lat: 32.2226, Lon: -110.9747}, Weight: 1.0},
	{Name: "Omaha", State: "NE", Center: Point{Lat: 41.2565, Lon: -95.9345}, Weight: 0.9},
	{Name: "El Paso", State: "TX", Center: Point{Lat: 31.7619, Lon: -106.4850}, Weight: 0.8},
	{Name: "Albuquerque", State: "NM", Center: Point{Lat: 35.0844, Lon: -106.6504}, Weight: 0.9},
	{Name: "Boise", State: "ID", Center: Point{Lat: 43.6150, Lon: -116.2023}, Weight: 0.6},
	{Name: "Spokane", State: "WA", Center: Point{Lat: 47.6588, Lon: -117.4260}, Weight: 0.5},
	{Name: "Des Moines", State: "IA", Center: Point{Lat: 41.5868, Lon: -93.6250}, Weight: 0.6},
	{Name: "Little Rock", State: "AR", Center: Point{Lat: 34.7465, Lon: -92.2896}, Weight: 0.7},
	{Name: "Wichita", State: "KS", Center: Point{Lat: 37.6872, Lon: -97.3301}, Weight: 0.6},
	{Name: "Lincoln", State: "NE", Center: Point{Lat: 40.8136, Lon: -96.7026}, Weight: 0.3},
	{Name: "Fargo", State: "ND", Center: Point{Lat: 46.8772, Lon: -96.7898}, Weight: 0.2},
	{Name: "Sioux Falls", State: "SD", Center: Point{Lat: 43.5446, Lon: -96.7311}, Weight: 0.2},
	{Name: "Billings", State: "MT", Center: Point{Lat: 45.7833, Lon: -108.5007}, Weight: 0.2},
	{Name: "Cheyenne", State: "WY", Center: Point{Lat: 41.1400, Lon: -104.8202}, Weight: 0.1},
	{Name: "Burlington", State: "VT", Center: Point{Lat: 44.4759, Lon: -73.2121}, Weight: 0.2},
	{Name: "Portland ME", State: "ME", Center: Point{Lat: 43.6591, Lon: -70.2568}, Weight: 0.5},
	{Name: "Charleston", State: "SC", Center: Point{Lat: 32.7765, Lon: -79.9311}, Weight: 0.7},
	{Name: "Jackson", State: "MS", Center: Point{Lat: 32.2988, Lon: -90.1848}, Weight: 0.5},
	{Name: "Anchorage", State: "AK", Center: Point{Lat: 61.2181, Lon: -149.9003}, Weight: 0.4},
	{Name: "Fairbanks", State: "AK", Center: Point{Lat: 64.8378, Lon: -147.7164}, Weight: 0.1},
	{Name: "Honolulu", State: "HI", Center: Point{Lat: 21.3069, Lon: -157.8583}, Weight: 1.0},
}
