package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Known-distance fixtures: city-pair great-circle distances from
// standard references, tolerance 0.5% (spherical vs ellipsoidal).
func TestDistanceMetersKnownPairs(t *testing.T) {
	sf, _ := FindCity("San Francisco")
	la, _ := FindCity("Los Angeles")
	ny, _ := FindCity("New York")
	abq, _ := FindCity("Albuquerque")

	tests := []struct {
		name   string
		a, b   Point
		wantKM float64
	}{
		{"SF-LA", sf.Center, la.Center, 559},
		{"SF-NY", sf.Center, ny.Center, 4129},
		{"ABQ-SF", abq.Center, sf.Center, 1440},
		{"same point", sf.Center, sf.Center, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.DistanceMeters(tt.b) / 1000
			if math.Abs(got-tt.wantKM) > tt.wantKM*0.01+0.001 {
				t.Errorf("distance = %.1f km, want %.1f km", got, tt.wantKM)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		d1 := a.DistanceMeters(b)
		d2 := b.DistanceMeters(a)
		return math.Abs(d1-d2) < 1e-6*math.Max(1, d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		c := Point{Lat: clampLat(lat3), Lon: clampLon(lon3)}
		// Allow a small epsilon for floating point.
		return a.DistanceMeters(c) <= a.DistanceMeters(b)+b.DistanceMeters(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	f := func(lat, lon, bearing, distKM float64) bool {
		p := Point{Lat: clampLat(lat) * 0.8, Lon: clampLon(lon)} // keep away from poles
		brng := math.Mod(math.Abs(bearing), 360)
		d := math.Mod(math.Abs(distKM), 2000) * 1000 // up to 2000 km
		q := p.Destination(brng, d)
		got := p.DistanceMeters(q)
		return math.Abs(got-d) < math.Max(1.0, d*1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDestinationCardinal(t *testing.T) {
	p := Point{Lat: 35.0, Lon: -106.0}
	north := p.Destination(0, 10000)
	if north.Lat <= p.Lat {
		t.Errorf("north destination did not increase latitude: %v", north)
	}
	if math.Abs(north.Lon-p.Lon) > 1e-6 {
		t.Errorf("north destination changed longitude: %v", north)
	}
	east := p.Destination(90, 10000)
	if east.Lon <= p.Lon {
		t.Errorf("east destination did not increase longitude: %v", east)
	}
}

func TestBearingDegrees(t *testing.T) {
	p := Point{Lat: 35.0, Lon: -106.0}
	tests := []struct {
		name string
		to   Point
		want float64
	}{
		{"north", Point{Lat: 36.0, Lon: -106.0}, 0},
		{"east", Point{Lat: 35.0, Lon: -105.0}, 90},
		{"south", Point{Lat: 34.0, Lon: -106.0}, 180},
		{"west", Point{Lat: 35.0, Lon: -107.0}, 270},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := p.BearingDegrees(tt.to)
			diff := math.Abs(got - tt.want)
			if diff > 180 {
				diff = 360 - diff
			}
			if diff > 1.0 {
				t.Errorf("bearing = %.2f, want %.2f", got, tt.want)
			}
		})
	}
}

func TestPaperStepDistances(t *testing.T) {
	// §3.3: "The desired moving distance for each step was 0.005
	// degrees, either longitude or latitude, equivalent to about 550
	// meters in latitude direction or about 450 meters in longitude
	// direction around this location" (Albuquerque, ~35°N).
	latStep := 0.005 * MetersPerDegreeLat()
	if latStep < 540 || latStep > 570 {
		t.Errorf("0.005 deg latitude = %.0f m, paper says ~550 m", latStep)
	}
	lonStep := 0.005 * MetersPerDegreeLon(35.08)
	if lonStep < 440 || lonStep > 470 {
		t.Errorf("0.005 deg longitude at 35N = %.0f m, paper says ~450 m", lonStep)
	}
}

func TestValid(t *testing.T) {
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{Lat: 0, Lon: 0}, true},
		{Point{Lat: 90, Lon: 180}, true},
		{Point{Lat: -90, Lon: -180}, true},
		{Point{Lat: 90.01, Lon: 0}, false},
		{Point{Lat: 0, Lon: 180.01}, false},
		{Point{Lat: -91, Lon: 0}, false},
	}
	for _, tt := range tests {
		if got := tt.p.Valid(); got != tt.want {
			t.Errorf("Valid(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectContainsAndExpand(t *testing.T) {
	r := Rect{MinLat: 10, MaxLat: 20, MinLon: -50, MaxLon: -40}
	if !r.Contains(Point{Lat: 15, Lon: -45}) {
		t.Error("center point should be contained")
	}
	if r.Contains(Point{Lat: 25, Lon: -45}) {
		t.Error("point north of box should not be contained")
	}
	grown := r.Expand(Point{Lat: 25, Lon: -60})
	if !grown.Contains(Point{Lat: 25, Lon: -60}) {
		t.Error("expanded rect must contain the new point")
	}
	if !grown.Contains(Point{Lat: 15, Lon: -45}) {
		t.Error("expanded rect must still contain old points")
	}
}

func TestBoundingRect(t *testing.T) {
	if _, ok := BoundingRect(nil); ok {
		t.Error("empty input should report not-ok")
	}
	pts := []Point{{Lat: 1, Lon: 2}, {Lat: -3, Lon: 7}, {Lat: 5, Lon: -1}}
	r, ok := BoundingRect(pts)
	if !ok {
		t.Fatal("expected ok")
	}
	want := Rect{MinLat: -3, MaxLat: 5, MinLon: -1, MaxLon: 7}
	if r != want {
		t.Errorf("BoundingRect = %+v, want %+v", r, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bounding rect must contain %v", p)
		}
	}
}

func TestSquareAround(t *testing.T) {
	center := Point{Lat: 35.0, Lon: -106.0}
	sq := SquareAround(center, 180) // the rapid-fire square
	if !sq.Contains(center) {
		t.Fatal("square must contain its center")
	}
	// A point 80 m east is inside; 100 m east is outside the 90 m half-width.
	inside := center.Destination(90, 80)
	outside := center.Destination(90, 100)
	if !sq.Contains(inside) {
		t.Error("point 80 m east should be inside the 180 m square")
	}
	if sq.Contains(outside) {
		t.Error("point 100 m east should be outside the 180 m square")
	}
}

func TestSpeedMetersPerSecond(t *testing.T) {
	if got := SpeedMetersPerSecond(100, 10); got != 10 {
		t.Errorf("speed = %v, want 10", got)
	}
	if got := SpeedMetersPerSecond(100, 0); !math.IsInf(got, 1) {
		t.Errorf("teleport speed = %v, want +Inf", got)
	}
	if got := SpeedMetersPerSecond(0, 0); got != 0 {
		t.Errorf("no-move speed = %v, want 0", got)
	}
}

func TestUSCitiesGazetteer(t *testing.T) {
	cities := USCities()
	if len(cities) < 50 {
		t.Fatalf("gazetteer has %d cities, want >= 50", len(cities))
	}
	seen := make(map[string]bool, len(cities))
	for _, c := range cities {
		if !c.Center.Valid() {
			t.Errorf("city %s has invalid coordinates %v", c.Name, c.Center)
		}
		if c.Weight <= 0 {
			t.Errorf("city %s has non-positive weight", c.Name)
		}
		if seen[c.Name] {
			t.Errorf("duplicate city name %q", c.Name)
		}
		seen[c.Name] = true
	}
	// Cities the experiments depend on must exist.
	for _, name := range []string{"San Francisco", "Albuquerque", "Lincoln", "Anchorage"} {
		if _, ok := FindCity(name); !ok {
			t.Errorf("gazetteer missing required city %q", name)
		}
	}
	// Returned slice is a copy: mutating it must not affect the package.
	cities[0].Name = "MUTATED"
	if c, _ := FindCity("MUTATED"); c.Name == "MUTATED" {
		t.Error("USCities must return a copy")
	}
}

func TestFindCityMissing(t *testing.T) {
	if _, ok := FindCity("Atlantis"); ok {
		t.Error("FindCity should report missing city")
	}
}

func TestStringFormat(t *testing.T) {
	p := Point{Lat: 37.774900, Lon: -122.419400}
	want := "37.774900,-122.419400"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func clampLat(v float64) float64 {
	return math.Mod(math.Abs(v), 180) - 90
}

func clampLon(v float64) float64 {
	return math.Mod(math.Abs(v), 360) - 180
}
