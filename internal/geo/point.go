// Package geo provides the geographic primitives used throughout the
// location-cheating reproduction: coordinates, great-circle math,
// bounding boxes, a grid spatial index for nearest-venue search, and a
// small gazetteer of United States cities used by the synthetic world
// generator.
//
// All distances are in meters and all angles in degrees unless a name
// says otherwise. The math is plain spherical trigonometry (haversine)
// on a mean-radius sphere, which is accurate to ~0.5% — far more than
// the paper's experiments need (its finest-grained rule operates on a
// 180 m square).
package geo

import (
	"fmt"
	"math"
)

const (
	// EarthRadiusMeters is the mean Earth radius used by all
	// great-circle computations.
	EarthRadiusMeters = 6371000.0

	// MetersPerMile converts statute miles to meters. The paper's
	// automated-cheating rule of thumb ("check into venues less than 1
	// mile apart with a 5-minute interval") is stated in miles.
	MetersPerMile = 1609.344

	degToRad = math.Pi / 180
	radToDeg = 180 / math.Pi
)

// Point is a WGS84-style latitude/longitude pair in decimal degrees.
// Latitude is positive north, longitude positive east.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// String renders the point as "lat,lon" with six decimal places
// (~0.1 m), the precision the paper's tooling (Google Earth) exposed.
func (p Point) String() string {
	return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon)
}

// Valid reports whether the point lies within the legal
// latitude/longitude ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

// DistanceMeters returns the great-circle (haversine) distance between
// p and q in meters.
func (p Point) DistanceMeters(q Point) float64 {
	lat1 := p.Lat * degToRad
	lat2 := q.Lat * degToRad
	dLat := (q.Lat - p.Lat) * degToRad
	dLon := (q.Lon - p.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	c := 2 * math.Atan2(math.Sqrt(a), math.Sqrt(1-a))
	return EarthRadiusMeters * c
}

// DistanceMiles returns the great-circle distance between p and q in
// statute miles.
func (p Point) DistanceMiles(q Point) float64 {
	return p.DistanceMeters(q) / MetersPerMile
}

// BearingDegrees returns the initial bearing from p to q in degrees
// clockwise from true north, in [0, 360).
func (p Point) BearingDegrees(q Point) float64 {
	lat1 := p.Lat * degToRad
	lat2 := q.Lat * degToRad
	dLon := (q.Lon - p.Lon) * degToRad

	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	deg := math.Atan2(y, x) * radToDeg
	return math.Mod(deg+360, 360)
}

// Destination returns the point reached by travelling distanceMeters
// from p along the given initial bearing (degrees clockwise from
// north) on a great circle.
func (p Point) Destination(bearingDeg, distanceMeters float64) Point {
	lat1 := p.Lat * degToRad
	lon1 := p.Lon * degToRad
	brng := bearingDeg * degToRad
	d := distanceMeters / EarthRadiusMeters

	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brng))
	lon2 := lon1 + math.Atan2(
		math.Sin(brng)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2),
	)
	// Normalize longitude to [-180, 180].
	lon2 = math.Mod(lon2+3*math.Pi, 2*math.Pi) - math.Pi
	return Point{Lat: lat2 * radToDeg, Lon: lon2 * radToDeg}
}

// Offset returns p displaced by dLat and dLon degrees, the operation
// the paper's semiautomatic cheating tool performs ("the desired
// moving distance for each step was 0.005 degrees, either longitude or
// latitude").
func (p Point) Offset(dLat, dLon float64) Point {
	return Point{Lat: p.Lat + dLat, Lon: p.Lon + dLon}
}

// MetersPerDegreeLat is the north-south ground distance of one degree
// of latitude, effectively constant over the sphere.
func MetersPerDegreeLat() float64 {
	return EarthRadiusMeters * degToRad
}

// MetersPerDegreeLon is the east-west ground distance of one degree of
// longitude at the given latitude. Around Albuquerque (35°N) this is
// ~91 km, so the paper's 0.005° step is ~450 m in longitude and ~550 m
// in latitude, matching §3.3.
func MetersPerDegreeLon(latDeg float64) float64 {
	return EarthRadiusMeters * degToRad * math.Cos(latDeg*degToRad)
}

// Rect is an axis-aligned latitude/longitude bounding box.
type Rect struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// Contains reports whether the point lies inside the rectangle
// (inclusive bounds).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lon: (r.MinLon + r.MaxLon) / 2}
}

// Expand grows the rectangle to include p, returning the grown box.
func (r Rect) Expand(p Point) Rect {
	if p.Lat < r.MinLat {
		r.MinLat = p.Lat
	}
	if p.Lat > r.MaxLat {
		r.MaxLat = p.Lat
	}
	if p.Lon < r.MinLon {
		r.MinLon = p.Lon
	}
	if p.Lon > r.MaxLon {
		r.MaxLon = p.Lon
	}
	return r
}

// BoundingRect returns the smallest Rect containing all points. The
// second return is false when points is empty.
func BoundingRect(points []Point) (Rect, bool) {
	if len(points) == 0 {
		return Rect{}, false
	}
	r := Rect{
		MinLat: points[0].Lat, MaxLat: points[0].Lat,
		MinLon: points[0].Lon, MaxLon: points[0].Lon,
	}
	for _, p := range points[1:] {
		r = r.Expand(p)
	}
	return r, true
}

// SquareAround returns the side × side meter square centred on p. The
// cheater code's rapid-fire rule operates on a 180 m × 180 m square.
func SquareAround(p Point, sideMeters float64) Rect {
	half := sideMeters / 2
	dLat := half / MetersPerDegreeLat()
	dLon := half / MetersPerDegreeLon(p.Lat)
	return Rect{
		MinLat: p.Lat - dLat, MaxLat: p.Lat + dLat,
		MinLon: p.Lon - dLon, MaxLon: p.Lon + dLon,
	}
}

// SpeedMetersPerSecond returns the implied travel speed between two
// sightings. It returns +Inf for a positive distance over a
// non-positive elapsed time (instantaneous teleport), and 0 when both
// are non-positive.
func SpeedMetersPerSecond(distanceMeters float64, elapsedSeconds float64) float64 {
	if elapsedSeconds <= 0 {
		if distanceMeters <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return distanceMeters / elapsedSeconds
}
