package geo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridIndexEmpty(t *testing.T) {
	g := NewGridIndex(0.01)
	if _, _, _, ok := g.Nearest(Point{Lat: 1, Lon: 1}); ok {
		t.Error("empty index must report not-found")
	}
	if got := g.WithinRadius(Point{}, 1000); got != nil {
		t.Errorf("empty index radius search = %v, want nil", got)
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d, want 0", g.Len())
	}
}

func TestGridIndexDefaultCellSize(t *testing.T) {
	g := NewGridIndex(-1)
	g.Insert(1, Point{Lat: 1, Lon: 1})
	if _, _, _, ok := g.Nearest(Point{Lat: 1, Lon: 1}); !ok {
		t.Error("index with defaulted cell size must work")
	}
}

func TestGridIndexNearestSimple(t *testing.T) {
	g := NewGridIndex(0.01)
	base := Point{Lat: 35.0844, Lon: -106.6504} // Albuquerque
	g.Insert(1, base)
	g.Insert(2, base.Destination(90, 500))
	g.Insert(3, base.Destination(90, 2000))

	id, _, dist, ok := g.Nearest(base.Destination(90, 450))
	if !ok {
		t.Fatal("expected a nearest hit")
	}
	if id != 2 {
		t.Errorf("nearest id = %d, want 2", id)
	}
	if dist > 100 {
		t.Errorf("nearest distance = %.0f m, want <= 50 m", dist)
	}
}

func TestGridIndexNearestFarQuery(t *testing.T) {
	// Query from a point many cells away from any item: the ring
	// search must still find it.
	g := NewGridIndex(0.01)
	sf := Point{Lat: 37.7749, Lon: -122.4194}
	g.Insert(7, sf)
	ny := Point{Lat: 40.7128, Lon: -74.0060}
	id, pt, _, ok := g.Nearest(ny)
	if !ok || id != 7 || pt != sf {
		t.Errorf("Nearest from afar = (%d,%v,%v), want (7,%v,true)", id, pt, ok, sf)
	}
}

func TestGridIndexMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewGridIndex(0.02)
	items := make(map[uint64]Point, 500)
	for i := uint64(1); i <= 500; i++ {
		p := Point{
			Lat: 34 + rng.Float64()*2, // 2x2 degree box
			Lon: -107 + rng.Float64()*2,
		}
		items[i] = p
		g.Insert(i, p)
	}
	for trial := 0; trial < 100; trial++ {
		q := Point{Lat: 34 + rng.Float64()*2, Lon: -107 + rng.Float64()*2}
		gotID, _, gotDist, ok := g.Nearest(q)
		if !ok {
			t.Fatal("expected hit")
		}
		wantID, wantDist, _ := NearestLinear(items, q)
		// Ties can resolve differently; distances must agree.
		if gotDist > wantDist+1e-6 {
			t.Fatalf("trial %d: grid dist %.3f > linear dist %.3f (ids %d vs %d)",
				trial, gotDist, wantDist, gotID, wantID)
		}
	}
}

func TestGridIndexWithinRadius(t *testing.T) {
	g := NewGridIndex(0.005)
	center := Point{Lat: 35.08, Lon: -106.62}
	// Three venues inside 180 m square distance, two outside.
	g.Insert(1, center)
	g.Insert(2, center.Destination(0, 50))
	g.Insert(3, center.Destination(90, 80))
	g.Insert(4, center.Destination(180, 500))
	g.Insert(5, center.Destination(270, 5000))

	got := g.WithinRadius(center, 100)
	if len(got) != 3 {
		t.Fatalf("WithinRadius = %v, want 3 hits", got)
	}
	if got[0] != 1 {
		t.Errorf("closest hit = %d, want 1 (distance order)", got[0])
	}
	for _, id := range got {
		if id == 4 || id == 5 {
			t.Errorf("id %d beyond radius returned", id)
		}
	}
}

func TestGridIndexWithinRadiusNegative(t *testing.T) {
	g := NewGridIndex(0.01)
	g.Insert(1, Point{})
	if got := g.WithinRadius(Point{}, -5); got != nil {
		t.Errorf("negative radius = %v, want nil", got)
	}
}

func TestGridIndexRadiusPropertyAllWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGridIndex(0.01)
	items := make(map[uint64]Point, 200)
	for i := uint64(1); i <= 200; i++ {
		p := Point{Lat: 40 + rng.Float64(), Lon: -75 + rng.Float64()}
		items[i] = p
		g.Insert(i, p)
	}
	f := func(latOff, lonOff, radKM float64) bool {
		q := Point{
			Lat: 40 + mod1(latOff),
			Lon: -75 + mod1(lonOff),
		}
		radius := mod1(radKM) * 20000 // up to 20 km
		hits := g.WithinRadius(q, radius)
		seen := make(map[uint64]bool, len(hits))
		for _, id := range hits {
			if q.DistanceMeters(items[id]) > radius+1e-6 {
				return false // returned a point beyond the radius
			}
			seen[id] = true
		}
		for id, p := range items {
			if q.DistanceMeters(p) <= radius && !seen[id] {
				return false // missed a point within the radius
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRingKeysCoverage(t *testing.T) {
	center := cellKey{latCell: 0, lonCell: 0}
	if got := len(ringKeys(center, 0)); got != 1 {
		t.Errorf("ring 0 has %d keys, want 1", got)
	}
	for ring := 1; ring <= 4; ring++ {
		keys := ringKeys(center, ring)
		want := 8 * ring
		if len(keys) != want {
			t.Errorf("ring %d has %d keys, want %d", ring, len(keys), want)
		}
		seen := make(map[cellKey]bool, len(keys))
		for _, k := range keys {
			if seen[k] {
				t.Errorf("ring %d repeats key %v", ring, k)
			}
			seen[k] = true
			cheb := maxInt32(absInt32(k.latCell), absInt32(k.lonCell))
			if cheb != int32(ring) {
				t.Errorf("ring %d contains key %v at Chebyshev distance %d", ring, k, cheb)
			}
		}
	}
}

func mod1(v float64) float64 {
	if v < 0 {
		v = -v
	}
	for v > 1 {
		v /= 10
	}
	return v
}

func absInt32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
