package geo

import (
	"math"
	"sort"
)

// GridIndex is a fixed-cell-size spatial hash over latitude/longitude
// space. It supports the two queries the reproduction needs on venue
// sets: nearest-neighbour ("find the venue closest to the target
// location", §3.3) and radius search ("all venues within the rapid-fire
// square", §2.3). Cells are sized in degrees; for city-scale venue
// densities a cell of 0.01° (~1 km) keeps buckets small.
//
// The zero value is not usable; construct with NewGridIndex. GridIndex
// is not safe for concurrent mutation; build it once and share it
// read-only, which is how every caller in this repository uses it.
type GridIndex struct {
	cellDeg float64
	cells   map[cellKey][]indexed
	count   int
}

type cellKey struct {
	latCell int32
	lonCell int32
}

type indexed struct {
	id uint64
	pt Point
}

// NewGridIndex creates an index with the given cell size in degrees.
// Non-positive cell sizes fall back to 0.01° (~1 km).
func NewGridIndex(cellDeg float64) *GridIndex {
	if cellDeg <= 0 {
		cellDeg = 0.01
	}
	return &GridIndex{
		cellDeg: cellDeg,
		cells:   make(map[cellKey][]indexed),
	}
}

// Insert adds an item with an opaque identifier at the given point.
// Inserting the same id twice stores two entries; callers keep ids
// unique.
func (g *GridIndex) Insert(id uint64, pt Point) {
	k := g.keyFor(pt)
	g.cells[k] = append(g.cells[k], indexed{id: id, pt: pt})
	g.count++
}

// Len returns the number of items in the index.
func (g *GridIndex) Len() int { return g.count }

func (g *GridIndex) keyFor(pt Point) cellKey {
	return cellKey{
		latCell: int32(math.Floor(pt.Lat / g.cellDeg)),
		lonCell: int32(math.Floor(pt.Lon / g.cellDeg)),
	}
}

// Nearest returns the id and point of the item closest to target and
// its distance in meters. The boolean is false when the index is
// empty. The search spirals outward ring by ring and stops once the
// best candidate is provably closer than anything in unexplored rings.
func (g *GridIndex) Nearest(target Point) (uint64, Point, float64, bool) {
	if g.count == 0 {
		return 0, Point{}, 0, false
	}
	center := g.keyFor(target)

	bestID := uint64(0)
	bestPt := Point{}
	bestDist := math.Inf(1)
	found := false

	// Ground size of one cell at the target latitude; used to bound how
	// far out a ring can still contain a closer point.
	cellMeters := math.Min(
		g.cellDeg*MetersPerDegreeLat(),
		g.cellDeg*MetersPerDegreeLon(target.Lat),
	)
	if cellMeters <= 0 {
		cellMeters = 1
	}

	maxRing := int(math.Ceil(360/g.cellDeg)) + 1
	for ring := 0; ring <= maxRing; ring++ {
		// Any point in a ring at distance `ring` is at least
		// (ring-1)*cellMeters away; once that exceeds the best found we
		// can stop.
		if found && float64(ring-1)*cellMeters > bestDist {
			break
		}
		for _, k := range ringKeys(center, ring) {
			for _, it := range g.cells[k] {
				d := target.DistanceMeters(it.pt)
				if d < bestDist {
					bestDist = d
					bestID = it.id
					bestPt = it.pt
					found = true
				}
			}
		}
	}
	if !found {
		return 0, Point{}, 0, false
	}
	return bestID, bestPt, bestDist, true
}

// WithinRadius returns the ids of all items within radiusMeters of the
// target, ordered by increasing distance.
func (g *GridIndex) WithinRadius(target Point, radiusMeters float64) []uint64 {
	if g.count == 0 || radiusMeters < 0 {
		return nil
	}
	dLat := radiusMeters / MetersPerDegreeLat()
	lonScale := MetersPerDegreeLon(target.Lat)
	dLon := dLat
	if lonScale > 0 {
		dLon = radiusMeters / lonScale
	}

	minKey := g.keyFor(Point{Lat: target.Lat - dLat, Lon: target.Lon - dLon})
	maxKey := g.keyFor(Point{Lat: target.Lat + dLat, Lon: target.Lon + dLon})

	type hit struct {
		id   uint64
		dist float64
	}
	var hits []hit
	for la := minKey.latCell; la <= maxKey.latCell; la++ {
		for lo := minKey.lonCell; lo <= maxKey.lonCell; lo++ {
			for _, it := range g.cells[cellKey{latCell: la, lonCell: lo}] {
				d := target.DistanceMeters(it.pt)
				if d <= radiusMeters {
					hits = append(hits, hit{id: it.id, dist: d})
				}
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].dist != hits[j].dist {
			return hits[i].dist < hits[j].dist
		}
		return hits[i].id < hits[j].id
	})
	out := make([]uint64, len(hits))
	for i, h := range hits {
		out[i] = h.id
	}
	return out
}

// NearestLinear is the brute-force O(n) nearest-neighbour scan kept as
// the ablation baseline for BenchmarkAblationGridIndex.
func NearestLinear(items map[uint64]Point, target Point) (uint64, float64, bool) {
	bestID := uint64(0)
	bestDist := math.Inf(1)
	found := false
	for id, pt := range items {
		d := target.DistanceMeters(pt)
		if d < bestDist || (d == bestDist && id < bestID) {
			bestDist = d
			bestID = id
			found = true
		}
	}
	return bestID, bestDist, found
}

// ringKeys enumerates the cell keys forming the square ring at
// Chebyshev distance `ring` around the center. Ring 0 is the center
// cell itself.
func ringKeys(center cellKey, ring int) []cellKey {
	if ring == 0 {
		return []cellKey{center}
	}
	r := int32(ring)
	keys := make([]cellKey, 0, 8*ring)
	for d := -r; d <= r; d++ {
		keys = append(keys,
			cellKey{latCell: center.latCell - r, lonCell: center.lonCell + d},
			cellKey{latCell: center.latCell + r, lonCell: center.lonCell + d},
		)
	}
	for d := -r + 1; d <= r-1; d++ {
		keys = append(keys,
			cellKey{latCell: center.latCell + d, lonCell: center.lonCell - r},
			cellKey{latCell: center.latCell + d, lonCell: center.lonCell + r},
		)
	}
	return keys
}
