package defense

import (
	"math"
	"math/rand"
)

// This file implements the rapid-bit-exchange core of the distance
// bounding protocols the paper cites (§5.1 [12] Hancke & Kuhn; [13]
// Chiang, Haas & Hu; [14] Sastry, Shankar & Wagner): the verifier
// fires n single-bit challenges; the prover must answer each with the
// correct response bit within a time bound derived from the speed of
// light. A distant attacker faces a dilemma every round: wait for the
// challenge (and blow the time bound) or answer early (and guess the
// response bit, correct with probability 1/2). The protocol's false
// accept probability is therefore 2^-n.

// Prover is the device side of the rapid-bit exchange.
type Prover struct {
	// DistanceMeters is the prover's true distance from the verifier;
	// physics, not claims.
	DistanceMeters float64
	// GuessEarly makes the prover answer before hearing the challenge
	// — the distant attacker's only move. Each answer is then a coin
	// flip.
	GuessEarly bool
	// ProcessingSeconds is added turnaround per round (honest hardware
	// ~ nanoseconds; it can only slow the prover down).
	ProcessingSeconds float64
}

// ProtocolResult reports one protocol run.
type ProtocolResult struct {
	Accepted    bool
	Rounds      int
	TimingFails int // rounds where the response arrived too late
	BitFails    int // rounds where the response bit was wrong
}

// RapidBitConfig parameterizes the exchange.
type RapidBitConfig struct {
	// Rounds is the number of challenge bits (default 20 → 2^-20
	// false-accept).
	Rounds int
	// BoundMeters is the distance bound enforced per round (default
	// 100 m).
	BoundMeters float64
	// JitterStd is per-round RTT measurement noise in seconds (default
	// 10 ns ≈ 3 m, fast UWB ranging hardware).
	JitterStd float64
}

// FalseAcceptProbability returns the probability a guessing attacker
// passes all rounds: 2^-rounds.
func (c RapidBitConfig) FalseAcceptProbability() float64 {
	rounds := c.Rounds
	if rounds <= 0 {
		rounds = 20
	}
	return math.Pow(0.5, float64(rounds))
}

// RunRapidBitExchange executes the protocol between a verifier and a
// prover, returning per-round outcomes. rng drives challenge bits,
// guesses and jitter; a nil rng uses a fixed seed.
func RunRapidBitExchange(cfg RapidBitConfig, prover Prover, rng *rand.Rand) ProtocolResult {
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 20
	}
	bound := cfg.BoundMeters
	if bound <= 0 {
		bound = 100
	}
	jitter := cfg.JitterStd
	if jitter <= 0 {
		jitter = 10e-9
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	maxRTT := 2*bound/speedOfLight + 3*jitter

	res := ProtocolResult{Rounds: rounds, Accepted: true}
	for i := 0; i < rounds; i++ {
		challenge := rng.Intn(2) == 1

		var response bool
		var rtt float64
		if prover.GuessEarly {
			// The attacker transmits a guessed response timed to look
			// near: RTT is whatever it fakes (near zero), but the bit
			// is a coin flip.
			response = rng.Intn(2) == 1
			rtt = rng.NormFloat64() * jitter
		} else {
			response = challenge // honest prover computes correctly
			rtt = 2*prover.DistanceMeters/speedOfLight +
				prover.ProcessingSeconds + rng.NormFloat64()*jitter
		}

		if rtt > maxRTT {
			res.TimingFails++
			res.Accepted = false
		}
		if response != challenge {
			res.BitFails++
			res.Accepted = false
		}
	}
	return res
}

// MeasureFalseAcceptRate runs many protocol instances against a
// guessing attacker and returns the observed acceptance fraction —
// the empirical check of the 2^-n bound used by the E11 extension.
func MeasureFalseAcceptRate(cfg RapidBitConfig, trials int, seed int64) float64 {
	if trials <= 0 {
		trials = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	attacker := Prover{DistanceMeters: 5000, GuessEarly: true}
	accepted := 0
	for i := 0; i < trials; i++ {
		if RunRapidBitExchange(cfg, attacker, rng).Accepted {
			accepted++
		}
	}
	return float64(accepted) / float64(trials)
}
