package defense

import (
	"math"
	"math/rand"
	"testing"
)

func TestRapidBitHonestNearProverAccepted(t *testing.T) {
	cfg := RapidBitConfig{Rounds: 20, BoundMeters: 100}
	rng := rand.New(rand.NewSource(1))
	for _, dist := range []float64{1, 30, 80} {
		res := RunRapidBitExchange(cfg, Prover{DistanceMeters: dist}, rng)
		if !res.Accepted {
			t.Errorf("honest prover at %v m rejected: %+v", dist, res)
		}
		if res.BitFails != 0 {
			t.Errorf("honest prover flipped bits: %+v", res)
		}
	}
}

func TestRapidBitHonestFarProverTimesOut(t *testing.T) {
	cfg := RapidBitConfig{Rounds: 20, BoundMeters: 100}
	rng := rand.New(rand.NewSource(2))
	res := RunRapidBitExchange(cfg, Prover{DistanceMeters: 5000}, rng)
	if res.Accepted {
		t.Fatalf("5 km prover accepted: %+v", res)
	}
	if res.TimingFails == 0 {
		t.Error("distant prover should fail on timing")
	}
	if res.BitFails != 0 {
		t.Error("honest distant prover answers correctly, just late")
	}
}

func TestRapidBitProcessingDelayHurts(t *testing.T) {
	// Even a near prover with slow hardware exceeds the bound — the
	// protocol cannot be cheated by adding delay (only by removing it,
	// which physics forbids).
	cfg := RapidBitConfig{Rounds: 10, BoundMeters: 100}
	rng := rand.New(rand.NewSource(3))
	res := RunRapidBitExchange(cfg, Prover{DistanceMeters: 10, ProcessingSeconds: 1e-3}, rng)
	if res.Accepted {
		t.Errorf("laggy prover accepted: %+v", res)
	}
}

func TestRapidBitGuessingAttackerBitFails(t *testing.T) {
	cfg := RapidBitConfig{Rounds: 20, BoundMeters: 100}
	rng := rand.New(rand.NewSource(4))
	res := RunRapidBitExchange(cfg, Prover{DistanceMeters: 5000, GuessEarly: true}, rng)
	if res.Accepted {
		t.Fatalf("guessing attacker passed 20 rounds (p = 2^-20): %+v", res)
	}
	if res.BitFails == 0 {
		t.Error("guessing attacker should flip bits")
	}
	if res.TimingFails != 0 {
		t.Error("early-replying attacker should not fail timing")
	}
}

func TestRapidBitFalseAcceptRateMatchesTheory(t *testing.T) {
	// With few rounds the 2^-n bound is measurable: n=2 → 25%.
	cfg := RapidBitConfig{Rounds: 2, BoundMeters: 100}
	got := MeasureFalseAcceptRate(cfg, 20000, 7)
	want := cfg.FalseAcceptProbability()
	if math.Abs(got-want) > 0.02 {
		t.Errorf("false-accept rate = %.4f, theory %.4f", got, want)
	}
	// And with 20 rounds it is negligible.
	strong := RapidBitConfig{Rounds: 20, BoundMeters: 100}
	if rate := MeasureFalseAcceptRate(strong, 5000, 8); rate > 0.001 {
		t.Errorf("20-round false-accept rate = %.4f, want ~2^-20", rate)
	}
}

func TestRapidBitDefaults(t *testing.T) {
	res := RunRapidBitExchange(RapidBitConfig{}, Prover{DistanceMeters: 10}, nil)
	if res.Rounds != 20 || !res.Accepted {
		t.Errorf("defaulted run = %+v", res)
	}
	var cfg RapidBitConfig
	if p := cfg.FalseAcceptProbability(); math.Abs(p-math.Pow(0.5, 20)) > 1e-12 {
		t.Errorf("default false-accept = %v", p)
	}
	if MeasureFalseAcceptRate(RapidBitConfig{Rounds: 1}, 0, 9) < 0.3 {
		t.Error("1-round protocol should accept ~half of guessers")
	}
}
