// Package defense implements the §5.1 location-verification
// techniques and compares them the way the paper does (accuracy vs
// cost vs deployability), plus the §5.2 anti-crawl mitigation models.
//
// The three verifiers:
//
//   - Distance bounding: a challenge-response exchange whose
//     round-trip time is bounded by the speed of light; the verifier
//     estimates the prover's distance from the RTT. Most accurate,
//     needs dedicated verifier hardware at every venue.
//   - Address mapping: geolocate the client's IP address; city-level
//     accuracy at best, and mobile carriers route through non-local
//     gateways, so honest users get false-rejected.
//   - Venue-side Wi-Fi verification: the venue's existing Wi-Fi router
//     vouches for devices inside its radio range (~100 m). No new
//     hardware, but a cheater sitting next door — inside the radio
//     range of the wrong venue — still passes unless the owner
//     restricts the range (the Wendy's-next-to-McDonald's case).
//
// Physics the attacker cannot fake (signal propagation) is modelled
// from the device's true location; everything the attacker can fake
// (GPS coordinates, claimed venue) is modelled from the claim.
package defense

import (
	"fmt"
	"math/rand"

	"locheat/internal/geo"
)

const speedOfLight = 299792458.0 // m/s

// Device is the prover: where it really is, and what its network
// looks like.
type Device struct {
	// TrueLocation is the physical position; radio physics derive from
	// it.
	TrueLocation geo.Point
	// IPCity is the city the device's IP geolocates to; for mobile
	// clients this is often the carrier gateway's city, not the
	// user's.
	IPCity string
	// ProcessingDelaySeconds is the device's protocol turnaround time;
	// a cheater can only ADD delay (making itself look farther), never
	// respond faster than light.
	ProcessingDelaySeconds float64
}

// Verdict is one verification outcome.
type Verdict struct {
	Accepted          bool
	EstimatedDistance float64 // meters from the claimed point, as the verifier sees it
	Detail            string
}

// Characteristics carries the paper's comparison axes. Cost and
// deployability are ordinal (1 = best).
type Characteristics struct {
	AccuracyMeters float64 // typical localization error
	CostRank       int     // 1 = cheapest
	Deployability  string
}

// Verifier is one location-verification technique.
type Verifier interface {
	Name() string
	// Verify decides whether the device may check in at claim.
	Verify(claim geo.Point, dev Device) Verdict
	Characteristics() Characteristics
}

// DistanceBounding ------------------------------------------------------

// DistanceBounding verifies via an RF challenge-response from a
// verifier placed at the venue.
type DistanceBounding struct {
	// BoundMeters is the maximum accepted distance (default 100 m).
	BoundMeters float64
	// NominalProcessing is subtracted from the RTT (default 1 µs).
	NominalProcessing float64
	// JitterStd is the RTT measurement noise in seconds (default 50 ns
	// ≈ 15 m of ranging error).
	JitterStd float64
	// Rng drives the jitter; nil uses an unseeded deterministic source.
	Rng *rand.Rand
}

var _ Verifier = (*DistanceBounding)(nil)

// Name implements Verifier.
func (d *DistanceBounding) Name() string { return "distance-bounding" }

// Characteristics implements Verifier: most accurate, most expensive
// ("it's expensive to deploy location verification based on distance
// bounding").
func (d *DistanceBounding) Characteristics() Characteristics {
	return Characteristics{AccuracyMeters: 20, CostRank: 3, Deployability: "verifier hardware at every venue"}
}

func (d *DistanceBounding) params() (bound, proc, jitter float64, rng *rand.Rand) {
	bound, proc, jitter, rng = d.BoundMeters, d.NominalProcessing, d.JitterStd, d.Rng
	if bound <= 0 {
		bound = 100
	}
	if proc <= 0 {
		proc = 1e-6
	}
	if jitter <= 0 {
		jitter = 50e-9
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return bound, proc, jitter, rng
}

// Verify implements Verifier. The verifier sits at the claimed venue;
// the RTT is governed by the device's TRUE distance — the one thing
// spoofed GPS cannot change.
func (d *DistanceBounding) Verify(claim geo.Point, dev Device) Verdict {
	bound, proc, jitter, rng := d.params()
	trueDist := claim.DistanceMeters(dev.TrueLocation)
	extra := dev.ProcessingDelaySeconds // cheaters can only add delay
	rtt := 2*trueDist/speedOfLight + proc + extra + rng.NormFloat64()*jitter
	est := (rtt - proc) * speedOfLight / 2
	if est < 0 {
		est = 0
	}
	return Verdict{
		Accepted:          est <= bound,
		EstimatedDistance: est,
		Detail:            fmt.Sprintf("rtt-ranged %.1f m, bound %.0f m", est, bound),
	}
}

// AddressMapping --------------------------------------------------------

// AddressMapping geolocates the client IP to a city centroid and
// accepts when the claim is within ToleranceMeters of it.
type AddressMapping struct {
	// ToleranceMeters is the acceptance radius around the IP's city
	// centroid (default 50 km — city-level accuracy).
	ToleranceMeters float64
	// GeoIP maps city name → centroid; nil uses the built-in US
	// gazetteer.
	GeoIP map[string]geo.Point
}

var _ Verifier = (*AddressMapping)(nil)

// NewAddressMapping builds the verifier over the built-in gazetteer.
func NewAddressMapping() *AddressMapping {
	table := make(map[string]geo.Point)
	for _, c := range geo.USCities() {
		table[c.Name] = c.Center
	}
	return &AddressMapping{GeoIP: table}
}

// Name implements Verifier.
func (a *AddressMapping) Name() string { return "address-mapping" }

// Characteristics implements Verifier: least accurate, cheapest.
func (a *AddressMapping) Characteristics() Characteristics {
	return Characteristics{AccuracyMeters: 50000, CostRank: 1, Deployability: "server-side only"}
}

// Verify implements Verifier. An unknown IP city cannot be verified
// and is rejected (fail-closed).
func (a *AddressMapping) Verify(claim geo.Point, dev Device) Verdict {
	tol := a.ToleranceMeters
	if tol <= 0 {
		tol = 50000
	}
	centroid, ok := a.GeoIP[dev.IPCity]
	if !ok {
		return Verdict{Detail: fmt.Sprintf("IP city %q not in geolocation table", dev.IPCity)}
	}
	dist := claim.DistanceMeters(centroid)
	return Verdict{
		Accepted:          dist <= tol,
		EstimatedDistance: dist,
		Detail:            fmt.Sprintf("IP locates to %s, %.0f m from claim (tolerance %.0f m)", dev.IPCity, dist, tol),
	}
}

// Venue-side Wi-Fi ------------------------------------------------------

// Router is a venue's Wi-Fi router registered as a verifier with the
// LBS server.
type Router struct {
	Venue geo.Point
	// RangeMeters is the radio range (default 100 m, per the cited
	// localization literature); owners can restrict it via firmware
	// (DD-WRT) to shrink the next-door false-accept window.
	RangeMeters float64
	// Registered must be true for the LBS server to trust the router's
	// vouchers (blocks impersonation).
	Registered bool
}

// WiFiVerification is the venue-side technique: the router vouches for
// devices within its radio range.
type WiFiVerification struct {
	// Routers maps a claimed venue location (stringified) to its
	// router; in a real deployment the LBS server holds this registry.
	routers map[string]*Router
}

var _ Verifier = (*WiFiVerification)(nil)

// NewWiFiVerification builds an empty registry.
func NewWiFiVerification() *WiFiVerification {
	return &WiFiVerification{routers: make(map[string]*Router)}
}

// RegisterRouter installs a venue's router; rangeMeters ≤ 0 defaults
// to 100 m.
func (w *WiFiVerification) RegisterRouter(venue geo.Point, rangeMeters float64) *Router {
	if rangeMeters <= 0 {
		rangeMeters = 100
	}
	r := &Router{Venue: venue, RangeMeters: rangeMeters, Registered: true}
	w.routers[venue.String()] = r
	return r
}

// Name implements Verifier.
func (w *WiFiVerification) Name() string { return "venue-side-wifi" }

// Characteristics implements Verifier: good-enough accuracy, no new
// hardware ("owners of the venues can simply update the software on
// their existing routers").
func (w *WiFiVerification) Characteristics() Characteristics {
	return Characteristics{AccuracyMeters: 100, CostRank: 2, Deployability: "firmware update on existing routers"}
}

// Verify implements Verifier. Venues without a registered router
// cannot verify (fail-closed). The router only hears devices whose
// TRUE position is inside its radio range.
func (w *WiFiVerification) Verify(claim geo.Point, dev Device) Verdict {
	r, ok := w.routers[claim.String()]
	if !ok || !r.Registered {
		return Verdict{Detail: "no registered router at venue"}
	}
	trueDist := r.Venue.DistanceMeters(dev.TrueLocation)
	inRange := trueDist <= r.RangeMeters
	return Verdict{
		Accepted:          inRange,
		EstimatedDistance: trueDist,
		Detail:            fmt.Sprintf("device %.0f m from router, range %.0f m", trueDist, r.RangeMeters),
	}
}

// Comparison harness ----------------------------------------------------

// TrialResult is one (verifier, attacker-distance) cell of the E11
// comparison table.
type TrialResult struct {
	Verifier       string
	AttackerMeters float64
	Accepted       bool
	EstimateMeters float64
}

// CompareAtDistances runs every verifier against a device placed at
// each distance from the claimed venue, reproducing the §5.1
// comparison. The device's IP geolocates to its true nearest city.
func CompareAtDistances(verifiers []Verifier, venue geo.Point, distances []float64) []TrialResult {
	out := make([]TrialResult, 0, len(verifiers)*len(distances))
	for _, dist := range distances {
		truePos := venue.Destination(90, dist)
		dev := Device{TrueLocation: truePos, IPCity: nearestCity(truePos)}
		for _, v := range verifiers {
			verdict := v.Verify(venue, dev)
			out = append(out, TrialResult{
				Verifier:       v.Name(),
				AttackerMeters: dist,
				Accepted:       verdict.Accepted,
				EstimateMeters: verdict.EstimatedDistance,
			})
		}
	}
	return out
}

func nearestCity(p geo.Point) string {
	best := ""
	bestDist := -1.0
	for _, c := range geo.USCities() {
		d := p.DistanceMeters(c.Center)
		if bestDist < 0 || d < bestDist {
			bestDist = d
			best = c.Name
		}
	}
	return best
}

// Anti-crawl mitigation models (§5.2) ------------------------------------

// BlockingOutcome summarizes the collateral damage of IP blocking when
// crawlers hide behind NATs or proxies. Casado & Freedman (cited in
// §5.2): "most NATs only have a few hosts behind them, and proxies
// generally have much more."
type BlockingOutcome struct {
	BlockedIPs         int
	CrawlersBlocked    int
	LegitimateBlocked  int // collateral damage
	CollateralPerBlock float64
}

// SimulateIPBlocking models blocking every IP a crawler appears
// behind: NAT IPs shield natHosts legitimate users each, proxy IPs
// shield proxyHosts each.
func SimulateIPBlocking(crawlersBehindNATs, natHosts, crawlersBehindProxies, proxyHosts int) BlockingOutcome {
	out := BlockingOutcome{
		BlockedIPs:        crawlersBehindNATs + crawlersBehindProxies,
		CrawlersBlocked:   crawlersBehindNATs + crawlersBehindProxies,
		LegitimateBlocked: crawlersBehindNATs*natHosts + crawlersBehindProxies*proxyHosts,
	}
	if out.BlockedIPs > 0 {
		out.CollateralPerBlock = float64(out.LegitimateBlocked) / float64(out.BlockedIPs)
	}
	return out
}
