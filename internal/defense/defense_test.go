package defense

import (
	"math"
	"math/rand"
	"testing"

	"locheat/internal/geo"
)

func venueLoc() geo.Point {
	sf, _ := geo.FindCity("San Francisco")
	return sf.Center
}

func TestDistanceBoundingAcceptsNearRejectsFar(t *testing.T) {
	db := &DistanceBounding{Rng: rand.New(rand.NewSource(42))}
	venue := venueLoc()

	near := Device{TrueLocation: venue.Destination(0, 20)}
	if v := db.Verify(venue, near); !v.Accepted {
		t.Errorf("20 m device rejected: %+v", v)
	}
	far := Device{TrueLocation: venue.Destination(0, 5000)}
	if v := db.Verify(venue, far); v.Accepted {
		t.Errorf("5 km device accepted: %+v", v)
	}
	// Cross-country spoofer: hopeless.
	lincoln, _ := geo.FindCity("Lincoln")
	remote := Device{TrueLocation: lincoln.Center}
	if v := db.Verify(venue, remote); v.Accepted {
		t.Errorf("2000 km device accepted: %+v", v)
	}
}

func TestDistanceBoundingEstimateAccuracy(t *testing.T) {
	db := &DistanceBounding{Rng: rand.New(rand.NewSource(7))}
	venue := venueLoc()
	for _, dist := range []float64{10, 50, 90} {
		dev := Device{TrueLocation: venue.Destination(90, dist)}
		v := db.Verify(venue, dev)
		if math.Abs(v.EstimatedDistance-dist) > 60 {
			t.Errorf("estimate for %v m = %.1f m, want within ranging noise", dist, v.EstimatedDistance)
		}
	}
}

func TestDistanceBoundingDelayOnlyHurts(t *testing.T) {
	// A cheater adding processing delay looks FARTHER, never nearer:
	// it cannot beat the speed of light.
	db := &DistanceBounding{Rng: rand.New(rand.NewSource(9))}
	venue := venueLoc()
	honest := Device{TrueLocation: venue.Destination(0, 5000)}
	cheater := Device{TrueLocation: venue.Destination(0, 5000), ProcessingDelaySeconds: -1e-3}
	_ = cheater // negative delay is unphysical; the model only adds.
	slow := Device{TrueLocation: venue.Destination(0, 50), ProcessingDelaySeconds: 1e-3}
	v := db.Verify(venue, slow)
	if v.Accepted {
		t.Errorf("laggy device inside bound accepted at estimate %.0f m — delay must inflate distance", v.EstimatedDistance)
	}
	if hv := db.Verify(venue, honest); hv.Accepted {
		t.Error("distant device accepted")
	}
}

func TestAddressMappingCityLevel(t *testing.T) {
	am := NewAddressMapping()
	venue := venueLoc()

	// Honest local user: IP geolocates to San Francisco, claim is in
	// San Francisco -> accepted.
	local := Device{TrueLocation: venue.Destination(0, 3000), IPCity: "San Francisco"}
	if v := am.Verify(venue, local); !v.Accepted {
		t.Errorf("local device rejected: %+v", v)
	}
	// Spoofer whose IP is in Lincoln claiming SF -> rejected.
	remote := Device{IPCity: "Lincoln"}
	if v := am.Verify(venue, remote); v.Accepted {
		t.Errorf("cross-country IP accepted: %+v", v)
	}
	// The §5.1 weakness: a cheater ACROSS TOWN passes — city-level
	// tolerance cannot tell 20 km apart.
	acrossTown := Device{TrueLocation: venue.Destination(90, 20000), IPCity: "San Francisco"}
	if v := am.Verify(venue, acrossTown); !v.Accepted {
		t.Errorf("same-city cheater rejected — address mapping should be too coarse to catch this: %+v", v)
	}
	// Carrier-gateway false reject: honest SF user whose mobile IP
	// geolocates to Denver.
	gateway := Device{TrueLocation: venue, IPCity: "Denver"}
	if v := am.Verify(venue, gateway); v.Accepted {
		t.Errorf("honest user with non-local carrier IP accepted (tolerance too wide): %+v", v)
	}
	// Unknown IP: fail closed.
	if v := am.Verify(venue, Device{IPCity: "Narnia"}); v.Accepted {
		t.Error("unknown IP city accepted")
	}
}

func TestWiFiVerification(t *testing.T) {
	w := NewWiFiVerification()
	venue := venueLoc()

	// No router registered: fail closed.
	if v := w.Verify(venue, Device{TrueLocation: venue}); v.Accepted {
		t.Error("venue without router accepted")
	}
	w.RegisterRouter(venue, 0) // default 100 m
	inside := Device{TrueLocation: venue.Destination(0, 50)}
	if v := w.Verify(venue, inside); !v.Accepted {
		t.Errorf("in-range device rejected: %+v", v)
	}
	outside := Device{TrueLocation: venue.Destination(0, 250)}
	if v := w.Verify(venue, outside); v.Accepted {
		t.Errorf("out-of-range device accepted: %+v", v)
	}
}

func TestWiFiNextDoorFalseAcceptAndDDWRTFix(t *testing.T) {
	// §5.1: "a cheater sitting inside a McDonald's can check-in to the
	// Wendy's next door, which is only 50 meters away." The DD-WRT
	// range restriction closes the hole.
	w := NewWiFiVerification()
	wendys := venueLoc()
	mcdonalds := wendys.Destination(90, 50)
	w.RegisterRouter(wendys, 100)

	cheater := Device{TrueLocation: mcdonalds}
	if v := w.Verify(wendys, cheater); !v.Accepted {
		t.Fatalf("next-door cheater should pass the default 100 m range: %+v", v)
	}
	// Restrict the Wendy's router to 30 m.
	w.RegisterRouter(wendys, 30)
	if v := w.Verify(wendys, cheater); v.Accepted {
		t.Errorf("next-door cheater still accepted after range restriction: %+v", v)
	}
	// Genuine customer inside Wendy's still fine.
	if v := w.Verify(wendys, Device{TrueLocation: wendys.Destination(0, 10)}); !v.Accepted {
		t.Errorf("in-store customer rejected after restriction: %+v", v)
	}
}

func TestUnregisteredRouterRejected(t *testing.T) {
	w := NewWiFiVerification()
	venue := venueLoc()
	r := w.RegisterRouter(venue, 100)
	r.Registered = false // impersonation defence: unregistered vouchers are ignored
	if v := w.Verify(venue, Device{TrueLocation: venue}); v.Accepted {
		t.Error("unregistered router's voucher accepted")
	}
}

func TestCompareAtDistancesShape(t *testing.T) {
	// E11: who accepts whom across the distance sweep.
	venue := venueLoc()
	w := NewWiFiVerification()
	w.RegisterRouter(venue, 100)
	verifiers := []Verifier{
		&DistanceBounding{Rng: rand.New(rand.NewSource(3))},
		NewAddressMapping(),
		w,
	}
	distances := []float64{10, 50, 1000, 10000, 1000000}
	results := CompareAtDistances(verifiers, venue, distances)
	if len(results) != len(verifiers)*len(distances) {
		t.Fatalf("results = %d, want %d", len(results), len(verifiers)*len(distances))
	}
	get := func(name string, dist float64) TrialResult {
		for _, r := range results {
			if r.Verifier == name && r.AttackerMeters == dist {
				return r
			}
		}
		t.Fatalf("missing cell %s@%v", name, dist)
		return TrialResult{}
	}
	// All three accept a device at the venue door (10 m).
	for _, name := range []string{"distance-bounding", "address-mapping", "venue-side-wifi"} {
		if !get(name, 10).Accepted {
			t.Errorf("%s rejects a device at the door", name)
		}
	}
	// At 1 km: address mapping is fooled, the others are not.
	if !get("address-mapping", 1000).Accepted {
		t.Error("address mapping should be too coarse to catch a 1 km cheater")
	}
	if get("distance-bounding", 1000).Accepted {
		t.Error("distance bounding caught out at 1 km")
	}
	if get("venue-side-wifi", 1000).Accepted {
		t.Error("wifi verification caught out at 1 km")
	}
	// At 1000 km everyone rejects.
	for _, name := range []string{"distance-bounding", "address-mapping", "venue-side-wifi"} {
		if get(name, 1000000).Accepted {
			t.Errorf("%s accepts a 1000 km cheater", name)
		}
	}
}

func TestCharacteristicsOrdering(t *testing.T) {
	db := &DistanceBounding{}
	am := NewAddressMapping()
	wf := NewWiFiVerification()
	// Accuracy: distance bounding best, address mapping worst.
	if !(db.Characteristics().AccuracyMeters < wf.Characteristics().AccuracyMeters &&
		wf.Characteristics().AccuracyMeters < am.Characteristics().AccuracyMeters) {
		t.Error("accuracy ordering wrong (want DB < WiFi < AddressMapping error)")
	}
	// Cost: address mapping cheapest, distance bounding most expensive.
	if !(am.Characteristics().CostRank < wf.Characteristics().CostRank &&
		wf.Characteristics().CostRank < db.Characteristics().CostRank) {
		t.Error("cost ordering wrong (want AM < WiFi < DB)")
	}
}

func TestSimulateIPBlocking(t *testing.T) {
	// Casado & Freedman: NATs shield few hosts, proxies many.
	nat := SimulateIPBlocking(10, 3, 0, 0)
	if nat.CrawlersBlocked != 10 || nat.LegitimateBlocked != 30 {
		t.Errorf("NAT outcome = %+v", nat)
	}
	proxy := SimulateIPBlocking(0, 0, 2, 500)
	if proxy.LegitimateBlocked != 1000 {
		t.Errorf("proxy outcome = %+v", proxy)
	}
	if proxy.CollateralPerBlock <= nat.CollateralPerBlock {
		t.Error("proxy blocking should cause more collateral per blocked IP than NAT blocking")
	}
	empty := SimulateIPBlocking(0, 0, 0, 0)
	if empty.CollateralPerBlock != 0 {
		t.Error("empty simulation should not divide by zero")
	}
}

func TestVerifierNames(t *testing.T) {
	if (&DistanceBounding{}).Name() == "" || NewAddressMapping().Name() == "" || NewWiFiVerification().Name() == "" {
		t.Error("verifier names must be non-empty")
	}
}
