package wirecodec

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	at := time.Date(2011, 6, 20, 12, 30, 45, 987654321, time.UTC)
	var b []byte
	b = append(b, Version)
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<63)
	b = AppendVarint(b, -42)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendString(b, "hello, wire")
	b = AppendString(b, "")
	b = AppendBytes(b, []byte{0, 1, 2, 0xff})
	b = AppendF64(b, -122.4194)
	b = AppendTime(b, at)
	b = AppendTime(b, time.Time{})

	d := NewDecoder(b)
	d.Version()
	if got := d.Uvarint(); got != 0 {
		t.Fatalf("uvarint 0 = %d", got)
	}
	if got := d.Uvarint(); got != 1<<63 {
		t.Fatalf("uvarint 2^63 = %d", got)
	}
	if got := d.Varint(); got != -42 {
		t.Fatalf("varint -42 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools flipped")
	}
	if got := d.String(); got != "hello, wire" {
		t.Fatalf("string = %q", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("empty string = %q", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{0, 1, 2, 0xff}) {
		t.Fatalf("bytes = %v", got)
	}
	if got := d.F64(); got != -122.4194 {
		t.Fatalf("f64 = %v", got)
	}
	if got := d.Time(); !got.Equal(at) {
		t.Fatalf("time = %v, want %v", got, at)
	}
	if got := d.Time(); !got.IsZero() {
		t.Fatalf("zero time = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

// TestDecoderBytesOutliveBuffer pins the copy-out contract: decoded
// strings and byte slices must survive the input buffer being reused
// (the handlers decode out of pooled buffers).
func TestDecoderBytesOutliveBuffer(t *testing.T) {
	var b []byte
	b = AppendString(b, "stage-name")
	b = AppendBytes(b, []byte("blob"))
	d := NewDecoder(b)
	s, blob := d.String(), d.Bytes()
	for i := range b {
		b[i] = 0xee
	}
	if s != "stage-name" || string(blob) != "blob" {
		t.Fatalf("decoded values aliased the input: %q %q", s, blob)
	}
}

// TestDecoderRejectsDamage: every strict prefix of a valid message is
// truncation and must error; trailing garbage must error; a bool byte
// outside 0/1 must error; none may panic.
func TestDecoderRejectsDamage(t *testing.T) {
	var b []byte
	b = append(b, Version)
	b = AppendString(b, "payload")
	b = AppendUvarint(b, 7)
	b = AppendTime(b, time.Date(2011, 1, 2, 3, 4, 5, 6, time.UTC))
	decode := func(in []byte) error {
		d := NewDecoder(in)
		d.Version()
		_ = d.String()
		_ = d.Uvarint()
		_ = d.Time()
		return d.Finish()
	}
	if err := decode(b); err != nil {
		t.Fatalf("valid message rejected: %v", err)
	}
	for cut := 0; cut < len(b); cut++ {
		if err := decode(b[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(b))
		}
	}
	if err := decode(append(append([]byte{}, b...), 0xaa)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if d := NewDecoder([]byte{2}); d.Bool() || d.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

// TestCountGuardsAllocation: a length prefix claiming more elements
// than the remaining input could hold must fail BEFORE any per-element
// allocation happens.
func TestCountGuardsAllocation(t *testing.T) {
	b := AppendUvarint(nil, 1<<40) // claims a trillion elements, carries none
	d := NewDecoder(b)
	if n := d.Count(8); n != 0 || d.Err() == nil {
		t.Fatalf("oversized count passed: n=%d err=%v", n, d.Err())
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	b := GetBuffer()
	b.B = AppendString(b.B, "x")
	PutBuffer(b)
	b2 := GetBuffer()
	if len(b2.B) != 0 {
		t.Fatal("pooled buffer not reset")
	}
	if _, err := b2.ReadFrom(strings.NewReader(strings.Repeat("y", 9000))); err != nil {
		t.Fatal(err)
	}
	if len(b2.B) != 9000 {
		t.Fatalf("ReadFrom read %d bytes, want 9000", len(b2.B))
	}
	PutBuffer(b2)
}

// FuzzDecoder drives the primitive decoder over arbitrary input: it
// must never panic, and every length it honors must fit the input (no
// oversized allocations).
func FuzzDecoder(f *testing.F) {
	var seed []byte
	seed = append(seed, Version)
	seed = AppendString(seed, "seed")
	seed = AppendUvarint(seed, 123)
	seed = AppendTime(seed, time.Date(2011, 6, 20, 0, 0, 0, 0, time.UTC))
	seed = AppendF64(seed, 1.5)
	seed = AppendBool(seed, true)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{Version, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, in []byte) {
		d := NewDecoder(in)
		d.Version()
		_ = d.String()
		_ = d.Uvarint()
		_ = d.Time()
		_ = d.F64()
		_ = d.Bool()
		_ = d.Bytes()
		_ = d.Count(4)
		_ = d.Finish() // may be nil for coincidentally valid input; must not panic
	})
}
