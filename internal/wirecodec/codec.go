// Package wirecodec is the hot-path binary codec: the primitives every
// byte-moving path in the system (cross-node forwarding, journal
// replication, quarantine broadcast, handoff, and the on-disk journal's
// v2 record format) encodes with instead of encoding/json.
//
// The package deliberately holds only the *mechanics* — append-style
// encoders over pooled buffers and a bounds-checked sticky-error
// decoder. The per-type layouts live next to the types they encode
// (store.AppendAlert, replica.AppendShipBatch, cluster's codec.go), so
// the dependency order of the layers is preserved: wirecodec sits at
// the bottom and imports nothing from the repo.
//
// Design rules, shared by every layout built on these primitives:
//
//   - top-level messages lead with a version byte (Version) so the
//     format can evolve; containers are versioned, elements are not;
//   - variable-length fields are uvarint-length-prefixed;
//   - times are an instant (presence byte + UnixNano varint, decoded
//     UTC) — the same information JSON's RFC3339 carries, minus the
//     redundant zone rendering;
//   - decoding malformed or truncated input must return an error and
//     never panic or over-allocate: every length is checked against
//     the remaining input before use (see Decoder.Count), which is
//     what makes the decoder safe to fuzz and to face the network.
//
// On the wire the codec is negotiated per peer via the Content-Type
// ContentTypeBinary with JSON fallback, so a mixed-version cluster
// interoperates during a rolling upgrade (see internal/cluster).
package wirecodec

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"sync"
	"time"
)

// ContentTypeBinary is the HTTP Content-Type announcing (and carrying)
// this codec on the cluster's internal wire. A receiver that does not
// speak it answers 415 and the sender falls back to JSON.
const ContentTypeBinary = "application/x-locheat-bin"

// Version is the current codec version. Every top-level message starts
// with this byte; decoders reject others. It also doubles as the
// first-byte discriminator against JSON payloads ('{' = 0x7b), which
// is how format-sniffing readers (the outbox spill) tell them apart.
const Version byte = 1

// VersionTraced is the trace-aware message version: the same layout
// as Version with trailing trace-context fields on the elements that
// carry one. Encoders emit it only to peers that advertised the
// capability (codec "bin/2" in the heartbeat); decoders accept both,
// so a mixed-version cluster stays lossless — an old receiver never
// sees a version byte it does not know, and a new receiver reads
// old bodies as untraced.
const VersionTraced byte = 2

// ErrMalformed is the sticky decoder error for any structural damage:
// short input, oversized length prefix, bad version or enum byte,
// trailing garbage.
var ErrMalformed = errors.New("wirecodec: malformed input")

// maxPooledBuffer caps the buffers returned to the pool; encoding a
// pathological batch must not pin its high-water mark forever.
const maxPooledBuffer = 1 << 20

// Buffer is a reusable encode/read buffer. Callers append to B (the
// Append* helpers return the grown slice) and must not retain B after
// Put.
type Buffer struct{ B []byte }

var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 512)} }}

// GetBuffer returns an empty pooled buffer.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// PutBuffer returns a buffer to the pool. Oversized buffers are
// dropped instead so one huge message does not become permanent
// per-P memory.
func PutBuffer(b *Buffer) {
	if b == nil || cap(b.B) > maxPooledBuffer {
		return
	}
	bufPool.Put(b)
}

// ReadFrom fills the buffer from r until EOF (the pooled replacement
// for io.ReadAll on request bodies).
func (b *Buffer) ReadFrom(r io.Reader) (int64, error) {
	var total int64
	for {
		if len(b.B) == cap(b.B) {
			b.B = append(b.B, 0)[:len(b.B)]
		}
		n, err := r.Read(b.B[len(b.B):cap(b.B)])
		b.B = b.B[:len(b.B)+n]
		total += int64(n)
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// --- append-style encoders ---------------------------------------------

// AppendUvarint appends v in unsigned varint form.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendVarint appends v in zig-zag varint form.
func AppendVarint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

// AppendBool appends a single 0/1 byte.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendString appends a uvarint length prefix followed by the bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a uvarint length prefix followed by the bytes.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendF64 appends the IEEE-754 bits big-endian.
func AppendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendTime appends an instant: presence byte, then UnixNano as a
// varint. The zero time round-trips as zero; non-zero times decode as
// the same instant in UTC (zone rendering is JSON baggage the wire
// does not pay for). Instants outside the int64-nanosecond range
// (years ≲1678 / ≳2262) are not representable — nothing in this
// system produces them.
func AppendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.AppendVarint(dst, t.UnixNano())
}

// --- bounds-checked decoder --------------------------------------------

// Decoder consumes a byte slice with a sticky error: after the first
// structural failure every read returns a zero value and Err reports
// the failure, so per-field error plumbing disappears from the type
// codecs. Strings and byte slices are copied out — decoded values
// never alias the (possibly pooled) input buffer.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps buf for decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the sticky error, nil while the input has been
// well-formed so far.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the unconsumed byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrMalformed
	}
}

// Version consumes and checks the leading message version byte.
func (d *Decoder) Version() {
	if d.Byte() != Version {
		d.fail()
	}
}

// VersionUpTo consumes the leading version byte, accepting any
// version in [1, max] — the entry point for containers whose decoder
// understands multiple layouts. Returns 0 (with the sticky error set)
// on anything else.
func (d *Decoder) VersionUpTo(max byte) byte {
	v := d.Byte()
	if v < 1 || v > max {
		d.fail()
		return 0
	}
	return v
}

// Byte consumes one byte.
func (d *Decoder) Byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Uvarint consumes an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Varint consumes a zig-zag varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Bool consumes a 0/1 byte; anything else is malformed.
func (d *Decoder) Bool() bool {
	switch d.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail()
		return false
	}
}

// take consumes n raw bytes, bounds-checked.
func (d *Decoder) take(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// String consumes a length-prefixed string (copied out of the buffer).
func (d *Decoder) String() string {
	return string(d.take(d.Uvarint()))
}

// Bytes consumes a length-prefixed byte slice (copied out of the
// buffer, so the result survives the input buffer's reuse).
func (d *Decoder) Bytes() []byte {
	b := d.take(d.Uvarint())
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// F64 consumes 8 big-endian IEEE-754 bytes.
func (d *Decoder) F64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// Time consumes an instant written by AppendTime, in UTC.
func (d *Decoder) Time() time.Time {
	if !d.Bool() {
		return time.Time{}
	}
	ns := d.Varint()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// Count consumes a collection length and rejects any count that cannot
// possibly fit in the remaining input at elemMin bytes per element —
// the guard that keeps a malicious length prefix from turning into a
// multi-gigabyte allocation before the first element even fails to
// parse.
func (d *Decoder) Count(elemMin int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64(d.Remaining()/elemMin) {
		d.fail()
		return 0
	}
	return int(n)
}

// Finish reports the terminal decode verdict: the sticky error if any,
// or ErrMalformed when well-formed fields were followed by trailing
// garbage (a message must be exactly its encoding).
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return ErrMalformed
	}
	return nil
}
