// Package loadgen is the million-user load harness: it materializes a
// synth.World at 100k–1M users and replays its check-in traffic against
// a LIVE lbsnd cluster over the public developer API — the same
// trust-the-client surface the §3.1 attackers use — at a target
// events-per-second, mixing ground-truth-labelled attack cohorts from
// internal/attack into the benign stream so the detection pipeline's
// output can be scored for recall.
//
// The harness is open-loop: the benign dispatcher paces wall-clock
// time and never blocks on the system under test — when the cluster
// sheds (429) or a posting queue backs up, the harness counts the loss
// and keeps pacing, which is what makes the backpressure measurements
// honest (a closed-loop generator slows down exactly when the system
// misbehaves, hiding the overload it was supposed to produce).
//
// The cluster must be started from the SAME -users/-seed world: user
// index i is service ID i+1 and venue index j is ID j+1 on both sides,
// so the harness knows every ID and every ground-truth class without
// asking the cluster.
//
// Two clocks run side by side, deliberately:
//
//   - benign users pace in real wall time, spaced to stay inside the
//     detection envelope (rate throttle 12/30min, speed 15 m/s,
//     same-venue cooldown 1h) — they are the traffic that must NOT
//     alert;
//   - attack cohorts pace through simclock.ScaledSleeper, compressing
//     the §3.3 multi-day schedules (5-minute hops, day-long mayorship
//     campaigns) onto seconds of wall time. The server stamps arrivals
//     with its own clock, so compression makes every attacker's
//     implied travel physically impossible — they are the traffic
//     that MUST alert, and per-cohort recall scores whether it did.
package loadgen

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locheat/internal/api"
	"locheat/internal/geo"
	"locheat/internal/synth"
)

// Config sizes the run. Zero fields take defaults.
type Config struct {
	// Targets are the cluster nodes' public base URLs (http://host:port);
	// check-ins round-robin across them. At least one is required.
	Targets []string
	// APIKey authenticates against /api/v1 (the cluster's -api-key).
	APIKey string

	// Users is the world scale; the cluster must have been started with
	// the same -users and -seed (default 100000).
	Users int
	// Seed is the world RNG seed (default 42).
	Seed int64

	// Rate is the benign target in check-ins per second (default 100).
	// The harness caps each user's own pace to stay inside the
	// detection envelope, so a rate the sampled pool cannot sustain
	// shows up as Starved in the report instead of as false alerts.
	Rate float64
	// Duration is the traffic window (default 60s).
	Duration time.Duration
	// Workers is the benign posting pool size (default 32).
	Workers int

	// AttackUsers is the attacker count per cohort (default 8). The
	// attackers are drawn from the world's ground-truth cheater
	// population, so detection recall is measured against TrueClass.
	AttackUsers int
	// TimeScale compresses attack schedules: virtual seconds per wall
	// second (default 600 — a 5-minute §3.3 hop takes 500ms).
	TimeScale float64

	// MaxP99 is the detection-latency gate: a scraped p99 above it is a
	// violation (default 50ms).
	MaxP99 time.Duration
	// DrainTimeout bounds the post-traffic wait for the cluster's
	// queues to empty (default 15s); not draining is a violation.
	DrainTimeout time.Duration
	// RecallProbes caps the per-cohort users probed for alerts when
	// scoring recall (default 25).
	RecallProbes int

	// MembershipEvery is the interval at which the harness samples each
	// target's locheat_cluster_live_members gauge to detect ring
	// changes mid-run (default 500ms).
	MembershipEvery time.Duration
	// RequireFullRecall turns any attack cohort with a missed probe
	// into a violation. It is the chaos-drill gate: after joins, kills
	// and partitions, the rebalanced cluster must still catch every
	// probed attacker (default off — steady-state soaks gate on the
	// other invariants).
	RequireFullRecall bool

	// HTTP overrides the posting client (default: pooled transport).
	HTTP *http.Client
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 100000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.AttackUsers <= 0 {
		c.AttackUsers = 8
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 600
	}
	if c.MaxP99 <= 0 {
		c.MaxP99 = 50 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.RecallProbes <= 0 {
		c.RecallProbes = 25
	}
	if c.MembershipEvery <= 0 {
		c.MembershipEvery = 500 * time.Millisecond
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
			},
		}
	}
	return c
}

// Detection-envelope constants the benign pacing respects. They mirror
// the server defaults (stream.DetectConfig / cheatercode.DefaultConfig)
// with safety margin: the benign cohort exists to prove the detectors
// do NOT fire on honest traffic, so its pacing must clear every rule.
const (
	// minUserGap clears the 12-claims/30-minute rate throttle
	// (150s/claim) with margin.
	minUserGap = 155 * time.Second
	// cooldownSlack clears the 1h same-venue cooldown: a user's ring of
	// venues must take at least this long to cycle.
	cooldownSlack = 3700 * time.Second
	// benignSpeed is the assumed honest travel speed in m/s, placed
	// under the 15 m/s envelope with margin.
	benignSpeed = 12.0
	// ringSize is the venues each benign user rotates through.
	ringSize = 24
)

// benignUser is one paced honest user: a ring of nearby home-city
// venues cycled at a per-user gap that clears the detection envelope.
type benignUser struct {
	idx    int   // world user index (service ID idx+1)
	ring   []int // world venue indexes, visit order
	cursor int
	gap    time.Duration
	nextAt time.Time
}

// userHeap orders benign users by when they may next check in.
type userHeap []*benignUser

func (h userHeap) Len() int           { return len(h) }
func (h userHeap) Less(i, j int) bool { return h[i].nextAt.Before(h[j].nextAt) }
func (h userHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *userHeap) Push(x any)        { *h = append(*h, x.(*benignUser)) }
func (h *userHeap) Pop() any          { old := *h; n := len(old); u := old[n-1]; *h = old[:n-1]; return u }

type job struct {
	user  uint64
	venue uint64
	loc   geo.Point
}

// cohortStats aggregates one traffic class's outcomes.
type cohortStats struct {
	sent     atomic.Uint64
	accepted atomic.Uint64
	denied   atomic.Uint64
	shed     atomic.Uint64
	errors   atomic.Uint64
	// duringChange counts the cohort's posts inside a membership
	// change window (ring edge + settle) — traffic in flight while the
	// cluster was reshaping.
	duringChange atomic.Uint64
}

func (s *cohortStats) record(resp api.CheckinResponse, err error) {
	s.sent.Add(1)
	switch {
	case err == nil && resp.Accepted:
		s.accepted.Add(1)
	case err == nil:
		s.denied.Add(1)
	default:
		if _, ok := api.IsOverloaded(err); ok {
			s.shed.Add(1)
		} else {
			s.errors.Add(1)
		}
	}
}

// Runner drives one load run.
type Runner struct {
	cfg     Config
	world   *synth.World
	clients []*api.Client
	rr      atomic.Uint64 // round-robin cursor over clients

	benign  *cohortStats
	starved atomic.Uint64 // pacing ticks with no envelope-eligible user
	lagged  atomic.Uint64 // jobs lost to a full posting queue (open loop)

	cohorts []*attackCohort

	watch     *membershipWatcher
	failovers atomic.Uint64 // posts retried on the next target after a transport failure
}

// New materializes the world and prepares the cohorts. It does not
// touch the network.
func New(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	r := &Runner{cfg: cfg, benign: &cohortStats{}}
	for _, t := range cfg.Targets {
		c := api.NewClient(t, cfg.APIKey)
		c.HTTP = cfg.HTTP
		r.clients = append(r.clients, c)
	}
	r.logf("generating world: %d users, %d venues (seed %d)", cfg.Users, 3*cfg.Users, cfg.Seed)
	r.world = synth.Generate(synth.Config{Seed: cfg.Seed, Users: cfg.Users})
	r.buildCohorts()
	return r, nil
}

func (r *Runner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// client returns the next round-robin API client.
func (r *Runner) client() *api.Client {
	return r.clients[int(r.rr.Add(1))%len(r.clients)]
}

// post issues one check-in and records the outcome into stats. A
// transport-level failure (connection refused, node killed mid-drill)
// fails over to the next round-robin target once: a dying node is a
// membership event the report accounts for, not a harness error. A
// 429 is never retried — shed traffic must stay shed or the
// backpressure measurement lies.
func (r *Runner) post(user, venue uint64, loc geo.Point, stats *cohortStats) {
	resp, err := r.client().CheckIn(user, venue, loc)
	if err != nil && len(r.clients) > 1 {
		if _, overloaded := api.IsOverloaded(err); !overloaded {
			r.failovers.Add(1)
			resp, err = r.client().CheckIn(user, venue, loc)
		}
	}
	stats.record(resp, err)
	if r.watch != nil && r.watch.changing() {
		stats.duringChange.Add(1)
	}
}

// buildBenignPool samples honest users and assembles their venue
// rings: consecutive venues from a per-city spatial sort, so ring hops
// stay short and the per-user gap stays near the rate-throttle floor.
func (r *Runner) buildBenignPool(rng *rand.Rand) []*benignUser {
	w := r.world
	// Per-city venue lists, spatially sorted (coarse lat cell, then
	// lon): consecutive entries are near neighbours in dense cities.
	byCity := make([][]int, len(w.Cities))
	for j, v := range w.Venues {
		byCity[v.City] = append(byCity[v.City], j)
	}
	for _, list := range byCity {
		sort.Slice(list, func(a, b int) bool {
			va, vb := w.Venues[list[a]].Seed.Location, w.Venues[list[b]].Seed.Location
			ca, cb := int(va.Lat/0.02), int(vb.Lat/0.02)
			if ca != cb {
				return ca < cb
			}
			return va.Lon < vb.Lon
		})
	}

	var pool []*benignUser
	start := time.Now()
	for i := range w.Users {
		switch w.Users[i].Class {
		case synth.ClassCasual, synth.ClassActive, synth.ClassPower:
		default:
			continue // inactive users stay silent; cheaters belong to the attack cohorts
		}
		list := byCity[w.Users[i].HomeCity]
		if len(list) == 0 {
			continue
		}
		k := ringSize
		if k > len(list) {
			k = len(list)
		}
		off := rng.Intn(len(list))
		ring := make([]int, k)
		maxHop := 0.0
		for n := 0; n < k; n++ {
			ring[n] = list[(off+n)%len(list)]
		}
		for n := 0; n < k; n++ {
			a := w.Venues[ring[n]].Seed.Location
			b := w.Venues[ring[(n+1)%k]].Seed.Location
			if d := a.DistanceMeters(b); d > maxHop {
				maxHop = d
			}
		}
		gap := minUserGap
		if g := cooldownSlack / time.Duration(k); g > gap {
			gap = g
		}
		if g := time.Duration(maxHop / benignSpeed * float64(time.Second)); g > gap {
			gap = g
		}
		pool = append(pool, &benignUser{
			idx:  i,
			ring: ring,
			gap:  gap,
			// Stagger first check-ins across one full gap so the pool
			// doesn't fire as a thundering herd at t=0.
			nextAt: start.Add(time.Duration(rng.Int63n(int64(gap)))),
		})
	}
	return pool
}

// dispatchBenign is the open-loop pacer: it releases jobs at the
// target rate, drawing the next envelope-eligible user from the heap.
// When no user is eligible (the pool cannot sustain the rate without
// tripping the detectors) the slot is counted as starved and dropped —
// never compressed onto a user who would then alert.
func (r *Runner) dispatchBenign(ctx context.Context, pool []*benignUser, jobs chan<- job) {
	h := userHeap(pool)
	heap.Init(&h)
	const tick = 10 * time.Millisecond
	perTick := r.cfg.Rate * tick.Seconds()
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	acc := 0.0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		acc += perTick
		// Bound the backlog so a stall doesn't burst-release later.
		if burst := 10 * perTick; acc > burst && burst >= 1 {
			acc = burst
		}
		now := time.Now()
		for acc >= 1 && h.Len() > 0 {
			acc--
			u := h[0]
			if u.nextAt.After(now) {
				r.starved.Add(1)
				continue
			}
			v := u.ring[u.cursor%len(u.ring)]
			u.cursor++
			u.nextAt = now.Add(u.gap)
			heap.Fix(&h, 0)
			j := job{
				user:  uint64(u.idx + 1),
				venue: uint64(v + 1),
				loc:   r.world.Venues[v].Seed.Location,
			}
			select {
			case jobs <- j:
			default:
				r.lagged.Add(1) // open loop: never block on the system under test
			}
		}
	}
}

// Run executes the load: benign pacing plus attack cohorts for
// cfg.Duration, then drain, scrape and score. The context cancels the
// whole run early.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	cfg := r.cfg
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	pool := r.buildBenignPool(rng)
	if len(pool) == 0 {
		return nil, fmt.Errorf("loadgen: world has no benign users to sample")
	}
	// Advertise the envelope-limited capacity so an unsustainable -rate
	// is understood before the starved counter says it.
	capacity := 0.0
	for _, u := range pool {
		capacity += 1 / u.gap.Seconds()
	}
	r.logf("benign pool: %d users, envelope-limited capacity %.0f ev/s (target %.0f)",
		len(pool), capacity, cfg.Rate)
	r.logf("attack cohorts: %d users x %d cohorts, time scale %.0fx", cfg.AttackUsers, len(r.cohorts), cfg.TimeScale)

	trafficCtx, stopTraffic := context.WithTimeout(ctx, cfg.Duration)
	defer stopTraffic()

	// The membership watcher outlives the traffic window: rebalancing
	// trails the ring edge, so changes during the drain wait are still
	// part of the run's elasticity story.
	r.watch = newMembershipWatcher(r)
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		r.watch.run(watchCtx)
	}()

	jobs := make(chan job, 4*cfg.Workers)
	var workers sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for j := range jobs {
				r.post(j.user, j.venue, j.loc, r.benign)
			}
		}()
	}
	var producers sync.WaitGroup
	producers.Add(1)
	go func() {
		defer producers.Done()
		r.dispatchBenign(trafficCtx, pool, jobs)
	}()
	for _, c := range r.cohorts {
		for n := range c.users {
			producers.Add(1)
			go func(c *attackCohort, n int) {
				defer producers.Done()
				r.runAttacker(trafficCtx, c, n)
			}(c, n)
		}
	}

	started := time.Now()
	producers.Wait()
	close(jobs)
	workers.Wait()
	elapsed := time.Since(started)
	r.logf("traffic done after %s: %d benign sent (%d starved, %d lagged)",
		elapsed.Round(time.Millisecond), r.benign.sent.Load(), r.starved.Load(), r.lagged.Load())

	rep := r.newReport(elapsed)
	drained := r.awaitDrain(ctx, rep)
	if !drained {
		rep.addViolation("drain-timeout",
			fmt.Sprintf("cluster queues not empty after %s", cfg.DrainTimeout))
	}
	stopWatch()
	watchWG.Wait()
	r.watch.fill(rep)
	rep.Membership.SentDuringChange = r.benign.duringChange.Load()
	for _, c := range r.cohorts {
		rep.Membership.SentDuringChange += c.stats.duringChange.Load()
	}
	rep.Membership.Failovers = r.failovers.Load()
	r.scrapeNodes(rep)
	r.scoreRecall(ctx, rep)
	rep.finalize(cfg)
	return rep, ctx.Err()
}

// awaitDrain polls the cluster until every node's stream and DLQ
// depths read zero and the published counter stops moving — i.e. all
// accepted traffic has cleared the detectors.
func (r *Runner) awaitDrain(ctx context.Context, rep *Report) bool {
	deadline := time.Now().Add(r.cfg.DrainTimeout)
	var lastPublished float64 = -1
	for time.Now().Before(deadline) && ctx.Err() == nil {
		depth, published := 0.0, 0.0
		healthy := true
		for _, t := range r.cfg.Targets {
			// A target the watcher declared dead can never drain; its
			// loss is membership accounting, not a drain stall.
			if r.watch != nil && r.watch.isDown(t) {
				continue
			}
			ms, err := scrape(r.cfg.HTTP, t)
			if err != nil {
				healthy = false
				break
			}
			depth += ms.sum("locheat_stream_queue_depth") + ms.sum("locheat_stream_dlq_depth")
			published += ms.sum("locheat_stream_published_total")
		}
		if healthy && depth == 0 && published == lastPublished {
			return true
		}
		lastPublished = published
		select {
		case <-ctx.Done():
			return false
		case <-time.After(500 * time.Millisecond):
		}
	}
	return false
}
