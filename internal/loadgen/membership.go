package loadgen

// This file is the harness's view of the cluster's elasticity. During
// the traffic window a watcher samples every target's
// locheat_cluster_live_members gauge and turns edges into
// MembershipChange records: a node joining mid-soak, a kill -9, a
// partition pushing peers to suspect-then-left. The report then says
// how much traffic was in flight while the ring was reshaping and —
// because recall is always scored after the last observed change —
// whether the post-rebalance cluster still catches every attacker.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// downAfterFailures is how many consecutive failed scrapes declare a
// target dead (killed or unreachable) rather than transiently slow.
const downAfterFailures = 3

// MembershipChange is one observed edge on a target's live-member
// gauge, stamped relative to traffic start. To == 0 with From > 0 and
// Down targets means the node itself went away, not that it saw an
// empty ring.
type MembershipChange struct {
	Target string  `json:"target"`
	AtSec  float64 `json:"atSeconds"`
	From   float64 `json:"from"`
	To     float64 `json:"to"`
}

// MembershipReport is the run's elasticity accounting.
type MembershipReport struct {
	// RingChanges counts the observed live-member edges across all
	// targets (a 3-node cluster absorbing one join typically logs one
	// edge per surviving node).
	RingChanges int                `json:"ringChanges"`
	Changes     []MembershipChange `json:"changes,omitempty"`
	// SentDuringChange is the check-ins posted inside a change window —
	// traffic that landed on a cluster mid-handoff and must still be
	// accounted for by admission or detection, never silently lost.
	SentDuringChange uint64 `json:"sentDuringChange"`
	// Failovers counts posts retried against the next target after a
	// transport-level failure on the first.
	Failovers uint64 `json:"failovers"`
	// DownTargets are nodes that stopped answering scrapes for the rest
	// of the run (the kill -9 drill); they are excluded from the drain
	// wait and the scrape-failed audit because their death is recorded
	// here instead.
	DownTargets []string `json:"downTargets,omitempty"`
	// LiveMembers is the final gauge per reachable target.
	LiveMembers map[string]float64 `json:"liveMembers,omitempty"`
	// PostRebalanceRecall is set when ring changes were observed: the
	// cohort recall figures were scored after the last change, so they
	// measure the rebalanced cluster, not the original ring.
	PostRebalanceRecall bool `json:"postRebalanceRecall"`
}

// membershipWatcher polls the targets' live-member gauges in the
// background and keeps a "ring is changing" window other goroutines
// can test lock-free.
type membershipWatcher struct {
	r        *Runner
	interval time.Duration
	// settle extends the change window past the last observed edge:
	// handoff and re-replication trail the gauge edge, so traffic sent
	// shortly after still lands on a reshaping cluster.
	settle time.Duration

	mu       sync.Mutex
	start    time.Time
	last     map[string]float64
	seen     map[string]bool
	failures map[string]int
	down     map[string]bool
	changes  []MembershipChange

	changingUntil atomic.Int64 // unix nanos; 0 = never changed
}

func newMembershipWatcher(r *Runner) *membershipWatcher {
	return &membershipWatcher{
		r:        r,
		interval: r.cfg.MembershipEvery,
		settle:   4 * r.cfg.MembershipEvery,
		start:    time.Now(),
		last:     make(map[string]float64),
		seen:     make(map[string]bool),
		failures: make(map[string]int),
		down:     make(map[string]bool),
	}
}

func (w *membershipWatcher) run(ctx context.Context) {
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			w.sample()
		}
	}
}

// sample scrapes every target once and records gauge edges and
// target deaths.
func (w *membershipWatcher) sample() {
	now := time.Now()
	for _, t := range w.r.cfg.Targets {
		ms, err := scrape(w.r.cfg.HTTP, t)
		w.mu.Lock()
		if err != nil {
			w.failures[t]++
			if w.failures[t] == downAfterFailures && !w.down[t] {
				w.down[t] = true
				w.record(now, MembershipChange{Target: t, AtSec: now.Sub(w.start).Seconds(), From: w.last[t]})
				w.r.logf("membership: target %s down after %d failed scrapes", t, downAfterFailures)
			}
			w.mu.Unlock()
			continue
		}
		w.failures[t] = 0
		if w.down[t] {
			w.down[t] = false
			w.r.logf("membership: target %s back", t)
		}
		live := ms.sum("locheat_cluster_live_members")
		if w.seen[t] && w.last[t] != live {
			w.record(now, MembershipChange{Target: t, AtSec: now.Sub(w.start).Seconds(), From: w.last[t], To: live})
			w.r.logf("membership: %s live members %.0f -> %.0f at +%.1fs", t, w.last[t], live, now.Sub(w.start).Seconds())
		}
		w.last[t] = live
		w.seen[t] = true
		w.mu.Unlock()
	}
}

// record appends a change and opens/extends the change window. Caller
// holds w.mu.
func (w *membershipWatcher) record(now time.Time, c MembershipChange) {
	w.changes = append(w.changes, c)
	w.changingUntil.Store(now.Add(w.settle).UnixNano())
}

// changing reports whether the ring changed within the settle window —
// safe from any goroutine.
func (w *membershipWatcher) changing() bool {
	until := w.changingUntil.Load()
	return until != 0 && time.Now().UnixNano() < until
}

// isDown reports whether the target stopped answering scrapes.
func (w *membershipWatcher) isDown(target string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.down[target]
}

// fill snapshots the watcher into the report's membership section.
func (w *membershipWatcher) fill(rep *Report) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := &rep.Membership
	m.RingChanges = len(w.changes)
	m.Changes = append(m.Changes, w.changes...)
	m.PostRebalanceRecall = len(w.changes) > 0
	for t, isDown := range w.down {
		if isDown {
			m.DownTargets = append(m.DownTargets, t)
		}
	}
	for t, v := range w.last {
		if w.seen[t] && !w.down[t] {
			if m.LiveMembers == nil {
				m.LiveMembers = make(map[string]float64)
			}
			m.LiveMembers[t] = v
		}
	}
}
