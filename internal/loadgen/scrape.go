package loadgen

import (
	"bufio"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file is the harness's Prometheus scraper: a minimal parser for
// the text exposition the cluster's /metrics serves (internal/obs
// writes it; no client library exists in-tree, by design). The harness
// reads detection-latency summaries, the drop counters, and the
// backpressure/breaker state straight off the same surface an operator
// would scrape — if a loss isn't on /metrics, the harness counts it as
// silent, which is exactly the audit the report's violations enforce.

// sample is one scraped series value.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// labelGet returns a label value or "".
func (s sample) labelGet(key string) string { return s.labels[key] }

// key renders name{k="v",...} with sorted label keys — stable across
// scrapes for report maps.
func (s sample) key() string {
	if len(s.labels) == 0 {
		return s.name
	}
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// nodeMetrics is one node's parsed scrape.
type nodeMetrics struct {
	samples []sample
}

// scrape fetches and parses base/metrics.
func scrape(httpc *http.Client, base string) (*nodeMetrics, error) {
	resp, err := httpc.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %d", base, resp.StatusCode)
	}
	m := &nodeMetrics{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if s, ok := parseSample(line); ok {
			m.samples = append(m.samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scrape %s: %w", base, err)
	}
	return m, nil
}

// parseSample parses `name{k="v",...} value` or `name value`. Exemplar
// suffixes (`# {...}`) are ignored.
func parseSample(line string) (sample, bool) {
	if i := strings.Index(line, " # "); i >= 0 {
		line = strings.TrimSpace(line[:i])
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return sample{}, false
	}
	series, valStr := line[:sp], line[sp+1:]
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return sample{}, false
	}
	s := sample{value: val}
	if open := strings.IndexByte(series, '{'); open >= 0 {
		s.name = series[:open]
		body := strings.TrimSuffix(series[open+1:], "}")
		s.labels = parseLabels(body)
	} else {
		s.name = series
	}
	return s, true
}

// parseLabels parses `k="v",k2="v2"`, tolerating commas inside quoted
// values.
func parseLabels(body string) map[string]string {
	labels := make(map[string]string)
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			break
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			break
		}
		end := 1
		for end < len(rest) && rest[end] != '"' {
			if rest[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(rest) {
			break
		}
		val := rest[1:end]
		labels[key] = val
		body = strings.TrimPrefix(rest[end+1:], ",")
	}
	return labels
}

// sum totals every sample with the name, across label sets.
func (m *nodeMetrics) sum(name string) float64 {
	total := 0.0
	for _, s := range m.samples {
		if s.name == name {
			total += s.value
		}
	}
	return total
}

// sumLabel totals samples with the name whose label matches.
func (m *nodeMetrics) sumLabel(name, key, val string) float64 {
	total := 0.0
	for _, s := range m.samples {
		if s.name == name && s.labelGet(key) == val {
			total += s.value
		}
	}
	return total
}

// quantile reads a summary quantile series (obs renders histograms as
// summaries: name{quantile="0.99"}). Multiple matching series (extra
// labels) report their max — the conservative read for a latency gate.
func (m *nodeMetrics) quantile(name, q string) float64 {
	best := 0.0
	for _, s := range m.samples {
		if s.name == name && s.labelGet("quantile") == q && s.value > best {
			best = s.value
		}
	}
	return best
}

// droppedSeries returns every nonzero series whose name ends in
// _dropped_total or _drops_total, keyed by rendered series — the
// silent-drop audit's raw material.
func (m *nodeMetrics) droppedSeries() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range m.samples {
		if s.value == 0 {
			continue
		}
		if strings.HasSuffix(s.name, "_dropped_total") || strings.HasSuffix(s.name, "_drops_total") {
			out[s.key()] = s.value
		}
	}
	return out
}
