package loadgen

import (
	"context"
	"math/rand"
	"time"

	"locheat/internal/attack"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/synth"
)

// Cohort names, stable in reports.
const (
	CohortMayorCampaign = "mayor-campaign"
	CohortVirtualTour   = "virtual-tour"
	CohortSpoofJump     = "spoof-jump"
)

// attackCohort is one labelled attacker population running a shared
// behavioural model. Its users are drawn from the world's ground-truth
// cheater classes, so recall is scored against synth.TrueClass, not
// against what the harness happened to inject.
type attackCohort struct {
	name  string
	users []int // world user indexes
	stats *cohortStats
	// plan builds the next schedule round for one attacker, plus the
	// virtual rest to sleep before replanning.
	plan func(rng *rand.Rand) (attack.Schedule, time.Duration)
}

// buildCohorts partitions the world's cheater population into the
// three attack models. Every cohort member is a ground-truth cheater
// (ClassCheater/ClassCaught/ClassSuperMayor), so a detector that
// flags them is right and one that misses them is measurable.
func (r *Runner) buildCohorts() {
	var cheaters []int
	for i := range r.world.Users {
		if r.world.Users[i].Class.Cheating() {
			cheaters = append(cheaters, i)
		}
	}
	rng := rand.New(rand.NewSource(r.cfg.Seed + 2))
	rng.Shuffle(len(cheaters), func(i, j int) { cheaters[i], cheaters[j] = cheaters[j], cheaters[i] })

	take := func(n int) []int {
		if n > len(cheaters) {
			n = len(cheaters)
		}
		out := cheaters[:n]
		cheaters = cheaters[n:]
		return out
	}
	n := r.cfg.AttackUsers
	r.cohorts = []*attackCohort{
		{name: CohortMayorCampaign, users: take(n), stats: &cohortStats{}, plan: r.planMayorCampaign},
		{name: CohortVirtualTour, users: take(n), stats: &cohortStats{}, plan: r.planVirtualTour},
		{name: CohortSpoofJump, users: take(n), stats: &cohortStats{}, plan: r.planSpoofJump},
	}
}

// venueView adapts a world venue record to the planner's input.
func (r *Runner) venueView(idx int) lbsn.VenueView {
	return lbsn.VenueView{
		ID:       lbsn.VenueID(idx + 1),
		Location: r.world.Venues[idx].Seed.Location,
	}
}

// cityVenues returns the world venue indexes of a random non-empty
// city.
func (r *Runner) cityVenues(rng *rand.Rand) []int {
	w := r.world
	byCity := make([][]int, len(w.Cities))
	for j, v := range w.Venues {
		byCity[v.City] = append(byCity[v.City], j)
	}
	for try := 0; try < 32; try++ {
		if list := byCity[rng.Intn(len(byCity))]; len(list) > 0 {
			return list
		}
	}
	// Degenerate world: fall back to everything.
	all := make([]int, len(w.Venues))
	for j := range all {
		all[j] = j
	}
	return all
}

// planMayorCampaign is the E1 recipe generalized: check into a fixed
// city-bound target set daily, paced by the §3.3 interval rule, until
// the mayorships fall. One executed round is one campaign day; the
// rest sleep carries the schedule to the next day.
func (r *Runner) planMayorCampaign(rng *rand.Rand) (attack.Schedule, time.Duration) {
	list := r.cityVenues(rng)
	targets := 4 + rng.Intn(4)
	views := make([]lbsn.VenueView, 0, targets)
	for len(views) < targets {
		views = append(views, r.venueView(list[rng.Intn(len(list))]))
	}
	sch := attack.Plan(attack.DefaultPlannerConfig(), views)
	rest := 24*time.Hour - sch.TotalWait()
	if rest < time.Hour {
		rest = time.Hour // tomorrow revisits today's venues: clear the cooldown
	}
	return sch, rest
}

// planVirtualTour is the Fig 3.5 semiautomatic tool run against the
// live cluster: a right-turning move sequence whose every target point
// resolves to the nearest venue — resolved against the harness's own
// world copy, since a real attacker would resolve against crawled
// venue data, not a service internal.
func (r *Runner) planVirtualTour(rng *rand.Rand) (attack.Schedule, time.Duration) {
	list := r.cityVenues(rng)
	startIdx := list[rng.Intn(len(list))]
	moves := attack.RightTurnTour(10+rng.Intn(7), 450)

	views := []lbsn.VenueView{r.venueView(startIdx)}
	pos := views[0].Location
	last := startIdx
	for _, m := range moves {
		target := pos.Destination(m.BearingDeg, m.DistanceMeters)
		next := nearestVenue(r.world, list, target, last)
		if next < 0 {
			break
		}
		views = append(views, r.venueView(next))
		pos = r.world.Venues[next].Seed.Location
		last = next
	}
	return attack.Plan(attack.DefaultPlannerConfig(), views), time.Hour
}

// planSpoofJump is the raw §3.1 coordinate forgery with no planner
// discipline: teleporting check-ins across the country at a cadence no
// traveller could hold. This cohort exists to exercise the obvious
// detectors (speed, rate) while the other two exercise the subtle
// ones.
func (r *Runner) planSpoofJump(rng *rand.Rand) (attack.Schedule, time.Duration) {
	w := r.world
	stops := 8 + rng.Intn(7)
	sch := make(attack.Schedule, 0, stops)
	for n := 0; n < stops; n++ {
		j := rng.Intn(len(w.Venues))
		sch = append(sch, attack.Stop{
			Venue:    lbsn.VenueID(j + 1),
			Location: w.Venues[j].Seed.Location,
			Wait:     time.Duration(1+rng.Intn(3)) * time.Minute,
		})
	}
	return sch, 30 * time.Minute
}

// nearestVenue scans candidate venue indexes for the closest to
// target, skipping `skip` so tours advance. Returns -1 when there are
// no candidates.
func nearestVenue(w *synth.World, candidates []int, target geo.Point, skip int) int {
	best, bestD := -1, 0.0
	for _, j := range candidates {
		if j == skip {
			continue
		}
		d := w.Venues[j].Seed.Location.DistanceMeters(target)
		if best < 0 || d < bestD {
			best, bestD = j, d
		}
	}
	return best
}

// runAttacker executes one attacker's schedule rounds until the
// traffic window closes, pacing virtual waits through a private
// ScaledSleeper — the §3.3 waits are honoured in virtual time and
// compressed in wall time.
func (r *Runner) runAttacker(ctx context.Context, c *attackCohort, n int) {
	userIdx := c.users[n]
	userID := uint64(userIdx + 1)
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(1000*n) + int64(userIdx)))
	sleeper := simclock.NewScaledSleeper(simclock.Epoch(), r.cfg.TimeScale)
	for ctx.Err() == nil {
		sch, rest := c.plan(rng)
		for _, stop := range sch {
			if !pace(ctx, sleeper, stop.Wait) {
				return
			}
			r.post(userID, uint64(stop.Venue), stop.Location, c.stats)
		}
		if !pace(ctx, sleeper, rest) {
			return
		}
	}
}

// pace sleeps a virtual duration through the scaled sleeper in short
// wall-clock chunks so a closing context is noticed promptly. Reports
// whether the full wait completed.
func pace(ctx context.Context, s *simclock.ScaledSleeper, d time.Duration) bool {
	f := s.Factor
	if f <= 0 {
		f = 1
	}
	// Chunk at ~250ms of wall time per sleep.
	chunk := time.Duration(0.25 * f * float64(time.Second))
	for d > 0 {
		if ctx.Err() != nil {
			return false
		}
		step := d
		if step > chunk {
			step = chunk
		}
		s.Sleep(step)
		d -= step
	}
	return ctx.Err() == nil
}
