package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"locheat/internal/store"
	"locheat/internal/synth"
)

// CohortReport scores one traffic class.
type CohortReport struct {
	Name     string  `json:"name"`
	Users    int     `json:"users"`
	Sent     uint64  `json:"sent"`
	Accepted uint64  `json:"accepted"`
	Denied   uint64  `json:"denied"`
	Shed     uint64  `json:"shed"`
	Errors   uint64  `json:"errors"`
	Probed   int     `json:"probed"`
	Detected int     `json:"detected"`
	Recall   float64 `json:"recall"`
	// SentDuringChange is the cohort's traffic posted inside a
	// membership change window (see Report.Membership).
	SentDuringChange uint64 `json:"sentDuringChange,omitempty"`
}

// NodeReport is one cluster node's scraped telemetry after the run.
type NodeReport struct {
	Target      string `json:"target"`
	ScrapeError string `json:"scrapeError,omitempty"`
	// Down marks a target that stopped answering during the run (the
	// kill drill); its missing scrape is accounted in
	// Report.Membership instead of failing the scrape audit.
	Down          bool    `json:"down,omitempty"`
	Published     float64 `json:"published"`
	Processed     float64 `json:"processed"`
	Dropped       float64 `json:"dropped"`
	DeadLettered  float64 `json:"deadLettered"`
	DetectionN    float64 `json:"detectionCount"`
	DetectionP50  float64 `json:"detectionP50Seconds"`
	DetectionP99  float64 `json:"detectionP99Seconds"`
	DetectionP999 float64 `json:"detectionP999Seconds"`
	// DroppedBySeries lists every nonzero drop counter on the node,
	// keyed by rendered series — if an event was lost, its reason is
	// here or the loss was silent (a violation).
	DroppedBySeries map[string]float64 `json:"droppedBySeries,omitempty"`
	ShedByPriority  map[string]float64 `json:"shedByPriority,omitempty"`
	Engagements     float64            `json:"backpressureEngagements"`
	BreakerOpens    float64            `json:"breakerOpens"`
	BreakerRejected float64            `json:"breakerRejected"`
	QuarantineAdds  float64            `json:"quarantineAdds"`
}

// Violation is one failed invariant; any violation fails a gated run.
type Violation struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// Report is the run's structured output, written as JSON by
// cmd/loadgen and consumed by the CI soak gate.
type Report struct {
	Targets     []string  `json:"targets"`
	Users       int       `json:"users"`
	Seed        int64     `json:"seed"`
	TargetRate  float64   `json:"targetRate"`
	TimeScale   float64   `json:"timeScale"`
	StartedAt   time.Time `json:"startedAt"`
	WallSeconds float64   `json:"wallSeconds"`

	Sent          uint64  `json:"sent"`
	Accepted      uint64  `json:"accepted"`
	Denied        uint64  `json:"denied"`
	Shed          uint64  `json:"shed"`
	Errors        uint64  `json:"errors"`
	Starved       uint64  `json:"starved"`
	Lagged        uint64  `json:"lagged"`
	SustainedRate float64 `json:"sustainedRate"`

	Benign  CohortReport   `json:"benign"`
	Cohorts []CohortReport `json:"cohorts"`
	Nodes   []NodeReport   `json:"nodes"`

	// Membership is the run's elasticity accounting: ring edges seen on
	// the live-member gauges, traffic in flight during changes, target
	// deaths and post failovers.
	Membership MembershipReport `json:"membership"`

	// Cluster-wide maxima/sums derived from Nodes.
	DetectionP50  float64 `json:"detectionP50Seconds"`
	DetectionP99  float64 `json:"detectionP99Seconds"`
	DetectionP999 float64 `json:"detectionP999Seconds"`
	DetectionN    float64 `json:"detectionCount"`
	DroppedTotal  float64 `json:"droppedTotal"`
	ShedCritical  float64 `json:"shedCritical"`

	Violations []Violation `json:"violations"`
}

func (rep *Report) addViolation(kind, detail string) {
	rep.Violations = append(rep.Violations, Violation{Kind: kind, Detail: detail})
}

// WriteJSON renders the report, indented.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func (r *Runner) newReport(elapsed time.Duration) *Report {
	cfg := r.cfg
	rep := &Report{
		Targets:     cfg.Targets,
		Users:       cfg.Users,
		Seed:        cfg.Seed,
		TargetRate:  cfg.Rate,
		TimeScale:   cfg.TimeScale,
		StartedAt:   time.Now().Add(-elapsed),
		WallSeconds: elapsed.Seconds(),
		Starved:     r.starved.Load(),
		Lagged:      r.lagged.Load(),
	}
	rep.Benign = CohortReport{
		Name:             "benign",
		Sent:             r.benign.sent.Load(),
		Accepted:         r.benign.accepted.Load(),
		Denied:           r.benign.denied.Load(),
		Shed:             r.benign.shed.Load(),
		Errors:           r.benign.errors.Load(),
		SentDuringChange: r.benign.duringChange.Load(),
	}
	for _, c := range r.cohorts {
		rep.Cohorts = append(rep.Cohorts, CohortReport{
			Name:             c.name,
			Users:            len(c.users),
			Sent:             c.stats.sent.Load(),
			Accepted:         c.stats.accepted.Load(),
			Denied:           c.stats.denied.Load(),
			Shed:             c.stats.shed.Load(),
			Errors:           c.stats.errors.Load(),
			SentDuringChange: c.stats.duringChange.Load(),
		})
	}
	return rep
}

// scrapeNodes reads each node's /metrics into the report.
func (r *Runner) scrapeNodes(rep *Report) {
	for _, t := range r.cfg.Targets {
		nr := NodeReport{Target: t}
		if r.watch != nil && r.watch.isDown(t) {
			nr.Down = true
			nr.ScrapeError = "target down (stopped answering during the run)"
			rep.Nodes = append(rep.Nodes, nr)
			continue
		}
		ms, err := scrape(r.cfg.HTTP, t)
		if err != nil {
			nr.ScrapeError = err.Error()
			rep.Nodes = append(rep.Nodes, nr)
			continue
		}
		nr.Published = ms.sum("locheat_stream_published_total")
		nr.Processed = ms.sum("locheat_stream_processed_total")
		nr.Dropped = ms.sum("locheat_stream_dropped_total")
		nr.DeadLettered = ms.sum("locheat_stream_dead_letters_total")
		nr.DetectionN = ms.sum("locheat_detection_latency_seconds_count")
		nr.DetectionP50 = ms.quantile("locheat_detection_latency_seconds", "0.5")
		nr.DetectionP99 = ms.quantile("locheat_detection_latency_seconds", "0.99")
		nr.DetectionP999 = ms.quantile("locheat_detection_latency_seconds", "0.999")
		nr.DroppedBySeries = ms.droppedSeries()
		nr.ShedByPriority = map[string]float64{}
		for _, p := range []string{"low", "normal", "critical"} {
			if v := ms.sumLabel("locheat_backpressure_shed_total", "priority", p); v > 0 {
				nr.ShedByPriority[p] = v
			}
		}
		nr.Engagements = ms.sum("locheat_backpressure_engagements_total")
		nr.BreakerOpens = ms.sumLabel("locheat_breaker_transitions_total", "to", "open")
		nr.BreakerRejected = ms.sum("locheat_breaker_rejected_total")
		nr.QuarantineAdds = ms.sum("locheat_lbsn_quarantine_adds_total")
		rep.Nodes = append(rep.Nodes, nr)
	}
}

// scoreRecall probes per-cohort users for alerts: a cohort member with
// at least one alert anywhere in the cluster counts as detected. The
// benign cohort is probed the same way — its "recall" is the false-
// positive rate and should be zero.
func (r *Runner) scoreRecall(ctx context.Context, rep *Report) {
	// Probes fail over across targets: after a kill drill the first
	// configured node may be gone, and any survivor serves the merged
	// cluster-wide alert view.
	probe := func(userIdx int) bool {
		for range r.clients {
			page, err := r.client().AlertsPage(store.AlertQuery{UserID: uint64(userIdx + 1), Limit: 1})
			if err == nil {
				return page.Total > 0
			}
		}
		return false
	}
	for i, c := range r.cohorts {
		probed, detected := 0, 0
		for _, ui := range c.users {
			if ctx.Err() != nil || probed >= r.cfg.RecallProbes {
				break
			}
			probed++
			if probe(ui) {
				detected++
			}
		}
		rep.Cohorts[i].Probed = probed
		rep.Cohorts[i].Detected = detected
		if probed > 0 {
			rep.Cohorts[i].Recall = float64(detected) / float64(probed)
		}
	}
	// Benign false positives: sample the honest classes.
	probed, detected := 0, 0
	for ui := range r.world.Users {
		if ctx.Err() != nil || probed >= r.cfg.RecallProbes {
			break
		}
		switch r.world.Users[ui].Class {
		case synth.ClassCasual, synth.ClassActive, synth.ClassPower:
			probed++
			if probe(ui) {
				detected++
			}
		}
	}
	rep.Benign.Users = probed
	rep.Benign.Probed = probed
	rep.Benign.Detected = detected
	if probed > 0 {
		rep.Benign.Recall = float64(detected) / float64(probed)
	}
}

// finalize derives the cluster-wide aggregates and runs the invariant
// audit that turns telemetry into violations:
//
//   - shed-critical: the admission controller shed the never-shed
//     priority (denied-claim/alert path) — the priority order broke;
//   - detection-p99: end-to-end detection latency exceeded the gate;
//   - silent-drops: events were dropped while every backpressure
//     signal (engagements, sheds, breaker activity) read zero — loss
//     without an admission story is the failure mode this subsystem
//     exists to eliminate;
//   - recall-loss (only with RequireFullRecall): a probed attacker
//     went undetected — the chaos-drill gate that rebalancing and
//     re-replication must not lose detections.
func (rep *Report) finalize(cfg Config) {
	rep.Sent = rep.Benign.Sent
	rep.Accepted = rep.Benign.Accepted
	rep.Denied = rep.Benign.Denied
	rep.Shed = rep.Benign.Shed
	rep.Errors = rep.Benign.Errors
	for _, c := range rep.Cohorts {
		rep.Sent += c.Sent
		rep.Accepted += c.Accepted
		rep.Denied += c.Denied
		rep.Shed += c.Shed
		rep.Errors += c.Errors
	}
	if rep.WallSeconds > 0 {
		rep.SustainedRate = float64(rep.Sent) / rep.WallSeconds
	}
	backpressureSignal := 0.0
	dropped := 0.0
	for _, n := range rep.Nodes {
		if n.Down {
			// The node's death is membership accounting (DownTargets),
			// not a scrape audit failure.
			continue
		}
		if n.ScrapeError != "" {
			rep.addViolation("scrape-failed", fmt.Sprintf("%s: %s", n.Target, n.ScrapeError))
			continue
		}
		if n.DetectionP50 > rep.DetectionP50 {
			rep.DetectionP50 = n.DetectionP50
		}
		if n.DetectionP99 > rep.DetectionP99 {
			rep.DetectionP99 = n.DetectionP99
		}
		if n.DetectionP999 > rep.DetectionP999 {
			rep.DetectionP999 = n.DetectionP999
		}
		rep.DetectionN += n.DetectionN
		for _, v := range n.DroppedBySeries {
			dropped += v
		}
		rep.ShedCritical += n.ShedByPriority["critical"]
		backpressureSignal += n.Engagements + n.BreakerOpens + n.BreakerRejected +
			n.ShedByPriority["low"] + n.ShedByPriority["normal"]
	}
	rep.DroppedTotal = dropped

	if rep.ShedCritical > 0 {
		rep.addViolation("shed-critical",
			fmt.Sprintf("%.0f critical-priority check-ins shed (the alert path must never shed)", rep.ShedCritical))
	}
	if rep.DetectionN > 0 && rep.DetectionP99 > cfg.MaxP99.Seconds() {
		rep.addViolation("detection-p99",
			fmt.Sprintf("detection latency p99 %.1fms exceeds gate %.1fms",
				rep.DetectionP99*1000, float64(cfg.MaxP99.Milliseconds())))
	}
	if dropped > 0 && backpressureSignal == 0 && rep.Shed == 0 {
		rep.addViolation("silent-drops",
			fmt.Sprintf("%.0f events dropped with zero backpressure signal (no engagement, no shed, no breaker activity)", dropped))
	}
	if cfg.RequireFullRecall {
		for _, c := range rep.Cohorts {
			if c.Probed > 0 && c.Detected < c.Probed {
				rep.addViolation("recall-loss",
					fmt.Sprintf("cohort %s: %d/%d probed attackers detected after %d ring change(s) — rebalancing lost detections",
						c.Name, c.Detected, c.Probed, rep.Membership.RingChanges))
			}
		}
	}
}
