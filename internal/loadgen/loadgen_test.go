package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"locheat/internal/api"
	"locheat/internal/backpressure"
	"locheat/internal/lbsn"
	"locheat/internal/obs"
	"locheat/internal/simclock"
	"locheat/internal/stream"
	"locheat/internal/synth"
)

func TestParseSample(t *testing.T) {
	cases := []struct {
		line   string
		name   string
		labels map[string]string
		value  float64
		ok     bool
	}{
		{"locheat_stream_published_total 42", "locheat_stream_published_total", nil, 42, true},
		{`locheat_backpressure_shed_total{priority="low"} 7`, "locheat_backpressure_shed_total",
			map[string]string{"priority": "low"}, 7, true},
		{`locheat_detection_latency_seconds{quantile="0.99"} 0.0031 # {trace_id="abc"} 0.004 1690000000`,
			"locheat_detection_latency_seconds", map[string]string{"quantile": "0.99"}, 0.0031, true},
		{`weird{k="a,b",k2="c\"d"} 1.5`, "weird", map[string]string{"k": "a,b", "k2": `c\"d`}, 1.5, true},
		{"# HELP ignored", "", nil, 0, false},
		{"no-value-here", "", nil, 0, false},
	}
	for _, tc := range cases {
		s, ok := parseSample(tc.line)
		if ok != tc.ok {
			t.Errorf("parseSample(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if s.name != tc.name || s.value != tc.value {
			t.Errorf("parseSample(%q) = %q %v, want %q %v", tc.line, s.name, s.value, tc.name, tc.value)
		}
		for k, v := range tc.labels {
			if s.labels[k] != v {
				t.Errorf("parseSample(%q) label %s = %q, want %q", tc.line, k, s.labels[k], v)
			}
		}
	}
}

func TestNodeMetricsAggregates(t *testing.T) {
	m := &nodeMetrics{samples: []sample{
		{name: "locheat_stream_dropped_total", labels: map[string]string{"reason": "full"}, value: 3},
		{name: "locheat_stream_dropped_total", labels: map[string]string{"reason": "closed"}, value: 0},
		{name: "locheat_shard_drops_total", value: 2},
		{name: "locheat_detection_latency_seconds", labels: map[string]string{"quantile": "0.99"}, value: 0.004},
		{name: "locheat_detection_latency_seconds", labels: map[string]string{"quantile": "0.99", "shard": "1"}, value: 0.009},
		{name: "locheat_backpressure_shed_total", labels: map[string]string{"priority": "low"}, value: 5},
		{name: "locheat_backpressure_shed_total", labels: map[string]string{"priority": "critical"}, value: 1},
	}}
	if got := m.sum("locheat_stream_dropped_total"); got != 3 {
		t.Errorf("sum = %v, want 3", got)
	}
	if got := m.sumLabel("locheat_backpressure_shed_total", "priority", "low"); got != 5 {
		t.Errorf("sumLabel low = %v, want 5", got)
	}
	// Max across label sets: the conservative read for a latency gate.
	if got := m.quantile("locheat_detection_latency_seconds", "0.99"); got != 0.009 {
		t.Errorf("quantile = %v, want 0.009", got)
	}
	drops := m.droppedSeries()
	if len(drops) != 2 {
		t.Errorf("droppedSeries = %v, want 2 nonzero entries (zero-valued series excluded)", drops)
	}
	if drops[`locheat_stream_dropped_total{reason="full"}`] != 3 {
		t.Errorf("droppedSeries missing reason-labelled entry: %v", drops)
	}
}

// TestMembershipWatcher drives the elasticity watcher against a fake
// /metrics endpoint: gauge edges become MembershipChange records and
// open the change window; a target that stops answering is declared
// down (one membership event, not repeated), and the report fill
// accounts for all of it.
func TestMembershipWatcher(t *testing.T) {
	var live atomic.Int64
	live.Store(3)
	var dead atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			http.Error(w, "gone", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "locheat_cluster_live_members %d\n", live.Load())
	}))
	defer srv.Close()

	r := &Runner{cfg: Config{Targets: []string{srv.URL}, MembershipEvery: 10 * time.Millisecond}.withDefaults()}
	w := newMembershipWatcher(r)

	w.sample() // baseline: no edge on the first observation
	if w.changing() {
		t.Fatal("first sample counted as a ring change")
	}
	live.Store(4) // a node joined
	w.sample()
	if !w.changing() {
		t.Fatal("live-member edge did not open the change window")
	}
	if w.isDown(srv.URL) {
		t.Fatal("healthy target marked down")
	}

	dead.Store(true) // kill -9
	for i := 0; i < downAfterFailures+2; i++ {
		w.sample()
	}
	if !w.isDown(srv.URL) {
		t.Fatalf("target not declared down after %d failed scrapes", downAfterFailures+2)
	}

	rep := &Report{}
	w.fill(rep)
	m := rep.Membership
	if m.RingChanges != 2 { // the 3->4 edge plus the death
		t.Fatalf("ring changes = %d, want 2 (%+v)", m.RingChanges, m.Changes)
	}
	if m.Changes[0].From != 3 || m.Changes[0].To != 4 {
		t.Fatalf("first change = %+v, want 3 -> 4", m.Changes[0])
	}
	if len(m.DownTargets) != 1 || m.DownTargets[0] != srv.URL {
		t.Fatalf("down targets = %v, want [%s]", m.DownTargets, srv.URL)
	}
	if !m.PostRebalanceRecall {
		t.Fatal("ring changes observed but PostRebalanceRecall unset")
	}
	if len(m.LiveMembers) != 0 {
		t.Fatalf("down target still reports live members: %v", m.LiveMembers)
	}

	dead.Store(false) // revival clears the down mark
	w.sample()
	if w.isDown(srv.URL) {
		t.Fatal("revived target still marked down")
	}
}

// startTestNode wires the full single-node stack the way cmd/lbsnd
// does — service, stream pipeline, admission controller, API server,
// /metrics — over the same synthetic world the harness will generate.
func startTestNode(t *testing.T, users int, seed int64) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	clock := simclock.Real{}
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	svc.RegisterObs(reg)
	world := synth.Generate(synth.Config{Seed: seed, Users: users})
	if err := world.LoadInto(svc); err != nil {
		t.Fatal(err)
	}
	pipeline := stream.New(stream.Config{Shards: 2, Clock: clock, Obs: reg})
	t.Cleanup(pipeline.Close)
	svc.SetCheckinObserver(func(ev lbsn.CheckinEvent) { pipeline.Publish(ev) })

	mon := backpressure.NewMonitor(
		backpressure.Stage{Name: "stream", Sample: pipeline.QueueSample},
		backpressure.Stage{Name: "dlq", Sample: pipeline.DLQSample},
	)
	admission := backpressure.NewAdmission(backpressure.AdmissionConfig{Monitor: mon, Obs: reg})
	t.Cleanup(admission.Close)

	apiSrv := api.NewServer(svc)
	apiSrv.IssueKey("k-soak")
	apiSrv.AttachPipeline(pipeline)
	apiSrv.AttachObs(reg)
	apiSrv.AttachAdmission(admission)

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/api/v1/", apiSrv)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestRunnerEndToEnd drives a scaled-down soak — same code path as
// `make soak`, one in-process node — and audits the report.
func TestRunnerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	const users, seed = 1000, 7
	ts := startTestNode(t, users, seed)

	r, err := New(Config{
		Targets:      []string{ts.URL},
		APIKey:       "k-soak",
		Users:        users,
		Seed:         seed,
		Rate:         40,
		Duration:     3 * time.Second,
		Workers:      8,
		AttackUsers:  2,
		TimeScale:    7200, // 1 virtual hour ≈ 0.5s wall: full plans fit the window
		MaxP99:       5 * time.Second,
		DrainTimeout: 10 * time.Second,
		RecallProbes: 5,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benign.Sent == 0 {
		t.Error("benign cohort sent nothing")
	}
	var attackSent uint64
	for _, c := range rep.Cohorts {
		attackSent += c.Sent
	}
	if attackSent == 0 {
		t.Error("attack cohorts sent nothing")
	}
	if rep.Errors != 0 {
		t.Errorf("transport errors = %d, want 0 (report %+v)", rep.Errors, rep)
	}
	if len(rep.Cohorts) != 3 {
		t.Errorf("cohorts = %d, want 3", len(rep.Cohorts))
	}
	if len(rep.Nodes) != 1 || rep.Nodes[0].ScrapeError != "" {
		t.Fatalf("node scrape failed: %+v", rep.Nodes)
	}
	if rep.Nodes[0].Published == 0 {
		t.Error("node published nothing — check-ins never reached the pipeline")
	}
	// Benign traffic is paced inside the detection envelope, so probing
	// it for alerts measures false positives: must be zero.
	if rep.Benign.Detected != 0 {
		t.Errorf("benign false positives = %d/%d probed", rep.Benign.Detected, rep.Benign.Probed)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation [%s] %s", v.Kind, v.Detail)
	}
	if rep.SustainedRate <= 0 {
		t.Errorf("sustained rate = %v, want > 0", rep.SustainedRate)
	}
}

// TestRunnerRefusesEmptyTargets pins New's config validation.
func TestRunnerConfigValidation(t *testing.T) {
	if _, err := New(Config{Users: 100}); err == nil {
		t.Error("New without targets must fail")
	}
}
