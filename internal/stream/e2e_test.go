package stream_test

import (
	"math/rand"
	"testing"
	"time"

	"locheat/internal/attack"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/stream"
	"locheat/internal/synth"
)

// TestVirtualTourRaisesSpeedAlert runs the paper's §3.3 automated
// virtual tour through the real lbsn.Service with the pipeline
// installed as its check-in observer — the exact wiring cmd/lbsnd uses.
// The cheater is impatient: it compresses the §3.3 pacing 20× (15 s
// instead of 5 min between ~450 m hops ≈ 30 m/s), and the online speed
// detector must flag the impossible travel.
func TestVirtualTourRaisesSpeedAlert(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)

	// A venue grid dense enough for every tour stop to find a target.
	base := geo.Point{Lat: 35.0844, Lon: -106.6504} // Albuquerque
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			loc := base.Destination(0, float64(i)*300).Destination(90, float64(j)*300)
			if _, err := svc.AddVenue("Grid", "", "Albuquerque", loc, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	user := svc.RegisterUser("tourist", "", "Lincoln")

	p := stream.New(stream.Config{Shards: 2, Clock: clock})
	defer p.Close()
	svc.SetCheckinObserver(func(ev lbsn.CheckinEvent) { p.Publish(ev) })

	venues, _, err := attack.PlanTour(svc, base, attack.RightTurnTour(20, 450))
	if err != nil {
		t.Fatal(err)
	}
	sch := attack.Plan(attack.DefaultPlannerConfig(), venues)
	for i := range sch {
		sch[i].Wait /= 20
	}
	rep, err := attack.NewCheater(svc, user, clock).Execute(sch)
	if err != nil {
		t.Fatal(err)
	}
	p.Close() // drain before inspecting

	st := p.Stats()
	if st.Published == 0 || st.Processed != st.Published {
		t.Fatalf("pipeline saw %d/%d of the tour", st.Processed, st.Published)
	}
	if st.AlertsByDetector[stream.StageSpeed] == 0 {
		t.Fatalf("compressed tour raised no speed alert; stats %+v, report %d/%d accepted",
			st, rep.Accepted, len(sch))
	}
	// The alert must name the touring user.
	found := false
	for _, a := range p.RecentAlerts(0) {
		if a.Detector == stream.StageSpeed && a.UserID == uint64(user) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("speed alert does not identify the cheater")
	}
}

// TestPipeline100kSyntheticCheckins pushes 100k synthetic check-in
// events (from an internal/synth world) through every detector stage,
// concurrently from several producers, and verifies the acceptance
// criteria: the producer is never blocked (Publish is non-blocking by
// construction — this run must finish), counters balance exactly, and
// drop/alert/dead-letter counts are reported. Run with -race.
func TestPipeline100kSyntheticCheckins(t *testing.T) {
	const total = 100_000
	world := synth.Generate(synth.Config{Seed: 11, Users: 2000, Venues: 6000})

	clock := simclock.NewSimulated(simclock.Epoch())
	p := stream.New(stream.Config{
		Shards:      4,
		ShardBuffer: 8192,
		Clock:       clock,
	})

	// Count dead letters as they arrive, like a real consumer would.
	dlDone := make(chan int)
	go func() {
		n := 0
		for range p.DeadLetters() {
			n++
		}
		dlDone <- n
	}()

	const producers = 4
	const perProducer = total / producers
	t0 := simclock.Epoch()
	type result struct{ published, dead int }
	results := make(chan result, producers)
	for pr := 0; pr < producers; pr++ {
		go func(pr int) {
			rng := rand.New(rand.NewSource(int64(100 + pr)))
			// Each producer owns a disjoint user range so per-user event
			// time stays monotonic.
			userBase := pr * (len(world.Users) / producers)
			var res result
			for i := 0; i < perProducer; i++ {
				u := userBase + rng.Intn(len(world.Users)/producers)
				v := world.Venues[rng.Intn(len(world.Venues))]
				ev := lbsn.CheckinEvent{
					UserID:   lbsn.UserID(u + 1),
					VenueID:  lbsn.VenueID(rng.Intn(len(world.Venues)) + 1),
					At:       t0.Add(time.Duration(i)*time.Minute + time.Duration(u)*time.Millisecond),
					Venue:    v.Seed.Location,
					Reported: v.Seed.Location,
					Accepted: true,
				}
				bad := false
				switch {
				case i%997 == 0:
					ev.UserID = 0 // malformed: exercises the DLQ
					bad = true
				case i%211 == 0:
					ev.Venue = geo.Point{Lat: 91, Lon: 0} // malformed coords
					bad = true
				}
				if bad {
					if p.Publish(ev) {
						t.Error("malformed event enqueued")
						return
					}
					res.dead++
					continue
				}
				// Publish never blocks; a refusal is the backpressure
				// signal, and this producer chooses to back off and
				// retry so every event flows through the detectors.
				for !p.Publish(ev) {
					time.Sleep(50 * time.Microsecond)
				}
				res.published++
			}
			results <- res
		}(pr)
	}
	var published, dead int
	for pr := 0; pr < producers; pr++ {
		r := <-results
		published += r.published
		dead += r.dead
	}
	clock.Advance(time.Duration(perProducer) * time.Minute)
	p.Close()
	deadLetters := <-dlDone

	st := p.Stats()
	if st.Published != uint64(published) {
		t.Fatalf("published counter %d != %d", st.Published, published)
	}
	if got := st.Published + st.DeadLettered; got != total {
		t.Fatalf("published %d + dead-lettered %d = %d, want %d",
			st.Published, st.DeadLettered, got, total)
	}
	if st.Processed != st.Published {
		t.Fatalf("drained %d of %d published", st.Processed, st.Published)
	}
	if st.DeadLettered != uint64(dead) {
		t.Fatalf("dead-lettered %d, producers counted %d", st.DeadLettered, dead)
	}
	if uint64(deadLetters)+st.DLQDropped != st.DeadLettered {
		t.Fatalf("DLQ consumer saw %d + %d dropped != %d dead-lettered",
			deadLetters, st.DLQDropped, st.DeadLettered)
	}
	// Random venue-hopping across whole cities is exactly what the
	// detectors exist for: the run must produce alerts, and they must
	// be counted both in total and per detector.
	if st.Alerts == 0 {
		t.Fatal("100k random-walk check-ins produced no alerts")
	}
	var byDet uint64
	for _, n := range st.AlertsByDetector {
		byDet += n
	}
	if byDet != st.Alerts {
		t.Fatalf("per-detector alert counts %d != total %d", byDet, st.Alerts)
	}
	if st.AlertsByDetector[stream.StageSpeed] == 0 {
		t.Fatal("no impossible-travel alerts in a teleporting workload")
	}
	t.Logf("100k events: published=%d refusedAttempts=%d deadLettered=%d alerts=%v",
		st.Published, st.Dropped, st.DeadLettered, st.AlertsByDetector)
}
