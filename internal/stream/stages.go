package stream

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"locheat/internal/cheatercode"
	"locheat/internal/defense"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

// Detector names used in alerts and stats.
const (
	StageDedupe       = "dedupe"
	StageSpeed        = "speed"
	StageRateThrottle = "rate-throttle"
	StageCheaterCode  = "cheater-code"
)

// DetectConfig tunes the default stage chain.
type DetectConfig struct {
	// DedupeTTL is how long an event key (user, venue, instant) is
	// remembered; replays inside the TTL are filtered (default 10m).
	DedupeTTL time.Duration
	// SpeedMaxMetersPerSecond is the impossible-travel threshold between
	// consecutive claims (default matches cheatercode: 15 m/s).
	SpeedMaxMetersPerSecond float64
	// SpeedWindow bounds how far back the previous claim may lie and
	// still be compared; older claims have expired (default 1h).
	SpeedWindow time.Duration
	// RateMaxPerWindow is the claim budget per user per RateWindow
	// (default 12 — the §3.3 tour pace of one check-in per 5 minutes
	// sustained for the full window).
	RateMaxPerWindow int
	// RateWindow is the throttle's sliding window (default 30m).
	RateWindow time.Duration
	// Challenge parameterizes the §5.1 rapid-bit distance-bounding
	// exchange run against rate-flagged devices (zero value = protocol
	// defaults: 20 rounds, 100 m bound).
	Challenge defense.RapidBitConfig
	// Cheater configures the online cheater-code rule engine (zero
	// value = cheatercode.DefaultConfig).
	Cheater cheatercode.Config
}

func (c DetectConfig) withDefaults() DetectConfig {
	if c.DedupeTTL <= 0 {
		c.DedupeTTL = 10 * time.Minute
	}
	if c.SpeedMaxMetersPerSecond <= 0 {
		c.SpeedMaxMetersPerSecond = 15
	}
	if c.SpeedWindow <= 0 {
		c.SpeedWindow = time.Hour
	}
	if c.RateMaxPerWindow <= 0 {
		c.RateMaxPerWindow = 12
	}
	if c.RateWindow <= 0 {
		c.RateWindow = 30 * time.Minute
	}
	// Default the rule thresholds per field so a caller overriding one
	// (say, a longer cooldown) keeps the paper's values for the rest.
	def := cheatercode.DefaultConfig()
	if c.Cheater.SameVenueCooldown <= 0 {
		c.Cheater.SameVenueCooldown = def.SameVenueCooldown
	}
	if c.Cheater.MaxSpeedMetersPerSecond <= 0 {
		c.Cheater.MaxSpeedMetersPerSecond = def.MaxSpeedMetersPerSecond
	}
	if c.Cheater.RapidFireSquareMeters <= 0 {
		c.Cheater.RapidFireSquareMeters = def.RapidFireSquareMeters
	}
	if c.Cheater.RapidFireInterval <= 0 {
		c.Cheater.RapidFireInterval = def.RapidFireInterval
	}
	if c.Cheater.RapidFireCount <= 0 {
		c.Cheater.RapidFireCount = def.RapidFireCount
	}
	if c.Cheater.HistoryLimit <= 0 {
		c.Cheater.HistoryLimit = def.HistoryLimit
	}
	return c
}

// DefaultStages builds the paper's stage chain for one shard. Each call
// returns fresh stage state — stages are shard-local and unlocked.
func DefaultStages(cfg DetectConfig) []Stage {
	cfg = cfg.withDefaults()
	return []Stage{
		NewDedupeStage(cfg.DedupeTTL),
		NewSpeedStage(cfg.SpeedMaxMetersPerSecond, cfg.SpeedWindow),
		NewRateThrottleStage(cfg.RateMaxPerWindow, cfg.RateWindow, cfg.Challenge),
		NewCheaterCodeStage(cfg.Cheater),
	}
}

// DedupeStage filters replayed events: the same user claiming the same
// venue at the same instant is an ingest replay, not a second check-in
// (no legitimate client checks in twice at the same nanosecond). Any
// remembered key is dropped; the TTL governs only how long keys are
// remembered (memory), not whether a remembered replay is filtered.
// That distinction matters for the cluster's forwarding outbox: a
// replayed spill arrives with OLD event timestamps, so an age-based
// filter would wave exact duplicates through precisely when the replay
// path needs them caught. Keys expire by event time, so behaviour is
// deterministic under simclock.
type DedupeStage struct {
	ttl       time.Duration
	seen      map[dedupeKey]struct{}
	latest    time.Time
	lastSweep time.Time
}

// dedupeKey encodes the event instant, so the set needs no values: a
// key's age is readable from the key itself.
type dedupeKey struct {
	user  lbsn.UserID
	venue lbsn.VenueID
	at    int64
}

func (k dedupeKey) age(latest time.Time) time.Duration {
	return latest.Sub(time.Unix(0, k.at))
}

// NewDedupeStage builds a dedupe stage with the given TTL.
func NewDedupeStage(ttl time.Duration) *DedupeStage {
	return &DedupeStage{ttl: ttl, seen: make(map[dedupeKey]struct{})}
}

// Name implements Stage.
func (d *DedupeStage) Name() string { return StageDedupe }

// Process implements Stage: keep=false for replays.
func (d *DedupeStage) Process(ev lbsn.CheckinEvent) ([]Alert, bool) {
	if ev.At.After(d.latest) {
		d.latest = ev.At
	}
	key := dedupeKey{user: ev.UserID, venue: ev.VenueID, at: ev.At.UnixNano()}
	if _, ok := d.seen[key]; ok {
		return nil, false
	}
	d.seen[key] = struct{}{}
	d.sweep()
	return nil, true
}

// ProcessBatch implements BatchStage. Dedupe raises no alerts, so the
// fast path is just the keep/compact loop without the per-call return
// slice.
func (d *DedupeStage) ProcessBatch(events []lbsn.CheckinEvent, alerts []Alert) ([]lbsn.CheckinEvent, []Alert) {
	kept := events[:0]
	for _, ev := range events {
		if _, keep := d.Process(ev); keep {
			kept = append(kept, ev)
		}
	}
	return kept, alerts
}

// EvictIdle implements UserStateEvictor. Dedupe keys already expire at
// the (shorter) TTL; the eviction pass is a second bound that holds
// even if no further events arrive to trigger the lazy sweep.
func (d *DedupeStage) EvictIdle(olderThan time.Time) int {
	n := 0
	for k := range d.seen {
		if time.Unix(0, k.at).Before(olderThan) {
			delete(d.seen, k)
			n++
		}
	}
	return n
}

// dedupeWire is one exported dedupe key on the handoff wire.
type dedupeWire struct {
	Venue uint64 `json:"venue"`
	At    int64  `json:"at"`
}

// ExportUserState implements UserStatePorter: the user's remembered
// event keys, removed from the set.
func (d *DedupeStage) ExportUserState(leaving func(uint64) bool) map[uint64][]byte {
	byUser := make(map[uint64][]dedupeWire)
	for k := range d.seen {
		if !leaving(uint64(k.user)) {
			continue
		}
		byUser[uint64(k.user)] = append(byUser[uint64(k.user)], dedupeWire{Venue: uint64(k.venue), At: k.at})
		delete(d.seen, k)
	}
	out := make(map[uint64][]byte, len(byUser))
	for user, keys := range byUser {
		if blob, err := json.Marshal(keys); err == nil {
			out[user] = blob
		}
	}
	return out
}

// ImportUserState implements UserStatePorter. Dedupe keys are a set, so
// a union with whatever arrived locally first is always correct.
func (d *DedupeStage) ImportUserState(user uint64, state []byte) error {
	var keys []dedupeWire
	if err := json.Unmarshal(state, &keys); err != nil {
		return fmt.Errorf("dedupe import user %d: %w", user, err)
	}
	for _, k := range keys {
		d.seen[dedupeKey{user: lbsn.UserID(user), venue: lbsn.VenueID(k.Venue), at: k.At}] = struct{}{}
	}
	return nil
}

// sweep lazily evicts expired keys once per TTL of event time, keeping
// the set proportional to the live working set.
func (d *DedupeStage) sweep() {
	if d.latest.Sub(d.lastSweep) < d.ttl {
		return
	}
	d.lastSweep = d.latest
	for k := range d.seen {
		if k.age(d.latest) >= d.ttl {
			delete(d.seen, k)
		}
	}
}

// timedPoint is one retained claim for the sliding-window stages.
type timedPoint struct {
	at  time.Time
	loc geo.Point
}

// SpeedStage is the per-user sliding-window speed-of-travel check: two
// consecutive claims within the window whose implied travel speed
// exceeds the limit raise an alert. Only the latest claim per user is
// retained — it is always the one a new claim is "consecutive" with,
// and if it has aged out of the window there is nothing to compare.
// The stage operates on claims — denied check-ins included — because
// per §4.3 the claim itself is the evidence; only GPS-mismatch denials
// are skipped (the claimed venue was never tied to the device, so no
// location fact exists).
type SpeedStage struct {
	maxSpeed float64
	window   time.Duration
	last     map[lbsn.UserID]timedPoint
}

// NewSpeedStage builds a speed stage.
func NewSpeedStage(maxSpeed float64, window time.Duration) *SpeedStage {
	return &SpeedStage{
		maxSpeed: maxSpeed,
		window:   window,
		last:     make(map[lbsn.UserID]timedPoint),
	}
}

// Name implements Stage.
func (s *SpeedStage) Name() string { return StageSpeed }

// Process implements Stage.
func (s *SpeedStage) Process(ev lbsn.CheckinEvent) ([]Alert, bool) {
	return s.processInto(ev, nil)
}

// ProcessBatch implements BatchStage: the same per-event core, but
// alerts append into the worker's shared slice instead of a fresh
// allocation per finding.
func (s *SpeedStage) ProcessBatch(events []lbsn.CheckinEvent, alerts []Alert) ([]lbsn.CheckinEvent, []Alert) {
	for i := range events {
		alerts, _ = s.processInto(events[i], alerts)
	}
	return events, alerts // speed never filters
}

// processInto is the shared core of Process and ProcessBatch,
// appending any alert to dst.
func (s *SpeedStage) processInto(ev lbsn.CheckinEvent, dst []Alert) ([]Alert, bool) {
	if ev.Reason == lbsn.DenyGPSMismatch {
		return dst, true
	}
	alerts := dst
	if prev, ok := s.last[ev.UserID]; ok && ev.At.Sub(prev.at) <= s.window {
		dist := prev.loc.DistanceMeters(ev.Venue)
		elapsed := ev.At.Sub(prev.at).Seconds()
		if speed := geo.SpeedMetersPerSecond(dist, elapsed); speed > s.maxSpeed {
			alerts = append(alerts, Alert{
				Seq:      ev.Seq,
				Detector: StageSpeed,
				UserID:   uint64(ev.UserID),
				VenueID:  uint64(ev.VenueID),
				At:       ev.At,
				Detail: fmt.Sprintf("impossible travel: %.0f m in %.0f s = %.1f m/s exceeds %.1f m/s",
					dist, elapsed, speed, s.maxSpeed),
			})
		}
	}
	s.last[ev.UserID] = timedPoint{at: ev.At, loc: ev.Venue}
	return alerts, true
}

// EvictIdle implements UserStateEvictor: a retained claim older than
// the cutoff can never be inside the comparison window again.
func (s *SpeedStage) EvictIdle(olderThan time.Time) int {
	n := 0
	for u, tp := range s.last {
		if tp.at.Before(olderThan) {
			delete(s.last, u)
			n++
		}
	}
	return n
}

// speedWire is the speed stage's per-user state on the handoff wire.
type speedWire struct {
	At  time.Time `json:"at"`
	Loc geo.Point `json:"loc"`
}

// ExportUserState implements UserStatePorter: the user's last retained
// claim, removed from the map.
func (s *SpeedStage) ExportUserState(leaving func(uint64) bool) map[uint64][]byte {
	out := make(map[uint64][]byte)
	for u, tp := range s.last {
		if !leaving(uint64(u)) {
			continue
		}
		if blob, err := json.Marshal(speedWire{At: tp.at, Loc: tp.loc}); err == nil {
			out[uint64(u)] = blob
		}
		delete(s.last, u)
	}
	return out
}

// ImportUserState implements UserStatePorter; an existing local claim
// wins (it postdates the handoff).
func (s *SpeedStage) ImportUserState(user uint64, state []byte) error {
	if _, ok := s.last[lbsn.UserID(user)]; ok {
		return nil
	}
	var w speedWire
	if err := json.Unmarshal(state, &w); err != nil {
		return fmt.Errorf("speed import user %d: %w", user, err)
	}
	s.last[lbsn.UserID(user)] = timedPoint{at: w.At, loc: w.Loc}
	return nil
}

// RateThrottleStage flags users whose claim rate exceeds the per-window
// budget, then escalates: the flagged device is challenged with the
// §5.1 rapid-bit distance-bounding exchange (internal/defense). The
// simulation places the prover at the device-reported coordinates —
// what a deployment would physically measure — and the alert carries
// the challenge verdict plus the protocol's false-accept bound. The
// exchange RNG is seeded from the user and event sequence, keeping runs
// deterministic.
type RateThrottleStage struct {
	max       int
	window    time.Duration
	challenge defense.RapidBitConfig
	recent    map[lbsn.UserID][]time.Time
}

// NewRateThrottleStage builds a rate-throttle stage.
func NewRateThrottleStage(max int, window time.Duration, challenge defense.RapidBitConfig) *RateThrottleStage {
	return &RateThrottleStage{
		max:       max,
		window:    window,
		challenge: challenge,
		recent:    make(map[lbsn.UserID][]time.Time),
	}
}

// Name implements Stage.
func (r *RateThrottleStage) Name() string { return StageRateThrottle }

// Process implements Stage.
func (r *RateThrottleStage) Process(ev lbsn.CheckinEvent) ([]Alert, bool) {
	return r.processInto(ev, nil)
}

// ProcessBatch implements BatchStage.
func (r *RateThrottleStage) ProcessBatch(events []lbsn.CheckinEvent, alerts []Alert) ([]lbsn.CheckinEvent, []Alert) {
	for i := range events {
		alerts, _ = r.processInto(events[i], alerts)
	}
	return events, alerts // the throttle never filters
}

// processInto is the shared core of Process and ProcessBatch,
// appending any alert to dst.
func (r *RateThrottleStage) processInto(ev lbsn.CheckinEvent, dst []Alert) ([]Alert, bool) {
	hist := simclock.SlideWindow(r.recent[ev.UserID], ev.At, r.window)
	// History is bounded without a cap: one append per event, cleared
	// whenever the budget is blown, so it never exceeds max+1 entries.
	if len(hist) <= r.max {
		r.recent[ev.UserID] = hist
		return dst, true
	}
	count := len(hist)
	// Budget blown: challenge the device, then reset the window so the
	// throttle re-arms instead of alerting on every subsequent claim.
	r.recent[ev.UserID] = hist[:0]

	prover := defense.Prover{DistanceMeters: ev.Reported.DistanceMeters(ev.Venue)}
	rng := rand.New(rand.NewSource(int64(ev.UserID)<<20 ^ int64(ev.Seq)))
	res := defense.RunRapidBitExchange(r.challenge, prover, rng)
	verdict := "device verified at venue"
	if !res.Accepted {
		verdict = fmt.Sprintf("device FAILED distance bounding (%d timing, %d bit fails)",
			res.TimingFails, res.BitFails)
	}
	return append(dst, Alert{
		Seq:      ev.Seq,
		Detector: StageRateThrottle,
		UserID:   uint64(ev.UserID),
		VenueID:  uint64(ev.VenueID),
		At:       ev.At,
		Detail: fmt.Sprintf("%d claims in %s exceeds %d; rapid-bit challenge: %s (false-accept p=%.2g)",
			count, r.window, r.max, verdict, r.challenge.FalseAcceptProbability()),
	}), true
}

// EvictIdle implements UserStateEvictor: drop users whose newest claim
// predates the cutoff (and the empty histories left by budget resets).
func (r *RateThrottleStage) EvictIdle(olderThan time.Time) int {
	n := 0
	for u, hist := range r.recent {
		if len(hist) == 0 || hist[len(hist)-1].Before(olderThan) {
			delete(r.recent, u)
			n++
		}
	}
	return n
}

// ExportUserState implements UserStatePorter: the user's claim history
// inside the throttle window, removed from the map.
func (r *RateThrottleStage) ExportUserState(leaving func(uint64) bool) map[uint64][]byte {
	out := make(map[uint64][]byte)
	for u, hist := range r.recent {
		if !leaving(uint64(u)) {
			continue
		}
		if len(hist) > 0 {
			if blob, err := json.Marshal(hist); err == nil {
				out[uint64(u)] = blob
			}
		}
		delete(r.recent, u)
	}
	return out
}

// ImportUserState implements UserStatePorter; existing local history
// wins.
func (r *RateThrottleStage) ImportUserState(user uint64, state []byte) error {
	if hist, ok := r.recent[lbsn.UserID(user)]; ok && len(hist) > 0 {
		return nil
	}
	var hist []time.Time
	if err := json.Unmarshal(state, &hist); err != nil {
		return fmt.Errorf("rate import user %d: %w", user, err)
	}
	r.recent[lbsn.UserID(user)] = hist
	return nil
}

// CheaterCodeStage runs an independent online instance of the §2.3 rule
// engine over the stream, so inline denials — and anything an
// alternative ingest path lets through — surface as alerts. GPS-denied
// events are skipped: the rules operate on venue coordinates, which a
// failed GPS verification never tied to the device.
type CheaterCodeStage struct {
	det *cheatercode.Detector
}

// NewCheaterCodeStage builds a cheater-code stage.
func NewCheaterCodeStage(cfg cheatercode.Config) *CheaterCodeStage {
	return &CheaterCodeStage{det: cheatercode.NewDetector(cfg)}
}

// Name implements Stage.
func (c *CheaterCodeStage) Name() string { return StageCheaterCode }

// Process implements Stage.
func (c *CheaterCodeStage) Process(ev lbsn.CheckinEvent) ([]Alert, bool) {
	return c.processInto(ev, nil)
}

// ProcessBatch implements BatchStage.
func (c *CheaterCodeStage) ProcessBatch(events []lbsn.CheckinEvent, alerts []Alert) ([]lbsn.CheckinEvent, []Alert) {
	for i := range events {
		alerts, _ = c.processInto(events[i], alerts)
	}
	return events, alerts // the rule engine never filters
}

// processInto is the shared core of Process and ProcessBatch,
// appending any alert to dst.
func (c *CheaterCodeStage) processInto(ev lbsn.CheckinEvent, dst []Alert) ([]Alert, bool) {
	if ev.Reason == lbsn.DenyGPSMismatch {
		return dst, true
	}
	v := c.det.Check(cheatercode.Observation{
		UserID:   uint64(ev.UserID),
		VenueID:  uint64(ev.VenueID),
		At:       ev.At,
		Location: ev.Venue,
	})
	if v == nil {
		return dst, true
	}
	return append(dst, Alert{
		Seq:      ev.Seq,
		Detector: StageCheaterCode,
		UserID:   uint64(ev.UserID),
		VenueID:  uint64(ev.VenueID),
		At:       ev.At,
		Detail:   fmt.Sprintf("%s: %s", v.Rule, v.Detail),
	}), true
}

// EvictIdle implements UserStateEvictor, delegating to the rule
// engine's own history eviction.
func (c *CheaterCodeStage) EvictIdle(olderThan time.Time) int {
	return c.det.EvictIdle(olderThan)
}

// ExportUserState implements UserStatePorter, delegating to the rule
// engine's history export.
func (c *CheaterCodeStage) ExportUserState(leaving func(uint64) bool) map[uint64][]byte {
	out := make(map[uint64][]byte)
	for user, hist := range c.det.ExportUsers(leaving) {
		if blob, err := json.Marshal(hist); err == nil {
			out[user] = blob
		}
	}
	return out
}

// ImportUserState implements UserStatePorter; the engine keeps existing
// local history.
func (c *CheaterCodeStage) ImportUserState(user uint64, state []byte) error {
	var hist []cheatercode.Observation
	if err := json.Unmarshal(state, &hist); err != nil {
		return fmt.Errorf("cheater-code import user %d: %w", user, err)
	}
	c.det.ImportUser(user, hist)
	return nil
}
