package stream

import (
	"strings"
	"sync"
	"testing"
	"time"

	"locheat/internal/cheatercode"
	"locheat/internal/defense"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

var (
	testVenueLoc = geo.Point{Lat: 40.8136, Lon: -96.7026} // Lincoln, NE
	farVenueLoc  = geo.Point{Lat: 37.7749, Lon: -122.4194}
)

func event(user, venue uint64, at time.Time, loc geo.Point) lbsn.CheckinEvent {
	return lbsn.CheckinEvent{
		UserID:   lbsn.UserID(user),
		VenueID:  lbsn.VenueID(venue),
		At:       at,
		Venue:    loc,
		Reported: loc,
		Accepted: true,
	}
}

// --- stage units -------------------------------------------------------

func TestDedupeFiltersReplaysWithinTTL(t *testing.T) {
	st := NewDedupeStage(10 * time.Minute)
	t0 := simclock.Epoch()
	ev := event(1, 1, t0, testVenueLoc)

	if _, keep := st.Process(ev); !keep {
		t.Fatal("first delivery filtered")
	}
	if _, keep := st.Process(ev); keep {
		t.Fatal("replay inside TTL not filtered")
	}
	// A different instant is a distinct check-in, not a replay.
	if _, keep := st.Process(event(1, 1, t0.Add(time.Minute), testVenueLoc)); !keep {
		t.Fatal("distinct instant filtered")
	}
	// Past the TTL the key has expired and the event passes again.
	if _, keep := st.Process(event(2, 2, t0.Add(11*time.Minute), testVenueLoc)); !keep {
		t.Fatal("unrelated event filtered")
	}
	if _, keep := st.Process(ev); !keep {
		t.Fatal("replay after TTL expiry still filtered")
	}
}

// TestDedupeFiltersStaleReplays pins the replay-safety contract the
// cluster's forwarding outbox relies on: a remembered key is filtered
// no matter how old the event is — the TTL bounds how long keys are
// remembered, it does not whitelist old duplicates. (An outbox replay
// delivers exact duplicates with OLD timestamps; an age-gated check
// would wave them through.)
func TestDedupeFiltersStaleReplays(t *testing.T) {
	st := NewDedupeStage(10 * time.Minute)
	t0 := simclock.Epoch()
	st.Process(event(9, 9, t0, testVenueLoc)) // arms the sweep clock

	ev := event(1, 1, t0.Add(5*time.Minute), testVenueLoc)
	st.Process(ev)
	// Sweep at +12m: ev's key (age 7m) survives, sweep clock resets.
	st.Process(event(2, 2, t0.Add(12*time.Minute), testVenueLoc))
	// +21m: no sweep due yet, ev's key is 16m old — past the TTL but
	// still remembered. Its replay must be filtered.
	st.Process(event(3, 3, t0.Add(21*time.Minute), testVenueLoc))
	if _, keep := st.Process(ev); keep {
		t.Fatal("remembered replay older than the TTL passed the dedupe stage")
	}
}

func TestSpeedImpossibleTravel(t *testing.T) {
	st := NewSpeedStage(15, time.Hour)
	t0 := simclock.Epoch()

	alerts, keep := st.Process(event(7, 1, t0, testVenueLoc))
	if len(alerts) != 0 || !keep {
		t.Fatalf("first claim alerted: %v", alerts)
	}
	// Lincoln -> San Francisco (~2000 km) in 10 minutes.
	alerts, _ = st.Process(event(7, 2, t0.Add(10*time.Minute), farVenueLoc))
	if len(alerts) != 1 {
		t.Fatalf("teleport not alerted: %v", alerts)
	}
	if alerts[0].Detector != StageSpeed || alerts[0].UserID != 7 {
		t.Fatalf("wrong alert: %+v", alerts[0])
	}
	if !strings.Contains(alerts[0].Detail, "impossible travel") {
		t.Fatalf("detail missing cause: %q", alerts[0].Detail)
	}
}

func TestSpeedWindowExpiry(t *testing.T) {
	st := NewSpeedStage(15, time.Hour)
	t0 := simclock.Epoch()

	if alerts, _ := st.Process(event(3, 1, t0, testVenueLoc)); len(alerts) != 0 {
		t.Fatalf("unexpected alerts: %v", alerts)
	}
	// The previous claim is older than the window: it has expired, so a
	// far-away claim is not "consecutive" and raises nothing.
	if alerts, _ := st.Process(event(3, 2, t0.Add(2*time.Hour), farVenueLoc)); len(alerts) != 0 {
		t.Fatalf("expired claim still compared: %v", alerts)
	}
	// But inside the window the same hop is impossible travel.
	if alerts, _ := st.Process(event(3, 3, t0.Add(2*time.Hour+30*time.Minute), testVenueLoc)); len(alerts) != 1 {
		t.Fatal("in-window teleport not alerted")
	}
}

func TestSpeedSkipsGPSMismatch(t *testing.T) {
	st := NewSpeedStage(15, time.Hour)
	t0 := simclock.Epoch()
	st.Process(event(9, 1, t0, testVenueLoc))

	ev := event(9, 2, t0.Add(time.Minute), farVenueLoc)
	ev.Accepted = false
	ev.Reason = lbsn.DenyGPSMismatch
	if alerts, _ := st.Process(ev); len(alerts) != 0 {
		t.Fatalf("gps-mismatch claim treated as location fact: %v", alerts)
	}
}

func TestRateThrottleChallengesAndRearms(t *testing.T) {
	st := NewRateThrottleStage(3, 10*time.Minute, defense.RapidBitConfig{})
	t0 := simclock.Epoch()

	var got []Alert
	for i := 0; i < 8; i++ {
		alerts, keep := st.Process(event(5, uint64(i+1), t0.Add(time.Duration(i)*time.Minute), testVenueLoc))
		if !keep {
			t.Fatal("rate throttle must not filter events")
		}
		got = append(got, alerts...)
	}
	// Budget of 3 per window: the 4th claim alerts and resets, the 8th
	// claim alerts again (4 more since the reset).
	if len(got) != 2 {
		t.Fatalf("want 2 alerts, got %d: %v", len(got), got)
	}
	for _, a := range got {
		if a.Detector != StageRateThrottle {
			t.Fatalf("wrong detector: %+v", a)
		}
		if !strings.Contains(a.Detail, "rapid-bit challenge") {
			t.Fatalf("alert missing distance-bounding escalation: %q", a.Detail)
		}
	}
	// Honest-rate claims after the window passes raise nothing.
	if alerts, _ := st.Process(event(5, 99, t0.Add(2*time.Hour), testVenueLoc)); len(alerts) != 0 {
		t.Fatalf("re-armed throttle misfired: %v", alerts)
	}
}

func TestRateThrottleHighBudget(t *testing.T) {
	// Regression: budgets above the per-user history cap must still be
	// enforceable — the history is bounded by the reset-on-alert, not
	// by a trim that would keep the count from ever exceeding max.
	st := NewRateThrottleStage(100, time.Hour, defense.RapidBitConfig{})
	t0 := simclock.Epoch()
	var alerts []Alert
	for i := 0; i < 101; i++ {
		a, _ := st.Process(event(6, uint64(i+1), t0.Add(time.Duration(i)*time.Second), testVenueLoc))
		alerts = append(alerts, a...)
	}
	if len(alerts) != 1 {
		t.Fatalf("101 claims against budget 100: %d alerts, want 1", len(alerts))
	}
}

func TestCheaterCodeStageFlagsFrequentCheckin(t *testing.T) {
	st := NewCheaterCodeStage(cheatercode.DefaultConfig())
	t0 := simclock.Epoch()

	if alerts, _ := st.Process(event(2, 1, t0, testVenueLoc)); len(alerts) != 0 {
		t.Fatalf("clean claim alerted: %v", alerts)
	}
	alerts, keep := st.Process(event(2, 1, t0.Add(10*time.Minute), testVenueLoc))
	if !keep || len(alerts) != 1 {
		t.Fatalf("same-venue revisit inside cooldown not alerted: %v", alerts)
	}
	if !strings.Contains(alerts[0].Detail, string(cheatercode.RuleFrequentCheckin)) {
		t.Fatalf("wrong rule: %q", alerts[0].Detail)
	}
}

// --- pipeline ----------------------------------------------------------

// captureStage records the order each user's events arrive in. One
// instance per shard; the shared map is mutex-guarded because distinct
// shards write concurrently.
type captureStage struct {
	mu   *sync.Mutex
	seqs map[lbsn.UserID][]uint64
}

func (c *captureStage) Name() string { return "capture" }
func (c *captureStage) Process(ev lbsn.CheckinEvent) ([]Alert, bool) {
	c.mu.Lock()
	c.seqs[ev.UserID] = append(c.seqs[ev.UserID], ev.Seq)
	c.mu.Unlock()
	return nil, true
}

func TestShardOrderingPerUser(t *testing.T) {
	var mu sync.Mutex
	seqs := make(map[lbsn.UserID][]uint64)
	p := New(Config{
		Shards:      4,
		ShardBuffer: 4096,
		Clock:       simclock.NewSimulated(simclock.Epoch()),
		Stages: func(int) []Stage {
			return []Stage{&captureStage{mu: &mu, seqs: seqs}}
		},
	})

	const users, perUser = 16, 200
	t0 := simclock.Epoch()
	var wg sync.WaitGroup
	for u := 1; u <= users; u++ {
		wg.Add(1)
		go func(u uint64) {
			defer wg.Done()
			for i := 0; i < perUser; i++ {
				if !p.Publish(event(u, uint64(i+1), t0.Add(time.Duration(i)*time.Minute), testVenueLoc)) {
					t.Errorf("publish dropped with roomy buffers (user %d event %d)", u, i)
					return
				}
			}
		}(uint64(u))
	}
	wg.Wait()
	p.Close()

	if len(seqs) != users {
		t.Fatalf("saw %d users, want %d", len(seqs), users)
	}
	for u, got := range seqs {
		if len(got) != perUser {
			t.Fatalf("user %d: %d events, want %d", u, len(got), perUser)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("user %d: out of order at %d: %d after %d", u, i, got[i], got[i-1])
			}
		}
	}
	st := p.Stats()
	if st.Published != users*perUser || st.Processed != users*perUser {
		t.Fatalf("counters: %+v", st)
	}
}

func TestMalformedEventsDeadLetter(t *testing.T) {
	p := New(Config{Shards: 1, Clock: simclock.NewSimulated(simclock.Epoch())})
	t0 := simclock.Epoch()

	badReported := event(1, 1, t0, testVenueLoc)
	badReported.Reported = geo.Point{Lat: 999, Lon: 0}
	bad := []lbsn.CheckinEvent{
		event(0, 1, t0, testVenueLoc),                     // zero user
		event(1, 0, t0, testVenueLoc),                     // zero venue
		event(1, 1, time.Time{}, testVenueLoc),            // zero time
		event(1, 1, t0, geo.Point{Lat: 999, Lon: -96.70}), // invalid venue coords
		badReported, // invalid device coords
	}
	for _, ev := range bad {
		if p.Publish(ev) {
			t.Fatalf("malformed event accepted: %+v", ev)
		}
	}
	if !p.Publish(event(1, 1, t0, testVenueLoc)) {
		t.Fatal("valid event refused")
	}
	p.Close()

	var reasons []string
	for dl := range p.DeadLetters() {
		reasons = append(reasons, dl.Reason)
	}
	if len(reasons) != len(bad) {
		t.Fatalf("dead letters: %v", reasons)
	}
	st := p.Stats()
	if st.DeadLettered != uint64(len(bad)) || st.Published != 1 || st.Processed != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// gateStage blocks processing until released, letting tests fill shard
// queues deterministically.
type gateStage struct{ gate chan struct{} }

func (g *gateStage) Name() string { return "gate" }
func (g *gateStage) Process(lbsn.CheckinEvent) ([]Alert, bool) {
	<-g.gate
	return nil, true
}

func TestFullShardDropsInsteadOfBlocking(t *testing.T) {
	gate := make(chan struct{})
	p := New(Config{
		Shards:      1,
		ShardBuffer: 8,
		Clock:       simclock.NewSimulated(simclock.Epoch()),
		Stages:      func(int) []Stage { return []Stage{&gateStage{gate: gate}} },
	})
	t0 := simclock.Epoch()

	// With the worker gated, at most buffer+1 events can be in flight;
	// everything beyond must drop immediately rather than block.
	const total = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			p.Publish(event(1, uint64(i+1), t0.Add(time.Duration(i)*time.Second), testVenueLoc))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a full shard queue")
	}
	close(gate)
	p.Close()

	st := p.Stats()
	if st.Dropped == 0 {
		t.Fatal("no drops counted on a saturated queue")
	}
	if st.Published+st.Dropped != total {
		t.Fatalf("published %d + dropped %d != %d", st.Published, st.Dropped, total)
	}
	if st.Processed != st.Published {
		t.Fatalf("drained %d of %d published", st.Processed, st.Published)
	}
}

func TestPublishAfterCloseRefused(t *testing.T) {
	p := New(Config{Shards: 1, Clock: simclock.NewSimulated(simclock.Epoch())})
	p.Close()
	p.Close() // idempotent
	if p.Publish(event(1, 1, simclock.Epoch(), testVenueLoc)) {
		t.Fatal("publish accepted after close")
	}
}

func TestWindowRatesAndStats(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	p := New(Config{
		Shards:      2,
		Clock:       clock,
		StatsWindow: time.Second,
		Detect: DetectConfig{
			SpeedMaxMetersPerSecond: 15,
			SpeedWindow:             time.Hour,
			RateMaxPerWindow:        1000, // keep the throttle quiet
		},
	})
	t0 := simclock.Epoch()

	// 10 clean events per second for 4 seconds, one user per event so
	// no per-user rule fires, plus one teleporting user alerting once
	// per second.
	for s := 0; s < 4; s++ {
		base := t0.Add(time.Duration(s) * time.Second)
		for i := 0; i < 10; i++ {
			u := uint64(100 + s*10 + i)
			if !p.Publish(event(u, u, base.Add(time.Duration(i)*100*time.Millisecond), testVenueLoc)) {
				t.Fatal("publish refused")
			}
		}
		loc := testVenueLoc
		if s%2 == 1 {
			loc = farVenueLoc
		}
		if !p.Publish(event(1, uint64(1000+s), base.Add(500*time.Millisecond), loc)) {
			t.Fatal("publish refused")
		}
	}
	clock.Advance(10 * time.Second) // all four windows complete
	p.Close()

	windows := p.Windows()
	if len(windows) != 4 {
		t.Fatalf("want 4 windows, got %d: %+v", len(windows), windows)
	}
	for _, w := range windows {
		if w.Events != 11 {
			t.Fatalf("window %s: %d events, want 11", w.Start, w.Events)
		}
	}
	r := p.Rates()
	if r.Windows != 4 {
		t.Fatalf("rates over %d windows, want 4", r.Windows)
	}
	if r.EventsPerSec != 11 {
		t.Fatalf("events/sec = %v, want 11", r.EventsPerSec)
	}
	// User 1 teleports Lincoln->SF->Lincoln->SF: 3 speed alerts.
	if got := r.AlertsPerSec[StageSpeed]; got != 0.75 {
		t.Fatalf("speed alerts/sec = %v, want 0.75", got)
	}
	st := p.Stats()
	if st.AlertsByDetector[StageSpeed] != 3 {
		t.Fatalf("speed alerts = %d, want 3", st.AlertsByDetector[StageSpeed])
	}
}

func TestRecentAlertsNewestFirstAndRingWrap(t *testing.T) {
	p := New(Config{
		Shards:    1,
		AlertRing: 4,
		Clock:     simclock.NewSimulated(simclock.Epoch()),
		Detect:    DetectConfig{RateMaxPerWindow: 1000},
	})
	t0 := simclock.Epoch()
	// Alternate a user between two distant venues: every claim after
	// the first is a speed violation.
	for i := 0; i < 7; i++ {
		loc := testVenueLoc
		if i%2 == 1 {
			loc = farVenueLoc
		}
		p.Publish(event(1, uint64(i+1), t0.Add(time.Duration(i)*time.Minute), loc))
	}
	p.Close()

	alerts := p.RecentAlerts(0)
	if len(alerts) != 4 {
		t.Fatalf("ring retained %d, want 4", len(alerts))
	}
	for i := 1; i < len(alerts); i++ {
		// Two detectors can alert on the same event (equal Seq); newest
		// first means Seq never increases as we walk back.
		if alerts[i].Seq > alerts[i-1].Seq {
			t.Fatalf("not newest-first: %+v", alerts)
		}
	}
	if two := p.RecentAlerts(2); len(two) != 2 || two[0].Seq != alerts[0].Seq {
		t.Fatalf("limited query wrong: %+v", two)
	}
}

func TestSubscribeReceivesAlerts(t *testing.T) {
	p := New(Config{Shards: 1, Clock: simclock.NewSimulated(simclock.Epoch())})
	sub := p.Subscribe(16)
	t0 := simclock.Epoch()
	p.Publish(event(1, 1, t0, testVenueLoc))
	p.Publish(event(1, 2, t0.Add(time.Minute), farVenueLoc)) // teleport
	p.Close()

	var got []Alert
	for a := range sub {
		got = append(got, a)
	}
	if len(got) == 0 {
		t.Fatal("subscriber saw no alerts")
	}
	found := false
	for _, a := range got {
		if a.Detector == StageSpeed {
			found = true
		}
	}
	if !found {
		t.Fatalf("no speed alert delivered: %v", got)
	}
}
