package stream

import (
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
)

// drainTo publishes and waits until the pipeline has processed
// everything published so far.
func drainTo(t *testing.T, p *Pipeline) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := p.Stats()
		if st.Processed+st.Filtered >= st.Published {
			// Processed counts every event, Filtered is a subset; equality
			// with Published means the queues are empty.
			if st.Processed >= st.Published {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("pipeline did not drain: %+v", p.Stats())
}

func handoffEvent(user uint64, at time.Time, loc geo.Point) lbsn.CheckinEvent {
	return lbsn.CheckinEvent{
		UserID:   lbsn.UserID(user),
		VenueID:  lbsn.VenueID(user*100 + uint64(at.Unix()%97) + 1),
		At:       at,
		Venue:    loc,
		Reported: loc,
		Accepted: true,
	}
}

// TestUserStateHandoff moves a user's detector state from one pipeline
// to another and verifies the speed stage still sees the pre-handoff
// claim: the very first post-handoff event at an impossible distance
// must alert, which only happens if the exported "last position"
// arrived intact.
func TestUserStateHandoff(t *testing.T) {
	t0 := simclock.Epoch()
	src := New(Config{Shards: 2, Clock: simclock.NewSimulated(t0)})
	dst := New(Config{Shards: 3, Clock: simclock.NewSimulated(t0)})
	defer src.Close()
	defer dst.Close()

	home := geo.Point{Lat: 37.77, Lon: -122.42} // San Francisco
	if !src.Publish(handoffEvent(7, t0, home)) {
		t.Fatal("publish refused")
	}
	drainTo(t, src)

	states := src.ExportUserStates(func(u uint64) bool { return u == 7 })
	if len(states) != 1 {
		t.Fatalf("exported %d users, want 1 (states: %v)", len(states), states)
	}
	if len(states[7]) == 0 {
		t.Fatal("user 7 exported with no stage state")
	}
	// The export is destructive: a second export finds nothing.
	if again := src.ExportUserStates(func(u uint64) bool { return u == 7 }); len(again) != 0 {
		t.Fatalf("second export returned %d users, want 0", len(again))
	}

	if n := dst.ImportUserStates(states); n != 1 {
		t.Fatalf("imported %d users, want 1", n)
	}

	// 10 minutes later the user claims New York: ~4,100 km away, far
	// beyond 15 m/s — but only detectable with the handed-off state.
	ny := geo.Point{Lat: 40.71, Lon: -74.01}
	if !dst.Publish(handoffEvent(7, t0.Add(10*time.Minute), ny)) {
		t.Fatal("publish refused")
	}
	drainTo(t, dst)

	page, total := dst.Alerts(store.AlertQuery{UserID: 7, Detector: StageSpeed})
	if total == 0 {
		t.Fatalf("no speed alert after handoff; state did not survive (alerts: %v)", page)
	}
}

// TestImportKeepsLocalState ensures an import never clobbers state the
// destination already accumulated: local events are newer than the
// handoff snapshot.
func TestImportKeepsLocalState(t *testing.T) {
	t0 := simclock.Epoch()
	dst := New(Config{Shards: 1, Clock: simclock.NewSimulated(t0)})
	defer dst.Close()

	ny := geo.Point{Lat: 40.71, Lon: -74.01}
	if !dst.Publish(handoffEvent(9, t0.Add(time.Minute), ny)) {
		t.Fatal("publish refused")
	}
	drainTo(t, dst)

	// Hand-craft a stale snapshot that, if applied, would place user 9
	// in San Francisco at t0.
	stale := map[uint64]map[string][]byte{
		9: {StageSpeed: []byte(`{"at":"1970-01-01T00:00:00Z","loc":{"lat":37.77,"lon":-122.42}}`)},
	}
	dst.ImportUserStates(stale)

	// A New York claim two minutes after the local one is pedestrian
	// speed; only the stale SF state would flag it.
	if !dst.Publish(handoffEvent(9, t0.Add(3*time.Minute), ny)) {
		t.Fatal("publish refused")
	}
	drainTo(t, dst)
	if _, total := dst.Alerts(store.AlertQuery{UserID: 9, Detector: StageSpeed}); total != 0 {
		t.Fatalf("stale import overrode newer local state: %d speed alerts", total)
	}
}

// TestExportAfterCloseReturnsNil pins the shutdown contract: a closed
// pipeline has no workers to run the export.
func TestExportAfterCloseReturnsNil(t *testing.T) {
	p := New(Config{Shards: 1})
	p.Close()
	if got := p.ExportUserStates(func(uint64) bool { return true }); got != nil {
		t.Fatalf("export after close = %v, want nil", got)
	}
}

// TestCustomPartitioner verifies events and imports agree on shard
// placement under a non-default partitioner.
func TestCustomPartitioner(t *testing.T) {
	t0 := simclock.Epoch()
	// Reverse the default: high users to shard 0.
	part := func(user uint64, shards int) int {
		return int((user / 1000) % uint64(shards))
	}
	p := New(Config{Shards: 4, Partitioner: part, Clock: simclock.NewSimulated(t0)})
	defer p.Close()

	home := geo.Point{Lat: 37.77, Lon: -122.42}
	if !p.Publish(handoffEvent(4242, t0, home)) {
		t.Fatal("publish refused")
	}
	drainTo(t, p)
	states := p.ExportUserStates(func(u uint64) bool { return u == 4242 })
	if len(states) != 1 {
		t.Fatalf("exported %d users, want 1", len(states))
	}
	if n := p.ImportUserStates(states); n != 1 {
		t.Fatalf("imported %d users, want 1", n)
	}
}
