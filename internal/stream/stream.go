// Package stream runs the paper's cheating detection online. The seed
// reproduced §4's detection and §5's defences as batch analytics over a
// crawled snapshot; a production LBSN cannot wait for a crawl — it must
// flag location cheats as check-ins arrive. This package is that hot
// path: a composable, channel-based pipeline that ingests
// lbsn.CheckinEvents, shards them by user across worker goroutines
// (order-preserving per user, since every §4 signal is a per-user
// sequence property), and runs a stage chain per shard:
//
//   - dedupe        — drops replayed events (same user/venue/instant)
//     within a TTL, the idempotency guard a real ingest tier needs;
//   - speed         — per-user sliding-window impossible-travel check,
//     the paper's core §2.3/§5 signal, applied to *claims* (a denied
//     check-in still evidences cheating, §4.3);
//   - rate-throttle — flags users whose claim rate exceeds the window
//     budget, then escalates to the §5.1 rapid-bit distance-bounding
//     challenge (internal/defense) as secondary verification;
//   - cheater-code  — an independent online instance of the §2.3 rule
//     engine (internal/cheatercode), turning silent inline denials
//     into queryable alerts.
//
// The pipeline NEVER blocks the producer: shard queues are bounded and
// enqueue is drop-on-full with a counter; malformed events go to a
// bounded dead-letter channel. All stage state is shard-local (one
// goroutine per shard), so detection needs no locks, and the hot-path
// aggregates (window counts, shard counters) are per-shard or atomic —
// cross-shard locks are only taken for the rare alert and for stats
// reads. Processing is deterministic under internal/simclock: every
// window decision is keyed off event timestamps, not wall arrival
// time.
//
// Alerts are not owned by the pipeline: every finding is appended to a
// store.AlertStore (a durable journal in production, a memory ring by
// default), and per-user stage state is bounded by idle-user eviction
// keyed off event time — memory scales with the *active* user set, not
// with every user ever seen.
package stream

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"locheat/internal/lbsn"
	"locheat/internal/obs"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/trace"
)

// Alert is one detector finding, the pipeline's primary output. The
// type lives in internal/store — the persistence layer owns the alert
// lifecycle; the pipeline is just its producer.
type Alert = store.Alert

// DeadLetter is a malformed event the pipeline refused to process.
type DeadLetter struct {
	Event  lbsn.CheckinEvent
	Reason string
}

// Stage is one processor in a shard's chain. A stage instance is owned
// by exactly one shard goroutine, so implementations need no internal
// locking; per-user state is safe because a user always hashes to the
// same shard.
type Stage interface {
	// Name identifies the stage in alerts and stats.
	Name() string
	// Process inspects one event. It returns any alerts raised and
	// whether the event should continue to later stages (dedupe returns
	// keep=false for replays).
	Process(ev lbsn.CheckinEvent) (alerts []Alert, keep bool)
}

// UserStateEvictor is the optional Stage extension for stages that
// retain per-user state. The shard worker calls EvictIdle periodically
// (in event time) so each stage drops users idle since olderThan;
// without it, per-user maps grow with the lifetime user set.
type UserStateEvictor interface {
	// EvictIdle drops state last touched before olderThan and returns
	// how many entries were evicted.
	EvictIdle(olderThan time.Time) int
}

// UserStatePorter is the optional Stage extension for stages whose
// per-user state can migrate between pipelines — the seam the cluster
// tier's shard handoff is built on. Both methods are called from the
// owning shard goroutine, so implementations need no locking beyond
// what Process already assumes.
type UserStatePorter interface {
	// ExportUserState removes and returns the serialized state of every
	// user for whom leaving reports true. Users without state are simply
	// absent from the result.
	ExportUserState(leaving func(user uint64) bool) map[uint64][]byte
	// ImportUserState installs previously exported state for one user.
	// If the stage already holds state for the user, the local state
	// wins (it is newer — events may have arrived ahead of the handoff)
	// and the import is a no-op.
	ImportUserState(user uint64, state []byte) error
}

// EvictionPolicy bounds per-user stage state by idle time. All
// durations are event time, so eviction is deterministic under
// simclock. The zero value takes defaults; it is shared by every
// per-user stage so one knob governs the whole pipeline's memory.
type EvictionPolicy struct {
	// IdleAfter is how long a user may go without an event before every
	// stage drops their state (default 12h). Must exceed the longest
	// stage window (speed: 1h, rate: 30m) or detection quality suffers.
	IdleAfter time.Duration
	// SweepEvery is how often (in observed event time) each shard runs
	// an eviction pass (default IdleAfter/8).
	SweepEvery time.Duration
}

func (e EvictionPolicy) withDefaults() EvictionPolicy {
	if e.IdleAfter <= 0 {
		e.IdleAfter = 12 * time.Hour
	}
	if e.SweepEvery <= 0 {
		e.SweepEvery = e.IdleAfter / 8
	}
	return e
}

// Config parameterizes a Pipeline. Zero values take defaults.
type Config struct {
	// Shards is the worker count (default GOMAXPROCS). Events shard by
	// UserID, so per-user order is preserved.
	Shards int
	// Partitioner maps a user to a shard index in [0, shards). Nil uses
	// user % shards, which is what every current deployment (clustered
	// or not) runs; the seam exists for schemes that want placement
	// beyond modulo (e.g. pinning hot users to dedicated shards), and
	// ImportUserStates routes handed-off users through it. Must be
	// pure: the same user must always land on the same shard or
	// per-user ordering (and every per-user stage) breaks.
	Partitioner func(user uint64, shards int) int
	// ShardBuffer is each shard's bounded queue (default 1024). A full
	// queue drops the event — the producer is never blocked.
	ShardBuffer int
	// DLQBuffer bounds the dead-letter channel (default 256). An
	// undrained full DLQ drops too, counted separately.
	DLQBuffer int
	// Store is the alert sink. Nil builds a store.MemoryAlertStore of
	// AlertRing capacity; production passes a store.AlertJournal so
	// alerts survive restarts. The pipeline flushes the store on Close
	// but does not close it — the store may outlive the pipeline (that
	// is the point).
	Store store.AlertStore
	// AlertRing sizes the default in-memory store when Store is nil
	// (default 1024).
	AlertRing int
	// Evict bounds per-user stage state; zero value = defaults (12h
	// idle cutoff swept every 1h30m of event time).
	Evict EvictionPolicy
	// StatsWindow is the tumbling-window size for aggregate rates
	// (default 1s). Windows are keyed by event time.
	StatsWindow time.Duration
	// StatsHistory is how many completed windows to retain (default 120).
	StatsHistory int
	// Clock separates "current window" from completed ones when
	// reporting rates; simulated clocks make that deterministic.
	Clock simclock.Clock
	// Stages builds the per-shard stage chain. Nil uses DefaultStages
	// with Detect.
	Stages func(shard int) []Stage
	// Detect tunes the default stage chain; ignored when Stages is set.
	Detect DetectConfig
	// Obs registers the pipeline's telemetry: read-through counters
	// over the per-shard atomics, queue-depth gauges, per-stage
	// processing-latency histograms, and the end-to-end detection-
	// latency histogram (IngestedAt stamp → alert append). Nil runs
	// the pipeline unobserved — the hot path then does not even read
	// the wall clock.
	Obs *obs.Registry
	// Tracer head-samples events at publish and records spans for the
	// sampled ones (ring wait, per stage, journal append). Nil — and,
	// on the untraced majority, one flags-byte check — keeps the hot
	// path exactly as before: zero allocations, no clock reads beyond
	// what Obs already takes.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.ShardBuffer <= 0 {
		c.ShardBuffer = 1024
	}
	if c.Partitioner == nil {
		c.Partitioner = func(user uint64, shards int) int {
			return int(user % uint64(shards))
		}
	}
	if c.DLQBuffer <= 0 {
		c.DLQBuffer = 256
	}
	if c.AlertRing <= 0 {
		c.AlertRing = 1024
	}
	if c.Store == nil {
		c.Store = store.NewMemoryAlertStore(c.AlertRing)
	}
	c.Evict = c.Evict.withDefaults()
	if c.StatsWindow <= 0 {
		c.StatsWindow = time.Second
	}
	if c.StatsHistory <= 0 {
		c.StatsHistory = 120
	}
	if c.Clock == nil {
		c.Clock = simclock.Real{}
	}
	if c.Stages == nil {
		det := c.Detect.withDefaults()
		c.Stages = func(int) []Stage { return DefaultStages(det) }
	}
	return c
}

// shard is one worker's bounded queue plus counters. Each shard owns
// its slice of the tumbling-window stats so the per-event bump never
// contends with other shards.
type shard struct {
	// ring is the bounded input queue (see ring.go): producers are the
	// Publish/PublishBatch partitioner, the consumer is this shard's
	// worker loop. Same drop-on-full semantics as the channel it
	// replaced, but a batch costs one push and one wakeup.
	ring *eventRing
	// ctl delivers control closures (state export/import for cluster
	// handoff) into the worker goroutine, the only place stage state may
	// be touched. Unbuffered: the sender rendezvouses with the worker,
	// so when the send returns the closure has been picked up.
	ctl       chan func(stages []Stage)
	windows   *windowTracker
	processed atomic.Uint64
	dropped   atomic.Uint64
	filtered  atomic.Uint64
	evicted   atomic.Uint64
}

// Pipeline is the online detector. Create with New, feed with Publish
// (typically installed as the lbsn.Service check-in observer), and stop
// with Close, which drains every queued event before returning.
type Pipeline struct {
	cfg    Config
	clock  simclock.Clock
	shards []*shard
	wg     sync.WaitGroup

	// mu guards closed against Publish/Close races; Publish holds it
	// shared so the hot path stays concurrent.
	mu     sync.RWMutex
	closed bool

	seq          atomic.Uint64
	published    atomic.Uint64
	deadLettered atomic.Uint64
	dlqDropped   atomic.Uint64
	storeErrors  atomic.Uint64

	dlq chan DeadLetter

	// alerts is the persistence sink; all alert reads go through it.
	alerts store.AlertStore

	// alertMu guards the per-detector counters, per-stage filter and
	// eviction counters, and subscriber registration. The alert fan-out
	// itself reads subsPtr without the lock (see fanOut).
	alertMu     sync.Mutex
	alertsTotal uint64
	byDetector  map[string]uint64
	filteredBy  map[string]uint64
	evictedBy   map[string]uint64
	subsClosed  bool

	// subsPtr is the copy-on-write subscriber list: Subscribe/Close
	// replace the whole slice under alertMu, the fan-out loads a
	// snapshot and delivers without any lock. subDropped counts alerts
	// a slow subscriber missed.
	subsPtr    atomic.Pointer[[]chan Alert]
	subDropped atomic.Uint64

	// scatterPool holds PublishBatch's per-call partition scratch.
	scatterPool sync.Pool

	// detLat is the paper's headline metric: ingest stamp → alert
	// append. Nil (obs off) doubles as the "don't stamp" switch in
	// Publish. Stage histograms live on each worker's stack slice.
	detLat *obs.Histogram

	// tracer records spans for head-sampled events; nil = untraced.
	tracer *trace.Tracer
}

// New builds and starts a pipeline; its shard workers run until Close.
func New(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:        cfg,
		clock:      cfg.Clock,
		dlq:        make(chan DeadLetter, cfg.DLQBuffer),
		alerts:     cfg.Store,
		byDetector: make(map[string]uint64),
		filteredBy: make(map[string]uint64),
		evictedBy:  make(map[string]uint64),
		tracer:     cfg.Tracer,
	}
	p.registerObs(cfg.Obs)
	p.shards = make([]*shard, cfg.Shards)
	for i := range p.shards {
		sh := &shard{
			ring:    newEventRing(cfg.ShardBuffer),
			ctl:     make(chan func([]Stage)),
			windows: newWindowTracker(cfg.StatsWindow, cfg.StatsHistory),
		}
		p.shards[i] = sh
		p.registerShardObs(cfg.Obs, i, sh)
		stages := cfg.Stages(i)
		p.wg.Add(1)
		go p.run(sh, stages, stageHistograms(cfg.Obs, stages))
	}
	return p
}

// registerObs exposes the pipeline-wide counters as read-through
// metrics over the same atomics Stats() reports, plus the detection-
// latency histogram. No-op on a nil registry.
func (p *Pipeline) registerObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("locheat_stream_published_total",
		"events accepted into a shard queue",
		func() uint64 { return p.published.Load() })
	reg.CounterFunc("locheat_stream_dead_letters_total",
		"malformed events sent to the DLQ",
		func() uint64 { return p.deadLettered.Load() })
	reg.CounterFunc("locheat_stream_dlq_dropped_total",
		"dead letters lost to an undrained full DLQ",
		func() uint64 { return p.dlqDropped.Load() })
	reg.CounterFunc("locheat_stream_store_errors_total",
		"alert store append/flush failures",
		func() uint64 { return p.storeErrors.Load() })
	reg.CounterFunc("locheat_stream_alerts_total",
		"alerts raised by all detectors",
		func() uint64 {
			p.alertMu.Lock()
			defer p.alertMu.Unlock()
			return p.alertsTotal
		})
	reg.CounterFunc("locheat_stream_sub_dropped_total",
		"alerts a slow subscriber channel missed (non-blocking fan-out)",
		func() uint64 { return p.subDropped.Load() })
	reg.GaugeFunc("locheat_stream_dlq_depth",
		"dead-letter channel depth",
		func() float64 { return float64(len(p.dlq)) })
	p.detLat = reg.Histogram("locheat_detection_latency_seconds",
		"end-to-end detection latency: pipeline ingest stamp to alert append",
		obs.Seconds)
}

// registerShardObs exposes one shard's counters and queue depth,
// labelled by shard index.
func (p *Pipeline) registerShardObs(reg *obs.Registry, idx int, sh *shard) {
	if reg == nil {
		return
	}
	label := strconv.Itoa(idx)
	reg.CounterFunc("locheat_stream_processed_total",
		"events fully processed by the stage chain",
		func() uint64 { return sh.processed.Load() }, "shard", label)
	reg.CounterFunc("locheat_stream_dropped_total",
		"events dropped because the shard queue was full",
		func() uint64 { return sh.dropped.Load() }, "shard", label)
	reg.CounterFunc("locheat_stream_filtered_total",
		"events stopped mid-chain by a stage (dedupe replays etc.)",
		func() uint64 { return sh.filtered.Load() }, "shard", label)
	reg.CounterFunc("locheat_stream_evicted_total",
		"idle per-user state entries evicted",
		func() uint64 { return sh.evicted.Load() }, "shard", label)
	reg.GaugeFunc("locheat_stream_queue_depth",
		"events waiting in the shard queue",
		func() float64 { return float64(sh.ring.depth()) }, "shard", label)
}

// stageHistograms resolves one latency histogram per stage, labelled
// by stage name. Shards share handles (get-or-create on name+label),
// so the per-stage series aggregates across shards — cardinality is
// the stage count, not stages × shards.
func stageHistograms(reg *obs.Registry, stages []Stage) []*obs.Histogram {
	if reg == nil {
		return nil
	}
	hists := make([]*obs.Histogram, len(stages))
	for i, st := range stages {
		hists[i] = reg.Histogram("locheat_stream_stage_seconds",
			"per-event processing latency of one stage",
			obs.Seconds, "stage", st.Name())
	}
	return hists
}

// run is one shard worker: strictly sequential over its queue, which is
// what preserves per-user order. Each pass drains a run of queued
// events from the ring and hands it to the batch processor (batch.go),
// which also drives the eviction policy. Control closures jump the
// queue between runs; when the ring is empty the worker parks on the
// ring's wakeup and the ctl channel, and it exits once the ring is
// closed and fully drained — graceful shutdown flushes every queued
// event, however partial the final run.
func (p *Pipeline) run(sh *shard, stages []Stage, stageLat []*obs.Histogram) {
	defer p.wg.Done()
	spanNames := make([]string, len(stages))
	for i, st := range stages {
		spanNames[i] = "stage:" + st.Name()
	}
	w := &shardWorker{
		p:         p,
		sh:        sh,
		stages:    stages,
		batchers:  resolveBatchStages(stages),
		stageLat:  stageLat,
		timed:     len(stageLat) == len(stages) && len(stages) > 0,
		spanNames: spanNames,
		run:       make([]lbsn.CheckinEvent, 0, maxWorkerBatch),
	}
	for {
		select {
		case fn := <-sh.ctl:
			fn(stages)
			continue
		default:
		}
		w.run = sh.ring.pop(w.run[:0], maxWorkerBatch)
		if len(w.run) == 0 {
			if sh.ring.drained() {
				return
			}
			select {
			case fn := <-sh.ctl:
				fn(stages)
			case <-sh.ring.notify:
			}
			continue
		}
		w.process(w.run)
	}
}

// Publish offers one event to the pipeline. It never blocks: a full
// shard queue drops the event (counted), malformed events go to the
// dead-letter queue, and a closed pipeline refuses. Returns whether the
// event was enqueued for processing.
func (p *Pipeline) Publish(ev lbsn.CheckinEvent) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	if reason := malformed(ev); reason != "" {
		p.deadLettered.Add(1)
		select {
		case p.dlq <- DeadLetter{Event: ev, Reason: reason}:
		default:
			p.dlqDropped.Add(1)
		}
		if ev.Trace.Sampled() {
			now := time.Now().UnixNano()
			p.tracer.MarkDrop(ev.Trace, "dlq:"+reason, now)
			p.tracer.End(ev.Trace, now)
		}
		return false
	}
	ev.Seq = p.seq.Add(1)
	// Stamp the detection-latency start on first ingest. Forwarded
	// events arrive unstamped (the field never crosses the wire) and
	// get their stamp here, on the owner. Skipped entirely when obs
	// is off so the unobserved hot path never reads the wall clock.
	if p.detLat != nil && ev.IngestedAt.IsZero() {
		ev.IngestedAt = time.Now()
	}
	if tr := p.tracer; tr != nil {
		if !ev.Trace.Sampled() {
			ev.Trace = tr.Sample(!ev.Accepted)
		}
		if ev.Trace.Sampled() {
			if ev.IngestedAt.IsZero() {
				ev.IngestedAt = time.Now()
			}
			tr.Begin(ev.Trace, uint64(ev.UserID), uint64(ev.VenueID), ev.IngestedAt.UnixNano())
		}
	}
	idx := p.cfg.Partitioner(uint64(ev.UserID), len(p.shards))
	if idx < 0 || idx >= len(p.shards) {
		idx = int(uint64(ev.UserID) % uint64(len(p.shards)))
	}
	sh := p.shards[idx]
	// Count before enqueueing: the shard worker can process the event
	// (and bump its counter) before a post-push increment would land,
	// which would let a live Stats read show processed > published.
	p.published.Add(1)
	if sh.ring.push1(ev) {
		return true
	}
	p.published.Add(^uint64(0)) // undo: the event was never enqueued
	sh.dropped.Add(1)
	if ev.Trace.Sampled() {
		now := time.Now().UnixNano()
		p.tracer.MarkDrop(ev.Trace, "ring-full", now)
		p.tracer.End(ev.Trace, now)
	}
	return false
}

// malformed returns a non-empty reason when the event cannot be
// processed.
func malformed(ev lbsn.CheckinEvent) string {
	switch {
	case ev.UserID == 0:
		return "zero user id"
	case ev.VenueID == 0:
		return "zero venue id"
	case ev.At.IsZero():
		return "zero timestamp"
	case !ev.Venue.Valid():
		return "invalid venue coordinates"
	case !ev.Reported.Valid():
		// The rate-throttle escalation measures the reported position;
		// garbage coordinates would turn the distance-bounding verdict
		// into a silent false negative (NaN comparisons), so they are a
		// dead letter like any other malformed field.
		return "invalid reported coordinates"
	default:
		return ""
	}
}

// DeadLetters exposes the malformed-event channel. Draining is
// optional; an ignored full DLQ drops (counted), it never backs up the
// pipeline. The channel closes on Close.
func (p *Pipeline) DeadLetters() <-chan DeadLetter { return p.dlq }

// QueueSample reports the deepest shard ring and the shared per-shard
// capacity — the backpressure monitor's view of the pipeline. Max, not
// sum: one pinned shard saturates its users' detection latency even
// while the others idle, so the controller must react to the worst.
func (p *Pipeline) QueueSample() (depth, capacity int) {
	for _, sh := range p.shards {
		if d := sh.ring.depth(); d > depth {
			depth = d
		}
		if c := len(sh.ring.buf); c > capacity {
			capacity = c
		}
	}
	return depth, capacity
}

// DLQSample reports the dead-letter channel's occupancy for the
// backpressure monitor. A filling DLQ means malformed events are
// arriving faster than the drainer consumes them — overflow drops are
// counted, but sustained pressure here should engage shedding too.
func (p *Pipeline) DLQSample() (depth, capacity int) {
	return len(p.dlq), cap(p.dlq)
}

// Subscribe returns a channel that receives subsequent alerts. Delivery
// is best-effort and non-blocking: a slow subscriber misses alerts
// (counted in Stats.SubDropped) rather than slowing detection. The
// channel closes on Close.
func (p *Pipeline) Subscribe(buf int) <-chan Alert {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Alert, buf)
	p.alertMu.Lock()
	defer p.alertMu.Unlock()
	if p.subsClosed {
		close(ch)
		return ch
	}
	// Copy-on-write: the fan-out reads the list without alertMu, so
	// registration replaces the slice rather than appending in place.
	var next []chan Alert
	if cur := p.subsPtr.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, ch)
	p.subsPtr.Store(&next)
	return ch
}

func (p *Pipeline) noteFilteredN(stage string, n int) {
	p.alertMu.Lock()
	p.filteredBy[stage] += uint64(n)
	p.alertMu.Unlock()
}

func (p *Pipeline) noteEvicted(stage string, n int) {
	p.alertMu.Lock()
	p.evictedBy[stage] += uint64(n)
	p.alertMu.Unlock()
}

// AlertStore exposes the pipeline's alert sink.
func (p *Pipeline) AlertStore() store.AlertStore { return p.alerts }

// Alerts queries the alert store (newest first) and returns the page
// plus the total match count for pagination.
func (p *Pipeline) Alerts(q store.AlertQuery) ([]Alert, int) {
	return p.alerts.Query(q)
}

// RecentAlerts returns up to limit most-recent alerts, newest first
// (limit <= 0 means everything the store retains).
func (p *Pipeline) RecentAlerts(limit int) []Alert {
	page, _ := p.alerts.Query(store.AlertQuery{Limit: limit})
	return page
}

// ShardStats is one shard's counters.
type ShardStats struct {
	Shard     int    `json:"shard"`
	Queued    int    `json:"queued"`
	Processed uint64 `json:"processed"`
	Dropped   uint64 `json:"dropped"`
	Filtered  uint64 `json:"filtered"`
	Evicted   uint64 `json:"evicted"`
}

// Stats is a pipeline-wide counter snapshot.
type Stats struct {
	Shards       int    `json:"shards"`
	Published    uint64 `json:"published"`
	Processed    uint64 `json:"processed"`
	Dropped      uint64 `json:"dropped"`
	DeadLettered uint64 `json:"deadLettered"`
	// DLQQueued is the dead-letter channel's current depth; DLQDropped
	// counts dead letters lost to an undrained full channel.
	DLQQueued  int    `json:"dlqQueued"`
	DLQDropped uint64 `json:"dlqDropped"`
	// SubDropped counts alerts slow subscriber channels missed.
	SubDropped       uint64            `json:"subDropped"`
	Filtered         uint64            `json:"filtered"`
	Alerts           uint64            `json:"alerts"`
	StoreErrors      uint64            `json:"storeErrors"`
	Evicted          uint64            `json:"evicted"`
	AlertsByDetector map[string]uint64 `json:"alertsByDetector"`
	FilteredByStage  map[string]uint64 `json:"filteredByStage"`
	EvictedByStage   map[string]uint64 `json:"evictedByStage"`
	PerShard         []ShardStats      `json:"perShard"`
}

// Stats snapshots all counters. Safe to call concurrently with
// processing; per-shard numbers are individually atomic.
func (p *Pipeline) Stats() Stats {
	s := Stats{
		Shards:       len(p.shards),
		Published:    p.published.Load(),
		DeadLettered: p.deadLettered.Load(),
		DLQQueued:    len(p.dlq),
		DLQDropped:   p.dlqDropped.Load(),
		SubDropped:   p.subDropped.Load(),
		StoreErrors:  p.storeErrors.Load(),
	}
	for i, sh := range p.shards {
		st := ShardStats{
			Shard:     i,
			Queued:    sh.ring.depth(),
			Processed: sh.processed.Load(),
			Dropped:   sh.dropped.Load(),
			Filtered:  sh.filtered.Load(),
			Evicted:   sh.evicted.Load(),
		}
		s.Processed += st.Processed
		s.Dropped += st.Dropped
		s.Filtered += st.Filtered
		s.Evicted += st.Evicted
		s.PerShard = append(s.PerShard, st)
	}
	p.alertMu.Lock()
	s.Alerts = p.alertsTotal
	s.AlertsByDetector = make(map[string]uint64, len(p.byDetector))
	for k, v := range p.byDetector {
		s.AlertsByDetector[k] = v
	}
	s.FilteredByStage = make(map[string]uint64, len(p.filteredBy))
	for k, v := range p.filteredBy {
		s.FilteredByStage[k] = v
	}
	s.EvictedByStage = make(map[string]uint64, len(p.evictedBy))
	for k, v := range p.evictedBy {
		s.EvictedByStage[k] = v
	}
	p.alertMu.Unlock()
	return s
}

// trackers lists the per-shard window trackers for merging.
func (p *Pipeline) trackers() []*windowTracker {
	ts := make([]*windowTracker, len(p.shards))
	for i, sh := range p.shards {
		ts[i] = sh.windows
	}
	return ts
}

// Windows returns the retained tumbling windows merged across shards,
// oldest first.
func (p *Pipeline) Windows() []WindowStats {
	return sortedWindows(mergeWindows(p.trackers()))
}

// Rates aggregates completed windows (strictly before the clock's
// current window) into check-ins/sec and per-detector alert rates.
func (p *Pipeline) Rates() Rates {
	return computeRates(mergeWindows(p.trackers()), p.clock.Now(), p.cfg.StatsWindow)
}

// withStages runs fn inside every shard's worker goroutine (the only
// context allowed to touch stage state) and waits for all of them.
// Returns false without running anything when the pipeline is closed.
func (p *Pipeline) withStages(fn func(shardIdx int, stages []Stage)) bool {
	// Holding the read lock for the whole exchange keeps Close (write
	// lock) from shutting the workers down between our closed check and
	// the ctl sends, so every send is guaranteed a live receiver.
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	var wg sync.WaitGroup
	for i, sh := range p.shards {
		i := i
		wg.Add(1)
		sh.ctl <- func(stages []Stage) {
			defer wg.Done()
			fn(i, stages)
		}
	}
	wg.Wait()
	return true
}

// ExportUserStates extracts (removes and returns) the per-stage state
// of every user for whom leaving reports true, keyed user → stage name
// → opaque blob. This is the departing half of a cluster shard handoff:
// the caller ships the result to the user's new owner, which feeds it
// to ImportUserStates. A user always lives on exactly one shard, so the
// per-shard results never conflict. Returns nil after Close.
func (p *Pipeline) ExportUserStates(leaving func(user uint64) bool) map[uint64]map[string][]byte {
	out := make(map[uint64]map[string][]byte)
	var mu sync.Mutex
	ok := p.withStages(func(_ int, stages []Stage) {
		for _, st := range stages {
			porter, isPorter := st.(UserStatePorter)
			if !isPorter {
				continue
			}
			exported := porter.ExportUserState(leaving)
			if len(exported) == 0 {
				continue
			}
			mu.Lock()
			for user, blob := range exported {
				m := out[user]
				if m == nil {
					m = make(map[string][]byte)
					out[user] = m
				}
				m[st.Name()] = blob
			}
			mu.Unlock()
		}
	})
	if !ok {
		return nil
	}
	return out
}

// ImportUserStates installs state exported by another pipeline's
// ExportUserStates, routing each user to its shard via the partitioner.
// Stages that already hold state for a user keep it (local state is
// newer than the handoff). Returns how many users were delivered to a
// shard worker; unknown stage names are skipped.
func (p *Pipeline) ImportUserStates(states map[uint64]map[string][]byte) int {
	if len(states) == 0 {
		return 0
	}
	byShard := make(map[int]map[uint64]map[string][]byte)
	for user, m := range states {
		idx := p.cfg.Partitioner(user, len(p.shards))
		if idx < 0 || idx >= len(p.shards) {
			idx = int(user % uint64(len(p.shards)))
		}
		if byShard[idx] == nil {
			byShard[idx] = make(map[uint64]map[string][]byte)
		}
		byShard[idx][user] = m
	}
	imported := 0
	var mu sync.Mutex
	p.withStages(func(shardIdx int, stages []Stage) {
		mine := byShard[shardIdx]
		if len(mine) == 0 {
			return
		}
		byName := make(map[string]UserStatePorter, len(stages))
		for _, st := range stages {
			if porter, isPorter := st.(UserStatePorter); isPorter {
				byName[st.Name()] = porter
			}
		}
		n := 0
		for user, m := range mine {
			delivered := false
			for stageName, blob := range m {
				porter, known := byName[stageName]
				if !known {
					continue
				}
				if err := porter.ImportUserState(user, blob); err == nil {
					delivered = true
				}
			}
			if delivered {
				n++
			}
		}
		mu.Lock()
		imported += n
		mu.Unlock()
	})
	return imported
}

// Close stops intake, drains every queued event through the stages,
// flushes the alert store, then closes the dead-letter and subscriber
// channels. The store itself is NOT closed — it may outlive the
// pipeline (a journal is closed by whoever opened it). Idempotent.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, sh := range p.shards {
		sh.ring.close()
	}
	p.mu.Unlock()

	p.wg.Wait()
	if err := p.alerts.Flush(); err != nil {
		p.storeErrors.Add(1)
	}
	close(p.dlq)
	p.alertMu.Lock()
	p.subsClosed = true
	subs := p.subsPtr.Swap(nil)
	p.alertMu.Unlock()
	if subs != nil {
		for _, ch := range *subs {
			close(ch)
		}
	}
}
