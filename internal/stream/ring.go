package stream

import (
	"sync"
	"sync/atomic"

	"locheat/internal/lbsn"
)

// eventRing is a shard's bounded input queue: a power-of-two ring of
// events with a lock-free consumer side, replacing the per-shard
// channel. A channel send costs a lock handoff and often a scheduler
// wakeup per event; the ring amortizes both across a batch — producers
// publish a whole run of events under one (producer-side) lock and one
// wakeup, and the shard worker drains every queued event with two
// atomic loads and one store.
//
// Concurrency contract: exactly one consumer (the shard worker) calls
// pop. The producer side is the partitioner — Publish/PublishBatch
// callers — serialized by mu so the ring behaves as SPSC; the consumer
// never takes that lock. Slot payloads are synchronized purely by the
// acquire/release pairing on head and tail: producers fill slots
// before publishing tail, the consumer copies slots out before
// publishing head, so neither side ever reads a slot the other is
// still writing.
type eventRing struct {
	buf  []lbsn.CheckinEvent
	mask uint64

	// head is the consumer cursor, tail the producer cursor; queued
	// events are [head, tail).
	head atomic.Uint64
	tail atomic.Uint64

	// mu serializes producers. The consumer never acquires it, so a
	// stalled worker cannot block Publish (the ring just fills and
	// drops, same as the channel it replaces).
	mu sync.Mutex

	// notify wakes the consumer from its empty-queue park. Capacity 1:
	// a pending wakeup is never lost, and redundant wakeups collapse
	// into the buffered token instead of piling up.
	notify chan struct{}

	closed atomic.Bool
}

func newEventRing(capacity int) *eventRing {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &eventRing{
		buf:    make([]lbsn.CheckinEvent, size),
		mask:   uint64(size - 1),
		notify: make(chan struct{}, 1),
	}
}

// push offers evs in order and returns how many were accepted before
// the ring filled; the caller drops (and counts) the refused tail.
func (r *eventRing) push(evs []lbsn.CheckinEvent) int {
	r.mu.Lock()
	if r.closed.Load() {
		r.mu.Unlock()
		return 0
	}
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.head.Load())
	n := len(evs)
	if uint64(n) > free {
		n = int(free)
	}
	for i := 0; i < n; i++ {
		r.buf[(tail+uint64(i))&r.mask] = evs[i]
	}
	r.tail.Store(tail + uint64(n))
	r.mu.Unlock()
	if n > 0 {
		r.wake()
	}
	return n
}

// push1 is push for a single event — the unbatched Publish path keeps
// its exact accept/drop semantics without building a slice.
func (r *eventRing) push1(ev lbsn.CheckinEvent) bool {
	r.mu.Lock()
	if r.closed.Load() {
		r.mu.Unlock()
		return false
	}
	tail := r.tail.Load()
	if tail-r.head.Load() == uint64(len(r.buf)) {
		r.mu.Unlock()
		return false
	}
	r.buf[tail&r.mask] = ev
	r.tail.Store(tail + 1)
	r.mu.Unlock()
	r.wake()
	return true
}

func (r *eventRing) wake() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// pop appends up to max queued events to dst and advances the consumer
// cursor. Consumer-only.
func (r *eventRing) pop(dst []lbsn.CheckinEvent, max int) []lbsn.CheckinEvent {
	head := r.head.Load()
	n := r.tail.Load() - head
	if n == 0 {
		return dst
	}
	if n > uint64(max) {
		n = uint64(max)
	}
	for i := uint64(0); i < n; i++ {
		dst = append(dst, r.buf[(head+i)&r.mask])
	}
	r.head.Store(head + n)
	return dst
}

// depth is the queued-event count; safe from any goroutine (it powers
// the queue-depth gauge and ShardStats.Queued).
func (r *eventRing) depth() int {
	return int(r.tail.Load() - r.head.Load())
}

// close refuses further pushes and wakes the consumer so it can drain
// what is queued and exit. Producers are additionally gated by
// Pipeline.closed; the flag here is a backstop.
func (r *eventRing) close() {
	r.closed.Store(true)
	r.wake()
}

// drained reports closed-and-empty: the consumer's exit condition.
func (r *eventRing) drained() bool {
	return r.closed.Load() && r.depth() == 0
}
