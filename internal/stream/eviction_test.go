package stream

import (
	"testing"
	"time"

	"locheat/internal/cheatercode"
	"locheat/internal/defense"
	"locheat/internal/simclock"
	"locheat/internal/store"
)

// --- stage-level eviction ---------------------------------------------

func TestStageEvictIdle(t *testing.T) {
	t0 := simclock.Epoch()
	cutoff := t0.Add(30 * time.Minute)

	t.Run("speed", func(t *testing.T) {
		st := NewSpeedStage(15, time.Hour)
		st.Process(event(1, 1, t0, testVenueLoc))
		st.Process(event(2, 1, t0.Add(time.Hour), testVenueLoc))
		if n := st.EvictIdle(cutoff); n != 1 {
			t.Fatalf("evicted %d, want 1", n)
		}
		if len(st.last) != 1 {
			t.Fatalf("%d users retained, want the active one", len(st.last))
		}
		if _, ok := st.last[2]; !ok {
			t.Fatal("active user evicted")
		}
	})

	t.Run("rate-throttle", func(t *testing.T) {
		st := NewRateThrottleStage(100, time.Hour, defense.RapidBitConfig{})
		st.Process(event(1, 1, t0, testVenueLoc))
		st.Process(event(2, 1, t0.Add(time.Hour), testVenueLoc))
		if n := st.EvictIdle(cutoff); n != 1 {
			t.Fatalf("evicted %d, want 1", n)
		}
		if _, ok := st.recent[2]; !ok || len(st.recent) != 1 {
			t.Fatalf("retained set wrong: %v", st.recent)
		}
	})
}

func TestDedupeEvictIdle(t *testing.T) {
	t0 := simclock.Epoch()
	st := NewDedupeStage(24 * time.Hour) // TTL longer than the eviction cutoff
	st.Process(event(1, 1, t0, testVenueLoc))
	st.Process(event(2, 1, t0.Add(time.Hour), testVenueLoc))
	if n := st.EvictIdle(t0.Add(30 * time.Minute)); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if len(st.seen) != 1 {
		t.Fatalf("%d keys retained, want 1", len(st.seen))
	}
}

func TestCheaterCodeEvictIdle(t *testing.T) {
	t0 := simclock.Epoch()
	st := NewCheaterCodeStage(cheatercode.DefaultConfig())
	st.Process(event(1, 1, t0, testVenueLoc))
	st.Process(event(2, 2, t0.Add(2*time.Hour), testVenueLoc))
	if n := st.EvictIdle(t0.Add(time.Hour)); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if st.det.TrackedUsers() != 1 {
		t.Fatalf("detector tracks %d users, want 1", st.det.TrackedUsers())
	}
}

// --- pipeline-level eviction ------------------------------------------

// TestPipelineEvictionBoundsState drives many one-shot users through
// the pipeline followed by a long quiet stretch from a single active
// user, and verifies the sweep dropped the idle users from every
// stateful stage — the memory bound the ROADMAP asked for.
func TestPipelineEvictionBoundsState(t *testing.T) {
	t0 := simclock.Epoch()
	var speed *SpeedStage
	var throttle *RateThrottleStage
	var cheater *CheaterCodeStage
	cfg := DetectConfig{}.withDefaults()
	p := New(Config{
		Shards: 1,
		Clock:  simclock.NewSimulated(t0),
		Evict:  EvictionPolicy{IdleAfter: time.Hour, SweepEvery: 10 * time.Minute},
		Stages: func(int) []Stage {
			speed = NewSpeedStage(cfg.SpeedMaxMetersPerSecond, cfg.SpeedWindow)
			throttle = NewRateThrottleStage(cfg.RateMaxPerWindow, cfg.RateWindow, cfg.Challenge)
			cheater = NewCheaterCodeStage(cfg.Cheater)
			return []Stage{NewDedupeStage(cfg.DedupeTTL), speed, throttle, cheater}
		},
	})

	// 500 users check in once within the first minute...
	for i := uint64(1); i <= 500; i++ {
		if !p.Publish(event(i, i%32+1, t0.Add(time.Duration(i)*100*time.Millisecond), testVenueLoc)) {
			t.Fatal("publish refused")
		}
	}
	// ...then user 999 alone keeps the stream alive for 3 hours of
	// event time, carrying the shard past several sweep intervals.
	for m := 1; m <= 180; m += 5 {
		at := t0.Add(time.Duration(m) * time.Minute)
		if !p.Publish(event(999, uint64(m%32+1), at, testVenueLoc)) {
			t.Fatal("publish refused")
		}
	}
	p.Close()

	if got := len(speed.last); got != 1 {
		t.Fatalf("speed stage retains %d users, want 1 (the active one)", got)
	}
	if got := len(throttle.recent); got != 1 {
		t.Fatalf("rate-throttle retains %d users, want 1", got)
	}
	if got := cheater.det.TrackedUsers(); got != 1 {
		t.Fatalf("cheater-code retains %d users, want 1", got)
	}
	st := p.Stats()
	if st.Evicted == 0 {
		t.Fatal("pipeline counted no evictions")
	}
	if st.EvictedByStage[StageSpeed] == 0 || st.EvictedByStage[StageCheaterCode] == 0 {
		t.Fatalf("per-stage eviction counters missing: %+v", st.EvictedByStage)
	}
	var perShard uint64
	for _, sh := range st.PerShard {
		perShard += sh.Evicted
	}
	if perShard != st.Evicted {
		t.Fatalf("shard eviction counters (%d) disagree with total (%d)", perShard, st.Evicted)
	}
}

// TestPipelineJournalSink verifies the pipeline's alert path through a
// durable store: alerts land in the journal, survive a pipeline+journal
// restart, and the reopened store serves them to a fresh pipeline.
func TestPipelineJournalSink(t *testing.T) {
	dir := t.TempDir()
	t0 := simclock.Epoch()
	j, err := store.OpenAlertJournal(store.JournalConfig{Dir: dir, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Shards: 1, Clock: simclock.NewSimulated(t0), Store: j})
	// Lincoln -> San Francisco teleport: a guaranteed speed alert.
	p.Publish(event(7, 1, t0, testVenueLoc))
	p.Publish(event(7, 2, t0.Add(10*time.Minute), farVenueLoc))
	p.Close()
	if st := p.Stats(); st.StoreErrors != 0 {
		t.Fatalf("store errors: %d", st.StoreErrors)
	}
	if page, total := j.Query(store.AlertQuery{}); total == 0 || page[0].UserID != 7 {
		t.Fatalf("journal missing the alert: total %d", total)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a new pipeline over the reopened journal serves the
	// pre-restart alert.
	j2, err := store.OpenAlertJournal(store.JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	p2 := New(Config{Shards: 1, Clock: simclock.NewSimulated(t0), Store: j2})
	defer p2.Close()
	alerts, total := p2.Alerts(store.AlertQuery{Detector: StageSpeed})
	if total != 1 || alerts[0].UserID != 7 {
		t.Fatalf("restarted pipeline lost history: total %d %+v", total, alerts)
	}
}
