// Batched hot path. The per-event pipeline surface (Publish, one
// Stage.Process per event) still works unchanged, but every layer now
// has a batch fast path so a burst of N events costs one ring push,
// one clock read per stage, and one framed journal write instead of N
// of each:
//
//   - callers build []lbsn.CheckinEvent batches from a sync.Pool
//     (GetEventBatch/PutEventBatch) and hand them to PublishBatch,
//     which partitions the whole batch and pushes one run per shard
//     ring;
//   - the shard worker drains its ring in runs (up to maxWorkerBatch)
//     and walks the stage chain stage-major: stages implementing
//     BatchStage process the run in one call, others fall back to
//     per-event Process — existing stages keep working unmodified;
//   - alerts raised by a run are appended through the store's
//     AppendBatch (one framed write) when available.
//
// Pool ownership rule: a batch belongs to exactly one side at a time.
// PublishBatch copies events out of the caller's slice synchronously,
// so the caller may PutEventBatch (or reuse) it the moment the call
// returns; nothing downstream retains a reference.
package stream

import (
	"sync"
	"time"

	"locheat/internal/lbsn"
	"locheat/internal/obs"
	"locheat/internal/store"
)

// maxWorkerBatch caps how many queued events one ring drain hands to
// the stage chain, bounding worker-local scratch and how long the ctl
// channel waits behind a backlog.
const maxWorkerBatch = 256

// EventBatch is a pooled, reusable event slice for batched publishing.
// Get one, append to Events, pass Events to PublishBatch, put it back.
type EventBatch struct {
	Events []lbsn.CheckinEvent
}

var eventBatchPool = sync.Pool{
	New: func() any { return &EventBatch{Events: make([]lbsn.CheckinEvent, 0, 512)} },
}

// GetEventBatch takes a cleared batch from the pool.
func GetEventBatch() *EventBatch { return eventBatchPool.Get().(*EventBatch) }

// PutEventBatch clears and returns a batch to the pool. The caller
// must not touch the batch afterwards. Oversized backing arrays are
// dropped so one pathological burst does not pin memory forever.
func PutEventBatch(b *EventBatch) {
	if b == nil || cap(b.Events) > 1<<16 {
		return
	}
	b.Events = b.Events[:0]
	eventBatchPool.Put(b)
}

// BatchStage is the optional Stage fast path. ProcessBatch must be
// behaviorally identical to calling Process once per event in order:
// the same alerts (byte for byte) appended to alerts, and the kept
// events — those Process would have returned keep=true for — compacted
// in place (the returned slice reuses events' backing array, order
// preserved). Stages without it are driven per event by the worker.
type BatchStage interface {
	Stage
	ProcessBatch(events []lbsn.CheckinEvent, alerts []Alert) ([]lbsn.CheckinEvent, []Alert)
}

// resolveBatchStages snapshots which stages take the fast path; the
// stage chain is fixed at New so this is computed once per worker.
func resolveBatchStages(stages []Stage) []BatchStage {
	out := make([]BatchStage, len(stages))
	for i, st := range stages {
		if bs, ok := st.(BatchStage); ok {
			out[i] = bs
		}
	}
	return out
}

// PublishBatch offers a batch of events to the pipeline, partitioning
// them into per-shard runs pushed in one ring operation each. It never
// blocks and returns how many events were enqueued. Per-event outcomes
// match Publish exactly: malformed events dead-letter, a full shard
// ring drops the run's tail, a closed pipeline refuses everything.
// reject, when non-nil, is called with the index (into events) of
// every event NOT enqueued, so callers tracking per-event delivery
// (the cluster ingest dedupe) stay exact. The events slice is copied
// from synchronously and may be reused when the call returns.
func (p *Pipeline) PublishBatch(events []lbsn.CheckinEvent, reject func(i int)) int {
	if len(events) == 0 {
		return 0
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		if reject != nil {
			for i := range events {
				reject(i)
			}
		}
		return 0
	}
	sc := p.getScatter()
	stamp := p.detLat != nil
	var now time.Time
	if stamp {
		now = time.Now()
	}
	for i := range events {
		ev := events[i]
		if reason := malformed(ev); reason != "" {
			p.deadLettered.Add(1)
			select {
			case p.dlq <- DeadLetter{Event: ev, Reason: reason}:
			default:
				p.dlqDropped.Add(1)
			}
			if reject != nil {
				reject(i)
			}
			continue
		}
		ev.Seq = p.seq.Add(1)
		if stamp && ev.IngestedAt.IsZero() {
			ev.IngestedAt = now
		}
		idx := p.cfg.Partitioner(uint64(ev.UserID), len(p.shards))
		if idx < 0 || idx >= len(p.shards) {
			idx = int(uint64(ev.UserID) % uint64(len(p.shards)))
		}
		sc.byShard[idx] = append(sc.byShard[idx], ev)
		sc.srcIdx[idx] = append(sc.srcIdx[idx], int32(i))
	}
	enq := 0
	for si, run := range sc.byShard {
		if len(run) == 0 {
			continue
		}
		sh := p.shards[si]
		// Count before pushing (same as Publish): the worker may process
		// and count an event before a post-push increment would land.
		p.published.Add(uint64(len(run)))
		n := sh.ring.push(run)
		enq += n
		if short := len(run) - n; short > 0 {
			p.published.Add(^uint64(short) + 1) // undo the refused tail
			sh.dropped.Add(uint64(short))
			if reject != nil {
				for _, src := range sc.srcIdx[si][n:] {
					reject(int(src))
				}
			}
		}
	}
	p.putScatter(sc)
	return enq
}

// scatterState is the pooled per-PublishBatch partition scratch: one
// run (plus source indexes for reject reporting) per shard.
type scatterState struct {
	byShard [][]lbsn.CheckinEvent
	srcIdx  [][]int32
}

func (p *Pipeline) getScatter() *scatterState {
	if v := p.scatterPool.Get(); v != nil {
		return v.(*scatterState)
	}
	return &scatterState{
		byShard: make([][]lbsn.CheckinEvent, len(p.shards)),
		srcIdx:  make([][]int32, len(p.shards)),
	}
}

func (p *Pipeline) putScatter(sc *scatterState) {
	for i := range sc.byShard {
		sc.byShard[i] = sc.byShard[i][:0]
		sc.srcIdx[i] = sc.srcIdx[i][:0]
	}
	p.scatterPool.Put(sc)
}

// shardWorker is one shard's processing state: reusable run/alert
// scratch plus the eviction clock, so the steady-state loop allocates
// nothing.
type shardWorker struct {
	p        *Pipeline
	sh       *shard
	stages   []Stage
	batchers []BatchStage
	stageLat []*obs.Histogram
	timed    bool

	run       []lbsn.CheckinEvent
	alerts    []Alert
	latest    time.Time
	lastSweep time.Time
}

// process walks one drained run through the stage chain, stage-major:
// stage i sees every event still alive after stage i-1, in order.
// Stages hold no shared state, so this is observably identical to the
// old event-major loop except that per-stage latency is now observed
// once per run (the whole point: one clock read per stage, not per
// event) and alerts land in the store as one batch.
func (w *shardWorker) process(events []lbsn.CheckinEvent) {
	sh, p := w.sh, w.p
	for i := range events {
		sh.windows.observe(events[i].At)
		if events[i].At.After(w.latest) {
			w.latest = events[i].At
		}
	}
	evs := events
	alerts := w.alerts[:0]
	var stageStart time.Time
	if w.timed {
		stageStart = time.Now()
	}
	for si, st := range w.stages {
		before := len(evs)
		if bs := w.batchers[si]; bs != nil {
			evs, alerts = bs.ProcessBatch(evs, alerts)
		} else {
			kept := evs[:0]
			for _, ev := range evs {
				as, keep := st.Process(ev)
				alerts = append(alerts, as...)
				if keep {
					kept = append(kept, ev)
				}
			}
			evs = kept
		}
		if w.timed {
			now := time.Now()
			w.stageLat[si].ObserveDuration(now.Sub(stageStart))
			stageStart = now
		}
		if f := before - len(evs); f > 0 {
			sh.filtered.Add(uint64(f))
			p.noteFilteredN(st.Name(), f)
		}
		if len(evs) == 0 {
			break
		}
	}
	sh.processed.Add(uint64(len(events)))
	if len(alerts) > 0 {
		// The stage-major walk groups alerts by stage; consumers (store
		// order, subscribers) expect the event-major order the per-event
		// loop produced. A stable sort by Seq restores it exactly: same
		// event's alerts are already in stage order, and stability keeps
		// them that way. Insertion sort: runs are small, alerts rare,
		// and it allocates nothing.
		for i := 1; i < len(alerts); i++ {
			for j := i; j > 0 && alerts[j].Seq < alerts[j-1].Seq; j-- {
				alerts[j], alerts[j-1] = alerts[j-1], alerts[j]
			}
		}
		for i := range alerts {
			sh.windows.alert(alerts[i].At, alerts[i].Detector)
		}
		p.recordAlerts(alerts, events)
	}
	w.alerts = alerts[:0] // keep the grown capacity for the next run
	if w.latest.Sub(w.lastSweep) >= p.cfg.Evict.SweepEvery {
		w.lastSweep = w.latest
		cutoff := w.latest.Add(-p.cfg.Evict.IdleAfter)
		for _, st := range w.stages {
			evictor, ok := st.(UserStateEvictor)
			if !ok {
				continue
			}
			if n := evictor.EvictIdle(cutoff); n > 0 {
				sh.evicted.Add(uint64(n))
				p.noteEvicted(st.Name(), n)
			}
		}
	}
}

// batchAlertAppender is the store fast path: persist a run's alerts in
// one framed write. store.AlertJournal implements it.
type batchAlertAppender interface {
	AppendBatch(alerts []store.Alert) (int, error)
}

// recordAlerts is recordAlert for a run's worth of alerts: one store
// batch append, one counter-lock acquisition, one subscriber snapshot.
// The alerts slice is worker scratch — everything downstream copies.
func (p *Pipeline) recordAlerts(alerts []Alert, events []lbsn.CheckinEvent) {
	if ba, ok := p.alerts.(batchAlertAppender); ok {
		if _, err := ba.AppendBatch(alerts); err != nil {
			p.storeErrors.Add(1)
		}
	} else {
		for i := range alerts {
			if err := p.alerts.Append(alerts[i]); err != nil {
				p.storeErrors.Add(1)
			}
		}
	}
	if p.detLat != nil {
		// Alert → originating event by Seq for the ingest stamp. Alerts
		// are rare relative to events; the linear scan beats building a
		// map on every run.
		for i := range alerts {
			for j := range events {
				if events[j].Seq == alerts[i].Seq {
					p.detLat.ObserveSince(events[j].IngestedAt)
					break
				}
			}
		}
	}
	p.alertMu.Lock()
	p.alertsTotal += uint64(len(alerts))
	for i := range alerts {
		p.byDetector[alerts[i].Detector]++
	}
	p.alertMu.Unlock()
	p.fanOut(alerts)
}

// fanOut delivers alerts to subscribers from a lock-free snapshot.
// Delivery is non-blocking: a slow subscriber loses the alert (counted
// in subDropped) rather than slowing detection or holding alertMu
// across N sends.
func (p *Pipeline) fanOut(alerts []Alert) {
	subs := p.subsPtr.Load()
	if subs == nil || len(*subs) == 0 {
		return
	}
	for _, ch := range *subs {
		for i := range alerts {
			select {
			case ch <- alerts[i]:
			default:
				p.subDropped.Add(1)
			}
		}
	}
}
