// Batched hot path. The per-event pipeline surface (Publish, one
// Stage.Process per event) still works unchanged, but every layer now
// has a batch fast path so a burst of N events costs one ring push,
// one clock read per stage, and one framed journal write instead of N
// of each:
//
//   - callers build []lbsn.CheckinEvent batches from a sync.Pool
//     (GetEventBatch/PutEventBatch) and hand them to PublishBatch,
//     which partitions the whole batch and pushes one run per shard
//     ring;
//   - the shard worker drains its ring in runs (up to maxWorkerBatch)
//     and walks the stage chain stage-major: stages implementing
//     BatchStage process the run in one call, others fall back to
//     per-event Process — existing stages keep working unmodified;
//   - alerts raised by a run are appended through the store's
//     AppendBatch (one framed write) when available.
//
// Pool ownership rule: a batch belongs to exactly one side at a time.
// PublishBatch copies events out of the caller's slice synchronously,
// so the caller may PutEventBatch (or reuse) it the moment the call
// returns; nothing downstream retains a reference.
package stream

import (
	"sync"
	"time"

	"locheat/internal/lbsn"
	"locheat/internal/obs"
	"locheat/internal/store"
	"locheat/internal/trace"
)

// maxWorkerBatch caps how many queued events one ring drain hands to
// the stage chain, bounding worker-local scratch and how long the ctl
// channel waits behind a backlog.
const maxWorkerBatch = 256

// EventBatch is a pooled, reusable event slice for batched publishing.
// Get one, append to Events, pass Events to PublishBatch, put it back.
type EventBatch struct {
	Events []lbsn.CheckinEvent
}

var eventBatchPool = sync.Pool{
	New: func() any { return &EventBatch{Events: make([]lbsn.CheckinEvent, 0, 512)} },
}

// GetEventBatch takes a cleared batch from the pool.
func GetEventBatch() *EventBatch { return eventBatchPool.Get().(*EventBatch) }

// PutEventBatch clears and returns a batch to the pool. The caller
// must not touch the batch afterwards. Oversized backing arrays are
// dropped so one pathological burst does not pin memory forever.
func PutEventBatch(b *EventBatch) {
	if b == nil || cap(b.Events) > 1<<16 {
		return
	}
	b.Events = b.Events[:0]
	eventBatchPool.Put(b)
}

// BatchStage is the optional Stage fast path. ProcessBatch must be
// behaviorally identical to calling Process once per event in order:
// the same alerts (byte for byte) appended to alerts, and the kept
// events — those Process would have returned keep=true for — compacted
// in place (the returned slice reuses events' backing array, order
// preserved). Stages without it are driven per event by the worker.
type BatchStage interface {
	Stage
	ProcessBatch(events []lbsn.CheckinEvent, alerts []Alert) ([]lbsn.CheckinEvent, []Alert)
}

// resolveBatchStages snapshots which stages take the fast path; the
// stage chain is fixed at New so this is computed once per worker.
func resolveBatchStages(stages []Stage) []BatchStage {
	out := make([]BatchStage, len(stages))
	for i, st := range stages {
		if bs, ok := st.(BatchStage); ok {
			out[i] = bs
		}
	}
	return out
}

// PublishBatch offers a batch of events to the pipeline, partitioning
// them into per-shard runs pushed in one ring operation each. It never
// blocks and returns how many events were enqueued. Per-event outcomes
// match Publish exactly: malformed events dead-letter, a full shard
// ring drops the run's tail, a closed pipeline refuses everything.
// reject, when non-nil, is called with the index (into events) of
// every event NOT enqueued, so callers tracking per-event delivery
// (the cluster ingest dedupe) stay exact. The events slice is copied
// from synchronously and may be reused when the call returns.
func (p *Pipeline) PublishBatch(events []lbsn.CheckinEvent, reject func(i int)) int {
	if len(events) == 0 {
		return 0
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		if reject != nil {
			for i := range events {
				reject(i)
			}
		}
		return 0
	}
	sc := p.getScatter()
	tr := p.tracer
	stamp := p.detLat != nil || tr != nil
	var now time.Time
	if stamp {
		now = time.Now()
	}
	for i := range events {
		ev := events[i]
		if reason := malformed(ev); reason != "" {
			p.deadLettered.Add(1)
			select {
			case p.dlq <- DeadLetter{Event: ev, Reason: reason}:
			default:
				p.dlqDropped.Add(1)
			}
			if ev.Trace.Sampled() {
				tr.MarkDrop(ev.Trace, "dlq:"+reason, now.UnixNano())
				tr.End(ev.Trace, now.UnixNano())
			}
			if reject != nil {
				reject(i)
			}
			continue
		}
		ev.Seq = p.seq.Add(1)
		if stamp && ev.IngestedAt.IsZero() {
			ev.IngestedAt = now
		}
		if tr != nil {
			if !ev.Trace.Sampled() {
				ev.Trace = tr.Sample(!ev.Accepted)
			}
			if ev.Trace.Sampled() {
				tr.Begin(ev.Trace, uint64(ev.UserID), uint64(ev.VenueID), ev.IngestedAt.UnixNano())
			}
		}
		idx := p.cfg.Partitioner(uint64(ev.UserID), len(p.shards))
		if idx < 0 || idx >= len(p.shards) {
			idx = int(uint64(ev.UserID) % uint64(len(p.shards)))
		}
		sc.byShard[idx] = append(sc.byShard[idx], ev)
		sc.srcIdx[idx] = append(sc.srcIdx[idx], int32(i))
	}
	enq := 0
	for si, run := range sc.byShard {
		if len(run) == 0 {
			continue
		}
		sh := p.shards[si]
		// Count before pushing (same as Publish): the worker may process
		// and count an event before a post-push increment would land.
		p.published.Add(uint64(len(run)))
		n := sh.ring.push(run)
		enq += n
		if short := len(run) - n; short > 0 {
			p.published.Add(^uint64(short) + 1) // undo the refused tail
			sh.dropped.Add(uint64(short))
			if reject != nil {
				for _, src := range sc.srcIdx[si][n:] {
					reject(int(src))
				}
			}
			for k := n; k < len(run); k++ {
				if run[k].Trace.Sampled() {
					nowN := time.Now().UnixNano()
					tr.MarkDrop(run[k].Trace, "ring-full", nowN)
					tr.End(run[k].Trace, nowN)
				}
			}
		}
	}
	p.putScatter(sc)
	return enq
}

// scatterState is the pooled per-PublishBatch partition scratch: one
// run (plus source indexes for reject reporting) per shard.
type scatterState struct {
	byShard [][]lbsn.CheckinEvent
	srcIdx  [][]int32
}

func (p *Pipeline) getScatter() *scatterState {
	if v := p.scatterPool.Get(); v != nil {
		return v.(*scatterState)
	}
	return &scatterState{
		byShard: make([][]lbsn.CheckinEvent, len(p.shards)),
		srcIdx:  make([][]int32, len(p.shards)),
	}
}

func (p *Pipeline) putScatter(sc *scatterState) {
	for i := range sc.byShard {
		sc.byShard[i] = sc.byShard[i][:0]
		sc.srcIdx[i] = sc.srcIdx[i][:0]
	}
	p.scatterPool.Put(sc)
}

// shardWorker is one shard's processing state: reusable run/alert
// scratch plus the eviction clock, so the steady-state loop allocates
// nothing.
type shardWorker struct {
	p        *Pipeline
	sh       *shard
	stages   []Stage
	batchers []BatchStage
	stageLat []*obs.Histogram
	timed    bool
	// spanNames precomputes "stage:<name>" so traced runs never build
	// span names on the fly.
	spanNames []string

	run       []lbsn.CheckinEvent
	alerts    []Alert
	latest    time.Time
	lastSweep time.Time
	// tall/tctx are the traced-event scratch: every sampled context in
	// the current run, and the subset still alive after each stage.
	// Empty (and untouched) for the untraced majority of runs.
	tall []trace.Context
	tctx []trace.Context
}

// process walks one drained run through the stage chain, stage-major:
// stage i sees every event still alive after stage i-1, in order.
// Stages hold no shared state, so this is observably identical to the
// old event-major loop except that per-stage latency is now observed
// once per run (the whole point: one clock read per stage, not per
// event) and alerts land in the store as one batch.
func (w *shardWorker) process(events []lbsn.CheckinEvent) {
	sh, p := w.sh, w.p
	for i := range events {
		sh.windows.observe(events[i].At)
		if events[i].At.After(w.latest) {
			w.latest = events[i].At
		}
	}
	// Traced runs take a slow lane: ring-wait spans on entry, a span
	// per stage, drop marks for filtered events. One flags scan per
	// run is the entire cost when nothing is sampled.
	tr := p.tracer
	traced := false
	if tr != nil {
		for i := range events {
			if events[i].Trace.Sampled() {
				traced = true
				break
			}
		}
	}
	if traced {
		nowN := time.Now().UnixNano()
		w.tall = w.tall[:0]
		for i := range events {
			ev := &events[i]
			if !ev.Trace.Sampled() {
				continue
			}
			w.tall = append(w.tall, ev.Trace)
			start := nowN
			if !ev.IngestedAt.IsZero() {
				start = ev.IngestedAt.UnixNano()
			}
			tr.Begin(ev.Trace, uint64(ev.UserID), uint64(ev.VenueID), start)
			tr.Span(ev.Trace, "ring-wait", start, nowN, "")
		}
		w.tctx = append(w.tctx[:0], w.tall...)
	}
	evs := events
	alerts := w.alerts[:0]
	var stageStart time.Time
	if w.timed || traced {
		stageStart = time.Now()
	}
	for si, st := range w.stages {
		before := len(evs)
		if bs := w.batchers[si]; bs != nil {
			evs, alerts = bs.ProcessBatch(evs, alerts)
		} else {
			kept := evs[:0]
			for _, ev := range evs {
				as, keep := st.Process(ev)
				alerts = append(alerts, as...)
				if keep {
					kept = append(kept, ev)
				}
			}
			evs = kept
		}
		if w.timed || traced {
			now := time.Now()
			if w.timed {
				w.stageLat[si].ObserveDuration(now.Sub(stageStart))
			}
			if traced && len(w.tctx) > 0 {
				// Stage timing is per run, not per event — the span says
				// which stage the event was in and when, at run
				// granularity (the clock reads the batch walk already
				// takes). A context whose event vanished was filtered
				// here: mark the drop so tail retention keeps the trace.
				alive := w.tctx[:0]
				for _, ctx := range w.tctx {
					if eventWithTrace(evs, ctx.ID) {
						tr.Span(ctx, w.spanNames[si], stageStart.UnixNano(), now.UnixNano(), "")
						alive = append(alive, ctx)
					} else {
						tr.MarkDrop(ctx, st.Name(), now.UnixNano())
					}
				}
				w.tctx = alive
			}
			stageStart = now
		}
		if f := before - len(evs); f > 0 {
			sh.filtered.Add(uint64(f))
			p.noteFilteredN(st.Name(), f)
		}
		if len(evs) == 0 {
			break
		}
	}
	sh.processed.Add(uint64(len(events)))
	if len(alerts) > 0 {
		// The stage-major walk groups alerts by stage; consumers (store
		// order, subscribers) expect the event-major order the per-event
		// loop produced. A stable sort by Seq restores it exactly: same
		// event's alerts are already in stage order, and stability keeps
		// them that way. Insertion sort: runs are small, alerts rare,
		// and it allocates nothing.
		for i := 1; i < len(alerts); i++ {
			for j := i; j > 0 && alerts[j].Seq < alerts[j-1].Seq; j-- {
				alerts[j], alerts[j-1] = alerts[j-1], alerts[j]
			}
		}
		for i := range alerts {
			sh.windows.alert(alerts[i].At, alerts[i].Detector)
		}
		p.recordAlerts(alerts, events)
	}
	if traced {
		endN := time.Now().UnixNano()
		for _, ctx := range w.tall {
			tr.End(ctx, endN)
		}
	}
	w.alerts = alerts[:0] // keep the grown capacity for the next run
	if w.latest.Sub(w.lastSweep) >= p.cfg.Evict.SweepEvery {
		w.lastSweep = w.latest
		cutoff := w.latest.Add(-p.cfg.Evict.IdleAfter)
		for _, st := range w.stages {
			evictor, ok := st.(UserStateEvictor)
			if !ok {
				continue
			}
			if n := evictor.EvictIdle(cutoff); n > 0 {
				sh.evicted.Add(uint64(n))
				p.noteEvicted(st.Name(), n)
			}
		}
	}
}

// batchAlertAppender is the store fast path: persist a run's alerts in
// one framed write. store.AlertJournal implements it.
type batchAlertAppender interface {
	AppendBatch(alerts []store.Alert) (int, error)
}

// eventWithTrace reports whether any event in evs carries the trace
// ID — the "did this traced event survive the stage?" probe.
func eventWithTrace(evs []lbsn.CheckinEvent, id trace.ID) bool {
	for i := range evs {
		if evs[i].Trace.ID == id {
			return true
		}
	}
	return false
}

// recordAlerts is recordAlert for a run's worth of alerts: one store
// batch append, one counter-lock acquisition, one subscriber snapshot.
// The alerts slice is worker scratch — everything downstream copies.
func (p *Pipeline) recordAlerts(alerts []Alert, events []lbsn.CheckinEvent) {
	tr := p.tracer
	var jStart int64
	if tr != nil {
		// Stamp each alert with its event's trace ID before persisting,
		// so the journal, the ship wire and the alert APIs all link back
		// to the trace. Cold path: alerts are rare.
		for i := range alerts {
			for j := range events {
				if events[j].Seq == alerts[i].Seq {
					if events[j].Trace.Sampled() {
						alerts[i].Trace = events[j].Trace.ID.String()
					}
					break
				}
			}
		}
		jStart = time.Now().UnixNano()
	}
	if ba, ok := p.alerts.(batchAlertAppender); ok {
		if _, err := ba.AppendBatch(alerts); err != nil {
			p.storeErrors.Add(1)
		}
	} else {
		for i := range alerts {
			if err := p.alerts.Append(alerts[i]); err != nil {
				p.storeErrors.Add(1)
			}
		}
	}
	if tr != nil {
		jEnd := time.Now().UnixNano()
		for i := range alerts {
			if alerts[i].Trace == "" {
				continue
			}
			if id, ok := trace.ParseID(alerts[i].Trace); ok {
				ctx := trace.Context{ID: id, Flags: trace.FlagSampled}
				tr.Span(ctx, "journal-append", jStart, jEnd, "")
				tr.MarkAlert(ctx, alerts[i].Detector)
			}
		}
	}
	if p.detLat != nil {
		// Alert → originating event by Seq for the ingest stamp. Alerts
		// are rare relative to events; the linear scan beats building a
		// map on every run. Traced alerts also pin the latency exemplar,
		// linking the histogram's tail to a concrete trace.
		for i := range alerts {
			for j := range events {
				if events[j].Seq == alerts[i].Seq {
					if at := events[j].IngestedAt; !at.IsZero() && events[j].Trace.Sampled() {
						p.detLat.ObserveExemplar(int64(time.Since(at)), events[j].Trace.ID.String())
					} else {
						p.detLat.ObserveSince(at)
					}
					break
				}
			}
		}
	}
	p.alertMu.Lock()
	p.alertsTotal += uint64(len(alerts))
	for i := range alerts {
		p.byDetector[alerts[i].Detector]++
	}
	p.alertMu.Unlock()
	p.fanOut(alerts)
}

// fanOut delivers alerts to subscribers from a lock-free snapshot.
// Delivery is non-blocking: a slow subscriber loses the alert (counted
// in subDropped) rather than slowing detection or holding alertMu
// across N sends.
func (p *Pipeline) fanOut(alerts []Alert) {
	subs := p.subsPtr.Load()
	if subs == nil || len(*subs) == 0 {
		return
	}
	for _, ch := range *subs {
		for i := range alerts {
			select {
			case ch <- alerts[i]:
			default:
				p.subDropped.Add(1)
			}
		}
	}
}
