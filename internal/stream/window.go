package stream

import (
	"sort"
	"sync"
	"time"
)

// WindowStats is one tumbling window's aggregate: how many check-in
// events fell into it and how many alerts each detector raised.
// Windows are keyed by event timestamps, not arrival time, so the
// aggregates are deterministic under simclock and indifferent to shard
// scheduling.
type WindowStats struct {
	Start  time.Time         `json:"start"`
	Events uint64            `json:"events"`
	Alerts map[string]uint64 `json:"alerts,omitempty"`
}

// Rates summarizes completed windows into per-second figures — the
// operator's "check-ins/sec and alert rate per detector" view.
type Rates struct {
	WindowSize time.Duration `json:"windowSize"`
	// Windows is how many completed windows the figures aggregate.
	Windows      int     `json:"windows"`
	EventsPerSec float64 `json:"eventsPerSec"`
	// AlertsPerSec is per-detector alert throughput.
	AlertsPerSec map[string]float64 `json:"alertsPerSec,omitempty"`
	// AlertFraction is per-detector alerts per processed event.
	AlertFraction map[string]float64 `json:"alertFraction,omitempty"`
}

// windowTracker maintains one shard's bounded set of recent tumbling
// windows. Each shard owns its own tracker so the per-event bump never
// contends across shards; the mutex only synchronizes with stats
// readers, and merged views are computed on demand.
type windowTracker struct {
	mu      sync.Mutex
	size    time.Duration
	history int
	windows map[int64]*WindowStats
	// order holds the bucket keys ascending. Event time is
	// near-monotonic per shard, so creation is almost always an append
	// and eviction pops the front — O(1) on the hot path instead of a
	// map scan.
	order []int64
}

func newWindowTracker(size time.Duration, history int) *windowTracker {
	return &windowTracker{
		size:    size,
		history: history,
		windows: make(map[int64]*WindowStats),
	}
}

func (w *windowTracker) bucket(at time.Time) *WindowStats {
	key := at.UnixNano() / int64(w.size)
	ws, ok := w.windows[key]
	if !ok {
		ws = &WindowStats{Start: time.Unix(0, key*int64(w.size)).UTC()}
		w.windows[key] = ws
		if n := len(w.order); n == 0 || key > w.order[n-1] {
			w.order = append(w.order, key)
		} else {
			// Rare out-of-order event: insert in place.
			i := sort.Search(n, func(i int) bool { return w.order[i] > key })
			w.order = append(w.order, 0)
			copy(w.order[i+1:], w.order[i:])
			w.order[i] = key
		}
		w.evict()
	}
	return ws
}

// evict keeps only the newest history windows.
func (w *windowTracker) evict() {
	for len(w.order) > w.history {
		delete(w.windows, w.order[0])
		w.order = w.order[1:]
	}
}

func (w *windowTracker) observe(at time.Time) {
	w.mu.Lock()
	w.bucket(at).Events++
	w.mu.Unlock()
}

func (w *windowTracker) alert(at time.Time, detector string) {
	w.mu.Lock()
	ws := w.bucket(at)
	if ws.Alerts == nil {
		ws.Alerts = make(map[string]uint64)
	}
	ws.Alerts[detector]++
	w.mu.Unlock()
}

// collect sums this tracker's windows into a merged, key-bucketed map.
func (w *windowTracker) collect(into map[int64]*WindowStats) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for k, ws := range w.windows {
		m, ok := into[k]
		if !ok {
			m = &WindowStats{Start: ws.Start}
			into[k] = m
		}
		m.Events += ws.Events
		for det, n := range ws.Alerts {
			if m.Alerts == nil {
				m.Alerts = make(map[string]uint64)
			}
			m.Alerts[det] += n
		}
	}
}

// mergeWindows combines per-shard trackers into one keyed view.
func mergeWindows(trackers []*windowTracker) map[int64]*WindowStats {
	merged := make(map[int64]*WindowStats)
	for _, t := range trackers {
		t.collect(merged)
	}
	return merged
}

// sortedWindows flattens a merged view, oldest first.
func sortedWindows(merged map[int64]*WindowStats) []WindowStats {
	out := make([]WindowStats, 0, len(merged))
	for _, ws := range merged {
		out = append(out, *ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// computeRates aggregates merged windows that completed strictly before
// now's window; the in-progress window would bias per-second figures
// low.
func computeRates(merged map[int64]*WindowStats, now time.Time, size time.Duration) Rates {
	currentKey := now.UnixNano() / int64(size)
	r := Rates{WindowSize: size}
	var events uint64
	alerts := make(map[string]uint64)
	for k, ws := range merged {
		if k >= currentKey {
			continue
		}
		r.Windows++
		events += ws.Events
		for det, n := range ws.Alerts {
			alerts[det] += n
		}
	}
	if r.Windows == 0 {
		return r
	}
	secs := float64(r.Windows) * size.Seconds()
	r.EventsPerSec = float64(events) / secs
	if len(alerts) > 0 {
		r.AlertsPerSec = make(map[string]float64, len(alerts))
		r.AlertFraction = make(map[string]float64, len(alerts))
		for det, n := range alerts {
			r.AlertsPerSec[det] = float64(n) / secs
			if events > 0 {
				r.AlertFraction[det] = float64(n) / float64(events)
			}
		}
	}
	return r
}
