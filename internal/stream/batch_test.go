package stream

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
)

// genEventMix builds a randomized but adversarial event stream: a
// handful of users, timestamps stepping forward with jitter, venue
// teleports (speed alerts), exact replays (dedupe filters), GPS-deny
// claims, and bursty repeats (rate throttle + cheater-code rapid-fire).
// Every behaviour class each stage branches on shows up in the mix.
func genEventMix(r *rand.Rand, n int) []lbsn.CheckinEvent {
	locs := []geo.Point{
		testVenueLoc,
		farVenueLoc,
		{Lat: 51.5074, Lon: -0.1278},
		{Lat: testVenueLoc.Lat + 0.0001, Lon: testVenueLoc.Lon},
	}
	t0 := simclock.Epoch()
	out := make([]lbsn.CheckinEvent, 0, n)
	at := t0
	for len(out) < n {
		switch r.Intn(10) {
		case 0: // exact replay of a previous event (dedupe fodder)
			if len(out) > 0 {
				dup := out[r.Intn(len(out))]
				dup.Seq = uint64(len(out) + 1)
				out = append(out, dup)
				continue
			}
			fallthrough
		case 1, 2: // burst: same user hammering nearby venues
			user := uint64(1 + r.Intn(3))
			base := locs[r.Intn(len(locs))]
			for i := 0; i < 3+r.Intn(5) && len(out) < n; i++ {
				at = at.Add(time.Duration(r.Intn(1000)) * time.Millisecond)
				ev := event(user, uint64(100+r.Intn(4)), at, base)
				ev.Seq = uint64(len(out) + 1)
				out = append(out, ev)
			}
		case 3: // denied claim: GPS mismatch reason set
			at = at.Add(time.Duration(r.Intn(30)) * time.Second)
			ev := event(uint64(1+r.Intn(5)), uint64(100+r.Intn(8)), at, locs[r.Intn(len(locs))])
			ev.Accepted = false
			ev.Reason = lbsn.DenyGPSMismatch
			ev.Seq = uint64(len(out) + 1)
			out = append(out, ev)
		default: // ordinary claim, occasionally a teleport
			at = at.Add(time.Duration(r.Intn(120)) * time.Second)
			ev := event(uint64(1+r.Intn(5)), uint64(100+r.Intn(8)), at, locs[r.Intn(len(locs))])
			ev.Seq = uint64(len(out) + 1)
			out = append(out, ev)
		}
	}
	return out
}

// runPerEvent drives a stage chain the slow way: Process once per
// event, filtered events stopping their chain walk, alerts appended in
// event order — exactly what the shard worker's fallback path does.
func runPerEvent(stages []Stage, events []lbsn.CheckinEvent) (kept []lbsn.CheckinEvent, alerts []Alert) {
	for _, ev := range events {
		dropped := false
		for _, st := range stages {
			out, keep := st.Process(ev)
			alerts = append(alerts, out...)
			if !keep {
				dropped = true
				break
			}
		}
		if !dropped {
			kept = append(kept, ev)
		}
	}
	return kept, alerts
}

// TestProcessBatchEquivalence is the batch-path contract test: for
// every stage, ProcessBatch over arbitrary chunkings must produce
// byte-identical alerts and the same kept set as N sequential Process
// calls. Two independently-built chains consume the same randomized
// stream, one per event and one in random-size batches, across many
// seeds.
func TestProcessBatchEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			events := genEventMix(rand.New(rand.NewSource(seed)), 400)
			cfg := DetectConfig{}.withDefaults()
			ref := DefaultStages(cfg)
			batched := DefaultStages(cfg)

			wantKept, wantAlerts := runPerEvent(ref, events)

			chunkRand := rand.New(rand.NewSource(seed * 7919))
			var gotKept []lbsn.CheckinEvent
			var gotAlerts []Alert
			scratch := make([]lbsn.CheckinEvent, 0, len(events))
			for off := 0; off < len(events); {
				sz := 1 + chunkRand.Intn(64)
				if off+sz > len(events) {
					sz = len(events) - off
				}
				// ProcessBatch compacts in place, so hand it a copy the
				// way the worker hands its private run buffer.
				run := append(scratch[:0], events[off:off+sz]...)
				mark := len(gotAlerts)
				for _, st := range batched {
					bs, ok := st.(BatchStage)
					if !ok {
						t.Fatalf("stage %s does not implement BatchStage", st.Name())
					}
					run, gotAlerts = bs.ProcessBatch(run, gotAlerts)
				}
				// Stage-major drains emit alerts grouped by stage; the
				// worker restores event order with a stable sort by Seq
				// (stages ran in chain order, so ties keep chain order).
				// Mirror that here before comparing to the per-event run.
				chunk := gotAlerts[mark:]
				sort.SliceStable(chunk, func(i, j int) bool { return chunk[i].Seq < chunk[j].Seq })
				gotKept = append(gotKept, run...)
				off += sz
			}

			wantJSON, _ := json.Marshal(wantAlerts)
			gotJSON, _ := json.Marshal(gotAlerts)
			if string(wantJSON) != string(gotJSON) {
				t.Fatalf("alerts diverge:\nper-event: %s\nbatched:   %s", wantJSON, gotJSON)
			}
			if len(gotKept) != len(wantKept) {
				t.Fatalf("kept %d events batched, %d per-event", len(gotKept), len(wantKept))
			}
			for i := range gotKept {
				if gotKept[i].Seq != wantKept[i].Seq {
					t.Fatalf("kept[%d]: seq %d batched, %d per-event", i, gotKept[i].Seq, wantKept[i].Seq)
				}
			}
		})
	}
}

// TestProcessBatchAlertOrderMatchesPerEvent pins the worker-level
// invariant on top of the stage-level one: a pipeline fed through
// PublishBatch must store the same alerts in the same order as one fed
// the same events through Publish. This exercises the stage-major
// drain plus the Seq re-sort in shardWorker.process.
func TestProcessBatchAlertOrderMatchesPerEvent(t *testing.T) {
	events := genEventMix(rand.New(rand.NewSource(99)), 600)

	run := func(publish func(p *Pipeline)) []Alert {
		mem := store.NewMemoryAlertStore(4096)
		p := New(Config{
			Shards: 1, // single shard: global order is deterministic
			Store:  mem,
			Clock:  simclock.NewSimulated(simclock.Epoch()),
		})
		publish(p)
		p.Close()
		alerts, _ := mem.Query(store.AlertQuery{Limit: 4096})
		return alerts
	}

	perEvent := run(func(p *Pipeline) {
		for _, ev := range events {
			if !p.Publish(ev) {
				t.Fatal("publish refused")
			}
		}
	})
	batched := run(func(p *Pipeline) {
		for off := 0; off < len(events); off += 100 {
			end := off + 100
			if end > len(events) {
				end = len(events)
			}
			batch := append([]lbsn.CheckinEvent(nil), events[off:end]...)
			if got := p.PublishBatch(batch, nil); got != end-off {
				t.Fatalf("batch publish accepted %d of %d", got, end-off)
			}
		}
	})

	want, _ := json.Marshal(perEvent)
	got, _ := json.Marshal(batched)
	if string(want) != string(got) {
		t.Fatalf("alert streams diverge (%d per-event, %d batched):\nper-event: %s\nbatched:   %s",
			len(perEvent), len(batched), want, got)
	}
	if len(perEvent) == 0 {
		t.Fatal("mix produced no alerts; test is vacuous")
	}
}

// TestCloseDrainsPartialBatches is the shutdown contract: every event
// PublishBatch accepted is processed before Close returns, even the
// partially-filled tail run sitting in a shard ring with no further
// wakeups coming.
func TestCloseDrainsPartialBatches(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			p := New(Config{
				Shards:      shards,
				ShardBuffer: 1 << 14,
				Clock:       simclock.NewSimulated(simclock.Epoch()),
			})
			events := genEventMix(rand.New(rand.NewSource(7)), 1000)
			accepted := 0
			// Odd batch sizes so the final run into each shard is a
			// partial one.
			for off := 0; off < len(events); off += 37 {
				end := off + 37
				if end > len(events) {
					end = len(events)
				}
				batch := append([]lbsn.CheckinEvent(nil), events[off:end]...)
				accepted += p.PublishBatch(batch, nil)
			}
			if accepted != len(events) {
				t.Fatalf("accepted %d of %d (ring overflow defeats the drain assertion)", accepted, len(events))
			}
			p.Close()
			st := p.Stats()
			if st.Processed != uint64(accepted) {
				t.Fatalf("processed %d of %d accepted events after Close", st.Processed, accepted)
			}
			if st.Dropped != 0 {
				t.Fatalf("%d events dropped with an oversized ring", st.Dropped)
			}
		})
	}
}
