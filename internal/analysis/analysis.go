// Package analysis reproduces chapter 4's evaluation of location
// cheating over crawled data: the recent-vs-total check-in curve
// (Fig 4.1), the badges-vs-check-ins reward-rate curve (Fig 4.2), the
// §4.2 population marginals and top-user group split, and the
// suspicious check-in pattern analysis of Figs 4.3/4.4, culminating in
// the three-factor cheater classifier the paper sketches:
//
//  1. above-normal activity (recent-visitor-list presence),
//  2. below-normal reward rate (badges per check-in),
//  3. geographically impossible check-in dispersion.
package analysis

import (
	"math"
	"sort"

	"locheat/internal/geo"
	"locheat/internal/store"
)

// CurvePoint is one x bucket of an aggregate curve: the mean y of all
// users whose x falls in the bucket.
type CurvePoint struct {
	X     int     // bucket center (total check-ins)
	AvgY  float64 // mean of the y metric
	Count int     // users in the bucket
}

// RecentVsTotal computes the Fig 4.1 curve: average recent check-ins
// (appearances in venue recent-visitor lists) of the users having a
// given number of total check-ins, bucketed by bucketWidth, restricted
// to totals in (0, maxTotal]. The paper used maxTotal 2000, covering
// 99.98% of users.
func RecentVsTotal(db *store.DB, maxTotal, bucketWidth int) []CurvePoint {
	db.DeriveStats()
	return curve(db, maxTotal, bucketWidth, func(u store.UserRow) float64 {
		return float64(u.RecentCheckins)
	})
}

// BadgesVsTotal computes the Fig 4.2 curve: average badge count of the
// users having a given number of total check-ins. The paper plotted
// totals up to ~14000.
func BadgesVsTotal(db *store.DB, maxTotal, bucketWidth int) []CurvePoint {
	db.DeriveStats()
	return curve(db, maxTotal, bucketWidth, func(u store.UserRow) float64 {
		return float64(u.TotalBadges)
	})
}

func curve(db *store.DB, maxTotal, bucketWidth int, y func(store.UserRow) float64) []CurvePoint {
	if bucketWidth <= 0 {
		bucketWidth = 25
	}
	type acc struct {
		sum float64
		n   int
	}
	buckets := make(map[int]*acc)
	for _, u := range db.Users(nil) {
		if u.TotalCheckins <= 0 || u.TotalCheckins > maxTotal {
			continue
		}
		b := u.TotalCheckins / bucketWidth
		a := buckets[b]
		if a == nil {
			a = &acc{}
			buckets[b] = a
		}
		a.sum += y(u)
		a.n++
	}
	out := make([]CurvePoint, 0, len(buckets))
	for b, a := range buckets {
		out = append(out, CurvePoint{
			X:     b*bucketWidth + bucketWidth/2,
			AvgY:  a.sum / float64(a.n),
			Count: a.n,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// Marginals summarizes the §4.2 population statistics.
type Marginals struct {
	Users            int
	ZeroFraction     float64 // "36.3% have never checked into any venues"
	OneToFive        float64 // "20.4% have one to five check-ins"
	AtLeast1000      float64 // "0.2% of the users have checked in at least 1,000 times"
	AtLeast5000      int     // "11 users have checked in at least 5,000 times"
	MaxCheckins      int     // "the one with over 12,000 check-ins"
	TotalCheckinsSum int

	// The two groups among the ≥5000 stratum.
	Group5000WithMayors    int // group 1: "each of whom is mayor of tens of venues"
	Group5000WithoutMayors int // group 2: caught cheaters

	UsersWithMayorships int     // paper: 425,196
	VenuesWithMayors    int     // paper: 2,315,747
	AvgMayorships       float64 // paper: 5.45

	VenuesOneCheckin  int // paper: 1,291,125
	VenuesOneVisitor  int // paper: 2,014,305
	MayorOnlySpecials int
	TotalSpecials     int
	OrphanSpecials    int // special but no mayor — the §3.4 targets ("around 1000 venues")
	RecentRelations   int // crawled check-in records (paper: 20M)
	UsernameFraction  float64
}

// ComputeMarginals derives the §4.2 statistics from a crawled store.
func ComputeMarginals(db *store.DB) Marginals {
	db.DeriveStats()
	var m Marginals
	users := db.Users(nil)
	m.Users = len(users)
	for _, u := range users {
		m.TotalCheckinsSum += u.TotalCheckins
		switch {
		case u.TotalCheckins == 0:
			m.ZeroFraction++
		case u.TotalCheckins <= 5:
			m.OneToFive++
		}
		if u.TotalCheckins >= 1000 {
			m.AtLeast1000++
		}
		if u.TotalCheckins >= 5000 {
			m.AtLeast5000++
			if u.TotalMayors > 0 {
				m.Group5000WithMayors++
			} else {
				m.Group5000WithoutMayors++
			}
		}
		if u.TotalCheckins > m.MaxCheckins {
			m.MaxCheckins = u.TotalCheckins
		}
		if u.TotalMayors > 0 {
			m.UsersWithMayorships++
		}
		if u.UserName != "" {
			m.UsernameFraction++
		}
	}
	if m.Users > 0 {
		n := float64(m.Users)
		m.ZeroFraction /= n
		m.OneToFive /= n
		m.AtLeast1000 /= n
		m.UsernameFraction /= n
	}
	for _, v := range db.Venues(nil) {
		if v.MayorID != 0 {
			m.VenuesWithMayors++
		}
		if v.CheckinsHere == 1 {
			m.VenuesOneCheckin++
		}
		if v.UniqueVisitors == 1 {
			m.VenuesOneVisitor++
		}
		if v.Special != "" {
			m.TotalSpecials++
			if v.SpecialMayor {
				m.MayorOnlySpecials++
			}
			if v.MayorID == 0 {
				m.OrphanSpecials++
			}
		}
	}
	if m.UsersWithMayorships > 0 {
		m.AvgMayorships = float64(m.VenuesWithMayors) / float64(m.UsersWithMayorships)
	}
	_, _, m.RecentRelations = db.Counts()
	return m
}

// CheckinPoints returns the locations of the venues whose recent lists
// include the user — the dots of Figs 4.3/4.4.
func CheckinPoints(db *store.DB, userID uint64) []geo.Point {
	venueIDs := db.RecentCheckinsOf(userID)
	pts := make([]geo.Point, 0, len(venueIDs))
	for _, vid := range venueIDs {
		if v, ok := db.Venue(vid); ok {
			pts = append(pts, v.Location())
		}
	}
	return pts
}

// CityCount clusters points to distinct metropolitan areas: two points
// belong to the same cluster when within radiusMeters (default 60 km)
// of the cluster seed. This is the "spread over 30 different cities"
// measure of Fig 4.3.
func CityCount(points []geo.Point, radiusMeters float64) int {
	if radiusMeters <= 0 {
		radiusMeters = 60000
	}
	var seeds []geo.Point
	for _, p := range points {
		found := false
		for _, s := range seeds {
			if s.DistanceMeters(p) <= radiusMeters {
				found = true
				break
			}
		}
		if !found {
			seeds = append(seeds, p)
		}
	}
	return len(seeds)
}

// SpreadKm is the diagonal of the bounding box of the points, a cheap
// dispersion measure.
func SpreadKm(points []geo.Point) float64 {
	r, ok := geo.BoundingRect(points)
	if !ok {
		return 0
	}
	a := geo.Point{Lat: r.MinLat, Lon: r.MinLon}
	b := geo.Point{Lat: r.MaxLat, Lon: r.MaxLon}
	return a.DistanceMeters(b) / 1000
}

// Suspicion flags.
const (
	FlagHighRecentRatio = "high-recent-ratio"      // §4.1
	FlagLowRewardRate   = "low-reward-rate"        // §4.2
	FlagWideSpread      = "wide-geographic-spread" // §4.3
)

// Suspect is one user the classifier flags, with the §4 evidence.
type Suspect struct {
	UserID      uint64
	Total       int
	Recent      int
	Badges      int
	TotalMayors int
	Cities      int
	SpreadKm    float64
	Flags       []string
}

// ClassifierConfig sets the three factors' thresholds.
type ClassifierConfig struct {
	// MinTotal gates the classifier: below this activity level the
	// signals are too noisy (paper analyses the heavy stratum).
	MinTotal int
	// RecentRatio flags users whose recent/total exceeds this with
	// total > RecentRatioMinTotal ("unusually high percentage of
	// recent check-ins", Fig 4.1).
	RecentRatio         float64
	RecentRatioMinTotal int
	// MaxBadgesAt1000 flags "users with more than 1000 check-ins [who]
	// only have less than 10 badges" (Fig 4.2).
	LowRewardMinTotal int
	LowRewardMaxBadge int
	// MinCities flags geographically impossible dispersion (Fig 4.3:
	// "spread over 30 different cities"; a lower bar catches more).
	MinCities int
	// CityRadiusMeters is the clustering radius for CityCount.
	CityRadiusMeters float64
}

// DefaultClassifierConfig returns thresholds matching the paper's
// qualitative criteria.
func DefaultClassifierConfig() ClassifierConfig {
	return ClassifierConfig{
		MinTotal:            200,
		RecentRatio:         0.35,
		RecentRatioMinTotal: 500,
		LowRewardMinTotal:   1000,
		LowRewardMaxBadge:   10,
		MinCities:           10,
		CityRadiusMeters:    60000,
	}
}

// Classify scans the store for suspicious users using the three §4
// factors. Users carrying at least one flag are returned, strongest
// (most flags, then most total check-ins) first.
func Classify(db *store.DB, cfg ClassifierConfig) []Suspect {
	db.DeriveStats()
	var out []Suspect
	for _, u := range db.Users(func(u store.UserRow) bool { return u.TotalCheckins >= cfg.MinTotal }) {
		var flags []string
		if u.TotalCheckins >= cfg.RecentRatioMinTotal &&
			float64(u.RecentCheckins) > cfg.RecentRatio*float64(u.TotalCheckins) {
			flags = append(flags, FlagHighRecentRatio)
		}
		if u.TotalCheckins >= cfg.LowRewardMinTotal && u.TotalBadges < cfg.LowRewardMaxBadge {
			flags = append(flags, FlagLowRewardRate)
		}
		var pts []geo.Point
		cities := 0
		spread := 0.0
		// Geographic dispersion needs the venue points; skip the fetch
		// when the user appears nowhere.
		if u.RecentCheckins > 0 {
			pts = CheckinPoints(db, u.ID)
			cities = CityCount(pts, cfg.CityRadiusMeters)
			spread = SpreadKm(pts)
			if cities >= cfg.MinCities {
				flags = append(flags, FlagWideSpread)
			}
		}
		if len(flags) == 0 {
			continue
		}
		out = append(out, Suspect{
			UserID:      u.ID,
			Total:       u.TotalCheckins,
			Recent:      u.RecentCheckins,
			Badges:      u.TotalBadges,
			TotalMayors: u.TotalMayors,
			Cities:      cities,
			SpreadKm:    spread,
			Flags:       flags,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Flags) != len(out[j].Flags) {
			return len(out[i].Flags) > len(out[j].Flags)
		}
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].UserID < out[j].UserID
	})
	return out
}

// Confusion is a binary-classification tally against ground truth.
type Confusion struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	TrueNegatives  int
}

// Precision returns TP/(TP+FP), NaN-free.
func (c Confusion) Precision() float64 {
	d := c.TruePositives + c.FalsePositives
	if d == 0 {
		return 0
	}
	return float64(c.TruePositives) / float64(d)
}

// Recall returns TP/(TP+FN), NaN-free.
func (c Confusion) Recall() float64 {
	d := c.TruePositives + c.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(c.TruePositives) / float64(d)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate scores a suspect list against a ground-truth oracle over
// the population of user IDs [1, users].
func Evaluate(suspects []Suspect, users int, isCheater func(uint64) bool) Confusion {
	flagged := make(map[uint64]bool, len(suspects))
	for _, s := range suspects {
		flagged[s.UserID] = true
	}
	var c Confusion
	for id := uint64(1); id <= uint64(users); id++ {
		truth := isCheater(id)
		switch {
		case truth && flagged[id]:
			c.TruePositives++
		case !truth && flagged[id]:
			c.FalsePositives++
		case truth && !flagged[id]:
			c.FalseNegatives++
		default:
			c.TrueNegatives++
		}
	}
	return c
}

// MeanAbsDeviation is a helper the experiment harness uses to compare
// a measured curve against a reference shape.
func MeanAbsDeviation(curve []CurvePoint, ref func(x int) float64) float64 {
	if len(curve) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, p := range curve {
		sum += math.Abs(p.AvgY - ref(p.X))
	}
	return sum / float64(len(curve))
}
