package analysis

import "locheat/internal/store"

// SweepPoint is one classifier operating point in the threshold sweep
// — the ablation DESIGN.md calls out for the detection thresholds.
type SweepPoint struct {
	MinCities   int
	RecentRatio float64
	Suspects    int
	Precision   float64
	Recall      float64
	F1          float64
}

// SweepClassifier evaluates the three-factor classifier across a grid
// of city-spread and recent-ratio thresholds against a ground-truth
// oracle, producing the precision/recall trade-off curve. The
// remaining thresholds stay at their defaults.
func SweepClassifier(db *store.DB, users int, isCheater func(uint64) bool, cities []int, ratios []float64) []SweepPoint {
	out := make([]SweepPoint, 0, len(cities)*len(ratios))
	for _, mc := range cities {
		for _, rr := range ratios {
			cfg := DefaultClassifierConfig()
			cfg.MinCities = mc
			cfg.RecentRatio = rr
			suspects := Classify(db, cfg)
			conf := Evaluate(suspects, users, isCheater)
			out = append(out, SweepPoint{
				MinCities:   mc,
				RecentRatio: rr,
				Suspects:    len(suspects),
				Precision:   conf.Precision(),
				Recall:      conf.Recall(),
				F1:          conf.F1(),
			})
		}
	}
	return out
}

// SingleFactorConfigs returns one classifier configuration per §4
// detection factor, with the other two factors disabled — the
// complementarity ablation: each factor alone catches a different
// cheater population (high recent ratio → uncaught cheaters; low
// reward rate → caught cheaters; geographic spread → travel-pattern
// cheaters).
func SingleFactorConfigs() map[string]ClassifierConfig {
	const off = 1 << 30
	base := DefaultClassifierConfig()

	recentOnly := base
	recentOnly.LowRewardMinTotal = off
	recentOnly.MinCities = off

	rewardOnly := base
	rewardOnly.RecentRatio = float64(off)
	rewardOnly.MinCities = off

	geoOnly := base
	geoOnly.RecentRatio = float64(off)
	geoOnly.LowRewardMinTotal = off

	return map[string]ClassifierConfig{
		FlagHighRecentRatio: recentOnly,
		FlagLowRewardRate:   rewardOnly,
		FlagWideSpread:      geoOnly,
	}
}

// FactorResult scores one isolated factor.
type FactorResult struct {
	Factor    string
	Suspects  int
	Precision float64
	Recall    float64
}

// AblateFactors runs each single-factor classifier against ground
// truth. The full three-factor classifier should dominate every row's
// recall — the reason the paper lists three identifying factors, not
// one.
func AblateFactors(db *store.DB, users int, isCheater func(uint64) bool) []FactorResult {
	configs := SingleFactorConfigs()
	order := []string{FlagHighRecentRatio, FlagLowRewardRate, FlagWideSpread}
	out := make([]FactorResult, 0, len(order))
	for _, name := range order {
		suspects := Classify(db, configs[name])
		conf := Evaluate(suspects, users, isCheater)
		out = append(out, FactorResult{
			Factor:    name,
			Suspects:  len(suspects),
			Precision: conf.Precision(),
			Recall:    conf.Recall(),
		})
	}
	return out
}

// BestByF1 returns the sweep point with the highest F1 (ties to the
// earlier point). The boolean is false for an empty sweep.
func BestByF1(points []SweepPoint) (SweepPoint, bool) {
	if len(points) == 0 {
		return SweepPoint{}, false
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.F1 > best.F1 {
			best = p
		}
	}
	return best, true
}
