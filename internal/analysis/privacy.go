package analysis

import (
	"sort"

	"locheat/internal/geo"
	"locheat/internal/store"
)

// This file implements the §6.2.1 privacy-leakage extension the paper
// lists as future work: "after we crawled webpages for all venues, we
// built a personal location history for each user." From nothing but
// the public venue recent-visitor lists, an attacker reconstructs
// where each user spends time — here distilled to inferring the user's
// home city.

// HomeInference is one user's reconstructed location profile.
type HomeInference struct {
	UserID         uint64
	InferredCity   string
	Confidence     float64 // fraction of the user's recent venues in the inferred city
	RecentVenues   int
	DistinctCities int
}

// InferHomeCity guesses a user's home city as the modal city among
// the venues whose recent lists carry the user. The boolean is false
// when the user appears on no venue list (nothing leaked).
func InferHomeCity(db *store.DB, userID uint64) (HomeInference, bool) {
	venueIDs := db.RecentCheckinsOf(userID)
	if len(venueIDs) == 0 {
		return HomeInference{UserID: userID}, false
	}
	counts := make(map[string]int)
	for _, vid := range venueIDs {
		if v, ok := db.Venue(vid); ok && v.City != "" {
			counts[v.City]++
		}
	}
	if len(counts) == 0 {
		return HomeInference{UserID: userID}, false
	}
	best, bestN := "", 0
	for city, n := range counts {
		if n > bestN || (n == bestN && city < best) {
			best, bestN = city, n
		}
	}
	return HomeInference{
		UserID:         userID,
		InferredCity:   best,
		Confidence:     float64(bestN) / float64(len(venueIDs)),
		RecentVenues:   len(venueIDs),
		DistinctCities: len(counts),
	}, true
}

// PrivacyReport summarizes the §6.2.1 leak over a crawled population.
type PrivacyReport struct {
	Users        int // users in the store
	Exposed      int // users appearing on at least one venue list
	HomeMatches  int // exposed users whose inferred city equals their profile city
	MatchRate    float64
	MedianVenues int // median location-history length among exposed users
}

// ComputePrivacyReport reconstructs every user's location history and
// checks the inferred home city against the self-reported profile
// field. A high match rate demonstrates the leak: venue pages alone
// reveal where users live.
func ComputePrivacyReport(db *store.DB) PrivacyReport {
	users := db.Users(nil)
	rep := PrivacyReport{Users: len(users)}
	var histLens []int
	for _, u := range users {
		inf, ok := InferHomeCity(db, u.ID)
		if !ok {
			continue
		}
		rep.Exposed++
		histLens = append(histLens, inf.RecentVenues)
		if inf.InferredCity == u.HomeCity {
			rep.HomeMatches++
		}
	}
	if rep.Exposed > 0 {
		rep.MatchRate = float64(rep.HomeMatches) / float64(rep.Exposed)
		sort.Ints(histLens)
		rep.MedianVenues = histLens[len(histLens)/2]
	}
	return rep
}

// LocationHistory returns a user's reconstructed history as venue
// (id, city, point) triples ordered by venue ID — the raw §6.2.1
// artifact.
type HistoryEntry struct {
	VenueID uint64
	City    string
	Point   geo.Point
}

// ReconstructHistory builds the per-user location history from the
// crawl.
func ReconstructHistory(db *store.DB, userID uint64) []HistoryEntry {
	venueIDs := db.RecentCheckinsOf(userID)
	out := make([]HistoryEntry, 0, len(venueIDs))
	for _, vid := range venueIDs {
		if v, ok := db.Venue(vid); ok {
			out = append(out, HistoryEntry{VenueID: vid, City: v.City, Point: v.Location()})
		}
	}
	return out
}
