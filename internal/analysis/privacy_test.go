package analysis

import (
	"testing"

	"locheat/internal/store"
	"locheat/internal/synth"
)

func TestInferHomeCity(t *testing.T) {
	db := store.New()
	db.UpsertUser(store.UserRow{ID: 1, HomeCity: "Lincoln"})
	db.UpsertVenue(store.VenueRow{ID: 10, City: "Lincoln", Latitude: 40.8, Longitude: -96.7})
	db.UpsertVenue(store.VenueRow{ID: 11, City: "Lincoln", Latitude: 40.81, Longitude: -96.71})
	db.UpsertVenue(store.VenueRow{ID: 12, City: "Omaha", Latitude: 41.25, Longitude: -95.93})
	db.AddRecentCheckin(1, 10)
	db.AddRecentCheckin(1, 11)
	db.AddRecentCheckin(1, 12)

	inf, ok := InferHomeCity(db, 1)
	if !ok {
		t.Fatal("expected inference")
	}
	if inf.InferredCity != "Lincoln" {
		t.Errorf("inferred %q, want Lincoln", inf.InferredCity)
	}
	if inf.Confidence < 0.6 || inf.Confidence > 0.7 {
		t.Errorf("confidence = %.2f, want 2/3", inf.Confidence)
	}
	if inf.RecentVenues != 3 || inf.DistinctCities != 2 {
		t.Errorf("history stats = %d venues / %d cities", inf.RecentVenues, inf.DistinctCities)
	}
}

func TestInferHomeCityNoData(t *testing.T) {
	db := store.New()
	db.UpsertUser(store.UserRow{ID: 1})
	if _, ok := InferHomeCity(db, 1); ok {
		t.Error("user with no recent venues should not be inferable")
	}
	// A user whose only venues carry no city names.
	db.UpsertVenue(store.VenueRow{ID: 5})
	db.AddRecentCheckin(1, 5)
	if _, ok := InferHomeCity(db, 1); ok {
		t.Error("venues without city names should not leak")
	}
}

func TestPrivacyReportOnSyntheticWorld(t *testing.T) {
	// The §6.2.1 claim: crawled venue lists reveal users' lives. On
	// the synthetic world — where normal users check in mostly at home
	// — the inferred home city should match the profile field for the
	// vast majority of exposed active users.
	w := synth.Generate(synth.Config{Seed: 17, Users: 3000, Venues: 9000})
	db := store.New()
	w.FillStore(db)

	rep := ComputePrivacyReport(db)
	if rep.Users != 3000 {
		t.Fatalf("users = %d", rep.Users)
	}
	if rep.Exposed < 1000 {
		t.Errorf("exposed users = %d, want most actives", rep.Exposed)
	}
	if rep.MatchRate < 0.7 {
		t.Errorf("home-city match rate = %.2f, want >= 0.7 (the leak)", rep.MatchRate)
	}
	if rep.MedianVenues <= 0 {
		t.Errorf("median history length = %d", rep.MedianVenues)
	}
}

func TestPrivacyReportEmptyStore(t *testing.T) {
	rep := ComputePrivacyReport(store.New())
	if rep.Exposed != 0 || rep.MatchRate != 0 {
		t.Errorf("empty store report = %+v", rep)
	}
}

func TestReconstructHistory(t *testing.T) {
	db := store.New()
	db.UpsertVenue(store.VenueRow{ID: 10, City: "Lincoln", Latitude: 40.8, Longitude: -96.7})
	db.UpsertVenue(store.VenueRow{ID: 20, City: "Omaha", Latitude: 41.25, Longitude: -95.93})
	db.AddRecentCheckin(7, 10)
	db.AddRecentCheckin(7, 20)
	db.AddRecentCheckin(7, 999) // dangling venue reference dropped

	hist := ReconstructHistory(db, 7)
	if len(hist) != 2 {
		t.Fatalf("history = %d entries, want 2", len(hist))
	}
	if hist[0].VenueID != 10 || hist[0].City != "Lincoln" {
		t.Errorf("entry 0 = %+v", hist[0])
	}
	if hist[1].Point.Lat != 41.25 {
		t.Errorf("entry 1 point = %v", hist[1].Point)
	}
	if got := ReconstructHistory(db, 404); len(got) != 0 {
		t.Errorf("unknown user history = %v", got)
	}
}
