package analysis

import (
	"testing"

	"locheat/internal/lbsn"
)

func TestSweepClassifier(t *testing.T) {
	w, db := loadWorld(t)
	oracle := func(id uint64) bool {
		c, ok := w.TrueClass(lbsn.UserID(id))
		return ok && c.Cheating()
	}
	points := SweepClassifier(db, len(w.Users), oracle,
		[]int{5, 10, 20}, []float64{0.2, 0.35, 0.6})
	if len(points) != 9 {
		t.Fatalf("sweep = %d points, want 9", len(points))
	}
	// Loosening thresholds must not reduce the suspect count: the
	// (5, 0.2) corner flags at least as many as the (20, 0.6) corner.
	loosest, strictest := points[0], points[len(points)-1]
	if loosest.Suspects < strictest.Suspects {
		t.Errorf("loose corner %d suspects < strict corner %d", loosest.Suspects, strictest.Suspects)
	}
	// Recall is monotone non-increasing as MinCities tightens at fixed
	// ratio.
	byKey := make(map[[2]int]SweepPoint)
	for _, p := range points {
		byKey[[2]int{p.MinCities, int(p.RecentRatio * 100)}] = p
	}
	if byKey[[2]int{5, 35}].Recall < byKey[[2]int{20, 35}].Recall {
		t.Error("recall should not rise when MinCities tightens")
	}
	best, ok := BestByF1(points)
	if !ok || best.F1 <= 0 {
		t.Fatalf("best point = %+v, %v", best, ok)
	}
	// The default operating point (10, 0.35) should be near-optimal on
	// this world.
	if best.F1 < 0.8 {
		t.Errorf("best F1 = %.2f, want >= 0.8", best.F1)
	}
}

func TestBestByF1Empty(t *testing.T) {
	if _, ok := BestByF1(nil); ok {
		t.Error("empty sweep should report not-ok")
	}
}

func TestAblateFactorsComplementarity(t *testing.T) {
	w, db := loadWorld(t)
	oracle := func(id uint64) bool {
		c, ok := w.TrueClass(lbsn.UserID(id))
		return ok && c.Cheating()
	}
	rows := AblateFactors(db, len(w.Users), oracle)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byFactor := make(map[string]FactorResult, 3)
	for _, r := range rows {
		byFactor[r.Factor] = r
		if r.Suspects == 0 {
			t.Errorf("factor %s flagged nobody", r.Factor)
		}
		if r.Precision < 0.5 {
			t.Errorf("factor %s precision = %.2f", r.Factor, r.Precision)
		}
	}
	// No single factor reaches full recall: each misses a cheater
	// population the others catch.
	fullRecall := 0
	for _, r := range rows {
		if r.Recall >= 0.999 {
			fullRecall++
		}
	}
	if fullRecall == len(rows) {
		t.Error("every factor alone reached full recall; complementarity claim is vacuous")
	}
	// The combined classifier dominates each single factor's recall.
	combined := Evaluate(Classify(db, DefaultClassifierConfig()), len(w.Users), oracle)
	for _, r := range rows {
		if combined.Recall() < r.Recall-1e-9 {
			t.Errorf("combined recall %.2f < factor %s recall %.2f", combined.Recall(), r.Factor, r.Recall)
		}
	}
}
