package analysis

import (
	"math"
	"testing"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/store"
	"locheat/internal/synth"
)

// worldDB generates a synthetic world and its perfect-crawl store once
// per test binary.
var (
	testWorld *synth.World
	testDB    *store.DB
)

func loadWorld(t *testing.T) (*synth.World, *store.DB) {
	t.Helper()
	if testWorld == nil {
		testWorld = synth.Generate(synth.Config{Seed: 11, Users: 6000, Venues: 18000})
		testDB = store.New()
		testWorld.FillStore(testDB)
	}
	return testWorld, testDB
}

func TestRecentVsTotalShape(t *testing.T) {
	_, db := loadWorld(t)
	curve := RecentVsTotal(db, 2000, 50)
	if len(curve) < 10 {
		t.Fatalf("curve has %d buckets, want >= 10", len(curve))
	}
	// Fig 4.1: around 100 recent check-ins on average for users with
	// more than 500 total.
	var sum float64
	var n int
	for _, p := range curve {
		if p.X > 500 && p.X <= 1000 {
			sum += p.AvgY * float64(p.Count)
			n += p.Count
		}
	}
	if n == 0 {
		t.Fatal("no users in the 500-1000 range")
	}
	avg := sum / float64(n)
	if avg < 50 || avg > 220 {
		t.Errorf("avg recent for 500<total<=1000 = %.1f, want ~100 (Fig 4.1)", avg)
	}
	// Monotone-ish rise at the low end: bucket 1 avg < bucket >500 avg.
	if curve[0].AvgY >= avg {
		t.Errorf("low-total avg %.1f >= mid-total avg %.1f; curve should rise", curve[0].AvgY, avg)
	}
}

func TestBadgesVsTotalShape(t *testing.T) {
	_, db := loadWorld(t)
	curve := BadgesVsTotal(db, 14000, 100)
	if len(curve) < 5 {
		t.Fatalf("curve has %d buckets", len(curve))
	}
	// Fig 4.2: stable concave growth below 1000.
	var lowAvg, midAvg float64
	var lowN, midN int
	for _, p := range curve {
		if p.X <= 200 {
			lowAvg += p.AvgY * float64(p.Count)
			lowN += p.Count
		}
		if p.X > 500 && p.X <= 1000 {
			midAvg += p.AvgY * float64(p.Count)
			midN += p.Count
		}
	}
	if lowN == 0 || midN == 0 {
		t.Fatal("insufficient buckets")
	}
	if lowAvg/float64(lowN) >= midAvg/float64(midN) {
		t.Errorf("badge curve not increasing below 1000: low %.1f mid %.1f",
			lowAvg/float64(lowN), midAvg/float64(midN))
	}
	// Above 5000 the caught-cheater stratum drags averages down in at
	// least one bucket (the oscillation of Fig 4.2).
	foundLow := false
	for _, p := range curve {
		if p.X > 4000 && p.AvgY < 30 {
			foundLow = true
		}
	}
	if !foundLow {
		t.Error("no depressed high-total badge bucket; caught cheaters missing from tail")
	}
}

func TestComputeMarginals(t *testing.T) {
	w, db := loadWorld(t)
	m := ComputeMarginals(db)
	if m.Users != len(w.Users) {
		t.Fatalf("users = %d, want %d", m.Users, len(w.Users))
	}
	if math.Abs(m.ZeroFraction-0.363) > 0.04 {
		t.Errorf("zero fraction = %.3f, want ~0.363", m.ZeroFraction)
	}
	if math.Abs(m.OneToFive-0.204) > 0.04 {
		t.Errorf("1-5 fraction = %.3f, want ~0.204", m.OneToFive)
	}
	if m.AtLeast5000 != 11 {
		t.Errorf("users >= 5000 = %d, want 11", m.AtLeast5000)
	}
	if m.Group5000WithMayors != 6 || m.Group5000WithoutMayors != 5 {
		t.Errorf("5000+ groups = %d/%d, want 6/5", m.Group5000WithMayors, m.Group5000WithoutMayors)
	}
	if m.MaxCheckins < 12000 {
		t.Errorf("max check-ins = %d, want > 12000", m.MaxCheckins)
	}
	if m.AvgMayorships < 2 {
		t.Errorf("avg mayorships = %.2f, want > 2 (paper 5.45)", m.AvgMayorships)
	}
	if m.OrphanSpecials < w.Cfg.OrphanSpecialCount {
		t.Errorf("orphan specials = %d, want >= %d", m.OrphanSpecials, w.Cfg.OrphanSpecialCount)
	}
	if f := float64(m.MayorOnlySpecials) / float64(m.TotalSpecials); f < 0.85 {
		t.Errorf("mayor-only special share = %.2f, want > 0.9-ish", f)
	}
	if math.Abs(m.UsernameFraction-0.261) > 0.04 {
		t.Errorf("username fraction = %.3f, want ~0.261", m.UsernameFraction)
	}
}

func TestCheckinPointsAndCityCount(t *testing.T) {
	w, db := loadWorld(t)
	// Find an uncaught cheater and a well-sampled active user.
	var cheaterID, normalID uint64
	for i, u := range w.Users {
		switch {
		case u.Class == synth.ClassCheater && cheaterID == 0:
			cheaterID = uint64(i + 1)
		case u.Class == synth.ClassActive && len(u.RecentVenues) >= 20 && normalID == 0:
			normalID = uint64(i + 1)
		}
	}
	if cheaterID == 0 || normalID == 0 {
		t.Fatal("world lacks required user classes")
	}
	cheaterPts := CheckinPoints(db, cheaterID)
	normalPts := CheckinPoints(db, normalID)
	if len(cheaterPts) == 0 || len(normalPts) == 0 {
		t.Fatal("no points for sample users")
	}
	cheaterCities := CityCount(cheaterPts, 0)
	normalCities := CityCount(normalPts, 0)
	if cheaterCities < 10 {
		t.Errorf("cheater cities = %d, want >= 10 (Fig 4.3)", cheaterCities)
	}
	if normalCities > 6 {
		t.Errorf("normal user cities = %d, want <= 6 (Fig 4.4)", normalCities)
	}
	if SpreadKm(cheaterPts) <= SpreadKm(normalPts) {
		t.Errorf("cheater spread %.0f km <= normal spread %.0f km",
			SpreadKm(cheaterPts), SpreadKm(normalPts))
	}
}

func TestCityCountEdgeCases(t *testing.T) {
	if got := CityCount(nil, 0); got != 0 {
		t.Errorf("CityCount(nil) = %d", got)
	}
	p := geo.Point{Lat: 40, Lon: -96}
	cluster := []geo.Point{p, p.Destination(0, 1000), p.Destination(90, 5000)}
	if got := CityCount(cluster, 0); got != 1 {
		t.Errorf("tight cluster cities = %d, want 1", got)
	}
	sf, _ := geo.FindCity("San Francisco")
	ny, _ := geo.FindCity("New York")
	spread := []geo.Point{p, sf.Center, ny.Center}
	if got := CityCount(spread, 0); got != 3 {
		t.Errorf("3-city spread = %d, want 3", got)
	}
	if SpreadKm(nil) != 0 {
		t.Error("SpreadKm(nil) should be 0")
	}
}

func TestClassifierFindsForcedCheaters(t *testing.T) {
	w, db := loadWorld(t)
	suspects := Classify(db, DefaultClassifierConfig())
	if len(suspects) == 0 {
		t.Fatal("classifier found nobody")
	}
	flagged := make(map[uint64][]string, len(suspects))
	for _, s := range suspects {
		flagged[s.UserID] = s.Flags
	}
	// Every caught cheater (low reward rate) and every uncaught heavy
	// cheater (high recent + spread) should be flagged.
	missed := 0
	cheaters := 0
	for i, u := range w.Users {
		if u.Class == synth.ClassCheater || u.Class == synth.ClassCaught {
			cheaters++
			if _, ok := flagged[uint64(i+1)]; !ok {
				missed++
			}
		}
	}
	if cheaters == 0 {
		t.Fatal("no cheaters in world")
	}
	recall := 1 - float64(missed)/float64(cheaters)
	if recall < 0.9 {
		t.Errorf("classifier recall on ground-truth cheaters = %.2f, want >= 0.9", recall)
	}
	// Sorted by flag count descending.
	for i := 1; i < len(suspects); i++ {
		if len(suspects[i].Flags) > len(suspects[i-1].Flags) {
			t.Fatal("suspects not sorted by flag count")
		}
	}
}

func TestClassifierPrecisionAgainstGroundTruth(t *testing.T) {
	w, db := loadWorld(t)
	suspects := Classify(db, DefaultClassifierConfig())
	conf := Evaluate(suspects, len(w.Users), func(id uint64) bool {
		c, ok := w.TrueClass(lbsn.UserID(id))
		return ok && c.Cheating()
	})
	if conf.Precision() < 0.6 {
		t.Errorf("precision = %.2f, want >= 0.6 (flags: %d TP, %d FP)",
			conf.Precision(), conf.TruePositives, conf.FalsePositives)
	}
	if conf.Recall() < 0.8 {
		t.Errorf("recall = %.2f, want >= 0.8", conf.Recall())
	}
	if f1 := conf.F1(); f1 <= 0 || f1 > 1 {
		t.Errorf("F1 = %.2f out of range", f1)
	}
}

func TestConfusionZeroSafe(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("empty confusion must score 0 without NaN")
	}
}

func TestEvaluateCounts(t *testing.T) {
	suspects := []Suspect{{UserID: 1}, {UserID: 2}}
	conf := Evaluate(suspects, 4, func(id uint64) bool { return id == 1 || id == 3 })
	if conf.TruePositives != 1 || conf.FalsePositives != 1 ||
		conf.FalseNegatives != 1 || conf.TrueNegatives != 1 {
		t.Errorf("confusion = %+v, want 1 each", conf)
	}
}

func TestMeanAbsDeviation(t *testing.T) {
	curve := []CurvePoint{{X: 10, AvgY: 5}, {X: 20, AvgY: 7}}
	mad := MeanAbsDeviation(curve, func(x int) float64 { return 6 })
	if math.Abs(mad-1.0) > 1e-9 {
		t.Errorf("MAD = %v, want 1.0", mad)
	}
	if !math.IsNaN(MeanAbsDeviation(nil, func(int) float64 { return 0 })) {
		t.Error("empty curve MAD should be NaN")
	}
}

func TestCurveBucketWidthDefault(t *testing.T) {
	db := store.New()
	db.UpsertUser(store.UserRow{ID: 1, TotalCheckins: 10, TotalBadges: 3})
	curve := BadgesVsTotal(db, 100, 0) // width 0 -> default 25
	if len(curve) != 1 || curve[0].Count != 1 {
		t.Errorf("curve = %+v", curve)
	}
}
