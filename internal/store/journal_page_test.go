package store

import (
	"testing"
	"time"

	"locheat/internal/simclock"
)

func pageTestAlert(i int) Alert {
	return Alert{
		Seq:      uint64(i + 1),
		Detector: "speed",
		UserID:   uint64(i%7 + 1),
		VenueID:  uint64(i + 100),
		At:       simclock.Epoch().Add(time.Duration(i) * time.Minute),
		Detail:   "paged",
	}
}

// openPagedJournal builds a journal with a tiny mirror and small
// segments so queries must page from disk, pre-loaded with n alerts.
func openPagedJournal(t *testing.T, dir string, mirror, n int) *AlertJournal {
	t.Helper()
	j, err := OpenAlertJournal(JournalConfig{
		Dir:          dir,
		SegmentBytes: 2 << 10, // ~14 records per segment
		MaxSegments:  64,
		MirrorAlerts: mirror,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Append(pageTestAlert(i)); err != nil {
			t.Fatal(err)
		}
	}
	return j
}

// TestJournalBoundedMirrorQuery checks that a journal whose mirror is
// far smaller than its retained history still answers every query the
// full-mirror journal would — totals, ordering, pagination and filters
// all served partly from disk.
func TestJournalBoundedMirrorQuery(t *testing.T) {
	const n = 200
	j := openPagedJournal(t, t.TempDir(), 16, n)
	defer j.Close()

	st := j.Stats()
	if st.Retained != n {
		t.Fatalf("retained %d, want %d", st.Retained, n)
	}
	if st.Mirrored > 16 {
		t.Fatalf("mirror holds %d, bound is 16", st.Mirrored)
	}

	// Unfiltered deep pagination: walk the whole history one page at a
	// time and check exact newest-first order.
	seen := 0
	for off := 0; off < n; off += 25 {
		page, total := j.Query(AlertQuery{Limit: 25, Offset: off})
		if total != n {
			t.Fatalf("total %d at offset %d, want %d", total, off, n)
		}
		for i, a := range page {
			want := pageTestAlert(n - 1 - off - i)
			if a.Seq != want.Seq {
				t.Fatalf("offset %d pos %d: seq %d, want %d", off, i, a.Seq, want.Seq)
			}
			seen++
		}
	}
	if seen != n {
		t.Fatalf("paged over %d alerts, want %d", seen, n)
	}

	// Filtered query reaching below the mirror.
	page, total := j.Query(AlertQuery{UserID: 3, Limit: 1000})
	wantTotal := 0
	for i := 0; i < n; i++ {
		if pageTestAlert(i).UserID == 3 {
			wantTotal++
		}
	}
	if total != wantTotal || len(page) != wantTotal {
		t.Fatalf("user filter: total=%d page=%d, want %d", total, len(page), wantTotal)
	}
	for i := 1; i < len(page); i++ {
		if page[i].At.After(page[i-1].At) {
			t.Fatalf("filtered page out of order at %d", i)
		}
	}

	// Time-bounded query: the segment index prunes, the answer is
	// still exact.
	since := pageTestAlert(50).At
	until := pageTestAlert(120).At // exclusive
	_, total = j.Query(AlertQuery{Since: since, Until: until})
	if total != 70 {
		t.Fatalf("time filter total %d, want 70", total)
	}
}

// TestJournalBoundedMirrorSurvivesReopen checks the paged path over
// replayed segments: a reopened journal with a small mirror serves
// pre-restart history from disk.
func TestJournalBoundedMirrorSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	const n = 120
	j := openPagedJournal(t, dir, 8, n)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenAlertJournal(JournalConfig{
		Dir:          dir,
		SegmentBytes: 2 << 10,
		MaxSegments:  64,
		MirrorAlerts: 8,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	page, total := j2.Query(AlertQuery{Limit: n})
	if total != n || len(page) != n {
		t.Fatalf("reopened: total=%d page=%d, want %d", total, len(page), n)
	}
	if page[0].Seq != uint64(n) || page[n-1].Seq != 1 {
		t.Fatalf("reopened order wrong: first seq %d last seq %d", page[0].Seq, page[n-1].Seq)
	}
}

// TestJournalReadFrom checks the replication cursor read: ascending
// batches, resume indexes, retention clamping.
func TestJournalReadFrom(t *testing.T) {
	const n = 100
	j := openPagedJournal(t, t.TempDir(), 10, n)
	defer j.Close()

	if j.OldestIndex() != 0 || j.NextIndex() != n {
		t.Fatalf("index space [%d,%d), want [0,%d)", j.OldestIndex(), j.NextIndex(), n)
	}
	var got []Alert
	cursor := uint64(0)
	for {
		batch, next := j.ReadFrom(cursor, 17)
		if len(batch) == 0 {
			if next != n {
				t.Fatalf("empty batch resumes at %d, want %d", next, n)
			}
			break
		}
		if next != cursor+uint64(len(batch)) {
			t.Fatalf("cursor %d + %d records resumes at %d", cursor, len(batch), next)
		}
		got = append(got, batch...)
		cursor = next
	}
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	for i, a := range got {
		if a.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d (ascending order broken)", i, a.Seq, i+1)
		}
	}

	// A cursor older than retention clamps forward instead of erroring.
	// (Binary records are ~4x smaller than the JSON originals; the
	// segment size is shrunk to match so retention still kicks in.)
	jr, err := OpenAlertJournal(JournalConfig{
		Dir:          t.TempDir(),
		SegmentBytes: 1 << 8,
		MaxSegments:  2,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	for i := 0; i < 60; i++ {
		if err := jr.Append(pageTestAlert(i)); err != nil {
			t.Fatal(err)
		}
	}
	if jr.OldestIndex() == 0 {
		t.Fatal("retention never dropped a segment; shrink the test segment size")
	}
	batch, next := jr.ReadFrom(0, 5)
	if len(batch) == 0 || next != jr.OldestIndex()+uint64(len(batch)) {
		t.Fatalf("clamped read: %d records, resume %d, oldest %d", len(batch), next, jr.OldestIndex())
	}
	if batch[0].Seq != got[0].Seq+uint64(jr.OldestIndex()) {
		t.Fatalf("clamped read starts at seq %d, oldest index %d", batch[0].Seq, jr.OldestIndex())
	}
}

// TestJournalAppendNotify checks the shipper wake-up hook fires per
// append, outside the journal lock (a notify that re-enters Stats must
// not deadlock).
func TestJournalAppendNotify(t *testing.T) {
	j := openPagedJournal(t, t.TempDir(), 0, 0)
	defer j.Close()
	fired := 0
	j.SetAppendNotify(func() {
		fired++
		_ = j.Stats() // re-entry must not deadlock
	})
	for i := 0; i < 5; i++ {
		if err := j.Append(pageTestAlert(i)); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 5 {
		t.Fatalf("notify fired %d times, want 5", fired)
	}
}
