// Tests for the v2+table (JournalFormatBinaryTable) segment format:
// round-trips, mixed-format dirs including all three generations,
// table reset at rotation, size win over plain v2, write-failure
// rollback invariants, and a fuzz pass over the tagged decoder.
package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"locheat/internal/wirecodec"
)

func TestJournalTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenAlertJournal(JournalConfig{Dir: dir, Format: JournalFormatBinaryTable, FsyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	t0 := journalEpoch()
	dets := []string{"speed", "rate-throttle", "cheater-code", "speed", "speed", "rate-throttle"}
	var want []Alert
	for i, det := range dets {
		a := mkAlert(uint64(i+1), uint64(i%3+1), det, t0.Add(time.Duration(i)*time.Second))
		want = append(want, a)
		if err := j.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	// Batch path through the same table.
	var batch []Alert
	for i := 0; i < 10; i++ {
		det := dets[i%len(dets)]
		a := mkAlert(uint64(100+i), uint64(i%5+1), det, t0.Add(time.Duration(60+i)*time.Second))
		batch = append(batch, a)
		want = append(want, a)
	}
	if n, err := j.AppendBatch(batch); err != nil || n != len(batch) {
		t.Fatalf("AppendBatch = %d, %v", n, err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenAlertJournal(JournalConfig{Dir: dir, Format: JournalFormatBinaryTable})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, _ := j2.ReadFrom(0, len(want)+10)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Extending a replayed v2+table segment must reuse its table, not
	// re-define: the decode side treats a duplicate define as corruption.
	extra := mkAlert(999, 1, "speed", t0.Add(time.Hour))
	if err := j2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenAlertJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if st := j3.Stats(); st.Replayed != len(want)+1 || st.ReplayErrors != 0 {
		t.Fatalf("after extend: replayed %d (want %d), replayErrors %d", st.Replayed, len(want)+1, st.ReplayErrors)
	}
}

// TestJournalThreeGenerationDir proves one dir holding v1, v2 and
// v2+table segments replays every record in order under one reader.
func TestJournalThreeGenerationDir(t *testing.T) {
	dir := t.TempDir()
	t0 := journalEpoch()
	seq := uint64(0)
	// Appends extend the active segment IN ITS OWN FORMAT, so simply
	// re-opening with a different configured format keeps writing the
	// old one; a tiny SegmentBytes forces rotation inside each fill so
	// every generation leaves at least one segment in its own format.
	fillRotating := func(format JournalFormat, n int) {
		t.Helper()
		j, err := OpenAlertJournal(JournalConfig{
			Dir: dir, Format: format, SegmentBytes: 256, MaxSegments: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			seq++
			det := []string{"speed", "cheater-code"}[int(seq)%2]
			if err := j.Append(mkAlert(seq, seq%4+1, det, t0.Add(time.Duration(seq)*time.Second))); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	fillRotating(JournalFormatJSON, 10)
	fillRotating(JournalFormatBinary, 10)
	fillRotating(JournalFormatBinaryTable, 10)

	formats := map[JournalFormat]bool{}
	for _, name := range segFiles(t, dir) {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		ft, err := sniffSegmentFormat(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		formats[ft] = true
	}
	for _, want := range []JournalFormat{JournalFormatJSON, JournalFormatBinary, JournalFormatBinaryTable} {
		if !formats[want] {
			t.Fatalf("dir never produced a format-%d segment; formats seen: %v", want, formats)
		}
	}

	j, err := OpenAlertJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got, _ := j.ReadFrom(0, int(seq)+10)
	if uint64(len(got)) != seq {
		t.Fatalf("replayed %d records, want %d", len(got), seq)
	}
	for i, a := range got {
		if a.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d; order lost across formats", i, a.Seq)
		}
	}
	if st := j.Stats(); st.ReplayErrors != 0 {
		t.Fatalf("replay errors across three generations: %d", st.ReplayErrors)
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestJournalTableResetOnRotation forces rotation and verifies every
// segment is self-contained: each re-defines its detector names.
func TestJournalTableResetOnRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenAlertJournal(JournalConfig{
		Dir: dir, Format: JournalFormatBinaryTable, SegmentBytes: 200, MaxSegments: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := journalEpoch()
	const n = 40
	for i := 1; i <= n; i++ {
		if err := j.Append(mkAlert(uint64(i), uint64(i%3+1), "speed", t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	if segs := j.Stats().Segments; segs < 3 {
		t.Fatalf("rotation never happened (%d segments)", segs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Every segment must decode standalone with a FRESH table.
	for _, name := range segFiles(t, dir) {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		ft, err := sniffSegmentFormat(f)
		if err != nil || ft != JournalFormatBinaryTable {
			t.Fatalf("%s: format %d err %v", name, ft, err)
		}
		count := 0
		_, damaged := decodeRecords(f, ft, nil, func(Alert) { count++ })
		f.Close()
		if damaged {
			t.Fatalf("%s does not decode standalone: its table leaks from a prior segment", name)
		}
	}
	j2, err := OpenAlertJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st := j2.Stats(); st.Replayed != n || st.ReplayErrors != 0 {
		t.Fatalf("replayed %d (want %d), errors %d", st.Replayed, n, st.ReplayErrors)
	}
}

// TestJournalTableSmallerThanBinary is the format's reason to exist:
// repeated detector names collapse to 1-2 byte indexes.
func TestJournalTableSmallerThanBinary(t *testing.T) {
	t0 := journalEpoch()
	size := func(format JournalFormat) int64 {
		dir := t.TempDir()
		j, err := OpenAlertJournal(JournalConfig{Dir: dir, Format: format, SegmentBytes: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 500; i++ {
			if err := j.Append(mkAlert(uint64(i), uint64(i%7+1), "suspicious-mobility-speed", t0.Add(time.Duration(i)*time.Second))); err != nil {
				t.Fatal(err)
			}
		}
		sz := j.Stats().ActiveSegmentBytes
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return sz
	}
	v2, v3 := size(JournalFormatBinary), size(JournalFormatBinaryTable)
	if v3 >= v2 {
		t.Fatalf("table segment (%d B) not smaller than plain binary (%d B)", v3, v2)
	}
	// The name is 25 bytes + 1 length byte per record under v2; under v3
	// it is a 1-byte tag + 1-byte index (tag also added to v2's absent
	// 0 bytes). Expect at least a 20%% win for this mix.
	if float64(v3) > 0.8*float64(v2) {
		t.Fatalf("table win too small: v3 %d B vs v2 %d B", v3, v2)
	}
}

// TestDecodeRecordsTableCorruption drives the tagged decoder through
// the corruption cases the fuzz target also covers, deterministically.
func TestDecodeRecordsTableCorruption(t *testing.T) {
	frame := func(payload []byte) []byte {
		var lp [4]byte
		binary.BigEndian.PutUint32(lp[:], uint32(len(payload)))
		return append(lp[:], payload...)
	}
	define := func(id uint64, name string) []byte {
		p := []byte{tableRecDefine}
		p = wirecodec.AppendUvarint(p, id)
		p = wirecodec.AppendString(p, name)
		return frame(p)
	}
	alert := func(id uint64) []byte {
		p := []byte{tableRecAlert}
		p = wirecodec.AppendUvarint(p, id)
		p = appendAlertBody(p, mkAlert(1, 2, "", journalEpoch()))
		return frame(p)
	}
	for _, tc := range []struct {
		name    string
		stream  []byte
		alerts  int
		damaged bool
	}{
		{"good", append(define(0, "speed"), alert(0)...), 1, false},
		{"dangling-index", append(define(0, "speed"), alert(1)...), 0, true},
		{"out-of-order-define", define(1, "speed"), 0, true},
		{"duplicate-define", append(define(0, "speed"), define(0, "speed")...), 0, true},
		{"unknown-tag", frame([]byte{0x7f, 0x00}), 0, true},
		{"empty-payload-rejected-by-length", frame(nil), 0, true},
		{"alert-before-any-define", alert(0), 0, true},
		{"trailing-garbage-after-alert", append(append(define(0, "s"), alert(0)...), 0xde, 0xad), 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := 0
			_, damaged := decodeRecords(bytes.NewReader(tc.stream), JournalFormatBinaryTable, nil, func(Alert) { got++ })
			if got != tc.alerts || damaged != tc.damaged {
				t.Fatalf("decoded %d alerts damaged=%v; want %d, %v", got, damaged, tc.alerts, tc.damaged)
			}
		})
	}
}

// FuzzDecodeRecordsTable shakes the tagged decoder with arbitrary
// bytes: it must never panic and never fabricate a detector name it
// was not given via a define record.
func FuzzDecodeRecordsTable(f *testing.F) {
	good := []byte{}
	{
		p := []byte{tableRecDefine}
		p = wirecodec.AppendUvarint(p, 0)
		p = wirecodec.AppendString(p, "speed")
		var lp [4]byte
		binary.BigEndian.PutUint32(lp[:], uint32(len(p)))
		good = append(append(good, lp[:]...), p...)
		p = []byte{tableRecAlert}
		p = wirecodec.AppendUvarint(p, 0)
		p = appendAlertBody(p, mkAlert(7, 3, "", journalEpoch()))
		binary.BigEndian.PutUint32(lp[:], uint32(len(p)))
		good = append(append(good, lp[:]...), p...)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, tableRecDefine})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		defined := map[string]bool{}
		probe := &detTable{}
		decodeRecords(bytes.NewReader(data), JournalFormatBinaryTable, probe, func(a Alert) {
			if !defined[a.Detector] {
				// The decoder resolves detectors via the table only, so
				// every decoded name must have entered through a define.
				found := false
				for _, n := range probe.names {
					if n == a.Detector {
						found = true
					}
				}
				if !found {
					t.Fatalf("decoder produced detector %q with no define record", a.Detector)
				}
				defined[a.Detector] = true
			}
		})
	})
}
