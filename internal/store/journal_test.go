package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func journalEpoch() time.Time {
	return time.Date(2010, 8, 1, 8, 0, 0, 0, time.UTC)
}

func fillJournal(t *testing.T, j *AlertJournal, n int) {
	t.Helper()
	t0 := journalEpoch()
	for i := 1; i <= n; i++ {
		if err := j.Append(mkAlert(uint64(i), uint64(i%3+1), "speed", t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenAlertJournal(JournalConfig{Dir: dir, FsyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	fillJournal(t, j, 100)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the full history must come back in order.
	j2, err := OpenAlertJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	page, total := j2.Query(AlertQuery{})
	if total != 100 || len(page) != 100 {
		t.Fatalf("replayed %d/%d, want 100", total, len(page))
	}
	if page[0].Seq != 100 || page[99].Seq != 1 {
		t.Fatalf("replay order wrong: %d..%d", page[0].Seq, page[99].Seq)
	}
	if page[0].Detail != "alert 100" || page[0].UserID != 100%3+1 {
		t.Fatalf("replayed record corrupted: %+v", page[0])
	}
	st := j2.Stats()
	if st.Kind != "journal" || st.Replayed != 100 || st.ReplayErrors != 0 {
		t.Fatalf("stats %+v", st)
	}

	// Appends after replay extend the same history.
	if err := j2.Append(mkAlert(101, 1, "speed", journalEpoch().Add(200*time.Second))); err != nil {
		t.Fatal(err)
	}
	if _, total := j2.Query(AlertQuery{}); total != 101 {
		t.Fatalf("post-replay append lost: total %d", total)
	}
}

func TestJournalRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation; retention 3 drops the oldest.
	j, err := OpenAlertJournal(JournalConfig{Dir: dir, SegmentBytes: 512, MaxSegments: 3, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillJournal(t, j, 200)
	st := j.Stats()
	if st.Segments > 3 {
		t.Fatalf("retention leaked: %d segments", st.Segments)
	}
	if st.Evicted == 0 {
		t.Fatal("no alerts evicted despite rotation past retention")
	}
	if st.Retained+int(st.Evicted) != 200 {
		t.Fatalf("retained %d + evicted %d != 200", st.Retained, st.Evicted)
	}
	// The retained window is the newest suffix.
	page, total := j.Query(AlertQuery{Limit: 1})
	if total != st.Retained || page[0].Seq != 200 {
		t.Fatalf("newest alert wrong: total %d seq %d", total, page[0].Seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// On-disk segment count matches retention.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			segs++
		}
	}
	if segs != st.Segments {
		t.Fatalf("disk has %d segments, stats say %d", segs, st.Segments)
	}

	// Replay after retention serves only the retained window.
	j2, err := OpenAlertJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, total := j2.Query(AlertQuery{}); total != st.Retained {
		t.Fatalf("replayed %d, want %d", total, st.Retained)
	}
}

// TestJournalTruncatedTailRecovered is the crash-recovery contract: a
// record torn mid-write (the crash signature) is tolerated and logged
// on replay, the good prefix survives, and the healed journal accepts
// new appends.
func TestJournalTruncatedTailRecovered(t *testing.T) {
	for _, cut := range []struct {
		name string
		chop int64 // bytes removed from the file end
	}{
		{"torn-body", 3},
		{"torn-length-prefix", 0}, // computed below: leave 2 bytes of the prefix
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			j, err := OpenAlertJournal(JournalConfig{Dir: dir, FsyncEvery: 1})
			if err != nil {
				t.Fatal(err)
			}
			fillJournal(t, j, 10)
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			seg := filepath.Join(dir, "alerts-00000001.seg")
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			chop := cut.chop
			if chop == 0 {
				// Reconstruct the last record's full length and cut into
				// its length prefix.
				f, err := os.Open(seg)
				if err != nil {
					t.Fatal(err)
				}
				if ft, err := sniffSegmentFormat(f); err != nil || ft != JournalFormatBinaryTable {
					t.Fatalf("default segment format %d, err %v", ft, err)
				}
				var sizes []int64
				var lenBuf [4]byte
				for {
					if _, err := f.Read(lenBuf[:]); err != nil {
						break
					}
					n := int64(binary.BigEndian.Uint32(lenBuf[:]))
					sizes = append(sizes, 4+n)
					if _, err := f.Seek(n, 1); err != nil {
						t.Fatal(err)
					}
				}
				f.Close()
				chop = sizes[len(sizes)-1] - 2 // keep 2 of the 4 prefix bytes
			}
			if err := os.Truncate(seg, info.Size()-chop); err != nil {
				t.Fatal(err)
			}

			var logged []string
			j2, err := OpenAlertJournal(JournalConfig{
				Dir:  dir,
				Logf: func(f string, a ...any) { logged = append(logged, f) },
			})
			if err != nil {
				t.Fatalf("truncated tail must not be fatal: %v", err)
			}
			defer j2.Close()
			page, total := j2.Query(AlertQuery{})
			if total != 9 {
				t.Fatalf("replayed %d alerts, want the 9 whole ones", total)
			}
			if page[0].Seq != 9 {
				t.Fatalf("newest surviving alert %d, want 9", page[0].Seq)
			}
			if len(logged) == 0 {
				t.Fatal("damaged tail was not logged")
			}
			if st := j2.Stats(); st.ReplayErrors != 1 {
				t.Fatalf("replay errors %d, want 1", st.ReplayErrors)
			}

			// The file was healed: appends extend a clean log that
			// replays in full.
			if err := j2.Append(mkAlert(11, 1, "speed", journalEpoch().Add(time.Hour))); err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			j3, err := OpenAlertJournal(JournalConfig{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer j3.Close()
			if _, total := j3.Query(AlertQuery{}); total != 10 {
				t.Fatalf("healed journal replayed %d, want 10", total)
			}
			if st := j3.Stats(); st.ReplayErrors != 0 {
				t.Fatalf("healed journal still reports replay errors: %+v", st)
			}
		})
	}
}

func TestJournalCorruptMiddleSegmentSkipsRemainder(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenAlertJournal(JournalConfig{Dir: dir, SegmentBytes: 256, MaxSegments: 16, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillJournal(t, j, 30)
	st := j.Stats()
	if st.Segments < 3 {
		t.Fatalf("test needs >= 3 segments, got %d", st.Segments)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the first byte of the FIRST segment: its records become
	// unreadable, but later segments must still replay.
	seg := filepath.Join(dir, "alerts-00000001.seg")
	f, err := os.OpenFile(seg, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenAlertJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("mid-journal corruption must not be fatal: %v", err)
	}
	defer j2.Close()
	_, total := j2.Query(AlertQuery{})
	if total == 0 || total >= 30 {
		t.Fatalf("want partial replay (later segments only), got %d", total)
	}
	if st := j2.Stats(); st.ReplayErrors != 1 {
		t.Fatalf("replay errors %d, want 1", st.ReplayErrors)
	}
}

func TestJournalQueryFilters(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenAlertJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	t0 := journalEpoch()
	for i := 1; i <= 20; i++ {
		det := "speed"
		if i%4 == 0 {
			det = "cheater-code"
		}
		if err := j.Append(mkAlert(uint64(i), uint64(i%2+1), det, t0.Add(time.Duration(i)*time.Minute))); err != nil {
			t.Fatal(err)
		}
	}
	if _, total := j.Query(AlertQuery{Detector: "cheater-code"}); total != 5 {
		t.Fatalf("detector filter: %d, want 5", total)
	}
	if _, total := j.Query(AlertQuery{UserID: 1}); total != 10 {
		t.Fatalf("user filter: %d, want 10", total)
	}
	page, total := j.Query(AlertQuery{Since: t0.Add(15 * time.Minute), Limit: 3, Offset: 1})
	if total != 6 || len(page) != 3 || page[0].Seq != 19 {
		t.Fatalf("combined query: total %d page %+v", total, page)
	}
}

func TestJournalIgnoresStrayFiles(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenAlertJournal(JournalConfig{Dir: dir, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillJournal(t, j, 5)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// An operator backup whose name extends the segment pattern must
	// not be treated as a segment (replayed, retention-counted, or
	// healed-by-truncation).
	seg := filepath.Join(dir, "alerts-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	stray := seg + ".bak"
	if err := os.WriteFile(stray, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenAlertJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, total := j2.Query(AlertQuery{}); total != 5 {
		t.Fatalf("stray file changed replay: %d alerts, want 5", total)
	}
	if st := j2.Stats(); st.Segments != 1 {
		t.Fatalf("stray file counted as segment: %d", st.Segments)
	}
	if _, err := os.Stat(stray); err != nil {
		t.Fatalf("stray file touched: %v", err)
	}
}

func TestJournalEmptyDirAndBadDir(t *testing.T) {
	if _, err := OpenAlertJournal(JournalConfig{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	dir := t.TempDir()
	j, err := OpenAlertJournal(JournalConfig{Dir: filepath.Join(dir, "nested", "deep")})
	if err != nil {
		t.Fatal(err)
	}
	if page, total := j.Query(AlertQuery{}); total != 0 || page != nil {
		t.Fatalf("fresh journal non-empty: %d", total)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := j.Append(Alert{}); err == nil {
		t.Fatal("append after close accepted")
	}
}
