package store

import "sort"

// Differential crawling (§3.2): "The crawling performance is an
// important design concern, because by repeatedly crawling data and
// comparing the differences between each set of crawling results, we
// can further investigate the behaviors of its users ... the venue's
// recent visitor list does not have a time stamp to indicate when a
// user visited this venue; but if we crawl the venues daily, then we
// will be able to determine how frequently a user checks into a
// venue." This file compares two crawl snapshots.

// MayorChange records a mayorship transfer between snapshots.
type MayorChange struct {
	VenueID  uint64 `json:"venueId"`
	OldMayor uint64 `json:"oldMayor"`
	NewMayor uint64 `json:"newMayor"`
}

// Diff is the delta between two crawl snapshots of the same site.
type Diff struct {
	NewUsers  []uint64 // user IDs present only in the newer crawl
	NewVenues []uint64 // venue IDs present only in the newer crawl

	// NewRelations are (user, venue) recent-list appearances that were
	// not in the old crawl: each is evidence of at least one check-in
	// in the interval.
	NewRelations []CheckinRow
	// LostRelations dropped off the capped recent lists.
	LostRelations []CheckinRow

	MayorChanges []MayorChange

	// CheckinDeltas is the per-user growth in the public total
	// check-in counter; negative deltas never occur on the real site
	// and indicate an inconsistent crawl.
	CheckinDeltas map[uint64]int
}

// NewAppearancesByUser tallies NewRelations per user — the paper's
// check-in frequency signal.
func (d Diff) NewAppearancesByUser() map[uint64]int {
	out := make(map[uint64]int)
	for _, rel := range d.NewRelations {
		out[rel.UserID]++
	}
	return out
}

// ComputeDiff compares an older and a newer snapshot.
func ComputeDiff(older, newer *DB) Diff {
	older.mu.RLock()
	defer older.mu.RUnlock()
	newer.mu.RLock()
	defer newer.mu.RUnlock()

	var d Diff
	d.CheckinDeltas = make(map[uint64]int)

	for id, nu := range newer.users {
		ou, ok := older.users[id]
		if !ok {
			d.NewUsers = append(d.NewUsers, id)
			if nu.TotalCheckins > 0 {
				d.CheckinDeltas[id] = nu.TotalCheckins
			}
			continue
		}
		if delta := nu.TotalCheckins - ou.TotalCheckins; delta != 0 {
			d.CheckinDeltas[id] = delta
		}
	}
	for id, nv := range newer.venues {
		ov, ok := older.venues[id]
		if !ok {
			d.NewVenues = append(d.NewVenues, id)
			if nv.MayorID != 0 {
				d.MayorChanges = append(d.MayorChanges, MayorChange{VenueID: id, NewMayor: nv.MayorID})
			}
			continue
		}
		if nv.MayorID != ov.MayorID {
			d.MayorChanges = append(d.MayorChanges, MayorChange{
				VenueID: id, OldMayor: ov.MayorID, NewMayor: nv.MayorID,
			})
		}
	}
	for rel := range newer.recents {
		if _, ok := older.recents[rel]; !ok {
			d.NewRelations = append(d.NewRelations, rel)
		}
	}
	for rel := range older.recents {
		if _, ok := newer.recents[rel]; !ok {
			d.LostRelations = append(d.LostRelations, rel)
		}
	}

	sort.Slice(d.NewUsers, func(i, j int) bool { return d.NewUsers[i] < d.NewUsers[j] })
	sort.Slice(d.NewVenues, func(i, j int) bool { return d.NewVenues[i] < d.NewVenues[j] })
	sortRelations(d.NewRelations)
	sortRelations(d.LostRelations)
	sort.Slice(d.MayorChanges, func(i, j int) bool { return d.MayorChanges[i].VenueID < d.MayorChanges[j].VenueID })
	return d
}

func sortRelations(rels []CheckinRow) {
	sort.Slice(rels, func(i, j int) bool {
		if rels[i].UserID != rels[j].UserID {
			return rels[i].UserID < rels[j].UserID
		}
		return rels[i].VenueID < rels[j].VenueID
	})
}

// Clone deep-copies the store — how an attacker keeps yesterday's
// snapshot while today's crawl overwrites the working set.
func (db *DB) Clone() *DB {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := New()
	for id, u := range db.users {
		out.users[id] = u
	}
	for id, v := range db.venues {
		out.venues[id] = v
	}
	for rel := range db.recents {
		out.recents[rel] = struct{}{}
	}
	out.derived = db.derived
	return out
}
