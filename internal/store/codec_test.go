package store

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"locheat/internal/wirecodec"
)

func codecAlert() Alert {
	return Alert{
		Seq:      981234,
		Detector: "speed",
		UserID:   42,
		VenueID:  4242,
		At:       time.Date(2011, 6, 20, 12, 0, 0, 500, time.UTC),
		Detail:   "SF→NY in 10m (implied 16000 km/h)",
	}
}

// TestAlertCodecEquivalence: the binary round trip must reproduce the
// same value the JSON round trip does — the two wire formats are
// interchangeable representations of one record.
func TestAlertCodecEquivalence(t *testing.T) {
	for _, a := range []Alert{
		codecAlert(),
		{},                       // zero value, zero time
		{Detail: "unicode ✓ 日本"}, // non-ASCII survives
	} {
		jb, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		var viaJSON Alert
		if err := json.Unmarshal(jb, &viaJSON); err != nil {
			t.Fatal(err)
		}

		d := wirecodec.NewDecoder(AppendAlert(nil, a))
		viaBin := ReadAlert(d)
		if err := d.Finish(); err != nil {
			t.Fatalf("binary round trip: %v", err)
		}
		if !reflect.DeepEqual(viaBin, viaJSON) {
			t.Fatalf("codecs disagree:\n json: %+v\n bin:  %+v", viaJSON, viaBin)
		}
	}
}

func TestQuarantineRecordCodecEquivalence(t *testing.T) {
	r := QuarantineRecord{
		UserID: 7,
		Since:  time.Date(2011, 6, 20, 10, 0, 0, 0, time.UTC),
		Until:  time.Date(2011, 6, 20, 11, 0, 0, 0, time.UTC),
		Reason: "5 alerts in 10m",
		Source: "policy",
	}
	jb, _ := json.Marshal(r)
	var viaJSON QuarantineRecord
	if err := json.Unmarshal(jb, &viaJSON); err != nil {
		t.Fatal(err)
	}
	d := wirecodec.NewDecoder(AppendQuarantineRecord(nil, r))
	viaBin := ReadQuarantineRecord(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaBin, viaJSON) {
		t.Fatalf("codecs disagree:\n json: %+v\n bin:  %+v", viaJSON, viaBin)
	}
}

// FuzzReadAlert: the journal-record decoder over arbitrary bytes must
// error or round-trip — and never panic (this is what faces a damaged
// segment tail).
func FuzzReadAlert(f *testing.F) {
	f.Add(AppendAlert(nil, codecAlert()))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, in []byte) {
		d := wirecodec.NewDecoder(in)
		a := ReadAlert(d)
		if d.Finish() != nil {
			return // malformed: rejected, not panicked — the contract
		}
		redone := AppendAlert(nil, a)
		d2 := wirecodec.NewDecoder(redone)
		b := ReadAlert(d2)
		if d2.Finish() != nil || !reflect.DeepEqual(a, b) {
			t.Fatalf("accepted input does not round-trip: %+v vs %+v", a, b)
		}
	})
}
