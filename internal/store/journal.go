// AlertJournal: the durable AlertStore. An append-only log split into
// segment files so retention is a file deletion, not a compaction:
//
//	<dir>/alerts-00000001.seg
//	<dir>/alerts-00000002.seg   <- active (appends go here)
//
// Each record is a 4-byte big-endian length prefix followed by the
// alert as JSON. Appends are buffered and fsynced in batches (every
// FsyncEvery records, plus on rotation, Flush and Close), trading a
// bounded tail-loss window for not paying an fsync per alert. On open
// the journal replays every retained segment into memory, so queries
// are served without touching disk and a restarted daemon still serves
// its pre-restart alerts. A truncated or corrupt tail — the signature
// of a crash mid-append — is tolerated: the good prefix is kept, the
// damage is logged and the file is truncated back to the last whole
// record so subsequent appends extend a clean log.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

const journalSegPattern = "alerts-%08d.seg"

// maxAlertRecordBytes bounds one record; a length prefix beyond it is
// corruption, not a record (guards replay against multi-GB allocations
// from garbage prefixes).
const maxAlertRecordBytes = 1 << 24

// JournalConfig parameterizes OpenAlertJournal. Zero values take
// defaults.
type JournalConfig struct {
	// Dir is the journal directory, created if missing. Required.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this size
	// (default 1 MiB).
	SegmentBytes int64
	// MaxSegments is the retention: once rotation would exceed it, the
	// oldest segment file is deleted (default 8). Total durable history
	// is therefore ~SegmentBytes*MaxSegments.
	MaxSegments int
	// FsyncEvery batches fsync: the file is synced after this many
	// unsynced appends (default 64; 1 = sync every append).
	FsyncEvery int
	// Logf receives replay warnings (truncated tail, unreadable
	// segment). Nil discards them.
	Logf func(format string, args ...any)
}

func (c JournalConfig) withDefaults() JournalConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 1 << 20
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = 8
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// journalSegment is one on-disk segment's bookkeeping. alerts counts
// the records it holds so retention can drop exactly its slice of the
// in-memory mirror.
type journalSegment struct {
	index  int
	path   string
	alerts int
}

// AlertJournal is the durable AlertStore. Safe for concurrent use.
type AlertJournal struct {
	cfg JournalConfig

	mu       sync.Mutex
	segments []journalSegment // oldest first; last is active
	active   *os.File
	activeSz int64
	unsynced int

	// recent mirrors every alert in the retained segments, oldest
	// first; queries never touch disk. Bounded by retention.
	recent []Alert

	appended     uint64
	evicted      uint64
	fsyncs       uint64
	replayed     int
	replayErrors int
	closed       bool
	// writeBroken latches when a failed append could not be healed by
	// truncation; further appends are refused rather than risking a
	// log that replays short.
	writeBroken bool
}

var _ AlertStore = (*AlertJournal)(nil)

// OpenAlertJournal opens (creating if needed) the journal in cfg.Dir
// and replays every retained segment into memory.
func OpenAlertJournal(cfg JournalConfig) (*AlertJournal, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("alert journal: empty dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("alert journal: %w", err)
	}
	j := &AlertJournal{cfg: cfg}
	if err := j.replay(); err != nil {
		return nil, err
	}
	if err := j.openActive(); err != nil {
		return nil, err
	}
	return j, nil
}

// replay loads every segment, oldest first, tolerating a damaged tail.
func (j *AlertJournal) replay() error {
	entries, err := os.ReadDir(j.cfg.Dir)
	if err != nil {
		return fmt.Errorf("alert journal: %w", err)
	}
	for _, e := range entries {
		var idx int
		// Round-trip the parse: Sscanf alone accepts trailing garbage
		// ("alerts-00000002.seg.bak"), and a stray file mistaken for a
		// segment would be replayed, retention-counted, and eventually
		// truncated or appended to.
		if n, _ := fmt.Sscanf(e.Name(), journalSegPattern, &idx); n != 1 ||
			fmt.Sprintf(journalSegPattern, idx) != e.Name() {
			continue
		}
		j.segments = append(j.segments, journalSegment{
			index: idx,
			path:  filepath.Join(j.cfg.Dir, e.Name()),
		})
	}
	sort.Slice(j.segments, func(a, b int) bool { return j.segments[a].index < j.segments[b].index })
	for i := range j.segments {
		last := i == len(j.segments)-1
		if err := j.replaySegment(&j.segments[i], last); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment reads one segment into the mirror. Damage in the final
// segment truncates the file back to the last whole record; damage in
// an earlier segment only skips that segment's unreadable remainder
// (the file is left alone — it is retention's job to age it out).
func (j *AlertJournal) replaySegment(seg *journalSegment, isLast bool) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("alert journal: replay %s: %w", seg.path, err)
	}
	defer f.Close()
	var off int64
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
			if err == io.EOF {
				return nil // clean end of segment
			}
			break // torn length prefix
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxAlertRecordBytes {
			break // garbage length prefix
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(f, buf); err != nil {
			break // torn record body
		}
		var a Alert
		if err := json.Unmarshal(buf, &a); err != nil {
			break // corrupt record
		}
		off += 4 + int64(n)
		j.recent = append(j.recent, a)
		seg.alerts++
		j.replayed++
	}
	// Damaged tail: keep the good prefix, log, and heal the file if it
	// is the one appends will extend.
	j.replayErrors++
	j.cfg.Logf("alert journal: %s: damaged record at offset %d; keeping %d alerts", seg.path, off, seg.alerts)
	if isLast {
		if err := os.Truncate(seg.path, off); err != nil {
			return fmt.Errorf("alert journal: truncate damaged tail of %s: %w", seg.path, err)
		}
	}
	return nil
}

// openActive positions the journal to append: reuse the newest segment
// if it has room, else start a fresh one.
func (j *AlertJournal) openActive() error {
	if n := len(j.segments); n > 0 {
		seg := j.segments[n-1]
		info, err := os.Stat(seg.path)
		if err != nil {
			return fmt.Errorf("alert journal: %w", err)
		}
		if info.Size() < j.cfg.SegmentBytes {
			f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("alert journal: %w", err)
			}
			j.active = f
			j.activeSz = info.Size()
			return nil
		}
	}
	return j.rotateLocked()
}

// rotateLocked closes the active segment (if any), opens the next one
// and applies retention. Caller holds j.mu (or is still constructing).
func (j *AlertJournal) rotateLocked() error {
	if j.active != nil {
		if err := j.syncLocked(); err != nil {
			return err
		}
		if err := j.active.Close(); err != nil {
			return fmt.Errorf("alert journal: %w", err)
		}
		j.active = nil
	}
	next := 1
	if n := len(j.segments); n > 0 {
		next = j.segments[n-1].index + 1
	}
	path := filepath.Join(j.cfg.Dir, fmt.Sprintf(journalSegPattern, next))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("alert journal: %w", err)
	}
	j.segments = append(j.segments, journalSegment{index: next, path: path})
	j.active = f
	j.activeSz = 0
	// Retention: drop oldest segments, and their alerts from the
	// mirror, until we are back at the cap.
	for len(j.segments) > j.cfg.MaxSegments {
		old := j.segments[0]
		if err := os.Remove(old.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("alert journal: retention: %w", err)
		}
		j.segments = j.segments[1:]
		j.recent = j.recent[old.alerts:]
		j.evicted += uint64(old.alerts)
	}
	return nil
}

func (j *AlertJournal) syncLocked() error {
	if j.unsynced == 0 || j.active == nil {
		return nil
	}
	if err := j.active.Sync(); err != nil {
		return fmt.Errorf("alert journal: fsync: %w", err)
	}
	j.unsynced = 0
	j.fsyncs++
	return nil
}

// Append implements AlertStore: length-prefixed JSON onto the active
// segment, fsync every FsyncEvery records, rotate past SegmentBytes.
func (j *AlertJournal) Append(a Alert) error {
	buf, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("alert journal: marshal: %w", err)
	}
	rec := make([]byte, 4+len(buf))
	binary.BigEndian.PutUint32(rec, uint32(len(buf)))
	copy(rec[4:], buf)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("alert journal: closed")
	}
	if j.writeBroken {
		return fmt.Errorf("alert journal: write path broken by earlier failed append")
	}
	if _, err := j.active.Write(rec); err != nil {
		// A short write leaves torn bytes at the tail; appending after
		// them would make the NEXT replay stop at the tear and truncate
		// every later record away. Heal by cutting back to the last
		// whole-record boundary (O_APPEND writes land at the new end).
		if terr := j.active.Truncate(j.activeSz); terr != nil {
			j.writeBroken = true
			return fmt.Errorf("alert journal: append: %w (and truncate failed: %v; journal write path disabled)", err, terr)
		}
		return fmt.Errorf("alert journal: append: %w", err)
	}
	j.activeSz += int64(len(rec))
	j.segments[len(j.segments)-1].alerts++
	j.recent = append(j.recent, a)
	j.appended++
	j.unsynced++
	if j.unsynced >= j.cfg.FsyncEvery {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	if j.activeSz >= j.cfg.SegmentBytes {
		return j.rotateLocked()
	}
	return nil
}

// Query implements AlertStore: newest first over the in-memory mirror.
// The mirror can hold tens of thousands of alerts at full retention
// and Append contends on the same mutex, so the unfiltered case (the
// common dashboard poll) skips the scan: total is the mirror length
// and the page is a reverse walk of the tail.
func (j *AlertJournal) Query(q AlertQuery) ([]Alert, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if q.UserID == 0 && q.Detector == "" && q.Since.IsZero() && q.Until.IsZero() {
		total := len(j.recent)
		n := total - q.Offset
		if n <= 0 {
			return nil, total
		}
		if q.Limit > 0 && n > q.Limit {
			n = q.Limit
		}
		page := make([]Alert, 0, n)
		for i := 0; i < n; i++ {
			page = append(page, j.recent[total-1-q.Offset-i])
		}
		return page, total
	}
	var page []Alert
	total := 0
	for i := len(j.recent) - 1; i >= 0; i-- {
		a := j.recent[i]
		if !q.match(a) {
			continue
		}
		total++
		if total <= q.Offset {
			continue
		}
		if q.Limit > 0 && len(page) >= q.Limit {
			continue // keep counting total past the page
		}
		page = append(page, a)
	}
	return page, total
}

// Stats implements AlertStore.
func (j *AlertJournal) Stats() AlertStoreStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return AlertStoreStats{
		Kind:               "journal",
		Appended:           j.appended,
		Retained:           len(j.recent),
		Evicted:            j.evicted,
		Segments:           len(j.segments),
		ActiveSegmentBytes: j.activeSz,
		Fsyncs:             j.fsyncs,
		Replayed:           j.replayed,
		ReplayErrors:       j.replayErrors,
	}
}

// Flush implements AlertStore: fsync any batched appends.
func (j *AlertJournal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// Close implements AlertStore: flush and close the active segment.
// Idempotent.
func (j *AlertJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.syncLocked(); err != nil {
		return err
	}
	if j.active != nil {
		if err := j.active.Close(); err != nil {
			return fmt.Errorf("alert journal: %w", err)
		}
		j.active = nil
	}
	return nil
}

// Dir returns the journal directory.
func (j *AlertJournal) Dir() string { return j.cfg.Dir }
