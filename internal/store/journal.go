// AlertJournal: the durable AlertStore. An append-only log split into
// segment files so retention is a file deletion, not a compaction:
//
//	<dir>/alerts-00000001.seg
//	<dir>/alerts-00000002.seg   <- active (appends go here)
//
// Each record is a 4-byte big-endian length prefix followed by the
// alert payload. The payload format is per segment:
//
//   - v1 (JournalFormatJSON): the alert as JSON, no file header — the
//     original format, byte-identical to what pre-v2 builds wrote;
//   - v2 (JournalFormatBinary): a 5-byte file header ("LCSG" magic +
//     format byte) then alerts in the internal/wirecodec binary layout
//     (store.AppendAlert) — ~4x smaller and an order of magnitude
//     cheaper to encode than the JSON path;
//   - v2+table (JournalFormatBinaryTable): v2 with a per-segment
//     string table for detector names. A record is either a define
//     (table index + name, written the first time a detector appears
//     in the segment) or an alert whose detector is a 1-byte table
//     index instead of the repeated string — detector names are drawn
//     from a handful of stages, so every record shaves the name's
//     length. The table is strictly per segment (reset at rotation),
//     so segments stay self-contained and retention deletes stay
//     trivial.
//
// The format byte travels with the segment, not the journal: a dir of
// v1 segments replays unchanged under a v2-capable reader, appends
// extend the active segment in ITS format, and only rotation adopts
// the configured format — so upgrading a deployment never rewrites or
// strands history. (v1 detection is sound because a v1 file begins
// with a length prefix whose first byte is always 0x00 — record sizes
// are capped well below 2^24 — which can never collide with the magic.)
//
// Appends are buffered and fsynced in batches (every FsyncEvery
// records, plus on rotation, Flush and Close), trading a bounded
// tail-loss window for not paying an fsync per alert.
//
// Every retained record has a stable *global index*: record 0 is the
// oldest record known at open and the index grows by one per append.
// The journal keeps a per-segment index (first global index, record
// count, min/max event time) so queries and the replication shipper
// can address records without a full in-memory copy:
//
//   - the in-memory mirror holds at most MirrorAlerts of the NEWEST
//     records (0 = everything, the original behavior). Queries that
//     reach below the mirror page the needed segments in from disk,
//     skipping segments whose [min,max] event-time range cannot match
//     a time-filtered query. Memory is bounded by the mirror setting,
//     not by retention.
//   - ReadFrom(idx, max) serves records in ascending global-index
//     order — the cursor read the cluster's journal replication tier
//     (internal/replica) streams segment appends with.
//
// On open the journal replays every retained segment (rebuilding the
// segment index), then trims the mirror to its bound. A truncated or
// corrupt tail — the signature of a crash mid-append — is tolerated:
// the good prefix is kept, the damage is logged and the file is
// truncated back to the last whole record so subsequent appends extend
// a clean log.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"locheat/internal/obs"
	"locheat/internal/wirecodec"
)

const journalSegPattern = "alerts-%08d.seg"

// maxAlertRecordBytes bounds one record; a length prefix beyond it is
// corruption, not a record (guards replay against multi-GB allocations
// from garbage prefixes).
const maxAlertRecordBytes = 1 << 24

// JournalFormat identifies a segment's record payload encoding.
type JournalFormat byte

const (
	// JournalFormatJSON is the v1 format: headerless segment files of
	// length-prefixed JSON alerts.
	JournalFormatJSON JournalFormat = 1
	// JournalFormatBinary is the v2 format: a segMagic+format header
	// then length-prefixed binary alerts (AppendAlert).
	JournalFormatBinary JournalFormat = 2
	// JournalFormatBinaryTable is v2 plus a per-segment detector-name
	// string table: each record payload is tagged as a table define or
	// an alert referencing a table index. The default for new segments.
	JournalFormatBinaryTable JournalFormat = 3
)

// Record tags inside a JournalFormatBinaryTable segment.
const (
	tableRecDefine = 0x00 // uvarint id (== current table size) + name
	tableRecAlert  = 0x01 // uvarint detector id + alert body sans name
)

// segMagic leads every v2+ segment file, followed by the format byte.
const segMagic = "LCSG"

// segHeaderLen returns the file-header size for a segment format.
func segHeaderLen(f JournalFormat) int64 {
	if f == JournalFormatJSON {
		return 0
	}
	return int64(len(segMagic)) + 1
}

// JournalConfig parameterizes OpenAlertJournal. Zero values take
// defaults.
type JournalConfig struct {
	// Dir is the journal directory, created if missing. Required.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this size
	// (default 1 MiB).
	SegmentBytes int64
	// MaxSegments is the retention: once rotation would exceed it, the
	// oldest segment file is deleted (default 8). Total durable history
	// is therefore ~SegmentBytes*MaxSegments.
	MaxSegments int
	// FsyncEvery batches fsync: the file is synced after this many
	// unsynced appends (default 64; 1 = sync every append).
	FsyncEvery int
	// MirrorAlerts bounds the in-memory mirror to the newest N records;
	// older records are served by paged segment reads off disk (0 =
	// mirror the full retained history, the original behavior).
	MirrorAlerts int
	// Format is the record encoding NEW segments are created with
	// (default JournalFormatBinaryTable). Existing segments keep their
	// own format — appends extend the active segment in its format, and
	// replay reads each segment by its header — so any mix of v1, v2
	// and v2+table segments in one dir works.
	Format JournalFormat
	// Logf receives replay warnings (truncated tail, unreadable
	// segment). Nil discards them.
	Logf func(format string, args ...any)
	// Obs registers the journal's telemetry: append/fsync latency
	// histograms plus read-through counters and gauges over the same
	// fields Stats() reports. Nil leaves the journal unobserved.
	Obs *obs.Registry
}

func (c JournalConfig) withDefaults() JournalConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 1 << 20
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = 8
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 64
	}
	if c.Format != JournalFormatJSON && c.Format != JournalFormatBinary &&
		c.Format != JournalFormatBinaryTable {
		c.Format = JournalFormatBinaryTable
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// journalSegment is one on-disk segment's index entry: where its
// records sit in the global index space, how many it holds, and the
// event-time range they span (for time-filtered query pruning).
type journalSegment struct {
	index  int
	path   string
	first  uint64 // global index of the segment's first record
	alerts int
	minAt  time.Time
	maxAt  time.Time
	// format is the segment's record encoding, read from its header at
	// replay (headerless = v1 JSON) or stamped at creation. 0 marks a
	// segment whose header names a format this build does not know:
	// its records are invisible and appends rotate past it.
	format JournalFormat
}

// end returns the exclusive global index past the segment's records.
func (s journalSegment) end() uint64 { return s.first + uint64(s.alerts) }

// observe folds one record's event time into the segment range.
func (s *journalSegment) observe(at time.Time) {
	if s.alerts == 1 || at.Before(s.minAt) {
		s.minAt = at
	}
	if s.alerts == 1 || at.After(s.maxAt) {
		s.maxAt = at
	}
}

// AlertJournal is the durable AlertStore. Safe for concurrent use.
type AlertJournal struct {
	cfg JournalConfig

	// epoch identifies one open of this journal (wall-clock nanos).
	// Replication uses it to detect a primary restart: global indexes
	// are only comparable within an epoch.
	epoch int64

	mu       sync.Mutex
	segments []journalSegment // oldest first; last is active
	active   *os.File
	activeSz int64
	unsynced int

	// activeNames/activeIDs are the ACTIVE segment's detector-name
	// table (JournalFormatBinaryTable only): names by id, and the
	// encode-side reverse map. Rebuilt from replay when an existing
	// v2+table segment is extended, reset on rotation.
	activeNames []string
	activeIDs   map[string]uint64

	// recent mirrors the newest records, oldest first; mirrorStart is
	// the global index of recent[0]. With MirrorAlerts == 0 the mirror
	// spans the full retained history.
	recent      []Alert
	mirrorStart uint64

	// notify is called (outside mu) after every successful append —
	// the replication shipper's wake-up.
	notify func()

	appended     uint64
	evicted      uint64
	fsyncs       uint64
	replayed     int
	replayErrors int
	readErrors   int
	closed       bool
	// writeBroken latches when a failed append could not be healed by
	// truncation; further appends are refused rather than risking a
	// log that replays short.
	writeBroken bool

	// replayDur is how long the open-time replay took; exposed as a
	// gauge. appendLat/fsyncLat are nil when JournalConfig.Obs is —
	// the nil checks keep the unobserved write path clock-free.
	replayDur time.Duration
	appendLat *obs.Histogram
	fsyncLat  *obs.Histogram
}

var _ AlertStore = (*AlertJournal)(nil)

// OpenAlertJournal opens (creating if needed) the journal in cfg.Dir
// and replays every retained segment, rebuilding the segment index.
func OpenAlertJournal(cfg JournalConfig) (*AlertJournal, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("alert journal: empty dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("alert journal: %w", err)
	}
	j := &AlertJournal{cfg: cfg, epoch: time.Now().UnixNano()}
	replayStart := time.Now()
	if err := j.replay(); err != nil {
		return nil, err
	}
	j.replayDur = time.Since(replayStart)
	if err := j.openActive(); err != nil {
		return nil, err
	}
	j.trimMirrorLocked()
	j.registerObs(cfg.Obs)
	return j, nil
}

// registerObs exposes the journal on reg: latency histograms for the
// two disk-touching operations plus read-through counters and gauges
// over the fields Stats() reports. No-op on a nil registry.
func (j *AlertJournal) registerObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	j.appendLat = reg.Histogram("locheat_journal_append_seconds",
		"wall time of one Append/AppendBatch call (framing, write, amortized fsync/rotate)",
		obs.Seconds)
	j.fsyncLat = reg.Histogram("locheat_journal_fsync_seconds",
		"wall time of one batched fsync", obs.Seconds)
	stat := func(read func(AlertStoreStats) uint64) func() uint64 {
		return func() uint64 { return read(j.Stats()) }
	}
	reg.CounterFunc("locheat_journal_appended_total",
		"alerts appended since open",
		stat(func(s AlertStoreStats) uint64 { return s.Appended }))
	reg.CounterFunc("locheat_journal_fsyncs_total",
		"fsync calls since open",
		stat(func(s AlertStoreStats) uint64 { return s.Fsyncs }))
	reg.CounterFunc("locheat_journal_evicted_total",
		"alerts aged out by segment retention",
		stat(func(s AlertStoreStats) uint64 { return s.Evicted }))
	reg.CounterFunc("locheat_journal_replayed_total",
		"alerts replayed at open",
		stat(func(s AlertStoreStats) uint64 { return uint64(s.Replayed) }))
	reg.GaugeFunc("locheat_journal_segments",
		"segment files on disk",
		func() float64 { return float64(j.Stats().Segments) })
	reg.GaugeFunc("locheat_journal_active_segment_bytes",
		"bytes in the active segment",
		func() float64 { return float64(j.Stats().ActiveSegmentBytes) })
	reg.GaugeFunc("locheat_journal_retained",
		"records retained across all segments",
		func() float64 { return float64(j.Stats().Retained) })
	reg.GaugeFunc("locheat_journal_replay_seconds",
		"duration of the open-time segment replay",
		func() float64 { return j.replayDur.Seconds() })
}

// WriteHealthy reports whether the journal can still accept appends:
// open, and not latched broken by an unhealable write failure. The
// daemon's /readyz reads it.
func (j *AlertJournal) WriteHealthy() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.closed && !j.writeBroken
}

// replay loads every segment, oldest first, tolerating a damaged tail.
func (j *AlertJournal) replay() error {
	entries, err := os.ReadDir(j.cfg.Dir)
	if err != nil {
		return fmt.Errorf("alert journal: %w", err)
	}
	for _, e := range entries {
		var idx int
		// Round-trip the parse: Sscanf alone accepts trailing garbage
		// ("alerts-00000002.seg.bak"), and a stray file mistaken for a
		// segment would be replayed, retention-counted, and eventually
		// truncated or appended to.
		if n, _ := fmt.Sscanf(e.Name(), journalSegPattern, &idx); n != 1 ||
			fmt.Sprintf(journalSegPattern, idx) != e.Name() {
			continue
		}
		j.segments = append(j.segments, journalSegment{
			index: idx,
			path:  filepath.Join(j.cfg.Dir, e.Name()),
		})
	}
	sort.Slice(j.segments, func(a, b int) bool { return j.segments[a].index < j.segments[b].index })
	var first uint64
	for i := range j.segments {
		j.segments[i].first = first
		last := i == len(j.segments)-1
		tbl := &detTable{}
		if err := j.replaySegment(&j.segments[i], last, tbl); err != nil {
			return err
		}
		if last && j.segments[i].format == JournalFormatBinaryTable {
			// Appends may extend this segment; carry its table forward.
			j.activeNames = tbl.names
			j.activeIDs = make(map[string]uint64, len(tbl.names))
			for id, name := range tbl.names {
				j.activeIDs[name] = uint64(id)
			}
		}
		first = j.segments[i].end()
	}
	return nil
}

// sniffSegmentFormat reads a segment file's format from its header and
// leaves f positioned at the first record. Headerless files (including
// files shorter than a header) are v1 JSON; a recognized magic with an
// unknown format byte returns format 0 — readable by a future build,
// invisible to this one.
func sniffSegmentFormat(f *os.File) (JournalFormat, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			_, serr := f.Seek(0, io.SeekStart)
			return JournalFormatJSON, serr
		}
		return 0, err
	}
	if string(hdr[:4]) != segMagic {
		_, err := f.Seek(0, io.SeekStart)
		return JournalFormatJSON, err
	}
	switch ft := JournalFormat(hdr[4]); ft {
	case JournalFormatBinary, JournalFormatBinaryTable:
		return ft, nil
	default:
		return 0, nil
	}
}

// replaySegment reads one segment into the mirror (and its index
// entry). Damage in the final segment truncates the file back to the
// last whole record; damage in an earlier segment only skips that
// segment's unreadable remainder (the file is left alone — it is
// retention's job to age it out).
func (j *AlertJournal) replaySegment(seg *journalSegment, isLast bool, tbl *detTable) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("alert journal: replay %s: %w", seg.path, err)
	}
	defer f.Close()
	seg.format, err = sniffSegmentFormat(f)
	if err != nil {
		return fmt.Errorf("alert journal: replay %s: %w", seg.path, err)
	}
	if seg.format == 0 {
		// A future format. Leave the file alone — its records are simply
		// not served by this build — and let openActive rotate past it.
		j.replayErrors++
		j.cfg.Logf("alert journal: %s: unknown segment format; its records are skipped", seg.path)
		return nil
	}
	off, damaged := decodeRecords(f, seg.format, tbl, func(a Alert) {
		j.recent = append(j.recent, a)
		seg.alerts++
		seg.observe(a.At)
		j.replayed++
	})
	if !damaged {
		return nil
	}
	// Damaged tail: keep the good prefix, log, and heal the file if it
	// is the one appends will extend.
	j.replayErrors++
	j.cfg.Logf("alert journal: %s: damaged record at offset %d; keeping %d alerts", seg.path, off, seg.alerts)
	if isLast {
		if err := os.Truncate(seg.path, segHeaderLen(seg.format)+off); err != nil {
			return fmt.Errorf("alert journal: truncate damaged tail of %s: %w", seg.path, err)
		}
	}
	return nil
}

// detTable is a v2+table segment's decode-side detector-name table,
// built up from define records as the segment streams by.
type detTable struct{ names []string }

// decodeRecords streams length-prefixed records from r (already
// positioned past any segment header), decoding payloads per format
// and calling fn per good alert. tbl carries the detector-name table
// across records of a JournalFormatBinaryTable segment (nil gets a
// fresh one); other formats ignore it. It returns the byte offset past
// the last whole record, relative to the first record, and whether the
// stream ended in damage (anything but clean EOF on a record
// boundary).
func decodeRecords(r io.Reader, format JournalFormat, tbl *detTable, fn func(Alert)) (off int64, damaged bool) {
	if tbl == nil {
		tbl = &detTable{}
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return off, err != io.EOF
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxAlertRecordBytes {
			return off, true // garbage length prefix
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return off, true // torn record body
		}
		var a Alert
		switch format {
		case JournalFormatBinary:
			d := wirecodec.NewDecoder(buf)
			a = ReadAlert(d)
			if d.Finish() != nil {
				return off, true // corrupt record
			}
		case JournalFormatBinaryTable:
			d := wirecodec.NewDecoder(buf)
			switch tag := d.Byte(); tag {
			case tableRecDefine:
				id := d.Uvarint()
				name := d.String()
				// Defines are strictly sequential; anything else is
				// corruption, not a tolerable quirk.
				if d.Finish() != nil || id != uint64(len(tbl.names)) {
					return off, true
				}
				tbl.names = append(tbl.names, name)
				off += 4 + int64(n)
				continue // a define is not an alert
			case tableRecAlert:
				id := d.Uvarint()
				a = readAlertBody(d)
				if d.Finish() != nil || id >= uint64(len(tbl.names)) {
					return off, true // corrupt record or dangling index
				}
				a.Detector = tbl.names[id]
			default:
				return off, true // unknown record tag
			}
		default:
			if err := json.Unmarshal(buf, &a); err != nil {
				return off, true // corrupt record
			}
		}
		off += 4 + int64(n)
		fn(a)
	}
}

// openActive positions the journal to append: reuse the newest segment
// if it has room (appends continue in that segment's own format, so a
// pre-upgrade v1 tail keeps its JSON records), else start a fresh one
// in the configured format. A newest segment in a format this build
// cannot write is never extended — rotate past it.
func (j *AlertJournal) openActive() error {
	if n := len(j.segments); n > 0 {
		seg := j.segments[n-1]
		info, err := os.Stat(seg.path)
		if err != nil {
			return fmt.Errorf("alert journal: %w", err)
		}
		if info.Size() < j.cfg.SegmentBytes && seg.format != 0 {
			f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("alert journal: %w", err)
			}
			j.active = f
			j.activeSz = info.Size()
			return nil
		}
	}
	return j.rotateLocked()
}

// rotateLocked closes the active segment (if any), opens the next one
// and applies retention. Caller holds j.mu (or is still constructing).
func (j *AlertJournal) rotateLocked() error {
	if j.active != nil {
		if err := j.syncLocked(); err != nil {
			return err
		}
		if err := j.active.Close(); err != nil {
			return fmt.Errorf("alert journal: %w", err)
		}
		j.active = nil
	}
	next := 1
	var first uint64
	if n := len(j.segments); n > 0 {
		next = j.segments[n-1].index + 1
		first = j.segments[n-1].end()
	}
	path := filepath.Join(j.cfg.Dir, fmt.Sprintf(journalSegPattern, next))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("alert journal: %w", err)
	}
	j.activeSz = 0
	if hdr := segHeaderLen(j.cfg.Format); hdr > 0 {
		if _, err := f.Write(append([]byte(segMagic), byte(j.cfg.Format))); err != nil {
			f.Close()
			return fmt.Errorf("alert journal: segment header: %w", err)
		}
		j.activeSz = hdr
	}
	j.segments = append(j.segments, journalSegment{index: next, path: path, first: first, format: j.cfg.Format})
	j.active = f
	// The detector-name table is per segment: a fresh segment starts
	// empty and re-defines names on first use.
	j.activeNames = j.activeNames[:0]
	clear(j.activeIDs)
	// Retention: drop oldest segments, and any slice of the mirror they
	// still cover, until we are back at the cap.
	for len(j.segments) > j.cfg.MaxSegments {
		old := j.segments[0]
		if err := os.Remove(old.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("alert journal: retention: %w", err)
		}
		j.segments = j.segments[1:]
		if old.end() > j.mirrorStart {
			drop := old.end() - j.mirrorStart
			j.recent = j.recent[drop:]
			j.mirrorStart = old.end()
		}
		j.evicted += uint64(old.alerts)
	}
	return nil
}

// trimMirrorLocked enforces the MirrorAlerts bound. Caller holds j.mu
// (or is still constructing).
func (j *AlertJournal) trimMirrorLocked() {
	if j.cfg.MirrorAlerts <= 0 {
		return
	}
	if k := len(j.recent) - j.cfg.MirrorAlerts; k > 0 {
		j.recent = j.recent[k:]
		j.mirrorStart += uint64(k)
	}
}

func (j *AlertJournal) syncLocked() error {
	if j.unsynced == 0 || j.active == nil {
		return nil
	}
	var start time.Time
	if j.fsyncLat != nil {
		start = time.Now()
	}
	err := j.active.Sync()
	j.fsyncLat.ObserveSince(start)
	if err != nil {
		return fmt.Errorf("alert journal: fsync: %w", err)
	}
	j.unsynced = 0
	j.fsyncs++
	return nil
}

// frameAlertLocked appends one length-prefixed record for a onto buf
// in format. For JournalFormatBinaryTable a detector name not yet in
// the active table gets a define record first (registered in
// activeNames/activeIDs as a side effect); if the framed bytes then
// fail to reach disk the caller must undo those registrations with
// rollbackTableLocked, or the name would be "defined" in memory but
// absent from the file. Caller holds j.mu.
func (j *AlertJournal) frameAlertLocked(buf []byte, format JournalFormat, a Alert) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	switch format {
	case JournalFormatBinary:
		buf = AppendAlert(buf, a)
	case JournalFormatBinaryTable:
		id, ok := j.activeIDs[a.Detector]
		if !ok {
			id = uint64(len(j.activeNames))
			buf = append(buf, tableRecDefine)
			buf = wirecodec.AppendUvarint(buf, id)
			buf = wirecodec.AppendString(buf, a.Detector)
			binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
			if j.activeIDs == nil {
				j.activeIDs = make(map[string]uint64)
			}
			j.activeIDs[a.Detector] = id
			j.activeNames = append(j.activeNames, a.Detector)
			start = len(buf)
			buf = append(buf, 0, 0, 0, 0)
		}
		buf = append(buf, tableRecAlert)
		buf = wirecodec.AppendUvarint(buf, id)
		buf = appendAlertBody(buf, a)
	default:
		jb, err := json.Marshal(a)
		if err != nil {
			return buf[:start], fmt.Errorf("alert journal: marshal: %w", err)
		}
		buf = append(buf, jb...)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf, nil
}

// rollbackTableLocked undoes detector-name registrations past mark:
// the defines framed for a failed write never became durable, so the
// next use of those names must re-define them. Caller holds j.mu.
func (j *AlertJournal) rollbackTableLocked(mark int) {
	for _, name := range j.activeNames[mark:] {
		delete(j.activeIDs, name)
	}
	j.activeNames = j.activeNames[:mark]
}

// Append implements AlertStore: one length-prefixed record onto the
// active segment in its format, fsync every FsyncEvery records, rotate
// past SegmentBytes.
func (j *AlertJournal) Append(a Alert) error {
	var start time.Time
	if j.appendLat != nil {
		start = time.Now()
	}
	err := j.append(a)
	j.appendLat.ObserveSince(start)
	if err == nil {
		j.mu.Lock()
		fn := j.notify
		j.mu.Unlock()
		if fn != nil {
			fn()
		}
	}
	return err
}

// AppendBatch appends alerts as one framed write per segment — the
// replication apply path's bulk entry point, collapsing a batch's
// per-record write syscalls into one. Returns how many records were
// durably written (all of them unless an error cuts the batch short);
// the fsync cadence counts the whole batch. The notify hook fires once
// per batch.
func (j *AlertJournal) AppendBatch(alerts []Alert) (int, error) {
	if len(alerts) == 0 {
		return 0, nil
	}
	var start time.Time
	if j.appendLat != nil {
		start = time.Now()
	}
	n, err := j.appendBatch(alerts)
	j.appendLat.ObserveSince(start)
	if n > 0 {
		j.mu.Lock()
		fn := j.notify
		j.mu.Unlock()
		if fn != nil {
			fn()
		}
	}
	return n, err
}

func (j *AlertJournal) appendBatch(alerts []Alert) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("alert journal: closed")
	}
	if j.writeBroken {
		return 0, fmt.Errorf("alert journal: write path broken by earlier failed append")
	}
	buf := wirecodec.GetBuffer()
	defer wirecodec.PutBuffer(buf)
	done := 0
	for done < len(alerts) {
		// Frame records until the active segment would fill, then write
		// the run with ONE syscall and rotate if needed. The first
		// record of a run is always admitted — the same write-then-
		// rotate-on-crossing semantics as the single-record Append, so
		// a pathological SegmentBytes can never refuse every record and
		// rotate forever.
		buf.B = buf.B[:0]
		seg := &j.segments[len(j.segments)-1]
		tblMark := len(j.activeNames)
		run := 0
		for done+run < len(alerts) && (run == 0 || j.activeSz+int64(len(buf.B)) < j.cfg.SegmentBytes) {
			var err error
			buf.B, err = j.frameAlertLocked(buf.B, seg.format, alerts[done+run])
			if err != nil {
				j.rollbackTableLocked(tblMark)
				return done, err
			}
			run++
		}
		if _, err := j.active.Write(buf.B); err != nil {
			// Same heal as append: cut back to the last whole-record
			// boundary so the tail stays clean.
			j.rollbackTableLocked(tblMark)
			if terr := j.active.Truncate(j.activeSz); terr != nil {
				j.writeBroken = true
				return done, fmt.Errorf("alert journal: append batch: %w (and truncate failed: %v; journal write path disabled)", err, terr)
			}
			return done, fmt.Errorf("alert journal: append batch: %w", err)
		}
		j.activeSz += int64(len(buf.B))
		for i := 0; i < run; i++ {
			seg.alerts++
			seg.observe(alerts[done+i].At)
			j.recent = append(j.recent, alerts[done+i])
		}
		j.trimMirrorLocked()
		j.appended += uint64(run)
		j.unsynced += run
		done += run
		if j.unsynced >= j.cfg.FsyncEvery {
			if err := j.syncLocked(); err != nil {
				return done, err
			}
		}
		if j.activeSz >= j.cfg.SegmentBytes {
			if err := j.rotateLocked(); err != nil {
				return done, err
			}
		}
	}
	return done, nil
}

func (j *AlertJournal) append(a Alert) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("alert journal: closed")
	}
	if j.writeBroken {
		return fmt.Errorf("alert journal: write path broken by earlier failed append")
	}
	// The record is framed in a pooled buffer (reserve the length
	// prefix, encode in place, backfill) so the steady-state append
	// allocates nothing. Encoding happens under the lock because the
	// format belongs to the ACTIVE segment, which rotation changes.
	buf := wirecodec.GetBuffer()
	defer wirecodec.PutBuffer(buf)
	tblMark := len(j.activeNames)
	var err error
	buf.B, err = j.frameAlertLocked(buf.B[:0], j.segments[len(j.segments)-1].format, a)
	if err != nil {
		j.rollbackTableLocked(tblMark)
		return err
	}
	if _, err := j.active.Write(buf.B); err != nil {
		// A short write leaves torn bytes at the tail; appending after
		// them would make the NEXT replay stop at the tear and truncate
		// every later record away. Heal by cutting back to the last
		// whole-record boundary (O_APPEND writes land at the new end).
		j.rollbackTableLocked(tblMark)
		if terr := j.active.Truncate(j.activeSz); terr != nil {
			j.writeBroken = true
			return fmt.Errorf("alert journal: append: %w (and truncate failed: %v; journal write path disabled)", err, terr)
		}
		return fmt.Errorf("alert journal: append: %w", err)
	}
	j.activeSz += int64(len(buf.B))
	seg := &j.segments[len(j.segments)-1]
	seg.alerts++
	seg.observe(a.At)
	j.recent = append(j.recent, a)
	j.trimMirrorLocked()
	j.appended++
	j.unsynced++
	if j.unsynced >= j.cfg.FsyncEvery {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	if j.activeSz >= j.cfg.SegmentBytes {
		return j.rotateLocked()
	}
	return nil
}

// SetAppendNotify installs fn to run (outside the journal lock) after
// every successful append — the replication shipper's wake-up. Nil
// disables. Install before traffic starts.
func (j *AlertJournal) SetAppendNotify(fn func()) {
	j.mu.Lock()
	j.notify = fn
	j.mu.Unlock()
}

// Epoch identifies this open of the journal (wall-clock nanos at
// OpenAlertJournal). Global record indexes are only comparable between
// reader and writer within one epoch.
func (j *AlertJournal) Epoch() int64 { return j.epoch }

func (j *AlertJournal) nextIndexLocked() uint64 {
	if len(j.segments) == 0 {
		return 0
	}
	return j.segments[len(j.segments)-1].end()
}

func (j *AlertJournal) oldestIndexLocked() uint64 {
	if len(j.segments) == 0 {
		return 0
	}
	return j.segments[0].first
}

// NextIndex returns the global index the next append will receive.
func (j *AlertJournal) NextIndex() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextIndexLocked()
}

// OldestIndex returns the global index of the oldest retained record.
func (j *AlertJournal) OldestIndex() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.oldestIndexLocked()
}

// loadSegmentLocked reads one segment's records off disk, oldest
// first. Damage yields the good prefix (replay already healed the
// active tail; an older segment's tear was logged at open). Caller
// holds j.mu.
func (j *AlertJournal) loadSegmentLocked(seg journalSegment) []Alert {
	f, err := os.Open(seg.path)
	if err != nil {
		j.readErrors++
		j.cfg.Logf("alert journal: page read %s: %v", seg.path, err)
		return nil
	}
	defer f.Close()
	if _, err := f.Seek(segHeaderLen(seg.format), io.SeekStart); err != nil {
		j.readErrors++
		j.cfg.Logf("alert journal: page read %s: %v", seg.path, err)
		return nil
	}
	out := make([]Alert, 0, seg.alerts)
	decodeRecords(f, seg.format, nil, func(a Alert) { out = append(out, a) })
	if len(out) > seg.alerts {
		out = out[:seg.alerts] // records past the indexed count (concurrent append) stay invisible
	}
	return out
}

// recordsLocked returns segment seg's records [from, to) in global
// index terms, serving from the mirror when covered and from disk
// otherwise. Caller holds j.mu and guarantees seg covers the range.
func (j *AlertJournal) recordsLocked(seg journalSegment, from, to uint64) []Alert {
	if from >= j.mirrorStart {
		return j.recent[from-j.mirrorStart : to-j.mirrorStart]
	}
	loaded := j.loadSegmentLocked(seg)
	lo, hi := from-seg.first, to-seg.first
	if hi > uint64(len(loaded)) {
		hi = uint64(len(loaded))
	}
	if lo >= hi {
		return nil
	}
	return loaded[lo:hi]
}

// ReadFrom returns up to max records starting at global index idx in
// ascending order, plus the index to resume from. An idx older than
// the oldest retained record is clamped forward (the gap is retention,
// not an error); an idx at or past the end returns an empty batch.
// This is the replication shipper's cursor read.
func (j *AlertJournal) ReadFrom(idx uint64, max int) ([]Alert, uint64) {
	return j.ReadFromInto(nil, idx, max)
}

// ReadFromInto is ReadFrom appending into the caller's dst slice
// (reset first), so a steady-state shipper reuses one batch buffer
// across passes instead of allocating per read. Records are copied
// into dst; the result never aliases journal internals.
func (j *AlertJournal) ReadFromInto(dst []Alert, idx uint64, max int) ([]Alert, uint64) {
	if max <= 0 {
		max = 256
	}
	out := dst[:0]
	j.mu.Lock()
	defer j.mu.Unlock()
	next := j.nextIndexLocked()
	if idx < j.oldestIndexLocked() {
		idx = j.oldestIndexLocked()
	}
	if idx >= next {
		return out, next
	}
	end := idx + uint64(max)
	if end > next {
		end = next
	}
	for _, seg := range j.segments {
		if seg.end() <= idx {
			continue
		}
		if seg.first >= end {
			break
		}
		lo, hi := idx, end
		if lo < seg.first {
			lo = seg.first
		}
		if hi > seg.end() {
			hi = seg.end()
		}
		out = append(out, j.recordsLocked(seg, lo, hi)...)
	}
	return out, idx + uint64(len(out))
}

// Query implements AlertStore: newest first over the retained history.
// The mirror serves the newest records from memory; queries that reach
// deeper page older segments in from disk, pruned by each segment's
// event-time range when the query is time-bounded. The unfiltered case
// (the common dashboard poll) takes a direct slice walk: total is the
// retained count and the page is a reverse index range.
func (j *AlertJournal) Query(q AlertQuery) ([]Alert, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if q.UserID == 0 && q.Detector == "" && q.Since.IsZero() && q.Until.IsZero() {
		oldest, next := j.oldestIndexLocked(), j.nextIndexLocked()
		total := int(next - oldest)
		n := total - q.Offset
		if n <= 0 {
			return nil, total
		}
		if q.Limit > 0 && n > q.Limit {
			n = q.Limit
		}
		// Page covers global indexes [hi-n, hi), newest first.
		hi := next - uint64(q.Offset)
		page := make([]Alert, 0, n)
		for si := len(j.segments) - 1; si >= 0 && len(page) < n; si-- {
			seg := j.segments[si]
			if seg.first >= hi {
				continue
			}
			to := hi
			if to > seg.end() {
				to = seg.end()
			}
			from := seg.first
			if need := n - len(page); to-from > uint64(need) {
				from = to - uint64(need)
			}
			recs := j.recordsLocked(seg, from, to)
			for i := len(recs) - 1; i >= 0; i-- {
				page = append(page, recs[i])
			}
		}
		return page, total
	}

	var page []Alert
	total := 0
	scan := func(a Alert) {
		if !q.match(a) {
			return
		}
		total++
		if total <= q.Offset {
			return
		}
		if q.Limit > 0 && len(page) >= q.Limit {
			return // keep counting total past the page
		}
		page = append(page, a)
	}
	// Mirror first (newest records), newest first.
	for i := len(j.recent) - 1; i >= 0; i-- {
		scan(j.recent[i])
	}
	// Then older segments off disk, newest first, pruning by the
	// segment's event-time range when the query is time-bounded.
	for si := len(j.segments) - 1; si >= 0; si-- {
		seg := j.segments[si]
		if seg.end() <= j.mirrorStart {
			if seg.alerts == 0 {
				continue
			}
			if !q.Since.IsZero() && seg.maxAt.Before(q.Since) {
				continue
			}
			if !q.Until.IsZero() && !seg.minAt.Before(q.Until) {
				continue
			}
			recs := j.loadSegmentLocked(seg)
			for i := len(recs) - 1; i >= 0; i-- {
				scan(recs[i])
			}
			continue
		}
		if seg.first >= j.mirrorStart {
			continue // wholly mirrored, already scanned
		}
		// Straddles the mirror boundary: only the un-mirrored prefix.
		recs := j.recordsLocked(seg, seg.first, j.mirrorStart)
		for i := len(recs) - 1; i >= 0; i-- {
			scan(recs[i])
		}
	}
	return page, total
}

// Stats implements AlertStore.
func (j *AlertJournal) Stats() AlertStoreStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return AlertStoreStats{
		Kind:               "journal",
		Appended:           j.appended,
		Retained:           int(j.nextIndexLocked() - j.oldestIndexLocked()),
		Mirrored:           len(j.recent),
		Evicted:            j.evicted,
		Segments:           len(j.segments),
		ActiveSegmentBytes: j.activeSz,
		Fsyncs:             j.fsyncs,
		Replayed:           j.replayed,
		ReplayErrors:       j.replayErrors,
		ReadErrors:         j.readErrors,
	}
}

// Flush implements AlertStore: fsync any batched appends.
func (j *AlertJournal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// Close implements AlertStore: flush and close the active segment.
// Idempotent.
func (j *AlertJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.syncLocked(); err != nil {
		return err
	}
	if j.active != nil {
		if err := j.active.Close(); err != nil {
			return fmt.Errorf("alert journal: %w", err)
		}
		j.active = nil
	}
	return nil
}

// Dir returns the journal directory.
func (j *AlertJournal) Dir() string { return j.cfg.Dir }
