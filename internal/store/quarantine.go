// Quarantine snapshotting. Quarantine is the §2.3 access-control state
// the detection loop feeds back into the service; losing it on restart
// meant a flagged cheater could bounce the daemon (or wait for a
// deploy) and check in again. The snapshot is a single JSON file
// rewritten atomically on every change — the active set is small (it
// is bounded by quarantine duration, not history), so a full rewrite
// is cheaper and simpler than journaling deltas. Records use raw
// uint64 IDs like the rest of this package; internal/lbsn converts.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// QuarantineRecord is one active quarantine on disk (and on the
// cluster handoff wire).
type QuarantineRecord struct {
	UserID uint64    `json:"userId"`
	Since  time.Time `json:"since"`
	Until  time.Time `json:"until"`
	Reason string    `json:"reason"`
	Source string    `json:"source"`
}

// quarantineSnapshot is the file format, versioned so a future delta
// format can coexist with old files.
type quarantineSnapshot struct {
	Version int                `json:"version"`
	SavedAt time.Time          `json:"savedAt"`
	Active  []QuarantineRecord `json:"active"`
}

// SaveQuarantineSnapshot atomically replaces the snapshot at path with
// the given records: write to a temp file in the same directory, fsync,
// rename. A crash mid-save leaves the previous snapshot intact.
func SaveQuarantineSnapshot(path string, recs []QuarantineRecord, now time.Time) error {
	if path == "" {
		return fmt.Errorf("quarantine snapshot: empty path")
	}
	if recs == nil {
		recs = []QuarantineRecord{}
	}
	buf, err := json.MarshalIndent(quarantineSnapshot{
		Version: 1,
		SavedAt: now,
		Active:  recs,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("quarantine snapshot: marshal: %w", err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("quarantine snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".quarantine-*.tmp")
	if err != nil {
		return fmt.Errorf("quarantine snapshot: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("quarantine snapshot: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("quarantine snapshot: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("quarantine snapshot: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("quarantine snapshot: rename: %w", err)
	}
	return nil
}

// LoadQuarantineSnapshot reads the snapshot at path, dropping records
// already expired at now. A missing file is an empty snapshot, not an
// error — a first boot has nothing to restore.
func LoadQuarantineSnapshot(path string, now time.Time) ([]QuarantineRecord, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("quarantine snapshot: %w", err)
	}
	var snap quarantineSnapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		return nil, fmt.Errorf("quarantine snapshot: parse %s: %w", path, err)
	}
	var live []QuarantineRecord
	for _, r := range snap.Active {
		if r.Until.After(now) {
			live = append(live, r)
		}
	}
	return live, nil
}
