// Alert merge helpers for the cluster's scatter-gather query layer.
// Each node answers an alert query from its own store; the node serving
// the request merges the per-node pages into one cluster view. The
// helpers live here (not in internal/cluster) because they are pure
// functions over the store's Alert type and the store owns the alert
// ordering contract (newest first).
package store

import "sort"

// AlertKey identifies an alert across nodes. Seq is deliberately
// excluded: sequence numbers are assigned per pipeline (and restart
// with it), so the same finding re-journaled on two nodes — the
// signature of a handoff race or an at-least-once forward — differs
// only in Seq. Everything observable about the finding is in the key.
type AlertKey struct {
	Detector string
	UserID   uint64
	VenueID  uint64
	AtUnixNs int64
	Detail   string
}

// KeyOf builds the cross-node identity of an alert.
func KeyOf(a Alert) AlertKey {
	return AlertKey{
		Detector: a.Detector,
		UserID:   a.UserID,
		VenueID:  a.VenueID,
		AtUnixNs: a.At.UnixNano(),
		Detail:   a.Detail,
	}
}

// MergeAlertPages combines per-node query results into one deduped
// slice ordered newest first (the store's query order), with a
// deterministic tie-break on equal timestamps so pagination is stable
// across repeated scatters. Returns the merged slice and how many
// duplicates were dropped — callers subtract that from the summed
// per-node totals to report a cluster-wide total.
func MergeAlertPages(pages [][]Alert) (merged []Alert, duplicates int) {
	seen := make(map[AlertKey]struct{})
	for _, page := range pages {
		for _, a := range page {
			k := KeyOf(a)
			if _, dup := seen[k]; dup {
				duplicates++
				continue
			}
			seen[k] = struct{}{}
			merged = append(merged, a)
		}
	}
	SortAlertsNewestFirst(merged)
	return merged, duplicates
}

// SortAlertsNewestFirst orders alerts by event time descending with a
// total deterministic tie-break (user, venue, detector, detail) so two
// nodes merging the same set produce the same page boundaries.
func SortAlertsNewestFirst(alerts []Alert) {
	sort.SliceStable(alerts, func(i, j int) bool {
		ai, aj := alerts[i], alerts[j]
		if !ai.At.Equal(aj.At) {
			return ai.At.After(aj.At)
		}
		if ai.UserID != aj.UserID {
			return ai.UserID < aj.UserID
		}
		if ai.VenueID != aj.VenueID {
			return ai.VenueID < aj.VenueID
		}
		if ai.Detector != aj.Detector {
			return ai.Detector < aj.Detector
		}
		return ai.Detail < aj.Detail
	})
}

// PageAlerts applies offset/limit to an already merged, already sorted
// slice. limit <= 0 means no cap. The result is always non-nil so it
// serializes as [] rather than null.
func PageAlerts(merged []Alert, offset, limit int) []Alert {
	if offset < 0 {
		offset = 0
	}
	if offset >= len(merged) {
		return []Alert{}
	}
	rest := merged[offset:]
	if limit > 0 && len(rest) > limit {
		rest = rest[:limit]
	}
	out := make([]Alert, len(rest))
	copy(out, rest)
	return out
}
