// Alert persistence. The stream pipeline's detector findings used to
// live in a ring buffer hard-coded into the pipeline itself; this file
// moves the alert type and its lifecycle into the store layer, behind
// an AlertStore interface with two implementations:
//
//   - MemoryAlertStore — the original bounded ring, for tests and
//     ephemeral runs;
//   - AlertJournal (journal.go) — an append-only segmented log that
//     survives restarts.
//
// Every consumer — the pipeline sink, the /api/v1/alerts surface, the
// quarantine feedback policy — talks to the interface, so durability is
// a deployment decision, not a code path.

package store

import (
	"sync"
	"time"
)

// Alert is one detector finding. It is the unit the stream pipeline
// emits, the journal persists, and the quarantine policy consumes.
// IDs are raw uint64 (like the crawl tables in this package) so the
// store stays independent of the lbsn domain types.
type Alert struct {
	// Seq is the pipeline-assigned event sequence number that triggered
	// the alert. Sequence numbers restart with the pipeline; At is the
	// durable ordering key across restarts.
	Seq      uint64    `json:"seq"`
	Detector string    `json:"detector"`
	UserID   uint64    `json:"userId"`
	VenueID  uint64    `json:"venueId"`
	At       time.Time `json:"at"`
	Detail   string    `json:"detail"`
	// Trace is the 32-hex-digit trace ID of the check-in that raised
	// the alert, when that event was head-sampled (internal/trace);
	// empty otherwise. It links an alert to its flight-recorder trace
	// and rides the trace-aware (v2) wire containers; the binary
	// journal record formats predate it and drop it on replay.
	Trace string `json:"trace,omitempty"`
}

// AlertQuery filters and paginates an AlertStore read. The zero value
// selects everything, newest first, unpaginated.
type AlertQuery struct {
	// UserID restricts to one user (0 = any).
	UserID uint64
	// Detector restricts to one detector name ("" = any).
	Detector string
	// Since/Until bound the alert event time: Since inclusive, Until
	// exclusive. Zero values leave the side open.
	Since time.Time
	Until time.Time
	// Offset skips that many matching alerts from the newest end.
	Offset int
	// Limit caps the returned page (<= 0 = no cap).
	Limit int
}

// match reports whether a satisfies the query's filters (not its
// pagination).
func (q AlertQuery) match(a Alert) bool {
	if q.UserID != 0 && a.UserID != q.UserID {
		return false
	}
	if q.Detector != "" && a.Detector != q.Detector {
		return false
	}
	if !q.Since.IsZero() && a.At.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && !a.At.Before(q.Until) {
		return false
	}
	return true
}

// AlertStoreStats is a store's counter snapshot, surfaced through
// /api/v1/alerts/stats.
type AlertStoreStats struct {
	// Kind names the implementation ("memory" or "journal").
	Kind string `json:"kind"`
	// Appended counts successful Append calls this process.
	Appended uint64 `json:"appended"`
	// Retained is how many alerts the store can currently serve.
	Retained int `json:"retained"`
	// Evicted counts alerts aged out by capacity or retention.
	Evicted uint64 `json:"evicted"`
	// Journal-only fields. Mirrored is how many of the retained alerts
	// are served from memory (the rest page in from disk); ReadErrors
	// counts failed segment page reads.
	Segments           int    `json:"segments,omitempty"`
	ActiveSegmentBytes int64  `json:"activeSegmentBytes,omitempty"`
	Fsyncs             uint64 `json:"fsyncs,omitempty"`
	Mirrored           int    `json:"mirrored,omitempty"`
	Replayed           int    `json:"replayed,omitempty"`
	ReplayErrors       int    `json:"replayErrors,omitempty"`
	ReadErrors         int    `json:"readErrors,omitempty"`
}

// AlertStore is the persistence seam of the alert path. Implementations
// must be safe for concurrent use: the pipeline's shard workers append
// while API handlers query.
type AlertStore interface {
	// Append records one alert.
	Append(a Alert) error
	// Query returns the page selected by q, newest first, plus the
	// total number of alerts matching q's filters (ignoring Offset and
	// Limit) so callers can paginate.
	Query(q AlertQuery) (page []Alert, total int)
	// Stats snapshots the store's counters.
	Stats() AlertStoreStats
	// Flush forces buffered writes down to the backing medium; a no-op
	// for memory stores.
	Flush() error
	// Close flushes and releases the store. The store must not be used
	// afterwards.
	Close() error
}

// MemoryAlertStore is the bounded in-memory ring the pipeline
// originally hard-coded, behind the AlertStore interface. Oldest
// alerts are overwritten once the capacity is reached.
type MemoryAlertStore struct {
	mu       sync.Mutex
	ring     []Alert
	next     int
	full     bool
	appended uint64
	evicted  uint64
}

var _ AlertStore = (*MemoryAlertStore)(nil)

// NewMemoryAlertStore builds a ring holding the most recent capacity
// alerts (default 1024 when capacity <= 0).
func NewMemoryAlertStore(capacity int) *MemoryAlertStore {
	if capacity <= 0 {
		capacity = 1024
	}
	return &MemoryAlertStore{ring: make([]Alert, capacity)}
}

// Append implements AlertStore.
func (m *MemoryAlertStore) Append(a Alert) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.full {
		m.evicted++
	}
	m.ring[m.next] = a
	m.next++
	if m.next == len(m.ring) {
		m.next = 0
		m.full = true
	}
	m.appended++
	return nil
}

// Query implements AlertStore: newest first.
func (m *MemoryAlertStore) Query(q AlertQuery) ([]Alert, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.next
	if m.full {
		n = len(m.ring)
	}
	var page []Alert
	total := 0
	for i := 1; i <= n; i++ {
		a := m.ring[(m.next-i+len(m.ring))%len(m.ring)]
		if !q.match(a) {
			continue
		}
		total++
		if total <= q.Offset {
			continue
		}
		if q.Limit > 0 && len(page) >= q.Limit {
			continue // keep counting total past the page
		}
		page = append(page, a)
	}
	return page, total
}

// Stats implements AlertStore.
func (m *MemoryAlertStore) Stats() AlertStoreStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.next
	if m.full {
		n = len(m.ring)
	}
	return AlertStoreStats{
		Kind:     "memory",
		Appended: m.appended,
		Retained: n,
		Evicted:  m.evicted,
	}
}

// Flush implements AlertStore; memory needs none.
func (m *MemoryAlertStore) Flush() error { return nil }

// Close implements AlertStore; memory holds no resources.
func (m *MemoryAlertStore) Close() error { return nil }
