package store

import (
	"fmt"
	"testing"
	"time"
)

func mkAlert(seq uint64, user uint64, det string, at time.Time) Alert {
	return Alert{
		Seq:      seq,
		Detector: det,
		UserID:   user,
		VenueID:  seq%7 + 1,
		At:       at,
		Detail:   fmt.Sprintf("alert %d", seq),
	}
}

func TestMemoryAlertStoreRingAndQuery(t *testing.T) {
	s := NewMemoryAlertStore(4)
	t0 := time.Date(2010, 8, 1, 8, 0, 0, 0, time.UTC)
	for i := 1; i <= 6; i++ {
		det := "speed"
		if i%2 == 0 {
			det = "rate-throttle"
		}
		if err := s.Append(mkAlert(uint64(i), uint64(i%2+1), det, t0.Add(time.Duration(i)*time.Minute))); err != nil {
			t.Fatal(err)
		}
	}

	// Capacity 4: alerts 1 and 2 were overwritten.
	page, total := s.Query(AlertQuery{})
	if total != 4 || len(page) != 4 {
		t.Fatalf("query all: total %d page %d, want 4/4", total, len(page))
	}
	if page[0].Seq != 6 || page[3].Seq != 3 {
		t.Fatalf("want newest-first 6..3, got %d..%d", page[0].Seq, page[3].Seq)
	}

	// Pagination: total counts all matches, page honours offset+limit.
	page, total = s.Query(AlertQuery{Offset: 1, Limit: 2})
	if total != 4 || len(page) != 2 || page[0].Seq != 5 || page[1].Seq != 4 {
		t.Fatalf("offset/limit page wrong: total %d page %+v", total, page)
	}

	// Filters.
	if page, total = s.Query(AlertQuery{Detector: "speed"}); total != 2 {
		t.Fatalf("detector filter total %d, want 2", total)
	}
	if page, total = s.Query(AlertQuery{UserID: 2}); total != 2 {
		t.Fatalf("user filter total %d, want 2", total)
	}
	since, until := t0.Add(4*time.Minute), t0.Add(6*time.Minute)
	page, total = s.Query(AlertQuery{Since: since, Until: until})
	if total != 2 || page[0].Seq != 5 || page[1].Seq != 4 {
		t.Fatalf("time range [4m,6m): total %d page %+v", total, page)
	}

	st := s.Stats()
	if st.Kind != "memory" || st.Appended != 6 || st.Retained != 4 || st.Evicted != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMemoryAlertStoreEmpty(t *testing.T) {
	s := NewMemoryAlertStore(0) // default capacity
	if page, total := s.Query(AlertQuery{Limit: 10}); total != 0 || page != nil {
		t.Fatalf("empty store returned %d/%v", total, page)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
