package store

import (
	"bytes"
	"sync"
	"testing"
)

func TestUpsertAndGet(t *testing.T) {
	db := New()
	db.UpsertUser(UserRow{ID: 1, Name: "Alice", TotalCheckins: 5})
	db.UpsertVenue(VenueRow{ID: 7, Name: "Starbucks #1", Latitude: 40.7, Longitude: -74.0})

	u, ok := db.User(1)
	if !ok || u.Name != "Alice" {
		t.Errorf("User(1) = %+v, %v", u, ok)
	}
	v, ok := db.Venue(7)
	if !ok || v.Name != "Starbucks #1" {
		t.Errorf("Venue(7) = %+v, %v", v, ok)
	}
	if _, ok := db.User(99); ok {
		t.Error("missing user returned")
	}
	// Upsert replaces.
	db.UpsertUser(UserRow{ID: 1, Name: "Alice2", TotalCheckins: 6})
	u, _ = db.User(1)
	if u.Name != "Alice2" || u.TotalCheckins != 6 {
		t.Errorf("after upsert: %+v", u)
	}
	loc := v.Location()
	if loc.Lat != 40.7 || loc.Lon != -74.0 {
		t.Errorf("Location = %v", loc)
	}
}

func TestRecentCheckinsDeduplicated(t *testing.T) {
	db := New()
	db.AddRecentCheckin(1, 100)
	db.AddRecentCheckin(1, 100) // duplicate
	db.AddRecentCheckin(1, 200)
	db.AddRecentCheckin(2, 100)
	_, _, n := db.Counts()
	if n != 3 {
		t.Errorf("recent relations = %d, want 3 (deduplicated)", n)
	}
	if got := db.RecentCheckinsOf(1); len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Errorf("RecentCheckinsOf(1) = %v", got)
	}
	if got := db.VisitorsOf(100); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("VisitorsOf(100) = %v", got)
	}
}

func TestDeriveStats(t *testing.T) {
	db := New()
	db.UpsertUser(UserRow{ID: 1, Name: "A"})
	db.UpsertUser(UserRow{ID: 2, Name: "B"})
	db.UpsertVenue(VenueRow{ID: 10, Name: "V1", MayorID: 1})
	db.UpsertVenue(VenueRow{ID: 11, Name: "V2", MayorID: 1})
	db.UpsertVenue(VenueRow{ID: 12, Name: "V3", MayorID: 2})
	db.UpsertVenue(VenueRow{ID: 13, Name: "V4"}) // no mayor
	db.AddRecentCheckin(1, 10)
	db.AddRecentCheckin(1, 11)
	db.AddRecentCheckin(1, 12)
	db.AddRecentCheckin(2, 12)

	db.DeriveStats()
	u1, _ := db.User(1)
	if u1.TotalMayors != 2 || u1.RecentCheckins != 3 {
		t.Errorf("user 1 derived = mayors %d recents %d, want 2/3", u1.TotalMayors, u1.RecentCheckins)
	}
	u2, _ := db.User(2)
	if u2.TotalMayors != 1 || u2.RecentCheckins != 1 {
		t.Errorf("user 2 derived = mayors %d recents %d, want 1/1", u2.TotalMayors, u2.RecentCheckins)
	}
	// Idempotent.
	db.DeriveStats()
	u1b, _ := db.User(1)
	if u1b != u1 {
		t.Error("DeriveStats not idempotent")
	}
	// New writes invalidate derivation.
	db.AddRecentCheckin(2, 13)
	db.DeriveStats()
	u2b, _ := db.User(2)
	if u2b.RecentCheckins != 2 {
		t.Errorf("after new relation, user 2 recents = %d, want 2", u2b.RecentCheckins)
	}
}

func TestVenuesByNameLike(t *testing.T) {
	db := New()
	db.UpsertVenue(VenueRow{ID: 1, Name: "Starbucks #42"})
	db.UpsertVenue(VenueRow{ID: 2, Name: "STARBUCKS Downtown"})
	db.UpsertVenue(VenueRow{ID: 3, Name: "Dunkin Donuts"})
	got := db.VenuesByNameLike("starbucks")
	if len(got) != 2 {
		t.Fatalf("LIKE starbucks = %d rows, want 2", len(got))
	}
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Errorf("rows out of ID order: %v, %v", got[0].ID, got[1].ID)
	}
	if n := len(db.VenuesByNameLike("waffle")); n != 0 {
		t.Errorf("LIKE waffle = %d rows, want 0", n)
	}
}

func TestUsersVenuesPredicates(t *testing.T) {
	db := New()
	for i := uint64(1); i <= 10; i++ {
		db.UpsertUser(UserRow{ID: i, TotalCheckins: int(i) * 100})
	}
	heavy := db.Users(func(u UserRow) bool { return u.TotalCheckins >= 500 })
	if len(heavy) != 6 {
		t.Errorf("heavy users = %d, want 6", len(heavy))
	}
	all := db.Users(nil)
	if len(all) != 10 {
		t.Errorf("all users = %d, want 10", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Fatal("users not ID-ordered")
		}
	}
	if n := len(db.Venues(nil)); n != 0 {
		t.Errorf("venues = %d, want 0", n)
	}
}

func TestExportImportJSONRoundTrip(t *testing.T) {
	db := New()
	db.UpsertUser(UserRow{ID: 1, Name: "A", UserName: "a", TotalCheckins: 9})
	db.UpsertVenue(VenueRow{ID: 2, Name: "V", Latitude: 1.5, Longitude: -2.5, MayorID: 1,
		Special: "free coffee", SpecialMayor: true})
	db.AddRecentCheckin(1, 2)

	var buf bytes.Buffer
	if err := db.ExportJSON(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	db2 := New()
	if err := db2.ImportJSON(&buf); err != nil {
		t.Fatalf("import: %v", err)
	}
	u, ok := db2.User(1)
	if !ok || u.Name != "A" || u.UserName != "a" {
		t.Errorf("round-trip user = %+v", u)
	}
	v, ok := db2.Venue(2)
	if !ok || v.Special != "free coffee" || !v.SpecialMayor {
		t.Errorf("round-trip venue = %+v", v)
	}
	if _, _, n := db2.Counts(); n != 1 {
		t.Errorf("round-trip relations = %d, want 1", n)
	}
}

func TestImportJSONBadInput(t *testing.T) {
	db := New()
	if err := db.ImportJSON(bytes.NewBufferString("{invalid")); err == nil {
		t.Error("bad JSON import should error")
	}
}

func TestConcurrentWrites(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	const workers = 8
	const rows = 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < rows; i++ {
				id := base*rows + i + 1
				db.UpsertUser(UserRow{ID: id})
				db.UpsertVenue(VenueRow{ID: id})
				db.AddRecentCheckin(id, id)
			}
		}(uint64(w))
	}
	wg.Wait()
	users, venues, recents := db.Counts()
	want := workers * rows
	if users != want || venues != want || recents != want {
		t.Errorf("counts = %d/%d/%d, want %d each", users, venues, recents, want)
	}
}
