// Package store is the crawler's database: an in-memory reproduction
// of the MySQL schema in Fig 3.3 with three tables — UserInfo,
// VenueInfo and RecentCheckins — plus the derived columns the paper
// computed after crawling (RecentCheckins per user from the venue
// visitor lists, TotalMayors per user from the venues' MayorID).
//
// It supports the queries the paper issues, most importantly the
// LIKE-style name match behind Fig 3.4:
//
//	SELECT Longitude, Latitude FROM VenueInfo WHERE Name LIKE "%Starbucks%"
//
// The store is safe for concurrent writers — the crawler's worker
// threads insert rows in parallel, as the C# original did over MySQL.
package store

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"

	"locheat/internal/geo"
)

// UserRow mirrors the UserInfo table of Fig 3.3.
type UserRow struct {
	ID            uint64 `json:"id"`
	UserName      string `json:"userName,omitempty"`
	Name          string `json:"name"`
	HomeCity      string `json:"homeCity"`
	TotalCheckins int    `json:"totalCheckins"`
	TotalBadges   int    `json:"totalBadges"`
	Points        int    `json:"points"`
	Friends       int    `json:"friends"`
	// Derived columns (DeriveStats).
	RecentCheckins int `json:"recentCheckins"`
	TotalMayors    int `json:"totalMayors"`
}

// VenueRow mirrors the VenueInfo table of Fig 3.3.
type VenueRow struct {
	ID             uint64  `json:"id"`
	Name           string  `json:"name"`
	Address        string  `json:"address"`
	City           string  `json:"city"`
	MayorID        uint64  `json:"mayorId"`
	CheckinsHere   int     `json:"checkinsHere"`
	UniqueVisitors int     `json:"uniqueVisitors"`
	Special        string  `json:"special,omitempty"`
	SpecialMayor   bool    `json:"specialMayorOnly,omitempty"`
	Latitude       float64 `json:"latitude"`
	Longitude      float64 `json:"longitude"`
}

// Location returns the venue's coordinates as a geo.Point.
func (v VenueRow) Location() geo.Point {
	return geo.Point{Lat: v.Latitude, Lon: v.Longitude}
}

// CheckinRow mirrors the RecentCheckins relation table.
type CheckinRow struct {
	UserID  uint64 `json:"userId"`
	VenueID uint64 `json:"venueId"`
}

// DB is the in-memory store.
type DB struct {
	mu      sync.RWMutex
	users   map[uint64]UserRow
	venues  map[uint64]VenueRow
	recents map[CheckinRow]struct{}
	derived bool
}

// New returns an empty store.
func New() *DB {
	return &DB{
		users:   make(map[uint64]UserRow),
		venues:  make(map[uint64]VenueRow),
		recents: make(map[CheckinRow]struct{}),
	}
}

// UpsertUser inserts or replaces a UserInfo row.
func (db *DB) UpsertUser(row UserRow) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.users[row.ID] = row
	db.derived = false
}

// UpsertVenue inserts or replaces a VenueInfo row.
func (db *DB) UpsertVenue(row VenueRow) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.venues[row.ID] = row
	db.derived = false
}

// AddRecentCheckin records a (user, venue) relation; duplicates are
// idempotent, matching the paper's dedup of venue recent lists.
func (db *DB) AddRecentCheckin(userID, venueID uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.recents[CheckinRow{UserID: userID, VenueID: venueID}] = struct{}{}
	db.derived = false
}

// Counts returns (users, venues, recent check-in relations).
func (db *DB) Counts() (int, int, int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.users), len(db.venues), len(db.recents)
}

// User returns a UserInfo row.
func (db *DB) User(id uint64) (UserRow, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.users[id]
	return r, ok
}

// Venue returns a VenueInfo row.
func (db *DB) Venue(id uint64) (VenueRow, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.venues[id]
	return r, ok
}

// DeriveStats computes the derived columns of Fig 3.3: each user's
// RecentCheckins (how many venue recent-visitor lists they appear in)
// and TotalMayors (how many venues link them as mayor). Call after a
// crawl completes; it is idempotent.
func (db *DB) DeriveStats() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.derived {
		return
	}
	recentCount := make(map[uint64]int, len(db.users))
	for rel := range db.recents {
		recentCount[rel.UserID]++
	}
	mayorCount := make(map[uint64]int)
	for _, v := range db.venues {
		if v.MayorID != 0 {
			mayorCount[v.MayorID]++
		}
	}
	for id, u := range db.users {
		u.RecentCheckins = recentCount[id]
		u.TotalMayors = mayorCount[id]
		db.users[id] = u
	}
	db.derived = true
}

// Users returns all user rows filtered by pred (nil = all), ordered by
// ID.
func (db *DB) Users(pred func(UserRow) bool) []UserRow {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]UserRow, 0, len(db.users))
	for _, u := range db.users {
		if pred == nil || pred(u) {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Venues returns all venue rows filtered by pred (nil = all), ordered
// by ID.
func (db *DB) Venues(pred func(VenueRow) bool) []VenueRow {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]VenueRow, 0, len(db.venues))
	for _, v := range db.venues {
		if pred == nil || pred(v) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// VenuesByNameLike implements the LIKE "%substr%" query of Fig 3.4,
// case-insensitively (MySQL's default collation is case-insensitive).
func (db *DB) VenuesByNameLike(substr string) []VenueRow {
	needle := strings.ToLower(substr)
	return db.Venues(func(v VenueRow) bool {
		return strings.Contains(strings.ToLower(v.Name), needle)
	})
}

// RecentCheckinsOf returns the venue IDs whose recent lists contain
// the user, ascending — the per-user location history the paper
// reconstructs in §6.2.1.
func (db *DB) RecentCheckinsOf(userID uint64) []uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []uint64
	for rel := range db.recents {
		if rel.UserID == userID {
			out = append(out, rel.VenueID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VisitorsOf returns the user IDs on the venue's recent list,
// ascending.
func (db *DB) VisitorsOf(venueID uint64) []uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []uint64
	for rel := range db.recents {
		if rel.VenueID == venueID {
			out = append(out, rel.UserID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapshot is the JSON export shape.
type snapshot struct {
	Users   []UserRow    `json:"users"`
	Venues  []VenueRow   `json:"venues"`
	Recents []CheckinRow `json:"recentCheckins"`
}

// ExportJSON writes the whole store as JSON.
func (db *DB) ExportJSON(w io.Writer) error {
	db.mu.RLock()
	snap := snapshot{
		Users:  make([]UserRow, 0, len(db.users)),
		Venues: make([]VenueRow, 0, len(db.venues)),
	}
	for _, u := range db.users {
		snap.Users = append(snap.Users, u)
	}
	for _, v := range db.venues {
		snap.Venues = append(snap.Venues, v)
	}
	for rel := range db.recents {
		snap.Recents = append(snap.Recents, rel)
	}
	db.mu.RUnlock()

	sort.Slice(snap.Users, func(i, j int) bool { return snap.Users[i].ID < snap.Users[j].ID })
	sort.Slice(snap.Venues, func(i, j int) bool { return snap.Venues[i].ID < snap.Venues[j].ID })
	sort.Slice(snap.Recents, func(i, j int) bool {
		if snap.Recents[i].UserID != snap.Recents[j].UserID {
			return snap.Recents[i].UserID < snap.Recents[j].UserID
		}
		return snap.Recents[i].VenueID < snap.Recents[j].VenueID
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}

// ImportJSON loads a previously exported snapshot, replacing current
// contents.
func (db *DB) ImportJSON(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.users = make(map[uint64]UserRow, len(snap.Users))
	for _, u := range snap.Users {
		db.users[u.ID] = u
	}
	db.venues = make(map[uint64]VenueRow, len(snap.Venues))
	for _, v := range snap.Venues {
		db.venues[v.ID] = v
	}
	db.recents = make(map[CheckinRow]struct{}, len(snap.Recents))
	for _, rel := range snap.Recents {
		db.recents[rel] = struct{}{}
	}
	db.derived = false
	return nil
}
