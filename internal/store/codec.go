// Binary layouts for the store's wire-and-disk types, built on the
// internal/wirecodec primitives. Alert is the single hottest record in
// the system — every journal append, replication ship and promoted-
// replica read moves it — so its layout is the one the journal's v2
// segment format (journal.go) and replica.ShipBatch both reuse.
// Elements are unversioned by design: the containers (a v2 segment's
// header byte, a ship batch's leading version byte) carry the version.
package store

import (
	"locheat/internal/wirecodec"
)

// AppendAlert appends a's binary encoding to dst.
func AppendAlert(dst []byte, a Alert) []byte {
	dst = wirecodec.AppendUvarint(dst, a.Seq)
	dst = wirecodec.AppendString(dst, a.Detector)
	dst = wirecodec.AppendUvarint(dst, a.UserID)
	dst = wirecodec.AppendUvarint(dst, a.VenueID)
	dst = wirecodec.AppendTime(dst, a.At)
	dst = wirecodec.AppendString(dst, a.Detail)
	return dst
}

// ReadAlert decodes one alert; failures stick to d (check d.Err or
// d.Finish).
func ReadAlert(d *wirecodec.Decoder) Alert {
	return Alert{
		Seq:      d.Uvarint(),
		Detector: d.String(),
		UserID:   d.Uvarint(),
		VenueID:  d.Uvarint(),
		At:       d.Time(),
		Detail:   d.String(),
	}
}

// AppendAlertTraced is AppendAlert plus the trace ID, for trace-aware
// (v2) containers. Elements stay unversioned — the container's
// version byte selects which pair of functions both ends run.
func AppendAlertTraced(dst []byte, a Alert) []byte {
	dst = AppendAlert(dst, a)
	return wirecodec.AppendString(dst, a.Trace)
}

// ReadAlertTraced decodes an AppendAlertTraced element.
func ReadAlertTraced(d *wirecodec.Decoder) Alert {
	a := ReadAlert(d)
	a.Trace = d.String()
	return a
}

// appendAlertBody appends a's fields minus Detector. The journal's
// v2+table segment format (journal.go) stores the detector as a
// per-segment table index, so the record body omits the string.
func appendAlertBody(dst []byte, a Alert) []byte {
	dst = wirecodec.AppendUvarint(dst, a.Seq)
	dst = wirecodec.AppendUvarint(dst, a.UserID)
	dst = wirecodec.AppendUvarint(dst, a.VenueID)
	dst = wirecodec.AppendTime(dst, a.At)
	dst = wirecodec.AppendString(dst, a.Detail)
	return dst
}

// readAlertBody decodes an alert minus Detector; failures stick to d.
func readAlertBody(d *wirecodec.Decoder) Alert {
	return Alert{
		Seq:     d.Uvarint(),
		UserID:  d.Uvarint(),
		VenueID: d.Uvarint(),
		At:      d.Time(),
		Detail:  d.String(),
	}
}

// AppendQuarantineRecord appends r's binary encoding to dst.
func AppendQuarantineRecord(dst []byte, r QuarantineRecord) []byte {
	dst = wirecodec.AppendUvarint(dst, r.UserID)
	dst = wirecodec.AppendTime(dst, r.Since)
	dst = wirecodec.AppendTime(dst, r.Until)
	dst = wirecodec.AppendString(dst, r.Reason)
	dst = wirecodec.AppendString(dst, r.Source)
	return dst
}

// ReadQuarantineRecord decodes one record; failures stick to d.
func ReadQuarantineRecord(d *wirecodec.Decoder) QuarantineRecord {
	return QuarantineRecord{
		UserID: d.Uvarint(),
		Since:  d.Time(),
		Until:  d.Time(),
		Reason: d.String(),
		Source: d.String(),
	}
}
