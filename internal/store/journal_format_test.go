package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestJournalV1DirReplaysUnderV2Reader is the upgrade contract: a
// journal directory written entirely in the v1 JSON format (what every
// pre-upgrade build produced) must replay unchanged under the
// v2-default reader, keep accepting appends — which extend the v1
// active segment in ITS format — and only adopt the binary format at
// rotation. The result is a mixed-format directory that replays in
// full, in order.
func TestJournalV1DirReplaysUnderV2Reader(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2011, 6, 20, 8, 0, 0, 0, time.UTC)

	// A "pre-upgrade" journal: JSON segments, no headers.
	j1, err := OpenAlertJournal(JournalConfig{Dir: dir, Format: JournalFormatJSON, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if err := j1.Append(mkAlert(uint64(i), uint64(i%5+1), "speed", t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "alerts-00000001.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if ft, _ := sniffSegmentFormat(f); ft != JournalFormatJSON {
		t.Fatalf("v1 config wrote format %d segments", ft)
	}
	f.Close()

	// The upgraded build opens the same dir with the binary default.
	// Tiny segments force a rotation soon, so the dir goes mixed.
	j2, err := OpenAlertJournal(JournalConfig{Dir: dir, SegmentBytes: 1 << 10, FsyncEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if st := j2.Stats(); st.Replayed != 40 || st.ReplayErrors != 0 {
		t.Fatalf("v1 replay under v2 reader: %+v", st)
	}
	for i := 41; i <= 120; i++ {
		if err := j2.Append(mkAlert(uint64(i), uint64(i%5+1), "speed", t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	if st := j2.Stats(); st.Segments < 2 {
		t.Fatalf("rotation never happened (%d segments); the mixed-dir case is untested", st.Segments)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// The newest segment is binary, the oldest is still v1.
	newest := ""
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" && e.Name() > newest {
			newest = e.Name()
		}
	}
	f, err = os.Open(filepath.Join(dir, newest))
	if err != nil {
		t.Fatal(err)
	}
	if ft, _ := sniffSegmentFormat(f); ft != JournalFormatBinaryTable {
		t.Fatalf("rotated segment has format %d, want binary+table", ft)
	}
	f.Close()

	// The mixed dir replays in full, ordered, with every record intact.
	j3, err := OpenAlertJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	page, total := j3.Query(AlertQuery{})
	if total != 120 || len(page) != 120 {
		t.Fatalf("mixed-format replay: %d/%d records, want 120", total, len(page))
	}
	for i, a := range page {
		if want := uint64(120 - i); a.Seq != want {
			t.Fatalf("record %d out of order: seq %d, want %d", i, a.Seq, want)
		}
	}
	if page[0].Detail == "" || page[119].Detail == "" {
		t.Fatal("record bodies lost across formats")
	}
}

// TestJournalAppendBatch: the bulk append must agree with record-at-a-
// time appends — same indexes, same rotation, same replay — while
// writing whole runs per syscall.
func TestJournalAppendBatch(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2011, 6, 20, 8, 0, 0, 0, time.UTC)
	// Tiny segments force several rotations inside one batch; retention
	// is kept wide so every record survives to the replay check.
	j, err := OpenAlertJournal(JournalConfig{Dir: dir, SegmentBytes: 1 << 9, MaxSegments: 64, FsyncEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	var batch []Alert
	for i := 1; i <= 200; i++ {
		batch = append(batch, mkAlert(uint64(i), uint64(i%7+1), "speed", t0.Add(time.Duration(i)*time.Second)))
	}
	notified := 0
	j.SetAppendNotify(func() { notified++ })
	n, err := j.AppendBatch(batch)
	if err != nil || n != 200 {
		t.Fatalf("batch append: n=%d err=%v", n, err)
	}
	if notified != 1 {
		t.Fatalf("notify fired %d times for one batch, want 1", notified)
	}
	if next := j.NextIndex(); next != 200 {
		t.Fatalf("next index %d, want 200", next)
	}
	if st := j.Stats(); st.Segments < 3 {
		t.Fatalf("batch never rotated (%d segments)", st.Segments)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenAlertJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	page, total := j2.Query(AlertQuery{})
	if total != 200 {
		t.Fatalf("replayed %d, want 200", total)
	}
	for i, a := range page {
		if want := uint64(200 - i); a.Seq != want {
			t.Fatalf("record %d: seq %d, want %d", i, a.Seq, want)
		}
	}
}

// TestJournalAppendBatchPathologicalSegmentBytes: a SegmentBytes no
// larger than the v2 header must not wedge the batch path — the first
// record of a run is always admitted (write, then rotate on crossing),
// matching the single-record Append.
func TestJournalAppendBatchPathologicalSegmentBytes(t *testing.T) {
	j, err := OpenAlertJournal(JournalConfig{Dir: t.TempDir(), SegmentBytes: 3, MaxSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	t0 := time.Date(2011, 6, 20, 8, 0, 0, 0, time.UTC)
	var batch []Alert
	for i := 1; i <= 10; i++ {
		batch = append(batch, mkAlert(uint64(i), 1, "speed", t0))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if n, err := j.AppendBatch(batch); err != nil || n != 10 {
			t.Errorf("batch append under tiny SegmentBytes: n=%d err=%v", n, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("AppendBatch wedged on a pathological SegmentBytes")
	}
}

// TestJournalUnknownFormatSkippedNotDestroyed: a segment from a future
// format is invisible to this build but must survive on disk, and
// appends must rotate past it rather than extend it.
func TestJournalUnknownFormatSkipped(t *testing.T) {
	dir := t.TempDir()
	future := filepath.Join(dir, "alerts-00000001.seg")
	content := append([]byte(segMagic), 99 /* format from the future */, 1, 2, 3)
	if err := os.WriteFile(future, content, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenAlertJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Replayed != 0 || st.ReplayErrors != 1 || st.Segments != 2 {
		t.Fatalf("unknown-format open: %+v (want 0 replayed, 1 replay error, rotated to 2 segments)", st)
	}
	if err := j.Append(mkAlert(1, 1, "speed", time.Date(2011, 6, 20, 8, 0, 0, 0, time.UTC))); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(future)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(content) {
		t.Fatal("future-format segment was modified")
	}
}
