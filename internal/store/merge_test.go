package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mergeAlert(user uint64, at time.Time, det, detail string) Alert {
	return Alert{Detector: det, UserID: user, VenueID: user + 100, At: at, Detail: detail}
}

func TestMergeAlertPagesDedupesAndOrders(t *testing.T) {
	t0 := time.Unix(1_000_000, 0).UTC()
	a1 := mergeAlert(1, t0.Add(3*time.Minute), "speed", "x")
	a2 := mergeAlert(2, t0.Add(2*time.Minute), "speed", "y")
	a3 := mergeAlert(3, t0.Add(1*time.Minute), "rate-throttle", "z")
	dupOfA2 := a2
	dupOfA2.Seq = 999 // different Seq, same finding: must dedupe

	merged, dupes := MergeAlertPages([][]Alert{
		{a1, a3},
		{dupOfA2, a2},
	})
	if dupes != 1 {
		t.Fatalf("dupes = %d, want 1", dupes)
	}
	if len(merged) != 3 {
		t.Fatalf("merged %d alerts, want 3: %v", len(merged), merged)
	}
	for i, want := range []uint64{1, 2, 3} {
		if merged[i].UserID != want {
			t.Fatalf("merged[%d].UserID = %d, want %d (order wrong)", i, merged[i].UserID, want)
		}
	}
}

func TestMergeAlertPagesDeterministicTieBreak(t *testing.T) {
	t0 := time.Unix(1_000_000, 0).UTC()
	same := t0.Add(time.Minute)
	a := mergeAlert(5, same, "speed", "a")
	b := mergeAlert(4, same, "speed", "b")
	c := mergeAlert(4, same, "cheater-code", "c")

	m1, _ := MergeAlertPages([][]Alert{{a}, {b, c}})
	m2, _ := MergeAlertPages([][]Alert{{c, b}, {a}})
	for i := range m1 {
		if KeyOf(m1[i]) != KeyOf(m2[i]) {
			t.Fatalf("merge order depends on input order at %d: %v vs %v", i, m1, m2)
		}
	}
	// Equal timestamps: user asc, then detector asc.
	if m1[0].UserID != 4 || m1[0].Detector != "cheater-code" {
		t.Fatalf("tie-break wrong: %+v", m1[0])
	}
}

func TestPageAlerts(t *testing.T) {
	t0 := time.Unix(1_000_000, 0).UTC()
	var merged []Alert
	for i := 0; i < 5; i++ {
		merged = append(merged, mergeAlert(uint64(i+1), t0.Add(-time.Duration(i)*time.Minute), "speed", "d"))
	}
	page := PageAlerts(merged, 1, 2)
	if len(page) != 2 || page[0].UserID != 2 || page[1].UserID != 3 {
		t.Fatalf("page = %v", page)
	}
	if got := PageAlerts(merged, 10, 2); len(got) != 0 {
		t.Fatalf("past-the-end page = %v, want empty", got)
	}
	if got := PageAlerts(merged, 0, 0); len(got) != 5 {
		t.Fatalf("uncapped page returned %d, want 5", len(got))
	}
}

func TestQuarantineSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "quarantine.json")
	now := time.Unix(2_000_000, 0).UTC()
	recs := []QuarantineRecord{
		{UserID: 1, Since: now.Add(-time.Hour), Until: now.Add(time.Hour), Reason: "alerts", Source: "policy"},
		{UserID: 2, Since: now.Add(-2 * time.Hour), Until: now.Add(-time.Minute), Reason: "old", Source: "manual"},
	}
	if err := SaveQuarantineSnapshot(path, recs, now); err != nil {
		t.Fatal(err)
	}
	live, err := LoadQuarantineSnapshot(path, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 1 || live[0].UserID != 1 {
		t.Fatalf("loaded %v, want only the unexpired user 1", live)
	}
}

func TestQuarantineSnapshotMissingFile(t *testing.T) {
	recs, err := LoadQuarantineSnapshot(filepath.Join(t.TempDir(), "nope.json"), time.Now())
	if err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v, want nil/nil", recs, err)
	}
}

func TestQuarantineSnapshotAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "quarantine.json")
	now := time.Unix(2_000_000, 0).UTC()
	if err := SaveQuarantineSnapshot(path, []QuarantineRecord{{UserID: 7, Until: now.Add(time.Hour)}}, now); err != nil {
		t.Fatal(err)
	}
	if err := SaveQuarantineSnapshot(path, []QuarantineRecord{{UserID: 8, Until: now.Add(time.Hour)}}, now); err != nil {
		t.Fatal(err)
	}
	live, err := LoadQuarantineSnapshot(path, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 1 || live[0].UserID != 8 {
		t.Fatalf("loaded %v, want only user 8", live)
	}
	// No temp litter left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want just the snapshot", len(entries))
	}
}
