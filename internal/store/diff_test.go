package store

import "testing"

func TestComputeDiffNewEntities(t *testing.T) {
	old := New()
	old.UpsertUser(UserRow{ID: 1, TotalCheckins: 10})
	old.UpsertVenue(VenueRow{ID: 100})

	newer := old.Clone()
	newer.UpsertUser(UserRow{ID: 2, TotalCheckins: 3}) // new user
	newer.UpsertVenue(VenueRow{ID: 101, MayorID: 2})   // new venue, with mayor

	d := ComputeDiff(old, newer)
	if len(d.NewUsers) != 1 || d.NewUsers[0] != 2 {
		t.Errorf("NewUsers = %v", d.NewUsers)
	}
	if len(d.NewVenues) != 1 || d.NewVenues[0] != 101 {
		t.Errorf("NewVenues = %v", d.NewVenues)
	}
	if d.CheckinDeltas[2] != 3 {
		t.Errorf("new user delta = %d, want 3", d.CheckinDeltas[2])
	}
	if len(d.MayorChanges) != 1 || d.MayorChanges[0].NewMayor != 2 {
		t.Errorf("MayorChanges = %v", d.MayorChanges)
	}
}

func TestComputeDiffCheckinDeltasAndRelations(t *testing.T) {
	old := New()
	old.UpsertUser(UserRow{ID: 1, TotalCheckins: 10})
	old.UpsertUser(UserRow{ID: 2, TotalCheckins: 5})
	old.UpsertVenue(VenueRow{ID: 100})
	old.AddRecentCheckin(1, 100)

	newer := old.Clone()
	newer.UpsertUser(UserRow{ID: 1, TotalCheckins: 17}) // +7
	newer.AddRecentCheckin(1, 101)                      // new appearance
	newer.AddRecentCheckin(2, 100)                      // new appearance

	d := ComputeDiff(old, newer)
	if d.CheckinDeltas[1] != 7 {
		t.Errorf("delta user 1 = %d, want 7", d.CheckinDeltas[1])
	}
	if _, present := d.CheckinDeltas[2]; present {
		t.Error("unchanged user should have no delta entry")
	}
	if len(d.NewRelations) != 2 {
		t.Fatalf("NewRelations = %v", d.NewRelations)
	}
	byUser := d.NewAppearancesByUser()
	if byUser[1] != 1 || byUser[2] != 1 {
		t.Errorf("appearances = %v", byUser)
	}
}

func TestComputeDiffLostRelations(t *testing.T) {
	// A user drops off a capped recent list between crawls.
	old := New()
	old.AddRecentCheckin(1, 100)
	old.AddRecentCheckin(2, 100)
	newer := New()
	newer.AddRecentCheckin(2, 100)

	d := ComputeDiff(old, newer)
	if len(d.LostRelations) != 1 || d.LostRelations[0].UserID != 1 {
		t.Errorf("LostRelations = %v", d.LostRelations)
	}
	if len(d.NewRelations) != 0 {
		t.Errorf("NewRelations = %v", d.NewRelations)
	}
}

func TestComputeDiffMayorTransfer(t *testing.T) {
	old := New()
	old.UpsertVenue(VenueRow{ID: 5, MayorID: 10})
	newer := old.Clone()
	newer.UpsertVenue(VenueRow{ID: 5, MayorID: 20})

	d := ComputeDiff(old, newer)
	if len(d.MayorChanges) != 1 {
		t.Fatalf("MayorChanges = %v", d.MayorChanges)
	}
	mc := d.MayorChanges[0]
	if mc.VenueID != 5 || mc.OldMayor != 10 || mc.NewMayor != 20 {
		t.Errorf("change = %+v", mc)
	}
}

func TestComputeDiffIdenticalSnapshots(t *testing.T) {
	db := New()
	db.UpsertUser(UserRow{ID: 1, TotalCheckins: 4})
	db.UpsertVenue(VenueRow{ID: 2, MayorID: 1})
	db.AddRecentCheckin(1, 2)

	d := ComputeDiff(db, db.Clone())
	if len(d.NewUsers)+len(d.NewVenues)+len(d.NewRelations)+
		len(d.LostRelations)+len(d.MayorChanges)+len(d.CheckinDeltas) != 0 {
		t.Errorf("identical snapshots produced diff %+v", d)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	db := New()
	db.UpsertUser(UserRow{ID: 1})
	cp := db.Clone()
	db.UpsertUser(UserRow{ID: 2})
	if _, ok := cp.User(2); ok {
		t.Error("clone sees writes to the original")
	}
	cp.UpsertUser(UserRow{ID: 3})
	if _, ok := db.User(3); ok {
		t.Error("original sees writes to the clone")
	}
}

func TestDiffOrderingDeterministic(t *testing.T) {
	old := New()
	newer := New()
	for _, id := range []uint64{5, 3, 9, 1} {
		newer.UpsertUser(UserRow{ID: id})
		newer.AddRecentCheckin(id, id*10)
	}
	d := ComputeDiff(old, newer)
	for i := 1; i < len(d.NewUsers); i++ {
		if d.NewUsers[i] <= d.NewUsers[i-1] {
			t.Fatal("NewUsers not sorted")
		}
	}
	for i := 1; i < len(d.NewRelations); i++ {
		if d.NewRelations[i].UserID <= d.NewRelations[i-1].UserID {
			t.Fatal("NewRelations not sorted")
		}
	}
}
