// Fault injection for chaos drills: a RoundTripper wrapped around the
// shared cluster transport that drops, delays, partitions or flaps
// traffic per destination host. Every cluster-internal client built
// through Config.Fault routes through it, so an injected partition
// severs probes, forwards, ship batches, quarantine spread and scatter
// all at once — exactly what a real network split does. Decisions are
// pure functions of the rule table and the injected clock, so drills
// under simclock are deterministic.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"locheat/internal/simclock"
)

// faultRule is one host's injected behavior.
type faultRule struct {
	// Drop fails every request outright (connection-refused shaped).
	Drop bool
	// Delay is added before the request is attempted.
	Delay time.Duration
	// Partition severs the host both ways at the transport level; held
	// separately from Drop so Heal can lift partitions without
	// forgetting drop/delay rules a test set independently.
	Partition bool
	// Flap alternates reachable/unreachable windows of FlapPeriod,
	// starting unreachable at FlapStart.
	Flap       bool
	FlapStart  time.Time
	FlapPeriod time.Duration
}

// FaultInjector holds the rule table. Build one with NewFaultInjector,
// hand it to cluster.Config.Fault (and the daemon's -chaos flag), then
// steer it from tests via the setters or over HTTP via Handler.
type FaultInjector struct {
	clock simclock.Clock

	mu    sync.Mutex
	rules map[string]faultRule

	injected, delayed uint64
}

// NewFaultInjector builds an injector; clock drives flap windows (nil
// uses the wall clock).
func NewFaultInjector(clock simclock.Clock) *FaultInjector {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &FaultInjector{clock: clock, rules: make(map[string]faultRule)}
}

func (f *FaultInjector) update(host string, fn func(*faultRule)) {
	f.mu.Lock()
	r := f.rules[host]
	fn(&r)
	if (r == faultRule{}) {
		delete(f.rules, host)
	} else {
		f.rules[host] = r
	}
	f.mu.Unlock()
}

// Drop makes every request to host fail (or stops failing them).
func (f *FaultInjector) Drop(host string, on bool) {
	f.update(host, func(r *faultRule) { r.Drop = on })
}

// Delay adds d of latency to every request to host (0 removes it).
func (f *FaultInjector) Delay(host string, d time.Duration) {
	f.update(host, func(r *faultRule) { r.Delay = d })
}

// Partition severs (or restores) the network between this process and
// host.
func (f *FaultInjector) Partition(host string, on bool) {
	f.update(host, func(r *faultRule) { r.Partition = on })
}

// Flap alternates host between reachable and unreachable in windows of
// period, starting unreachable now. period <= 0 stops the flapping.
func (f *FaultInjector) Flap(host string, period time.Duration) {
	now := f.clock.Now()
	f.update(host, func(r *faultRule) {
		r.Flap = period > 0
		r.FlapStart = now
		r.FlapPeriod = period
	})
}

// Heal lifts partitions and flaps on every host (drop/delay rules a
// test set explicitly survive — heal mirrors a network split ending).
func (f *FaultInjector) Heal() {
	f.mu.Lock()
	for host, r := range f.rules {
		r.Partition = false
		r.Flap = false
		if (r == faultRule{}) {
			delete(f.rules, host)
		} else {
			f.rules[host] = r
		}
	}
	f.mu.Unlock()
}

// Clear removes every rule.
func (f *FaultInjector) Clear() {
	f.mu.Lock()
	f.rules = make(map[string]faultRule)
	f.mu.Unlock()
}

// decide returns (blocked, delay) for one request to host.
func (f *FaultInjector) decide(host string) (bool, time.Duration) {
	f.mu.Lock()
	r, ok := f.rules[host]
	f.mu.Unlock()
	if !ok {
		return false, 0
	}
	if r.Drop || r.Partition {
		return true, 0
	}
	if r.Flap && r.FlapPeriod > 0 {
		// Window parity off the injected clock: even windows (starting
		// with the one Flap was called in) are unreachable.
		elapsed := f.clock.Now().Sub(r.FlapStart)
		if elapsed >= 0 && (elapsed/r.FlapPeriod)%2 == 0 {
			return true, 0
		}
	}
	return false, r.Delay
}

// faultTransport injects f's rules in front of a base RoundTripper.
type faultTransport struct {
	f    *FaultInjector
	base http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	blocked, delay := t.f.decide(req.URL.Host)
	if blocked {
		t.f.mu.Lock()
		t.f.injected++
		t.f.mu.Unlock()
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("fault injected: %s unreachable", req.URL.Host)
	}
	if delay > 0 {
		t.f.mu.Lock()
		t.f.delayed++
		t.f.mu.Unlock()
		// Real sleep even under simclock: delay models wire latency the
		// caller's timeout must race, not simulated time passing.
		time.Sleep(delay)
	}
	return t.base.RoundTrip(req)
}

// Transport wraps base (nil: the shared cluster transport) with fault
// injection.
func (f *FaultInjector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = sharedTransport
	}
	return &faultTransport{f: f, base: base}
}

// Client returns an HTTP client routed through the injector, with the
// given overall request timeout — the drop-in replacement for
// newHTTPClient on a chaos node.
func (f *FaultInjector) Client(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout, Transport: f.Transport(nil)}
}

// FaultStats counts injections.
type FaultStats struct {
	Rules    int    `json:"rules"`
	Injected uint64 `json:"injected"`
	Delayed  uint64 `json:"delayed"`
}

// Stats snapshots the injector.
func (f *FaultInjector) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FaultStats{Rules: len(f.rules), Injected: f.injected, Delayed: f.delayed}
}

// faultCommand is the POST /cluster/v1/fault body the chaos drill's
// driver (scripts/soak.sh) steers a live node with.
type faultCommand struct {
	// Action: "partition", "heal", "drop", "undrop", "delay", "flap",
	// "clear".
	Action string `json:"action"`
	// Hosts are destination host:port values as they appear in peer
	// URLs. Ignored by heal/clear.
	Hosts []string `json:"hosts,omitempty"`
	// Ms is the delay or flap period in milliseconds.
	Ms int64 `json:"ms,omitempty"`
}

// Handler is the HTTP control surface, mounted at /cluster/v1/fault on
// nodes started with fault injection enabled (lbsnd -chaos). Like the
// rest of /cluster/v1 it is unauthenticated by design: the flag gates
// it, and the listener is cluster-internal.
func (f *FaultInjector) Handler(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, f.Stats())
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
		return
	}
	var cmd faultCommand
	if err := json.NewDecoder(r.Body).Decode(&cmd); err != nil {
		http.Error(w, "malformed fault command", http.StatusBadRequest)
		return
	}
	switch cmd.Action {
	case "partition":
		for _, h := range cmd.Hosts {
			f.Partition(h, true)
		}
	case "heal":
		f.Heal()
	case "drop":
		for _, h := range cmd.Hosts {
			f.Drop(h, true)
		}
	case "undrop":
		for _, h := range cmd.Hosts {
			f.Drop(h, false)
		}
	case "delay":
		for _, h := range cmd.Hosts {
			f.Delay(h, time.Duration(cmd.Ms)*time.Millisecond)
		}
	case "flap":
		for _, h := range cmd.Hosts {
			f.Flap(h, time.Duration(cmd.Ms)*time.Millisecond)
		}
	case "clear":
		f.Clear()
	default:
		http.Error(w, "unknown action", http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, f.Stats())
}
