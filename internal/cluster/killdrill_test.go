package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/stream"
)

// failproxy wraps a node's handler with per-path failure injection, so
// tests can make one endpoint unreachable (forward POSTs fail and
// spill) while heartbeats stay healthy.
type failproxy struct {
	mu    sync.RWMutex
	h     http.Handler
	fail  map[string]bool
	hits  map[string]int
	count bool
}

func (f *failproxy) set(h http.Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.h = h
}

func (f *failproxy) setFail(path string, failing bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail == nil {
		f.fail = make(map[string]bool)
	}
	f.fail[path] = failing
}

func (f *failproxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.RLock()
	h, failing := f.h, f.fail[r.URL.Path]
	f.mu.RUnlock()
	if failing {
		http.Error(w, "injected failure", http.StatusServiceUnavailable)
		return
	}
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// replNode is one member of a replicated test cluster: journal-backed
// pipeline, replica tier enabled.
type replNode struct {
	id      string
	svc     *lbsn.Service
	pipe    *stream.Pipeline
	journal *store.AlertJournal
	node    *Node
	srv     *httptest.Server
	proxy   *failproxy
	clock   *simclock.Simulated
}

// startReplicatedCluster boots n journal-backed nodes with replica
// factor 2 (each journal ships to one ring successor) and the
// forwarding outbox armed.
func startReplicatedCluster(t *testing.T, ids []string, users int) map[string]*replNode {
	t.Helper()
	type boot struct {
		proxy *failproxy
		srv   *httptest.Server
	}
	boots := make(map[string]*boot, len(ids))
	var peers []Member
	for _, id := range ids {
		proxy := &failproxy{}
		srv := httptest.NewServer(proxy)
		t.Cleanup(srv.Close)
		boots[id] = &boot{proxy: proxy, srv: srv}
		peers = append(peers, Member{ID: id, Addr: srv.URL})
	}

	nodes := make(map[string]*replNode, len(ids))
	for _, id := range ids {
		clock := simclock.NewSimulated(simclock.Epoch())
		svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
		for u := 0; u < users; u++ {
			svc.RegisterUser("user", "", "SF")
		}
		dir := t.TempDir()
		journal, err := store.OpenAlertJournal(store.JournalConfig{
			Dir:          dir,
			SegmentBytes: 8 << 10,
			FsyncEvery:   256,
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { journal.Close() })
		pipe := stream.New(stream.Config{Shards: 2, Clock: clock, Store: journal})
		t.Cleanup(pipe.Close)
		node, err := NewNode(svc, pipe, Config{
			Self:  Member{ID: id, Addr: boots[id].srv.URL},
			Peers: peers,
			Forward: ForwarderConfig{
				BatchSize:  1,
				FlushEvery: 5 * time.Millisecond,
			},
			Replica: ReplicaOptions{
				Dir:          dir,
				Factor:       2,
				ShipInterval: 2 * time.Millisecond,
				DigestEvery:  time.Hour, // tests drive SyncQuarantines by hand
			},
			Membership: MembershipConfig{
				HeartbeatEvery: 100 * time.Millisecond,
				FailAfter:      300 * time.Millisecond,
				Clock:          clock,
			},
			Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		boots[id].proxy.set(node.Handler())
		nodes[id] = &replNode{
			id: id, svc: svc, pipe: pipe, journal: journal, node: node,
			srv: boots[id].srv, proxy: boots[id].proxy, clock: clock,
		}
	}
	return nodes
}

// alertKeys collects the cross-node identity of every alert in a page.
func alertKeys(alerts []store.Alert) map[store.AlertKey]bool {
	out := make(map[store.AlertKey]bool, len(alerts))
	for _, a := range alerts {
		out[store.KeyOf(a)] = true
	}
	return out
}

// TestKillNineDrill is the acceptance scenario for the durability
// tier: a 3-node cluster with replica factor 2 under load, one node
// hard-killed (no leave notice, no handoff, no flush). The survivors
// must serve the dead node's complete alert history from the promoted
// replica, keep denying every quarantined user, and replay the spilled
// forwards without producing duplicate alerts.
func TestKillNineDrill(t *testing.T) {
	const users = 300
	nodes := startReplicatedCluster(t, []string{"n1", "n2", "n3"}, users)
	n1, n2, n3 := nodes["n1"], nodes["n2"], nodes["n3"]
	survivors := []*replNode{n1, n3}

	sf := geo.Point{Lat: 37.77, Lon: -122.42}
	ny := geo.Point{Lat: 40.71, Lon: -74.01}
	t0 := simclock.Epoch()

	// Load: impossible-travel pairs for users owned by every node,
	// ingested at n1 (non-owners forward).
	owned := map[string][]uint64{}
	for u := uint64(1); u <= users; u++ {
		o := n1.node.Owner(u)
		if len(owned[o]) < 8 {
			owned[o] = append(owned[o], u)
		}
	}
	if len(owned["n2"]) < 4 {
		t.Fatalf("ring gave n2 only %d of the first %d users", len(owned["n2"]), users)
	}
	total := 0
	for _, us := range owned {
		for i, u := range us {
			at := t0.Add(time.Duration(i) * time.Hour)
			n1.node.Ingest(clusterEvent(u, at, sf))
			n1.node.Ingest(clusterEvent(u, at.Add(10*time.Minute), ny))
			total += 2
		}
	}
	// Every owner detects its own users' teleports.
	for id, tn := range nodes {
		want := len(owned[id])
		eventually(t, "speed alerts on "+id, func() bool {
			_, n := tn.pipe.Alerts(store.AlertQuery{Detector: stream.StageSpeed})
			return n >= want
		})
	}

	// Quarantine two n2-owned users on n2 (the owner); the broadcast
	// must make every node deny them without any digest round.
	quarUsers := owned["n2"][:2]
	for _, u := range quarUsers {
		if err := n2.svc.Quarantine(lbsn.UserID(u), time.Hour, "drill", lbsn.QuarantineSourcePolicy); err != nil {
			t.Fatal(err)
		}
	}
	for _, tn := range survivors {
		tn := tn
		eventually(t, "broadcast quarantine on "+tn.id, func() bool {
			for _, u := range quarUsers {
				if !tn.svc.IsQuarantined(lbsn.UserID(u)) {
					return false
				}
			}
			return true
		})
	}

	// Wait for n2's journal to be fully shipped to its follower, then
	// record what the cluster must still know after the kill.
	eventually(t, "n2 replica caught up", func() bool {
		st := n2.node.Status().Replication
		if len(st.Followers) != 1 || !st.Followers[0].Synced {
			return false
		}
		return st.Followers[0].Lag == 0
	})
	n2Page, n2Total := n2.pipe.Alerts(store.AlertQuery{Limit: 10000})
	if n2Total == 0 {
		t.Fatal("n2 journaled no alerts; the drill would assert nothing")
	}
	mustSurvive := alertKeys(n2Page)
	follower := n2.node.Status().Replication.Followers[0].ID
	t.Logf("n2 holds %d alerts, replicated to %s", n2Total, follower)

	// ---- kill -9: the listener vanishes mid-load, nothing flushes. ----
	n2.srv.Close()
	// A few more events for n2-owned users while it is dead but not yet
	// detected: the forwards fail and must spill to the outbox.
	spillUser := owned["n2"][2]
	for i := 0; i < 3; i++ {
		at := t0.Add(100*time.Hour + time.Duration(i)*time.Hour)
		n1.node.Ingest(clusterEvent(spillUser, at, sf))
		n1.node.Ingest(clusterEvent(spillUser, at.Add(10*time.Minute), ny))
	}
	eventually(t, "failed forwards spilled to outbox", func() bool {
		st := n1.node.Status()
		return st.Replication.Outbox != nil && st.Replication.Outbox.Queued > 0
	})

	// Failure detection: survivors drop n2 from the ring. The
	// rebalance hook replays the outbox through re-resolved ownership.
	for _, tn := range survivors {
		tn := tn
		eventually(t, tn.id+" drops n2", func() bool {
			tn.clock.Advance(time.Second)
			tn.node.Tick()
			return len(tn.node.Membership().LivePeers()) == 1
		})
	}

	// Merged alert history is COMPLETE: every alert n2 held pre-kill is
	// in the merged view served by a survivor, via the promoted replica.
	eventually(t, "merged history complete from promoted replica", func() bool {
		page, _, info := n1.node.ClusterAlerts(store.AlertQuery{Limit: 10000})
		if info.Nodes != 2 {
			return false
		}
		got := alertKeys(page)
		for k := range mustSurvive {
			if !got[k] {
				return false
			}
		}
		return true
	})
	// And the promotion is visible in status on whoever follows n2.
	promotedSeen := false
	for _, tn := range survivors {
		for _, p := range tn.node.Status().Replication.Promoted {
			if p == "n2" {
				promotedSeen = true
			}
		}
	}
	if !promotedSeen {
		t.Fatal("no survivor promoted n2's replica")
	}

	// Quarantine holds on every surviving node: check-ins are DENIED,
	// not just flagged.
	for _, tn := range survivors {
		venue, err := tn.svc.AddVenue("Drill Venue", "", "SF", sf, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range quarUsers {
			res, err := tn.svc.CheckIn(lbsn.CheckinRequest{
				UserID: lbsn.UserID(u), VenueID: venue, Reported: sf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Accepted || res.Reason != lbsn.DenyQuarantined {
				t.Fatalf("node %s accepted quarantined user %d: %+v", tn.id, u, res)
			}
		}
	}

	// Outbox replay converged: the spilled events were re-routed to the
	// new owner and detected exactly once. The replayed sequence is
	// SF,NY at 10-minute spacing with 50-minute gaps between pairs —
	// every hop is inside the speed window, so 6 events yield exactly 5
	// alerts on the new owner, plus the 1 pre-kill alert served from
	// the replica: 6 total, and ONLY 6 (more would mean a replayed
	// duplicate re-alerted, fewer would mean spill loss).
	const wantSpillAlerts = 6
	eventually(t, "spilled events replayed to new owner", func() bool {
		n1.node.ReplayOutbox() // belt and braces: rebalance already kicked one
		_, got, info := n1.node.ClusterAlerts(store.AlertQuery{
			UserID: spillUser, Detector: stream.StageSpeed,
		})
		return info.Nodes == 2 && got >= wantSpillAlerts
	})
	_, spillTotal, _ := n1.node.ClusterAlerts(store.AlertQuery{
		UserID: spillUser, Detector: stream.StageSpeed,
	})
	if spillTotal != wantSpillAlerts {
		t.Fatalf("spill user has %d speed alerts, want exactly %d (dupes or loss)", spillTotal, wantSpillAlerts)
	}
	if st := n1.node.Status(); st.Forward.Dropped != 0 {
		t.Fatalf("forwarder dropped %d events despite the outbox", st.Forward.Dropped)
	}
}

// TestOutboxReplayEffectivelyOnce isolates the spill/replay path: a
// peer whose ingest endpoint fails, spilled forwards, recovery, one
// replay — every event processed exactly once, duplicate re-deliveries
// refused by the receiver.
func TestOutboxReplayEffectivelyOnce(t *testing.T) {
	const users = 100
	nodes := startReplicatedCluster(t, []string{"a", "b"}, users)
	na, nb := nodes["a"], nodes["b"]

	// Break b's ingest (heartbeats stay healthy, so b keeps ownership
	// and the spill stays addressed to b).
	nb.proxy.setFail("/cluster/v1/ingest", true)

	var bUsers []uint64
	for u := uint64(1); u <= users && len(bUsers) < 10; u++ {
		if na.node.Owner(u) == "b" {
			bUsers = append(bUsers, u)
		}
	}
	sf := geo.Point{Lat: 37.77, Lon: -122.42}
	t0 := simclock.Epoch()
	for i, u := range bUsers {
		if !na.node.Ingest(clusterEvent(u, t0.Add(time.Duration(i)*time.Hour), sf)) {
			t.Fatal("ingest refused despite outbox")
		}
	}
	eventually(t, "all failed forwards spilled", func() bool {
		st := na.node.Status()
		return st.Replication.Outbox.Queued == len(bUsers)
	})
	if got := nb.pipe.Stats().Published; got != 0 {
		t.Fatalf("b processed %d events while failing", got)
	}

	// Recovery: replay delivers everything exactly once.
	nb.proxy.setFail("/cluster/v1/ingest", false)
	eventually(t, "replay delivered all spilled events", func() bool {
		na.node.ReplayOutbox()
		return nb.pipe.Stats().Published == uint64(len(bUsers))
	})
	eventually(t, "outbox drained", func() bool {
		return na.node.Status().Replication.Outbox.Queued == 0
	})

	// Replays of already-landed deliveries are refused by sequence, so
	// even a crash-looped drain cannot double-process: the same
	// numbered delivery posted twice is accepted once and refused once.
	body, _ := json.Marshal(IngestBatch{From: "a", Events: []WireEvent{{
		User: bUsers[0], Venue: bUsers[0] + 2000, At: t0.Add(time.Hour),
		VenueLoc: sf, Reported: sf, Accepted: true, FwdSeq: 424242,
	}}})
	post := func() IngestAck {
		t.Helper()
		resp, err := http.Post(nb.srv.URL+"/cluster/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ack IngestAck
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		return ack
	}
	if ack := post(); ack.Accepted != 1 || ack.Duplicates != 0 {
		t.Fatalf("first delivery ack = %+v, want 1 accepted", ack)
	}
	if ack := post(); ack.Duplicates != 1 || ack.Accepted != 0 {
		t.Fatalf("duplicate delivery ack = %+v, want 1 duplicate 0 accepted", ack)
	}
	if nb.pipe.Stats().Published != uint64(len(bUsers))+1 {
		t.Fatal("duplicate delivery reached the pipeline")
	}
}

// TestQuarantineDigestRepairsMissedBroadcast: a node that was
// unreachable for the fan-out converges via the digest exchange, and a
// release tombstone wins over the stale quarantine it still holds.
func TestQuarantineDigestRepairsMissedBroadcast(t *testing.T) {
	nodes := startReplicatedCluster(t, []string{"a", "b"}, 50)
	na, nb := nodes["a"], nodes["b"]

	// b misses the broadcast entirely.
	nb.proxy.setFail("/cluster/v1/quarbcast", true)
	if err := na.svc.Quarantine(7, time.Hour, "missed", lbsn.QuarantineSourceManual); err != nil {
		t.Fatal(err)
	}
	eventually(t, "broadcast attempt flushed", func() bool {
		return na.node.Status().Replication.Broadcast.Originated >= 1
	})
	time.Sleep(20 * time.Millisecond) // let the failed fan-out finish
	if nb.svc.IsQuarantined(7) {
		t.Fatal("b learned of the quarantine despite the failure injection")
	}

	// One digest round repairs it.
	nb.proxy.setFail("/cluster/v1/quarbcast", false)
	na.node.SyncQuarantines()
	eventually(t, "digest delivered the quarantine to b", func() bool {
		return nb.svc.IsQuarantined(7)
	})

	// Release on a; b misses the broadcast again; the digest exchange
	// must carry the tombstone BOTH ways — run it from b this time, so
	// the repair arrives in the response leg.
	nb.proxy.setFail("/cluster/v1/quarbcast", true)
	na.svc.Unquarantine(7)
	time.Sleep(20 * time.Millisecond)
	if !nb.svc.IsQuarantined(7) {
		t.Fatal("b lost the quarantine without any exchange")
	}
	nb.node.SyncQuarantines()
	eventually(t, "tombstone released b's stale quarantine", func() bool {
		return !nb.svc.IsQuarantined(7)
	})
}

// TestQuarantineBroadcastShortensWindow pins the LWW apply path: a
// re-quarantine with a SHORTER window must propagate — the remote
// apply installs last-writer-wins rather than keeping the stricter of
// the two verdicts (which would leave remotes denying long after the
// origin stopped, beyond digest repair).
func TestQuarantineBroadcastShortensWindow(t *testing.T) {
	nodes := startReplicatedCluster(t, []string{"a", "b"}, 50)
	na, nb := nodes["a"], nodes["b"]
	if err := na.svc.Quarantine(9, 2*time.Hour, "long", lbsn.QuarantineSourceManual); err != nil {
		t.Fatal(err)
	}
	eventually(t, "b learned the 2h quarantine", func() bool {
		return nb.svc.IsQuarantined(9)
	})
	if err := na.svc.Quarantine(9, 10*time.Minute, "short", lbsn.QuarantineSourceManual); err != nil {
		t.Fatal(err)
	}
	cutoff := na.clock.Now().Add(time.Hour)
	eventually(t, "b's window shortened", func() bool {
		for _, v := range nb.svc.QuarantinedUsers() {
			if v.UserID == 9 {
				return v.Until.Before(cutoff) && v.Reason == "short"
			}
		}
		return false
	})
}

// TestReplicaShipLatencyMeasured measures replication lag as an
// operator experiences it: from an alert landing in the primary's
// journal to the follower acking it (durable on the replica). Logged,
// not asserted — absolute numbers are hardware-bound; EXPERIMENTS.md
// records a reference run.
func TestReplicaShipLatencyMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement")
	}
	nodes := startReplicatedCluster(t, []string{"a", "b"}, 10)
	na := nodes["a"]
	var samples []time.Duration
	for i := 0; i < 200; i++ {
		target := na.journal.NextIndex() + 1
		start := time.Now()
		if err := na.journal.Append(store.Alert{
			Seq: uint64(i + 1), Detector: "speed", UserID: uint64(i%8 + 1),
			VenueID: uint64(i + 100), At: simclock.Epoch().Add(time.Duration(i) * time.Second),
			Detail: "lag probe",
		}); err != nil {
			t.Fatal(err)
		}
		for {
			st := na.node.Status().Replication
			if len(st.Followers) == 1 && st.Followers[0].Synced && st.Followers[0].Cursor >= target {
				break
			}
			if time.Since(start) > 10*time.Second {
				t.Fatalf("append %d never acked", i)
			}
			time.Sleep(20 * time.Microsecond)
		}
		samples = append(samples, time.Since(start))
	}
	sortDurations(samples)
	t.Logf("append→replica-ack latency over %d samples: p50=%s p99=%s max=%s",
		len(samples), samples[len(samples)/2], samples[len(samples)*99/100], samples[len(samples)-1])
}

func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// TestFollowerSelectionDeterministic: every node computes the same
// follower chain for every member, and followers never include the
// primary itself.
func TestFollowerSelectionDeterministic(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4", "n5"}
	r1 := NewRing(members, 64)
	r2 := NewRing([]string{"n5", "n3", "n1", "n2", "n4"}, 64) // order must not matter
	for _, m := range members {
		s1 := r1.Successors(m, 2)
		s2 := r2.Successors(m, 2)
		if len(s1) != 2 || len(s2) != 2 {
			t.Fatalf("successors of %s: %v / %v", m, s1, s2)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("rings disagree on %s's followers: %v vs %v", m, s1, s2)
			}
			if s1[i] == m {
				t.Fatalf("%s follows itself", m)
			}
		}
	}
	// Dropping a member only changes chains that referenced it.
	r3 := NewRing([]string{"n1", "n2", "n4", "n5"}, 64)
	if got := r3.Successors("n3", 1); len(got) != 1 || got[0] == "n3" {
		t.Fatalf("successors of an absent member = %v", got)
	}
}
