package cluster

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/replica"
	"locheat/internal/store"
)

func codecWireEvent() WireEvent {
	return WireEvent{
		User:     42,
		Venue:    4242,
		At:       time.Date(2011, 6, 20, 12, 0, 0, 0, time.UTC),
		VenueLoc: geo.Point{Lat: 37.7749, Lon: -122.4194},
		Reported: geo.Point{Lat: 40.7128, Lon: -74.006},
		Accepted: true,
		Reason:   "quarantined",
		FwdSeq:   991,
	}
}

func codecIngestBatch() IngestBatch {
	return IngestBatch{From: "node-a", Events: []WireEvent{codecWireEvent(), {User: 7}}}
}

func codecHandoffBundle() HandoffBundle {
	t0 := time.Date(2011, 6, 20, 12, 0, 0, 0, time.UTC)
	return HandoffBundle{
		From: "node-a",
		Users: map[uint64]UserStateBundle{
			4: {"speed": []byte{1, 2, 3}, "dedupe": []byte("state")},
			9: {},
		},
		Quarantines: []store.QuarantineRecord{
			{UserID: 4, Since: t0, Until: t0.Add(time.Hour), Reason: "alerts", Source: "policy"},
		},
	}
}

// TestClusterCodecsEquivalence: for each hot wire message, the binary
// round trip must reproduce exactly what the JSON round trip does.
func TestClusterCodecsEquivalence(t *testing.T) {
	t.Run("ingest", func(t *testing.T) {
		b := codecIngestBatch()
		jb, _ := json.Marshal(b)
		var viaJSON IngestBatch
		if err := json.Unmarshal(jb, &viaJSON); err != nil {
			t.Fatal(err)
		}
		viaBin, err := decodeIngestBatch(encodeIngestBatch(nil, b))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaBin, viaJSON) {
			t.Fatalf("codecs disagree:\n json: %+v\n bin:  %+v", viaJSON, viaBin)
		}
	})
	t.Run("handoff", func(t *testing.T) {
		hb := codecHandoffBundle()
		jb, _ := json.Marshal(hb)
		var viaJSON HandoffBundle
		if err := json.Unmarshal(jb, &viaJSON); err != nil {
			t.Fatal(err)
		}
		viaBin, err := decodeHandoffBundle(encodeHandoffBundle(nil, hb))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaBin, viaJSON) {
			t.Fatalf("codecs disagree:\n json: %+v\n bin:  %+v", viaJSON, viaBin)
		}
	})
	t.Run("alerts", func(t *testing.T) {
		t0 := time.Date(2011, 6, 20, 12, 0, 0, 0, time.UTC)
		resp := LocalAlertsResponse{Node: "node-a", Total: 7, Alerts: []store.Alert{
			{Seq: 1, Detector: "speed", UserID: 4, VenueID: 9, At: t0, Detail: "d1"},
			{Seq: 2, Detector: "rate-throttle", UserID: 5, VenueID: 10, At: t0.Add(time.Minute), Detail: "d2"},
		}}
		jb, _ := json.Marshal(resp)
		var viaJSON LocalAlertsResponse
		if err := json.Unmarshal(jb, &viaJSON); err != nil {
			t.Fatal(err)
		}
		viaBin, err := decodeLocalAlerts(encodeLocalAlerts(nil, resp))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaBin, viaJSON) {
			t.Fatalf("codecs disagree:\n json: %+v\n bin:  %+v", viaJSON, viaBin)
		}
	})
	t.Run("quarbcast", func(t *testing.T) {
		t0 := time.Date(2011, 6, 20, 12, 0, 0, 0, time.UTC)
		qb := QuarBroadcast{From: "node-a", Entries: []replica.QuarEntry{
			{User: 4, Stamp: 77, Origin: "node-a", Active: true, Record: store.QuarantineRecord{
				UserID: 4, Since: t0, Until: t0.Add(time.Hour), Reason: "r", Source: "s",
			}},
		}}
		jb, _ := json.Marshal(qb)
		var viaJSON QuarBroadcast
		if err := json.Unmarshal(jb, &viaJSON); err != nil {
			t.Fatal(err)
		}
		viaBin, err := decodeQuarBroadcast(encodeQuarBroadcast(nil, qb))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaBin, viaJSON) {
			t.Fatalf("codecs disagree:\n json: %+v\n bin:  %+v", viaJSON, viaBin)
		}
	})
}

// TestSpillEventBothFormats: the outbox payload decoder must read both
// what this build spills (binary) and what a pre-upgrade build spilled
// (JSON) — outbox files survive the upgrade.
func TestSpillEventBothFormats(t *testing.T) {
	ev := codecWireEvent()
	got, err := decodeSpillEvent(encodeSpillEvent(ev))
	if err != nil || !reflect.DeepEqual(got, ev) {
		t.Fatalf("binary spill round trip: %v / %+v", err, got)
	}
	jb, _ := json.Marshal(ev)
	got, err = decodeSpillEvent(jb)
	if err != nil || !reflect.DeepEqual(got, ev) {
		t.Fatalf("legacy JSON spill: %v / %+v", err, got)
	}
	if _, err := decodeSpillEvent([]byte{}); err == nil {
		t.Fatal("empty spill payload accepted")
	}
	if _, err := decodeSpillEvent([]byte("{broken")); err == nil {
		t.Fatal("broken JSON spill payload accepted")
	}
}

// FuzzDecodeIngestBatch: the forwarding wire decoder must reject
// malformed/truncated input with an error — never a panic — and
// anything it accepts must re-encode canonically.
func FuzzDecodeIngestBatch(f *testing.F) {
	f.Add(encodeIngestBatch(nil, codecIngestBatch()))
	f.Add(encodeIngestBatch(nil, IngestBatch{From: "x"}))
	f.Add([]byte{})
	f.Add([]byte{1, 1, 'a', 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, in []byte) {
		b, err := decodeIngestBatch(in)
		if err != nil {
			return
		}
		// Compare canonical re-encodings, not structs: float fields may
		// legitimately carry NaN bits (NaN != NaN scuttles DeepEqual).
		enc1 := encodeIngestBatch(nil, b)
		again, err := decodeIngestBatch(enc1)
		if err != nil {
			t.Fatalf("accepted batch does not re-decode: %v", err)
		}
		if enc2 := encodeIngestBatch(nil, again); !bytes.Equal(enc1, enc2) {
			t.Fatal("accepted batch does not round-trip canonically")
		}
	})
}

// FuzzDecodeHandoffBundle guards the remaining binary surface the
// ingest fuzzer does not reach (nested maps and opaque blobs).
func FuzzDecodeHandoffBundle(f *testing.F) {
	f.Add(encodeHandoffBundle(nil, codecHandoffBundle()))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		if _, err := decodeHandoffBundle(in); err != nil {
			return
		}
	})
}
