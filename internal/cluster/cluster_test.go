package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"locheat/internal/simclock"
)

// pingServer is a minimal peer: answers /cluster/v1/ping with its ID.
func pingServer(t *testing.T, id string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(PingResponse{Node: id})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestMembershipFailureAndRevival(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	peer := pingServer(t, "p1")
	var transitions int
	m := NewMembership(
		Member{ID: "self", Addr: "http://unused"},
		[]Member{{ID: "p1", Addr: peer.URL}, {ID: "self", Addr: "http://unused"}},
		MembershipConfig{HeartbeatEvery: time.Second, FailAfter: 3 * time.Second, SuspectAfter: 2 * time.Second, Clock: clock},
	)
	m.OnChange(func() { transitions++ })

	if got := len(m.Live()); got != 2 {
		t.Fatalf("live = %d, want 2 (self is never in peers twice)", got)
	}
	m.Tick()
	if len(m.LivePeers()) != 1 {
		t.Fatal("healthy peer dropped")
	}

	// Peer goes silent: two-phase decline. Before FailAfter it is
	// alive; past FailAfter it turns suspect but KEEPS its ring seat
	// (the flap hysteresis); only past FailAfter+SuspectAfter is it
	// declared left and dropped.
	peer.Close()
	clock.Advance(2 * time.Second)
	m.Tick()
	if len(m.LivePeers()) != 1 {
		t.Fatal("peer declared dead before FailAfter")
	}
	clock.Advance(2 * time.Second)
	m.Tick() // silence 4s >= FailAfter: suspect
	if len(m.LivePeers()) != 1 {
		t.Fatal("suspect peer lost its ring seat (hysteresis broken)")
	}
	if transitions != 0 {
		t.Fatalf("suspect transition fired onChange (%d): suspicion must not rebalance", transitions)
	}
	clock.Advance(3 * time.Second)
	m.Tick() // silence 7s >= FailAfter+SuspectAfter: left
	if len(m.LivePeers()) != 0 {
		t.Fatal("silent peer still live past FailAfter+SuspectAfter")
	}
	if transitions != 1 {
		t.Fatalf("transitions = %d, want 1", transitions)
	}

	// A leave notice is immediate, no failure window. (Peer already
	// dead here; MarkLeft on a dead peer changes nothing.)
	m.MarkLeft("p1")
	if transitions != 1 {
		t.Fatal("MarkLeft on dead peer fired onChange")
	}
}

func TestMembershipMarkLeftImmediate(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	peer := pingServer(t, "p1")
	fired := 0
	m := NewMembership(Member{ID: "self"}, []Member{{ID: "p1", Addr: peer.URL}},
		MembershipConfig{Clock: clock})
	m.OnChange(func() { fired++ })
	m.MarkLeft("p1")
	if len(m.LivePeers()) != 0 || fired != 1 {
		t.Fatalf("leave not immediate: peers=%d fired=%d", len(m.LivePeers()), fired)
	}
	// The leaver comes back: one heartbeat revives it.
	m.Tick()
	if len(m.LivePeers()) != 1 || fired != 2 {
		t.Fatalf("returned leaver not revived: peers=%d fired=%d", len(m.LivePeers()), fired)
	}
}

func TestMembershipRejectsImpostor(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	impostor := pingServer(t, "someone-else")
	m := NewMembership(Member{ID: "self"}, []Member{{ID: "p1", Addr: impostor.URL}},
		MembershipConfig{HeartbeatEvery: time.Second, FailAfter: 2 * time.Second, SuspectAfter: time.Second, Clock: clock})
	clock.Advance(3 * time.Second)
	m.Tick() // wrong ID = failed probe: suspect
	clock.Advance(3 * time.Second)
	m.Tick() // past FailAfter+SuspectAfter: left
	if len(m.LivePeers()) != 0 {
		t.Fatal("peer answering with the wrong node ID kept alive")
	}
}

func TestForwarderBatchesAndDrains(t *testing.T) {
	var mu sync.Mutex
	var batches []IngestBatch
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b IngestBatch
		if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
			t.Errorf("bad batch: %v", err)
		}
		mu.Lock()
		batches = append(batches, b)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(IngestAck{Accepted: len(b.Events)})
	}))
	defer srv.Close()

	f := NewForwarder("src", ForwarderConfig{BatchSize: 3, FlushEvery: time.Hour, QueueSize: 64})
	for i := 0; i < 7; i++ {
		if !f.Enqueue(srv.URL, WireEvent{User: uint64(i + 1)}) {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	f.Flush()
	f.Close()

	mu.Lock()
	defer mu.Unlock()
	total := 0
	var users []uint64
	for _, b := range batches {
		if b.From != "src" {
			t.Fatalf("batch From = %q", b.From)
		}
		if len(b.Events) > 3 {
			t.Fatalf("batch of %d exceeds BatchSize", len(b.Events))
		}
		total += len(b.Events)
		for _, ev := range b.Events {
			users = append(users, ev.User)
		}
	}
	if total != 7 {
		t.Fatalf("delivered %d events, want 7", total)
	}
	for i, u := range users {
		if u != uint64(i+1) {
			t.Fatalf("order broken: %v", users)
		}
	}
	st := f.Stats()
	if st.Enqueued != 7 || st.Sent != 7 || st.Dropped != 0 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestForwarderDropOnFull(t *testing.T) {
	release := make(chan struct{})
	got := make(chan struct{}, 16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got <- struct{}{}
		<-release
		_ = json.NewEncoder(w).Encode(IngestAck{})
	}))
	defer srv.Close()
	defer close(release)

	f := NewForwarder("src", ForwarderConfig{BatchSize: 1, FlushEvery: time.Hour, QueueSize: 2})
	defer f.Close()
	// First event: picked up by the sender, which blocks in the POST.
	if !f.Enqueue(srv.URL, WireEvent{User: 1}) {
		t.Fatal("enqueue 1 refused")
	}
	<-got // sender is now stuck in the handler
	// Two more fill the queue; the fourth must drop, not block.
	f.Enqueue(srv.URL, WireEvent{User: 2})
	f.Enqueue(srv.URL, WireEvent{User: 3})
	done := make(chan bool, 1)
	go func() { done <- f.Enqueue(srv.URL, WireEvent{User: 4}) }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("4th enqueue accepted past a full queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("enqueue blocked on a full queue")
	}
	if st := f.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
}

func TestForwarderCountsErrors(t *testing.T) {
	f := NewForwarder("src", ForwarderConfig{BatchSize: 1, FlushEvery: time.Hour, QueueSize: 8})
	f.Enqueue("http://127.0.0.1:1", WireEvent{User: 1}) // nothing listens there
	f.Flush()
	f.Close()
	if st := f.Stats(); st.Errors == 0 {
		t.Fatalf("unreachable peer produced no error: %+v", st)
	}
}
