// Chain re-replication: restoring the replica factor after a primary
// dies. Read-side promotion (promotedPrimaries) makes a dead node's
// history *visible* — some follower serves its replica in merged views
// — but visibility is one copy, and one copy is how data dies next. The
// repair pass closes the gap: the dead primary's first live ring
// successor (deterministic, so exactly one node volunteers) re-ships
// its replica of the promoted log to the primary's new successor set
// until Factor copies exist again. Shipping reuses the normal replica
// wire (sendShipBatch → Set.Apply) with From = the dead primary, so
// receivers file the records under the right log, the cursor dedupe
// makes retries idempotent, and if the primary ever comes back its own
// shipper simply resumes from wherever the repair left its followers.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"sort"

	"locheat/internal/replica"
	"locheat/internal/store"
)

// RepairStatus is one (primary, target) re-replication stream's
// externally visible progress, surfaced in ReplicationStatus.Repairs.
type RepairStatus struct {
	// Primary is the dead node whose log is being re-shipped; Target is
	// the new successor receiving the copy.
	Primary string `json:"primary"`
	Target  string `json:"target"`
	// Cursor is the target's acked position in the primary's cursor
	// space; Goal is the promoted replica's own position — the repair is
	// Done when Cursor reaches it.
	Cursor uint64 `json:"cursor"`
	Goal   uint64 `json:"goal"`
	Done   bool   `json:"done"`
	Errors uint64 `json:"errors,omitempty"`
}

// kickRepair starts one asynchronous repair pass unless one is already
// running. Called on every ring change and from the replication loop's
// cadence; no-ops without a replica set or factor.
func (n *Node) kickRepair() {
	if n.rset == nil || n.cfg.Replica.Factor < 2 {
		return
	}
	if !n.repairing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer n.repairing.Store(false)
		n.runRepairPass()
	}()
}

// RunRepair runs one synchronous repair pass (tests, drills). Skipped
// if an asynchronous pass is mid-flight.
func (n *Node) RunRepair() {
	if n.rset == nil || n.cfg.Replica.Factor < 2 {
		return
	}
	if !n.repairing.CompareAndSwap(false, true) {
		return
	}
	defer n.repairing.Store(false)
	n.runRepairPass()
}

// runRepairPass walks every promoted primary this node is the repairer
// for and pushes its new successor set to the replica's tail.
func (n *Node) runRepairPass() {
	ring, leaving := n.currentRing()
	if leaving || ring.Size() == 0 {
		return
	}
	promoted := n.promotedPrimaries()
	n.pruneRepairs(promoted)
	factor := n.cfg.Replica.Factor
	for _, p := range promoted {
		// The repairer is the dead primary's FIRST live ring successor:
		// every node computes the same ring, so exactly one volunteers
		// and a repairer dying just moves the job one seat clockwise.
		heirs := ring.Successors(p, factor)
		if len(heirs) == 0 || heirs[0] != n.cfg.Self.ID {
			continue
		}
		n.repairPrimary(p, heirs[1:])
	}
}

// pruneRepairs drops progress rows for primaries no longer promoted —
// the primary came back (its own shipper owns the chain again) or its
// replica aged out.
func (n *Node) pruneRepairs(promoted []string) {
	keep := make(map[string]bool, len(promoted))
	for _, p := range promoted {
		keep[p] = true
	}
	n.repairMu.Lock()
	for k, r := range n.repairs {
		if !keep[r.Primary] {
			delete(n.repairs, k)
		}
	}
	n.repairMu.Unlock()
}

func (n *Node) setRepairStatus(r RepairStatus) {
	n.repairMu.Lock()
	n.repairs[r.Primary+"\x00"+r.Target] = r
	n.repairMu.Unlock()
}

// repairPrimary re-ships the promoted replica of primary to each live
// heir until every one holds the replica's full tail. Batches ride the
// normal ship wire with the dead primary's identity and epoch, so the
// receiver's Apply files and dedupes them exactly as if the primary
// had shipped them itself.
func (n *Node) repairPrimary(primary string, heirs []string) {
	st := n.rset.Cursor(primary)
	goal := st.Cursor
	batchSize := n.cfg.Replica.ShipBatch
	if batchSize <= 0 {
		batchSize = 256
	}
	want := n.cfg.Replica.Factor - 1 // copies beyond our own
	repaired := 0
	var scratch []store.Alert
	for _, id := range heirs {
		if repaired >= want {
			break
		}
		peer, ok := n.members.Peer(id)
		if !ok {
			continue
		}
		repaired++ // counted even while catching up: the stream exists
		status := RepairStatus{Primary: primary, Target: id, Goal: goal}
		cur, err := n.fetchCursorFor(peer.Addr, primary)
		if err != nil {
			status.Errors++
			n.setRepairStatus(status)
			continue
		}
		cursor := uint64(0)
		if cur.Epoch == st.Epoch {
			cursor = cur.Cursor
		}
		status.Cursor = cursor
		for cursor < goal {
			batch, next := n.rset.ReadFrom(primary, scratch[:0], cursor, batchSize)
			scratch = batch[:0]
			if len(batch) == 0 {
				// We hold nothing past cursor (retention gap at the head of
				// our replica): nothing more to give this target.
				break
			}
			ack, err := n.sendShipBatch(
				replica.Target{ID: peer.ID, Addr: peer.Addr},
				replica.ShipBatch{From: primary, Epoch: st.Epoch, Start: next - uint64(len(batch)), Alerts: batch})
			if err != nil {
				status.Errors++
				n.cfg.Logf("cluster: repair %s -> %s failed at cursor %d: %v", primary, id, cursor, err)
				break
			}
			n.repairShipped.Add(uint64(len(batch)))
			if ack.Cursor <= cursor {
				break // target refuses to advance: stop rather than spin
			}
			cursor = ack.Cursor
			status.Cursor = cursor
		}
		status.Done = cursor >= goal
		n.setRepairStatus(status)
		if status.Done {
			n.cfg.Logf("cluster: repaired %s on %s to cursor %d (factor restored for this seat)", primary, id, cursor)
		}
	}
}

// fetchCursorFor asks a peer where it stands for an arbitrary primary
// (fetchFollowerCursor asks about our own journal; the repair path asks
// about the dead primary's).
func (n *Node) fetchCursorFor(addr, primary string) (replica.CursorState, error) {
	resp, err := n.cfg.HTTP.Get(addr + "/cluster/v1/replica/cursor?primary=" + url.QueryEscape(primary))
	if err != nil {
		return replica.CursorState{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return replica.CursorState{}, fmt.Errorf("cursor for %s: status %d", primary, resp.StatusCode)
	}
	var cr ReplicaCursorResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return replica.CursorState{}, err
	}
	return replica.CursorState{Epoch: cr.Epoch, Cursor: cr.Cursor}, nil
}

// repairStatuses snapshots the progress rows, sorted for stable JSON.
func (n *Node) repairStatuses() []RepairStatus {
	n.repairMu.Lock()
	out := make([]RepairStatus, 0, len(n.repairs))
	for _, r := range n.repairs {
		out = append(out, r)
	}
	n.repairMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Primary != out[j].Primary {
			return out[i].Primary < out[j].Primary
		}
		return out[i].Target < out[j].Target
	})
	return out
}
