package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"locheat/internal/obs"
	"locheat/internal/simclock"
)

// Member is one node of the cluster: a stable ID and the base URL of
// its internal /cluster/v1 listener (scheme://host:port, no trailing
// slash).
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// MemberState is one member's lifecycle position in the gossip table.
// The zero value is StateJoining so a half-initialized entry never
// claims ring ownership.
type MemberState uint8

const (
	// StateJoining: announced via the join handshake but not yet owning
	// traffic. Excluded from the ring; the member promotes itself to
	// alive (with a version bump) after its first successful probe
	// round.
	StateJoining MemberState = iota
	// StateAlive: answering probes, owns its ring share.
	StateAlive
	// StateSuspect: silent past FailAfter but not yet written off. Still
	// in the ring — the hysteresis that keeps delayed or reordered
	// heartbeats from oscillating ownership and re-triggering handoffs.
	StateSuspect
	// StateLeft: gone — gracefully (leave notice) or declared dead after
	// the suspect window expired. Out of the ring; kept as a tombstone
	// so stale gossip cannot resurrect it at an older version.
	StateLeft
)

// String renders the wire form used in gossip entries and status rows.
func (s MemberState) String() string {
	switch s {
	case StateJoining:
		return "joining"
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateLeft:
		return "left"
	}
	return "unknown"
}

// parseMemberState is the inverse of String; unknown strings map to
// StateLeft (the conservative reading: never grant ring share on a
// state this build cannot interpret).
func parseMemberState(s string) MemberState {
	switch s {
	case "joining":
		return StateJoining
	case "alive":
		return StateAlive
	case "suspect":
		return StateSuspect
	case "left":
		return StateLeft
	}
	return StateLeft
}

// statePrecedence breaks version ties in the LWW merge: at equal
// version the more "terminal" claim wins, so a left/suspect assertion
// is not silently shadowed by an alive echo at the same version — the
// member refutes it by bumping its version, which is the only way back.
func statePrecedence(s MemberState) int {
	switch s {
	case StateJoining:
		return 0
	case StateAlive:
		return 1
	case StateSuspect:
		return 2
	case StateLeft:
		return 3
	}
	return 3
}

// ringEligible reports whether a state owns key space. Suspect members
// stay in the ring: flapping probes must not churn ownership (and the
// handoffs that ride on it) until the suspect window expires for real.
func ringEligible(s MemberState) bool { return s == StateAlive || s == StateSuspect }

// MemberEntry is one gossip-table row on the wire: identity, address,
// lifecycle state and its LWW version. Entries piggyback on heartbeat
// probe bodies and ping replies (anti-entropy both ways per round) and
// seed the join handshake's member-table transfer.
type MemberEntry struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	State string `json:"state"`
	Ver   uint64 `json:"ver"`
}

// MembershipConfig tunes failure detection and gossip. Zero values
// take defaults.
type MembershipConfig struct {
	// HeartbeatEvery is the probe interval (default 1s).
	HeartbeatEvery time.Duration
	// FailAfter marks a peer suspect after this long without a
	// successful probe (default 3×HeartbeatEvery). Suspect members keep
	// their ring share; probes also revive — a suspect or left peer that
	// answers again rejoins at a bumped version.
	FailAfter time.Duration
	// SuspectAfter is the additional silence, past FailAfter, before a
	// suspect member is declared left and its ring share rebalanced
	// (default 2×FailAfter). This is the flap-hysteresis window.
	SuspectAfter time.Duration
	// Timeout bounds one probe (default HeartbeatEvery).
	Timeout time.Duration
	// Joining starts this node in StateJoining: it gossips but owns no
	// ring share until its first successful probe round promotes it.
	// Set by the -cluster-join boot path; static boots start alive.
	Joining bool
	// Clock supplies probe timestamps; simulated clocks make failure
	// detection deterministic in tests. Default wall clock.
	Clock simclock.Clock
	// HTTP issues the probes (default a client over the shared cluster
	// transport with Timeout).
	HTTP *http.Client
	// ProbePayload, when set, supplies a body (and its content type)
	// attached to every heartbeat probe — computed once per Tick round
	// and POSTed to each peer. This is how the quarantine digest and the
	// gossip member table ride the heartbeats instead of costing their
	// own O(peers) request rounds.
	ProbePayload func() (body []byte, contentType string)
	// ProbeReply receives each successful probe's parsed response,
	// outside the membership lock (possibly concurrently, one call per
	// peer). The node uses it to apply piggybacked digest repairs and
	// to trigger an immediate outbox drain toward a reachable peer.
	ProbeReply func(peer Member, pr PingResponse)
	// Logf receives membership transitions. Nil discards.
	Logf func(format string, args ...any)
	// Obs registers failure-detector telemetry: heartbeat RTT histogram
	// plus per-peer liveness and codec-negotiation gauges (labelled by
	// peer ID, registered as peers are learned — statically at
	// construction or dynamically through gossip). Nil probes
	// unobserved.
	Obs *obs.Registry
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3 * c.HeartbeatEvery
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2 * c.FailAfter
	}
	if c.Timeout <= 0 {
		c.Timeout = c.HeartbeatEvery
	}
	if c.Clock == nil {
		c.Clock = simclock.Real{}
	}
	if c.HTTP == nil {
		c.HTTP = newHTTPClient(c.Timeout)
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// peerState tracks one peer's gossip entry, local probe view and
// advertised capabilities.
type peerState struct {
	member   Member
	state    MemberState
	ver      uint64
	lastSeen time.Time
	// binary records the peer's last advertised wire codec: true once
	// a ping response carried a binary capability string ("bin/1" or
	// "bin/2"). Peers start false — JSON is the safe default until the
	// peer says otherwise — and every successful probe refreshes it,
	// so a peer that restarts into an older (or JSON-pinned) build
	// downgrades within one heartbeat interval. traced narrows it:
	// true only for "bin/2" peers, which additionally accept the
	// trace-aware v2 message layouts.
	binary bool
	traced bool
}

// Membership keeps the cluster's member table live with heartbeats and
// gossip. Peers enter statically (boot flags), through the join
// handshake, or by gossip from any existing member; they fall out when
// they announce a leave or stay silent past the suspect window, and
// rejoin when they answer again. Every entry is version-stamped and
// merged last-writer-wins, so concurrent observations converge without
// coordination. Safe for concurrent use.
type Membership struct {
	self Member
	cfg  MembershipConfig

	mu    sync.Mutex
	peers map[string]*peerState // by ID
	// selfState/selfVer are this node's own gossip entry. A node seeing
	// itself gossiped suspect or left refutes the claim by re-asserting
	// alive at a higher version (the SWIM incarnation idiom) — that is
	// what makes partition heal instead of wedge.
	selfState MemberState
	selfVer   uint64

	// onChange fires after every ring-eligible-set transition, outside
	// mu. Set once before Start.
	onChange func()

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	adopted  atomic.Uint64
	refuted  atomic.Uint64
	rtt      *obs.Histogram // nil without MembershipConfig.Obs
	obsReg   *obs.Registry
	obsOnce  map[string]bool
	obsPeekM sync.Mutex
}

// NewMembership builds the membership view. Peers containing self (by
// ID) are skipped, so the full cluster list can be passed to every
// node unchanged. Statically configured peers start alive: at boot the
// optimistic assumption routes traffic immediately and the first
// failed window corrects it. With cfg.Joining the node itself starts
// in StateJoining and owns no ring share until promoted.
func NewMembership(self Member, peers []Member, cfg MembershipConfig) *Membership {
	cfg = cfg.withDefaults()
	m := &Membership{
		self:      self,
		cfg:       cfg,
		peers:     make(map[string]*peerState),
		selfState: StateAlive,
		selfVer:   1,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		obsOnce:   make(map[string]bool),
	}
	if cfg.Joining {
		m.selfState = StateJoining
	}
	now := cfg.Clock.Now()
	m.registerObs(cfg.Obs)
	for _, p := range peers {
		if p.ID == self.ID {
			continue
		}
		m.peers[p.ID] = &peerState{member: p, state: StateAlive, lastSeen: now}
		m.registerPeerObs(p.ID)
	}
	return m
}

// registerObs exposes the failure detector on reg: probe RTTs, the
// live-set gauge and the gossip merge counters. Per-peer gauges are
// registered by registerPeerObs as peers are learned. No-op on a nil
// registry.
func (m *Membership) registerObs(reg *obs.Registry) {
	m.obsReg = reg
	if reg == nil {
		return
	}
	m.rtt = reg.Histogram("locheat_cluster_heartbeat_rtt_seconds",
		"round trip of one successful heartbeat probe", obs.Seconds)
	reg.GaugeFunc("locheat_cluster_live_members",
		"members in the current ring-eligible set, self included",
		func() float64 { return float64(len(m.Live())) })
	reg.CounterFunc("locheat_cluster_gossip_adopted_total",
		"member-table entries adopted from gossip (LWW merge wins)",
		m.adopted.Load)
	reg.CounterFunc("locheat_cluster_gossip_refuted_total",
		"suspect/left claims about this node refuted by re-asserting alive",
		m.refuted.Load)
}

// registerPeerObs registers the per-peer gauges for one learned peer.
// Idempotent (the registry get-or-creates, and obsOnce filters repeat
// merges); called under no lock ordering constraint with mu — it only
// takes the small obsPeekM.
func (m *Membership) registerPeerObs(id string) {
	reg := m.obsReg
	if reg == nil {
		return
	}
	m.obsPeekM.Lock()
	if m.obsOnce[id] {
		m.obsPeekM.Unlock()
		return
	}
	m.obsOnce[id] = true
	m.obsPeekM.Unlock()
	peek := func(read func(*peerState) bool) func() float64 {
		return func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			if p, ok := m.peers[id]; ok && read(p) {
				return 1
			}
			return 0
		}
	}
	reg.GaugeFunc("locheat_cluster_peer_alive",
		"1 while the peer holds ring share (alive or suspect)",
		peek(func(p *peerState) bool { return ringEligible(p.state) }), "peer", id)
	reg.GaugeFunc("locheat_cluster_peer_binary",
		"1 while the peer's heartbeats advertise the binary wire codec",
		peek(func(p *peerState) bool { return p.binary }), "peer", id)
	reg.GaugeFunc("locheat_cluster_peer_traced",
		"1 while the peer's heartbeats advertise the trace-aware binary wire codec",
		peek(func(p *peerState) bool { return p.traced }), "peer", id)
}

// OnChange installs the ring-eligible-set transition hook. Call before
// Start; the hook runs outside the membership lock.
func (m *Membership) OnChange(fn func()) { m.onChange = fn }

// Self returns this node's member record.
func (m *Membership) Self() Member { return m.self }

// Joining reports whether this node is still waiting to own traffic.
func (m *Membership) Joining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.selfState == StateJoining
}

// Live returns the current ring-eligible member set (alive and
// suspect), including self once self is past joining, sorted by ID
// (NewRing sorts anyway; sorted here so logs are stable).
func (m *Membership) Live() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.peers)+1)
	if ringEligible(m.selfState) {
		out = append(out, m.self)
	}
	for _, p := range m.peers {
		if ringEligible(p.state) {
			out = append(out, p.member)
		}
	}
	sortMembers(out)
	return out
}

// LivePeers returns the ring-eligible set excluding self.
func (m *Membership) LivePeers() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.peers))
	for _, p := range m.peers {
		if ringEligible(p.state) {
			out = append(out, p.member)
		}
	}
	sortMembers(out)
	return out
}

// IsLive reports whether the member currently holds ring share (self
// does once past joining).
func (m *Membership) IsLive(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == m.self.ID {
		return ringEligible(m.selfState)
	}
	p, ok := m.peers[id]
	return ok && ringEligible(p.state)
}

// Peer resolves a member ID to its record, live or not.
func (m *Membership) Peer(id string) (Member, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return Member{}, false
	}
	return p.member, true
}

// PeerByAddr resolves a peer by its advertised address — the reverse
// lookup the forwarder's spill path needs now that the member table is
// dynamic.
func (m *Membership) PeerByAddr(addr string) (Member, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		if p.member.Addr == addr {
			return p.member, true
		}
	}
	return Member{}, false
}

// SupportsBinary reports whether the peer's last heartbeat advertised
// the binary wire codec (false until a probe has succeeded).
func (m *Membership) SupportsBinary(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	return ok && p.binary
}

// SupportsBinaryAddr is SupportsBinary keyed by the peer's address —
// the forwarder's view of the world.
func (m *Membership) SupportsBinaryAddr(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		if p.member.Addr == addr {
			return p.binary
		}
	}
	return false
}

// SupportsTraced reports whether the peer's last heartbeat advertised
// the trace-aware binary codec ("bin/2"), i.e. the peer may be sent
// v2 message layouts carrying trace context.
func (m *Membership) SupportsTraced(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	return ok && p.traced
}

// SupportsTracedAddr is SupportsTraced keyed by the peer's address.
func (m *Membership) SupportsTracedAddr(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		if p.member.Addr == addr {
			return p.traced
		}
	}
	return false
}

// MemberStatus is one row of the cluster status surface.
type MemberStatus struct {
	ID       string    `json:"id"`
	Addr     string    `json:"addr"`
	Self     bool      `json:"self"`
	Alive    bool      `json:"alive"`
	State    string    `json:"state"`
	Ver      uint64    `json:"ver"`
	Left     bool      `json:"left,omitempty"`
	LastSeen time.Time `json:"lastSeen,omitempty"`
}

// Status snapshots every member, self first, peers sorted by ID.
func (m *Membership) Status() []MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []MemberStatus{{
		ID: m.self.ID, Addr: m.self.Addr, Self: true,
		Alive: ringEligible(m.selfState),
		State: m.selfState.String(), Ver: m.selfVer,
	}}
	ids := make([]string, 0, len(m.peers))
	for id := range m.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := m.peers[id]
		out = append(out, MemberStatus{
			ID:       p.member.ID,
			Addr:     p.member.Addr,
			Alive:    ringEligible(p.state),
			State:    p.state.String(),
			Ver:      p.ver,
			Left:     p.state == StateLeft,
			LastSeen: p.lastSeen,
		})
	}
	return out
}

// GossipEntries snapshots the member table — self included — in wire
// form, for piggybacking on probes, ping replies and join responses.
func (m *Membership) GossipEntries() []MemberEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberEntry, 0, len(m.peers)+1)
	out = append(out, MemberEntry{
		ID: m.self.ID, Addr: m.self.Addr,
		State: m.selfState.String(), Ver: m.selfVer,
	})
	for _, p := range m.peers {
		out = append(out, MemberEntry{
			ID: p.member.ID, Addr: p.member.Addr,
			State: p.state.String(), Ver: p.ver,
		})
	}
	return out
}

// Merge folds remote gossip entries into the table: higher version
// wins, ties break toward the more terminal state (statePrecedence).
// Unknown members are learned (that is how a join spreads past the
// seed). Claims about self in suspect or left are refuted by bumping
// our own version — the next gossip round carries the correction.
// Fires onChange when the ring-eligible set changed.
func (m *Membership) Merge(entries []MemberEntry) {
	if len(entries) == 0 {
		return
	}
	changed := false
	var learned []string
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	for _, e := range entries {
		if e.ID == "" {
			continue
		}
		st := parseMemberState(e.State)
		if e.ID == m.self.ID {
			// Self-refutation: a rumor that we are suspect/left at a version
			// at or past ours would, unrefuted, strip our ring share
			// everywhere. Re-assert alive above it. A joining node does not
			// contest a joining claim — that is just its own announcement
			// echoing back.
			if st != m.selfState && e.Ver >= m.selfVer && statePrecedence(st) > statePrecedence(m.selfState) {
				m.selfVer = e.Ver + 1
				m.refuted.Add(1)
				m.cfg.Logf("cluster: refuting gossip claiming self %s (ver %d); re-asserting %s ver %d",
					st, e.Ver, m.selfState, m.selfVer)
			} else if e.Ver > m.selfVer && st == m.selfState {
				// Someone carried our own entry forward at a higher version
				// (e.g. we restarted); keep ours monotonic past it.
				m.selfVer = e.Ver + 1
			}
			continue
		}
		p, ok := m.peers[e.ID]
		if !ok {
			m.peers[e.ID] = &peerState{
				member:   Member{ID: e.ID, Addr: strings.TrimRight(e.Addr, "/")},
				state:    st,
				ver:      e.Ver,
				lastSeen: now,
			}
			learned = append(learned, e.ID)
			m.adopted.Add(1)
			if ringEligible(st) {
				changed = true
			}
			m.cfg.Logf("cluster: learned member %s (%s) state %s ver %d via gossip", e.ID, e.Addr, st, e.Ver)
			continue
		}
		if e.Ver < p.ver || (e.Ver == p.ver && statePrecedence(st) <= statePrecedence(p.state)) {
			continue
		}
		wasEligible := ringEligible(p.state)
		if e.Addr != "" {
			p.member.Addr = strings.TrimRight(e.Addr, "/")
		}
		if st != p.state {
			m.cfg.Logf("cluster: gossip: peer %s %s -> %s (ver %d -> %d)", e.ID, p.state, st, p.ver, e.Ver)
		}
		p.state = st
		p.ver = e.Ver
		m.adopted.Add(1)
		if ringEligible(st) && !wasEligible {
			// Fresh grace window: adopting a revival must not be instantly
			// undone by our own stale lastSeen.
			p.lastSeen = now
		}
		if wasEligible != ringEligible(st) {
			changed = true
		}
	}
	m.mu.Unlock()
	for _, id := range learned {
		m.registerPeerObs(id)
	}
	if changed {
		m.notify()
	}
}

// Start runs the heartbeat loop until Stop. The loop ticks on the wall
// clock (probe pacing is operational, not event time); tests call Tick
// directly instead.
func (m *Membership) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Tick()
			}
		}
	}()
}

// Stop terminates the heartbeat loop. Idempotent, and safe whether or
// not Start ever ran (tests drive Tick by hand and never start the
// loop).
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if started {
		<-m.done
	}
}

// Tick runs one probe round: every known peer is pinged, state is
// re-evaluated against the suspect/left windows, a joining self is
// promoted on its first successful round, and onChange fires if the
// ring-eligible set changed. Exposed so tests drive failure detection
// deterministically.
func (m *Membership) Tick() {
	// Snapshot Member VALUES under the lock: a concurrent gossip merge
	// (riding another probe's reply) may rewrite a peer's address.
	m.mu.Lock()
	peers := make([]Member, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p.member)
	}
	m.mu.Unlock()

	// The piggyback payload (quarantine digest + gossip entries) is
	// built once per round and shared by every probe goroutine
	// read-only.
	var body []byte
	var bodyCT string
	if m.cfg.ProbePayload != nil {
		body, bodyCT = m.cfg.ProbePayload()
	}

	type probe struct {
		id string
		ok bool
	}
	results := make(chan probe, len(peers))
	for _, mem := range peers {
		go func(mem Member) {
			results <- probe{id: mem.ID, ok: m.ping(mem, body, bodyCT)}
		}(mem)
	}
	ok := make(map[string]bool, len(peers))
	anyOK := false
	for range peers {
		r := <-results
		ok[r.id] = r.ok
		anyOK = anyOK || r.ok
	}

	changed := false
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	for id, p := range m.peers {
		if ok[id] {
			p.lastSeen = now
			switch p.state {
			case StateAlive:
			case StateJoining:
				// The joiner promotes itself; a probe answer alone must not
				// grant it ring share before it has pulled the cluster's
				// quarantine/member state.
			default:
				// Revival: answering again after suspect/left. Bump the
				// version so gossip out-ranks the stale claim everywhere.
				// Only a left peer's return changes ring eligibility — a
				// suspect one never lost its seat, so its recovery must not
				// fire onChange (that would let a flapping link re-trigger
				// rebalances).
				if !ringEligible(p.state) {
					changed = true
				}
				p.state = StateAlive
				p.ver++
				m.cfg.Logf("cluster: peer %s (%s) is back (ver %d)", id, p.member.Addr, p.ver)
			}
			continue
		}
		switch p.state {
		case StateAlive:
			if now.Sub(p.lastSeen) >= m.cfg.FailAfter {
				p.state = StateSuspect
				p.ver++
				// Suspect keeps ring share: no eligibility change, no
				// rebalance — the hysteresis against heartbeat flaps.
				m.cfg.Logf("cluster: peer %s (%s) suspect (silent for %s)", id, p.member.Addr, now.Sub(p.lastSeen))
			}
		case StateSuspect:
			if now.Sub(p.lastSeen) >= m.cfg.FailAfter+m.cfg.SuspectAfter {
				p.state = StateLeft
				p.ver++
				changed = true
				m.cfg.Logf("cluster: peer %s (%s) declared left (silent for %s)", id, p.member.Addr, now.Sub(p.lastSeen))
			}
		}
	}
	if m.selfState == StateJoining && (anyOK || len(peers) == 0) {
		// First successful probe round (or a seedless solo boot): this
		// node has synced state with the cluster and can own traffic.
		m.selfState = StateAlive
		m.selfVer++
		changed = true
		m.cfg.Logf("cluster: join complete — node %s owns ring share (ver %d)", m.self.ID, m.selfVer)
	}
	m.mu.Unlock()
	if changed {
		m.notify()
	}
}

// MarkLeft processes a graceful leave notice: the peer drops out of the
// ring immediately, at a bumped version so gossip spreads the
// departure. It rejoins the normal way — by answering a heartbeat or
// re-running the join handshake.
func (m *Membership) MarkLeft(id string) {
	m.mu.Lock()
	p, known := m.peers[id]
	changed := known && ringEligible(p.state)
	if known && p.state != StateLeft {
		p.state = StateLeft
		p.ver++
	}
	m.mu.Unlock()
	if changed {
		m.cfg.Logf("cluster: peer %s left gracefully", id)
		m.notify()
	}
}

func (m *Membership) notify() {
	if m.onChange != nil {
		m.onChange()
	}
}

// ping issues one health probe and verifies the peer identifies as the
// expected node (catches address reuse across deployments). A probe
// with a piggyback body POSTs it (an old receiver ignores the body and
// still answers its PingResponse); a successful probe records the
// peer's advertised codec, merges the gossip entries riding the reply,
// and hands the response to the ProbeReply hook.
func (m *Membership) ping(peer Member, body []byte, bodyCT string) bool {
	var start time.Time
	if m.rtt != nil {
		start = time.Now()
	}
	var resp *http.Response
	var err error
	if body != nil {
		resp, err = m.cfg.HTTP.Post(peer.Addr+"/cluster/v1/ping", bodyCT, bytes.NewReader(body))
	} else {
		resp, err = m.cfg.HTTP.Get(peer.Addr + "/cluster/v1/ping")
	}
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var pr PingResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return false
	}
	if pr.Node != peer.ID {
		return false
	}
	m.rtt.ObserveSince(start)
	m.mu.Lock()
	if p, ok := m.peers[peer.ID]; ok {
		p.binary = pr.Codec == binaryCodecName || pr.Codec == tracedCodecName
		p.traced = pr.Codec == tracedCodecName
	}
	m.mu.Unlock()
	m.Merge(pr.Members)
	if m.cfg.ProbeReply != nil {
		m.cfg.ProbeReply(peer, pr)
	}
	return true
}

// ParsePeers parses the -cluster-peers flag format: comma-separated
// "id=addr" entries, e.g. "a=http://10.0.0.1:9101,b=http://10.0.0.2:9101".
// A bare "addr" entry uses the address as its own ID.
func ParsePeers(s string) ([]Member, error) {
	if s == "" {
		return nil, nil
	}
	var out []Member
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr := part, part
		if i := strings.IndexByte(part, '='); i >= 0 {
			id, addr = part[:i], part[i+1:]
		}
		if id == "" || addr == "" {
			return nil, fmt.Errorf("cluster peers: malformed entry %q (want id=addr)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster peers: duplicate node id %q", id)
		}
		seen[id] = true
		out = append(out, Member{ID: id, Addr: strings.TrimRight(addr, "/")})
	}
	return out, nil
}

func sortMembers(ms []Member) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
}
