package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"locheat/internal/obs"
	"locheat/internal/simclock"
)

// Member is one node of the static cluster definition: a stable ID and
// the base URL of its internal /cluster/v1 listener (scheme://host:port,
// no trailing slash).
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// MembershipConfig tunes failure detection. Zero values take defaults.
type MembershipConfig struct {
	// HeartbeatEvery is the probe interval (default 1s).
	HeartbeatEvery time.Duration
	// FailAfter marks a peer dead after this long without a successful
	// probe (default 3×HeartbeatEvery). Probes also revive: a dead peer
	// that answers again rejoins the ring.
	FailAfter time.Duration
	// Timeout bounds one probe (default HeartbeatEvery).
	Timeout time.Duration
	// Clock supplies probe timestamps; simulated clocks make failure
	// detection deterministic in tests. Default wall clock.
	Clock simclock.Clock
	// HTTP issues the probes (default a client over the shared cluster
	// transport with Timeout).
	HTTP *http.Client
	// ProbePayload, when set, supplies a body (and its content type)
	// attached to every heartbeat probe — computed once per Tick round
	// and POSTed to each peer. This is how the quarantine digest rides
	// the heartbeats instead of costing its own O(peers) request round.
	// Nil keeps probes as bodyless GETs.
	ProbePayload func() (body []byte, contentType string)
	// ProbeReply receives each successful probe's parsed response,
	// outside the membership lock (possibly concurrently, one call per
	// peer). The node uses it to apply piggybacked digest repairs and
	// to trigger an immediate outbox drain toward a reachable peer.
	ProbeReply func(peer Member, pr PingResponse)
	// Logf receives membership transitions. Nil discards.
	Logf func(format string, args ...any)
	// Obs registers failure-detector telemetry: heartbeat RTT histogram
	// plus per-peer liveness and codec-negotiation gauges (labelled by
	// peer ID, bounded by the static cluster definition). Nil probes
	// unobserved.
	Obs *obs.Registry
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3 * c.HeartbeatEvery
	}
	if c.Timeout <= 0 {
		c.Timeout = c.HeartbeatEvery
	}
	if c.Clock == nil {
		c.Clock = simclock.Real{}
	}
	if c.HTTP == nil {
		c.HTTP = newHTTPClient(c.Timeout)
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// peerState tracks one peer's liveness and advertised capabilities.
type peerState struct {
	member   Member
	alive    bool
	left     bool // graceful leave: stays down until it heartbeats back
	lastSeen time.Time
	// binary records the peer's last advertised wire codec: true once
	// a ping response carried a binary capability string ("bin/1" or
	// "bin/2"). Peers start false — JSON is the safe default until the
	// peer says otherwise — and every successful probe refreshes it,
	// so a peer that restarts into an older (or JSON-pinned) build
	// downgrades within one heartbeat interval. traced narrows it:
	// true only for "bin/2" peers, which additionally accept the
	// trace-aware v2 message layouts.
	binary bool
	traced bool
}

// Membership keeps the static peer list live with heartbeats. The
// member set never grows beyond the configured list — this is
// static-with-heartbeats, not gossip discovery — but members fall out
// when they stop answering (or announce a leave) and rejoin when they
// answer again. Safe for concurrent use.
type Membership struct {
	self Member
	cfg  MembershipConfig

	mu    sync.Mutex
	peers map[string]*peerState // by ID

	// onChange fires after every live-set transition, outside mu. Set
	// once before Start.
	onChange func()

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// rtt is nil without MembershipConfig.Obs.
	rtt *obs.Histogram
}

// NewMembership builds the membership view. Peers containing self (by
// ID) are skipped, so the full cluster list can be passed to every
// node unchanged. New peers start alive: at boot the optimistic
// assumption routes traffic immediately and the first failed window
// corrects it.
func NewMembership(self Member, peers []Member, cfg MembershipConfig) *Membership {
	cfg = cfg.withDefaults()
	m := &Membership{
		self:  self,
		cfg:   cfg,
		peers: make(map[string]*peerState),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	now := cfg.Clock.Now()
	for _, p := range peers {
		if p.ID == self.ID {
			continue
		}
		m.peers[p.ID] = &peerState{member: p, alive: true, lastSeen: now}
	}
	m.registerObs(cfg.Obs)
	return m
}

// registerObs exposes the failure detector on reg: probe RTTs plus one
// liveness gauge and one codec-negotiation gauge per configured peer.
// The peer set is static, so the label cardinality is the cluster size.
// No-op on a nil registry.
func (m *Membership) registerObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.rtt = reg.Histogram("locheat_cluster_heartbeat_rtt_seconds",
		"round trip of one successful heartbeat probe", obs.Seconds)
	reg.GaugeFunc("locheat_cluster_live_members",
		"members in the current live set, self included",
		func() float64 { return float64(len(m.Live())) })
	peek := func(id string, read func(*peerState) bool) func() float64 {
		return func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			if p, ok := m.peers[id]; ok && read(p) {
				return 1
			}
			return 0
		}
	}
	for id := range m.peers {
		reg.GaugeFunc("locheat_cluster_peer_alive",
			"1 while the peer answers heartbeats",
			peek(id, func(p *peerState) bool { return p.alive }), "peer", id)
		reg.GaugeFunc("locheat_cluster_peer_binary",
			"1 while the peer's heartbeats advertise the binary wire codec",
			peek(id, func(p *peerState) bool { return p.binary }), "peer", id)
		reg.GaugeFunc("locheat_cluster_peer_traced",
			"1 while the peer's heartbeats advertise the trace-aware binary wire codec",
			peek(id, func(p *peerState) bool { return p.traced }), "peer", id)
	}
}

// OnChange installs the live-set transition hook. Call before Start;
// the hook runs outside the membership lock.
func (m *Membership) OnChange(fn func()) { m.onChange = fn }

// Self returns this node's member record.
func (m *Membership) Self() Member { return m.self }

// Live returns the current live member set including self, sorted by
// ID (NewRing sorts anyway; sorted here so logs are stable).
func (m *Membership) Live() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []Member{m.self}
	for _, p := range m.peers {
		if p.alive {
			out = append(out, p.member)
		}
	}
	sortMembers(out)
	return out
}

// LivePeers returns the live set excluding self.
func (m *Membership) LivePeers() []Member {
	live := m.Live()
	out := live[:0]
	for _, p := range live {
		if p.ID != m.self.ID {
			out = append(out, p)
		}
	}
	return out
}

// IsLive reports whether the member is currently in the live set
// (self always is).
func (m *Membership) IsLive(id string) bool {
	if id == m.self.ID {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	return ok && p.alive
}

// Peer resolves a member ID to its record, live or not.
func (m *Membership) Peer(id string) (Member, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return Member{}, false
	}
	return p.member, true
}

// SupportsBinary reports whether the peer's last heartbeat advertised
// the binary wire codec (false until a probe has succeeded).
func (m *Membership) SupportsBinary(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	return ok && p.binary
}

// SupportsBinaryAddr is SupportsBinary keyed by the peer's address —
// the forwarder's view of the world.
func (m *Membership) SupportsBinaryAddr(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		if p.member.Addr == addr {
			return p.binary
		}
	}
	return false
}

// SupportsTraced reports whether the peer's last heartbeat advertised
// the trace-aware binary codec ("bin/2"), i.e. the peer may be sent
// v2 message layouts carrying trace context.
func (m *Membership) SupportsTraced(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	return ok && p.traced
}

// SupportsTracedAddr is SupportsTraced keyed by the peer's address.
func (m *Membership) SupportsTracedAddr(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		if p.member.Addr == addr {
			return p.traced
		}
	}
	return false
}

// MemberStatus is one row of the cluster status surface.
type MemberStatus struct {
	ID       string    `json:"id"`
	Addr     string    `json:"addr"`
	Self     bool      `json:"self"`
	Alive    bool      `json:"alive"`
	Left     bool      `json:"left,omitempty"`
	LastSeen time.Time `json:"lastSeen,omitempty"`
}

// Status snapshots every member, self first, peers sorted by ID.
func (m *Membership) Status() []MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []MemberStatus{{ID: m.self.ID, Addr: m.self.Addr, Self: true, Alive: true}}
	ids := make([]string, 0, len(m.peers))
	for id := range m.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := m.peers[id]
		out = append(out, MemberStatus{
			ID:       p.member.ID,
			Addr:     p.member.Addr,
			Alive:    p.alive,
			Left:     p.left,
			LastSeen: p.lastSeen,
		})
	}
	return out
}

// Start runs the heartbeat loop until Stop. The loop ticks on the wall
// clock (probe pacing is operational, not event time); tests call Tick
// directly instead.
func (m *Membership) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Tick()
			}
		}
	}()
}

// Stop terminates the heartbeat loop. Idempotent, and safe whether or
// not Start ever ran (tests drive Tick by hand and never start the
// loop).
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if started {
		<-m.done
	}
}

// Tick runs one probe round: every peer is pinged, liveness is
// re-evaluated against FailAfter, and onChange fires if the live set
// changed. Exposed so tests drive failure detection deterministically.
func (m *Membership) Tick() {
	m.mu.Lock()
	peers := make([]*peerState, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()

	// The piggyback payload (quarantine digest) is built once per round
	// and shared by every probe goroutine read-only.
	var body []byte
	var bodyCT string
	if m.cfg.ProbePayload != nil {
		body, bodyCT = m.cfg.ProbePayload()
	}

	type probe struct {
		id string
		ok bool
	}
	results := make(chan probe, len(peers))
	for _, p := range peers {
		go func(mem Member) {
			results <- probe{id: mem.ID, ok: m.ping(mem, body, bodyCT)}
		}(p.member)
	}
	ok := make(map[string]bool, len(peers))
	for range peers {
		r := <-results
		ok[r.id] = r.ok
	}

	changed := false
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	for id, p := range m.peers {
		if ok[id] {
			p.lastSeen = now
			if !p.alive {
				p.alive = true
				p.left = false
				changed = true
				m.cfg.Logf("cluster: peer %s (%s) is back", id, p.member.Addr)
			}
			continue
		}
		if p.alive && now.Sub(p.lastSeen) >= m.cfg.FailAfter {
			p.alive = false
			changed = true
			m.cfg.Logf("cluster: peer %s (%s) marked dead (silent for %s)", id, p.member.Addr, now.Sub(p.lastSeen))
		}
	}
	m.mu.Unlock()
	if changed {
		m.notify()
	}
}

// MarkLeft processes a graceful leave notice: the peer drops out of the
// live set immediately. It rejoins the normal way — by answering a
// heartbeat — if it comes back.
func (m *Membership) MarkLeft(id string) {
	m.mu.Lock()
	p, known := m.peers[id]
	changed := known && p.alive
	if known {
		p.alive = false
		p.left = true
	}
	m.mu.Unlock()
	if changed {
		m.cfg.Logf("cluster: peer %s left gracefully", id)
		m.notify()
	}
}

func (m *Membership) notify() {
	if m.onChange != nil {
		m.onChange()
	}
}

// ping issues one health probe and verifies the peer identifies as the
// expected node (catches address reuse across deployments). A probe
// with a piggyback body POSTs it (an old receiver ignores the body and
// still answers its PingResponse); a successful probe records the
// peer's advertised codec and hands the response to the ProbeReply
// hook.
func (m *Membership) ping(peer Member, body []byte, bodyCT string) bool {
	var start time.Time
	if m.rtt != nil {
		start = time.Now()
	}
	var resp *http.Response
	var err error
	if body != nil {
		resp, err = m.cfg.HTTP.Post(peer.Addr+"/cluster/v1/ping", bodyCT, bytes.NewReader(body))
	} else {
		resp, err = m.cfg.HTTP.Get(peer.Addr + "/cluster/v1/ping")
	}
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var pr PingResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return false
	}
	if pr.Node != peer.ID {
		return false
	}
	m.rtt.ObserveSince(start)
	m.mu.Lock()
	if p, ok := m.peers[peer.ID]; ok {
		p.binary = pr.Codec == binaryCodecName || pr.Codec == tracedCodecName
		p.traced = pr.Codec == tracedCodecName
	}
	m.mu.Unlock()
	if m.cfg.ProbeReply != nil {
		m.cfg.ProbeReply(peer, pr)
	}
	return true
}

// ParsePeers parses the -cluster-peers flag format: comma-separated
// "id=addr" entries, e.g. "a=http://10.0.0.1:9101,b=http://10.0.0.2:9101".
// A bare "addr" entry uses the address as its own ID.
func ParsePeers(s string) ([]Member, error) {
	if s == "" {
		return nil, nil
	}
	var out []Member
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr := part, part
		if i := strings.IndexByte(part, '='); i >= 0 {
			id, addr = part[:i], part[i+1:]
		}
		if id == "" || addr == "" {
			return nil, fmt.Errorf("cluster peers: malformed entry %q (want id=addr)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster peers: duplicate node id %q", id)
		}
		seen[id] = true
		out = append(out, Member{ID: id, Addr: strings.TrimRight(addr, "/")})
	}
	return out, nil
}

func sortMembers(ms []Member) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
}
