package cluster

import (
	"bytes"
	"encoding/json"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/replica"
	"locheat/internal/store"
	"locheat/internal/trace"
	"locheat/internal/wirecodec"
)

func tracedWireEvent() WireEvent {
	w := codecWireEvent()
	w.Trace = "0102030405060708090a0b0c0d0e0f10"
	w.TraceFlags = trace.FlagSampled | trace.FlagForced
	return w
}

// TestTracedCodecsEquivalence: every v2 container must reproduce
// exactly what the JSON round trip does, trace context included — the
// same bar the v1 layouts hold.
func TestTracedCodecsEquivalence(t *testing.T) {
	t0 := time.Date(2011, 6, 20, 12, 0, 0, 0, time.UTC)
	t.Run("ingest", func(t *testing.T) {
		b := IngestBatch{From: "node-a", Events: []WireEvent{tracedWireEvent(), {User: 7}}}
		jb, _ := json.Marshal(b)
		var viaJSON IngestBatch
		if err := json.Unmarshal(jb, &viaJSON); err != nil {
			t.Fatal(err)
		}
		viaBin, err := decodeIngestBatch(encodeIngestBatchTraced(nil, b))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaBin, viaJSON) {
			t.Fatalf("codecs disagree:\n json: %+v\n bin:  %+v", viaJSON, viaBin)
		}
	})
	t.Run("quarbcast", func(t *testing.T) {
		qb := QuarBroadcast{From: "node-a", Entries: []replica.QuarEntry{
			{User: 4, Stamp: 77, Origin: "node-a", Active: true,
				Trace: "0102030405060708090a0b0c0d0e0f10",
				Record: store.QuarantineRecord{
					UserID: 4, Since: t0, Until: t0.Add(time.Hour), Reason: "r", Source: "s",
				}},
			{User: 5, Stamp: 78, Origin: "node-b"}, // untraced entry in a v2 body
		}}
		jb, _ := json.Marshal(qb)
		var viaJSON QuarBroadcast
		if err := json.Unmarshal(jb, &viaJSON); err != nil {
			t.Fatal(err)
		}
		viaBin, err := decodeQuarBroadcast(encodeQuarBroadcastTraced(nil, qb))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaBin, viaJSON) {
			t.Fatalf("codecs disagree:\n json: %+v\n bin:  %+v", viaJSON, viaBin)
		}
	})
	t.Run("alerts", func(t *testing.T) {
		resp := LocalAlertsResponse{Node: "node-a", Total: 2, Alerts: []store.Alert{
			{Seq: 1, Detector: "speed", UserID: 4, VenueID: 9, At: t0, Detail: "d1",
				Trace: "0102030405060708090a0b0c0d0e0f10"},
			{Seq: 2, Detector: "rate-throttle", UserID: 5, VenueID: 10, At: t0.Add(time.Minute), Detail: "d2"},
		}}
		jb, _ := json.Marshal(resp)
		var viaJSON LocalAlertsResponse
		if err := json.Unmarshal(jb, &viaJSON); err != nil {
			t.Fatal(err)
		}
		viaBin, err := decodeLocalAlerts(encodeLocalAlertsTraced(nil, resp))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaBin, viaJSON) {
			t.Fatalf("codecs disagree:\n json: %+v\n bin:  %+v", viaJSON, viaBin)
		}
	})
	t.Run("ship", func(t *testing.T) {
		batch := []store.Alert{
			{Seq: 1, Detector: "speed", UserID: 4, VenueID: 9, At: t0, Detail: "d1",
				Trace: "0102030405060708090a0b0c0d0e0f10"},
			{Seq: 2, Detector: "dedupe", UserID: 5, VenueID: 10, At: t0, Detail: "d2"},
		}
		sb := replica.ShipBatch{From: "node-a", Epoch: 3, Start: 7, Alerts: batch}
		got, err := replica.DecodeShipBatch(replica.AppendShipBatchTraced(nil, sb))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, sb) {
			t.Fatalf("ship batch:\n want: %+v\n got:  %+v", sb, got)
		}
	})
	t.Run("v1-strips-trace", func(t *testing.T) {
		// A v1 body for a bin/1 peer must simply omit the context: the
		// decode is the same event minus trace.
		b := IngestBatch{From: "node-a", Events: []WireEvent{tracedWireEvent()}}
		got, err := decodeIngestBatch(encodeIngestBatch(nil, b))
		if err != nil {
			t.Fatal(err)
		}
		want := b.Events[0]
		want.Trace, want.TraceFlags = "", 0
		if !reflect.DeepEqual(got.Events[0], want) {
			t.Fatalf("v1 strip:\n want: %+v\n got:  %+v", want, got.Events[0])
		}
	})
}

// TestTracedSpillEventFormats: traced events spill in the v2 frame
// and replay with their trace link; untraced events stay v1 so a
// pre-trace build inheriting the outbox still replays them.
func TestTracedSpillEventFormats(t *testing.T) {
	ev := tracedWireEvent()
	payload := encodeSpillEvent(ev)
	if payload[0] != wirecodec.VersionTraced {
		t.Fatalf("traced spill frame version %d, want %d", payload[0], wirecodec.VersionTraced)
	}
	got, err := decodeSpillEvent(payload)
	if err != nil || !reflect.DeepEqual(got, ev) {
		t.Fatalf("traced spill round trip: %v / %+v", err, got)
	}
	plain := codecWireEvent()
	payload = encodeSpillEvent(plain)
	if payload[0] != wirecodec.Version {
		t.Fatalf("untraced spill frame version %d, want v1 %d", payload[0], wirecodec.Version)
	}
	if got, err := decodeSpillEvent(payload); err != nil || !reflect.DeepEqual(got, plain) {
		t.Fatalf("untraced spill round trip: %v / %+v", err, got)
	}
}

// TestFromWireMalformedTrace: trace context is observability freight —
// a corrupt ID degrades to an untraced event, never an error.
func TestFromWireMalformedTrace(t *testing.T) {
	w := codecWireEvent()
	w.Trace = "not-hex"
	if ev := fromWire(w); ev.Trace.Sampled() {
		t.Fatal("malformed trace ID decoded as sampled")
	}
	w.Trace = "0102030405060708090a0b0c0d0e0f10"
	w.TraceFlags = trace.FlagSampled
	ev := fromWire(w)
	if !ev.Trace.Sampled() || ev.Trace.ID.String() != w.Trace {
		t.Fatalf("well-formed trace lost: %+v", ev.Trace)
	}
}

// FuzzDecodeSpillEvent hammers the span-decoding surface the ingest
// fuzzer does not reach: the three-format sniff (JSON / v1 / v2) and
// the traced-element tail. Malformed input must error, never panic;
// accepted input must round-trip canonically through its own format.
func FuzzDecodeSpillEvent(f *testing.F) {
	f.Add(encodeSpillEvent(tracedWireEvent()))
	f.Add(encodeSpillEvent(codecWireEvent()))
	jb, _ := json.Marshal(codecWireEvent())
	f.Add(jb)
	f.Add([]byte{})
	f.Add([]byte{wirecodec.VersionTraced})
	f.Add([]byte{wirecodec.VersionTraced, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, in []byte) {
		w, err := decodeSpillEvent(in)
		if err != nil {
			return
		}
		again, err := decodeSpillEvent(encodeSpillEvent(w))
		if err != nil {
			t.Fatalf("accepted spill does not re-decode: %v", err)
		}
		// Canonical re-encode comparison (floats may carry NaN bits).
		if a, b := encodeSpillEvent(w), encodeSpillEvent(again); string(a) != string(b) {
			t.Fatal("accepted spill does not round-trip canonically")
		}
	})
}

// FuzzDecodeIngestBatchTraced seeds the batch fuzzer with v2 bodies so
// the traced element decoder is on the fuzzed surface too.
func FuzzDecodeIngestBatchTraced(f *testing.F) {
	f.Add(encodeIngestBatchTraced(nil, IngestBatch{From: "node-a", Events: []WireEvent{tracedWireEvent(), {User: 7}}}))
	f.Add(encodeIngestBatchTraced(nil, IngestBatch{From: "x"}))
	f.Add([]byte{wirecodec.VersionTraced, 1, 'a', 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, in []byte) {
		b, err := decodeIngestBatch(in)
		if err != nil {
			return
		}
		enc1 := encodeIngestBatchTraced(nil, b)
		again, err := decodeIngestBatch(enc1)
		if err != nil {
			t.Fatalf("accepted batch does not re-decode: %v", err)
		}
		if enc2 := encodeIngestBatchTraced(nil, again); string(enc1) != string(enc2) {
			t.Fatal("accepted batch does not round-trip canonically")
		}
	})
}

// TestTracedForwardCrossNode is the tentpole's cross-node acceptance
// at the cluster tier: a head-sampled check-in ingested at a non-owner
// node produces trace fragments on BOTH nodes — the origin's forward
// hop, the owner's pipeline spans — and the merged ClusterTrace view
// stitches them into one tree attributed to two nodes.
func TestTracedForwardCrossNode(t *testing.T) {
	nodes := startWireCluster(t, []wireSpec{
		{id: "a", sample: 1},
		{id: "b", sample: 1},
	})
	na, nb := nodes["a"], nodes["b"]
	na.node.Tick()
	nb.node.Tick()
	eventually(t, "traced capability learned", func() bool {
		return na.node.peerTraced("b") && nb.node.peerTraced("a")
	})

	user := userOwnedBy(t, na.node, "b", 200)
	if !na.node.Ingest(clusterEvent(user, simclock2011(), sfPoint())) {
		t.Fatal("ingest refused")
	}
	eventually(t, "forward delivered", func() bool { return nb.pipeline.Stats().Published >= 1 })

	// The origin retains its fragment once the POST is acked.
	var id trace.ID
	eventually(t, "origin fragment retained", func() bool {
		views := na.tracer.List(trace.Filter{})
		if len(views) == 0 {
			return false
		}
		got, ok := trace.ParseID(views[0].ID)
		id = got
		return ok
	})

	eventually(t, "merged trace spans two nodes", func() bool {
		v, ok, info := na.node.ClusterTrace(id)
		return ok && info.Failed == 0 && len(v.Nodes) >= 2
	})
	v, ok, _ := na.node.ClusterTrace(id)
	if !ok {
		t.Fatal("merged trace vanished")
	}
	hop, pipe := false, false
	for _, sp := range v.Spans {
		if sp.Name == "forward" {
			hop = true
		}
		if sp.Name == "ring-wait" || strings.HasPrefix(sp.Name, "stage:") {
			pipe = true
		}
	}
	if !hop {
		t.Fatalf("origin hop span missing from merged tree: %+v", v.Spans)
	}
	if !pipe {
		t.Fatalf("owner pipeline spans missing from merged tree: %+v", v.Spans)
	}
	if v.UserID != user {
		t.Fatalf("merged trace user = %d, want %d", v.UserID, user)
	}
}

// TestTracedThreeNodeExemplarDiscovery is the 3-node acceptance drill
// run in the operator's direction: an impossible-travel check-in
// sampled at a non-owner node alerts on its owner, the owner's
// /metrics scrape pins that trace's ID as the exemplar on the
// detection-latency summary, and following the ID through the merged
// endpoint from the THIRD node (neither origin nor owner) yields one
// tree carrying the origin's forward hop plus the owner's stage and
// journal spans — fragments from at least two nodes.
func TestTracedThreeNodeExemplarDiscovery(t *testing.T) {
	nodes := startWireCluster(t, []wireSpec{
		{id: "n1", sample: 1, journal: true, metered: true},
		{id: "n2", sample: 1, journal: true, metered: true},
		{id: "n3", sample: 1, journal: true, metered: true},
	})
	n1, n2, n3 := nodes["n1"], nodes["n2"], nodes["n3"]
	for _, n := range nodes {
		n.node.Tick()
	}
	eventually(t, "traced capability learned", func() bool {
		return n1.node.peerTraced("n2") && n2.node.peerTraced("n1") && n3.node.peerTraced("n2")
	})

	// SF, then NY ten minutes later, both ingested at non-owner n1:
	// impossible travel the owner's speed stage must flag.
	user := userOwnedBy(t, n1.node, "n2", 200)
	t0 := simclock2011()
	if !n1.node.Ingest(clusterEvent(user, t0, sfPoint())) {
		t.Fatal("ingest refused")
	}
	if !n1.node.Ingest(clusterEvent(user, t0.Add(10*time.Minute), geo.Point{Lat: 40.71, Lon: -74.01})) {
		t.Fatal("ingest refused")
	}
	eventually(t, "speed alert on owner n2", func() bool {
		_, total := n2.pipeline.Alerts(store.AlertQuery{UserID: user, Detector: "speed"})
		return total > 0
	})

	// Discovery starts at /metrics: the alerting observation pinned a
	// trace-ID exemplar on the owner's detection-latency summary.
	exemplar := regexp.MustCompile(
		`locheat_detection_latency_seconds_count \d+ # \{trace_id="([0-9a-f]{32})"\}`)
	var id trace.ID
	eventually(t, "detection-latency exemplar on owner scrape", func() bool {
		var buf bytes.Buffer
		if err := n2.reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		m := exemplar.FindSubmatch(buf.Bytes())
		if m == nil {
			return false
		}
		got, ok := trace.ParseID(string(m[1]))
		id = got
		return ok
	})

	eventually(t, "merged trace spans two nodes", func() bool {
		v, ok, info := n3.node.ClusterTrace(id)
		return ok && info.Failed == 0 && len(v.Nodes) >= 2
	})
	v, ok, _ := n3.node.ClusterTrace(id)
	if !ok {
		t.Fatal("merged trace vanished")
	}
	var hop, stage, journal bool
	for _, sp := range v.Spans {
		switch {
		case sp.Name == "forward":
			hop = true
		case strings.HasPrefix(sp.Name, "stage:"):
			stage = true
		case sp.Name == "journal-append":
			journal = true
		}
	}
	if !hop || !stage || !journal {
		t.Fatalf("merged tree missing spans (forward=%v stage=%v journal=%v): %+v",
			hop, stage, journal, v.Spans)
	}
	if v.UserID != user {
		t.Fatalf("merged trace user = %d, want %d", v.UserID, user)
	}
}

// TestMixedVersionTracedInterop is the rolling-upgrade drill for the
// trace tier: a traced node forwarding to a bin/1-only peer (standing
// in for a pre-trace build) negotiates down to the v1 layout — the
// peer strips the context, the event is delivered losslessly, and the
// origin still retains its partial trace; the merged view degrades to
// the origin's fragment without counting the old peer as failed.
func TestMixedVersionTracedInterop(t *testing.T) {
	nodes := startWireCluster(t, []wireSpec{
		{id: "new", sample: 1},
		{id: "old", preTrace: true},
	})
	nn, no := nodes["new"], nodes["old"]
	nn.node.Tick()
	no.node.Tick()
	eventually(t, "capabilities learned", func() bool {
		return nn.node.peerBinary("old") && no.node.peerBinary("new")
	})
	if nn.node.peerTraced("old") {
		t.Fatal("new node believes the pre-trace peer takes v2 bodies")
	}
	if !no.node.peerTraced("new") {
		t.Fatal("pre-trace node failed to learn the new peer's capability (advert is decode-side)")
	}

	user := userOwnedBy(t, nn.node, "old", 200)
	if !nn.node.Ingest(clusterEvent(user, simclock2011(), sfPoint())) {
		t.Fatal("ingest refused")
	}
	eventually(t, "forward delivered to the old peer", func() bool {
		return no.pipeline.Stats().Published >= 1
	})

	// The origin's partial trace survives the stripped hop.
	var id trace.ID
	eventually(t, "origin fragment retained", func() bool {
		views := nn.tracer.List(trace.Filter{})
		if len(views) == 0 {
			return false
		}
		got, ok := trace.ParseID(views[0].ID)
		id = got
		return ok
	})
	v, ok, info := nn.node.ClusterTrace(id)
	if !ok {
		t.Fatal("partial trace not retrievable")
	}
	// The old peer answers 404 on /cluster/v1/traces — no fragments
	// there, NOT a failed node.
	if info.Failed != 0 {
		t.Fatalf("pre-trace peer counted as failed: %+v", info)
	}
	if len(v.Nodes) != 1 || v.Nodes[0] != "new" {
		t.Fatalf("partial trace nodes = %v, want [new]", v.Nodes)
	}
	found := false
	for _, sp := range v.Spans {
		if sp.Name == "forward" {
			found = true
		}
	}
	if !found {
		t.Fatalf("forward hop span missing from partial trace: %+v", v.Spans)
	}
}

// TestClusterTraceDownPeer: an unreachable peer degrades the merged
// trace view — the local fragment still serves, with the failure
// counted — instead of erroring out.
func TestClusterTraceDownPeer(t *testing.T) {
	nodes := startWireCluster(t, []wireSpec{
		{id: "a", sample: 1},
		{id: "b", sample: 1},
	})
	na, nb := nodes["a"], nodes["b"]
	na.node.Tick()
	nb.node.Tick()

	// A locally-owned traced event: the whole trace lives on a.
	user := userOwnedBy(t, na.node, "a", 200)
	if !na.node.Ingest(clusterEvent(user, simclock2011(), sfPoint())) {
		t.Fatal("ingest refused")
	}
	var id trace.ID
	eventually(t, "fragment retained", func() bool {
		views := na.tracer.List(trace.Filter{})
		if len(views) == 0 {
			return false
		}
		got, ok := trace.ParseID(views[0].ID)
		id = got
		return ok
	})

	// b's listener dies (but stays in a's live set — FailAfter has not
	// elapsed on the simulated clock).
	nb.srv.Close()

	v, ok, info := na.node.ClusterTrace(id)
	if !ok {
		t.Fatal("local fragment lost when a peer is down")
	}
	if info.Failed != 1 || info.Nodes != 1 {
		t.Fatalf("degraded view not reported: %+v", info)
	}
	if len(v.Spans) == 0 {
		t.Fatal("degraded view dropped the local spans")
	}
	views, info2 := na.node.ClusterTraces(trace.Filter{})
	if len(views) == 0 || info2.Failed != 1 {
		t.Fatalf("degraded listing: %d traces, info %+v", len(views), info2)
	}
}

func simclock2011() time.Time {
	return time.Date(2011, 6, 20, 12, 0, 0, 0, time.UTC)
}
