package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"locheat/internal/lbsn"
	"locheat/internal/store"
)

// HandoffConfig tunes the bounded rebalancing scheduler. Zero values
// take the defaults below.
type HandoffConfig struct {
	// Concurrency caps simultaneous handoff POSTs across all
	// destination peers (default 2). A ring change displacing half the
	// user space must trickle state out, not stampede it.
	Concurrency int
	// BundleUsers caps users per handoff bundle (default 512), so one
	// giant POST can't stall a receiver or blow a body limit.
	BundleUsers int
	// RetryEvery is the worker's retry cadence for parked state whose
	// delivery failed or was breaker-refused (default 500ms).
	RetryEvery time.Duration
}

func (c HandoffConfig) withDefaults() HandoffConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.BundleUsers <= 0 {
		c.BundleUsers = 512
	}
	if c.RetryEvery <= 0 {
		c.RetryEvery = 500 * time.Millisecond
	}
	return c
}

// pendingUser is one displaced user's exported state, parked until a
// new owner acknowledges it (or ownership flips back and it is
// re-imported locally).
type pendingUser struct {
	state UserStateBundle
	quar  []store.QuarantineRecord
}

// handoffScheduler moves displaced users' detector/quarantine state
// after a ring change with bounded concurrency, resumably. schedule()
// destructively exports the moved users from the live pipeline (so a
// half-owner doesn't keep detecting on a stale state copy) and parks
// the bundles here; a single worker drains the pending set, re-resolving
// each user's owner against the CURRENT ring at send time — a second
// ring change mid-handoff just redirects (or reclaims) the parked
// state, it never double-sends or loses it. Delivery reuses the
// "handoff" per-peer breaker group, so a dead destination fast-fails
// to a retry instead of stacking timeouts, and a concurrency semaphore
// caps the cluster-wide stampede a mass displacement would otherwise
// cause. State is lost only if the process dies while bundles are
// parked — the same degraded-detection (never corruption) contract the
// shutdown handoff has always had.
type handoffScheduler struct {
	n   *Node
	cfg HandoffConfig

	mu      sync.Mutex
	pending map[uint64]pendingUser

	// passMu serializes delivery passes: the worker loop, Drain (tests,
	// shutdown) and close-time flush must not race over the same bundle.
	passMu sync.Mutex

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once

	retries   atomic.Uint64
	reclaimed atomic.Uint64
}

func newHandoffScheduler(n *Node, cfg HandoffConfig) *handoffScheduler {
	s := &handoffScheduler{
		n:       n,
		cfg:     cfg.withDefaults(),
		pending: make(map[uint64]pendingUser),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.run()
	return s
}

// Pending reports how many users' state is parked awaiting delivery.
func (s *handoffScheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// schedule exports every local user displaced by ring and parks the
// state for the worker. Runs on the membership-change path, so it must
// be quick: the export walks local maps, no network.
func (s *handoffScheduler) schedule(ring *Ring) {
	selfID := s.n.cfg.Self.ID
	moved := func(user uint64) bool {
		owner := ring.Owner(user)
		return owner != "" && owner != selfID
	}
	states := s.n.pipeline.ExportUserStates(moved)
	quar := s.n.svc.QuarantineRecords(func(id lbsn.UserID) bool { return moved(uint64(id)) })
	if len(states) == 0 && len(quar) == 0 {
		return
	}
	s.mu.Lock()
	for user, st := range states {
		p := s.pending[user]
		p.state = UserStateBundle(st)
		s.pending[user] = p
	}
	for _, r := range quar {
		p := s.pending[r.UserID]
		p.quar = append(p.quar, r)
		s.pending[r.UserID] = p
	}
	parked := len(s.pending)
	s.mu.Unlock()
	s.n.cfg.Logf("cluster: rebalance parked %d users (%d quarantines) for bounded handoff", parked, len(quar))
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *handoffScheduler) run() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.RetryEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
		case <-t.C:
		}
		s.pass()
	}
}

// pass attempts delivery of everything parked, against the ring as it
// stands NOW. Owners are re-resolved per user: a user whose ownership
// flipped back to this node is re-imported locally (reclaimed), the
// rest are grouped into capped bundles per destination and sent with
// at most cfg.Concurrency posts in flight.
func (s *handoffScheduler) pass() {
	s.passMu.Lock()
	defer s.passMu.Unlock()

	s.mu.Lock()
	if len(s.pending) == 0 {
		s.mu.Unlock()
		return
	}
	snapshot := make(map[uint64]pendingUser, len(s.pending))
	for u, p := range s.pending {
		snapshot[u] = p
	}
	s.mu.Unlock()

	ring, leaving := s.n.currentRing()
	selfID := s.n.cfg.Self.ID

	// Partition the snapshot: back-to-self, per-destination, unroutable.
	reclaimStates := make(map[uint64]map[string][]byte)
	var reclaimQuar []store.QuarantineRecord
	var reclaimed []uint64
	byOwner := make(map[string][]uint64)
	for user, p := range snapshot {
		owner := ring.Owner(user)
		if owner == "" {
			continue // no ring (everyone else died): keep parked
		}
		if owner == selfID && !leaving {
			if p.state != nil {
				reclaimStates[user] = map[string][]byte(p.state)
			}
			reclaimQuar = append(reclaimQuar, p.quar...)
			reclaimed = append(reclaimed, user)
			continue
		}
		byOwner[owner] = append(byOwner[owner], user)
	}

	if len(reclaimed) > 0 {
		s.n.pipeline.ImportUserStates(reclaimStates)
		s.n.svc.RestoreQuarantines(reclaimQuar)
		s.reclaimed.Add(uint64(len(reclaimed)))
		s.remove(reclaimed)
		s.n.cfg.Logf("cluster: reclaimed %d users whose ownership moved back mid-handoff", len(reclaimed))
	}

	// Deliver with bounded concurrency across every (peer, chunk).
	sem := make(chan struct{}, s.cfg.Concurrency)
	var wg sync.WaitGroup
	for owner, users := range byOwner {
		peer, ok := s.n.members.Peer(owner)
		if !ok || !s.n.members.IsLive(owner) {
			s.retries.Add(1)
			continue // owner unknown or not yet reachable: keep parked
		}
		br := s.n.handoffBreakers.For(peer.ID)
		for start := 0; start < len(users); start += s.cfg.BundleUsers {
			end := start + s.cfg.BundleUsers
			if end > len(users) {
				end = len(users)
			}
			chunk := users[start:end]
			if !br.Allow() {
				s.retries.Add(1)
				continue // breaker open: fast-fail, retry next pass
			}
			hb := HandoffBundle{From: selfID, Users: make(map[uint64]UserStateBundle, len(chunk))}
			for _, user := range chunk {
				p := snapshot[user]
				if p.state != nil {
					hb.Users[user] = p.state
				}
				hb.Quarantines = append(hb.Quarantines, p.quar...)
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(peer Member, hb HandoffBundle, chunk []uint64) {
				defer wg.Done()
				defer func() { <-sem }()
				if s.n.sendHandoff(peer, hb) {
					br.Success()
					s.remove(chunk)
				} else {
					br.Failure()
					s.retries.Add(1)
				}
			}(peer, hb, chunk)
		}
	}
	wg.Wait()
}

// remove clears delivered (or reclaimed) users from the pending set —
// unless a newer schedule() re-parked fresher state for them while the
// send was in flight; comparing against the snapshot is unnecessary
// because schedule only ever ADDS state exported after a newer ring
// change, which this delivery did not cover.
func (s *handoffScheduler) remove(users []uint64) {
	s.mu.Lock()
	for _, u := range users {
		delete(s.pending, u)
	}
	s.mu.Unlock()
}

// Drain synchronously runs delivery passes until the pending set is
// empty or a full pass makes no progress. Tests and shutdown use it;
// the background worker keeps retrying whatever Drain leaves behind.
func (s *handoffScheduler) Drain() {
	for {
		before := s.Pending()
		if before == 0 {
			return
		}
		s.pass()
		if s.Pending() >= before {
			return // no progress: destinations down, leave parked
		}
	}
}

// close stops the worker after a best-effort final drain. Called from
// Shutdown before the terminal full-state handoff, so anything still
// parked gets one last chance to reach its owner.
func (s *handoffScheduler) close() {
	s.once.Do(func() {
		s.Drain()
		close(s.stop)
		<-s.done
	})
}
