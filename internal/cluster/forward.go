package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"locheat/internal/backpressure"
	"locheat/internal/obs"
	"locheat/internal/trace"
	"locheat/internal/wirecodec"
)

// ForwarderConfig tunes the cross-node ingest path. Zero values take
// defaults.
type ForwarderConfig struct {
	// QueueSize bounds each peer's event queue (default 4096). A full
	// queue drops the event — forwarding never blocks the check-in path,
	// the same contract internal/stream gives its producer.
	QueueSize int
	// BatchSize caps events per POST (default 128). The sender also
	// flushes a partial batch after FlushEvery of wall time so a trickle
	// of events is not held hostage to batch economics.
	BatchSize int
	// FlushEvery is the partial-batch flush interval (default 50ms).
	FlushEvery time.Duration
	// HTTP posts the batches (default a client over the shared cluster
	// transport with a 5s timeout).
	HTTP *http.Client
	// Binary reports whether the peer at addr accepts the binary wire
	// codec (from its heartbeat advertisement). Nil — or false — keeps
	// that peer on JSON. The codec is re-consulted per POST, so a peer
	// upgrading or downgrading mid-flight switches within a heartbeat.
	Binary func(addr string) bool
	// Traced reports whether the peer at addr advertised the
	// trace-aware binary codec ("bin/2"), allowing v2 bodies that
	// carry trace context. Only consulted when Binary said yes; JSON
	// bodies always carry trace context (omitempty fields an old
	// receiver ignores). Nil keeps binary POSTs on v1.
	Traced func(addr string) bool
	// Tracer records the cross-node hop span ("forward" with peer and
	// codec attributes) on sampled events and finishes the origin's
	// trace fragment once the batch is acked, spilled or lost. Nil
	// forwards untraced.
	Tracer *trace.Tracer
	// Spill receives events the forwarder would otherwise lose — a full
	// peer queue or a failed POST — so a durability tier (the cluster's
	// on-disk outbox) can keep them for replay, and returns how many it
	// durably accepted (the rest — over a spill cap, I/O failure — are
	// counted dropped, the honest outcome). Nil keeps the original
	// at-most-once behavior: such events are dropped and counted. Spill
	// must not block; it is called from the enqueue path and the sender
	// goroutines.
	Spill func(addr string, events []WireEvent) int
	// Breaker returns the circuit breaker guarding the peer at addr, or
	// nil for none. An open circuit fast-fails the batch straight to
	// Spill (reason "breaker-open") instead of burning an HTTP timeout
	// per batch against a dead peer; half-open probes ride the normal
	// POST path and report their outcome.
	Breaker func(addr string) *backpressure.Breaker
	// Logf receives forwarding errors. Nil discards.
	Logf func(format string, args ...any)
	// Obs registers forwarding telemetry: batch size and POST latency
	// histograms plus read-through counters over the same atomics
	// Stats() reports. Nil forwards unobserved.
	Obs *obs.Registry
}

func (c ForwarderConfig) withDefaults() ForwarderConfig {
	if c.QueueSize <= 0 {
		c.QueueSize = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 50 * time.Millisecond
	}
	if c.HTTP == nil {
		c.HTTP = newHTTPClient(5 * time.Second)
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ForwardStats is the forwarder's counter snapshot.
type ForwardStats struct {
	// Enqueued counts events accepted into a peer queue; Dropped counts
	// events refused by a full queue (never blocks, always counts).
	Enqueued uint64 `json:"enqueued"`
	Dropped  uint64 `json:"dropped"`
	// Batches/Events count successful POSTs and the events they carried.
	Batches uint64 `json:"batches"`
	Sent    uint64 `json:"sent"`
	// Errors counts failed POSTs. Without a Spill hook their events are
	// lost; with one they are handed to the outbox and counted Spilled.
	Errors uint64 `json:"errors"`
	// Spilled counts events handed to the Spill hook instead of being
	// dropped (full queue or failed POST, durably queued for replay).
	Spilled uint64 `json:"spilled,omitempty"`
	// RemoteDropped sums the Dropped numbers peers reported in acks: the
	// events arrived but the owner's shard queue was full.
	RemoteDropped uint64 `json:"remoteDropped"`
}

// peerQueue is one destination's bounded queue plus its sender
// goroutine's lifecycle.
type peerQueue struct {
	addr string
	ch   chan WireEvent
	stop chan struct{}
	done chan struct{}
}

// Forwarder ships events to their owner nodes in batches. Queues are
// created lazily per destination address and live until Close; a dead
// peer's queue just accumulates errors (and drops once full), which is
// cheaper than churning goroutines on every membership flap.
type Forwarder struct {
	self string
	cfg  ForwarderConfig

	mu     sync.Mutex
	queues map[string]*peerQueue
	closed bool

	enqueued      atomic.Uint64
	spilled       atomic.Uint64
	batches       atomic.Uint64
	sent          atomic.Uint64
	errors        atomic.Uint64
	remoteDropped atomic.Uint64

	// Loss accounting is split by reason so the soak gate's "zero
	// uncounted drops" criterion is checkable per path; Stats().Dropped
	// is their sum.
	dropQueueFull  atomic.Uint64 // peer queue full, no/failed spill
	dropSendFail   atomic.Uint64 // POST failed, no/failed spill
	dropOutboxFull atomic.Uint64 // spill hook refused (cap/IO) the remainder
	dropBreaker    atomic.Uint64 // open circuit, no/failed spill
	dropClosed     atomic.Uint64 // enqueue after Close

	// fwdLat/fwdBatch are nil without ForwarderConfig.Obs.
	fwdLat   *obs.Histogram
	fwdBatch *obs.Histogram
}

// NewForwarder builds a forwarder identifying itself as self in batch
// envelopes.
func NewForwarder(self string, cfg ForwarderConfig) *Forwarder {
	f := &Forwarder{
		self:   self,
		cfg:    cfg.withDefaults(),
		queues: make(map[string]*peerQueue),
	}
	f.registerObs(f.cfg.Obs)
	return f
}

// registerObs exposes the forwarding tier on reg: read-through counters
// over the Stats() atomics plus acked-POST latency and size histograms.
// No-op on a nil registry.
func (f *Forwarder) registerObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("locheat_cluster_forward_enqueued_total",
		"events accepted into a peer forwarding queue", f.enqueued.Load)
	reg.CounterFunc("locheat_cluster_forward_dropped_total",
		"events lost at the forwarding tier, by reason",
		f.dropQueueFull.Load, "reason", "queue-full")
	reg.CounterFunc("locheat_cluster_forward_dropped_total",
		"events lost at the forwarding tier, by reason",
		f.dropSendFail.Load, "reason", "send-failure")
	reg.CounterFunc("locheat_cluster_forward_dropped_total",
		"events lost at the forwarding tier, by reason",
		f.dropOutboxFull.Load, "reason", "outbox-full")
	reg.CounterFunc("locheat_cluster_forward_dropped_total",
		"events lost at the forwarding tier, by reason",
		f.dropBreaker.Load, "reason", "breaker-open")
	reg.CounterFunc("locheat_cluster_forward_dropped_total",
		"events lost at the forwarding tier, by reason",
		f.dropClosed.Load, "reason", "closed")
	reg.CounterFunc("locheat_cluster_forward_spilled_total",
		"events handed to the outbox instead of being dropped", f.spilled.Load)
	reg.CounterFunc("locheat_cluster_forward_batches_total",
		"successful forward POSTs", f.batches.Load)
	reg.CounterFunc("locheat_cluster_forward_sent_total",
		"events delivered by successful forward POSTs", f.sent.Load)
	reg.CounterFunc("locheat_cluster_forward_errors_total",
		"failed forward POSTs", f.errors.Load)
	reg.CounterFunc("locheat_cluster_forward_remote_dropped_total",
		"forwarded events the owner's shard queue refused", f.remoteDropped.Load)
	f.fwdLat = reg.Histogram("locheat_cluster_forward_latency_seconds",
		"round trip of one acked forward POST", obs.Seconds)
	f.fwdBatch = reg.Histogram("locheat_cluster_forward_batch_records",
		"events per acked forward POST", obs.Units)
}

// Enqueue offers one event for delivery to the peer at addr. Never
// blocks. Returns whether the event is on a delivery path: queued for
// a sender, or (with a Spill hook) spilled to the outbox when the
// queue is full. Without a spill hook a full queue (or a closed
// forwarder) drops the event and returns false.
func (f *Forwarder) Enqueue(addr string, ev WireEvent) bool {
	q := f.queue(addr)
	if q == nil {
		f.dropClosed.Add(1)
		return false
	}
	select {
	case q.ch <- ev:
		f.enqueued.Add(1)
		return true
	default:
		return f.spill(addr, []WireEvent{ev}, &f.dropQueueFull)
	}
}

// spill hands refused events to the outbox hook; without one they are
// dropped against reason (the counter naming why this batch left the
// delivery path). Returns whether EVERY event survived (partial
// spill-cap refusals count the remainder under "outbox-full" — the
// refusal, not the original pressure, is what lost them).
func (f *Forwarder) spill(addr string, events []WireEvent, reason *atomic.Uint64) bool {
	if f.cfg.Spill == nil {
		reason.Add(uint64(len(events)))
		f.endTraced(events, "forward-drop", addr, true)
		return false
	}
	accepted := f.cfg.Spill(addr, events)
	if accepted < 0 {
		accepted = 0
	}
	if accepted > len(events) {
		accepted = len(events)
	}
	f.spilled.Add(uint64(accepted))
	// A spilled event survives (the outbox replays it), but its origin
	// trace fragment ends here: the replayed copy carries the trace ID
	// on the wire, while the local recorder keeps the "spill" verdict.
	f.endTraced(events[:accepted], "spill", addr, false)
	if lost := len(events) - accepted; lost > 0 {
		f.dropOutboxFull.Add(uint64(lost))
		f.endTraced(events[accepted:], "forward-drop", addr, true)
		return false
	}
	return true
}

// endTraced finishes the origin trace fragments of a batch's sampled
// events: one terminal span (or drop mark) each, then End. The common
// all-untraced batch exits before touching the clock.
func (f *Forwarder) endTraced(events []WireEvent, name, attrs string, dropped bool) {
	tr := f.cfg.Tracer
	if tr == nil {
		return
	}
	now := int64(0)
	for _, w := range events {
		if w.Trace == "" {
			continue
		}
		id, ok := trace.ParseID(w.Trace)
		if !ok {
			continue
		}
		if now == 0 {
			now = time.Now().UnixNano()
		}
		ctx := trace.Context{ID: id, Flags: w.TraceFlags | trace.FlagSampled}
		if dropped {
			tr.MarkDrop(ctx, name, now)
		} else {
			tr.Span(ctx, name, now, now, attrs)
		}
		tr.End(ctx, now)
	}
}

// hopTraced records the cross-node hop span on a batch's sampled
// events after an acked POST and finishes their origin fragments —
// the owner node carries the trace onward from here.
func (f *Forwarder) hopTraced(events []WireEvent, peer, codec string, start, end int64) {
	tr := f.cfg.Tracer
	if tr == nil {
		return
	}
	var attrs string
	for _, w := range events {
		if w.Trace == "" {
			continue
		}
		id, ok := trace.ParseID(w.Trace)
		if !ok {
			continue
		}
		if attrs == "" {
			attrs = "peer=" + peer + " codec=" + codec
		}
		ctx := trace.Context{ID: id, Flags: w.TraceFlags | trace.FlagSampled}
		tr.Span(ctx, "forward", start, end, attrs)
		tr.End(ctx, end)
	}
}

// queue returns (creating if needed) the peer queue for addr.
func (f *Forwarder) queue(addr string) *peerQueue {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	if q, ok := f.queues[addr]; ok {
		return q
	}
	q := &peerQueue{
		addr: addr,
		ch:   make(chan WireEvent, f.cfg.QueueSize),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	f.queues[addr] = q
	go f.send(q)
	return q
}

// fwdSender is one sender goroutine's reusable POST state. The queue
// serializes its sends (one outstanding POST at a time), so the parsed
// URL, header map, body reader and scratch buffers are built once per
// sender and reused for every request — at batch=1 the per-POST cost
// used to be dominated by exactly this construction, not the bytes.
type fwdSender struct {
	f      *Forwarder
	addr   string
	url    *url.URL
	header http.Header
	body   *bytes.Reader
	json   bytes.Buffer // JSON encode scratch (binary uses a pooled wirecodec buffer)
	ack    bytes.Buffer // response body scratch
}

// reusableBody adapts the sender's reusable reader to the Body
// contract; Close is a no-op because the sender owns the reader.
type reusableBody struct{ *bytes.Reader }

func (reusableBody) Close() error { return nil }

func newFwdSender(f *Forwarder, addr string) *fwdSender {
	s := &fwdSender{f: f, addr: addr, body: bytes.NewReader(nil), header: make(http.Header, 2)}
	s.url, _ = url.Parse(addr + "/cluster/v1/ingest")
	return s
}

// do issues one POST of body with the given content type over the
// sender's reusable request state. Falls back to the stock client path
// when the address failed to parse (the error then surfaces per POST,
// same as before).
func (s *fwdSender) do(contentType string, body []byte) (*http.Response, error) {
	if s.url == nil {
		return s.f.cfg.HTTP.Post(s.addr+"/cluster/v1/ingest", contentType, bytes.NewReader(body))
	}
	s.body.Reset(body)
	s.header.Set("Content-Type", contentType)
	req := &http.Request{
		Method:        http.MethodPost,
		URL:           s.url,
		Header:        s.header,
		Body:          reusableBody{s.body},
		ContentLength: int64(len(body)),
		Host:          s.url.Host,
	}
	// GetBody keeps the transport's idempotent-retry behavior (what
	// http.Post over a *bytes.Reader provided): body is only read during
	// RoundTrip, so handing out fresh readers over it is safe.
	req.GetBody = func() (io.ReadCloser, error) { return reusableBody{bytes.NewReader(body)}, nil }
	return s.f.cfg.HTTP.Do(req)
}

// send is one peer's sender loop: batch up to BatchSize, flush partial
// batches every FlushEvery, drain what remains on stop.
func (f *Forwarder) send(q *peerQueue) {
	defer close(q.done)
	t := time.NewTicker(f.cfg.FlushEvery)
	defer t.Stop()
	s := newFwdSender(f, q.addr)
	batch := make([]WireEvent, 0, f.cfg.BatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		s.post(batch)
		batch = batch[:0]
	}
	for {
		select {
		case ev := <-q.ch:
			batch = append(batch, ev)
			if len(batch) >= f.cfg.BatchSize {
				flush()
			}
		case <-t.C:
			flush()
		case <-q.stop:
			// Final drain: whatever made it into the queue is flushed
			// before shutdown so a graceful exit loses nothing it accepted.
			for {
				select {
				case ev := <-q.ch:
					batch = append(batch, ev)
					if len(batch) >= f.cfg.BatchSize {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

// post ships one batch in the peer's negotiated codec; errors are
// counted, logged and final. A 415 on a binary POST means the codec
// advertisement was stale (address reuse, mid-flight downgrade): the
// batch is retried once as JSON, and the next heartbeat refreshes the
// advertisement.
func (s *fwdSender) post(batch []WireEvent) {
	if s.f.cfg.Binary != nil && s.f.cfg.Binary(s.addr) {
		status, ok := s.postOnce(batch, true)
		if ok || status != http.StatusUnsupportedMediaType {
			return
		}
		// fall through: one JSON retry for this batch
	}
	s.postOnce(batch, false)
}

// postOnce issues one POST in the given codec. It returns the HTTP
// status (0 on transport error) and whether the batch was acked; on
// any failure other than a binary 415 it runs the spill/loss
// accounting itself.
func (s *fwdSender) postOnce(batch []WireEvent, binary bool) (int, bool) {
	f := s.f
	var br *backpressure.Breaker
	if f.cfg.Breaker != nil {
		br = f.cfg.Breaker(s.addr)
	}
	if !br.Allow() {
		// Open circuit: fast-fail to the outbox instead of waiting out an
		// HTTP timeout against a peer the breaker already knows is down.
		s.f.spill(s.addr, batch, &f.dropBreaker)
		return 0, false
	}
	var body []byte
	contentType := "application/json"
	codec := "json"
	if binary {
		buf := wirecodec.GetBuffer()
		defer wirecodec.PutBuffer(buf)
		if f.cfg.Traced != nil && f.cfg.Traced(s.addr) {
			buf.B = encodeIngestBatchTraced(buf.B, IngestBatch{From: f.self, Events: batch})
			codec = tracedCodecName
		} else {
			buf.B = encodeIngestBatch(buf.B, IngestBatch{From: f.self, Events: batch})
			codec = binaryCodecName
		}
		body = buf.B
		contentType = wirecodec.ContentTypeBinary
	} else {
		s.json.Reset()
		if err := json.NewEncoder(&s.json).Encode(IngestBatch{From: f.self, Events: batch}); err != nil {
			f.errors.Add(1)
			return 0, false
		}
		body = s.json.Bytes()
	}
	var start time.Time
	if f.fwdLat != nil || f.cfg.Tracer != nil {
		start = time.Now()
	}
	resp, err := s.do(contentType, body)
	if err != nil {
		br.Failure()
		f.errors.Add(1)
		if !f.spill(s.addr, batch, &f.dropSendFail) {
			f.cfg.Logf("cluster: forward to %s failed: %v (%d events lost)", s.addr, err, len(batch))
		}
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if binary && resp.StatusCode == http.StatusUnsupportedMediaType {
			// The peer answered — it is alive, just negotiating codecs —
			// so the probe outcome is success, not failure.
			br.Success()
			return resp.StatusCode, false // caller retries as JSON; not a loss
		}
		br.Failure()
		f.errors.Add(1)
		if !f.spill(s.addr, batch, &f.dropSendFail) {
			f.cfg.Logf("cluster: forward to %s: status %d (%d events lost)", s.addr, resp.StatusCode, len(batch))
		}
		return resp.StatusCode, false
	}
	br.Success()
	s.ack.Reset()
	var ack IngestAck
	if _, err := s.ack.ReadFrom(resp.Body); err == nil {
		if json.Unmarshal(s.ack.Bytes(), &ack) == nil {
			f.remoteDropped.Add(uint64(ack.Dropped))
		}
	}
	f.batches.Add(1)
	f.sent.Add(uint64(len(batch)))
	f.fwdLat.ObserveSince(start)
	f.fwdBatch.Observe(int64(len(batch)))
	if f.cfg.Tracer != nil {
		f.hopTraced(batch, s.addr, codec, start.UnixNano(), time.Now().UnixNano())
	}
	return resp.StatusCode, true
}

// Flush synchronously delivers everything currently enqueued by
// stopping and restarting each sender around a drain. It exists for
// tests and shutdown paths; the steady state never calls it.
func (f *Forwarder) Flush() {
	f.mu.Lock()
	queues := make([]*peerQueue, 0, len(f.queues))
	for _, q := range f.queues {
		queues = append(queues, q)
	}
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return
	}
	for _, q := range queues {
		close(q.stop)
		<-q.done
	}
	f.mu.Lock()
	for _, q := range queues {
		nq := &peerQueue{
			addr: q.addr,
			ch:   q.ch, // keep the channel: events enqueued mid-flush survive
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		f.queues[q.addr] = nq
		go f.send(nq)
	}
	f.mu.Unlock()
}

// QueueSample reports the deepest peer queue and the shared per-peer
// capacity — the backpressure monitor's view of the forwarding tier.
// Max across peers for the same reason the pipeline reports its worst
// shard: one backed-up peer is already losing that peer's events.
func (f *Forwarder) QueueSample() (depth, capacity int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, q := range f.queues {
		if d := len(q.ch); d > depth {
			depth = d
		}
	}
	return depth, f.cfg.QueueSize
}

// Stats snapshots the forwarding counters.
func (f *Forwarder) Stats() ForwardStats {
	return ForwardStats{
		Enqueued: f.enqueued.Load(),
		Dropped: f.dropQueueFull.Load() + f.dropSendFail.Load() +
			f.dropOutboxFull.Load() + f.dropBreaker.Load() + f.dropClosed.Load(),
		Spilled:       f.spilled.Load(),
		Batches:       f.batches.Load(),
		Sent:          f.sent.Load(),
		Errors:        f.errors.Load(),
		RemoteDropped: f.remoteDropped.Load(),
	}
}

// Close stops every sender after a final drain. Idempotent.
func (f *Forwarder) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	queues := make([]*peerQueue, 0, len(f.queues))
	for _, q := range f.queues {
		queues = append(queues, q)
	}
	f.mu.Unlock()
	for _, q := range queues {
		close(q.stop)
		<-q.done
	}
}
