package cluster

import (
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/replica"
	"locheat/internal/store"
	"locheat/internal/stream"
	"locheat/internal/trace"
)

// WireEvent is one check-in event on the forwarding wire. It mirrors
// lbsn.CheckinEvent with plain JSON-tagged fields so the wire format
// is explicit and decoupled from the domain types. Seq is not carried:
// sequence numbers are per-pipeline, and the owner's pipeline assigns
// its own on Publish.
type WireEvent struct {
	User     uint64    `json:"user"`
	Venue    uint64    `json:"venue"`
	At       time.Time `json:"at"`
	VenueLoc geo.Point `json:"venueLoc"`
	Reported geo.Point `json:"reported"`
	Accepted bool      `json:"accepted"`
	Reason   string    `json:"reason,omitempty"`
	// FwdSeq is the origin node's forwarding sequence number, assigned
	// once when the event first enters the forwarding path and preserved
	// across outbox spill and replay. Together with the batch's From it
	// identifies the delivery, so a receiver can drop a replayed
	// duplicate exactly (effectively-once). 0 = unnumbered (legacy or
	// locally published), never deduped.
	FwdSeq uint64 `json:"fwdSeq,omitempty"`
	// Trace/TraceFlags carry the origin's trace context when the event
	// was head-sampled (internal/trace): Trace is the 32-hex-digit ID,
	// TraceFlags the sampling flags. On JSON both are omitempty, so an
	// old peer ignores them harmlessly; on the binary wire they ride
	// only v2 (VersionTraced) bodies, which are sent only to peers that
	// advertised "bin/2". Empty = untraced.
	Trace      string `json:"trace,omitempty"`
	TraceFlags uint8  `json:"traceFlags,omitempty"`
}

// toWire converts a domain event for forwarding. The trace ID is
// rendered to hex only for sampled events, so the untraced majority
// pays no allocation here.
func toWire(ev lbsn.CheckinEvent) WireEvent {
	w := WireEvent{
		User:     uint64(ev.UserID),
		Venue:    uint64(ev.VenueID),
		At:       ev.At,
		VenueLoc: ev.Venue,
		Reported: ev.Reported,
		Accepted: ev.Accepted,
		Reason:   string(ev.Reason),
	}
	if ev.Trace.Sampled() {
		w.Trace = ev.Trace.ID.String()
		w.TraceFlags = ev.Trace.Flags
	}
	return w
}

// fromWire converts a forwarded event back for local publication. A
// malformed or missing trace ID decodes as untraced rather than an
// error: trace context is observability freight, never a reason to
// reject a check-in.
func fromWire(w WireEvent) lbsn.CheckinEvent {
	ev := lbsn.CheckinEvent{
		UserID:   lbsn.UserID(w.User),
		VenueID:  lbsn.VenueID(w.Venue),
		At:       w.At,
		Venue:    w.VenueLoc,
		Reported: w.Reported,
		Accepted: w.Accepted,
		Reason:   lbsn.DenyReason(w.Reason),
	}
	if w.Trace != "" {
		if id, ok := trace.ParseID(w.Trace); ok {
			ev.Trace = trace.Context{ID: id, Flags: w.TraceFlags | trace.FlagSampled}
		}
	}
	return ev
}

// IngestBatch is the POST /cluster/v1/ingest body: one forwarder batch.
type IngestBatch struct {
	// From is the sending node's ID, for counters and logs.
	From   string      `json:"from"`
	Events []WireEvent `json:"events"`
}

// IngestAck is the ingest endpoint's reply.
type IngestAck struct {
	// Accepted counts events the owner's pipeline enqueued; Dropped is
	// the rest (full shard queue or closed pipeline) — the drop-on-full
	// contract holds across the hop, it just moves the counter.
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
	// Duplicates counts events refused because their (From, FwdSeq)
	// delivery was already applied — an outbox replay overlapping a
	// delivery that did land. Not a loss: the first copy was processed.
	Duplicates int `json:"duplicates,omitempty"`
}

// UserStateBundle is one user's exported detector state: stage name →
// opaque blob, exactly as stream.Pipeline.ExportUserStates produced it.
type UserStateBundle map[string][]byte

// HandoffBundle is the POST /cluster/v1/handoff body: everything a
// departing (or rebalancing) owner ships to a user's new owner.
type HandoffBundle struct {
	From string `json:"from"`
	// Users carries per-user detector stage state keyed by user ID.
	Users map[uint64]UserStateBundle `json:"users,omitempty"`
	// Quarantines carries the active quarantine records for the moved
	// users, in the same format as the on-disk snapshot.
	Quarantines []store.QuarantineRecord `json:"quarantines,omitempty"`
}

// HandoffAck is the handoff endpoint's reply.
type HandoffAck struct {
	UsersImported       int `json:"usersImported"`
	QuarantinesRestored int `json:"quarantinesRestored"`
}

// PingResponse is the /cluster/v1/ping reply. Beyond node identity it
// carries the codec advertisement (how peers learn they may switch a
// sender to the binary wire format) and the piggybacked quarantine
// anti-entropy exchange: a probe POSTing a digest body gets back the
// entries the probed node knows newer (Digest) and how many of the
// probe's entries it applied — steady-state anti-entropy rides the
// heartbeats it already pays for.
type PingResponse struct {
	Node string `json:"node"`
	// Codec advertises the wire codecs this node accepts beyond JSON
	// ("bin/1", or empty for a JSON-only node).
	Codec string `json:"codec,omitempty"`
	// Digest is the repair half of a piggybacked digest exchange.
	Digest []replica.QuarEntry `json:"digest,omitempty"`
	// Applied counts the probe's digest entries this node installed.
	Applied int `json:"applied,omitempty"`
	// Members is the responder's gossip member table — the pull half of
	// the per-heartbeat anti-entropy exchange (the probe body pushes the
	// prober's table). An old peer omits it; an old prober ignores it.
	Members []MemberEntry `json:"members,omitempty"`
}

// JoinRequest is the POST /cluster/v1/join body: a new node announcing
// itself to a seed. Entry is the joiner's own gossip row (state
// "joining", its initial version).
type JoinRequest struct {
	Entry MemberEntry `json:"entry"`
}

// JoinResponse is the join handshake reply: the seed's full member
// table, which bootstraps the joiner's view of the cluster. Gossip
// spreads the joiner to everyone else within a heartbeat round.
type JoinResponse struct {
	Node    string        `json:"node"`
	Members []MemberEntry `json:"members"`
}

// LeaveNotice is the POST /cluster/v1/leave body: a graceful leaver
// announcing its departure so peers drop it from the ring immediately
// instead of waiting out the heartbeat failure window.
type LeaveNotice struct {
	Node string `json:"node"`
}

// LocalAlertsResponse is the GET /cluster/v1/alerts body: one node's
// own store slice of a scatter-gather query.
type LocalAlertsResponse struct {
	Node   string        `json:"node"`
	Alerts []store.Alert `json:"alerts"`
	// Total counts every local alert matching the filters, ignoring
	// pagination — the per-node input to the cluster-wide total.
	Total int `json:"total"`
}

// LocalQuarantineResponse is the GET /cluster/v1/quarantine body.
type LocalQuarantineResponse struct {
	Node   string                `json:"node"`
	Active []lbsn.QuarantineView `json:"active"`
}

// LocalStatsResponse is the GET /cluster/v1/stats body: one node's own
// detection counters for the merged stats view. Replication is present
// when the durability tier runs on the node.
type LocalStatsResponse struct {
	Node        string                `json:"node"`
	Pipeline    stream.Stats          `json:"pipeline"`
	Store       store.AlertStoreStats `json:"store"`
	Quarantine  lbsn.QuarantineStats  `json:"quarantine"`
	Replication *ReplicationStatus    `json:"replication,omitempty"`
}

// ReplicaCursorResponse is the GET /cluster/v1/replica/cursor body:
// where this node stands as a follower of ?primary=.
type ReplicaCursorResponse struct {
	Node    string `json:"node"`
	Primary string `json:"primary"`
	Epoch   int64  `json:"epoch"`
	Cursor  uint64 `json:"cursor"`
}

// QuarBroadcast is the POST /cluster/v1/quarbcast body: versioned
// quarantine transitions fanned out by their origin node. It doubles
// as the digest-exchange body (quardigest, ping piggyback), where Hash
// may replace Entries: a 16-byte digest-state hash
// (replica.Broadcaster.DigestHash) that lets two in-sync nodes confirm
// it with 16 bytes on the heartbeat instead of the full digest. A
// receiver that predates Hash simply sees an empty digest and replies
// with everything it knows — correct, just not hash-cheap.
type QuarBroadcast struct {
	From    string              `json:"from"`
	Entries []replica.QuarEntry `json:"entries"`
	Hash    []byte              `json:"hash,omitempty"`
	// Members piggybacks the sender's gossip member table on heartbeat
	// probe bodies (heartbeatPayload): the push half of the per-round
	// membership anti-entropy. Omitted on the dedicated quarbcast and
	// quardigest exchanges; a pre-gossip receiver ignores it.
	Members []MemberEntry `json:"members,omitempty"`
}

// QuarDigestResponse is the POST /cluster/v1/quardigest reply: the
// entries where the receiver knows something newer than the digest it
// was sent (the repair half of the anti-entropy exchange).
type QuarDigestResponse struct {
	Node    string              `json:"node"`
	Applied int                 `json:"applied"`
	Entries []replica.QuarEntry `json:"entries,omitempty"`
}
