// Trace scatter-gather: any node answers flight-recorder queries with
// the merged cluster view. A trace for a forwarded check-in exists as
// per-node fragments — the origin holds the ingest and forward-hop
// spans, the owner holds the stage and journal spans — so the merged
// endpoints group fragments by trace ID and stitch them with
// trace.Merge into one tree. The fan-out mirrors ClusterAlerts: local
// recorder first, live peers in parallel, unreachable peers skipped
// and counted so a partial view says so instead of erroring.
//
// The wire is JSON-only by design: trace views are a cold operator
// surface (bounded by the flight-recorder capacity), not a hot path
// worth a binary layout. A peer without the endpoints (a pre-trace
// build) answers 404, which merges as "no fragments there" rather
// than a failure — mixed-version clusters degrade to the tracing
// nodes' view.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"locheat/internal/trace"
)

// LocalTracesResponse is the GET /cluster/v1/traces body: one node's
// own retained fragments.
type LocalTracesResponse struct {
	Node   string       `json:"node"`
	Traces []trace.View `json:"traces"`
}

// handleLocalTraces serves this node's recorder slice of a scatter:
// /cluster/v1/traces lists fragments, /cluster/v1/traces/<id> fetches
// one. A node running without a tracer answers empty, not 404 — the
// endpoint existing means the build understands traces.
func (n *Node) handleLocalTraces(w http.ResponseWriter, r *http.Request) {
	if id := strings.TrimPrefix(r.URL.Path, "/cluster/v1/traces/"); id != r.URL.Path && id != "" {
		tid, ok := trace.ParseID(id)
		if !ok {
			http.Error(w, "malformed trace id", http.StatusBadRequest)
			return
		}
		v, ok := n.cfg.Tracer.Get(tid)
		if !ok {
			http.Error(w, "trace not retained here", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, LocalTracesResponse{Node: n.cfg.Self.ID, Traces: []trace.View{v}})
		return
	}
	f, err := parseTraceFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	views := n.cfg.Tracer.List(f)
	if views == nil {
		views = []trace.View{}
	}
	writeJSON(w, http.StatusOK, LocalTracesResponse{Node: n.cfg.Self.ID, Traces: views})
}

// parseTraceFilter decodes the internal trace query (shared shape with
// the public /api/v1/traces endpoint): user, detector, minNs, limit.
func parseTraceFilter(r *http.Request) (trace.Filter, error) {
	var f trace.Filter
	get := r.URL.Query().Get
	f.Detector = get("detector")
	var err error
	if v := get("user"); v != "" {
		if f.UserID, err = strconv.ParseUint(v, 10, 64); err != nil {
			return f, fmt.Errorf("malformed user %q", v)
		}
	}
	if v := get("minNs"); v != "" {
		if f.MinDurationNanos, err = strconv.ParseInt(v, 10, 64); err != nil {
			return f, fmt.Errorf("malformed minNs %q", v)
		}
	}
	if v := get("limit"); v != "" {
		if f.Limit, err = strconv.Atoi(v); err != nil {
			return f, fmt.Errorf("malformed limit %q", v)
		}
	}
	return f, nil
}

// ClusterTraces answers a trace listing with the merged cluster view:
// every node's matching fragments, grouped by trace ID and stitched,
// newest first.
func (n *Node) ClusterTraces(f trace.Filter) ([]trace.View, MergeInfo) {
	n.scatterQueries.Add(1)
	peers := n.members.LivePeers()
	// Fan the filter without the limit: a fragment that fails the
	// duration cut on one node can pass after merging with the hop
	// spans from another, so cutting early would drop cluster-slow
	// traces. The recorder bound keeps per-node responses small.
	fan := f
	fan.Limit = 0
	fan.MinDurationNanos = 0

	type result struct {
		views []trace.View
		err   error
	}
	results := make([]result, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer Member) {
			defer wg.Done()
			views, err := n.fetchPeerTraces(peer, fan)
			results[i] = result{views: views, err: err}
		}(i, peer)
	}
	local := n.cfg.Tracer.List(fan)
	wg.Wait()

	groups := make(map[string][]trace.View)
	order := make([]string, 0, len(local))
	add := func(views []trace.View) {
		for _, v := range views {
			if _, ok := groups[v.ID]; !ok {
				order = append(order, v.ID)
			}
			groups[v.ID] = append(groups[v.ID], v)
		}
	}
	add(local)
	info := MergeInfo{Nodes: 1}
	for i, res := range results {
		if res.err != nil {
			info.Failed++
			n.scatterPeerErrors.Add(1)
			n.cfg.Logf("cluster: scatter traces: peer %s: %v", peers[i].ID, res.err)
			continue
		}
		info.Nodes++
		add(res.views)
	}
	merged := make([]trace.View, 0, len(order))
	for _, id := range order {
		m := trace.Merge(groups[id])
		// Re-apply the duration cut on the stitched whole.
		if f.MinDurationNanos > 0 && int64(m.DurationMs*1e6) < f.MinDurationNanos {
			continue
		}
		merged = append(merged, m)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Start > merged[j].Start })
	if f.Limit > 0 && len(merged) > f.Limit {
		merged = merged[:f.Limit]
	}
	return merged, info
}

// ClusterTrace answers one trace by ID with the merged cluster view.
func (n *Node) ClusterTrace(id trace.ID) (trace.View, bool, MergeInfo) {
	n.scatterQueries.Add(1)
	peers := n.members.LivePeers()
	type result struct {
		views []trace.View
		err   error
	}
	results := make([]result, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer Member) {
			defer wg.Done()
			views, err := n.fetchPeerTrace(peer, id)
			results[i] = result{views: views, err: err}
		}(i, peer)
	}
	var fragments []trace.View
	if v, ok := n.cfg.Tracer.Get(id); ok {
		fragments = append(fragments, v)
	}
	wg.Wait()

	info := MergeInfo{Nodes: 1}
	for i, res := range results {
		if res.err != nil {
			info.Failed++
			n.scatterPeerErrors.Add(1)
			n.cfg.Logf("cluster: scatter trace %s: peer %s: %v", id, peers[i].ID, res.err)
			continue
		}
		info.Nodes++
		fragments = append(fragments, res.views...)
	}
	if len(fragments) == 0 {
		return trace.View{}, false, info
	}
	return trace.Merge(fragments), true, info
}

// fetchPeerTraces runs one peer's slice of the listing scatter.
func (n *Node) fetchPeerTraces(peer Member, f trace.Filter) ([]trace.View, error) {
	params := url.Values{}
	if f.UserID != 0 {
		params.Set("user", strconv.FormatUint(f.UserID, 10))
	}
	if f.Detector != "" {
		params.Set("detector", f.Detector)
	}
	u := peer.Addr + "/cluster/v1/traces"
	if enc := params.Encode(); enc != "" {
		u += "?" + enc
	}
	return n.fetchTraceViews(u, true)
}

// fetchPeerTrace fetches one peer's fragment of a trace, nil when the
// peer does not hold one.
func (n *Node) fetchPeerTrace(peer Member, id trace.ID) ([]trace.View, error) {
	return n.fetchTraceViews(peer.Addr+"/cluster/v1/traces/"+id.String(), true)
}

// fetchTraceViews GETs one trace endpoint. notFoundOK maps 404 — a
// pre-trace peer, or a by-ID miss — to "no fragments", not an error.
func (n *Node) fetchTraceViews(u string, notFoundOK bool) ([]trace.View, error) {
	resp, err := n.cfg.HTTP.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound && notFoundOK {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out LocalTracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}
