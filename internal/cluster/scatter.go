// Scatter-gather: any node answers alert and quarantine queries with
// the merged cluster view. The serving node queries its own store
// directly, fans the same filters out to every live peer's internal
// /cluster/v1 endpoints, and merges:
//
//   - alerts are deduped on their cross-node identity (store.KeyOf),
//     ordered newest first with the store's deterministic tie-break,
//     and paginated AFTER the merge — each node is asked for its top
//     offset+limit matches, which is exactly enough for the merged top
//     offset+limit to be correct (k-way top-k);
//   - the cluster-wide total is the sum of per-node post-filter totals
//     minus the duplicates the merge observed. Duplicates deeper than
//     the fetched windows cannot be observed without full scans, so
//     when cross-node duplicates exist past the page horizon the total
//     is an upper bound, not exact. Sharded ingest makes such
//     duplicates rare (one owner per user; they need a double-processed
//     event during a rebalance) and retention ages them out;
//   - quarantines merge per user, keeping the entry that expires last
//     (the strictest verdict wins, matching RestoreQuarantines).
//
// A peer that cannot be reached is skipped and counted: a partial view
// that says so beats a 502 — detection keeps being served from the
// nodes that are up.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"locheat/internal/lbsn"
	"locheat/internal/store"
	"locheat/internal/wirecodec"
)

// ScatterStats counts merged-view queries.
type ScatterStats struct {
	// Queries counts merged alert/quarantine reads served by this node.
	Queries uint64 `json:"queries"`
	// PeerErrors counts per-peer fetch failures across those queries.
	PeerErrors uint64 `json:"peerErrors"`
}

// errScatterBreakerOpen marks a peer skipped by its open scatter
// breaker: the peer has been failing fetches, so the merged view
// degrades immediately instead of burning the full HTTP timeout per
// query while the peer is down. Half-open probes re-admit it.
var errScatterBreakerOpen = fmt.Errorf("scatter breaker open")

// MergeInfo rides along with a merged page so callers can tell a full
// cluster view from a degraded one.
type MergeInfo struct {
	// Nodes is how many members contributed (including this one);
	// Failed how many live peers could not be reached.
	Nodes  int `json:"nodes"`
	Failed int `json:"failed,omitempty"`
	// Deduped counts alerts dropped as cross-node duplicates.
	Deduped int `json:"deduped,omitempty"`
}

// ClusterAlerts answers an alert query with the merged cluster view.
func (n *Node) ClusterAlerts(q store.AlertQuery) ([]store.Alert, int, MergeInfo) {
	n.scatterQueries.Add(1)
	peers := n.members.LivePeers()

	// Each node must contribute its top offset+limit matches for the
	// merged page to be exact; duplicates could still leave the merged
	// page one short in a pathological overlap, so over-fetch by the
	// peer count (cheap insurance, the filters already cut the set).
	fan := q
	fan.Offset = 0
	if q.Limit > 0 {
		fan.Limit = q.Offset + q.Limit + len(peers)
	}

	type result struct {
		alerts []store.Alert
		total  int
		err    error
	}
	results := make([]result, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer Member) {
			defer wg.Done()
			br := n.scatterBreakers.For(peer.ID)
			if !br.Allow() {
				results[i] = result{err: errScatterBreakerOpen}
				return
			}
			alerts, total, err := n.fetchPeerAlerts(peer, fan)
			if err != nil {
				br.Failure()
			} else {
				br.Success()
			}
			results[i] = result{alerts: alerts, total: total, err: err}
		}(i, peer)
	}
	localPage, localTotal := n.localAlerts(fan)
	wg.Wait()

	pages := [][]store.Alert{localPage}
	total := localTotal
	info := MergeInfo{Nodes: 1}
	for i, res := range results {
		if res.err != nil {
			info.Failed++
			n.scatterPeerErrors.Add(1)
			n.cfg.Logf("cluster: scatter alerts: peer %s: %v", peers[i].ID, res.err)
			continue
		}
		info.Nodes++
		pages = append(pages, res.alerts)
		total += res.total
	}
	merged, dupes := store.MergeAlertPages(pages)
	info.Deduped = dupes
	total -= dupes
	if total < 0 {
		total = 0
	}
	return store.PageAlerts(merged, q.Offset, q.Limit), total, info
}

// fetchPeerAlerts runs one peer's slice of the scatter.
func (n *Node) fetchPeerAlerts(peer Member, q store.AlertQuery) ([]store.Alert, int, error) {
	params := url.Values{}
	if q.UserID != 0 {
		params.Set("user", strconv.FormatUint(q.UserID, 10))
	}
	if q.Detector != "" {
		params.Set("detector", q.Detector)
	}
	if q.Limit > 0 {
		params.Set("limit", strconv.Itoa(q.Limit))
	}
	if !q.Since.IsZero() {
		params.Set("sinceNs", strconv.FormatInt(q.Since.UnixNano(), 10))
	}
	if !q.Until.IsZero() {
		params.Set("untilNs", strconv.FormatInt(q.Until.UnixNano(), 10))
	}
	u := peer.Addr + "/cluster/v1/alerts"
	if enc := params.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, err
	}
	// Ask for the binary body when the peer advertises the codec; the
	// reply's Content-Type says what actually came back, so a stale
	// advertisement (or a JSON-pinned peer) degrades to JSON, not to an
	// error. Trace-aware peers are asked for the v2 layout (alerts keep
	// their trace links); the ";v=2" parameter is invisible to a peer
	// doing the v1 prefix match, which simply answers v1.
	if n.peerBinary(peer.ID) {
		accept := wirecodec.ContentTypeBinary
		if n.peerTraced(peer.ID) {
			accept += acceptTracedParam
		}
		req.Header.Set("Accept", accept)
	}
	resp, err := n.cfg.HTTP.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), wirecodec.ContentTypeBinary) {
		buf := wirecodec.GetBuffer()
		defer wirecodec.PutBuffer(buf)
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return nil, 0, err
		}
		out, err := decodeLocalAlerts(buf.B)
		if err != nil {
			return nil, 0, err
		}
		return out.Alerts, out.Total, nil
	}
	var out LocalAlertsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, err
	}
	return out.Alerts, out.Total, nil
}

// ClusterTotals sums the load-bearing detection counters across live
// members — the cluster-wide half of the merged stats view.
type ClusterTotals struct {
	Published      uint64 `json:"published"`
	Processed      uint64 `json:"processed"`
	Dropped        uint64 `json:"dropped"`
	DeadLettered   uint64 `json:"deadLettered"`
	Alerts         uint64 `json:"alerts"`
	StoreRetained  int    `json:"storeRetained"`
	ActiveQuar     int    `json:"quarantineActive"`
	DeniedCheckins int    `json:"quarantineDenied"`
}

// ClusterStatsView is the merged stats answer: per-node detail plus
// cluster-wide totals. Totals are per-node counter sums — they count
// each node's own view of its work, so a forwarded event appears once
// (published by the owner), not once per hop.
type ClusterStatsView struct {
	Nodes  []LocalStatsResponse `json:"nodes"`
	Totals ClusterTotals        `json:"totals"`
	Info   MergeInfo            `json:"info"`
}

// ClusterStats answers the merged detection-stats view from this node.
func (n *Node) ClusterStats() ClusterStatsView {
	n.scatterQueries.Add(1)
	peers := n.members.LivePeers()
	results := make([]*LocalStatsResponse, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer Member) {
			defer wg.Done()
			br := n.scatterBreakers.For(peer.ID)
			if !br.Allow() {
				return
			}
			resp, err := n.cfg.HTTP.Get(peer.Addr + "/cluster/v1/stats")
			if err != nil {
				br.Failure()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				br.Failure()
				return
			}
			var out LocalStatsResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				br.Failure()
				return
			}
			br.Success()
			results[i] = &out
		}(i, peer)
	}
	local := n.localStats()
	wg.Wait()

	view := ClusterStatsView{Nodes: []LocalStatsResponse{local}, Info: MergeInfo{Nodes: 1}}
	for i, res := range results {
		if res == nil {
			view.Info.Failed++
			n.scatterPeerErrors.Add(1)
			n.cfg.Logf("cluster: scatter stats: peer %s unreachable", peers[i].ID)
			continue
		}
		view.Info.Nodes++
		view.Nodes = append(view.Nodes, *res)
	}
	sort.Slice(view.Nodes, func(i, j int) bool { return view.Nodes[i].Node < view.Nodes[j].Node })
	for _, ns := range view.Nodes {
		view.Totals.Published += ns.Pipeline.Published
		view.Totals.Processed += ns.Pipeline.Processed
		view.Totals.Dropped += ns.Pipeline.Dropped
		view.Totals.DeadLettered += ns.Pipeline.DeadLettered
		view.Totals.Alerts += ns.Pipeline.Alerts
		view.Totals.StoreRetained += ns.Store.Retained
		view.Totals.ActiveQuar += ns.Quarantine.Active
		view.Totals.DeniedCheckins += ns.Quarantine.DeniedCheckins
	}
	return view
}

// ClusterQuarantines answers the merged active-quarantine view: one
// entry per user, the latest-expiring verdict winning, ordered by user
// ID like the local endpoint.
func (n *Node) ClusterQuarantines() ([]lbsn.QuarantineView, MergeInfo) {
	n.scatterQueries.Add(1)
	peers := n.members.LivePeers()
	type result struct {
		active []lbsn.QuarantineView
		err    error
	}
	results := make([]result, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer Member) {
			defer wg.Done()
			br := n.scatterBreakers.For(peer.ID)
			if !br.Allow() {
				results[i] = result{err: errScatterBreakerOpen}
				return
			}
			resp, err := n.cfg.HTTP.Get(peer.Addr + "/cluster/v1/quarantine")
			if err != nil {
				br.Failure()
				results[i] = result{err: err}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				br.Failure()
				results[i] = result{err: fmt.Errorf("status %d", resp.StatusCode)}
				return
			}
			var out LocalQuarantineResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				br.Failure()
				results[i] = result{err: err}
				return
			}
			br.Success()
			results[i] = result{active: out.Active}
		}(i, peer)
	}
	local := n.svc.QuarantinedUsers()
	wg.Wait()

	byUser := make(map[lbsn.UserID]lbsn.QuarantineView)
	keep := func(views []lbsn.QuarantineView) {
		for _, v := range views {
			if cur, ok := byUser[v.UserID]; !ok || v.Until.After(cur.Until) {
				byUser[v.UserID] = v
			}
		}
	}
	keep(local)
	info := MergeInfo{Nodes: 1}
	for i, res := range results {
		if res.err != nil {
			info.Failed++
			n.scatterPeerErrors.Add(1)
			n.cfg.Logf("cluster: scatter quarantine: peer %s: %v", peers[i].ID, res.err)
			continue
		}
		info.Nodes++
		keep(res.active)
	}
	merged := make([]lbsn.QuarantineView, 0, len(byUser))
	for _, v := range byUser {
		merged = append(merged, v)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].UserID < merged[j].UserID })
	return merged, info
}
