package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"locheat/internal/backpressure"
	"locheat/internal/lbsn"
	"locheat/internal/obs"
	"locheat/internal/replica"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/stream"
	"locheat/internal/trace"
	"locheat/internal/wirecodec"
)

// Config parameterizes a Node. Self and (for multi-node operation)
// Peers are required; zero values elsewhere take defaults.
type Config struct {
	// Self identifies this node: a stable ID and the base URL peers use
	// to reach its internal listener.
	Self Member
	// Peers is the static cluster definition. Including self is fine
	// (it is skipped), so one flag value serves every node. May be empty
	// when Join names seed nodes — the member table then arrives through
	// the join handshake and gossip.
	Peers []Member
	// Join lists seed-node base URLs for the dynamic join path
	// (-cluster-join). When non-empty the node boots in the "joining"
	// state: it announces itself to the first seed that answers, pulls
	// the member table, and owns no ring share until its first
	// successful probe round promotes it to alive.
	Join []string
	// VirtualNodes per member on the ring (default DefaultVirtualNodes).
	VirtualNodes int
	// Membership tunes heartbeats and failure detection.
	Membership MembershipConfig
	// Forward tunes the cross-node ingest path.
	Forward ForwarderConfig
	// Replica tunes the durability & dissemination tier (journal
	// replication, quarantine broadcast, forwarding outbox).
	Replica ReplicaOptions
	// Breaker tunes the per-peer circuit breakers guarding the forward,
	// ship and quarbcast client paths. Zero values take the package
	// defaults; tests inject a simulated clock here to step the open
	// window deterministically.
	Breaker backpressure.BreakerConfig
	// DisableBinaryWire pins this node to JSON on the internal wire:
	// it neither advertises nor accepts the binary codec (requests
	// carrying it get 415, which downgrades the sender). The rolling-
	// upgrade escape hatch — and how tests stand up a JSON-only peer.
	DisableBinaryWire bool
	// DisableTracedWire caps the binary advertisement at "bin/1": the
	// node still decodes v2 bodies but peers will not send trace
	// context in binary form. Tests use it to stand up a peer that
	// looks like a pre-trace build to everyone else.
	DisableTracedWire bool
	// Handoff tunes the bounded rebalancing scheduler (concurrency,
	// bundle size, retry pacing). Zero values take defaults.
	Handoff HandoffConfig
	// Fault, when set, wires every cross-node HTTP client through the
	// fault injector (drop/delay/partition/flap by peer) and mounts its
	// control surface at /cluster/v1/fault. Chaos drills only — never
	// set in normal operation.
	Fault *FaultInjector
	// Tracer head-samples check-ins at ingest, records cross-node hop
	// spans, and backs the /cluster/v1/traces scatter surface. Nil
	// disables tracing on this node (it still decodes and forwards
	// trace context originated elsewhere).
	Tracer *trace.Tracer
	// HTTP issues handoff and scatter-gather requests (default a client
	// over the shared cluster transport with a 10s timeout).
	HTTP *http.Client
	// Logf receives cluster events. Nil discards.
	Logf func(format string, args ...any)
	// Obs registers the cluster tier's telemetry (forwarding, ingest,
	// handoff, scatter, heartbeats, replication) and is threaded into
	// the forwarder, membership and shipper. Nil runs unobserved.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.HTTP == nil {
		if c.Fault != nil {
			c.HTTP = c.Fault.Client(10 * time.Second)
		} else {
			c.HTTP = newHTTPClient(10 * time.Second)
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Membership.Logf == nil {
		c.Membership.Logf = c.Logf
	}
	if c.Membership.Clock == nil {
		c.Membership.Clock = simclock.Real{}
	}
	if c.Forward.Logf == nil {
		c.Forward.Logf = c.Logf
	}
	if c.Fault != nil {
		// Every cross-node client rides the injector so a partitioned
		// peer is unreachable on all paths at once, the way a real
		// network split behaves.
		if c.Membership.HTTP == nil {
			timeout := c.Membership.Timeout
			if timeout <= 0 {
				if timeout = c.Membership.HeartbeatEvery; timeout <= 0 {
					timeout = time.Second
				}
			}
			c.Membership.HTTP = c.Fault.Client(timeout)
		}
		if c.Forward.HTTP == nil {
			c.Forward.HTTP = c.Fault.Client(5 * time.Second)
		}
	}
	return c
}

// HandoffStats counts state migrations in both directions.
type HandoffStats struct {
	SentBundles     uint64 `json:"sentBundles"`
	SentUsers       uint64 `json:"sentUsers"`
	SendErrors      uint64 `json:"sendErrors"`
	RecvBundles     uint64 `json:"recvBundles"`
	RecvUsers       uint64 `json:"recvUsers"`
	RecvQuarantines uint64 `json:"recvQuarantines"`
}

// IngestStats counts the receiving half of forwarding.
type IngestStats struct {
	// Batches/Received count ingest POSTs and the events they carried;
	// Accepted/Dropped split Received by the local pipeline's verdict.
	Batches  uint64 `json:"batches"`
	Received uint64 `json:"received"`
	Accepted uint64 `json:"accepted"`
	Dropped  uint64 `json:"dropped"`
	// Local counts events ingested at this node for users it owns (no
	// hop); Forwarded counts events routed to a peer queue.
	Local     uint64 `json:"local"`
	Forwarded uint64 `json:"forwarded"`
}

// Status is the /api/v1/cluster body: everything an operator needs to
// see the partition tier working.
type Status struct {
	Self    string         `json:"self"`
	Addr    string         `json:"addr"`
	Leaving bool           `json:"leaving,omitempty"`
	Members []MemberStatus `json:"members"`
	// Ring lists the members currently owning key space.
	Ring    []string     `json:"ring"`
	Ingest  IngestStats  `json:"ingest"`
	Forward ForwardStats `json:"forward"`
	Handoff HandoffStats `json:"handoff"`
	Scatter ScatterStats `json:"scatter"`
	// Replication is the durability & dissemination tier's state.
	Replication ReplicationStatus `json:"replication"`
	// Breakers lists the per-peer circuit breakers on the forward, ship
	// and quarbcast client paths.
	Breakers []backpressure.BreakerStatus `json:"breakers,omitempty"`
}

// Node is one lbsnd instance's seat in the cluster: it routes ingest by
// ring ownership, serves the internal /cluster/v1 surface, hands state
// off on membership change, and answers merged cluster queries.
type Node struct {
	cfg      Config
	svc      *lbsn.Service
	pipeline *stream.Pipeline
	members  *Membership
	fwd      *Forwarder

	mu      sync.RWMutex
	ring    *Ring
	leaving bool

	// Durability & dissemination tier (see replication.go). bcast is
	// always set for a clustered node; rset/outbox need Replica.Dir and
	// shipper additionally needs a journal-backed store.
	bcast   *replica.Broadcaster
	rset    *replica.Set
	shipper *replica.Shipper
	outbox  *replica.Outbox
	journal *store.AlertJournal

	// fwdSeq numbers forwarded deliveries; seen/seenQ dedupe them on
	// the receiving side (bounded FIFO: seenQ is a circular buffer,
	// seenHead the slot the next eviction overwrites — see
	// recordForwardLocked).
	fwdSeq        atomic.Uint64
	seenMu        sync.Mutex
	seen          map[fwdKey]struct{}
	seenQ         []fwdKey
	seenHead      int
	dupDropped    atomic.Uint64
	bcastSendErrs atomic.Uint64
	bcastSkipped  atomic.Uint64
	replaying     atomic.Bool

	// Per-peer circuit breakers on the three cross-node client paths
	// (PR 9). A dead peer trips its breaker after a few failed calls;
	// subsequent traffic fast-fails to the durability tier (outbox,
	// resync cursor, digest anti-entropy) instead of stacking HTTP
	// timeouts, and half-open probes re-admit the peer when it returns.
	fwdBreakers     *backpressure.BreakerGroup
	shipBreakers    *backpressure.BreakerGroup
	bcastBreakers   *backpressure.BreakerGroup
	handoffBreakers *backpressure.BreakerGroup
	scatterBreakers *backpressure.BreakerGroup

	// handoff is the bounded rebalancing scheduler: ring changes park
	// displaced users' state here and a worker moves it with capped
	// concurrency, resumable across further ring changes.
	handoff *handoffScheduler

	// Chain re-replication state (repair.go): repairing guards one pass
	// at a time; repairMu/repairs expose per-(primary,target) progress
	// in ReplicationStatus.
	repairing     atomic.Bool
	repairMu      sync.Mutex
	repairs       map[string]RepairStatus
	repairShipped atomic.Uint64
	bcastRelayed  atomic.Uint64

	bgStop chan struct{}
	bgOnce sync.Once

	ingestBatches  atomic.Uint64
	ingestRecv     atomic.Uint64
	ingestAccepted atomic.Uint64
	ingestDropped  atomic.Uint64
	ingestLocal    atomic.Uint64
	ingestFwd      atomic.Uint64

	hoSentBundles atomic.Uint64
	hoSentUsers   atomic.Uint64
	hoSendErrors  atomic.Uint64
	hoRecvBundles atomic.Uint64
	hoRecvUsers   atomic.Uint64
	hoRecvQuar    atomic.Uint64

	scatterQueries    atomic.Uint64
	scatterPeerErrors atomic.Uint64

	// Replication-tier instrumentation (nil without Config.Obs):
	// quarProp is the quarantine-propagation histogram (origin stamp →
	// remote apply), bcastFanout counts per-peer broadcast sends, and
	// antiRepairs counts entries installed by digest anti-entropy.
	quarProp       *obs.Histogram
	bcastFanout    *obs.Counter
	antiRepairs    *obs.Counter
	outboxReplayed *obs.Counter
}

// NewNode builds a node over the local service and pipeline. The node
// starts with the full peer list presumed live; call Start to run
// heartbeats (or Tick from tests).
func NewNode(svc *lbsn.Service, pipeline *stream.Pipeline, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Self.ID == "" {
		return nil, fmt.Errorf("cluster: empty self node id")
	}
	n := &Node{
		cfg:      cfg,
		svc:      svc,
		pipeline: pipeline,
		seen:     make(map[fwdKey]struct{}),
		repairs:  make(map[string]RepairStatus),
		bgStop:   make(chan struct{}),
	}
	// Seed the forwarding sequence from the wall clock: a restarted
	// node must not re-issue sequence numbers its previous incarnation
	// already delivered, or the receiver's (origin, seq) dedupe would
	// silently refuse the new events as replays. Nanosecond seeding
	// keeps incarnations disjoint without a wire or disk format for
	// origin epochs — and spilled events from the old incarnation keep
	// their old (still-correct) numbers.
	n.fwdSeq.Store(uint64(time.Now().UnixNano()))
	// One breaker group per cross-node client path, peers keyed the way
	// each path addresses them (forward by queue address, ship and
	// quarbcast by member ID).
	n.fwdBreakers = backpressure.NewBreakerGroup("forward", cfg.Breaker, cfg.Obs)
	n.shipBreakers = backpressure.NewBreakerGroup("ship", cfg.Breaker, cfg.Obs)
	n.bcastBreakers = backpressure.NewBreakerGroup("quarbcast", cfg.Breaker, cfg.Obs)
	n.handoffBreakers = backpressure.NewBreakerGroup("handoff", cfg.Breaker, cfg.Obs)
	n.scatterBreakers = backpressure.NewBreakerGroup("scatter", cfg.Breaker, cfg.Obs)
	if err := n.initReplication(); err != nil {
		return nil, err
	}
	// The outbox hooks the forwarder's loss paths, so it must exist
	// before the forwarder does.
	fwdCfg := n.cfg.Forward
	if n.outbox != nil {
		fwdCfg.Spill = n.spillForward
	}
	// The forwarder asks per POST whether its destination advertised
	// the binary codec (learned from heartbeats, below).
	fwdCfg.Binary = n.peerBinaryAddr
	fwdCfg.Traced = n.peerTracedAddr
	fwdCfg.Tracer = cfg.Tracer
	fwdCfg.Obs = cfg.Obs
	fwdCfg.Breaker = n.fwdBreakers.For
	n.fwd = NewForwarder(cfg.Self.ID, fwdCfg)
	// Heartbeat probes carry the quarantine digest out and bring repair
	// entries (plus codec advertisements) back — steady-state
	// anti-entropy piggybacks on the failure detector's round instead
	// of costing a dedicated O(peers) exchange.
	mcfg := n.cfg.Membership
	mcfg.ProbePayload = n.heartbeatPayload
	mcfg.ProbeReply = n.heartbeatReply
	mcfg.Obs = cfg.Obs
	// A node booted with seeds instead of a static peer list joins
	// dynamically: no ring share until the handshake and first probe
	// round complete.
	mcfg.Joining = len(cfg.Join) > 0
	n.members = NewMembership(cfg.Self, cfg.Peers, mcfg)
	n.members.OnChange(n.rebalance)
	n.ring = NewRing(memberIDs(n.members.Live()), cfg.VirtualNodes)
	n.handoff = newHandoffScheduler(n, cfg.Handoff)
	n.refreshFollowers(n.ring)
	n.registerObs(cfg.Obs)
	return n, nil
}

// registerObs exposes the node's routing, handoff, scatter and
// replication counters as read-through metrics over the same atomics
// Status() reports. No-op on a nil registry.
func (n *Node) registerObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	load := func(v *atomic.Uint64) func() uint64 {
		return v.Load
	}
	reg.CounterFunc("locheat_cluster_ingest_local_total",
		"events ingested for locally-owned users", load(&n.ingestLocal))
	reg.CounterFunc("locheat_cluster_ingest_forwarded_total",
		"events routed toward a peer's queue", load(&n.ingestFwd))
	reg.CounterFunc("locheat_cluster_ingest_received_total",
		"events received from peers over /cluster/v1/ingest", load(&n.ingestRecv))
	reg.CounterFunc("locheat_cluster_ingest_accepted_total",
		"received events accepted by the local pipeline", load(&n.ingestAccepted))
	reg.CounterFunc("locheat_cluster_ingest_dropped_total",
		"received events refused by the local pipeline", load(&n.ingestDropped))
	reg.CounterFunc("locheat_cluster_ingest_duplicates_total",
		"forwarded deliveries deduped as outbox replays", load(&n.dupDropped))
	reg.CounterFunc("locheat_cluster_handoff_sent_users_total",
		"users whose detector state was handed to a new owner", load(&n.hoSentUsers))
	reg.CounterFunc("locheat_cluster_handoff_recv_users_total",
		"users whose detector state arrived from a departing owner", load(&n.hoRecvUsers))
	reg.CounterFunc("locheat_cluster_handoff_errors_total",
		"handoff bundles that failed to send", load(&n.hoSendErrors))
	reg.CounterFunc("locheat_cluster_scatter_queries_total",
		"merged scatter-gather queries served", load(&n.scatterQueries))
	// The satellite fix: per-node scatter failures were only visible in
	// X-Cluster-Failed response headers; this counter makes partial
	// merged views scrapeable.
	reg.CounterFunc("locheat_cluster_scatter_failures_total",
		"per-peer failures while assembling merged scatter-gather views", load(&n.scatterPeerErrors))
	reg.CounterFunc("locheat_replica_broadcast_send_errors_total",
		"failed quarantine-broadcast posts", load(&n.bcastSendErrs))
	reg.CounterFunc("locheat_replica_broadcast_skipped_total",
		"quarantine-broadcast posts skipped by an open peer breaker (repaired by digest anti-entropy)",
		load(&n.bcastSkipped))
	reg.CounterFunc("locheat_replica_broadcast_relayed_total",
		"quarantine entries re-forwarded along the ring (owner -> successors -> spread)",
		load(&n.bcastRelayed))
	reg.CounterFunc("locheat_replica_repair_shipped_total",
		"alerts re-shipped by chain re-replication to restore the replica factor",
		load(&n.repairShipped))
	reg.GaugeFunc("locheat_replica_repairs_active",
		"chain re-replication streams currently behind their goal cursor",
		func() float64 {
			n.repairMu.Lock()
			defer n.repairMu.Unlock()
			active := 0
			for _, r := range n.repairs {
				if !r.Done {
					active++
				}
			}
			return float64(active)
		})
	reg.GaugeFunc("locheat_cluster_handoff_pending",
		"users whose state is parked in the rebalancing scheduler awaiting delivery",
		func() float64 { return float64(n.handoff.Pending()) })
	reg.CounterFunc("locheat_cluster_handoff_retries_total",
		"handoff bundles requeued after a failed or breaker-refused send",
		func() uint64 { return n.handoff.retries.Load() })
	reg.CounterFunc("locheat_cluster_handoff_reclaimed_total",
		"parked users re-imported locally because ownership moved back mid-handoff",
		func() uint64 { return n.handoff.reclaimed.Load() })

	n.quarProp = reg.Histogram("locheat_quarantine_propagation_seconds",
		"quarantine propagation: origin broadcast stamp to remote apply", obs.Seconds)
	n.bcastFanout = reg.Counter("locheat_replica_broadcast_fanout_total",
		"per-peer quarantine broadcast sends attempted")
	n.antiRepairs = reg.Counter("locheat_replica_antientropy_repairs_total",
		"quarantine entries installed by digest anti-entropy")
	n.outboxReplayed = reg.Counter("locheat_cluster_outbox_replayed_total",
		"spilled events replayed from the outbox to a recovered peer")

	if n.bcast != nil {
		reg.CounterFunc("locheat_replica_broadcast_originated_total",
			"quarantine transitions originated locally",
			func() uint64 { return n.bcast.Stats().Originated })
		reg.CounterFunc("locheat_replica_broadcast_applied_total",
			"remote quarantine entries applied locally",
			func() uint64 { return n.bcast.Stats().Applied })
		// Silent-drop audit (PR 9): origination-queue overflow was only
		// visible in BroadcastStats JSON; the soak gate's "every drop
		// site counted" criterion needs it on /metrics too.
		reg.CounterFunc("locheat_replica_broadcast_dropped_total",
			"quarantine originations dropped by a full pending queue, by reason (repaired by digest anti-entropy)",
			func() uint64 { return n.bcast.Stats().Overflow }, "reason", "overflow")
	}
	if n.outbox != nil {
		reg.GaugeFunc("locheat_cluster_outbox_queued",
			"spilled events waiting in the on-disk outbox",
			func() float64 { return float64(n.outbox.Stats().Queued) })
		reg.CounterFunc("locheat_cluster_outbox_spilled_total",
			"payloads accepted onto the on-disk outbox",
			func() uint64 { return n.outbox.Stats().Spilled })
	}
}

// Ready reports whether the node is serving its seat in the cluster:
// constructed, past joining, not in the middle of leaving. The
// daemon's /readyz reads it.
func (n *Node) Ready() bool { return n.ReadyState() == "ok" }

// ReadyState names the node's cluster lifecycle position for /readyz:
// "joining" until the node owns traffic, "leaving" during shutdown,
// "ok" otherwise.
func (n *Node) ReadyState() string {
	n.mu.RLock()
	leaving := n.leaving
	n.mu.RUnlock()
	if leaving {
		return "leaving"
	}
	if n.members.Joining() {
		return "joining"
	}
	return "ok"
}

// spillForward journals events the forwarder would lose, keyed by the
// destination's member ID (reverse-resolved from the queue address so
// outbox files survive address changes across restarts). Payloads are
// binary-framed (decodeSpillEvent also reads the JSON a pre-upgrade
// build spilled, so old outbox files replay unchanged). Returns how
// many events the outbox durably accepted; the forwarder counts the
// rest dropped.
func (n *Node) spillForward(addr string, events []WireEvent) int {
	// Resolve through the live member table, not the static boot list:
	// gossip-learned peers spill under their member ID too.
	peerID := addr
	if m, ok := n.members.PeerByAddr(addr); ok {
		peerID = m.ID
	}
	accepted := 0
	for _, ev := range events {
		if n.outbox.Append(peerID, encodeSpillEvent(ev)) {
			accepted++
		}
	}
	return accepted
}

// peerBinary reports whether the peer (by member ID) takes the binary
// wire codec right now.
func (n *Node) peerBinary(id string) bool {
	return !n.cfg.DisableBinaryWire && n.members != nil && n.members.SupportsBinary(id)
}

// peerBinaryAddr is peerBinary keyed by address (the forwarder's view).
func (n *Node) peerBinaryAddr(addr string) bool {
	return !n.cfg.DisableBinaryWire && n.members != nil && n.members.SupportsBinaryAddr(addr)
}

// peerTraced reports whether the peer (by member ID) takes trace-aware
// (v2) binary bodies right now.
func (n *Node) peerTraced(id string) bool {
	return n.peerBinary(id) && n.members.SupportsTraced(id)
}

// peerTracedAddr is peerTraced keyed by address (the forwarder's view).
func (n *Node) peerTracedAddr(addr string) bool {
	return n.peerBinaryAddr(addr) && n.members.SupportsTracedAddr(addr)
}

func memberIDs(ms []Member) []string {
	ids := make([]string, len(ms))
	for i, m := range ms {
		ids[i] = m.ID
	}
	return ids
}

// Start runs the heartbeat loop and the replication tier's background
// cadence (quarantine digest exchange, outbox replay probe). Tests
// drive Tick / SyncQuarantines / ReplayOutbox directly instead.
func (n *Node) Start() {
	n.members.Start()
	go n.runReplicationLoop()
}

// Tick runs one heartbeat round synchronously (test hook).
func (n *Node) Tick() { n.members.Tick() }

// JoinCluster runs the seed handshake for a node booted with
// Config.Join: announce self to the first seed that answers and merge
// the member table it returns. Call after the internal listener is up
// (the seed's gossip immediately points peers at this node) and before
// Start. The node stays in the joining state — owning no ring share —
// until its first successful probe round; /readyz surfaces that.
func (n *Node) JoinCluster() error {
	if len(n.cfg.Join) == 0 {
		return nil
	}
	req := JoinRequest{Entry: MemberEntry{
		ID: n.cfg.Self.ID, Addr: n.cfg.Self.Addr,
		State: StateJoining.String(), Ver: 1,
	}}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	var lastErr error
	for _, seed := range n.cfg.Join {
		seed = strings.TrimRight(seed, "/")
		resp, err := n.cfg.HTTP.Post(seed+"/cluster/v1/join", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		var jr JoinResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("join via %s: status %d", seed, resp.StatusCode)
			continue
		}
		if err != nil {
			lastErr = fmt.Errorf("join via %s: %w", seed, err)
			continue
		}
		n.members.Merge(jr.Members)
		n.cfg.Logf("cluster: joined via seed %s (%s); learned %d members", jr.Node, seed, len(jr.Members))
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no seeds configured")
	}
	return fmt.Errorf("cluster: join failed: %w", lastErr)
}

// Membership exposes the node's membership view.
func (n *Node) Membership() *Membership { return n.members }

// currentRing returns the ring under the read lock.
func (n *Node) currentRing() (*Ring, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ring, n.leaving
}

// Owner reports which node owns a user right now.
func (n *Node) Owner(user uint64) string {
	ring, _ := n.currentRing()
	return ring.Owner(user)
}

// Ingest routes one check-in event: users this node owns go straight
// into the local pipeline, everyone else's are forwarded to their
// owner. Installed as the lbsn.Service check-in observer, so it must
// never block — and neither branch does.
func (n *Node) Ingest(ev lbsn.CheckinEvent) bool {
	// Head-sample HERE, before routing: the origin decides once, so the
	// trace ID travels the wire with the event and the owner continues
	// the same trace instead of rolling its own dice. The untraced
	// majority pays one nil check and one flags-byte test.
	if tr := n.cfg.Tracer; tr != nil && !ev.Trace.Sampled() {
		if ev.Trace = tr.Sample(!ev.Accepted); ev.Trace.Sampled() {
			if ev.IngestedAt.IsZero() {
				ev.IngestedAt = time.Now()
			}
			tr.Begin(ev.Trace, uint64(ev.UserID), uint64(ev.VenueID), ev.IngestedAt.UnixNano())
		}
	}
	ring, leaving := n.currentRing()
	owner := ring.Owner(uint64(ev.UserID))
	if owner == "" || (owner == n.cfg.Self.ID && !leaving) {
		n.ingestLocal.Add(1)
		return n.pipeline.Publish(ev)
	}
	peer, ok := n.members.Peer(owner)
	if !ok {
		// Ring and peer table disagree only transiently (rebalance in
		// flight); process locally rather than dropping evidence.
		n.ingestLocal.Add(1)
		return n.pipeline.Publish(ev)
	}
	n.ingestFwd.Add(1)
	w := toWire(ev)
	// Number the delivery once, here: the sequence rides through queue,
	// spill and replay unchanged, so the owner can recognize a replayed
	// duplicate of a delivery that already landed.
	w.FwdSeq = n.fwdSeq.Add(1)
	return n.fwd.Enqueue(peer.Addr, w)
}

// FlushForwards synchronously delivers everything enqueued for peers
// (test and shutdown hook).
func (n *Node) FlushForwards() { n.fwd.Flush() }

// rebalance recomputes the ring from the live member set and parks
// every displaced user's state in the bounded handoff scheduler. Runs
// on membership transitions (heartbeat loop) and on leave notices
// (HTTP handler goroutine); the actual state movement happens on the
// scheduler's worker with capped concurrency — a membership change
// must never stampede the cluster with synchronous bulk HTTP.
func (n *Node) rebalance() {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return // Shutdown owns the final handoff
	}
	ring := NewRing(memberIDs(n.members.Live()), n.cfg.VirtualNodes)
	n.ring = ring
	n.mu.Unlock()
	n.cfg.Logf("cluster: ring rebuilt over %v", ring.Members())
	n.refreshFollowers(ring)
	n.handoff.schedule(ring)
	// Membership changed: spilled events may be deliverable now (the
	// peer is back, or its users were rebalanced to someone reachable).
	n.ReplayOutbox()
	// A dead primary's replica factor may need restoring; the pass
	// no-ops when nothing is promoted.
	n.kickRepair()
}

// handoffTo exports every local user whose owner under ring is not this
// node and ships the bundles. Quarantine records ride along with the
// users that moved.
func (n *Node) handoffTo(ring *Ring) {
	selfID := n.cfg.Self.ID
	moved := func(user uint64) bool {
		owner := ring.Owner(user)
		return owner != "" && owner != selfID
	}
	states := n.pipeline.ExportUserStates(moved)
	quar := n.svc.QuarantineRecords(func(id lbsn.UserID) bool { return moved(uint64(id)) })
	if len(states) == 0 && len(quar) == 0 {
		return
	}

	// Group per destination owner.
	type bundle struct {
		users map[uint64]UserStateBundle
		quar  []store.QuarantineRecord
	}
	byOwner := make(map[string]*bundle)
	get := func(owner string) *bundle {
		b := byOwner[owner]
		if b == nil {
			b = &bundle{users: make(map[uint64]UserStateBundle)}
			byOwner[owner] = b
		}
		return b
	}
	for user, st := range states {
		get(ring.Owner(user)).users[user] = UserStateBundle(st)
	}
	for _, r := range quar {
		get(ring.Owner(r.UserID)).quar = append(get(ring.Owner(r.UserID)).quar, r)
	}

	for owner, b := range byOwner {
		peer, ok := n.members.Peer(owner)
		if !ok {
			n.hoSendErrors.Add(1)
			n.cfg.Logf("cluster: handoff: unknown owner %s for %d users", owner, len(b.users))
			continue
		}
		n.sendHandoff(peer, HandoffBundle{From: n.cfg.Self.ID, Users: b.users, Quarantines: b.quar})
	}
}

// postNegotiated POSTs one message to a peer in its negotiated codec:
// binary when the peer advertises it — with a one-shot JSON retry on
// 415, covering a stale advertisement — and JSON otherwise. encodeBin
// appends the binary form to its argument; jsonV is the same message
// for the JSON path.
func (n *Node) postNegotiated(addr, path, peerID string, encodeBin func([]byte) []byte, jsonV any) (*http.Response, error) {
	if n.peerBinary(peerID) {
		buf := wirecodec.GetBuffer()
		buf.B = encodeBin(buf.B)
		resp, err := n.cfg.HTTP.Post(addr+path, wirecodec.ContentTypeBinary, bytes.NewReader(buf.B))
		wirecodec.PutBuffer(buf)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			return resp, nil
		}
		resp.Body.Close() // stale advertisement: downgrade this request
	}
	body, err := json.Marshal(jsonV)
	if err != nil {
		return nil, err
	}
	return n.cfg.HTTP.Post(addr+path, "application/json", bytes.NewReader(body))
}

// sendHandoff posts one bundle and reports whether the new owner
// acknowledged it. On the shutdown path a failure is terminal (logged
// and counted — the new owner rebuilds detector state from live
// traffic, which is degraded detection, not corruption); the
// rebalancing scheduler instead keeps the bundle parked and retries.
func (n *Node) sendHandoff(peer Member, hb HandoffBundle) bool {
	resp, err := n.postNegotiated(peer.Addr, "/cluster/v1/handoff", peer.ID,
		func(dst []byte) []byte { return encodeHandoffBundle(dst, hb) }, hb)
	if err != nil {
		n.hoSendErrors.Add(1)
		n.cfg.Logf("cluster: handoff to %s failed: %v (%d users)", peer.ID, err, len(hb.Users))
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.hoSendErrors.Add(1)
		n.cfg.Logf("cluster: handoff to %s: status %d (%d users)", peer.ID, resp.StatusCode, len(hb.Users))
		return false
	}
	n.hoSentBundles.Add(1)
	n.hoSentUsers.Add(uint64(len(hb.Users)))
	n.cfg.Logf("cluster: handed %d users / %d quarantines to %s", len(hb.Users), len(hb.Quarantines), peer.ID)
	return true
}

// Shutdown leaves the cluster gracefully: announce the departure so
// peers reroute immediately, flush the forward queues, then export ALL
// local user state to the post-departure ring and stop. The pipeline
// itself is NOT closed — the daemon closes it (draining queued events)
// after Shutdown returns; any stragglers those drains detect stay in
// the local journal and surface through scatter-gather history until
// retention ages them out.
func (n *Node) Shutdown() {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return
	}
	n.leaving = true
	departed := NewRing(memberIDs(n.members.LivePeers()), n.cfg.VirtualNodes)
	n.ring = departed
	n.mu.Unlock()

	// Announce first: peers stop routing new events here while we pack.
	notice, _ := json.Marshal(LeaveNotice{Node: n.cfg.Self.ID})
	for _, peer := range n.members.LivePeers() {
		resp, err := n.cfg.HTTP.Post(peer.Addr+"/cluster/v1/leave", "application/json", bytes.NewReader(notice))
		if err != nil {
			n.cfg.Logf("cluster: leave notice to %s failed: %v", peer.ID, err)
			continue
		}
		resp.Body.Close()
	}

	// Ship anything still queued for peers, then the state itself.
	// The rebalancing scheduler drains first: state parked mid-handoff
	// lives only in its pending set, so it must flush (and stop) before
	// the terminal export walks what's left in the pipeline.
	n.fwd.Flush()
	n.handoff.close()
	if departed.Size() > 0 {
		n.handoffTo(departed)
	}
	n.fwd.Close()
	n.bgOnce.Do(func() { close(n.bgStop) })
	// Final replica flush AFTER the forwarder drained: the drain may
	// have produced last alerts on peers, but OUR journal tail must
	// reach our followers before the process dies for merged history
	// to survive the departure.
	n.closeReplication()
	n.members.Stop()
	n.cfg.Logf("cluster: node %s left", n.cfg.Self.ID)
}

// Handler serves the internal /cluster/v1 surface. Mount it on the
// cluster-internal listener; it carries no authentication.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/v1/ping", n.handlePing)
	mux.HandleFunc("/cluster/v1/join", n.handleJoin)
	mux.HandleFunc("/cluster/v1/ingest", n.handleIngest)
	mux.HandleFunc("/cluster/v1/handoff", n.handleHandoff)
	mux.HandleFunc("/cluster/v1/leave", n.handleLeave)
	mux.HandleFunc("/cluster/v1/alerts", n.handleLocalAlerts)
	mux.HandleFunc("/cluster/v1/quarantine", n.handleLocalQuarantine)
	mux.HandleFunc("/cluster/v1/stats", n.handleLocalStats)
	mux.HandleFunc("/cluster/v1/replica/ship", n.handleReplicaShip)
	mux.HandleFunc("/cluster/v1/replica/cursor", n.handleReplicaCursor)
	mux.HandleFunc("/cluster/v1/quarbcast", n.handleQuarBroadcast)
	mux.HandleFunc("/cluster/v1/quardigest", n.handleQuarDigest)
	mux.HandleFunc("/cluster/v1/traces", n.handleLocalTraces)
	mux.HandleFunc("/cluster/v1/traces/", n.handleLocalTraces)
	if n.cfg.Fault != nil {
		mux.HandleFunc("/cluster/v1/fault", n.cfg.Fault.Handler)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (n *Node) handlePing(w http.ResponseWriter, r *http.Request) {
	// A leaving node answers unhealthy: a survivor's heartbeat between
	// our leave notice and process exit must NOT revive us, or it would
	// route fresh events — and hand freshly-rebalanced state — to a node
	// that has already exported everything and is about to vanish.
	if _, leaving := n.currentRing(); leaving {
		http.Error(w, "leaving", http.StatusServiceUnavailable)
		return
	}
	pr := PingResponse{Node: n.cfg.Self.ID}
	if !n.cfg.DisableBinaryWire {
		// Advertise the trace-aware codec whether or not a Tracer runs
		// here: the capability is about what this node DECODES, and a
		// new build decodes v2 regardless. DisableTracedWire pins the
		// advert to "bin/1" for mixed-version tests and rollback drills.
		if n.cfg.DisableTracedWire {
			pr.Codec = binaryCodecName
		} else {
			pr.Codec = tracedCodecName
		}
	}
	// A probe POSTing a digest body gets the anti-entropy exchange in
	// the reply. Hash-first: a probe carrying only the 16-byte digest
	// hash costs nothing when it matches ours (the steady state); on
	// mismatch we reply with our full digest and the prober pushes its
	// own back (heartbeatReply), converging both sides. A probe carrying
	// full entries (an older build) gets the original merge. Gossip
	// member entries riding the same body are merged here, and our own
	// table rides back in the reply — membership anti-entropy costs the
	// heartbeat round it already pays for.
	if r.Method == http.MethodPost {
		if qb, err := n.decodeQuarBody(r); err == nil {
			if len(qb.Members) > 0 {
				n.members.Merge(qb.Members)
			}
			if n.bcast != nil {
				if len(qb.Hash) > 0 && len(qb.Entries) == 0 {
					if !bytes.Equal(qb.Hash, n.bcast.DigestHash()) {
						pr.Digest = n.bcast.Digest()
					}
				} else if len(qb.Entries) > 0 || len(qb.Hash) > 0 {
					pr.Digest, pr.Applied = n.bcast.MergeDigest(qb.Entries)
					n.antiRepairs.Add(uint64(pr.Applied))
				}
			}
		}
	}
	pr.Members = n.members.GossipEntries()
	writeJSON(w, http.StatusOK, pr)
}

// handleJoin serves the seed half of the dynamic join handshake: merge
// the joiner's announcement into the member table (gossip spreads it
// from here) and hand back the full table so the joiner can bootstrap
// its view in one round trip.
func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if _, leaving := n.currentRing(); leaving {
		http.Error(w, "leaving", http.StatusServiceUnavailable)
		return
	}
	var req JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil ||
		req.Entry.ID == "" || req.Entry.Addr == "" {
		http.Error(w, "malformed join request", http.StatusBadRequest)
		return
	}
	if req.Entry.ID == n.cfg.Self.ID {
		http.Error(w, "joiner claims this node's id", http.StatusConflict)
		return
	}
	n.members.Merge([]MemberEntry{req.Entry})
	n.cfg.Logf("cluster: join request from %s (%s)", req.Entry.ID, req.Entry.Addr)
	writeJSON(w, http.StatusOK, JoinResponse{Node: n.cfg.Self.ID, Members: n.members.GossipEntries()})
}

// decodeQuarBody reads a QuarBroadcast request body in its declared
// codec (used by the broadcast, digest and ping-piggyback handlers).
func (n *Node) decodeQuarBody(r *http.Request) (QuarBroadcast, error) {
	if isBinaryRequest(r) {
		if n.cfg.DisableBinaryWire {
			return QuarBroadcast{}, errBinaryDisabled
		}
		buf, err := readBody(r)
		if err != nil {
			return QuarBroadcast{}, err
		}
		defer wirecodec.PutBuffer(buf)
		return decodeQuarBroadcast(buf.B)
	}
	var qb QuarBroadcast
	if err := json.NewDecoder(r.Body).Decode(&qb); err != nil {
		return QuarBroadcast{}, err
	}
	return qb, nil
}

// errBinaryDisabled marks a binary body refused by a JSON-pinned node;
// handlers translate it to 415 so the sender downgrades.
var errBinaryDisabled = fmt.Errorf("binary codec disabled")

// decodeBinaryRequest handles the binary half of a dual-codec handler:
// 415 when this node is JSON-pinned (so the sender downgrades), pooled
// body read, decode, 400 on damage — writing the error response itself.
// Returns whether decode succeeded and the handler should proceed.
func (n *Node) decodeBinaryRequest(w http.ResponseWriter, r *http.Request, label string, decode func([]byte) error) bool {
	if n.cfg.DisableBinaryWire {
		http.Error(w, "binary codec disabled", http.StatusUnsupportedMediaType)
		return false
	}
	buf, err := readBody(r)
	if err != nil {
		http.Error(w, label, http.StatusBadRequest)
		return false
	}
	defer wirecodec.PutBuffer(buf)
	if err := decode(buf.B); err != nil {
		http.Error(w, label, http.StatusBadRequest)
		return false
	}
	return true
}

// ingestScratch is the pooled per-request state of the ingest handler:
// the binary decode target and the source-index map the batched
// publish uses to credit per-event verdicts back to wire events.
type ingestScratch struct {
	wire []WireEvent
	srcs []int32
}

var ingestScratchPool = sync.Pool{New: func() any { return &ingestScratch{} }}

func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	sc := ingestScratchPool.Get().(*ingestScratch)
	defer func() {
		sc.wire = sc.wire[:0]
		sc.srcs = sc.srcs[:0]
		ingestScratchPool.Put(sc)
	}()
	var batch IngestBatch
	if isBinaryRequest(r) {
		if !n.decodeBinaryRequest(w, r, "malformed batch", func(b []byte) (err error) {
			batch, err = decodeIngestBatchInto(b, sc.wire)
			return err
		}) {
			return
		}
		sc.wire = batch.Events // keep the grown capacity pooled
	} else if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		http.Error(w, "malformed batch", http.StatusBadRequest)
		return
	}
	ack := IngestAck{}
	eb := stream.GetEventBatch()
	sc.srcs = sc.srcs[:0]
	// Numbered deliveries dedupe across outbox replays: the same
	// (origin, seq) landing twice is the replay of a delivery that
	// already succeeded, not a new event. One lock acquisition filters
	// the whole batch.
	n.seenMu.Lock()
	for i := range batch.Events {
		if seq := batch.Events[i].FwdSeq; seq != 0 {
			if _, dup := n.seen[fwdKey{origin: batch.From, seq: seq}]; dup {
				ack.Duplicates++
				continue
			}
		}
		eb.Events = append(eb.Events, fromWire(batch.Events[i]))
		sc.srcs = append(sc.srcs, int32(i))
	}
	n.seenMu.Unlock()
	if ack.Duplicates > 0 {
		n.dupDropped.Add(uint64(ack.Duplicates))
	}
	// One batched publish: N events, one shard-ring push per shard. The
	// reject callback voids the source index of every refused event so
	// only deliveries that actually entered the pipeline get recorded —
	// a refused one must stay replayable from the outbox.
	ack.Accepted = n.pipeline.PublishBatch(eb.Events, func(i int) { sc.srcs[i] = -1 })
	ack.Dropped = len(eb.Events) - ack.Accepted
	n.seenMu.Lock()
	for _, wi := range sc.srcs {
		if wi < 0 {
			continue
		}
		if seq := batch.Events[wi].FwdSeq; seq != 0 {
			n.recordForwardLocked(batch.From, seq)
		}
	}
	n.seenMu.Unlock()
	stream.PutEventBatch(eb)
	n.ingestBatches.Add(1)
	n.ingestRecv.Add(uint64(len(batch.Events)))
	n.ingestAccepted.Add(uint64(ack.Accepted))
	n.ingestDropped.Add(uint64(ack.Dropped))
	writeJSON(w, http.StatusOK, ack)
}

func (n *Node) handleHandoff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Same guard as handlePing: a leaving node has already run its final
	// export, so state imported now would die with the process. Refuse,
	// and the sender counts a send error instead of a phantom success.
	if _, leaving := n.currentRing(); leaving {
		http.Error(w, "leaving", http.StatusServiceUnavailable)
		return
	}
	var hb HandoffBundle
	if isBinaryRequest(r) {
		if !n.decodeBinaryRequest(w, r, "malformed bundle", func(b []byte) (err error) {
			hb, err = decodeHandoffBundle(b)
			return err
		}) {
			return
		}
	} else if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		http.Error(w, "malformed bundle", http.StatusBadRequest)
		return
	}
	states := make(map[uint64]map[string][]byte, len(hb.Users))
	for user, b := range hb.Users {
		states[user] = map[string][]byte(b)
	}
	ack := HandoffAck{
		UsersImported:       n.pipeline.ImportUserStates(states),
		QuarantinesRestored: n.svc.RestoreQuarantines(hb.Quarantines),
	}
	n.hoRecvBundles.Add(1)
	n.hoRecvUsers.Add(uint64(ack.UsersImported))
	n.hoRecvQuar.Add(uint64(ack.QuarantinesRestored))
	n.cfg.Logf("cluster: received %d users / %d quarantines from %s", ack.UsersImported, ack.QuarantinesRestored, hb.From)
	writeJSON(w, http.StatusOK, ack)
}

func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var notice LeaveNotice
	if err := json.NewDecoder(r.Body).Decode(&notice); err != nil || notice.Node == "" {
		http.Error(w, "malformed notice", http.StatusBadRequest)
		return
	}
	n.members.MarkLeft(notice.Node) // fires rebalance via OnChange
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleLocalAlerts serves this node's own store slice of a scatter —
// which includes any promoted replicas it holds for dead primaries, so
// merged history survives a killed node. Query parameters mirror the
// public /api/v1/alerts filter set, plus limit/offset applied locally.
// The response body is Accept-negotiated: a peer asking for the binary
// codec gets the wirecodec framing (a JSON-pinned node ignores the
// header and answers JSON, which the caller detects by Content-Type —
// mixed-version scatters stay lossless).
func (n *Node) handleLocalAlerts(w http.ResponseWriter, r *http.Request) {
	q, err := parseLocalAlertQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	page, total := n.localAlerts(q)
	if acceptsBinary(r) && !n.cfg.DisableBinaryWire {
		buf := wirecodec.GetBuffer()
		defer wirecodec.PutBuffer(buf)
		if acceptsTraced(r) && !n.cfg.DisableTracedWire {
			buf.B = encodeLocalAlertsTraced(buf.B, LocalAlertsResponse{Node: n.cfg.Self.ID, Alerts: page, Total: total})
		} else {
			buf.B = encodeLocalAlerts(buf.B, LocalAlertsResponse{Node: n.cfg.Self.ID, Alerts: page, Total: total})
		}
		w.Header().Set("Content-Type", wirecodec.ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf.B)
		return
	}
	if page == nil {
		page = []store.Alert{}
	}
	writeJSON(w, http.StatusOK, LocalAlertsResponse{Node: n.cfg.Self.ID, Alerts: page, Total: total})
}

func (n *Node) handleLocalQuarantine(w http.ResponseWriter, r *http.Request) {
	active := n.svc.QuarantinedUsers()
	if active == nil {
		active = []lbsn.QuarantineView{}
	}
	writeJSON(w, http.StatusOK, LocalQuarantineResponse{Node: n.cfg.Self.ID, Active: active})
}

func (n *Node) handleLocalStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.localStats())
}

func (n *Node) localStats() LocalStatsResponse {
	resp := LocalStatsResponse{
		Node:       n.cfg.Self.ID,
		Pipeline:   n.pipeline.Stats(),
		Store:      n.pipeline.AlertStore().Stats(),
		Quarantine: n.svc.QuarantineStats(),
	}
	if n.bcast != nil {
		rs := n.replicationStatus()
		resp.Replication = &rs
	}
	return resp
}

// parseLocalAlertQuery decodes the internal wire query. It accepts
// unix-nanosecond since/until (lossless, machine-to-machine) rather
// than the human formats the public API takes.
func parseLocalAlertQuery(r *http.Request) (store.AlertQuery, error) {
	var q store.AlertQuery
	get := r.URL.Query().Get
	q.Detector = get("detector")
	var err error
	if v := get("user"); v != "" {
		if q.UserID, err = strconv.ParseUint(v, 10, 64); err != nil {
			return q, fmt.Errorf("malformed user %q", v)
		}
	}
	if v := get("limit"); v != "" {
		if q.Limit, err = strconv.Atoi(v); err != nil {
			return q, fmt.Errorf("malformed limit %q", v)
		}
	}
	if v := get("offset"); v != "" {
		if q.Offset, err = strconv.Atoi(v); err != nil {
			return q, fmt.Errorf("malformed offset %q", v)
		}
	}
	if v := get("sinceNs"); v != "" {
		ns, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil {
			return q, fmt.Errorf("malformed sinceNs %q", v)
		}
		q.Since = time.Unix(0, ns).UTC()
	}
	if v := get("untilNs"); v != "" {
		ns, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil {
			return q, fmt.Errorf("malformed untilNs %q", v)
		}
		q.Until = time.Unix(0, ns).UTC()
	}
	return q, nil
}

// Stats assembles the node's Status snapshot.
func (n *Node) Status() Status {
	n.mu.RLock()
	ring, leaving := n.ring, n.leaving
	n.mu.RUnlock()
	return Status{
		Self:    n.cfg.Self.ID,
		Addr:    n.cfg.Self.Addr,
		Leaving: leaving,
		Members: n.members.Status(),
		Ring:    ring.Members(),
		Ingest: IngestStats{
			Batches:   n.ingestBatches.Load(),
			Received:  n.ingestRecv.Load(),
			Accepted:  n.ingestAccepted.Load(),
			Dropped:   n.ingestDropped.Load(),
			Local:     n.ingestLocal.Load(),
			Forwarded: n.ingestFwd.Load(),
		},
		Forward: n.fwd.Stats(),
		Handoff: HandoffStats{
			SentBundles:     n.hoSentBundles.Load(),
			SentUsers:       n.hoSentUsers.Load(),
			SendErrors:      n.hoSendErrors.Load(),
			RecvBundles:     n.hoRecvBundles.Load(),
			RecvUsers:       n.hoRecvUsers.Load(),
			RecvQuarantines: n.hoRecvQuar.Load(),
		},
		Scatter: ScatterStats{
			Queries:    n.scatterQueries.Load(),
			PeerErrors: n.scatterPeerErrors.Load(),
		},
		Replication: n.replicationStatus(),
		Breakers:    n.breakerStatus(),
	}
}

// breakerStatus concatenates the client paths' breaker snapshots.
func (n *Node) breakerStatus() []backpressure.BreakerStatus {
	var out []backpressure.BreakerStatus
	out = append(out, n.fwdBreakers.Status()...)
	out = append(out, n.shipBreakers.Status()...)
	out = append(out, n.bcastBreakers.Status()...)
	out = append(out, n.handoffBreakers.Status()...)
	out = append(out, n.scatterBreakers.Status()...)
	return out
}

// QueueSample exposes the forwarder's deepest peer queue for the
// daemon's backpressure monitor.
func (n *Node) QueueSample() (depth, capacity int) { return n.fwd.QueueSample() }
