// Replication glue: wires internal/replica's transport-agnostic
// machinery over the cluster's internal HTTP surface and membership
// view. Three loss windows close here:
//
//   - journal replication — the local AlertJournal streams to the
//     node's ring successors (deterministic followers, Ring.Successors);
//     when a primary drops out of the live set, any node holding its
//     replica promotes it read-side, so merged alert history stays
//     complete after a kill -9;
//   - quarantine broadcast — every local quarantine transition fans out
//     to all live peers immediately and a periodic digest exchange
//     repairs drops, so DenyQuarantined holds on whichever node a
//     cheater connects to;
//   - forwarding outbox — events the forwarder would drop spill to
//     disk and are replayed through ingest re-resolution on membership
//     change (the receiver dedupes by forwarding sequence, the local
//     pipeline's dedupe stage catches re-owned replays).
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"path/filepath"
	"sync"
	"time"

	"locheat/internal/lbsn"
	"locheat/internal/replica"
	"locheat/internal/store"
)

// ReplicaOptions tunes the durability & dissemination tier. The
// quarantine broadcast always runs on a clustered node (it needs no
// disk); journal replication and the outbox need Dir.
type ReplicaOptions struct {
	// Dir is the tier's disk root (typically the journal dir): replica
	// logs live under Dir/replicas, the outbox under Dir/outbox. ""
	// disables both.
	Dir string
	// Factor is the total copy count including the primary; >= 2 ships
	// journal appends to Factor-1 ring successors. Requires the
	// pipeline's alert store to be a *store.AlertJournal.
	Factor int
	// OutboxMaxBytes caps each peer's on-disk spill (default 4 MiB;
	// < 0 disables the outbox).
	OutboxMaxBytes int64
	// ShipBatch / ShipInterval tune the shipper (defaults 256 / 100ms).
	ShipBatch    int
	ShipInterval time.Duration
	// DigestEvery paces the quarantine anti-entropy exchange and the
	// background outbox replay probe (default 2s).
	DigestEvery time.Duration
	// TombstoneTTL bounds release-tombstone memory (default 24h).
	TombstoneTTL time.Duration
}

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.DigestEvery <= 0 {
		o.DigestEvery = 2 * time.Second
	}
	return o
}

// seenCap bounds the forwarded-delivery dedupe window. 64k entries
// comfortably covers every in-flight spill at the default outbox cap.
const seenCap = 1 << 16

// fwdKey identifies one forwarded delivery: origin node + its
// forwarding sequence.
type fwdKey struct {
	origin string
	seq    uint64
}

// seenForward reports whether a delivery was already applied.
func (n *Node) seenForward(origin string, seq uint64) bool {
	n.seenMu.Lock()
	defer n.seenMu.Unlock()
	_, dup := n.seen[fwdKey{origin: origin, seq: seq}]
	return dup
}

// recordForward marks a delivery applied, once its event actually
// entered the pipeline — a refused Publish stays unrecorded so the
// outbox replay of that delivery is not mistaken for a duplicate.
// FIFO-bounded at seenCap.
func (n *Node) recordForward(origin string, seq uint64) {
	n.seenMu.Lock()
	defer n.seenMu.Unlock()
	n.recordForwardLocked(origin, seq)
}

// recordForwardLocked is recordForward under an already-held seenMu —
// the batched ingest handler records a whole batch's deliveries in one
// lock acquisition. The FIFO is a circular buffer: growing a slice and
// re-slicing past the evicted head would march through its backing
// array and reallocate seenCap entries' worth of keys on every lap.
func (n *Node) recordForwardLocked(origin string, seq uint64) {
	k := fwdKey{origin: origin, seq: seq}
	if _, dup := n.seen[k]; dup {
		return
	}
	n.seen[k] = struct{}{}
	if len(n.seenQ) < seenCap {
		n.seenQ = append(n.seenQ, k)
		return
	}
	delete(n.seen, n.seenQ[n.seenHead])
	n.seenQ[n.seenHead] = k
	if n.seenHead++; n.seenHead == seenCap {
		n.seenHead = 0
	}
}

// initReplication builds the tier during NewNode: broadcaster always,
// replica set + outbox when a dir is configured, shipper when the
// factor asks for copies and the store can provide cursor reads.
func (n *Node) initReplication() error {
	opts := n.cfg.Replica.withDefaults()
	n.cfg.Replica = opts

	n.bcast = replica.NewBroadcaster(replica.BroadcastConfig{
		Self:         n.cfg.Self.ID,
		Clock:        n.cfg.Membership.Clock,
		Apply:        n.applyQuarEntry,
		Send:         n.sendQuarBroadcast,
		TombstoneTTL: opts.TombstoneTTL,
		Logf:         n.cfg.Logf,
	})
	n.svc.AddQuarantineChangeListener(func(ch lbsn.QuarantineChange) {
		n.bcast.LocalChangeTraced(uint64(ch.UserID), ch.Active, ch.Record, ch.Trace)
	})

	if opts.Dir == "" {
		return nil
	}
	rset, err := replica.OpenSet(replica.SetConfig{
		Dir:  filepath.Join(opts.Dir, "replicas"),
		Logf: n.cfg.Logf,
	})
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	n.rset = rset
	if opts.OutboxMaxBytes >= 0 {
		outbox, err := replica.OpenOutbox(replica.OutboxConfig{
			Dir:             filepath.Join(opts.Dir, "outbox"),
			MaxBytesPerPeer: opts.OutboxMaxBytes,
			Logf:            n.cfg.Logf,
		})
		if err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		n.outbox = outbox
	}
	if opts.Factor >= 2 {
		j, ok := n.pipeline.AlertStore().(*store.AlertJournal)
		if !ok {
			n.cfg.Logf("cluster: replica factor %d ignored: alert store is not a journal", opts.Factor)
			return nil
		}
		n.journal = j
		n.shipper = replica.NewShipper(replica.ShipperConfig{
			Self:        n.cfg.Self.ID,
			Journal:     j,
			Send:        n.sendShipBatch,
			FetchCursor: n.fetchFollowerCursor,
			BatchSize:   opts.ShipBatch,
			Interval:    opts.ShipInterval,
			Logf:        n.cfg.Logf,
			Obs:         n.cfg.Obs,
			Tracer:      n.cfg.Tracer,
		})
		j.SetAppendNotify(n.shipper.Notify)
	}
	return nil
}

// applyQuarEntry installs one remote quarantine transition locally.
// Active entries install last-writer-wins (SetQuarantineRecord, not
// RestoreQuarantines — the broadcaster already decided the LWW order,
// and a max-merge would refuse a newer-but-shorter window forever,
// beyond digest repair). The service's change listener echoes back
// into the broadcaster, which suppresses it (applying-set), so remote
// state is enforced without being re-originated.
func (n *Node) applyQuarEntry(e replica.QuarEntry) {
	// Propagation latency: the originator stamped the entry at its local
	// transition (UnixNano, monotonic-bumped); applying it here closes
	// the window. Echo-suppressed local entries never reach this hook
	// with a foreign origin, so the self check is enough.
	if n.quarProp != nil && e.Origin != n.cfg.Self.ID {
		n.quarProp.Observe(time.Now().UnixNano() - e.Stamp)
	}
	if e.Active {
		n.svc.SetQuarantineRecord(e.Record)
		return
	}
	n.svc.Unquarantine(lbsn.UserID(e.User))
}

// sendQuarBroadcast fans one transition batch along the ring instead
// of to every live peer: the origin sends to its k = max(2, Factor)
// ring successors, and each receiver relays whatever entries were NEW
// to it onward to its own successors (handleQuarBroadcast). The LWW
// merge is the termination condition — once a node has seen an entry,
// relaying it there again applies nothing and the spread stops — so
// the transition reaches the whole cluster in O(log n) hops with O(k)
// sends per node, where the old broadcast cost the origin O(peers)
// posts per transition. Best-effort by design: the digest exchange
// repairs whatever the spread misses, so a down successor costs
// latency, not correctness.
func (n *Node) sendQuarBroadcast(entries []replica.QuarEntry) {
	qb := QuarBroadcast{From: n.cfg.Self.ID, Entries: entries}
	for _, peer := range n.ringFanoutPeers(n.cfg.Self.ID, "") {
		// An open breaker skips the peer outright: the digest exchange on
		// the next heartbeat repairs the gap, so hammering a down peer
		// buys nothing but timeout latency in the origination loop.
		br := n.bcastBreakers.For(peer.ID)
		if !br.Allow() {
			n.bcastSkipped.Add(1)
			continue
		}
		n.bcastFanout.Inc()
		encode := encodeQuarBroadcast
		if n.peerTraced(peer.ID) {
			encode = encodeQuarBroadcastTraced
		}
		resp, err := n.postNegotiated(peer.Addr, "/cluster/v1/quarbcast", peer.ID,
			func(dst []byte) []byte { return encode(dst, qb) }, qb)
		if err != nil {
			br.Failure()
			n.bcastSendErrs.Add(1)
			continue
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			br.Failure()
			n.bcastSendErrs.Add(1)
			continue
		}
		br.Success()
	}
}

// ringFanoutPeers picks the quarantine spread's next hops: up to
// max(2, Factor) live members clockwise from `from`'s ring anchor,
// excluding this node and (on the relay path) the peer the entries
// arrived from. A two-successor floor keeps the spread redundant even
// at Factor 1 — one dead successor never stalls a transition's
// propagation past digest repair.
func (n *Node) ringFanoutPeers(from, exclude string) []Member {
	ring, _ := n.currentRing()
	k := n.cfg.Replica.Factor
	if k < 2 {
		k = 2
	}
	// Ask for extra seats to survive the exclusions without shrinking
	// the effective fan-out at small cluster sizes.
	ids := ring.Successors(from, k+2)
	out := make([]Member, 0, k)
	for _, id := range ids {
		if len(out) == k {
			break
		}
		if id == n.cfg.Self.ID || id == exclude {
			continue
		}
		if peer, ok := n.members.Peer(id); ok {
			out = append(out, peer)
		}
	}
	return out
}

// relayQuarEntries forwards the entries a broadcast NEWLY taught this
// node to its own ring successors — the spread half of the ring-routed
// fan-out. The sender is excluded (it already has them); everyone else
// either applies-and-relays or already knew, which terminates the
// flood.
func (n *Node) relayQuarEntries(from string, entries []replica.QuarEntry) {
	qb := QuarBroadcast{From: n.cfg.Self.ID, Entries: entries}
	for _, peer := range n.ringFanoutPeers(n.cfg.Self.ID, from) {
		br := n.bcastBreakers.For(peer.ID)
		if !br.Allow() {
			n.bcastSkipped.Add(1)
			continue
		}
		n.bcastFanout.Inc()
		encode := encodeQuarBroadcast
		if n.peerTraced(peer.ID) {
			encode = encodeQuarBroadcastTraced
		}
		resp, err := n.postNegotiated(peer.Addr, "/cluster/v1/quarbcast", peer.ID,
			func(dst []byte) []byte { return encode(dst, qb) }, qb)
		if err != nil {
			br.Failure()
			n.bcastSendErrs.Add(1)
			continue
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			br.Failure()
			n.bcastSendErrs.Add(1)
			continue
		}
		br.Success()
		n.bcastRelayed.Add(uint64(len(entries)))
	}
}

// sendShipBatch delivers one journal batch to a follower in its
// negotiated codec.
func (n *Node) sendShipBatch(t replica.Target, b replica.ShipBatch) (replica.ShipAck, error) {
	// An open breaker fast-fails the batch; the shipper treats any send
	// error as "re-read the follower's cursor and resync", so nothing is
	// lost — the half-open probe after OpenFor is what retries the wire.
	br := n.shipBreakers.For(t.ID)
	if !br.Allow() {
		return replica.ShipAck{}, fmt.Errorf("ship to %s: circuit open", t.ID)
	}
	appendBatch := replica.AppendShipBatch
	if n.peerTraced(t.ID) {
		appendBatch = replica.AppendShipBatchTraced
	}
	resp, err := n.postNegotiated(t.Addr, "/cluster/v1/replica/ship", t.ID,
		func(dst []byte) []byte { return appendBatch(dst, b) }, b)
	if err != nil {
		br.Failure()
		return replica.ShipAck{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		br.Failure()
		return replica.ShipAck{}, fmt.Errorf("ship to %s: status %d", t.ID, resp.StatusCode)
	}
	var ack replica.ShipAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		br.Failure()
		return replica.ShipAck{}, err
	}
	br.Success()
	return ack, nil
}

// fetchFollowerCursor asks a follower where it stands for this node's
// journal, so catch-up starts from the follower's truth.
func (n *Node) fetchFollowerCursor(t replica.Target) (replica.CursorState, error) {
	u := t.Addr + "/cluster/v1/replica/cursor?primary=" + url.QueryEscape(n.cfg.Self.ID)
	resp, err := n.cfg.HTTP.Get(u)
	if err != nil {
		return replica.CursorState{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return replica.CursorState{}, fmt.Errorf("cursor from %s: status %d", t.ID, resp.StatusCode)
	}
	var cr ReplicaCursorResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return replica.CursorState{}, err
	}
	return replica.CursorState{Epoch: cr.Epoch, Cursor: cr.Cursor}, nil
}

// refreshFollowers recomputes this node's followers from the ring and
// points the shipper at them. Called on every ring rebuild; a new
// follower is caught up by the shipper's normal cursor-read path.
func (n *Node) refreshFollowers(ring *Ring) {
	if n.shipper == nil {
		return
	}
	ids := ring.Successors(n.cfg.Self.ID, n.cfg.Replica.Factor-1)
	targets := make([]replica.Target, 0, len(ids))
	for _, id := range ids {
		if peer, ok := n.members.Peer(id); ok {
			targets = append(targets, replica.Target{ID: peer.ID, Addr: peer.Addr})
		}
	}
	n.shipper.SetTargets(targets)
}

// promotedPrimaries lists primaries whose replica this node should
// serve: it holds their log and they are not in the live member set.
// Promotion is therefore automatic and reversible — a primary that
// heartbeats back simply stops being promoted.
func (n *Node) promotedPrimaries() []string {
	if n.rset == nil {
		return nil
	}
	primaries := n.rset.Primaries()
	if len(primaries) == 0 {
		return nil
	}
	live := make(map[string]bool)
	for _, m := range n.members.Live() {
		live[m.ID] = true
	}
	var out []string
	for _, p := range primaries {
		if !live[p] && p != n.cfg.Self.ID {
			out = append(out, p)
		}
	}
	return out
}

// localAlerts answers an alert query from this node's own store plus
// every promoted replica, merged and deduped. This is the node's
// contribution to scatter-gather — which is how a killed primary's
// history stays in the merged view.
func (n *Node) localAlerts(q store.AlertQuery) ([]store.Alert, int) {
	promoted := n.promotedPrimaries()
	if len(promoted) == 0 {
		return n.pipeline.Alerts(q)
	}
	// Each source must contribute its top offset+limit matches for the
	// merged page to be exact (same argument as ClusterAlerts).
	fetch := q
	fetch.Offset = 0
	if q.Limit > 0 {
		fetch.Limit = q.Offset + q.Limit
	}
	page, total := n.pipeline.Alerts(fetch)
	pages := [][]store.Alert{page}
	for _, p := range promoted {
		pp, pt := n.rset.Query(p, fetch)
		pages = append(pages, pp)
		total += pt
	}
	merged, dupes := store.MergeAlertPages(pages)
	total -= dupes
	if total < 0 {
		total = 0
	}
	return store.PageAlerts(merged, q.Offset, q.Limit), total
}

// SyncQuarantines runs one explicit digest exchange with every live
// peer: push our versioned state, apply whatever the peer knows newer.
// Steady-state anti-entropy now piggybacks on heartbeat probes
// (heartbeatPayload); this dedicated round remains for tests and for
// flushing state synchronously (shutdown).
func (n *Node) SyncQuarantines() {
	if n.bcast == nil {
		return
	}
	digest := n.bcast.Digest()
	body, err := json.Marshal(QuarBroadcast{From: n.cfg.Self.ID, Entries: digest})
	if err != nil {
		return
	}
	for _, peer := range n.members.LivePeers() {
		resp, err := n.cfg.HTTP.Post(peer.Addr+"/cluster/v1/quardigest", "application/json", bytes.NewReader(body))
		if err != nil {
			n.bcastSendErrs.Add(1)
			continue
		}
		var dr QuarDigestResponse
		err = json.NewDecoder(resp.Body).Decode(&dr)
		resp.Body.Close()
		if err != nil {
			n.bcastSendErrs.Add(1)
			continue
		}
		n.antiRepairs.Add(uint64(n.bcast.ApplyRemote(dr.Entries)))
	}
}

// deliverSpill replays one outbox payload (binary or pre-upgrade JSON)
// through ingest re-resolution.
func (n *Node) deliverSpill(payload []byte) bool {
	w, err := decodeSpillEvent(payload)
	if err != nil {
		n.cfg.Logf("cluster: outbox: dropping undecodable spill record: %v", err)
		return true // poison: delivering it is impossible, keeping it is a wedge
	}
	return n.reingest(w)
}

// ReplayOutbox drains every peer's spill through ingest re-resolution:
// each event is routed by CURRENT ring ownership (its original
// destination may be dead and rebalanced away), preserving its
// forwarding sequence so the receiver can drop duplicates. Failures
// compact back for the next attempt. At most one replay runs at a
// time.
func (n *Node) ReplayOutbox() (delivered, requeued int) {
	if n.outbox == nil {
		return 0, 0
	}
	if !n.replaying.CompareAndSwap(false, true) {
		return 0, 0
	}
	defer n.replaying.Store(false)
	for _, peer := range n.outbox.Peers() {
		d, r := n.outbox.Drain(peer, n.deliverSpill)
		delivered += d
		requeued += r
	}
	n.outboxReplayed.Add(uint64(delivered))
	if delivered > 0 || requeued > 0 {
		n.cfg.Logf("cluster: outbox replay: %d delivered, %d requeued", delivered, requeued)
	}
	return delivered, requeued
}

// replayOutboxPeer drains one peer's spill — the targeted fast path a
// successful heartbeat probe triggers, cutting replay latency to one
// probe round instead of the background cadence. Skipped (and left to
// the cadence) when a full replay is already running.
func (n *Node) replayOutboxPeer(id string) (delivered, requeued int) {
	if n.outbox == nil {
		return 0, 0
	}
	if !n.replaying.CompareAndSwap(false, true) {
		return 0, 0
	}
	defer n.replaying.Store(false)
	delivered, requeued = n.outbox.Drain(id, n.deliverSpill)
	n.outboxReplayed.Add(uint64(delivered))
	if delivered > 0 || requeued > 0 {
		n.cfg.Logf("cluster: outbox replay to %s: %d delivered, %d requeued", id, delivered, requeued)
	}
	return delivered, requeued
}

// heartbeatPayload builds the digest body each heartbeat round POSTs
// with its probes (Membership.ProbePayload). Hash-first: the probe
// carries the 16-byte digest-state hash, not the digest itself, so the
// steady state (every node in sync) spends 16 bytes per probe instead
// of the full quarantine set. A peer whose hash differs replies with
// its full digest — including a fresh node's empty-state mismatch,
// which pulls the cluster's quarantine state with its first probe
// round; a pre-hash peer sees an empty digest and does the same.
// The same body now carries the gossip member table — the push half of
// per-heartbeat membership anti-entropy (the reply's Members field is
// the pull half, merged by Membership.ping).
func (n *Node) heartbeatPayload() ([]byte, string) {
	qb := QuarBroadcast{From: n.cfg.Self.ID, Members: n.members.GossipEntries()}
	if n.bcast != nil {
		qb.Hash = n.bcast.DigestHash()
	}
	// JSON, always: the body is tiny and the peer's codec support is
	// not yet known when the first probe goes out.
	body, err := json.Marshal(qb)
	if err != nil {
		return nil, ""
	}
	return body, "application/json"
}

// heartbeatReply consumes a successful probe's response
// (Membership.ProbeReply): apply the piggybacked digest repairs — and,
// since a non-empty reply means the hashes diverged, push our full
// digest back so the peer repairs its side of the divergence too (the
// probe only carried our hash). Also, if the outbox holds spill for
// this now-demonstrably-reachable peer, drain it immediately — the
// peer-recovered signal the fixed cadence used to stand in for. Events
// whose ownership moved while the peer was down are re-resolved (and
// re-spilled if their new owner is still unreachable); the rebalance
// that follows a revival replays the rest.
func (n *Node) heartbeatReply(peer Member, pr PingResponse) {
	if n.bcast != nil && len(pr.Digest) > 0 {
		n.antiRepairs.Add(uint64(n.bcast.ApplyRemote(pr.Digest)))
		n.pushDigest(peer)
	}
	if n.outbox != nil && n.outbox.Depth(peer.ID) > 0 {
		n.replayOutboxPeer(peer.ID)
	}
}

// pushDigest runs one full digest exchange with a single peer — the
// repair direction the hash-first probe cannot cover (the peer never
// saw our entries, only our hash). Entries the peer knows newer come
// back in the response and are applied here, so one push converges
// both sides.
func (n *Node) pushDigest(peer Member) {
	body, err := json.Marshal(QuarBroadcast{From: n.cfg.Self.ID, Entries: n.bcast.Digest()})
	if err != nil {
		return
	}
	resp, err := n.cfg.HTTP.Post(peer.Addr+"/cluster/v1/quardigest", "application/json", bytes.NewReader(body))
	if err != nil {
		n.bcastSendErrs.Add(1)
		return
	}
	var dr QuarDigestResponse
	err = json.NewDecoder(resp.Body).Decode(&dr)
	resp.Body.Close()
	if err != nil {
		n.bcastSendErrs.Add(1)
		return
	}
	n.antiRepairs.Add(uint64(n.bcast.ApplyRemote(dr.Entries)))
}

// reingest routes one replayed event by current ownership. Locally
// owned replays publish straight into the pipeline (its dedupe stage
// filters exact duplicates); remote ones re-enter the forwarding path
// with their original FwdSeq intact.
func (n *Node) reingest(w WireEvent) bool {
	ring, leaving := n.currentRing()
	owner := ring.Owner(w.User)
	if owner == "" || (owner == n.cfg.Self.ID && !leaving) {
		return n.pipeline.Publish(fromWire(w))
	}
	peer, ok := n.members.Peer(owner)
	if !ok {
		return n.pipeline.Publish(fromWire(w))
	}
	if !n.members.IsLive(owner) {
		return false // destination down: keep it spilled, retry later
	}
	return n.fwd.Enqueue(peer.Addr, w)
}

// runReplicationLoop is the tier's background cadence, every
// DigestEvery. Started by Node.Start, stopped by Shutdown. Since the
// quarantine digest now piggybacks on every heartbeat probe round
// (heartbeatPayload/handlePing), the loop no longer spends a dedicated
// O(peers) request round on it — only the outbox replay probe remains,
// as the backstop for spill whose destination never answers a probe
// (so the targeted heartbeat drain never fires) yet is reachable
// through re-resolved ownership.
func (n *Node) runReplicationLoop() {
	t := time.NewTicker(n.cfg.Replica.DigestEvery)
	defer t.Stop()
	for {
		select {
		case <-n.bgStop:
			return
		case <-t.C:
			n.ReplayOutbox()
			// Chain re-replication cadence: the ring-change kick covers
			// the common case, this covers repairs that failed mid-pass
			// (target briefly unreachable) and replica sets reopened
			// after a restart with their primary already gone.
			n.kickRepair()
		}
	}
}

// closeReplication flushes and stops the tier during Shutdown: ship
// the journal tail to the followers, drain pending broadcasts, close
// everything. The outbox needs no close — its files ARE the state.
func (n *Node) closeReplication() {
	if n.shipper != nil {
		if n.journal != nil {
			n.journal.SetAppendNotify(nil)
		}
		n.shipper.Sync() // final tail ship: a graceful leaver's history survives in full
		n.shipper.Close()
	}
	if n.bcast != nil {
		n.bcast.Flush()
		n.bcast.Close()
	}
	if n.rset != nil {
		n.rset.Close()
	}
}

// --- internal /cluster/v1 handlers -------------------------------------

// shipDecodeScratch pools the alert slice a binary ship decode appends
// into, so steady-state replication receive allocates no batch slice.
var shipDecodeScratch = sync.Pool{New: func() any { return new([]store.Alert) }}

func (n *Node) handleReplicaShip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if n.rset == nil {
		http.Error(w, "replication disabled", http.StatusServiceUnavailable)
		return
	}
	// A leaving node refuses new replica data for the same reason it
	// refuses handoffs: whatever lands now dies with the process.
	if _, leaving := n.currentRing(); leaving {
		http.Error(w, "leaving", http.StatusServiceUnavailable)
		return
	}
	var b replica.ShipBatch
	if isBinaryRequest(r) {
		// Pooled decode scratch: Set.Apply lands the alerts into the
		// replica journal by value, so the slice is free for reuse the
		// moment this handler returns.
		scratch := shipDecodeScratch.Get().(*[]store.Alert)
		defer func() { *scratch = b.Alerts[:0]; shipDecodeScratch.Put(scratch) }()
		if !n.decodeBinaryRequest(w, r, "malformed ship batch", func(body []byte) (err error) {
			b, err = replica.DecodeShipBatchInto(body, *scratch)
			if err == nil && b.From == "" {
				err = fmt.Errorf("missing from")
			}
			return err
		}) {
			return
		}
	} else if err := json.NewDecoder(r.Body).Decode(&b); err != nil || b.From == "" {
		http.Error(w, "malformed ship batch", http.StatusBadRequest)
		return
	}
	cursor, err := n.rset.Apply(b.From, b.Epoch, b.Start, b.Alerts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, replica.ShipAck{Cursor: cursor})
}

func (n *Node) handleReplicaCursor(w http.ResponseWriter, r *http.Request) {
	if n.rset == nil {
		http.Error(w, "replication disabled", http.StatusServiceUnavailable)
		return
	}
	primary := r.URL.Query().Get("primary")
	if primary == "" {
		http.Error(w, "missing primary", http.StatusBadRequest)
		return
	}
	st := n.rset.Cursor(primary)
	writeJSON(w, http.StatusOK, ReplicaCursorResponse{
		Node: n.cfg.Self.ID, Primary: primary, Epoch: st.Epoch, Cursor: st.Cursor,
	})
}

func (n *Node) handleQuarBroadcast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	qb, err := n.decodeQuarBody(r)
	if err == errBinaryDisabled {
		http.Error(w, "binary codec disabled", http.StatusUnsupportedMediaType)
		return
	}
	if err != nil {
		http.Error(w, "malformed broadcast", http.StatusBadRequest)
		return
	}
	won := n.bcast.ApplyRemoteDetailed(qb.Entries)
	if len(won) > 0 {
		// Relay only what was NEW here, off the handler goroutine: the
		// sender's post must not wait on our own fan-out round.
		go n.relayQuarEntries(qb.From, won)
	}
	writeJSON(w, http.StatusOK, struct {
		Applied int `json:"applied"`
	}{Applied: len(won)})
}

func (n *Node) handleQuarDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	qb, err := n.decodeQuarBody(r)
	if err == errBinaryDisabled {
		http.Error(w, "binary codec disabled", http.StatusUnsupportedMediaType)
		return
	}
	if err != nil {
		http.Error(w, "malformed digest", http.StatusBadRequest)
		return
	}
	reply, applied := n.bcast.MergeDigest(qb.Entries)
	n.antiRepairs.Add(uint64(applied))
	writeJSON(w, http.StatusOK, QuarDigestResponse{Node: n.cfg.Self.ID, Applied: applied, Entries: reply})
}

// ReplicationStatus is the tier's externally visible state, surfaced
// on /api/v1/cluster and in the merged stats view.
type ReplicationStatus struct {
	// Enabled reports whether journal shipping runs on this node.
	Enabled bool `json:"enabled"`
	// Followers are the ring successors this node ships its journal to,
	// with their acked cursors and lag.
	Followers []replica.FollowerStatus `json:"followers,omitempty"`
	// Replicas are the primaries this node follows; Promoted names the
	// subset it currently serves because the primary is gone.
	Replicas []replica.ReplicaStatus `json:"replicas,omitempty"`
	Promoted []string                `json:"promoted,omitempty"`
	// Repairs are the chain re-replication streams this node runs (or
	// ran) as a promoted primary's repairer: per (primary, target)
	// progress toward the replica-factor goal.
	Repairs []RepairStatus `json:"repairs,omitempty"`
	// Broadcast is the quarantine dissemination state; SendErrors
	// counts failed fan-out posts (repaired by digest exchange).
	Broadcast  replica.BroadcastStats `json:"broadcast"`
	SendErrors uint64                 `json:"sendErrors,omitempty"`
	// Outbox is the forwarding spill state.
	Outbox *replica.OutboxStats `json:"outbox,omitempty"`
	// DuplicatesDropped counts forwarded deliveries refused as replays.
	DuplicatesDropped uint64 `json:"duplicatesDropped,omitempty"`
}

// replicationStatus assembles the tier's status snapshot.
func (n *Node) replicationStatus() ReplicationStatus {
	st := ReplicationStatus{
		Enabled:           n.shipper != nil,
		DuplicatesDropped: n.dupDropped.Load(),
		SendErrors:        n.bcastSendErrs.Load(),
	}
	if n.bcast != nil {
		st.Broadcast = n.bcast.Stats()
	}
	if n.shipper != nil {
		st.Followers = n.shipper.Stats().Followers
	}
	if n.rset != nil {
		st.Replicas = n.rset.Stats().Replicas
		st.Promoted = n.promotedPrimaries()
		st.Repairs = n.repairStatuses()
	}
	if n.outbox != nil {
		s := n.outbox.Stats()
		st.Outbox = &s
	}
	return st
}
