package cluster

import (
	"testing"
)

func TestRingDeterministicAcrossNodes(t *testing.T) {
	// Two nodes building rings from the same member set (any order)
	// must agree on every owner, or forwarding loops.
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2"}, 0)
	for user := uint64(1); user <= 5000; user++ {
		if a.Owner(user) != b.Owner(user) {
			t.Fatalf("user %d: %s vs %s", user, a.Owner(user), b.Owner(user))
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	counts := map[string]int{}
	const users = 30000
	for user := uint64(1); user <= users; user++ {
		counts[r.Owner(user)]++
	}
	for node, c := range counts {
		frac := float64(c) / users
		if frac < 0.20 || frac > 0.47 {
			t.Fatalf("node %s owns %.1f%% of users — ring badly unbalanced: %v", node, frac*100, counts)
		}
	}
}

func TestRingMinimalMovementOnDeparture(t *testing.T) {
	before := NewRing([]string{"n1", "n2", "n3"}, 0)
	after := NewRing([]string{"n1", "n3"}, 0)
	const users = 20000
	moved, fromDeparted := 0, 0
	for user := uint64(1); user <= users; user++ {
		ob, oa := before.Owner(user), after.Owner(user)
		if ob == oa {
			continue
		}
		moved++
		if ob == "n2" {
			fromDeparted++
		}
	}
	if moved != fromDeparted {
		t.Fatalf("%d users moved but only %d belonged to the departed node — consistent hashing broken", moved, fromDeparted)
	}
	if moved == 0 {
		t.Fatal("departed node owned nothing — ring degenerate")
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if owner := NewRing(nil, 0).Owner(42); owner != "" {
		t.Fatalf("empty ring owner = %q, want empty", owner)
	}
	solo := NewRing([]string{"only"}, 0)
	for user := uint64(1); user <= 100; user++ {
		if solo.Owner(user) != "only" {
			t.Fatal("single-member ring must own everything")
		}
	}
}

func TestParsePeers(t *testing.T) {
	ms, err := ParsePeers("a=http://h1:9101, b=http://h2:9101/ ,c=http://h3:9101")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[1].ID != "b" || ms[1].Addr != "http://h2:9101" {
		t.Fatalf("parsed %v", ms)
	}
	if _, err := ParsePeers("a=x,a=y"); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := ParsePeers("=x"); err == nil {
		t.Fatal("empty id accepted")
	}
	if ms, err := ParsePeers(""); err != nil || ms != nil {
		t.Fatalf("empty flag: %v %v", ms, err)
	}
}
