// Package cluster lifts the stream pipeline's process-local user
// sharding to a partitioned ingest tier: several lbsnd instances split
// the user space, so server-side detection (§4) scales with node count
// instead of one process's cores.
//
// The pieces, bottom to top:
//
//   - Ring (this file) — a consistent-hash ring over the live member
//     set assigns every user exactly one owner node; removing a node
//     moves only that node's users.
//   - Membership — a static peer list kept live with HTTP heartbeats;
//     a peer that stops answering is dropped from the ring, a graceful
//     leaver announces itself and is dropped immediately.
//   - Forwarder — any node accepts any check-in; events whose owner is
//     another node are forwarded there in bounded, batched, drop-on-
//     full queues (the same never-block-the-producer contract as
//     internal/stream).
//   - Handoff — on membership change, state for users whose ownership
//     moved (detector stage state, quarantine records) is exported
//     from the old owner and shipped to the new one.
//   - Scatter-gather — alert and quarantine queries served from any
//     node fan out to every live member and return the merged, deduped,
//     correctly paginated cluster view.
//
// Node ties them together and serves the internal /cluster/v1 HTTP
// surface. That surface is unauthenticated by design — it is meant to
// bind to a cluster-internal interface (the -cluster-listen flag), not
// the public one.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is how many points each member contributes to
// the ring. More points smooth the load split between members at the
// cost of a larger table; 128 keeps the imbalance under a few percent
// for small clusters while lookups stay a cheap binary search.
const DefaultVirtualNodes = 128

// ringPoint is one virtual node: a position on the hash circle owned
// by a member.
type ringPoint struct {
	pos   uint64
	owner string
}

// Ring is an immutable consistent-hash ring over a member set. Build
// with NewRing; rebuild on every membership change (construction is
// cheap at cluster sizes where a static peer list makes sense).
type Ring struct {
	points  []ringPoint
	members []string
}

// NewRing builds a ring with vnodes virtual nodes per member (<= 0
// uses DefaultVirtualNodes). Member order does not matter; the ring
// depends only on the set. An empty member list yields a ring that
// owns nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{members: append([]string(nil), members...)}
	sort.Strings(r.members)
	for _, m := range r.members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				pos:   hash64(fmt.Sprintf("%s#%d", m, i)),
				owner: m,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.pos != q.pos {
			return p.pos < q.pos
		}
		return p.owner < q.owner // deterministic under (vanishingly rare) collisions
	})
	return r
}

// Owner returns the member owning the user, or "" on an empty ring:
// the first ring point at or after the user's hash, wrapping around.
func (r *Ring) Owner(user uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashUser(user)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].owner
}

// Successors returns up to k distinct members clockwise from member's
// anchor position on the ring, excluding member itself — the
// deterministic follower choice of the replication tier. Every node
// computes the same answer from the same live set, so a primary and
// its followers always agree on who replicates whom. A member not on
// the ring still gets an answer (its anchor hash exists regardless),
// which keeps follower selection stable while a leave is in flight.
func (r *Ring) Successors(member string, k int) []string {
	if k <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hash64(member)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos > h })
	seen := map[string]bool{member: true}
	var out []string
	for range r.points {
		if i == len(r.points) {
			i = 0
		}
		p := r.points[i]
		i++
		if seen[p.owner] {
			continue
		}
		seen[p.owner] = true
		out = append(out, p.owner)
		if len(out) == k {
			break
		}
	}
	return out
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.members) }

// hash64 hashes a string onto the circle: FNV-1a (stable across
// processes and Go versions, which maphash is not — every node must
// agree on ownership) strengthened with a murmur-style finalizer. Raw
// FNV of near-identical short strings ("n1#17", "n1#18", …) leaves the
// low-entropy structure of the input visible in the output and the
// ring visibly lopsided; the finalizer's avalanche fixes the spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return fmix64(h.Sum64())
}

// hashUser hashes a user ID onto the same circle as the vnode labels.
func hashUser(user uint64) uint64 {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(user >> (8 * i))
	}
	h := fnv.New64a()
	_, _ = h.Write(b[:])
	return fmix64(h.Sum64())
}

// fmix64 is the MurmurHash3 64-bit finalizer: a fixed bijective mixer,
// stable by construction (plain arithmetic, no runtime seeds).
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
