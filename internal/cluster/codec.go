// Binary layouts for the cluster's wire messages, built on
// internal/wirecodec, plus the HTTP-side helpers the handlers use to
// dispatch on Content-Type. The codec is negotiated per peer: a node
// advertises binary support in its heartbeat PingResponse (Codec), the
// sender encodes accordingly, and an unexpected 415 downgrades one
// request to JSON — so a mixed-version cluster exchanges forwards,
// ships, broadcasts and handoffs losslessly during a rolling upgrade.
package cluster

import (
	"encoding/json"
	"net/http"
	"strings"

	"locheat/internal/replica"
	"locheat/internal/store"
	"locheat/internal/wirecodec"
)

// binaryCodecName is the capability string a binary-speaking node
// advertises in its PingResponse. tracedCodecName supersedes it: a
// node advertising "bin/2" accepts everything a "bin/1" node does
// plus the trace-aware v2 bodies (wirecodec.VersionTraced). Senders
// pick the highest layout the receiver advertised, so a mixed
// "bin/1"/"bin/2" cluster interoperates — the old peer just never
// sees (or produces) trace context on the binary wire. On JSON the
// trace fields are omitempty and unknown-field-tolerant, so the JSON
// fallback is trace-lossless in the new→new case and trace-stripping
// only when the receiver is genuinely old.
const (
	binaryCodecName = "bin/1"
	tracedCodecName = "bin/2"
)

// acceptTracedParam is the Accept/Content-Type media-type parameter a
// trace-aware requester appends (";v=2") to ask for v2 response
// bodies. An old responder's prefix match ignores the parameter and
// answers v1; a new responder answers v2. Either way the requester's
// VersionUpTo decoder accepts what comes back.
const acceptTracedParam = ";v=2"

// appendWireEvent appends one event's binary encoding to dst.
func appendWireEvent(dst []byte, w WireEvent) []byte {
	dst = wirecodec.AppendUvarint(dst, w.User)
	dst = wirecodec.AppendUvarint(dst, w.Venue)
	dst = wirecodec.AppendTime(dst, w.At)
	dst = wirecodec.AppendF64(dst, w.VenueLoc.Lat)
	dst = wirecodec.AppendF64(dst, w.VenueLoc.Lon)
	dst = wirecodec.AppendF64(dst, w.Reported.Lat)
	dst = wirecodec.AppendF64(dst, w.Reported.Lon)
	dst = wirecodec.AppendBool(dst, w.Accepted)
	dst = wirecodec.AppendString(dst, w.Reason)
	dst = wirecodec.AppendUvarint(dst, w.FwdSeq)
	return dst
}

// appendWireEventTraced is appendWireEvent plus the trailing trace
// context, for v2 (VersionTraced) containers. Untraced events inside
// a v2 batch cost two bytes (empty string + zero flags).
func appendWireEventTraced(dst []byte, w WireEvent) []byte {
	dst = appendWireEvent(dst, w)
	dst = wirecodec.AppendString(dst, w.Trace)
	return append(dst, w.TraceFlags)
}

// readWireEvent decodes one event; failures stick to d.
func readWireEvent(d *wirecodec.Decoder) WireEvent {
	var w WireEvent
	w.User = d.Uvarint()
	w.Venue = d.Uvarint()
	w.At = d.Time()
	w.VenueLoc.Lat = d.F64()
	w.VenueLoc.Lon = d.F64()
	w.Reported.Lat = d.F64()
	w.Reported.Lon = d.F64()
	w.Accepted = d.Bool()
	w.Reason = d.String()
	w.FwdSeq = d.Uvarint()
	return w
}

// readWireEventTraced decodes an appendWireEventTraced element.
func readWireEventTraced(d *wirecodec.Decoder) WireEvent {
	w := readWireEvent(d)
	w.Trace = d.String()
	w.TraceFlags = d.Byte()
	return w
}

// encodeIngestBatch appends b's v1 binary encoding (version included)
// to dst, dropping any trace context — the layout for "bin/1" peers.
func encodeIngestBatch(dst []byte, b IngestBatch) []byte {
	dst = append(dst, wirecodec.Version)
	dst = wirecodec.AppendString(dst, b.From)
	dst = wirecodec.AppendUvarint(dst, uint64(len(b.Events)))
	for _, w := range b.Events {
		dst = appendWireEvent(dst, w)
	}
	return dst
}

// encodeIngestBatchTraced is encodeIngestBatch in the v2 layout, for
// peers that advertised tracedCodecName.
func encodeIngestBatchTraced(dst []byte, b IngestBatch) []byte {
	dst = append(dst, wirecodec.VersionTraced)
	dst = wirecodec.AppendString(dst, b.From)
	dst = wirecodec.AppendUvarint(dst, uint64(len(b.Events)))
	for _, w := range b.Events {
		dst = appendWireEventTraced(dst, w)
	}
	return dst
}

// decodeIngestBatch decodes one whole ingest body.
func decodeIngestBatch(buf []byte) (IngestBatch, error) {
	return decodeIngestBatchInto(buf, nil)
}

// decodeIngestBatchInto is decodeIngestBatch appending into the
// caller's scratch slice (hot receive path: the ingest handler reuses
// a pooled slice across requests instead of allocating per POST).
// scratch is reset; on error it may have been grown but the returned
// batch is empty.
func decodeIngestBatchInto(buf []byte, scratch []WireEvent) (IngestBatch, error) {
	d := wirecodec.NewDecoder(buf)
	v := d.VersionUpTo(wirecodec.VersionTraced)
	b := IngestBatch{From: d.String(), Events: scratch[:0]}
	n := d.Count(38) // an event is ≥ 38 bytes (4×f64 + accepted + minima)
	for i := 0; i < n; i++ {
		if v == wirecodec.VersionTraced {
			b.Events = append(b.Events, readWireEventTraced(d))
		} else {
			b.Events = append(b.Events, readWireEvent(d))
		}
	}
	if err := d.Finish(); err != nil {
		return IngestBatch{}, err
	}
	return b, nil
}

// encodeSpillEvent frames one event for the on-disk outbox: the same
// binary layout behind a version byte, which doubles as the format
// discriminator against pre-upgrade JSON spill payloads ('{').
func encodeSpillEvent(w WireEvent) []byte {
	dst := make([]byte, 0, 64)
	if w.Trace != "" {
		// Traced events spill in the v2 frame so replay after restart
		// keeps the trace link; untraced events stay v1, readable by a
		// pre-trace build inheriting the outbox after a downgrade.
		dst = append(dst, wirecodec.VersionTraced)
		return appendWireEventTraced(dst, w)
	}
	dst = append(dst, wirecodec.Version)
	return appendWireEvent(dst, w)
}

// decodeSpillEvent reads an outbox payload in any spilled format:
// binary v1 or v2 (leading version byte) or the JSON a pre-upgrade
// build spilled.
func decodeSpillEvent(payload []byte) (WireEvent, error) {
	if len(payload) > 0 && payload[0] == '{' {
		var w WireEvent
		if err := json.Unmarshal(payload, &w); err != nil {
			return WireEvent{}, err
		}
		return w, nil
	}
	d := wirecodec.NewDecoder(payload)
	v := d.VersionUpTo(wirecodec.VersionTraced)
	var w WireEvent
	if v == wirecodec.VersionTraced {
		w = readWireEventTraced(d)
	} else {
		w = readWireEvent(d)
	}
	if err := d.Finish(); err != nil {
		return WireEvent{}, err
	}
	return w, nil
}

// encodeHandoffBundle appends hb's binary encoding (version included)
// to dst.
func encodeHandoffBundle(dst []byte, hb HandoffBundle) []byte {
	dst = append(dst, wirecodec.Version)
	dst = wirecodec.AppendString(dst, hb.From)
	dst = wirecodec.AppendUvarint(dst, uint64(len(hb.Users)))
	for user, bundle := range hb.Users {
		dst = wirecodec.AppendUvarint(dst, user)
		dst = wirecodec.AppendUvarint(dst, uint64(len(bundle)))
		for stage, blob := range bundle {
			dst = wirecodec.AppendString(dst, stage)
			dst = wirecodec.AppendBytes(dst, blob)
		}
	}
	dst = wirecodec.AppendUvarint(dst, uint64(len(hb.Quarantines)))
	for _, r := range hb.Quarantines {
		dst = store.AppendQuarantineRecord(dst, r)
	}
	return dst
}

// decodeHandoffBundle decodes one whole handoff body.
func decodeHandoffBundle(buf []byte) (HandoffBundle, error) {
	d := wirecodec.NewDecoder(buf)
	d.Version()
	hb := HandoffBundle{From: d.String()}
	if n := d.Count(2); n > 0 {
		hb.Users = make(map[uint64]UserStateBundle, n)
		for i := 0; i < n; i++ {
			user := d.Uvarint()
			stages := d.Count(2)
			bundle := make(UserStateBundle, stages)
			for s := 0; s < stages; s++ {
				name := d.String()
				bundle[name] = d.Bytes()
			}
			if d.Err() != nil {
				return HandoffBundle{}, d.Err()
			}
			hb.Users[user] = bundle
		}
	}
	if n := d.Count(9); n > 0 {
		hb.Quarantines = make([]store.QuarantineRecord, 0, n)
		for i := 0; i < n; i++ {
			hb.Quarantines = append(hb.Quarantines, store.ReadQuarantineRecord(d))
		}
	}
	if err := d.Finish(); err != nil {
		return HandoffBundle{}, err
	}
	return hb, nil
}

// encodeQuarBroadcast appends qb's v1 binary encoding (version
// included) to dst, dropping entry trace links.
func encodeQuarBroadcast(dst []byte, qb QuarBroadcast) []byte {
	dst = append(dst, wirecodec.Version)
	dst = wirecodec.AppendString(dst, qb.From)
	return replica.AppendQuarEntries(dst, qb.Entries)
}

// encodeQuarBroadcastTraced is encodeQuarBroadcast in the v2 layout
// (entries carry their trace link), for tracedCodecName peers.
func encodeQuarBroadcastTraced(dst []byte, qb QuarBroadcast) []byte {
	dst = append(dst, wirecodec.VersionTraced)
	dst = wirecodec.AppendString(dst, qb.From)
	return replica.AppendQuarEntriesTraced(dst, qb.Entries)
}

// decodeQuarBroadcast decodes one whole broadcast (or digest) body,
// v1 or v2.
func decodeQuarBroadcast(buf []byte) (QuarBroadcast, error) {
	d := wirecodec.NewDecoder(buf)
	v := d.VersionUpTo(wirecodec.VersionTraced)
	qb := QuarBroadcast{From: d.String()}
	if v == wirecodec.VersionTraced {
		qb.Entries = replica.ReadQuarEntriesTraced(d)
	} else {
		qb.Entries = replica.ReadQuarEntries(d)
	}
	if err := d.Finish(); err != nil {
		return QuarBroadcast{}, err
	}
	return qb, nil
}

// encodeLocalAlerts appends a scatter response's binary encoding
// (version included) to dst — the Accept-negotiated reply body of
// /cluster/v1/alerts, which a merged query fans to every peer and so
// pays the JSON tax once per peer per dashboard poll.
func encodeLocalAlerts(dst []byte, resp LocalAlertsResponse) []byte {
	dst = append(dst, wirecodec.Version)
	dst = wirecodec.AppendString(dst, resp.Node)
	dst = wirecodec.AppendUvarint(dst, uint64(resp.Total))
	dst = wirecodec.AppendUvarint(dst, uint64(len(resp.Alerts)))
	for _, a := range resp.Alerts {
		dst = store.AppendAlert(dst, a)
	}
	return dst
}

// encodeLocalAlertsTraced is encodeLocalAlerts in the v2 layout
// (alerts keep their trace link), answered when the requester's
// Accept carried acceptTracedParam.
func encodeLocalAlertsTraced(dst []byte, resp LocalAlertsResponse) []byte {
	dst = append(dst, wirecodec.VersionTraced)
	dst = wirecodec.AppendString(dst, resp.Node)
	dst = wirecodec.AppendUvarint(dst, uint64(resp.Total))
	dst = wirecodec.AppendUvarint(dst, uint64(len(resp.Alerts)))
	for _, a := range resp.Alerts {
		dst = store.AppendAlertTraced(dst, a)
	}
	return dst
}

// decodeLocalAlerts decodes one whole binary scatter response body,
// v1 or v2.
func decodeLocalAlerts(buf []byte) (LocalAlertsResponse, error) {
	d := wirecodec.NewDecoder(buf)
	v := d.VersionUpTo(wirecodec.VersionTraced)
	resp := LocalAlertsResponse{Node: d.String(), Total: int(d.Uvarint())}
	n := d.Count(8) // an alert is ≥ 8 bytes (time + uvarint/length minima)
	if n > 0 {
		resp.Alerts = make([]store.Alert, 0, n)
	}
	for i := 0; i < n; i++ {
		if v == wirecodec.VersionTraced {
			resp.Alerts = append(resp.Alerts, store.ReadAlertTraced(d))
		} else {
			resp.Alerts = append(resp.Alerts, store.ReadAlert(d))
		}
	}
	if err := d.Finish(); err != nil {
		return LocalAlertsResponse{}, err
	}
	return resp, nil
}

// acceptsBinary reports whether the requester asked for a binary
// response body (Accept negotiation on GET endpoints; the request-body
// analogue is isBinaryRequest).
func acceptsBinary(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Accept"), wirecodec.ContentTypeBinary)
}

// acceptsTraced reports whether a binary-accepting requester also
// asked for the trace-aware v2 response layout (acceptTracedParam).
// Old requesters never send the parameter, so they keep getting v1.
func acceptsTraced(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), acceptTracedParam)
}

// isBinaryRequest reports whether an inbound request body carries the
// binary codec.
func isBinaryRequest(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), wirecodec.ContentTypeBinary)
}

// readBody drains a request body into a pooled buffer. The caller owns
// the buffer and must PutBuffer it when done with the decoded result
// (decoded strings and byte slices are copies, so reuse is safe).
func readBody(r *http.Request) (*wirecodec.Buffer, error) {
	buf := wirecodec.GetBuffer()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		wirecodec.PutBuffer(buf)
		return nil, err
	}
	return buf, nil
}
