// Shared HTTP transport for every cluster-internal client. The
// default http.Transport caps idle connections per host at 2, so the
// forwarder's batch cadence, the shipper, the quarantine broadcast and
// scatter-gather were all paying connection churn against the same
// handful of peers. One tuned transport, shared process-wide, keeps a
// warm keep-alive pool sized for a cluster's worth of peers; each
// client keeps its own timeout on top.
package cluster

import (
	"net/http"
	"time"
)

// sharedTransport is the process-wide connection pool for cluster
// traffic (forwarding, replication, broadcast, probes, scatter).
var sharedTransport = &http.Transport{
	Proxy:               http.ProxyFromEnvironment,
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 32,
	IdleConnTimeout:     90 * time.Second,
}

// newHTTPClient returns a client over the shared transport with the
// given overall request timeout.
func newHTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout, Transport: sharedTransport}
}
