package cluster

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/stream"
)

// testNode is one in-process cluster member: service + pipeline + node
// + internal HTTP listener, the same wiring cmd/lbsnd does.
type testNode struct {
	id       string
	svc      *lbsn.Service
	pipeline *stream.Pipeline
	node     *Node
	srv      *httptest.Server
	clock    *simclock.Simulated
}

// lateHandler lets the httptest server exist before the Node whose
// handler it serves (the node needs the server's URL as its address).
type lateHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h = h
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// startCluster brings up n nodes with identical synthetic populations
// (the same user/venue IDs exist everywhere, as seeded lbsnd instances
// would have).
func startCluster(t *testing.T, ids []string, users int) map[string]*testNode {
	t.Helper()
	type boot struct {
		late *lateHandler
		srv  *httptest.Server
	}
	boots := make(map[string]*boot, len(ids))
	var peers []Member
	for _, id := range ids {
		late := &lateHandler{}
		srv := httptest.NewServer(late)
		t.Cleanup(srv.Close)
		boots[id] = &boot{late: late, srv: srv}
		peers = append(peers, Member{ID: id, Addr: srv.URL})
	}

	nodes := make(map[string]*testNode, len(ids))
	for _, id := range ids {
		clock := simclock.NewSimulated(simclock.Epoch())
		svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
		for u := 0; u < users; u++ {
			svc.RegisterUser("user", "", "SF")
		}
		pipeline := stream.New(stream.Config{Shards: 2, Clock: clock})
		node, err := NewNode(svc, pipeline, Config{
			Self:  Member{ID: id, Addr: boots[id].srv.URL},
			Peers: peers,
			Forward: ForwarderConfig{
				BatchSize:  1, // immediate delivery keeps the test event-driven
				FlushEvery: 5 * time.Millisecond,
			},
			Membership: MembershipConfig{
				HeartbeatEvery: 100 * time.Millisecond,
				FailAfter:      300 * time.Millisecond,
				Clock:          clock,
			},
			Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		boots[id].late.set(node.Handler())
		tn := &testNode{id: id, svc: svc, pipeline: pipeline, node: node, srv: boots[id].srv, clock: clock}
		nodes[id] = tn
		t.Cleanup(pipeline.Close)
	}
	return nodes
}

// userOwnedBy finds a registered user the ring assigns to owner.
func userOwnedBy(t *testing.T, n *Node, owner string, maxUser int) uint64 {
	t.Helper()
	for u := uint64(1); u <= uint64(maxUser); u++ {
		if n.Owner(u) == owner {
			return u
		}
	}
	t.Fatalf("no user owned by %s in 1..%d", owner, maxUser)
	return 0
}

func clusterEvent(user uint64, at time.Time, loc geo.Point) lbsn.CheckinEvent {
	return lbsn.CheckinEvent{
		UserID:   lbsn.UserID(user),
		VenueID:  lbsn.VenueID(user + 1000),
		At:       at,
		Venue:    loc,
		Reported: loc,
		Accepted: true,
	}
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestThreeNodeClusterEndToEnd is the acceptance scenario: a check-in
// ingested at a non-owner node is detected on the owner and appears,
// correctly ordered and deduped, in the merged view of a third node;
// a graceful departure hands detector and quarantine state to the new
// owner without losing either.
func TestThreeNodeClusterEndToEnd(t *testing.T) {
	const users = 300
	nodes := startCluster(t, []string{"n1", "n2", "n3"}, users)
	n1, n2, n3 := nodes["n1"], nodes["n2"], nodes["n3"]

	user := userOwnedBy(t, n1.node, "n2", users)
	t0 := simclock.Epoch()
	sf := geo.Point{Lat: 37.77, Lon: -122.42}
	ny := geo.Point{Lat: 40.71, Lon: -74.01}

	// Every node must agree on ownership or forwarding loops.
	for _, tn := range nodes {
		if got := tn.node.Owner(user); got != "n2" {
			t.Fatalf("node %s says owner of %d is %s, want n2", tn.id, user, got)
		}
	}

	// Ingest at n1 (a non-owner): SF, then NY ten minutes later —
	// impossible travel the OWNER's pipeline must flag.
	if n1.node.Ingest(clusterEvent(user, t0, sf)) == false {
		t.Fatal("ingest refused")
	}
	n1.node.Ingest(clusterEvent(user, t0.Add(10*time.Minute), ny))

	// The alert lands on n2 (the owner), nowhere else.
	eventually(t, "speed alert on owner n2", func() bool {
		_, total := n2.pipeline.Alerts(store.AlertQuery{UserID: user, Detector: stream.StageSpeed})
		return total > 0
	})
	if _, total := n1.pipeline.Alerts(store.AlertQuery{UserID: user}); total != 0 {
		t.Fatal("non-owner n1 kept local alerts for a forwarded user")
	}

	// The merged view from n3 — a node that neither ingested nor
	// detected — shows the alert.
	page, total, info := n3.node.ClusterAlerts(store.AlertQuery{UserID: user, Limit: 10})
	if total < 1 || len(page) < 1 {
		t.Fatalf("merged view from n3: total=%d page=%d", total, len(page))
	}
	if info.Nodes != 3 || info.Failed != 0 {
		t.Fatalf("merge info = %+v, want all 3 nodes", info)
	}
	for i := 1; i < len(page); i++ {
		if page[i].At.After(page[i-1].At) {
			t.Fatalf("merged page out of order at %d: %v", i, page)
		}
	}

	// Merged pagination is consistent: page size 1 at offsets 0..total-1
	// walks distinct alerts, and totals stay fixed.
	_, allTotal, _ := n3.node.ClusterAlerts(store.AlertQuery{})
	seen := make(map[store.AlertKey]bool)
	for off := 0; off < allTotal; off++ {
		p, tot, _ := n3.node.ClusterAlerts(store.AlertQuery{Limit: 1, Offset: off})
		if tot != allTotal {
			t.Fatalf("total drifted while paging: %d vs %d", tot, allTotal)
		}
		if len(p) != 1 {
			t.Fatalf("page at offset %d has %d alerts", off, len(p))
		}
		if seen[store.KeyOf(p[0])] {
			t.Fatalf("alert repeated across pages: %+v", p[0])
		}
		seen[store.KeyOf(p[0])] = true
	}

	// Quarantine the user on the owner; the merged quarantine view is
	// visible from any node.
	if err := n2.svc.Quarantine(lbsn.UserID(user), time.Hour, "cluster test", lbsn.QuarantineSourcePolicy); err != nil {
		t.Fatal(err)
	}
	merged, qinfo := n1.node.ClusterQuarantines()
	if len(merged) != 1 || uint64(merged[0].UserID) != user || qinfo.Nodes != 3 {
		t.Fatalf("merged quarantines from n1 = %v (info %+v)", merged, qinfo)
	}

	// ---- Membership change: n2 departs gracefully. ----
	n2.node.Shutdown()

	// Peers saw the leave notice and rebuilt their rings without n2.
	eventually(t, "ring without n2 on n1 and n3", func() bool {
		return n1.node.Owner(user) != "n2" && n3.node.Owner(user) != "n2" &&
			n1.node.Owner(user) == n3.node.Owner(user)
	})
	newOwner := nodes[n1.node.Owner(user)]
	t.Logf("user %d moved n2 → %s", user, newOwner.id)

	// Quarantine survived the handoff: the new owner denies locally and
	// the merged view still lists the user.
	eventually(t, "quarantine on new owner", func() bool {
		return newOwner.svc.IsQuarantined(lbsn.UserID(user))
	})
	merged, _ = n1.node.ClusterQuarantines()
	if len(merged) != 1 || uint64(merged[0].UserID) != user {
		t.Fatalf("merged quarantines after handoff = %v", merged)
	}

	// Detector state survived: the user's last known position (NY) was
	// handed to the new owner, so an SF claim 10 minutes later is
	// impossible travel ON THE FIRST POST-HANDOFF EVENT.
	before := func() int {
		_, n := newOwner.pipeline.Alerts(store.AlertQuery{UserID: user, Detector: stream.StageSpeed})
		return n
	}()
	n1.node.Ingest(clusterEvent(user, t0.Add(20*time.Minute), sf))
	eventually(t, "post-handoff speed alert on new owner", func() bool {
		return before < func() int {
			_, n := newOwner.pipeline.Alerts(store.AlertQuery{UserID: user, Detector: stream.StageSpeed})
			return n
		}()
	})

	// The departed node's alerts are gone from the merged view (its
	// store left with it), but the new owner's replacement detection
	// keeps the user visible.
	_, totalAfter, infoAfter := n3.node.ClusterAlerts(store.AlertQuery{UserID: user})
	if totalAfter < 1 {
		t.Fatal("user vanished from merged view after departure")
	}
	if infoAfter.Nodes != 2 {
		t.Fatalf("merge after departure spans %d nodes, want 2", infoAfter.Nodes)
	}
}

// TestLeavingNodeNotRevivedByHeartbeat pins the shutdown race fix: a
// node that announced its leave answers pings unhealthy, so a
// survivor's heartbeat landing inside the handoff window must NOT
// revive it (reviving would route fresh events — and rebalanced state
// — to a node about to vanish).
func TestLeavingNodeNotRevivedByHeartbeat(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, 50)
	na, nb := nodes["a"], nodes["b"]
	nb.node.Shutdown() // leave notice lands on a; b's listener is still up
	if got := len(na.node.Membership().LivePeers()); got != 0 {
		t.Fatalf("a still sees %d live peers after b's leave notice", got)
	}
	// The heartbeat that raced the leave: b's server still answers HTTP,
	// but as leaving it must refuse to look healthy.
	na.node.Tick()
	if got := len(na.node.Membership().LivePeers()); got != 0 {
		t.Fatal("heartbeat revived a leaving node mid-handoff")
	}
	if owner := na.node.Owner(7); owner != "a" {
		t.Fatalf("user 7 owned by %s after b left, want a", owner)
	}
	// A handoff bundle landing on the leaver after its final export must
	// be refused (503), not swallowed: the sender needs a send error,
	// not a phantom success for state that dies with the receiver.
	resp, err := http.Post(nb.srv.URL+"/cluster/v1/handoff", "application/json",
		strings.NewReader(`{"from":"a","users":{"7":{}}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("handoff to a leaving node answered %d, want 503", resp.StatusCode)
	}
}

// TestClusterStatsMerged covers the merged stats view: per-node rows,
// summed totals, and partial-view accounting.
func TestClusterStatsMerged(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, 50)
	na, nb := nodes["a"], nodes["b"]
	// One local event on each node's own pipeline.
	na.pipeline.Publish(clusterEvent(1, simclock.Epoch(), geo.Point{Lat: 37.77, Lon: -122.42}))
	nb.pipeline.Publish(clusterEvent(2, simclock.Epoch(), geo.Point{Lat: 37.77, Lon: -122.42}))
	eventually(t, "both pipelines processed", func() bool {
		return na.pipeline.Stats().Processed == 1 && nb.pipeline.Stats().Processed == 1
	})
	view := na.node.ClusterStats()
	if view.Info.Nodes != 2 || len(view.Nodes) != 2 {
		t.Fatalf("stats view spans %d nodes (%d rows), want 2", view.Info.Nodes, len(view.Nodes))
	}
	if view.Nodes[0].Node != "a" || view.Nodes[1].Node != "b" {
		t.Fatalf("node rows unsorted: %s, %s", view.Nodes[0].Node, view.Nodes[1].Node)
	}
	if view.Totals.Published != 2 || view.Totals.Processed != 2 {
		t.Fatalf("totals = %+v, want published/processed 2", view.Totals)
	}
	// Kill b: the view degrades, visibly.
	nb.srv.Close()
	view = na.node.ClusterStats()
	if view.Info.Nodes != 1 || view.Info.Failed != 1 {
		t.Fatalf("degraded stats info = %+v, want nodes=1 failed=1", view.Info)
	}
}

// TestClusterMergedViewDedupes exercises the duplicate path directly:
// the same alert journaled on two nodes (post-handoff replay) appears
// once, and the cluster-wide total discounts it.
func TestClusterMergedViewDedupes(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, 10)
	na, nb := nodes["a"], nodes["b"]
	at := simclock.Epoch().Add(time.Hour)
	dup := store.Alert{Detector: "speed", UserID: 4, VenueID: 44, At: at, Detail: "dup"}
	only := store.Alert{Detector: "speed", UserID: 5, VenueID: 55, At: at.Add(time.Minute), Detail: "solo"}
	if err := na.pipeline.AlertStore().Append(dup); err != nil {
		t.Fatal(err)
	}
	if err := nb.pipeline.AlertStore().Append(dup); err != nil {
		t.Fatal(err)
	}
	if err := nb.pipeline.AlertStore().Append(only); err != nil {
		t.Fatal(err)
	}
	page, total, info := na.node.ClusterAlerts(store.AlertQuery{Limit: 10})
	if total != 2 || len(page) != 2 {
		t.Fatalf("merged total=%d page=%d, want 2/2 (dedupe failed)", total, len(page))
	}
	if info.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", info.Deduped)
	}
	if page[0].UserID != 5 || page[1].UserID != 4 {
		t.Fatalf("merged order wrong: %v", page)
	}
}

// TestClusterSurvivesPeerCrash checks the heartbeat path (no graceful
// leave): a killed peer falls out after FailAfter and queries degrade
// to a partial view instead of failing.
func TestClusterSurvivesPeerCrash(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, 50)
	na, nb := nodes["a"], nodes["b"]

	nb.srv.Close() // crash: no leave notice
	na.clock.Advance(time.Second)
	na.node.Tick()
	eventually(t, "b dropped from a's ring", func() bool {
		na.clock.Advance(time.Second)
		na.node.Tick()
		return len(na.node.Membership().LivePeers()) == 0
	})

	// Every user is now a's; ingest keeps working locally.
	user := uint64(7)
	if na.node.Owner(user) != "a" {
		t.Fatal("survivor does not own the full ring")
	}
	if !na.node.Ingest(clusterEvent(user, simclock.Epoch(), geo.Point{Lat: 37.77, Lon: -122.42})) {
		t.Fatal("local ingest refused after peer crash")
	}
	_, _, info := na.node.ClusterAlerts(store.AlertQuery{})
	if info.Nodes != 1 {
		t.Fatalf("crashed peer still in scatter set: %+v", info)
	}
}

// TestForwardLatencyMeasured measures the cross-node detection
// latency an operator actually experiences: from ingesting the
// alert-triggering claim at a NON-owner node to the alert being
// queryable on the owner. Logged, not asserted — absolute numbers are
// hardware-bound; EXPERIMENTS.md records a reference run.
func TestForwardLatencyMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement")
	}
	const users = 400
	nodes := startCluster(t, []string{"a", "b"}, users)
	na, nb := nodes["a"], nodes["b"]
	sf := geo.Point{Lat: 37.77, Lon: -122.42}
	ny := geo.Point{Lat: 40.71, Lon: -74.01}
	t0 := simclock.Epoch()

	var owned []uint64
	for u := uint64(1); u <= users && len(owned) < 60; u++ {
		if na.node.Owner(u) == "b" {
			owned = append(owned, u)
		}
	}
	var samples []time.Duration
	for i, user := range owned {
		at := t0.Add(time.Duration(i) * time.Hour)
		na.node.Ingest(clusterEvent(user, at, sf))
		start := time.Now()
		na.node.Ingest(clusterEvent(user, at.Add(10*time.Minute), ny))
		for {
			if _, total := nb.pipeline.Alerts(store.AlertQuery{UserID: user, Detector: stream.StageSpeed}); total > 0 {
				break
			}
			if time.Since(start) > 10*time.Second {
				t.Fatalf("no alert for user %d", user)
			}
			time.Sleep(50 * time.Microsecond)
		}
		samples = append(samples, time.Since(start))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	t.Logf("forward→detect→queryable latency over %d samples: p50=%s p90=%s max=%s",
		len(samples), samples[len(samples)/2], samples[len(samples)*9/10], samples[len(samples)-1])
}
