package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/obs"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/stream"
	"locheat/internal/trace"
	"locheat/internal/wirecodec"
)

// ctRecorder wraps a node's internal handler and counts request
// Content-Types per path — how the tests below prove which codec
// actually crossed the wire.
type ctRecorder struct {
	mu   sync.Mutex
	seen map[string]map[string]int
	next http.Handler
}

func newCTRecorder(next http.Handler) *ctRecorder {
	return &ctRecorder{seen: make(map[string]map[string]int), next: next}
}

func (c *ctRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	m := c.seen[r.URL.Path]
	if m == nil {
		m = make(map[string]int)
		c.seen[r.URL.Path] = m
	}
	m[r.Header.Get("Content-Type")]++
	c.mu.Unlock()
	c.next.ServeHTTP(w, r)
}

// codecOf reduces a path's recorded content types to "bin", "json",
// "mixed" or "" (no traffic).
func (c *ctRecorder) codecOf(path string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	bin, js := 0, 0
	for ct, n := range c.seen[path] {
		if ct == wirecodec.ContentTypeBinary {
			bin += n
		} else {
			js += n
		}
	}
	switch {
	case bin > 0 && js > 0:
		return "mixed"
	case bin > 0:
		return "bin"
	case js > 0:
		return "json"
	}
	return ""
}

// wireNode is a testNode plus the codec recorder on its listener and
// its journal (when journal-backed).
type wireNode struct {
	*testNode
	rec     *ctRecorder
	journal *store.AlertJournal
	tracer  *trace.Tracer
	reg     *obs.Registry
}

type wireSpec struct {
	id       string
	jsonOnly bool    // DisableBinaryWire: stands in for a pre-upgrade build
	journal  bool    // journal-backed store + replica factor 2 + outbox
	sample   float64 // > 0: attach a tracer head-sampling this fraction
	preTrace bool    // DisableTracedWire: stands in for a bin/1-only build
	metered  bool    // obs registry wired through every tier (scrape assertions)
}

// startWireCluster is startCluster with per-node codec pinning,
// replica tiers and content-type recording.
func startWireCluster(t *testing.T, specs []wireSpec) map[string]*wireNode {
	t.Helper()
	type boot struct {
		late *lateHandler
		srv  *httptest.Server
	}
	boots := make(map[string]*boot, len(specs))
	var peers []Member
	for _, s := range specs {
		late := &lateHandler{}
		srv := httptest.NewServer(late)
		t.Cleanup(srv.Close)
		boots[s.id] = &boot{late: late, srv: srv}
		peers = append(peers, Member{ID: s.id, Addr: srv.URL})
	}
	nodes := make(map[string]*wireNode, len(specs))
	for _, s := range specs {
		clock := simclock.NewSimulated(simclock.Epoch())
		svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
		for u := 0; u < 200; u++ {
			svc.RegisterUser("user", "", "SF")
		}
		var reg *obs.Registry
		if s.metered {
			reg = obs.NewRegistry()
		}
		var tracer *trace.Tracer
		if s.sample > 0 {
			tracer = trace.New(trace.Config{Node: s.id, SampleRate: s.sample, Obs: reg})
		}
		cfg := Config{
			Self:              Member{ID: s.id, Addr: boots[s.id].srv.URL},
			Peers:             peers,
			DisableBinaryWire: s.jsonOnly,
			DisableTracedWire: s.preTrace,
			Tracer:            tracer,
			Obs:               reg,
			Forward: ForwarderConfig{
				BatchSize:  1,
				FlushEvery: 5 * time.Millisecond,
			},
			Membership: MembershipConfig{
				HeartbeatEvery: 100 * time.Millisecond,
				FailAfter:      300 * time.Millisecond,
				Clock:          clock,
			},
			Logf: t.Logf,
		}
		scfg := stream.Config{Shards: 2, Clock: clock, Tracer: tracer, Obs: reg}
		var journal *store.AlertJournal
		if s.journal {
			var err error
			journal, err = store.OpenAlertJournal(store.JournalConfig{Dir: t.TempDir(), FsyncEvery: 1, Obs: reg})
			if err != nil {
				t.Fatal(err)
			}
			scfg.Store = journal
			cfg.Replica = ReplicaOptions{
				Dir:          t.TempDir(),
				Factor:       2,
				ShipInterval: 5 * time.Millisecond,
				DigestEvery:  time.Hour, // background loop stays out of the way
			}
		}
		pipeline := stream.New(scfg)
		node, err := NewNode(svc, pipeline, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := newCTRecorder(node.Handler())
		boots[s.id].late.set(rec)
		tn := &testNode{id: s.id, svc: svc, pipeline: pipeline, node: node, srv: boots[s.id].srv, clock: clock}
		nodes[s.id] = &wireNode{testNode: tn, rec: rec, journal: journal, tracer: tracer, reg: reg}
		t.Cleanup(pipeline.Close)
		t.Cleanup(node.Shutdown)
	}
	return nodes
}

func wireAlert(seq uint64, user uint64, at time.Time) store.Alert {
	return store.Alert{Seq: seq, Detector: "speed", UserID: user, VenueID: user + 1000, At: at, Detail: "codec test"}
}

// followerCaughtUp reports whether primary's single follower acked at
// least target.
func followerCaughtUp(n *Node, target uint64) bool {
	fs := n.Status().Replication.Followers
	return len(fs) == 1 && fs[0].Synced && fs[0].Cursor >= target
}

// TestMixedCodecClusterInterop is the rolling-upgrade drill: a binary
// node and a JSON-pinned peer (standing in for a pre-upgrade build)
// exchange forwards, journal ships and quarantine broadcasts in both
// directions without loss — every body on the pinned node's wire
// staying JSON.
func TestMixedCodecClusterInterop(t *testing.T) {
	nodes := startWireCluster(t, []wireSpec{
		{id: "bin", journal: true},
		{id: "json", jsonOnly: true, journal: true},
	})
	nb, nj := nodes["bin"], nodes["json"]

	// Heartbeats first: codec capabilities are learned, not assumed.
	nb.node.Tick()
	nj.node.Tick()
	if nb.node.peerBinary("json") {
		t.Fatal("binary node believes the JSON-pinned peer takes binary")
	}
	if nj.node.peerBinary("bin") {
		t.Fatal("a pinned node must never choose binary, whatever the peer advertises")
	}

	// Forward both directions: each event lands on its owner's pipeline.
	t0 := simclock.Epoch()
	toJSON := userOwnedBy(t, nb.node, "json", 200)
	toBin := userOwnedBy(t, nj.node, "bin", 200)
	if !nb.node.Ingest(clusterEvent(toJSON, t0, sfPoint())) {
		t.Fatal("bin→json ingest refused")
	}
	if !nj.node.Ingest(clusterEvent(toBin, t0, sfPoint())) {
		t.Fatal("json→bin ingest refused")
	}
	eventually(t, "forwards delivered both ways", func() bool {
		return nj.pipeline.Stats().Published >= 1 && nb.pipeline.Stats().Published >= 1
	})

	// Replicate both directions: each journal's appends reach the other
	// node's replica set.
	for i := 0; i < 10; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		if err := nb.journal.Append(wireAlert(uint64(i+1), 4, at)); err != nil {
			t.Fatal(err)
		}
		if err := nj.journal.Append(wireAlert(uint64(i+1), 5, at)); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "ships acked both ways", func() bool {
		return followerCaughtUp(nb.node, nb.journal.NextIndex()) &&
			followerCaughtUp(nj.node, nj.journal.NextIndex())
	})

	// Broadcast both directions: quarantine decided on one node denies
	// on the other.
	if err := nb.svc.Quarantine(lbsn.UserID(11), time.Hour, "mixed test", lbsn.QuarantineSourcePolicy); err != nil {
		t.Fatal(err)
	}
	if err := nj.svc.Quarantine(lbsn.UserID(12), time.Hour, "mixed test", lbsn.QuarantineSourcePolicy); err != nil {
		t.Fatal(err)
	}
	eventually(t, "quarantines broadcast both ways", func() bool {
		return nj.svc.IsQuarantined(lbsn.UserID(11)) && nb.svc.IsQuarantined(lbsn.UserID(12))
	})

	// The pinned node's wire never saw a binary body on any hot path.
	for _, path := range []string{"/cluster/v1/ingest", "/cluster/v1/replica/ship", "/cluster/v1/quarbcast"} {
		if codec := nj.rec.codecOf(path); codec != "json" {
			t.Fatalf("pinned node's %s saw codec %q, want pure json", path, codec)
		}
	}
}

// TestBinaryCodecUsedBetweenBinaryNodes proves the negotiated fast
// path actually engages: once capabilities are exchanged, forwards,
// ships and broadcasts between two binary-capable nodes travel as
// application/x-locheat-bin.
func TestBinaryCodecUsedBetweenBinaryNodes(t *testing.T) {
	nodes := startWireCluster(t, []wireSpec{
		{id: "a", journal: true},
		{id: "b", journal: true},
	})
	na, nb := nodes["a"], nodes["b"]
	na.node.Tick()
	nb.node.Tick()
	eventually(t, "capability learned", func() bool {
		return na.node.peerBinary("b") && nb.node.peerBinary("a")
	})

	t0 := simclock.Epoch()
	user := userOwnedBy(t, na.node, "b", 200)
	if !na.node.Ingest(clusterEvent(user, t0, sfPoint())) {
		t.Fatal("ingest refused")
	}
	eventually(t, "forward delivered", func() bool { return nb.pipeline.Stats().Published >= 1 })

	for i := 0; i < 5; i++ {
		if err := na.journal.Append(wireAlert(uint64(i+1), 4, t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "ship acked", func() bool { return followerCaughtUp(na.node, na.journal.NextIndex()) })

	if err := na.svc.Quarantine(lbsn.UserID(9), time.Hour, "bin test", lbsn.QuarantineSourcePolicy); err != nil {
		t.Fatal(err)
	}
	eventually(t, "broadcast applied", func() bool { return nb.svc.IsQuarantined(lbsn.UserID(9)) })

	for _, path := range []string{"/cluster/v1/ingest", "/cluster/v1/replica/ship", "/cluster/v1/quarbcast"} {
		if codec := nb.rec.codecOf(path); codec != "bin" {
			t.Fatalf("binary pair's %s saw codec %q, want pure bin", path, codec)
		}
	}
}

// TestHeartbeatDigestPiggyback pins the satellite: with the dedicated
// digest round never called, quarantine state still converges in BOTH
// directions through the heartbeat probes alone — the probe body
// carries the prober's digest, the reply carries the repairs.
func TestHeartbeatDigestPiggyback(t *testing.T) {
	nodes := startWireCluster(t, []wireSpec{{id: "a"}, {id: "b"}})
	na, nb := nodes["a"], nodes["b"]

	// Quarantine on each node while the OTHER node's listener is
	// rejecting everything, so the immediate fan-out provably fails and
	// only anti-entropy can repair.
	broken := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	})
	// a originates user 21 while b is down.
	nbHandler := nb.rec
	nb.srvSet(t, broken)
	if err := na.svc.Quarantine(lbsn.UserID(21), time.Hour, "piggyback", lbsn.QuarantineSourcePolicy); err != nil {
		t.Fatal(err)
	}
	na.node.bcast.Flush()
	eventually(t, "fan-out from a failed", func() bool { return na.node.bcastSendErrs.Load() >= 1 })
	nb.srvSet(t, nbHandler)

	// b originates user 22 while a is down.
	naHandler := na.rec
	na.srvSet(t, broken)
	if err := nb.svc.Quarantine(lbsn.UserID(22), time.Hour, "piggyback", lbsn.QuarantineSourcePolicy); err != nil {
		t.Fatal(err)
	}
	nb.node.bcast.Flush()
	eventually(t, "fan-out from b failed", func() bool { return nb.node.bcastSendErrs.Load() >= 1 })
	na.srvSet(t, naHandler)

	if nb.svc.IsQuarantined(lbsn.UserID(21)) || na.svc.IsQuarantined(lbsn.UserID(22)) {
		t.Fatal("fan-out was not actually suppressed; the piggyback test is vacuous")
	}

	// ONE heartbeat round from a: its probe pushes a's digest (21) to b
	// and pulls b's newer knowledge (22) from the reply. No
	// SyncQuarantines anywhere.
	na.node.Tick()
	if !nb.svc.IsQuarantined(lbsn.UserID(21)) {
		t.Fatal("probe body did not deliver the prober's digest")
	}
	if !na.svc.IsQuarantined(lbsn.UserID(22)) {
		t.Fatal("probe reply did not deliver the probed node's repairs")
	}
}

// TestHeartbeatTriggersOutboxReplay pins the other satellite: spill
// whose destination recovers is replayed by the next successful probe
// — one round trip — with no membership transition and no background
// cadence involved.
func TestHeartbeatTriggersOutboxReplay(t *testing.T) {
	nodes := startWireCluster(t, []wireSpec{
		{id: "a", journal: true},
		{id: "b", journal: true},
	})
	na, nb := nodes["a"], nodes["b"]
	user := userOwnedBy(t, na.node, "b", 200)

	// b's listener starts failing requests (the node itself never
	// leaves a's live set — a transient fault, not a death).
	failing := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "transient", http.StatusInternalServerError)
	})
	restore := nb.rec
	nb.srvSet(t, failing)

	if !na.node.Ingest(clusterEvent(user, simclock.Epoch(), sfPoint())) {
		t.Fatal("ingest refused despite spill being armed")
	}
	eventually(t, "forward spilled to the outbox", func() bool {
		return na.node.outbox.Depth("b") > 0
	})

	// b recovers; the next probe round must drain the spill by itself.
	nb.srvSet(t, restore)
	na.node.Tick()
	eventually(t, "outbox drained by the probe", func() bool {
		return na.node.outbox.Depth("b") == 0
	})
	eventually(t, "replayed event reached the owner", func() bool {
		return nb.pipeline.Stats().Published >= 1
	})
}

// srvSet swaps the handler behind the node's listener.
func (n *wireNode) srvSet(t *testing.T, h http.Handler) {
	t.Helper()
	n.srv.Config.Handler.(*lateHandler).set(h)
}

func sfPoint() geo.Point {
	return geo.Point{Lat: 37.7749, Lon: -122.4194}
}

// TestMixedCodecScatterInterop pins the scatter-gather half of the
// rolling-upgrade drill: a binary node and a JSON-pinned peer each hold
// distinct alerts, and the merged /alerts view read from EITHER side
// returns the full set losslessly — the binary node degrading to JSON
// for the pinned peer's slice, the pinned node never asking for binary.
func TestMixedCodecScatterInterop(t *testing.T) {
	nodes := startWireCluster(t, []wireSpec{
		{id: "bin", journal: true},
		{id: "json", jsonOnly: true, journal: true},
	})
	nb, nj := nodes["bin"], nodes["json"]
	nb.node.Tick()
	nj.node.Tick()

	t0 := simclock.Epoch()
	want := make(map[store.AlertKey]bool, 10)
	for i := 0; i < 5; i++ {
		ab := wireAlert(uint64(i+1), uint64(100+i), t0.Add(time.Duration(i)*time.Minute))
		aj := wireAlert(uint64(i+1), uint64(200+i), t0.Add(time.Duration(i)*time.Minute))
		if err := nb.journal.Append(ab); err != nil {
			t.Fatal(err)
		}
		if err := nj.journal.Append(aj); err != nil {
			t.Fatal(err)
		}
		want[store.KeyOf(ab)] = true
		want[store.KeyOf(aj)] = true
	}

	check := func(name string, n *wireNode) {
		t.Helper()
		alerts, total, info := n.node.ClusterAlerts(store.AlertQuery{Limit: 50})
		if info.Failed != 0 || info.Nodes != 2 {
			t.Fatalf("%s merged view degraded: %+v", name, info)
		}
		if total != len(want) {
			t.Fatalf("%s merged total = %d, want %d", name, total, len(want))
		}
		got := make(map[store.AlertKey]bool, len(alerts))
		for _, a := range alerts {
			got[store.KeyOf(a)] = true
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("%s merged view is missing alert %+v", name, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s merged view has %d distinct alerts, want %d", name, len(got), len(want))
		}
	}
	check("binary node", nb)
	check("pinned node", nj)
}

// TestLocalAlertsAcceptNegotiation proves the binary scatter response
// actually engages and is lossless: the same node's /cluster/v1/alerts
// body, fetched once as JSON and once with Accept: binary, decodes to
// identical alerts — and a JSON-pinned node ignores the Accept header.
func TestLocalAlertsAcceptNegotiation(t *testing.T) {
	nodes := startWireCluster(t, []wireSpec{
		{id: "bin", journal: true},
		{id: "json", jsonOnly: true, journal: true},
	})
	nb, nj := nodes["bin"], nodes["json"]
	t0 := simclock.Epoch()
	for i := 0; i < 4; i++ {
		if err := nb.journal.Append(wireAlert(uint64(i+1), uint64(30+i), t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
		if err := nj.journal.Append(wireAlert(uint64(i+1), uint64(40+i), t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}

	fetch := func(addr string, binary bool) (string, LocalAlertsResponse) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, addr+"/cluster/v1/alerts?limit=10", nil)
		if err != nil {
			t.Fatal(err)
		}
		if binary {
			req.Header.Set("Accept", wirecodec.ContentTypeBinary)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		ct := resp.Header.Get("Content-Type")
		var out LocalAlertsResponse
		if strings.HasPrefix(ct, wirecodec.ContentTypeBinary) {
			buf := wirecodec.GetBuffer()
			defer wirecodec.PutBuffer(buf)
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			out, err = decodeLocalAlerts(buf.B)
			if err != nil {
				t.Fatal(err)
			}
		} else if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return ct, out
	}

	ctJSON, viaJSON := fetch(nb.srv.URL, false)
	ctBin, viaBin := fetch(nb.srv.URL, true)
	if strings.HasPrefix(ctJSON, wirecodec.ContentTypeBinary) {
		t.Fatalf("JSON fetch got binary Content-Type %q", ctJSON)
	}
	if !strings.HasPrefix(ctBin, wirecodec.ContentTypeBinary) {
		t.Fatalf("Accept-negotiated fetch got Content-Type %q, want binary", ctBin)
	}
	wantBody, _ := json.Marshal(viaJSON)
	gotBody, _ := json.Marshal(viaBin)
	if string(wantBody) != string(gotBody) {
		t.Fatalf("binary response diverges from JSON:\njson: %s\nbin:  %s", wantBody, gotBody)
	}

	// The pinned node must ignore the Accept header entirely.
	if ct, _ := fetch(nj.srv.URL, true); strings.HasPrefix(ct, wirecodec.ContentTypeBinary) {
		t.Fatalf("JSON-pinned node honoured Accept: binary (Content-Type %q)", ct)
	}
}
