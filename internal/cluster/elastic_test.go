package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"locheat/internal/backpressure"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/stream"
)

// elasticNode is one member of an elastic test cluster: replicated
// journal, fault injector, fast handoff scheduler — the full PR 10
// surface in-process.
type elasticNode struct {
	id      string
	svc     *lbsn.Service
	pipe    *stream.Pipeline
	journal *store.AlertJournal
	node    *Node
	srv     *httptest.Server
	proxy   *failproxy
	clock   *simclock.Simulated
	fault   *FaultInjector
}

// bootElasticNode wires one node the way cmd/lbsnd does with
// -replica-factor 2 -chaos, with either a static peer list or join
// seeds.
func bootElasticNode(t *testing.T, id string, srv *httptest.Server, proxy *failproxy, peers []Member, join []string, users int) *elasticNode {
	t.Helper()
	clock := simclock.NewSimulated(simclock.Epoch())
	fault := NewFaultInjector(clock)
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	for u := 0; u < users; u++ {
		svc.RegisterUser("user", "", "SF")
	}
	dir := t.TempDir()
	journal, err := store.OpenAlertJournal(store.JournalConfig{
		Dir:          dir,
		SegmentBytes: 8 << 10,
		FsyncEvery:   256,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	pipe := stream.New(stream.Config{Shards: 2, Clock: clock, Store: journal})
	t.Cleanup(pipe.Close)
	node, err := NewNode(svc, pipe, Config{
		Self:  Member{ID: id, Addr: srv.URL},
		Peers: peers,
		Join:  join,
		Forward: ForwarderConfig{
			BatchSize:  1,
			FlushEvery: 5 * time.Millisecond,
		},
		Replica: ReplicaOptions{
			Dir:          dir,
			Factor:       2,
			ShipInterval: 2 * time.Millisecond,
			DigestEvery:  time.Hour,
		},
		Membership: MembershipConfig{
			HeartbeatEvery: 100 * time.Millisecond,
			FailAfter:      300 * time.Millisecond,
			Clock:          clock,
		},
		Handoff: HandoffConfig{Concurrency: 2, BundleUsers: 8, RetryEvery: 25 * time.Millisecond},
		Breaker: backpressure.BreakerConfig{OpenFor: 50 * time.Millisecond},
		Fault:   fault,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy.set(node.Handler())
	return &elasticNode{
		id: id, svc: svc, pipe: pipe, journal: journal, node: node,
		srv: srv, proxy: proxy, clock: clock, fault: fault,
	}
}

// startElasticCluster boots a static cluster of elastic nodes.
func startElasticCluster(t *testing.T, ids []string, users int) map[string]*elasticNode {
	t.Helper()
	type boot struct {
		proxy *failproxy
		srv   *httptest.Server
	}
	boots := make(map[string]*boot, len(ids))
	var peers []Member
	for _, id := range ids {
		proxy := &failproxy{}
		srv := httptest.NewServer(proxy)
		t.Cleanup(srv.Close)
		boots[id] = &boot{proxy: proxy, srv: srv}
		peers = append(peers, Member{ID: id, Addr: srv.URL})
	}
	nodes := make(map[string]*elasticNode, len(ids))
	for _, id := range ids {
		nodes[id] = bootElasticNode(t, id, boots[id].srv, boots[id].proxy, peers, nil, users)
	}
	return nodes
}

// joinElasticNode boots a node with no static peers that joins through
// the given seeds (the -cluster-join path).
func joinElasticNode(t *testing.T, id string, seeds []string, users int) *elasticNode {
	t.Helper()
	proxy := &failproxy{}
	srv := httptest.NewServer(proxy)
	t.Cleanup(srv.Close)
	return bootElasticNode(t, id, srv, proxy, nil, seeds, users)
}

// hostOf strips the scheme from a test server URL — the fault
// injector's rules are keyed by host:port.
func hostOf(u string) string {
	return strings.TrimPrefix(strings.TrimPrefix(u, "http://"), "https://")
}

// TestJoinHandshakeAndGossipSpread covers the dynamic join path: a
// seedless node announces itself to one seed, pulls the member table,
// owns no traffic until its first probe round, and spreads to the
// whole cluster through gossip alone.
func TestJoinHandshakeAndGossipSpread(t *testing.T) {
	const users = 200
	nodes := startElasticCluster(t, []string{"a", "b"}, users)
	na, nb := nodes["a"], nodes["b"]

	// Malformed and impostor announcements are refused by the seed.
	resp, err := http.Post(na.srv.URL+"/cluster/v1/join", "application/json",
		strings.NewReader(`{"entry":{"id":"","addr":"http://x"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-ID join answered %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(na.srv.URL+"/cluster/v1/join", "application/json",
		strings.NewReader(`{"entry":{"id":"a","addr":"http://evil","state":"alive","ver":99}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("join claiming the seed's own ID answered %d, want 409", resp.StatusCode)
	}

	// The joiner: no peers configured, only a seed URL.
	nc := joinElasticNode(t, "c", []string{na.srv.URL}, users)
	if got := nc.node.ReadyState(); got != "joining" {
		t.Fatalf("pre-join ReadyState = %q, want joining", got)
	}
	if err := nc.node.JoinCluster(); err != nil {
		t.Fatal(err)
	}
	// The handshake delivered the full member table...
	if got := len(nc.node.Membership().LivePeers()); got != 2 {
		t.Fatalf("joiner learned %d peers from the seed, want 2", got)
	}
	// ...but the node still owns nothing until a probe round succeeds.
	if got := nc.node.ReadyState(); got != "joining" {
		t.Fatalf("post-handshake ReadyState = %q, want joining", got)
	}
	nc.node.Tick()
	if got := nc.node.ReadyState(); got != "ok" {
		t.Fatalf("ReadyState after first probe round = %q, want ok", got)
	}

	// Gossip spreads the new member: b never spoke to c directly, it
	// learns c from entries piggybacked on heartbeat traffic.
	eventually(t, "a and b adopt c via gossip", func() bool {
		nc.node.Tick()
		na.node.Tick()
		nb.node.Tick()
		return len(na.node.Membership().LivePeers()) == 2 &&
			len(nb.node.Membership().LivePeers()) == 2
	})

	// All three rings agree, and c owns a share.
	cOwns := false
	for u := uint64(1); u <= users; u++ {
		oa, ob, oc := na.node.Owner(u), nb.node.Owner(u), nc.node.Owner(u)
		if oa != ob || oa != oc {
			t.Fatalf("rings disagree on user %d: a=%s b=%s c=%s", u, oa, ob, oc)
		}
		if oa == "c" {
			cOwns = true
		}
	}
	if !cOwns {
		t.Fatal("joined node owns no users")
	}
}

// TestMembershipFlapNoOscillation is the flap-hysteresis regression:
// heartbeats that are delayed past FailAfter and then land must not
// oscillate the peer alive<->dead — the peer turns suspect, KEEPS its
// ring seat, and recovers without a single ring transition (and so
// without re-triggering handoffs, which ride ring transitions).
func TestMembershipFlapNoOscillation(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	var failing atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "delayed", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"node":"p1"}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	transitions := 0
	m := NewMembership(
		Member{ID: "self", Addr: "http://unused"},
		[]Member{{ID: "p1", Addr: srv.URL}},
		MembershipConfig{HeartbeatEvery: time.Second, FailAfter: 3 * time.Second,
			SuspectAfter: 6 * time.Second, Clock: clock},
	)
	m.OnChange(func() { transitions++ })

	for cycle := 0; cycle < 4; cycle++ {
		// Heartbeats delayed for 5s: past FailAfter (suspect) but short of
		// FailAfter+SuspectAfter (left).
		failing.Store(true)
		for i := 0; i < 5; i++ {
			clock.Advance(time.Second)
			m.Tick()
			if len(m.LivePeers()) != 1 {
				t.Fatalf("cycle %d: flapping peer lost its ring seat after %ds of silence", cycle, i+1)
			}
		}
		// The delayed heartbeats land again.
		failing.Store(false)
		clock.Advance(time.Second)
		m.Tick()
		if len(m.LivePeers()) != 1 {
			t.Fatalf("cycle %d: peer not live after heartbeats resumed", cycle)
		}
	}
	if transitions != 0 {
		t.Fatalf("%d ring transitions under a flapping link, want 0 (each would re-trigger a rebalance)", transitions)
	}

	// Reordered gossip: a stale left claim at an old version arrives
	// after the peer's version advanced through the flap cycles. It must
	// lose the LWW merge.
	m.Merge([]MemberEntry{{ID: "p1", Addr: srv.URL, State: "left", Ver: 1}})
	if len(m.LivePeers()) != 1 {
		t.Fatal("stale reordered 'left' gossip deposed a live peer")
	}
	if transitions != 0 {
		t.Fatalf("stale gossip caused %d ring transitions", transitions)
	}
}

// bOwnedUsers lists users the full two-node ring assigns to b.
func bOwnedUsers(n *Node, users, max int) []uint64 {
	var out []uint64
	for u := uint64(1); u <= uint64(users) && len(out) < max; u++ {
		if n.Owner(u) == "b" {
			out = append(out, u)
		}
	}
	return out
}

// TestBoundedHandoffParksRetriesDelivers: a rebalance toward a peer
// whose handoff endpoint is down must PARK the displaced state and
// retry — not drop it, not block the membership path — then deliver it
// in bounded bundles once the peer heals, including quarantines.
func TestBoundedHandoffParksRetriesDelivers(t *testing.T) {
	const users = 300
	nodes := startElasticCluster(t, []string{"a", "b"}, users)
	na, nb := nodes["a"], nodes["b"]
	bUsers := bOwnedUsers(na.node, users, 20)
	if len(bUsers) < 10 {
		t.Fatalf("ring gave b only %d of %d users", len(bUsers), users)
	}

	// b dies; a absorbs the full ring.
	nb.proxy.setFail("/cluster/v1/ping", true)
	eventually(t, "b declared left on a", func() bool {
		na.clock.Advance(time.Second)
		na.node.Tick()
		return len(na.node.Membership().LivePeers()) == 0
	})

	// Build detector state on a for users b will reclaim, and quarantine
	// one of them.
	sf := geo.Point{Lat: 37.77, Lon: -122.42}
	t0 := simclock.Epoch()
	for i, u := range bUsers {
		// Minute spacing keeps every user inside the speed stage's idle
		// window, so all of them have state to hand off.
		if !na.node.Ingest(clusterEvent(u, t0.Add(time.Duration(i)*time.Minute), sf)) {
			t.Fatal("local ingest refused")
		}
	}
	eventually(t, "a processed the warm-up events", func() bool {
		return na.pipe.Stats().Processed >= uint64(len(bUsers))
	})
	quarUser := bUsers[1]
	if err := na.svc.Quarantine(lbsn.UserID(quarUser), time.Hour, "parked", lbsn.QuarantineSourcePolicy); err != nil {
		t.Fatal(err)
	}

	// b revives — but its handoff endpoint is broken. The displaced
	// users' state must park on a, with retries, and none of it may leak
	// through the failing endpoint.
	nb.proxy.setFail("/cluster/v1/handoff", true)
	nb.proxy.setFail("/cluster/v1/ping", false)
	eventually(t, "b revived on a", func() bool {
		na.clock.Advance(time.Second)
		na.node.Tick()
		return len(na.node.Membership().LivePeers()) == 1
	})
	if na.node.handoff.Pending() == 0 {
		t.Fatal("revival displaced no users into the handoff scheduler")
	}
	na.node.handoff.Drain() // no progress possible: endpoint down
	if na.node.handoff.Pending() == 0 {
		t.Fatal("parked state vanished while the destination was failing")
	}
	if na.node.handoff.retries.Load() == 0 {
		t.Fatal("failed deliveries recorded no retries")
	}
	if got := nb.node.Status().Handoff.RecvUsers; got != 0 {
		t.Fatalf("b received %d users through a failing endpoint", got)
	}

	// Heal: the worker (or an explicit drain) delivers everything, in
	// bundles capped at HandoffConfig.BundleUsers.
	nb.proxy.setFail("/cluster/v1/handoff", false)
	eventually(t, "parked state delivered after heal", func() bool {
		na.node.handoff.Drain()
		return na.node.handoff.Pending() == 0
	})
	st := nb.node.Status().Handoff
	if st.RecvUsers < uint64(len(bUsers)) {
		t.Fatalf("b received %d users, want >= %d", st.RecvUsers, len(bUsers))
	}
	if st.RecvBundles < 2 {
		t.Fatalf("delivery used %d bundles for %d users with BundleUsers=8 — not chunked", st.RecvBundles, len(bUsers))
	}
	eventually(t, "quarantine moved with the handoff", func() bool {
		return nb.svc.IsQuarantined(lbsn.UserID(quarUser))
	})

	// Detector state continuity: the FIRST post-handoff event for a
	// moved user completes an impossible-travel pair started on a.
	u := bUsers[0]
	ny := geo.Point{Lat: 40.71, Lon: -74.01}
	na.node.Ingest(clusterEvent(u, t0.Add(10*time.Minute), ny))
	eventually(t, "post-handoff speed alert on b", func() bool {
		_, n := nb.pipe.Alerts(store.AlertQuery{UserID: u, Detector: stream.StageSpeed})
		return n > 0
	})
}

// TestHandoffReclaimOnOwnershipFlipBack: state parked for a peer that
// dies before taking delivery must be re-imported locally when
// ownership flips back — resumable rebalancing can neither strand nor
// lose it.
func TestHandoffReclaimOnOwnershipFlipBack(t *testing.T) {
	const users = 300
	nodes := startElasticCluster(t, []string{"a", "b"}, users)
	na, nb := nodes["a"], nodes["b"]
	bUsers := bOwnedUsers(na.node, users, 10)
	if len(bUsers) < 4 {
		t.Fatalf("ring gave b only %d users", len(bUsers))
	}

	nb.proxy.setFail("/cluster/v1/ping", true)
	eventually(t, "b declared left on a", func() bool {
		na.clock.Advance(time.Second)
		na.node.Tick()
		return len(na.node.Membership().LivePeers()) == 0
	})
	sf := geo.Point{Lat: 37.77, Lon: -122.42}
	t0 := simclock.Epoch()
	for i, u := range bUsers {
		na.node.Ingest(clusterEvent(u, t0.Add(time.Duration(i)*time.Minute), sf))
	}
	eventually(t, "a processed the warm-up events", func() bool {
		return na.pipe.Stats().Processed >= uint64(len(bUsers))
	})

	// b flaps up (handoff broken, so the state parks)...
	nb.proxy.setFail("/cluster/v1/handoff", true)
	nb.proxy.setFail("/cluster/v1/ping", false)
	eventually(t, "b revived on a", func() bool {
		na.clock.Advance(time.Second)
		na.node.Tick()
		return len(na.node.Membership().LivePeers()) == 1
	})
	if na.node.handoff.Pending() == 0 {
		t.Fatal("no state parked for the revived owner")
	}
	// ...and dies again before taking delivery.
	nb.proxy.setFail("/cluster/v1/ping", true)
	eventually(t, "b declared left again", func() bool {
		na.clock.Advance(time.Second)
		na.node.Tick()
		return len(na.node.Membership().LivePeers()) == 0
	})

	// Ownership flipped back to a: the parked bundles are reclaimed.
	eventually(t, "parked state reclaimed", func() bool {
		na.node.handoff.Drain()
		return na.node.handoff.Pending() == 0
	})
	if na.node.handoff.reclaimed.Load() == 0 {
		t.Fatal("drain delivered instead of reclaiming — b was dead")
	}

	// The reclaimed detector state is live again on a: the next event
	// completes the impossible-travel pair.
	u := bUsers[0]
	ny := geo.Point{Lat: 40.71, Lon: -74.01}
	na.node.Ingest(clusterEvent(u, t0.Add(10*time.Minute), ny))
	eventually(t, "speed alert from reclaimed state on a", func() bool {
		_, n := na.pipe.Alerts(store.AlertQuery{UserID: u, Detector: stream.StageSpeed})
		return n > 0
	})
}

// TestOutboxReplayAcrossRingChange is the satellite regression: events
// spilled for an unreachable owner whose ring seat then changes must
// replay to the NEW owner exactly once — re-resolved routing, no
// duplicates from repeated replays.
func TestOutboxReplayAcrossRingChange(t *testing.T) {
	const users = 300
	nodes := startElasticCluster(t, []string{"a", "b", "c"}, users)
	na, nb, nc := nodes["a"], nodes["b"], nodes["c"]

	var spillUser uint64
	for u := uint64(1); u <= users; u++ {
		if na.node.Owner(u) == "b" {
			spillUser = u
			break
		}
	}
	if spillUser == 0 {
		t.Fatal("no b-owned user")
	}

	// b's ingest fails (heartbeats healthy): forwards spill, addressed
	// to b.
	nb.proxy.setFail("/cluster/v1/ingest", true)
	sf := geo.Point{Lat: 37.77, Lon: -122.42}
	ny := geo.Point{Lat: 40.71, Lon: -74.01}
	t0 := simclock.Epoch()
	for i := 0; i < 3; i++ {
		at := t0.Add(time.Duration(i) * time.Hour)
		na.node.Ingest(clusterEvent(spillUser, at, sf))
		na.node.Ingest(clusterEvent(spillUser, at.Add(10*time.Minute), ny))
	}
	eventually(t, "all six forwards spilled", func() bool {
		st := na.node.Status()
		return st.Replication.Outbox != nil && st.Replication.Outbox.Queued == 6
	})

	// A replay attempt while b still owns the users but refuses ingest:
	// the events re-enter the forward path, fail against b again, and
	// spill back — nothing is lost, nothing lands.
	na.node.ReplayOutbox()
	eventually(t, "replayed events re-spilled", func() bool {
		return na.node.Status().Replication.Outbox.Queued == 6
	})
	if got := nb.pipe.Stats().Published; got != 0 {
		t.Fatalf("refusing owner processed %d events", got)
	}

	// Ring change mid-replay: b is hard-killed. The spill must re-route
	// to whoever owns spillUser now.
	nb.srv.Close()
	for _, tn := range []*elasticNode{na, nc} {
		tn := tn
		eventually(t, tn.id+" drops b", func() bool {
			tn.clock.Advance(time.Second)
			tn.node.Tick()
			return len(tn.node.Membership().LivePeers()) == 1
		})
	}
	newOwner := na.node.Owner(spillUser)
	if newOwner == "b" {
		t.Fatal("ring still routes to the dead node")
	}

	// The replayed sequence is SF,NY pairs 10 minutes apart with
	// 50-minute gaps — every hop is inside the speed window, so 6 events
	// processed once yield exactly 5 alerts on the new owner.
	const wantAlerts = 5
	eventually(t, "spill replayed to new owner", func() bool {
		na.node.ReplayOutbox()
		_, got, info := na.node.ClusterAlerts(store.AlertQuery{UserID: spillUser, Detector: stream.StageSpeed})
		return info.Nodes == 2 && got >= wantAlerts
	})
	// Replaying again must not duplicate: the outbox is drained and the
	// receiver dedupes by forward sequence.
	na.node.ReplayOutbox()
	na.node.ReplayOutbox()
	_, got, _ := na.node.ClusterAlerts(store.AlertQuery{UserID: spillUser, Detector: stream.StageSpeed})
	if got != wantAlerts {
		t.Fatalf("new owner has %d speed alerts, want exactly %d (dupes or loss)", got, wantAlerts)
	}
	eventually(t, "outbox drained", func() bool {
		return na.node.Status().Replication.Outbox.Queued == 0
	})
}

// TestElasticChaosDrill is the PR 10 acceptance scenario, in-process
// and deterministic: a 3-node replicated cluster under load takes a
// dynamic join, a network partition that heals inside the suspect
// window (no rebalance), a kill -9, chain re-replication back to
// factor 2, and cluster-wide quarantine convergence — with every
// cross-node client routed through the fault injector.
func TestElasticChaosDrill(t *testing.T) {
	const users = 300
	nodes := startElasticCluster(t, []string{"n1", "n2", "n3"}, users)
	n1, n2, n3 := nodes["n1"], nodes["n2"], nodes["n3"]

	sf := geo.Point{Lat: 37.77, Lon: -122.42}
	ny := geo.Point{Lat: 40.71, Lon: -74.01}
	t0 := simclock.Epoch()

	// ---- Load: impossible-travel pairs for users of every owner. ----
	owned := map[string][]uint64{}
	for u := uint64(1); u <= users; u++ {
		o := n1.node.Owner(u)
		if len(owned[o]) < 8 {
			owned[o] = append(owned[o], u)
		}
	}
	for _, us := range owned {
		for i, u := range us {
			// Minute spacing keeps every user inside the detectors' idle
			// window, so the join rebalance has state to move.
			at := t0.Add(time.Duration(i) * time.Minute)
			n1.node.Ingest(clusterEvent(u, at, sf))
			n1.node.Ingest(clusterEvent(u, at.Add(10*time.Minute), ny))
		}
	}
	for id, tn := range nodes {
		want := len(owned[id])
		tn := tn
		eventually(t, "speed alerts on "+id, func() bool {
			_, n := tn.pipe.Alerts(store.AlertQuery{Detector: stream.StageSpeed})
			return n >= want
		})
	}

	// ---- Dynamic join: n4 enters the running cluster via one seed. ----
	n4 := joinElasticNode(t, "n4", []string{n1.srv.URL}, users)
	if err := n4.node.JoinCluster(); err != nil {
		t.Fatal(err)
	}
	n4.node.Tick() // first probe round promotes n4 to alive
	if got := n4.node.ReadyState(); got != "ok" {
		t.Fatalf("n4 ReadyState after promotion = %q", got)
	}
	all := []*elasticNode{n1, n2, n3, n4}
	tickAll := func() {
		for _, tn := range all {
			tn.node.Tick()
		}
	}
	eventually(t, "all four nodes share one ring", func() bool {
		tickAll()
		for _, tn := range all {
			if len(tn.node.Membership().LivePeers()) != 3 {
				return false
			}
		}
		for u := uint64(1); u <= 40; u++ {
			o := n1.node.Owner(u)
			for _, tn := range all[1:] {
				if tn.node.Owner(u) != o {
					return false
				}
			}
		}
		return true
	})
	// Displaced detector state trickles to n4 through the bounded
	// scheduler; wait for every node's parked set to drain.
	eventually(t, "rebalance handoffs drained", func() bool {
		for _, tn := range all {
			if tn.node.handoff.Pending() != 0 {
				return false
			}
		}
		return true
	})
	if got := n4.node.Status().Handoff.RecvUsers; got == 0 {
		t.Fatal("no displaced state reached the joined node")
	}
	// The joined node detects: a fresh pair for an n4-owned user,
	// ingested at n1, is flagged on n4.
	var u4 uint64
	for u := uint64(1); u <= users; u++ {
		if n1.node.Owner(u) == "n4" {
			u4 = u
			break
		}
	}
	if u4 == 0 {
		t.Fatal("n4 owns nothing")
	}
	n1.node.Ingest(clusterEvent(u4, t0.Add(200*time.Hour), sf))
	n1.node.Ingest(clusterEvent(u4, t0.Add(200*time.Hour+10*time.Minute), ny))
	eventually(t, "joined node detects forwarded pair", func() bool {
		_, n := n4.pipe.Alerts(store.AlertQuery{UserID: u4, Detector: stream.StageSpeed})
		return n > 0
	})

	// ---- Partition / heal inside the suspect window: no rebalance. ----
	others := []*elasticNode{n1, n2, n4}
	sentBefore := n1.node.Status().Handoff.SentBundles
	ringBefore := n1.node.Status().Ring
	for _, tn := range others {
		tn.fault.Partition(hostOf(n3.srv.URL), true)
		n3.fault.Partition(hostOf(tn.srv.URL), true)
	}
	// Silence past FailAfter (300ms): n3 turns suspect everywhere but
	// keeps its ring seat.
	for _, tn := range others {
		tn.clock.Advance(400 * time.Millisecond)
		tn.node.Tick()
	}
	for _, tn := range others {
		if got := len(tn.node.Status().Ring); got != len(ringBefore) {
			t.Fatalf("%s rebalanced during the suspect window: ring %d members, want %d", tn.id, got, len(ringBefore))
		}
	}
	// Heal before FailAfter+SuspectAfter: n3 recovers with no ring
	// transition and no re-handoff.
	for _, tn := range all {
		tn.fault.Heal()
	}
	eventually(t, "n3 back to alive everywhere", func() bool {
		tickAll()
		for _, tn := range all {
			if len(tn.node.Membership().LivePeers()) != 3 {
				return false
			}
		}
		return true
	})
	if got := n1.node.Status().Handoff.SentBundles; got != sentBefore {
		t.Fatalf("partition-heal inside the suspect window re-triggered handoffs (%d -> %d bundles)", sentBefore, got)
	}

	// ---- kill -9 n2, after pinning what must survive. ----
	eventually(t, "n2's replica caught up", func() bool {
		st := n2.node.Status().Replication
		return len(st.Followers) == 1 && st.Followers[0].Synced && st.Followers[0].Lag == 0
	})
	n2Page, n2Total := n2.pipe.Alerts(store.AlertQuery{Limit: 10000})
	if n2Total == 0 {
		t.Fatal("n2 holds no alerts; the drill would assert nothing")
	}
	mustSurvive := alertKeys(n2Page)
	n2.srv.Close()
	survivors := []*elasticNode{n1, n3, n4}
	for _, tn := range survivors {
		tn := tn
		eventually(t, tn.id+" drops n2", func() bool {
			tn.clock.Advance(time.Second)
			tn.node.Tick()
			return len(tn.node.Membership().LivePeers()) == 2
		})
	}

	// Chain re-replication: the dead primary's first live successor
	// re-ships the promoted log until factor 2 holds again.
	eventually(t, "repair restores replica factor for n2's log", func() bool {
		for _, tn := range survivors {
			tn.node.RunRepair()
		}
		repaired := false
		for _, tn := range survivors {
			for _, r := range tn.node.Status().Replication.Repairs {
				if r.Primary == "n2" && r.Done {
					repaired = true
				}
			}
		}
		if !repaired {
			return false
		}
		holders := 0
		for _, tn := range survivors {
			for _, rs := range tn.node.Status().Replication.Replicas {
				if rs.Primary == "n2" && rs.Cursor > 0 {
					holders++
				}
			}
		}
		return holders >= 2
	})

	// Merged history is complete from the promoted replica.
	eventually(t, "merged history complete", func() bool {
		page, _, info := n1.node.ClusterAlerts(store.AlertQuery{Limit: 10000})
		if info.Nodes != 3 {
			return false
		}
		got := alertKeys(page)
		for k := range mustSurvive {
			if !got[k] {
				return false
			}
		}
		return true
	})

	// Ring-routed quarantine fan-out converges on every survivor,
	// starting from the newest member.
	quarUser := owned["n1"][0]
	if err := n4.svc.Quarantine(lbsn.UserID(quarUser), time.Hour, "drill", lbsn.QuarantineSourcePolicy); err != nil {
		t.Fatal(err)
	}
	for _, tn := range survivors {
		tn := tn
		eventually(t, "quarantine converged on "+tn.id, func() bool {
			return tn.svc.IsQuarantined(lbsn.UserID(quarUser))
		})
	}

	// Zero-loss accounting: the forwarder never dropped an event — the
	// outbox absorbed every failure window.
	for _, tn := range survivors {
		if st := tn.node.Status(); st.Forward.Dropped != 0 {
			t.Fatalf("%s dropped %d forwards during the drill", tn.id, st.Forward.Dropped)
		}
	}
}
