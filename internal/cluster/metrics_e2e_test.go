package cluster

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/obs"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/stream"
)

// obsNode is one journal-backed cluster member with its own telemetry
// registry — the full wiring cmd/lbsnd does, including replication.
type obsNode struct {
	id       string
	reg      *obs.Registry
	pipeline *stream.Pipeline
	node     *Node
}

// startObsCluster boots n journal-backed nodes (replica factor 2) each
// reporting into its own registry. The memory-store startCluster harness
// cannot exercise ship lag — shipping needs a real journal behind the
// pipeline — which is why this one exists.
func startObsCluster(t *testing.T, ids []string, users int) map[string]*obsNode {
	t.Helper()
	type boot struct {
		late *lateHandler
		addr string
	}
	boots := make(map[string]*boot, len(ids))
	var peers []Member
	for _, id := range ids {
		late := &lateHandler{}
		srv := httptest.NewServer(late)
		t.Cleanup(srv.Close)
		boots[id] = &boot{late: late, addr: srv.URL}
		peers = append(peers, Member{ID: id, Addr: srv.URL})
	}

	nodes := make(map[string]*obsNode, len(ids))
	for _, id := range ids {
		reg := obs.NewRegistry()
		clock := simclock.NewSimulated(simclock.Epoch())
		svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
		svc.RegisterObs(reg)
		for u := 0; u < users; u++ {
			svc.RegisterUser("user", "", "SF")
		}
		dir := t.TempDir()
		journal, err := store.OpenAlertJournal(store.JournalConfig{Dir: dir, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { journal.Close() })
		pipeline := stream.New(stream.Config{Shards: 2, Clock: clock, Store: journal, Obs: reg})
		node, err := NewNode(svc, pipeline, Config{
			Self:  Member{ID: id, Addr: boots[id].addr},
			Peers: peers,
			Forward: ForwarderConfig{
				BatchSize:  1,
				FlushEvery: 5 * time.Millisecond,
			},
			Membership: MembershipConfig{
				HeartbeatEvery: 100 * time.Millisecond,
				FailAfter:      300 * time.Millisecond,
				Clock:          clock,
			},
			Replica: ReplicaOptions{Dir: dir, Factor: 2, ShipInterval: 10 * time.Millisecond},
			Obs:     reg,
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		boots[id].late.set(node.Handler())
		nodes[id] = &obsNode{id: id, reg: reg, pipeline: pipeline, node: node}
		t.Cleanup(pipeline.Close)
	}
	return nodes
}

// count reads one series' observation count from the node's registry.
func (n *obsNode) count(t *testing.T, series string) uint64 {
	t.Helper()
	s, ok := n.reg.Summaries()[series]
	if !ok {
		t.Fatalf("series %s not registered on %s", series, n.id)
	}
	return s.Count
}

// TestMetricsEndToEnd drives impossible-travel traffic through a
// 3-node journal-backed cluster and asserts the headline telemetry is
// live: the owner's detection-latency histogram and ship-lag histogram
// both record observations, the forward/propagation paths count, and
// every node's /metrics output parses as valid Prometheus text.
func TestMetricsEndToEnd(t *testing.T) {
	const users = 300
	nodes := startObsCluster(t, []string{"n1", "n2", "n3"}, users)
	n1, n2 := nodes["n1"], nodes["n2"]

	user := userOwnedBy(t, n1.node, "n2", users)
	t0 := simclock.Epoch()
	sf := geo.Point{Lat: 37.77, Lon: -122.42}
	ny := geo.Point{Lat: 40.71, Lon: -74.01}

	// Ingest at a non-owner: SF then NY 10 minutes later — impossible
	// travel the owner's pipeline must flag (and journal, and ship).
	if !n1.node.Ingest(clusterEvent(user, t0, sf)) {
		t.Fatal("ingest refused")
	}
	n1.node.Ingest(clusterEvent(user, t0.Add(10*time.Minute), ny))

	eventually(t, "speed alert journaled on owner n2", func() bool {
		_, total := n2.pipeline.Alerts(store.AlertQuery{UserID: user, Detector: stream.StageSpeed})
		return total > 0
	})

	// Detection latency was observed on the owner, end to end.
	eventually(t, "detection-latency observations on n2", func() bool {
		return n2.count(t, "locheat_detection_latency_seconds") > 0
	})
	if s := n2.reg.Summaries()["locheat_detection_latency_seconds"]; s.P99 <= 0 {
		t.Fatalf("detection latency p99 = %v, want > 0", s.P99)
	}

	// The journal append was shipped to n2's ring successor and the
	// append-to-replicated lag window closed.
	eventually(t, "ship-lag observations on n2", func() bool {
		return n2.count(t, "locheat_replica_ship_lag_seconds") > 0
	})
	if n2.count(t, "locheat_journal_append_seconds") == 0 {
		t.Fatal("owner journaled an alert without observing append latency")
	}

	// The forward path counted on the ingesting node.
	if n1.count(t, "locheat_cluster_forward_batch_records") == 0 {
		t.Fatal("n1 forwarded events without observing a batch")
	}

	// Quarantine on the owner propagates; a remote node observes the
	// propagation histogram when it applies the broadcast entry.
	if err := nodes["n2"].node.svc.Quarantine(lbsn.UserID(user), time.Hour, "metrics e2e", lbsn.QuarantineSourcePolicy); err != nil {
		t.Fatal(err)
	}
	eventually(t, "quarantine propagation observed on a remote node", func() bool {
		return n1.count(t, "locheat_quarantine_propagation_seconds") > 0 ||
			nodes["n3"].count(t, "locheat_quarantine_propagation_seconds") > 0
	})

	// Every node's scrape output is valid Prometheus exposition text
	// and carries the cross-tier series the dashboards key on.
	for _, n := range nodes {
		var buf bytes.Buffer
		if err := n.reg.WritePrometheus(&buf); err != nil {
			t.Fatalf("scrape %s: %v", n.id, err)
		}
		text := buf.String()
		if err := obs.LintPrometheusText(text); err != nil {
			t.Fatalf("scrape %s is not valid exposition text: %v", n.id, err)
		}
		for _, series := range []string{
			"locheat_detection_latency_seconds_count",
			"locheat_replica_ship_lag_seconds_count",
			"locheat_stream_published_total",
			"locheat_cluster_forward_batches_total",
			"locheat_journal_append_seconds_count",
			"locheat_lbsn_quarantine_active",
			"locheat_quarantine_propagation_seconds_count",
		} {
			if !strings.Contains(text, series) {
				t.Fatalf("scrape %s missing series %s", n.id, series)
			}
		}
	}
}
