package core

import (
	"fmt"

	"locheat/internal/lbsn"
	"locheat/internal/store"
	"locheat/internal/synth"
)

// SnapshotService dumps the live service's current public state into a
// fresh store — equivalent to an instantaneous, loss-free crawl of
// every profile page. Differential-crawl experiments take one snapshot
// per virtual day.
func (l *Lab) SnapshotService() *store.DB {
	db := store.New()
	for id := lbsn.UserID(1); id <= l.Service.MaxUserID(); id++ {
		u, ok := l.Service.User(id)
		if !ok {
			continue
		}
		db.UpsertUser(store.UserRow{
			ID:            uint64(u.ID),
			UserName:      u.Username,
			Name:          u.Name,
			HomeCity:      u.HomeCity,
			TotalCheckins: u.TotalCheckins,
			TotalBadges:   u.TotalBadges,
			Points:        u.Points,
			Friends:       u.FriendCount,
		})
	}
	for id := lbsn.VenueID(1); id <= l.Service.MaxVenueID(); id++ {
		v, ok := l.Service.Venue(id)
		if !ok {
			continue
		}
		row := store.VenueRow{
			ID:             uint64(v.ID),
			Name:           v.Name,
			Address:        v.Address,
			City:           v.City,
			MayorID:        uint64(v.MayorID),
			CheckinsHere:   v.CheckinsHere,
			UniqueVisitors: v.UniqueVisitors,
			Latitude:       v.Location.Lat,
			Longitude:      v.Location.Lon,
		}
		if v.Special != nil {
			row.Special = v.Special.Description
			row.SpecialMayor = v.Special.MayorOnly
		}
		db.UpsertVenue(row)
		for _, uid := range v.RecentVisitors {
			db.AddRecentCheckin(uint64(uid), uint64(v.ID))
		}
	}
	db.DeriveStats()
	return db
}

// E14Result is the differential-crawl experiment (§3.2's repeated
// crawling, run as its own experiment).
type E14Result struct {
	Days            int
	TrafficAccepted int
	TrafficDenied   int

	NewRelations  int
	MayorChanges  int
	CheckinDeltas int // users whose public totals moved
	// HyperactiveUsers are users whose observed per-day recent-list
	// appearance rate is humanly implausible — the differential
	// detection signal.
	HyperactiveUsers []uint64
	// CheaterHitRate is the fraction of hyperactive users who are
	// ground-truth cheaters.
	CheaterHitRate float64
}

// RunE14 takes a crawl snapshot, drives `days` of live user activity
// (normals, paced cheaters, reckless caught cheaters), re-crawls, and
// analyzes the diff: per-user check-in frequency and mayorship churn.
func (l *Lab) RunE14(days, sampleActives, hyperactivePerDay int) (E14Result, error) {
	var res E14Result
	if days <= 0 {
		days = 3
	}
	if sampleActives <= 0 {
		sampleActives = 150
	}
	if hyperactivePerDay <= 0 {
		hyperactivePerDay = 4
	}
	res.Days = days

	before := l.SnapshotService()
	driver, err := synth.NewActivityDriver(l.World, l.Service, l.Clock, 99, sampleActives)
	if err != nil {
		return res, fmt.Errorf("e14: %w", err)
	}
	for d := 0; d < days; d++ {
		stats, err := driver.Day()
		if err != nil {
			return res, fmt.Errorf("e14 day %d: %w", d, err)
		}
		res.TrafficAccepted += stats.Accepted
		res.TrafficDenied += stats.Denied
	}
	after := l.SnapshotService()

	diff := store.ComputeDiff(before, after)
	res.NewRelations = len(diff.NewRelations)
	res.MayorChanges = len(diff.MayorChanges)
	res.CheckinDeltas = len(diff.CheckinDeltas)

	appearances := diff.NewAppearancesByUser()
	threshold := hyperactivePerDay * days
	cheaters := 0
	for uid, n := range appearances {
		if n >= threshold {
			res.HyperactiveUsers = append(res.HyperactiveUsers, uid)
			if c, ok := l.World.TrueClass(lbsn.UserID(uid)); ok && c.Cheating() {
				cheaters++
			}
		}
	}
	if len(res.HyperactiveUsers) > 0 {
		res.CheaterHitRate = float64(cheaters) / float64(len(res.HyperactiveUsers))
	}
	return res, nil
}
