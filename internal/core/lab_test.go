package core

import (
	"net/http"
	"strings"
	"testing"
)

// sharedLab is built once; experiments that mutate service state use
// fresh users/venues so they don't interfere.
var sharedLab *Lab

func testLab(t *testing.T) *Lab {
	t.Helper()
	if sharedLab == nil {
		lab, err := NewLab(LabConfig{Scale: 0.15, Seed: 21}) // 3000 users, 9000 venues: room for the 865 quota
		if err != nil {
			t.Fatalf("NewLab: %v", err)
		}
		sharedLab = lab
	}
	return sharedLab
}

func TestNewLabDefaults(t *testing.T) {
	lab, err := NewLab(LabConfig{Scale: 0.01, Seed: 1}) // clamps to 200 users
	if err != nil {
		t.Fatal(err)
	}
	if lab.Service.UserCount() != 200 || lab.Service.VenueCount() != 600 {
		t.Errorf("lab size = %d/%d, want 200/600", lab.Service.UserCount(), lab.Service.VenueCount())
	}
	if lab.Web == nil || lab.DB == nil || lab.Clock == nil {
		t.Error("lab components missing")
	}
}

func TestServeLocal(t *testing.T) {
	lab := testLab(t)
	baseURL, shutdown, err := lab.ServeLocal()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(baseURL + "/user/1")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func TestRunE1(t *testing.T) {
	lab := testLab(t)
	res, err := lab.RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vectors) != 4 {
		t.Fatalf("vectors = %d, want 4", len(res.Vectors))
	}
	for _, v := range res.Vectors {
		if !v.Accepted {
			t.Errorf("vector %s denied — all four must pass (§3.1)", v.Method)
		}
	}
	if res.AdventurerAfterVenues != 10 {
		t.Errorf("Adventurer after %d venues, paper says 10", res.AdventurerAfterVenues)
	}
	if res.MayorAfterDays != 4 {
		t.Errorf("mayor after %d daily check-ins vs a 3-day incumbent, want 4", res.MayorAfterDays)
	}
}

func TestRunE2AllProbesMatchPaper(t *testing.T) {
	lab := testLab(t)
	probes, err := lab.RunE2()
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 6 {
		t.Fatalf("probes = %d, want 6", len(probes))
	}
	for _, p := range probes {
		if !p.Pass() {
			t.Errorf("probe %s / %s: denied=%v, paper observed denied=%v",
				p.Rule, p.Scenario, p.Denied, p.WantDenied)
		}
	}
}

func TestRunE3CrawlsOverHTTP(t *testing.T) {
	lab := testLab(t)
	res, err := lab.RunE3([]int{1, 8}, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UserSweep) != 2 {
		t.Fatalf("sweep = %d points", len(res.UserSweep))
	}
	for _, p := range res.UserSweep {
		if p.Pages != 300 || p.PagesPerHour <= 0 {
			t.Errorf("sweep point %+v", p)
		}
	}
	// The paper's point: parallel crawling is essential. Against the
	// simulated WAN latency, 8 workers must clearly beat 1.
	if res.UserSweep[1].PagesPerHour < 2*res.UserSweep[0].PagesPerHour {
		t.Errorf("8 workers (%.0f pages/h) not >= 2x 1 worker (%.0f pages/h)",
			res.UserSweep[1].PagesPerHour, res.UserSweep[0].PagesPerHour)
	}
	if res.VenuePoint.Pages != 300 {
		t.Errorf("venue crawl pages = %d", res.VenuePoint.Pages)
	}
	if res.UsersStored != 300 || res.VenuesStored != 300 {
		t.Errorf("stored = %d/%d", res.UsersStored, res.VenuesStored)
	}
	if res.Relations == 0 {
		t.Error("no recent-check-in relations crawled")
	}
}

func TestRunE4StarbucksMap(t *testing.T) {
	lab := testLab(t)
	res := lab.RunE4()
	if res.Count < 100 {
		t.Errorf("Starbucks rows = %d, want >= 100", res.Count)
	}
	if res.Cities < 30 {
		t.Errorf("Starbucks cities = %d, want >= 30 (US-wide)", res.Cities)
	}
	// The scatter must span the continental US (roughly 25..49 lat,
	// -125..-66 lon) — that is the "shape of the United States".
	if res.Bounds.MinLon > -120 || res.Bounds.MaxLon < -75 ||
		res.Bounds.MinLat > 30 || res.Bounds.MaxLat < 45 {
		t.Errorf("bounds %+v do not span the continental US", res.Bounds)
	}
	if !strings.Contains(res.Plot, "*") {
		t.Error("plot empty")
	}
}

func TestRunE5VirtualTour(t *testing.T) {
	lab := testLab(t)
	res, err := lab.RunE5()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stops != 25 {
		t.Errorf("tour stops = %d, want 25 (Fig 3.5)", res.Stops)
	}
	if res.Denied != 0 {
		t.Errorf("tour denied %d stops; paper had zero detections", res.Denied)
	}
	if res.Accepted != res.Stops || res.Points == 0 {
		t.Errorf("accepted=%d points=%d", res.Accepted, res.Points)
	}
}

func TestRunE6Targets(t *testing.T) {
	lab := testLab(t)
	res, err := lab.RunE6()
	if err != nil {
		t.Fatal(err)
	}
	if res.OrphanSpecials == 0 {
		t.Error("no orphan specials found (E6 targets)")
	}
	if res.SuperMayorMayors != 865 || res.SuperMayorCheckins != 1265 {
		t.Errorf("super mayor = %d mayorships / %d check-ins, want 865/1265",
			res.SuperMayorMayors, res.SuperMayorCheckins)
	}
	if res.SuperMayorSoloShare < 0.9 {
		t.Errorf("super mayor solo share = %.2f, want >= 0.9 (most venues have no other visitors)",
			res.SuperMayorSoloShare)
	}
	if res.DenialTargets > 0 && res.DenialHeld == 0 {
		t.Error("denial attack took no mayorships from the victim")
	}
}

func TestRunE7E8E9(t *testing.T) {
	lab := testLab(t)
	e7 := lab.RunE7()
	if len(e7.Curve) == 0 || e7.Stat < 40 || e7.Stat > 250 {
		t.Errorf("E7 stat (avg recent for >500 total) = %.1f, want ~100", e7.Stat)
	}
	e8 := lab.RunE8()
	if len(e8.Curve) == 0 {
		t.Error("E8 curve empty")
	}
	if e8.Stat == 0 {
		t.Error("E8: no heavy users with <10 badges; caught cheaters missing")
	}
	m := lab.RunE9()
	if m.AtLeast5000 != 11 || m.Group5000WithMayors != 6 || m.Group5000WithoutMayors != 5 {
		t.Errorf("E9 top-user stats = %d (%d/%d), want 11 (6/5)",
			m.AtLeast5000, m.Group5000WithMayors, m.Group5000WithoutMayors)
	}
}

func TestRunE10Classifier(t *testing.T) {
	lab := testLab(t)
	res := lab.RunE10()
	if res.Suspects == 0 {
		t.Fatal("no suspects")
	}
	if res.Confusion.Recall() < 0.8 {
		t.Errorf("recall = %.2f", res.Confusion.Recall())
	}
	if res.CheaterPlot == "" || res.NormalPlot == "" {
		t.Error("example maps missing")
	}
	if res.CheaterCities <= res.NormalCities {
		t.Errorf("cheater cities %d <= normal cities %d", res.CheaterCities, res.NormalCities)
	}
}

func TestRunE11Defenses(t *testing.T) {
	lab := testLab(t)
	res := lab.RunE11()
	if len(res.Trials) != 3*len(res.Distances) {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	if !res.NextDoorDefaultAccepted {
		t.Error("next-door cheater should pass the default 100 m Wi-Fi range (§5.1)")
	}
	if res.NextDoorRestrictedAccepted {
		t.Error("next-door cheater should fail after DD-WRT range restriction")
	}
	if len(res.Traits) != 3 {
		t.Errorf("traits = %d", len(res.Traits))
	}
}

func TestRunE12AntiCrawl(t *testing.T) {
	lab := testLab(t)
	res, err := lab.RunE12(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 6 {
		t.Fatalf("variants = %d", len(res.Variants))
	}
	byName := make(map[string]E12Variant, len(res.Variants))
	for _, v := range res.Variants {
		byName[v.Defence] = v
	}
	if byName["open (baseline)"].Yield < 0.99 {
		t.Errorf("baseline yield = %.2f, want ~1.0", byName["open (baseline)"].Yield)
	}
	if byName["login wall"].Yield != 0 {
		t.Errorf("login wall yield = %.2f, want 0", byName["login wall"].Yield)
	}
	if byName["hashed profile URLs"].Yield != 0 {
		t.Errorf("hashed IDs yield = %.2f, want 0 (enumeration dead)", byName["hashed profile URLs"].Yield)
	}
	rl := byName["rate limit 60/min + block"]
	if rl.Yield >= byName["open (baseline)"].Yield {
		t.Errorf("rate limiting did not cut yield: %.2f", rl.Yield)
	}
	if res.ProxyBlocking.CollateralPerBlock <= res.NATBlocking.CollateralPerBlock {
		t.Error("proxy collateral should exceed NAT collateral per block")
	}
}

func TestAblationSpeedThreshold(t *testing.T) {
	rows := AblationSpeedThreshold([]float64{5, 15, 50, 1e9})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At 5 m/s the highway drive is a false positive; at 15 it is not;
	// at 1e9 even the teleport escapes.
	if !rows[0].DriveFlagged {
		t.Error("5 m/s limit should flag the highway drive")
	}
	if rows[1].DriveFlagged {
		t.Error("15 m/s limit should pass the highway drive")
	}
	if !rows[1].TeleportCaught {
		t.Error("15 m/s limit should catch the teleport")
	}
	if rows[3].TeleportCaught {
		t.Error("absurd limit should catch nothing")
	}
}

func TestDensestCityVenues(t *testing.T) {
	lab := testLab(t)
	city, views := lab.DensestCityVenues()
	if city == "" || len(views) < 50 {
		t.Errorf("densest city = %q with %d venues", city, len(views))
	}
}

func TestEnsureCrawlIdempotent(t *testing.T) {
	lab, err := NewLab(LabConfig{Scale: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	lab.ensureCrawl()
	u1, v1, _ := lab.DB.Counts()
	lab.ensureCrawl()
	u2, v2, _ := lab.DB.Counts()
	if u1 != u2 || v1 != v2 {
		t.Error("ensureCrawl not idempotent")
	}
	if u1 == 0 {
		t.Error("ensureCrawl filled nothing")
	}
}
