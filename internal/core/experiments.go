package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"locheat/internal/analysis"
	"locheat/internal/attack"
	"locheat/internal/cheatercode"
	"locheat/internal/crawler"
	"locheat/internal/defense"
	"locheat/internal/device"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/plot"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/synth"
	"locheat/internal/web"
)

// E1 — GPS spoofing defeats verification (Figs 3.1/3.2) -----------------

// E1VectorOutcome is one spoofing vector's result.
type E1VectorOutcome struct {
	Method   string
	Accepted bool
	Points   int
}

// E1Result reports the spoofing experiment.
type E1Result struct {
	Vectors []E1VectorOutcome
	// AdventurerAfterVenues is how many distinct spoofed venues it took
	// to earn the Adventurer badge (paper: 10).
	AdventurerAfterVenues int
	// MayorAfterDays is how many daily check-ins the attacker needed to
	// take the tourist-spot mayorship from a 3-day incumbent (paper: 4
	// consecutive days, confirmed mayor by day 9).
	MayorAfterDays int
}

// RunE1 executes the §3.1 experiment: an attacker "in Lincoln, NE"
// checks into San Francisco venues through all four vectors, collects
// the Adventurer badge, and takes a mayorship.
func (l *Lab) RunE1() (E1Result, error) {
	var res E1Result
	sf, _ := geo.FindCity("San Francisco")

	// Distinct SF venues for the spoofed check-ins.
	sfVenues := make([]lbsn.VenueView, 0, 16)
	for _, v := range l.World.Venues {
		if v.Seed.City == "San Francisco" {
			if view, ok := l.Service.Venue(lbsn.VenueID(v.Index + 1)); ok {
				sfVenues = append(sfVenues, view)
			}
			if len(sfVenues) >= 16 {
				break
			}
		}
	}
	if len(sfVenues) < 12 {
		return res, fmt.Errorf("e1: only %d San Francisco venues in world", len(sfVenues))
	}

	attacker := l.Service.RegisterUser("Mallory", "mallory", "Lincoln")

	// All four vectors, one distant venue each, paced 2 h apart.
	for i, method := range device.AllSpoofMethods() {
		v := sfVenues[i]
		out, err := device.SpoofedCheckin(method, l.Service, attacker, v.ID, v.Location)
		if err != nil {
			return res, fmt.Errorf("e1 vector %s: %w", method, err)
		}
		res.Vectors = append(res.Vectors, E1VectorOutcome{
			Method:   method.String(),
			Accepted: out.Accepted,
			Points:   out.PointsEarned,
		})
		l.Clock.Advance(2 * time.Hour)
	}

	// Keep checking into new venues until Adventurer appears.
	distinct := 4 // the four vector check-ins above
	for _, v := range sfVenues[4:] {
		out, err := device.SpoofedCheckin(device.SpoofEmulator, l.Service, attacker, v.ID, v.Location)
		if err != nil {
			return res, fmt.Errorf("e1 adventurer: %w", err)
		}
		distinct++
		l.Clock.Advance(2 * time.Hour)
		if containsString(out.NewBadges, "Adventurer") {
			res.AdventurerAfterVenues = distinct
			break
		}
	}

	// Mayorship of a fresh tourist venue against a 3-day incumbent.
	wharf, err := l.Service.AddVenue("Fisherman's Wharf Sign", "Pier 39", "San Francisco",
		sf.Center.Destination(0, 1200), nil)
	if err != nil {
		return res, fmt.Errorf("e1 wharf: %w", err)
	}
	wharfView, _ := l.Service.Venue(wharf)
	incumbent := l.Service.RegisterUser("Tourist", "", "San Francisco")
	for d := 0; d < 3; d++ {
		if _, err := l.Service.CheckIn(lbsn.CheckinRequest{
			UserID: incumbent, VenueID: wharf, Reported: wharfView.Location,
		}); err != nil {
			return res, fmt.Errorf("e1 incumbent day %d: %w", d, err)
		}
		l.Clock.Advance(24 * time.Hour)
	}
	for day := 1; day <= 10; day++ {
		out, err := device.SpoofedCheckin(device.SpoofEmulator, l.Service, attacker, wharf, wharfView.Location)
		if err != nil {
			return res, fmt.Errorf("e1 mayor day %d: %w", day, err)
		}
		l.Clock.Advance(24 * time.Hour)
		if out.BecameMayor {
			res.MayorAfterDays = day
			break
		}
	}
	return res, nil
}

// E2 — cheater-code rule boundary map (§2.3) ----------------------------

// E2Probe is one boundary probe.
type E2Probe struct {
	Rule       string
	Scenario   string
	Denied     bool
	WantDenied bool
}

// Pass reports whether the probe matched the paper's observation.
func (p E2Probe) Pass() bool { return p.Denied == p.WantDenied }

// RunE2 probes each reverse-engineered rule just inside and just
// outside its threshold.
func (l *Lab) RunE2() ([]E2Probe, error) {
	base := geo.Point{Lat: 35.08, Lon: -106.62}
	// A private probe service keeps rule state clean.
	svc := lbsn.New(lbsn.DefaultConfig(), l.Clock, nil)
	mkVenue := func(p geo.Point) lbsn.VenueID {
		id, err := svc.AddVenue("Probe", "", "Albuquerque", p, nil)
		if err != nil {
			panic(err) // static coordinates; cannot fail
		}
		return id
	}
	checkin := func(u lbsn.UserID, v lbsn.VenueID, p geo.Point) (bool, error) {
		res, err := svc.CheckIn(lbsn.CheckinRequest{UserID: u, VenueID: v, Reported: p})
		if err != nil {
			return false, err
		}
		return !res.Accepted, nil
	}
	var probes []E2Probe
	add := func(rule, scenario string, denied bool, want bool) {
		probes = append(probes, E2Probe{Rule: rule, Scenario: scenario, Denied: denied, WantDenied: want})
	}

	// Frequent check-in: 30 min denied, 60 min allowed.
	u := svc.RegisterUser("probe-frequent", "", "")
	v := mkVenue(base)
	if _, err := checkin(u, v, base); err != nil {
		return nil, err
	}
	l.Clock.Advance(30 * time.Minute)
	d, err := checkin(u, v, base)
	if err != nil {
		return nil, err
	}
	add("frequent-checkin", "same venue after 30 min", d, true)
	l.Clock.Advance(30 * time.Minute)
	d, err = checkin(u, v, base)
	if err != nil {
		return nil, err
	}
	add("frequent-checkin", "same venue after 60 min", d, false)

	// Super-human speed: 0.9 mi / 5 min allowed, 100 mi / 5 min denied.
	u2 := svc.RegisterUser("probe-speed", "", "")
	vA := mkVenue(base.Destination(0, 3000))
	vB := mkVenue(base.Destination(0, 3000).Destination(90, 0.9*geo.MetersPerMile))
	vC := mkVenue(base.Destination(0, 3000).Destination(90, 100*geo.MetersPerMile))
	pA, _ := svc.Venue(vA)
	pB, _ := svc.Venue(vB)
	pC, _ := svc.Venue(vC)
	if _, err := checkin(u2, vA, pA.Location); err != nil {
		return nil, err
	}
	l.Clock.Advance(5 * time.Minute)
	d, err = checkin(u2, vB, pB.Location)
	if err != nil {
		return nil, err
	}
	add("superhuman-speed", "0.9 miles in 5 minutes", d, false)
	l.Clock.Advance(5 * time.Minute)
	d, err = checkin(u2, vC, pC.Location)
	if err != nil {
		return nil, err
	}
	add("superhuman-speed", "100 miles in 5 minutes", d, true)

	// Rapid fire: 4th check-in in a 180 m square at 1-min cadence
	// denied; same venues at 5-min cadence allowed.
	runRapid := func(gap time.Duration) (bool, error) {
		user := svc.RegisterUser("probe-rapid", "", "")
		anchor := base.Destination(90, 40000) // clear of other probes
		denied := false
		for i := 0; i < 4; i++ {
			p := anchor.Destination(float64(i*90), 40)
			vid := mkVenue(p)
			dd, err := checkin(user, vid, p)
			if err != nil {
				return false, err
			}
			if i == 3 {
				denied = dd
			}
			l.Clock.Advance(gap)
		}
		return denied, nil
	}
	d, err = runRapid(time.Minute)
	if err != nil {
		return nil, err
	}
	add("rapid-fire", "4th check-in, 180 m square, 1-min cadence", d, true)
	d, err = runRapid(5 * time.Minute)
	if err != nil {
		return nil, err
	}
	add("rapid-fire", "4th check-in, 180 m square, 5-min cadence", d, false)

	return probes, nil
}

// E3 — crawler throughput (Fig 3.3, §3.2) --------------------------------

// E3Point is one worker-count measurement.
type E3Point struct {
	Workers      int
	Pages        int
	Elapsed      time.Duration
	PagesPerHour float64
}

// E3Result is the thread sweep plus a venue-mode measurement.
type E3Result struct {
	UserSweep    []E3Point
	VenuePoint   E3Point
	UsersStored  int
	VenuesStored int
	Relations    int
}

// RunE3 crawls the lab's website over HTTP with each worker count,
// measuring sustained page rates (the paper: ~100k user pages/hour at
// 14–16 threads/machine; ~50k venue pages/hour at 5–6). The site is
// served with a simulated 10 ms WAN round-trip so parallelism pays the
// way it did against the 2010 internet; without it, loopback latency
// is zero and extra workers only add contention.
func (l *Lab) RunE3(workerCounts []int, userPages, venuePages int) (E3Result, error) {
	var res E3Result
	site := web.NewServer(l.Service, l.Clock, web.WithLatency(10*time.Millisecond))
	wanLab := &Lab{Clock: l.Clock, World: l.World, Service: l.Service, Web: site}
	baseURL, shutdown, err := wanLab.ServeLocal()
	if err != nil {
		return res, err
	}
	defer func() { _ = shutdown() }()

	if userPages <= 0 || userPages > l.Service.UserCount() {
		userPages = l.Service.UserCount()
	}
	if venuePages <= 0 || venuePages > l.Service.VenueCount() {
		venuePages = l.Service.VenueCount()
	}

	var keep *store.DB
	for _, w := range workerCounts {
		db := store.New()
		c := crawler.New(crawler.Config{BaseURL: baseURL, Workers: w}, db)
		stats, err := c.Crawl(context.Background(), crawler.ModeUsers, 1, uint64(userPages))
		if err != nil {
			return res, fmt.Errorf("e3 users (%d workers): %w", w, err)
		}
		res.UserSweep = append(res.UserSweep, E3Point{
			Workers:      w,
			Pages:        stats.Fetched,
			Elapsed:      stats.Elapsed,
			PagesPerHour: stats.PagesPerHour(),
		})
		keep = db
	}
	// Venue crawl at the paper's 5-thread setting.
	if keep == nil {
		keep = store.New()
	}
	vc := crawler.New(crawler.Config{BaseURL: baseURL, Workers: 5}, keep)
	vstats, err := vc.Crawl(context.Background(), crawler.ModeVenues, 1, uint64(venuePages))
	if err != nil {
		return res, fmt.Errorf("e3 venues: %w", err)
	}
	res.VenuePoint = E3Point{
		Workers:      5,
		Pages:        vstats.Fetched,
		Elapsed:      vstats.Elapsed,
		PagesPerHour: vstats.PagesPerHour(),
	}
	keep.DeriveStats()
	res.UsersStored, res.VenuesStored, res.Relations = keep.Counts()
	// A live crawl that covered the whole world replaces the lab store
	// so downstream experiments run off real crawled data; a partial
	// measurement crawl must not starve them.
	if userPages == l.Service.UserCount() && venuePages == l.Service.VenueCount() {
		l.DB = keep
	}
	return res, nil
}

// E4 — Starbucks map (Fig 3.4) -------------------------------------------

// E4Result is the chain-map experiment.
type E4Result struct {
	Query  string
	Count  int
	Cities int
	Bounds geo.Rect
	Plot   string
}

// RunE4 issues the Fig 3.4 query over the crawl store and renders the
// scatter; the shape should trace the US territory.
func (l *Lab) RunE4() E4Result {
	l.ensureCrawl()
	rows := l.DB.VenuesByNameLike("Starbucks")
	pts := make([]geo.Point, len(rows))
	xys := make([]plot.XY, len(rows))
	for i, r := range rows {
		pts[i] = r.Location()
		xys[i] = plot.XY{X: r.Longitude, Y: r.Latitude}
	}
	bounds, _ := geo.BoundingRect(pts)
	return E4Result{
		Query:  `SELECT Longitude, Latitude FROM VenueInfo WHERE Name LIKE "%Starbucks%"`,
		Count:  len(rows),
		Cities: analysis.CityCount(pts, 0),
		Bounds: bounds,
		Plot:   plot.GeoScatter(xys, "Fig 3.4 — Starbucks branches crawled from the website"),
	}
}

// E5 — automated virtual tour (Fig 3.5, §3.3) -----------------------------

// E5Result is the tour experiment.
type E5Result struct {
	City     string
	Stops    int
	Accepted int
	Denied   int
	Points   int
	Badges   []string
	Plot     string
}

// RunE5 plans a right-turning 25-stop tour through the densest city's
// venue grid and executes it with spoofed GPS at the paper's pacing.
// The paper checked into 25 venues with zero detections.
func (l *Lab) RunE5() (E5Result, error) {
	var res E5Result
	city, views := l.DensestCityVenues()
	if len(views) < 30 {
		return res, fmt.Errorf("e5: densest city %q has only %d venues", city, len(views))
	}
	res.City = city
	// Start at the southwest-most venue, as in Fig 3.5.
	start := views[0].Location
	for _, v := range views[1:] {
		if v.Location.Lat+v.Location.Lon < start.Lat+start.Lon {
			start = v.Location
		}
	}
	venues, targets, err := attack.PlanTour(l.Service, start, attack.RightTurnTour(24, 450))
	if err != nil {
		return res, fmt.Errorf("e5 plan: %w", err)
	}
	user := l.Service.RegisterUser("Tour Cheater", "", "Lincoln")
	rep, err := attack.NewCheater(l.Service, user, l.Clock).
		Execute(attack.Plan(attack.DefaultPlannerConfig(), venues))
	if err != nil {
		return res, fmt.Errorf("e5 execute: %w", err)
	}
	res.Stops = len(venues)
	res.Accepted = rep.Accepted
	res.Denied = rep.Denied
	res.Points = rep.Points
	res.Badges = rep.Badges

	xys := make([]plot.XY, 0, len(venues)+len(targets))
	for _, v := range venues {
		xys = append(xys, plot.XY{X: v.Location.Lon, Y: v.Location.Lat})
	}
	res.Plot = plot.GeoScatter(xys, fmt.Sprintf("Fig 3.5 — cheating tour through %s (venues checked into)", city))
	_ = targets
	return res, nil
}

// E6 — venue-profile analysis targets (§3.4) -------------------------------

// E6Result is the target-analysis experiment.
type E6Result struct {
	OrphanSpecials int
	OpenSpecials   int
	WeaklyHeld     int

	SuperMayorID        uint64
	SuperMayorMayors    int
	SuperMayorCheckins  int
	SuperMayorSoloShare float64 // fraction of his venues with no other visitor

	DenialVictim  uint64
	DenialTargets int
	DenialHeld    int // venues taken from the victim
}

// RunE6 selects attack targets from the crawl and executes a
// mayorship-denial attack against a small victim.
func (l *Lab) RunE6() (E6Result, error) {
	l.ensureCrawl()
	var res E6Result
	res.OrphanSpecials = len(attack.OrphanSpecials(l.DB))
	res.OpenSpecials = len(attack.OpenSpecials(l.DB))
	res.WeaklyHeld = len(attack.WeaklyHeldSpecials(l.DB, 5))

	// The most-mayored user (the paper's 865/1265 case).
	users := l.DB.Users(func(u store.UserRow) bool { return u.TotalMayors > 0 })
	sort.Slice(users, func(i, j int) bool { return users[i].TotalMayors > users[j].TotalMayors })
	if len(users) > 0 {
		top := users[0]
		res.SuperMayorID = top.ID
		res.SuperMayorMayors = top.TotalMayors
		res.SuperMayorCheckins = top.TotalCheckins
		solo := 0
		venues := l.DB.Venues(func(v store.VenueRow) bool { return v.MayorID == top.ID })
		for _, v := range venues {
			if len(l.DB.VisitorsOf(v.ID)) <= 1 {
				solo++
			}
		}
		if len(venues) > 0 {
			res.SuperMayorSoloShare = float64(solo) / float64(len(venues))
		}
	}

	// Mayorship denial: pick a victim holding 1–5 mayorships.
	var victim store.UserRow
	for _, u := range users {
		if u.TotalMayors >= 1 && u.TotalMayors <= 5 {
			victim = u
			break
		}
	}
	if victim.ID == 0 {
		return res, nil // no suitable victim at this scale
	}
	res.DenialVictim = victim.ID
	targets := attack.VictimMayorships(l.DB, victim.ID)
	views := attack.TargetsToVenueViews(l.Service, targets)
	res.DenialTargets = len(views)
	attacker := l.Service.RegisterUser("Denial Attacker", "", "Lincoln")
	_, held, err := attack.NewCheater(l.Service, attacker, l.Clock).
		MayorshipCampaign(attack.DefaultPlannerConfig(), views, 2)
	if err != nil {
		return res, fmt.Errorf("e6 denial campaign: %w", err)
	}
	res.DenialHeld = held
	return res, nil
}

// E7/E8 — aggregate curves (Figs 4.1/4.2) ----------------------------------

// CurveResult packages an aggregate curve with its rendering.
type CurveResult struct {
	Curve []analysis.CurvePoint
	Plot  string
	// Stat is the figure's headline number: for E7 the average recent
	// check-ins of users with >500 total (paper: ~100); for E8 the
	// count of ≥1000-check-in users with <10 badges (paper: "many").
	Stat float64
}

// RunE7 computes the Fig 4.1 curve.
func (l *Lab) RunE7() CurveResult {
	l.ensureCrawl()
	curve := analysis.RecentVsTotal(l.DB, 2000, 50)
	xys := curveXY(curve)
	// The headline number reads the plateau of the curve (the paper:
	// "around 100 recent check-ins ... if the user did more than 500
	// check-ins total"); the (500,1000] band excludes the cheater
	// spikes above 1000 that Fig 4.1 shows as outliers.
	var sum float64
	var n int
	for _, u := range l.DB.Users(func(u store.UserRow) bool { return u.TotalCheckins > 500 && u.TotalCheckins <= 1000 }) {
		sum += float64(u.RecentCheckins)
		n++
	}
	stat := 0.0
	if n > 0 {
		stat = sum / float64(n)
	}
	return CurveResult{
		Curve: curve,
		Plot:  plot.Line(xys, 50, "Fig 4.1 — avg recent check-ins vs total check-ins", "total", "avg recent"),
		Stat:  stat,
	}
}

// RunE8 computes the Fig 4.2 curve.
func (l *Lab) RunE8() CurveResult {
	l.ensureCrawl()
	curve := analysis.BadgesVsTotal(l.DB, 14000, 250)
	lowReward := l.DB.Users(func(u store.UserRow) bool {
		return u.TotalCheckins > 1000 && u.TotalBadges < 10
	})
	return CurveResult{
		Curve: curve,
		Plot:  plot.Line(curveXY(curve), 50, "Fig 4.2 — avg badges vs total check-ins", "total", "avg badges"),
		Stat:  float64(len(lowReward)),
	}
}

// RunE9 computes the §4.2 population marginals.
func (l *Lab) RunE9() analysis.Marginals {
	l.ensureCrawl()
	return analysis.ComputeMarginals(l.DB)
}

// E10 — suspicious check-in patterns + classifier (Figs 4.3/4.4) -----------

// E10Result is the classifier experiment.
type E10Result struct {
	Suspects  int
	Confusion analysis.Confusion
	// Example maps, as the paper shows one cheater and one normal user.
	CheaterPlot                 string
	NormalPlot                  string
	CheaterCities, NormalCities int
}

// RunE10 runs the three-factor classifier over the crawl and scores it
// against the world's ground truth.
func (l *Lab) RunE10() E10Result {
	l.ensureCrawl()
	suspects := analysis.Classify(l.DB, analysis.DefaultClassifierConfig())
	conf := analysis.Evaluate(suspects, len(l.World.Users), func(id uint64) bool {
		c, ok := l.World.TrueClass(lbsn.UserID(id))
		return ok && c.Cheating()
	})
	res := E10Result{Suspects: len(suspects), Confusion: conf}

	// Render one uncaught cheater's and one busy normal user's maps.
	for i, u := range l.World.Users {
		id := uint64(i + 1)
		switch {
		case u.Class == synth.ClassCheater && res.CheaterPlot == "":
			pts := analysis.CheckinPoints(l.DB, id)
			res.CheaterCities = analysis.CityCount(pts, 0)
			res.CheaterPlot = plot.GeoScatter(geoXY(pts),
				fmt.Sprintf("Fig 4.3 — check-in locations of a suspected cheater (user %d, %d cities)", id, res.CheaterCities))
		case u.Class == synth.ClassActive && len(u.RecentVenues) >= 40 && res.NormalPlot == "":
			pts := analysis.CheckinPoints(l.DB, id)
			res.NormalCities = analysis.CityCount(pts, 0)
			res.NormalPlot = plot.GeoScatter(geoXY(pts),
				fmt.Sprintf("Fig 4.4 — check-in locations of a normal user (user %d, %d cities)", id, res.NormalCities))
		}
		if res.CheaterPlot != "" && res.NormalPlot != "" {
			break
		}
	}
	return res
}

// E11 — defence comparison (§5.1) ------------------------------------------

// E11Result is the verification comparison.
type E11Result struct {
	Distances []float64
	Trials    []defense.TrialResult
	Traits    map[string]defense.Characteristics
	// NextDoor captures the Wendy's case: accepted at 100 m range,
	// rejected after the DD-WRT restriction.
	NextDoorDefaultAccepted    bool
	NextDoorRestrictedAccepted bool
	// Rapid-bit protocol: the theoretical and measured false-accept
	// rates of the n-round distance-bounding exchange ([12]-[14]).
	RapidBitRounds        int
	RapidBitTheoryFA      float64
	RapidBitMeasuredFA2Rd float64 // measured at 2 rounds, where it is visible
}

// RunE11 sweeps attacker distances across the three verifiers.
func (l *Lab) RunE11() E11Result {
	venue := geo.Point{Lat: 37.7749, Lon: -122.4194}
	wifi := defense.NewWiFiVerification()
	wifi.RegisterRouter(venue, 100)
	verifiers := []defense.Verifier{
		&defense.DistanceBounding{},
		defense.NewAddressMapping(),
		wifi,
	}
	distances := []float64{10, 50, 100, 1000, 10000, 1000000}
	res := E11Result{
		Distances: distances,
		Trials:    defense.CompareAtDistances(verifiers, venue, distances),
		Traits:    make(map[string]defense.Characteristics, len(verifiers)),
	}
	for _, v := range verifiers {
		res.Traits[v.Name()] = v.Characteristics()
	}
	// The Wendy's-next-door case.
	cheater := defense.Device{TrueLocation: venue.Destination(90, 50)}
	res.NextDoorDefaultAccepted = wifi.Verify(venue, cheater).Accepted
	restricted := defense.NewWiFiVerification()
	restricted.RegisterRouter(venue, 30)
	res.NextDoorRestrictedAccepted = restricted.Verify(venue, cheater).Accepted

	// Rapid-bit distance bounding.
	strong := defense.RapidBitConfig{Rounds: 20}
	res.RapidBitRounds = strong.Rounds
	res.RapidBitTheoryFA = strong.FalseAcceptProbability()
	res.RapidBitMeasuredFA2Rd = defense.MeasureFalseAcceptRate(defense.RapidBitConfig{Rounds: 2}, 10000, 11)
	return res
}

// E12 — anti-crawl mitigation (§5.2) ----------------------------------------

// E12Variant is one defended-site crawl outcome.
type E12Variant struct {
	Defence string
	Parsed  int
	Denied  int
	Yield   float64 // parsed / attempted
}

// E12Result compares crawl yield across defences.
type E12Result struct {
	Variants []E12Variant
	// NAT vs proxy blocking collateral (Casado & Freedman).
	NATBlocking   defense.BlockingOutcome
	ProxyBlocking defense.BlockingOutcome
}

// RunE12 re-serves the same world behind each §5.2 defence and crawls
// it with the same budget.
func (l *Lab) RunE12(pages int) (E12Result, error) {
	var res E12Result
	if pages <= 0 || pages > l.Service.UserCount() {
		pages = l.Service.UserCount()
	}
	variants := []struct {
		name string
		opts []web.Option
	}{
		{name: "open (baseline)"},
		{name: "login wall", opts: []web.Option{web.WithLoginWall()}},
		{name: "rate limit 60/min + block", opts: []web.Option{web.WithRateLimit(60, 2)}},
		{name: "hashed profile URLs", opts: []web.Option{web.WithHashedIDs("pepper")}},
		{name: "hashed visitor IDs only", opts: []web.Option{web.WithHashedVisitorIDs("pepper")}},
		{name: "who's-been-here removed", opts: []web.Option{web.WithoutWhosBeenHere()}},
	}
	for _, variant := range variants {
		site := web.NewServer(l.Service, l.Clock, variant.opts...)
		lab := &Lab{Clock: l.Clock, World: l.World, Service: l.Service, Web: site}
		baseURL, shutdown, err := lab.ServeLocal()
		if err != nil {
			return res, err
		}
		db := store.New()
		c := crawler.New(crawler.Config{BaseURL: baseURL, Workers: 8}, db)
		stats, err := c.Crawl(context.Background(), crawler.ModeUsers, 1, uint64(pages))
		if errS := shutdown(); errS != nil && err == nil {
			err = errS
		}
		if err != nil {
			return res, fmt.Errorf("e12 %s: %w", variant.name, err)
		}
		yield := 0.0
		if stats.Attempted > 0 {
			yield = float64(stats.Parsed) / float64(stats.Attempted)
		}
		res.Variants = append(res.Variants, E12Variant{
			Defence: variant.name,
			Parsed:  stats.Parsed,
			Denied:  stats.Denied,
			Yield:   yield,
		})
	}
	res.NATBlocking = defense.SimulateIPBlocking(10, 3, 0, 0)
	res.ProxyBlocking = defense.SimulateIPBlocking(0, 0, 10, 300)
	return res, nil
}

// E13 — privacy leakage (§6.2.1, the paper's future-work direction) ----------

// E13Result is the privacy-leak experiment.
type E13Result struct {
	Report analysis.PrivacyReport
	// SampleUser is one exposed user with their reconstructed history
	// length and inferred vs actual home city.
	SampleUser     uint64
	SampleInferred string
	SampleActual   string
	SampleVenues   int
}

// RunE13 reconstructs per-user location histories from the crawl
// (§6.2.1: "after we crawled webpages for all venues, we built a
// personal location history for each user") and measures how often the
// inferred home city matches the profile.
func (l *Lab) RunE13() E13Result {
	l.ensureCrawl()
	res := E13Result{Report: analysis.ComputePrivacyReport(l.DB)}
	for _, u := range l.DB.Users(func(u store.UserRow) bool { return u.RecentCheckins >= 20 }) {
		if inf, ok := analysis.InferHomeCity(l.DB, u.ID); ok {
			res.SampleUser = u.ID
			res.SampleInferred = inf.InferredCity
			res.SampleActual = u.HomeCity
			res.SampleVenues = inf.RecentVenues
			break
		}
	}
	return res
}

// SweepClassifierThresholds runs the detection-threshold ablation over
// the lab's crawl against ground truth.
func (l *Lab) SweepClassifierThresholds() []analysis.SweepPoint {
	l.ensureCrawl()
	oracle := func(id uint64) bool {
		c, ok := l.World.TrueClass(lbsn.UserID(id))
		return ok && c.Cheating()
	}
	return analysis.SweepClassifier(l.DB, len(l.World.Users), oracle,
		[]int{5, 10, 20}, []float64{0.2, 0.35, 0.6})
}

// AblateDetectionFactors scores each §4 factor in isolation against
// ground truth — the complementarity ablation.
func (l *Lab) AblateDetectionFactors() []analysis.FactorResult {
	l.ensureCrawl()
	oracle := func(id uint64) bool {
		c, ok := l.World.TrueClass(lbsn.UserID(id))
		return ok && c.Cheating()
	}
	return analysis.AblateFactors(l.DB, len(l.World.Users), oracle)
}

// Helpers --------------------------------------------------------------------

// ensureCrawl lazily fills the store with the perfect crawl when no
// live crawl has populated it.
func (l *Lab) ensureCrawl() {
	if u, v, _ := l.DB.Counts(); u == 0 && v == 0 {
		l.PerfectCrawl()
	}
}

func curveXY(curve []analysis.CurvePoint) []plot.XY {
	out := make([]plot.XY, len(curve))
	for i, p := range curve {
		out[i] = plot.XY{X: float64(p.X), Y: p.AvgY}
	}
	return out
}

func geoXY(pts []geo.Point) []plot.XY {
	out := make([]plot.XY, len(pts))
	for i, p := range pts {
		out[i] = plot.XY{X: p.Lon, Y: p.Lat}
	}
	return out
}

func containsString(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// AblationSpeedThreshold measures the cheater-code speed rule's
// detection/false-positive trade-off: it replays a spoofed
// cross-country teleport and a legitimate highway drive against
// detectors with varying speed limits. Returns (teleportCaught,
// driveFlagged) per threshold — the DESIGN.md ablation.
func AblationSpeedThreshold(limits []float64) []struct {
	LimitMps       float64
	TeleportCaught bool
	DriveFlagged   bool
} {
	abq, _ := geo.FindCity("Albuquerque")
	sf, _ := geo.FindCity("San Francisco")
	out := make([]struct {
		LimitMps       float64
		TeleportCaught bool
		DriveFlagged   bool
	}, 0, len(limits))
	for _, lim := range limits {
		det := cheatercode.NewDetectorWithRules(16, cheatercode.SuperhumanSpeedRule{MaxSpeed: lim})
		t0 := simclock.Epoch()
		// Teleport: ABQ -> SF in 10 minutes.
		_ = det.Check(cheatercode.Observation{UserID: 1, VenueID: 1, At: t0, Location: abq.Center})
		vTele := det.Check(cheatercode.Observation{UserID: 1, VenueID: 2, At: t0.Add(10 * time.Minute), Location: sf.Center})
		// Drive: 15 miles in 30 minutes (~13 m/s, city driving).
		_ = det.Check(cheatercode.Observation{UserID: 2, VenueID: 3, At: t0, Location: abq.Center})
		drive := abq.Center.Destination(90, 15*geo.MetersPerMile)
		vDrive := det.Check(cheatercode.Observation{UserID: 2, VenueID: 4, At: t0.Add(30 * time.Minute), Location: drive})
		out = append(out, struct {
			LimitMps       float64
			TeleportCaught bool
			DriveFlagged   bool
		}{LimitMps: lim, TeleportCaught: vTele != nil, DriveFlagged: vDrive != nil})
	}
	return out
}
