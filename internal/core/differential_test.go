package core

import "testing"

func TestSnapshotServiceMatchesWorld(t *testing.T) {
	lab, err := NewLab(LabConfig{Scale: 0.02, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	db := lab.SnapshotService()
	users, venues, relations := db.Counts()
	if users != lab.Service.UserCount() || venues != lab.Service.VenueCount() {
		t.Fatalf("snapshot = %d/%d, service = %d/%d",
			users, venues, lab.Service.UserCount(), lab.Service.VenueCount())
	}
	if relations == 0 {
		t.Error("snapshot has no recent relations")
	}
	// Spot-check a row.
	u, ok := db.User(1)
	if !ok {
		t.Fatal("user 1 missing from snapshot")
	}
	view, _ := lab.Service.User(1)
	if u.TotalCheckins != view.TotalCheckins || u.Name != view.Name {
		t.Errorf("snapshot row %+v vs service %+v", u, view)
	}
}

func TestRunE14DifferentialCrawl(t *testing.T) {
	lab, err := NewLab(LabConfig{Scale: 0.05, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	res, err := lab.RunE14(2, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrafficAccepted == 0 {
		t.Fatal("no accepted traffic generated")
	}
	if res.NewRelations == 0 {
		t.Error("diff saw no new recent-list appearances")
	}
	if res.CheckinDeltas == 0 {
		t.Error("diff saw no total-check-in movement")
	}
	if len(res.HyperactiveUsers) == 0 {
		t.Fatal("no hyperactive users detected; cheater traffic missing")
	}
	if res.CheaterHitRate < 0.7 {
		t.Errorf("hyperactive hit rate = %.2f, want >= 0.7 (mostly cheaters)", res.CheaterHitRate)
	}
}

func TestRunE14Defaults(t *testing.T) {
	lab, err := NewLab(LabConfig{Scale: 0.02, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	res, err := lab.RunE14(0, 0, 0) // all defaulted
	if err != nil {
		t.Fatal(err)
	}
	if res.Days != 3 {
		t.Errorf("defaulted days = %d, want 3", res.Days)
	}
}
