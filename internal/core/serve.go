package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// ServeLocal exposes the lab's profile website on a loopback port and
// returns its base URL plus a shutdown function. The crawler
// experiments (E3, E12) attack the site over real HTTP, as the paper's
// crawler did.
func (l *Lab) ServeLocal() (baseURL string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("serve lab site: %w", err)
	}
	srv := &http.Server{Handler: l.Web}
	done := make(chan error, 1)
	go func() {
		e := srv.Serve(ln)
		if errors.Is(e, http.ErrServerClosed) {
			e = nil
		}
		done <- e
	}()
	shutdown = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if e := srv.Shutdown(ctx); e != nil {
			// Graceful drain stalled (slow host, lingering keep-alive);
			// force-close. The experiment's work is already done — a
			// stubborn connection is not a result-affecting failure.
			if errors.Is(e, context.DeadlineExceeded) {
				_ = srv.Close()
				<-done
				return nil
			}
			return e
		}
		return <-done
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
