// Package core is the public façade of the reproduction: a Lab bundles
// the synthetic world, the LBSN service, the profile website and a
// crawl store, and exposes one runner per paper experiment (E1–E12,
// indexed in DESIGN.md). cmd/experiments and the examples drive
// everything through this package.
package core

import (
	"fmt"

	"locheat/internal/cheatercode"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/synth"
	"locheat/internal/web"
)

// LabConfig sizes a lab. Scale 1.0 is the laptop default (20k users /
// 60k venues); the paper's population was ~95× that.
type LabConfig struct {
	Scale float64
	Seed  int64
	// WebOptions configures defences on the profile site.
	WebOptions []web.Option
	// Lbsn overrides the service policy; zero value = defaults.
	Lbsn lbsn.Config
	// Cheater overrides the rule thresholds; zero value = defaults.
	Cheater cheatercode.Config
}

// Lab is a fully wired experiment environment.
type Lab struct {
	Clock   *simclock.Simulated
	World   *synth.World
	Service *lbsn.Service
	Web     *web.Server
	DB      *store.DB // filled by FillStore (perfect crawl) or a live crawl
}

// NewLab builds a lab: generate the world, load it into a fresh
// service on a simulated clock, and mount the profile website.
func NewLab(cfg LabConfig) (*Lab, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	users := int(20000 * cfg.Scale)
	if users < 200 {
		users = 200
	}
	world := synth.Generate(synth.Config{
		Seed:   cfg.Seed,
		Users:  users,
		Venues: users * 3,
	})
	clock := simclock.NewSimulated(simclock.Epoch())

	svcCfg := cfg.Lbsn
	if svcCfg.GPSVerifyRadiusMeters == 0 {
		svcCfg = lbsn.DefaultConfig()
	}
	var detector *cheatercode.Detector
	if cfg.Cheater.RapidFireCount != 0 {
		detector = cheatercode.NewDetector(cfg.Cheater)
	}
	svc := lbsn.New(svcCfg, clock, detector)
	if err := world.LoadInto(svc); err != nil {
		return nil, fmt.Errorf("new lab: %w", err)
	}
	return &Lab{
		Clock:   clock,
		World:   world,
		Service: svc,
		Web:     web.NewServer(svc, clock, cfg.WebOptions...),
		DB:      store.New(),
	}, nil
}

// PerfectCrawl fills the lab's store with the loss-free crawl of the
// world — what the multi-threaded crawler recovers given enough time.
// Experiments that study crawl *content* use this; E3/E12 study the
// crawl *process* and run the real crawler over HTTP instead.
func (l *Lab) PerfectCrawl() {
	l.World.FillStore(l.DB)
}

// DensestCityVenues returns the venue views of the city with the most
// venues — the urban grid used for tour experiments when Albuquerque
// at small scale is too sparse.
func (l *Lab) DensestCityVenues() (string, []lbsn.VenueView) {
	counts := make(map[int]int)
	for _, v := range l.World.Venues {
		counts[v.City]++
	}
	best, bestN := -1, 0
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	if best < 0 {
		return "", nil
	}
	name := l.World.Cities[best].Name
	var views []lbsn.VenueView
	for _, v := range l.World.Venues {
		if v.City == best {
			if view, ok := l.Service.Venue(lbsn.VenueID(v.Index + 1)); ok {
				views = append(views, view)
			}
		}
	}
	return name, views
}
