// Package simclock provides the virtual clock that lets multi-day
// experiments (mayorship takes 4+ days of daily check-ins, the 60-day
// mayorship window, hour-scale cheater-code rules) run in
// milliseconds. Every time-dependent component in this repository
// takes a Clock instead of calling time.Now directly, per the
// avoid-mutable-globals guideline.
package simclock

import (
	"sync"
	"time"
)

// Clock is the minimal time source the services need.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Simulated is a manually advanced clock. It is safe for concurrent
// use; the crawler and web server share one instance across
// goroutines in the integration tests.
type Simulated struct {
	mu  sync.RWMutex
	now time.Time
}

var _ Clock = (*Simulated)(nil)

// NewSimulated returns a clock frozen at start.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start}
}

// Epoch is the default experiment start instant: August 2010, the
// month the paper's crawl snapshot was taken.
func Epoch() time.Time {
	return time.Date(2010, time.August, 1, 8, 0, 0, 0, time.UTC)
}

// Now returns the current simulated instant.
func (s *Simulated) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Advance moves the clock forward by d. Negative durations are
// ignored: simulated time never runs backwards.
func (s *Simulated) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = s.now.Add(d)
}

// AdvanceTo moves the clock to t if t is in the future; earlier
// instants are ignored.
func (s *Simulated) AdvanceTo(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.After(s.now) {
		s.now = t
	}
}

// SlideWindow appends at to hist after dropping the leading entries
// that have fallen out of the window relative to at (strictly older
// than at-window). It is the shared idiom for per-user sliding-window
// counters keyed off event time: the stream rate throttle and the
// quarantine policy both prune with it, so the out-of-order and
// boundary semantics stay identical. The backing array is reused.
func SlideWindow(hist []time.Time, at time.Time, window time.Duration) []time.Time {
	cut := 0
	for cut < len(hist) && at.Sub(hist[cut]) > window {
		cut++
	}
	if cut > 0 {
		// Compact to the FRONT of the backing array rather than
		// re-slicing past the expired prefix: hist[cut:] would march
		// the slice toward the end of its allocation until cap runs
		// out and every append reallocates — one allocation per event
		// for a user whose entries always expire between claims.
		n := copy(hist, hist[cut:])
		hist = hist[:n]
	}
	return append(hist, at)
}

// Sleeper extends Clock with a Sleep that, on a simulated clock,
// advances virtual time instead of blocking. The attack scheduler uses
// it to "wait" the 5-minute inter-check-in interval instantly.
type Sleeper interface {
	Clock
	Sleep(d time.Duration)
}

// Sleep advances the simulated clock; it never blocks.
func (s *Simulated) Sleep(d time.Duration) { s.Advance(d) }

var _ Sleeper = (*Simulated)(nil)

// RealSleeper adapts Real into a Sleeper that actually blocks.
type RealSleeper struct{ Real }

var _ Sleeper = RealSleeper{}

// Sleep blocks for d.
func (RealSleeper) Sleep(d time.Duration) { time.Sleep(d) }

// ScaledSleeper is a Sleeper that compresses virtual time onto the
// wall clock: Sleep(d) blocks d/Factor of real time while Now advances
// by the full d. The load harness uses it to replay multi-day attack
// schedules (5-minute §3.3 cooldowns, day-long mayorship campaigns)
// against a live cluster in seconds — the same models, the same waits,
// just a faster metronome. Safe for concurrent use; each goroutine
// pacing its own schedule should own its own instance, since Now is a
// single shared virtual cursor.
type ScaledSleeper struct {
	// Factor is how many virtual seconds pass per wall second (e.g.
	// 600: a 5-minute wait blocks 500ms). Values <= 0 behave as 1.
	Factor float64

	mu  sync.Mutex
	now time.Time
}

var _ Sleeper = (*ScaledSleeper)(nil)

// NewScaledSleeper returns a scaled sleeper starting its virtual clock
// at start.
func NewScaledSleeper(start time.Time, factor float64) *ScaledSleeper {
	return &ScaledSleeper{Factor: factor, now: start}
}

// Now returns the current virtual instant.
func (s *ScaledSleeper) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep blocks d/Factor of wall time and advances the virtual clock
// by d.
func (s *ScaledSleeper) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	f := s.Factor
	if f <= 0 {
		f = 1
	}
	time.Sleep(time.Duration(float64(d) / f))
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}
