package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimulatedAdvance(t *testing.T) {
	start := Epoch()
	c := NewSimulated(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.Advance(time.Hour)
	if got, want := c.Now(), start.Add(time.Hour); !got.Equal(want) {
		t.Errorf("after Advance(1h): Now = %v, want %v", got, want)
	}
}

func TestSimulatedAdvanceNegativeIgnored(t *testing.T) {
	c := NewSimulated(Epoch())
	c.Advance(-time.Hour)
	if !c.Now().Equal(Epoch()) {
		t.Errorf("negative Advance moved the clock to %v", c.Now())
	}
}

func TestSimulatedAdvanceTo(t *testing.T) {
	c := NewSimulated(Epoch())
	future := Epoch().Add(48 * time.Hour)
	c.AdvanceTo(future)
	if !c.Now().Equal(future) {
		t.Errorf("AdvanceTo future: Now = %v, want %v", c.Now(), future)
	}
	c.AdvanceTo(Epoch()) // past: ignored
	if !c.Now().Equal(future) {
		t.Errorf("AdvanceTo past moved clock backwards to %v", c.Now())
	}
}

func TestSimulatedSleepAdvances(t *testing.T) {
	c := NewSimulated(Epoch())
	begin := time.Now()
	c.Sleep(5 * time.Minute)
	if wall := time.Since(begin); wall > time.Second {
		t.Errorf("simulated Sleep blocked for %v", wall)
	}
	if got, want := c.Now(), Epoch().Add(5*time.Minute); !got.Equal(want) {
		t.Errorf("after Sleep: Now = %v, want %v", got, want)
	}
}

func TestSimulatedConcurrentAdvance(t *testing.T) {
	c := NewSimulated(Epoch())
	var wg sync.WaitGroup
	const workers = 8
	const steps = 100
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < steps; j++ {
				c.Advance(time.Second)
				_ = c.Now()
			}
		}()
	}
	wg.Wait()
	want := Epoch().Add(workers * steps * time.Second)
	if !c.Now().Equal(want) {
		t.Errorf("concurrent advance: Now = %v, want %v", c.Now(), want)
	}
}

func TestRealClock(t *testing.T) {
	before := time.Now()
	got := Real{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Real.Now %v outside [%v, %v]", got, before, after)
	}
}

func TestRealSleeper(t *testing.T) {
	s := RealSleeper{}
	begin := time.Now()
	s.Sleep(10 * time.Millisecond)
	if wall := time.Since(begin); wall < 10*time.Millisecond {
		t.Errorf("RealSleeper.Sleep returned after %v, want >= 10ms", wall)
	}
}

func TestEpochIsAugust2010(t *testing.T) {
	e := Epoch()
	if e.Year() != 2010 || e.Month() != time.August {
		t.Errorf("Epoch = %v, want August 2010 (the crawl snapshot month)", e)
	}
}

func TestSlideWindow(t *testing.T) {
	t0 := Epoch()
	var hist []time.Time
	// Build up within the window.
	for i := 0; i < 3; i++ {
		hist = SlideWindow(hist, t0.Add(time.Duration(i)*time.Minute), 10*time.Minute)
	}
	if len(hist) != 3 {
		t.Fatalf("len %d, want 3", len(hist))
	}
	// An entry exactly window-old stays (boundary is strict).
	hist = SlideWindow(hist, t0.Add(10*time.Minute), 10*time.Minute)
	if len(hist) != 4 || !hist[0].Equal(t0) {
		t.Fatalf("boundary entry dropped: %v", hist)
	}
	// A later event slides the oldest two out.
	hist = SlideWindow(hist, t0.Add(11*time.Minute+time.Second), 10*time.Minute)
	if len(hist) != 3 || !hist[0].Equal(t0.Add(2*time.Minute)) {
		t.Fatalf("stale entries retained: %v", hist)
	}
}
