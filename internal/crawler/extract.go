// Package crawler reproduces the paper's multi-threaded profile
// crawler (§3.2, Appendix A): a worker pool sweeps the incrementing
// numeric IDs in profile URLs, fetches the HTML over HTTP, and
// extracts fields with regular expressions — the same technique as the
// original ("we let the crawler perform a set of regular expression
// matches") — storing rows into the store.DB tables of Fig 3.3.
package crawler

import (
	"fmt"
	"regexp"
	"strconv"

	"locheat/internal/store"
)

// Page-field extraction patterns. The original crawler matched the
// live site's markup; these match internal/web's markup, which plays
// the role of foursquare.com in this reproduction.
var (
	reUserName     = regexp.MustCompile(`<h1 class="user-name">([^<]*)</h1>`)
	reUserUsername = regexp.MustCompile(`<span class="user-username">([^<]*)</span>`)
	reHomeCity     = regexp.MustCompile(`<span class="home-city">([^<]*)</span>`)
	reStatCheckins = regexp.MustCompile(`<span class="stat-checkins">(\d+)</span>`)
	reStatBadges   = regexp.MustCompile(`<span class="stat-badges">(\d+)</span>`)
	reStatPoints   = regexp.MustCompile(`<span class="stat-points">(\d+)</span>`)
	reStatFriends  = regexp.MustCompile(`<span class="stat-friends">(\d+)</span>`)

	reVenueName      = regexp.MustCompile(`<h1 class="venue-name">([^<]*)</h1>`)
	reVenueAddress   = regexp.MustCompile(`<span class="venue-address">([^<]*)</span>`)
	reVenueCity      = regexp.MustCompile(`<span class="venue-city">([^<]*)</span>`)
	reGeoLat         = regexp.MustCompile(`<span class="geo-lat">(-?\d+\.\d+)</span>`)
	reGeoLon         = regexp.MustCompile(`<span class="geo-lon">(-?\d+\.\d+)</span>`)
	reCheckinsHere   = regexp.MustCompile(`<span class="stat-checkins-here">(\d+)</span>`)
	reUniqueVisitors = regexp.MustCompile(`<span class="stat-unique-visitors">(\d+)</span>`)
	reMayorLink      = regexp.MustCompile(`<a class="mayor" href="/user/(\d+)"`)
	reSpecial        = regexp.MustCompile(`<div class="special( mayor-only)?">([^<]*)</div>`)
	reVisitorLink    = regexp.MustCompile(`<a class="visitor" href="/user/(\d+)"`)
)

// ParseUserPage extracts a UserInfo row from user-profile HTML. The
// returned error reports a page whose markup doesn't carry the
// expected fields (site changed or defence active).
func ParseUserPage(id uint64, html string) (store.UserRow, error) {
	name := reUserName.FindStringSubmatch(html)
	if name == nil {
		return store.UserRow{}, fmt.Errorf("user page %d: no user-name field", id)
	}
	row := store.UserRow{ID: id, Name: name[1]}
	if m := reUserUsername.FindStringSubmatch(html); m != nil {
		row.UserName = m[1]
	}
	if m := reHomeCity.FindStringSubmatch(html); m != nil {
		row.HomeCity = m[1]
	}
	var err error
	if row.TotalCheckins, err = extractInt(reStatCheckins, html); err != nil {
		return store.UserRow{}, fmt.Errorf("user page %d: %w", id, err)
	}
	row.TotalBadges, _ = extractInt(reStatBadges, html)
	row.Points, _ = extractInt(reStatPoints, html)
	row.Friends, _ = extractInt(reStatFriends, html)
	return row, nil
}

// VenuePage is the parse result for a venue profile: the VenueInfo row
// plus the recent-visitor user IDs feeding the RecentCheckins table.
type VenuePage struct {
	Row      store.VenueRow
	Visitors []uint64
}

// ParseVenuePage extracts a VenueInfo row and visitor list from
// venue-profile HTML.
func ParseVenuePage(id uint64, html string) (VenuePage, error) {
	name := reVenueName.FindStringSubmatch(html)
	if name == nil {
		return VenuePage{}, fmt.Errorf("venue page %d: no venue-name field", id)
	}
	row := store.VenueRow{ID: id, Name: name[1]}
	if m := reVenueAddress.FindStringSubmatch(html); m != nil {
		row.Address = m[1]
	}
	if m := reVenueCity.FindStringSubmatch(html); m != nil {
		row.City = m[1]
	}
	lat := reGeoLat.FindStringSubmatch(html)
	lon := reGeoLon.FindStringSubmatch(html)
	if lat == nil || lon == nil {
		return VenuePage{}, fmt.Errorf("venue page %d: no coordinates", id)
	}
	var err error
	if row.Latitude, err = strconv.ParseFloat(lat[1], 64); err != nil {
		return VenuePage{}, fmt.Errorf("venue page %d: bad latitude: %w", id, err)
	}
	if row.Longitude, err = strconv.ParseFloat(lon[1], 64); err != nil {
		return VenuePage{}, fmt.Errorf("venue page %d: bad longitude: %w", id, err)
	}
	row.CheckinsHere, _ = extractInt(reCheckinsHere, html)
	row.UniqueVisitors, _ = extractInt(reUniqueVisitors, html)
	if m := reMayorLink.FindStringSubmatch(html); m != nil {
		row.MayorID, _ = strconv.ParseUint(m[1], 10, 64)
	}
	if m := reSpecial.FindStringSubmatch(html); m != nil {
		row.SpecialMayor = m[1] != ""
		row.Special = m[2]
	}
	page := VenuePage{Row: row}
	for _, m := range reVisitorLink.FindAllStringSubmatch(html, -1) {
		uid, convErr := strconv.ParseUint(m[1], 10, 64)
		if convErr == nil {
			page.Visitors = append(page.Visitors, uid)
		}
	}
	return page, nil
}

func extractInt(re *regexp.Regexp, html string) (int, error) {
	m := re.FindStringSubmatch(html)
	if m == nil {
		return 0, fmt.Errorf("pattern %s not found", re.String())
	}
	return strconv.Atoi(m[1])
}
