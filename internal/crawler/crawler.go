package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"locheat/internal/store"
)

// Mode selects which profile type a crawl sweeps, as the original tool
// did with its User/Venue mode switch (Appendix A).
type Mode int

// Crawl modes.
const (
	ModeUsers Mode = iota + 1
	ModeVenues
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeUsers:
		return "users"
	case ModeVenues:
		return "venues"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes a crawl. The paper ran 14–16 threads per
// machine for users and 5–6 for venues.
type Config struct {
	// BaseURL of the target site, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the number of concurrent fetch threads (default 14).
	Workers int
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Retries per page on transport errors (default 2).
	Retries int
	// StopAfterMisses ends an open-ended sweep after this many
	// consecutive 404s — how an attacker discovers the ID space
	// ceiling. Zero disables open-ended sweeping.
	StopAfterMisses int
}

// Stats counts crawl outcomes. Fetched = HTTP 200 pages; Parsed =
// pages whose extraction succeeded and were stored.
type Stats struct {
	Attempted int
	Fetched   int
	Parsed    int
	NotFound  int
	Denied    int // 403/429 from anti-crawl defences
	Errors    int
	Elapsed   time.Duration
}

// PagesPerHour extrapolates the sustained crawl rate, the paper's E3
// throughput metric (~100k user pages/hour on 2008 hardware).
func (s Stats) PagesPerHour() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Fetched) / s.Elapsed.Hours()
}

// Crawler sweeps profile ID ranges into a store.DB.
type Crawler struct {
	cfg Config
	db  *store.DB
}

// New builds a crawler writing into db.
func New(cfg Config, db *store.DB) *Crawler {
	if cfg.Workers <= 0 {
		cfg.Workers = 14
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	return &Crawler{cfg: cfg, db: db}
}

// Crawl sweeps IDs [from, to] in the given mode. With to == 0 the
// sweep is open-ended and stops after Config.StopAfterMisses
// consecutive 404s. The context cancels in-flight work.
func (c *Crawler) Crawl(ctx context.Context, mode Mode, from, to uint64) (Stats, error) {
	if from == 0 {
		from = 1
	}
	if to != 0 && to < from {
		return Stats{}, fmt.Errorf("crawl: empty range [%d,%d]", from, to)
	}
	if to == 0 && c.cfg.StopAfterMisses <= 0 {
		return Stats{}, errors.New("crawl: open-ended sweep requires StopAfterMisses")
	}

	start := time.Now()
	ids := make(chan uint64)
	results := make(chan pageResult)

	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ids {
				results <- c.fetchAndStore(ctx, mode, id)
			}
		}()
	}
	// Closer: when all workers drain, close results.
	go func() {
		wg.Wait()
		close(results)
	}()

	// Feeder: emits IDs until the range ends, the context cancels, or
	// the miss-run exceeds the threshold (signalled via stopFeed).
	stopFeed := make(chan struct{})
	var stopOnce sync.Once
	go func() {
		defer close(ids)
		id := from
		for {
			if to != 0 && id > to {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-stopFeed:
				return
			case ids <- id:
				id++
			}
		}
	}()

	var stats Stats
	missRun := 0
	for res := range results {
		stats.Attempted++
		switch res.kind {
		case pageOK:
			stats.Fetched++
			stats.Parsed++
			missRun = 0
		case pageUnparsed:
			stats.Fetched++
			stats.Errors++
			missRun = 0
		case pageNotFound:
			stats.NotFound++
			missRun++
			if to == 0 && missRun >= c.cfg.StopAfterMisses {
				stopOnce.Do(func() { close(stopFeed) })
			}
		case pageDenied:
			stats.Denied++
		case pageError:
			stats.Errors++
		}
	}
	stats.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil {
		return stats, fmt.Errorf("crawl %s: %w", mode, err)
	}
	return stats, nil
}

type pageKind int

const (
	pageOK pageKind = iota + 1
	pageUnparsed
	pageNotFound
	pageDenied
	pageError
)

type pageResult struct {
	id   uint64
	kind pageKind
}

func (c *Crawler) fetchAndStore(ctx context.Context, mode Mode, id uint64) pageResult {
	var path string
	switch mode {
	case ModeUsers:
		path = fmt.Sprintf("/user/%d", id)
	case ModeVenues:
		path = fmt.Sprintf("/venue/%d", id)
	default:
		return pageResult{id: id, kind: pageError}
	}

	var lastKind = pageError
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		kind, body := c.fetchOnce(ctx, c.cfg.BaseURL+path)
		if kind == pageError {
			lastKind = kind
			continue // transport error: retry
		}
		if kind != pageOK {
			return pageResult{id: id, kind: kind}
		}
		// Extract and store.
		switch mode {
		case ModeUsers:
			row, err := ParseUserPage(id, body)
			if err != nil {
				return pageResult{id: id, kind: pageUnparsed}
			}
			c.db.UpsertUser(row)
		case ModeVenues:
			page, err := ParseVenuePage(id, body)
			if err != nil {
				return pageResult{id: id, kind: pageUnparsed}
			}
			c.db.UpsertVenue(page.Row)
			for _, uid := range page.Visitors {
				c.db.AddRecentCheckin(uid, id)
			}
		}
		return pageResult{id: id, kind: pageOK}
	}
	return pageResult{id: id, kind: lastKind}
}

// fetchOnce performs one HTTP GET, classifying the response.
func (c *Crawler) fetchOnce(ctx context.Context, url string) (pageKind, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return pageError, ""
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return pageError, ""
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return pageError, ""
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return pageOK, string(body)
	case resp.StatusCode == http.StatusNotFound:
		return pageNotFound, ""
	case resp.StatusCode == http.StatusForbidden || resp.StatusCode == http.StatusTooManyRequests:
		return pageDenied, ""
	default:
		return pageError, ""
	}
}
