package crawler

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/web"
)

// buildSite seeds a service with nUsers users and nVenues venues (each
// venue mayored by user 1 with users 1..3 on its recent list) and
// serves it over httptest.
func buildSite(t *testing.T, nUsers, nVenues int, opts ...web.Option) (*httptest.Server, *lbsn.Service) {
	t.Helper()
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	seeds := make([]lbsn.UserSeed, nUsers)
	for i := range seeds {
		seeds[i] = lbsn.UserSeed{
			Name:          fmt.Sprintf("User %d", i+1),
			HomeCity:      "Lincoln",
			TotalCheckins: i * 3,
			BadgeCount:    i % 7,
			FriendCount:   i % 20,
		}
		if i%4 == 0 {
			seeds[i].Username = fmt.Sprintf("user%d", i+1)
		}
	}
	userIDs := svc.BulkLoadUsers(seeds)

	lincoln, _ := geo.FindCity("Lincoln")
	venueSeeds := make([]lbsn.VenueSeed, nVenues)
	for i := range venueSeeds {
		var recent []lbsn.UserID
		for j := 0; j < 3 && j < len(userIDs); j++ {
			recent = append(recent, userIDs[j])
		}
		venueSeeds[i] = lbsn.VenueSeed{
			Name:           fmt.Sprintf("Starbucks #%d", i+1),
			Address:        fmt.Sprintf("%d Main St", i+1),
			City:           "Lincoln",
			Location:       lincoln.Center.Destination(float64(i*17%360), float64(100+i*50)),
			CheckinsHere:   i * 5,
			UniqueVisitors: i * 2,
			MayorID:        userIDs[0],
			RecentVisitors: recent,
		}
		if i%3 == 0 {
			venueSeeds[i].Special = &lbsn.Special{Description: "Free coffee", MayorOnly: true}
		}
	}
	svc.BulkLoadVenues(venueSeeds)

	ts := httptest.NewServer(web.NewServer(svc, clock, opts...))
	t.Cleanup(ts.Close)
	return ts, svc
}

func TestParseUserPageRoundTrip(t *testing.T) {
	ts, _ := buildSite(t, 5, 0)
	resp, err := ts.Client().Get(ts.URL + "/user/2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	row, err := ParseUserPage(2, string(body))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if row.Name != "User 2" || row.TotalCheckins != 3 {
		t.Errorf("parsed row = %+v", row)
	}
}

func TestParseUserPageErrors(t *testing.T) {
	if _, err := ParseUserPage(1, "<html>nothing</html>"); err == nil {
		t.Error("parse of junk page should fail")
	}
	// A name without stats is still an error (checkins required).
	html := `<h1 class="user-name">X</h1>`
	if _, err := ParseUserPage(1, html); err == nil {
		t.Error("page without stat-checkins should fail")
	}
}

func TestParseVenuePageErrors(t *testing.T) {
	if _, err := ParseVenuePage(1, "<html></html>"); err == nil {
		t.Error("junk venue page should parse-fail")
	}
	noCoords := `<h1 class="venue-name">V</h1>`
	if _, err := ParseVenuePage(1, noCoords); err == nil {
		t.Error("venue page without coordinates should fail")
	}
}

func TestCrawlUsersFullSweep(t *testing.T) {
	ts, _ := buildSite(t, 40, 0)
	db := store.New()
	c := New(Config{BaseURL: ts.URL, Workers: 8, Client: ts.Client()}, db)
	stats, err := c.Crawl(context.Background(), ModeUsers, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Parsed != 40 || stats.Fetched != 40 {
		t.Errorf("stats = %+v, want 40 parsed", stats)
	}
	users, _, _ := db.Counts()
	if users != 40 {
		t.Errorf("stored users = %d, want 40", users)
	}
	u, ok := db.User(17)
	if !ok || u.Name != "User 17" || u.TotalCheckins != 48 {
		t.Errorf("user 17 = %+v, %v", u, ok)
	}
	if stats.PagesPerHour() <= 0 {
		t.Error("PagesPerHour should be positive")
	}
}

func TestCrawlVenuesStoresRelationsAndFields(t *testing.T) {
	ts, _ := buildSite(t, 10, 25)
	db := store.New()
	c := New(Config{BaseURL: ts.URL, Workers: 5, Client: ts.Client()}, db)
	stats, err := c.Crawl(context.Background(), ModeVenues, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Parsed != 25 {
		t.Errorf("stats = %+v, want 25 parsed", stats)
	}
	_, venues, recents := db.Counts()
	if venues != 25 {
		t.Errorf("stored venues = %d, want 25", venues)
	}
	// Each venue lists 3 visitors; relations deduplicate per (user,venue).
	if recents != 25*3 {
		t.Errorf("recent relations = %d, want 75", recents)
	}
	v, ok := db.Venue(4)
	if !ok {
		t.Fatal("venue 4 missing")
	}
	if v.MayorID != 1 {
		t.Errorf("venue 4 mayor = %d, want 1", v.MayorID)
	}
	if v.Special != "Free coffee" || !v.SpecialMayor {
		t.Errorf("venue 4 special = %q/%v", v.Special, v.SpecialMayor)
	}
	if v.Latitude == 0 || v.Longitude == 0 {
		t.Error("venue 4 coordinates not extracted")
	}
	// The Fig 3.4 query works over the crawl result.
	if n := len(db.VenuesByNameLike("starbucks")); n != 25 {
		t.Errorf("LIKE starbucks = %d, want 25", n)
	}
}

func TestCrawlOpenEndedStopsAfterMisses(t *testing.T) {
	ts, _ := buildSite(t, 12, 0)
	db := store.New()
	c := New(Config{BaseURL: ts.URL, Workers: 4, Client: ts.Client(), StopAfterMisses: 20}, db)
	stats, err := c.Crawl(context.Background(), ModeUsers, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Parsed != 12 {
		t.Errorf("open-ended sweep parsed %d, want 12", stats.Parsed)
	}
	if stats.NotFound < 20 {
		t.Errorf("NotFound = %d, want >= 20 (the stop condition)", stats.NotFound)
	}
}

func TestCrawlOpenEndedRequiresStopCondition(t *testing.T) {
	db := store.New()
	c := New(Config{BaseURL: "http://127.0.0.1:0", Workers: 1}, db)
	if _, err := c.Crawl(context.Background(), ModeUsers, 1, 0); err == nil {
		t.Error("open-ended crawl without StopAfterMisses should error")
	}
}

func TestCrawlEmptyRange(t *testing.T) {
	db := store.New()
	c := New(Config{BaseURL: "http://127.0.0.1:0", Workers: 1}, db)
	if _, err := c.Crawl(context.Background(), ModeUsers, 10, 5); err == nil {
		t.Error("inverted range should error")
	}
}

func TestCrawlDeniedByDefences(t *testing.T) {
	ts, _ := buildSite(t, 30, 0, web.WithLoginWall())
	db := store.New()
	c := New(Config{BaseURL: ts.URL, Workers: 4, Client: ts.Client()}, db)
	stats, err := c.Crawl(context.Background(), ModeUsers, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Denied != 30 || stats.Parsed != 0 {
		t.Errorf("stats = %+v, want all denied", stats)
	}
	users, _, _ := db.Counts()
	if users != 0 {
		t.Errorf("stored users = %d, want 0 behind login wall", users)
	}
}

func TestCrawlContextCancel(t *testing.T) {
	ts, _ := buildSite(t, 100, 0)
	db := store.New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before starting
	c := New(Config{BaseURL: ts.URL, Workers: 4, Client: ts.Client()}, db)
	_, err := c.Crawl(ctx, ModeUsers, 1, 100)
	if err == nil {
		t.Error("cancelled crawl should return the context error")
	}
}

func TestCrawlTransportErrorsCounted(t *testing.T) {
	// Point at a dead server: every fetch errors out after retries.
	db := store.New()
	c := New(Config{BaseURL: "http://127.0.0.1:1", Workers: 2, Retries: 1}, db)
	stats, err := c.Crawl(context.Background(), ModeUsers, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 4 {
		t.Errorf("errors = %d, want 4", stats.Errors)
	}
}

func TestModeString(t *testing.T) {
	if ModeUsers.String() != "users" || ModeVenues.String() != "venues" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestCrawlerThroughputScalesWithWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short")
	}
	// E3's claim in miniature: more threads, more pages per hour. Use a
	// site with small artificial latency so parallelism matters.
	ts, _ := buildSite(t, 200, 0)
	slow := ts.Client()

	run := func(workers int) time.Duration {
		db := store.New()
		c := New(Config{BaseURL: ts.URL, Workers: workers, Client: slow}, db)
		start := time.Now()
		if _, err := c.Crawl(context.Background(), ModeUsers, 1, 200); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	t1 := run(1)
	t16 := run(16)
	// Allow generous noise; 16 workers should beat 1 clearly.
	if t16 > t1 {
		t.Logf("warning: 16 workers (%v) not faster than 1 (%v) on this host", t16, t1)
	}
}
