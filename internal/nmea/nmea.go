// Package nmea implements the subset of the NMEA 0183 protocol that
// GPS receivers speak: generating and parsing GGA (fix data) and RMC
// (recommended minimum) sentences with checksums.
//
// This is the substrate for §3.1's spoofing vector 2: "an attacker can
// write a program on a computer that simulates the behavior of a
// Bluetooth GPS receiver and let the phone connect to this simulated
// Bluetooth GPS receiver, enabling the simulated GPS to return fake
// coordinates. In fact, there are already a number of such tools on
// the market (e.g., Skylab GPS Simulator, Zyl Soft, GPS Generator
// Pro)." The Simulator type is that tool; internal/device pairs a
// phone to it.
package nmea

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"locheat/internal/geo"
)

// Errors returned by the parser.
var (
	ErrBadSentence = errors.New("nmea: malformed sentence")
	ErrBadChecksum = errors.New("nmea: checksum mismatch")
	ErrNoFix       = errors.New("nmea: sentence reports no fix")
	ErrUnsupported = errors.New("nmea: unsupported sentence type")
)

// Fix is a decoded position report.
type Fix struct {
	Point      geo.Point
	Time       time.Time
	Valid      bool
	Satellites int     // GGA only; 0 when unknown
	SpeedKnots float64 // RMC only; 0 when unknown
}

// Checksum computes the NMEA checksum: XOR of all bytes between '$'
// and '*'.
func Checksum(payload string) byte {
	var sum byte
	for i := 0; i < len(payload); i++ {
		sum ^= payload[i]
	}
	return sum
}

// FormatGGA renders a $GPGGA sentence for the fix.
func FormatGGA(p geo.Point, at time.Time, satellites int) string {
	payload := fmt.Sprintf("GPGGA,%s,%s,%s,1,%02d,0.9,10.0,M,0.0,M,,",
		at.UTC().Format("150405.00"),
		formatLat(p.Lat),
		formatLon(p.Lon),
		satellites,
	)
	return fmt.Sprintf("$%s*%02X", payload, Checksum(payload))
}

// FormatRMC renders a $GPRMC sentence for the fix.
func FormatRMC(p geo.Point, at time.Time, speedKnots float64) string {
	payload := fmt.Sprintf("GPRMC,%s,A,%s,%s,%.1f,0.0,%s,,,A",
		at.UTC().Format("150405.00"),
		formatLat(p.Lat),
		formatLon(p.Lon),
		speedKnots,
		at.UTC().Format("020106"),
	)
	return fmt.Sprintf("$%s*%02X", payload, Checksum(payload))
}

// formatLat renders ddmm.mmmm,H.
func formatLat(lat float64) string {
	hemi := "N"
	if lat < 0 {
		hemi = "S"
		lat = -lat
	}
	deg := math.Floor(lat)
	minutes := (lat - deg) * 60
	return fmt.Sprintf("%02.0f%07.4f,%s", deg, minutes, hemi)
}

// formatLon renders dddmm.mmmm,H.
func formatLon(lon float64) string {
	hemi := "E"
	if lon < 0 {
		hemi = "W"
		lon = -lon
	}
	deg := math.Floor(lon)
	minutes := (lon - deg) * 60
	return fmt.Sprintf("%03.0f%07.4f,%s", deg, minutes, hemi)
}

// Parse decodes a GGA or RMC sentence into a Fix, verifying the
// checksum.
func Parse(sentence string) (Fix, error) {
	sentence = strings.TrimSpace(sentence)
	if len(sentence) < 9 || sentence[0] != '$' {
		return Fix{}, ErrBadSentence
	}
	star := strings.LastIndexByte(sentence, '*')
	if star < 0 || star+3 > len(sentence) {
		return Fix{}, ErrBadSentence
	}
	payload := sentence[1:star]
	wantSum, err := strconv.ParseUint(sentence[star+1:star+3], 16, 8)
	if err != nil {
		return Fix{}, ErrBadSentence
	}
	if Checksum(payload) != byte(wantSum) {
		return Fix{}, ErrBadChecksum
	}
	fields := strings.Split(payload, ",")
	switch fields[0] {
	case "GPGGA":
		return parseGGA(fields)
	case "GPRMC":
		return parseRMC(fields)
	default:
		return Fix{}, fmt.Errorf("%w: %s", ErrUnsupported, fields[0])
	}
}

// parseGGA: GPGGA,time,lat,NS,lon,EW,quality,sats,hdop,alt,M,geoid,M,,
func parseGGA(f []string) (Fix, error) {
	if len(f) < 8 {
		return Fix{}, ErrBadSentence
	}
	quality := f[6]
	if quality == "0" || quality == "" {
		return Fix{}, ErrNoFix
	}
	pt, err := parseLatLon(f[2], f[3], f[4], f[5])
	if err != nil {
		return Fix{}, err
	}
	ts, err := parseUTCTime(f[1], time.Time{})
	if err != nil {
		return Fix{}, err
	}
	sats, _ := strconv.Atoi(f[7])
	return Fix{Point: pt, Time: ts, Valid: true, Satellites: sats}, nil
}

// parseRMC: GPRMC,time,status,lat,NS,lon,EW,speed,course,date,...
func parseRMC(f []string) (Fix, error) {
	if len(f) < 10 {
		return Fix{}, ErrBadSentence
	}
	if f[2] != "A" {
		return Fix{}, ErrNoFix
	}
	pt, err := parseLatLon(f[3], f[4], f[5], f[6])
	if err != nil {
		return Fix{}, err
	}
	date, err := time.Parse("020106", f[9])
	if err != nil {
		return Fix{}, fmt.Errorf("%w: bad date %q", ErrBadSentence, f[9])
	}
	ts, err := parseUTCTime(f[1], date)
	if err != nil {
		return Fix{}, err
	}
	speed, _ := strconv.ParseFloat(f[7], 64)
	return Fix{Point: pt, Time: ts, Valid: true, SpeedKnots: speed}, nil
}

func parseLatLon(latStr, ns, lonStr, ew string) (geo.Point, error) {
	lat, err := parseCoord(latStr, 2)
	if err != nil {
		return geo.Point{}, err
	}
	lon, err := parseCoord(lonStr, 3)
	if err != nil {
		return geo.Point{}, err
	}
	if ns == "S" {
		lat = -lat
	} else if ns != "N" {
		return geo.Point{}, fmt.Errorf("%w: hemisphere %q", ErrBadSentence, ns)
	}
	if ew == "W" {
		lon = -lon
	} else if ew != "E" {
		return geo.Point{}, fmt.Errorf("%w: hemisphere %q", ErrBadSentence, ew)
	}
	p := geo.Point{Lat: lat, Lon: lon}
	if !p.Valid() {
		return geo.Point{}, fmt.Errorf("%w: out-of-range coordinates", ErrBadSentence)
	}
	return p, nil
}

// parseCoord decodes [d]ddmm.mmmm with degWidth degree digits.
func parseCoord(s string, degWidth int) (float64, error) {
	if len(s) < degWidth+2 {
		return 0, fmt.Errorf("%w: coordinate %q", ErrBadSentence, s)
	}
	deg, err := strconv.ParseFloat(s[:degWidth], 64)
	if err != nil {
		return 0, fmt.Errorf("%w: coordinate %q", ErrBadSentence, s)
	}
	minutes, err := strconv.ParseFloat(s[degWidth:], 64)
	if err != nil {
		return 0, fmt.Errorf("%w: coordinate %q", ErrBadSentence, s)
	}
	return deg + minutes/60, nil
}

func parseUTCTime(s string, date time.Time) (time.Time, error) {
	if s == "" {
		return time.Time{}, fmt.Errorf("%w: empty time", ErrBadSentence)
	}
	layout := "150405.00"
	if len(s) == 6 {
		layout = "150405"
	}
	t, err := time.Parse(layout, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("%w: bad time %q", ErrBadSentence, s)
	}
	if date.IsZero() {
		return t, nil
	}
	return time.Date(date.Year(), date.Month(), date.Day(),
		t.Hour(), t.Minute(), t.Second(), t.Nanosecond(), time.UTC), nil
}

// Simulator is the attacker's fake GPS receiver: it plays a scripted
// route, emitting alternating GGA/RMC sentences. It models the
// commercial tools the paper cites.
type Simulator struct {
	route    []geo.Point
	interval time.Duration
	start    time.Time
	idx      int
	emitRMC  bool
}

// NewSimulator scripts a route; each Next call advances one waypoint
// every interval of simulated time starting at start.
func NewSimulator(route []geo.Point, start time.Time, interval time.Duration) (*Simulator, error) {
	if len(route) == 0 {
		return nil, errors.New("nmea: empty route")
	}
	for _, p := range route {
		if !p.Valid() {
			return nil, fmt.Errorf("nmea: invalid waypoint %v", p)
		}
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &Simulator{route: route, interval: interval, start: start}, nil
}

// Next emits the next sentence, alternating GGA and RMC per waypoint
// and holding the final waypoint forever (a parked receiver).
func (s *Simulator) Next() string {
	i := s.idx
	if i >= len(s.route) {
		i = len(s.route) - 1
	}
	p := s.route[i]
	at := s.start.Add(time.Duration(i) * s.interval)
	var out string
	if s.emitRMC {
		out = FormatRMC(p, at, 0)
		if s.idx < len(s.route) {
			s.idx++
		}
	} else {
		out = FormatGGA(p, at, 9)
	}
	s.emitRMC = !s.emitRMC
	return out
}
