package nmea

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"locheat/internal/geo"
	"locheat/internal/simclock"
)

func TestFormatParseGGARoundTrip(t *testing.T) {
	tests := []geo.Point{
		{Lat: 37.7749, Lon: -122.4194}, // San Francisco
		{Lat: -33.8688, Lon: 151.2093}, // Sydney (S/E hemispheres)
		{Lat: 61.2181, Lon: -149.9003}, // Anchorage
		{Lat: 0.5, Lon: 0.5},           // near the origin
	}
	at := simclock.Epoch()
	for _, p := range tests {
		s := FormatGGA(p, at, 8)
		fix, err := Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if !fix.Valid || fix.Satellites != 8 {
			t.Errorf("fix = %+v", fix)
		}
		if fix.Point.DistanceMeters(p) > 1.0 {
			t.Errorf("round-trip error %.2f m for %v (got %v)",
				fix.Point.DistanceMeters(p), p, fix.Point)
		}
	}
}

func TestFormatParseRMCRoundTrip(t *testing.T) {
	p := geo.Point{Lat: 35.0844, Lon: -106.6504}
	at := time.Date(2010, 8, 15, 13, 45, 22, 0, time.UTC)
	s := FormatRMC(p, at, 4.5)
	fix, err := Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	if fix.Point.DistanceMeters(p) > 1.0 {
		t.Errorf("position error %.2f m", fix.Point.DistanceMeters(p))
	}
	if fix.SpeedKnots != 4.5 {
		t.Errorf("speed = %v, want 4.5", fix.SpeedKnots)
	}
	if fix.Time.Year() != 2010 || fix.Time.Month() != 8 || fix.Time.Day() != 15 ||
		fix.Time.Hour() != 13 || fix.Time.Minute() != 45 {
		t.Errorf("time = %v", fix.Time)
	}
}

func TestParseQuickRoundTripProperty(t *testing.T) {
	at := simclock.Epoch()
	f := func(latRaw, lonRaw float64) bool {
		p := geo.Point{
			Lat: math.Mod(math.Abs(latRaw), 180) - 90,
			Lon: math.Mod(math.Abs(lonRaw), 360) - 180,
		}
		for _, s := range []string{FormatGGA(p, at, 5), FormatRMC(p, at, 1)} {
			fix, err := Parse(s)
			if err != nil {
				return false
			}
			// 0.0001-minute quantization ≈ 0.2 m worst case.
			if fix.Point.DistanceMeters(p) > 2.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Canonical example: GPGGA sentence checksum is XOR of payload.
	payload := "GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,"
	sum := Checksum(payload)
	s := "$" + payload + "*" + strings.ToUpper(hex2(sum))
	fix, err := Parse(s)
	if err != nil {
		t.Fatalf("parse canonical sentence: %v", err)
	}
	if math.Abs(fix.Point.Lat-48.1173) > 0.001 || math.Abs(fix.Point.Lon-11.5166) > 0.001 {
		t.Errorf("canonical fix = %v", fix.Point)
	}
}

func hex2(b byte) string {
	const digits = "0123456789ABCDEF"
	return string([]byte{digits[b>>4], digits[b&0xf]})
}

func TestParseRejectsCorruption(t *testing.T) {
	p := geo.Point{Lat: 37.77, Lon: -122.42}
	good := FormatGGA(p, simclock.Epoch(), 7)

	// Flip a digit: checksum mismatch.
	bad := strings.Replace(good, "1", "2", 1)
	if _, err := Parse(bad); !errors.Is(err, ErrBadChecksum) && !errors.Is(err, ErrBadSentence) {
		t.Errorf("corrupted sentence error = %v", err)
	}
	cases := []string{
		"",
		"GPGGA no dollar",
		"$GPGGA,nochecksum",
		"$GPXXX,1,2*00",
		"$GPGGA,,,,,,0,,*" + hex2(Checksum("GPGGA,,,,,,0,,")),
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestParseNoFix(t *testing.T) {
	// Quality 0 GGA and void RMC report no fix.
	payload := "GPGGA,120000.00,3746.4940,N,12225.1640,W,0,00,0.9,10.0,M,0.0,M,,"
	s := "$" + payload + "*" + hex2(Checksum(payload))
	if _, err := Parse(s); !errors.Is(err, ErrNoFix) {
		t.Errorf("no-fix GGA error = %v, want ErrNoFix", err)
	}
	payload2 := "GPRMC,120000.00,V,3746.4940,N,12225.1640,W,0.0,0.0,010810,,,N"
	s2 := "$" + payload2 + "*" + hex2(Checksum(payload2))
	if _, err := Parse(s2); !errors.Is(err, ErrNoFix) {
		t.Errorf("void RMC error = %v, want ErrNoFix", err)
	}
}

func TestSimulatorPlaysRoute(t *testing.T) {
	route := []geo.Point{
		{Lat: 35.08, Lon: -106.65},
		{Lat: 35.09, Lon: -106.65},
		{Lat: 35.10, Lon: -106.65},
	}
	sim, err := NewSimulator(route, simclock.Epoch(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var fixes []Fix
	for i := 0; i < 8; i++ { // 2 sentences per waypoint + hold
		fix, err := Parse(sim.Next())
		if err != nil {
			t.Fatalf("sentence %d: %v", i, err)
		}
		fixes = append(fixes, fix)
	}
	// First two sentences report waypoint 0, next two waypoint 1, etc.
	if fixes[0].Point.DistanceMeters(route[0]) > 2 || fixes[1].Point.DistanceMeters(route[0]) > 2 {
		t.Error("first waypoint wrong")
	}
	if fixes[2].Point.DistanceMeters(route[1]) > 2 {
		t.Error("second waypoint wrong")
	}
	// After the route ends the simulator parks at the last waypoint.
	last := fixes[len(fixes)-1]
	if last.Point.DistanceMeters(route[2]) > 2 {
		t.Errorf("parked position = %v, want last waypoint", last.Point)
	}
}

func TestSimulatorValidation(t *testing.T) {
	if _, err := NewSimulator(nil, simclock.Epoch(), time.Second); err == nil {
		t.Error("empty route accepted")
	}
	bad := []geo.Point{{Lat: 91, Lon: 0}}
	if _, err := NewSimulator(bad, simclock.Epoch(), time.Second); err == nil {
		t.Error("invalid waypoint accepted")
	}
	// Non-positive interval defaults.
	sim, err := NewSimulator([]geo.Point{{Lat: 1, Lon: 1}}, simclock.Epoch(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(sim.Next()); err != nil {
		t.Errorf("defaulted-interval sentence: %v", err)
	}
}
