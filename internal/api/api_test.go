package api

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

func apiWorld(t *testing.T) (*Server, *httptest.Server, *lbsn.Service, *simclock.Simulated) {
	t.Helper()
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	sf, _ := geo.FindCity("San Francisco")
	if _, err := svc.AddVenue("Starbucks #1", "1 Market St", "San Francisco", sf.Center, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddVenue("Blue Bottle", "2 Mint Plaza", "San Francisco",
		sf.Center.Destination(90, 400), nil); err != nil {
		t.Fatal(err)
	}
	svc.RegisterUser("Dev", "dev", "San Francisco")

	srv := NewServer(svc)
	srv.IssueKey("k-test")
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, svc, clock
}

func TestAuthRequired(t *testing.T) {
	_, ts, _, _ := apiWorld(t)
	noKey := NewClient(ts.URL, "")
	if _, err := noKey.User(1); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("no key error = %v, want ErrUnauthorized", err)
	}
	badKey := NewClient(ts.URL, "wrong")
	if _, err := badKey.User(1); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("bad key error = %v, want ErrUnauthorized", err)
	}
}

func TestKeyRevocation(t *testing.T) {
	srv, ts, _, _ := apiWorld(t)
	c := NewClient(ts.URL, "k-test")
	if _, err := c.User(1); err != nil {
		t.Fatalf("valid key failed: %v", err)
	}
	srv.RevokeKey("k-test")
	if _, err := c.User(1); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("revoked key error = %v, want ErrUnauthorized", err)
	}
	served, rejected := srv.Stats()
	if served != 1 || rejected != 1 {
		t.Errorf("stats = %d/%d, want 1/1", served, rejected)
	}
}

func TestCheckinViaAPIAcceptsForgedCoordinates(t *testing.T) {
	// Vector 3: an attacker anywhere on Earth posts the venue's own
	// coordinates through the developer API and collects rewards.
	_, ts, svc, _ := apiWorld(t)
	c := NewClient(ts.URL, "k-test")
	venue, _ := svc.Venue(1)
	res, err := c.CheckIn(1, 1, venue.Location)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("forged check-in denied: %+v", res)
	}
	if res.PointsEarned == 0 || !res.BecameMayor {
		t.Errorf("rewards missing: %+v", res)
	}
	uv, _ := svc.User(1)
	if uv.TotalCheckins != 1 {
		t.Errorf("server-side total = %d", uv.TotalCheckins)
	}
}

func TestCheckinDenialSurfacesReason(t *testing.T) {
	_, ts, svc, clock := apiWorld(t)
	c := NewClient(ts.URL, "k-test")
	venue, _ := svc.Venue(1)
	if _, err := c.CheckIn(1, 1, venue.Location); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	res, err := c.CheckIn(1, 1, venue.Location)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != "frequent-checkin" {
		t.Errorf("rapid revisit = %+v, want frequent-checkin denial", res)
	}
}

func TestCheckinErrorsMapToStatus(t *testing.T) {
	_, ts, svc, _ := apiWorld(t)
	c := NewClient(ts.URL, "k-test")
	venue, _ := svc.Venue(1)
	if _, err := c.CheckIn(999, 1, venue.Location); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing user = %v, want ErrNotFound", err)
	}
	if _, err := c.CheckIn(1, 999, venue.Location); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing venue = %v, want ErrNotFound", err)
	}
	if _, err := c.CheckIn(1, 1, geo.Point{Lat: 91, Lon: 0}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad coords = %v, want ErrBadRequest", err)
	}
}

func TestCheckinRejectsGetAndBadBody(t *testing.T) {
	_, ts, _, _ := apiWorld(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/checkins", nil)
	req.Header.Set("X-API-Key", "k-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /checkins = %d, want 405", resp.StatusCode)
	}
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/checkins", strings.NewReader("{broken"))
	req2.Header.Set("X-API-Key", "k-test")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("broken body = %d, want 400", resp2.StatusCode)
	}
}

func TestVenueSearchAndNearby(t *testing.T) {
	_, ts, _, _ := apiWorld(t)
	c := NewClient(ts.URL, "k-test")
	hits, err := c.SearchVenues("starbucks", 10)
	if err != nil || len(hits) != 1 || hits[0].Name != "Starbucks #1" {
		t.Errorf("search = %v, %v", hits, err)
	}
	sf, _ := geo.FindCity("San Francisco")
	nearby, err := c.NearbyVenues(sf.Center, 1000, 10)
	if err != nil || len(nearby) != 2 {
		t.Errorf("nearby = %d venues, %v", len(nearby), err)
	}
	if nearby[0].ID != 1 {
		t.Errorf("nearby[0] = %d, want closest venue 1", nearby[0].ID)
	}
}

func TestSearchRequiresQuery(t *testing.T) {
	_, ts, _, _ := apiWorld(t)
	c := NewClient(ts.URL, "k-test")
	if _, err := c.SearchVenues("", 5); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty query = %v, want ErrBadRequest", err)
	}
}

func TestUserAndVenueLookup(t *testing.T) {
	_, ts, _, _ := apiWorld(t)
	c := NewClient(ts.URL, "k-test")
	u, err := c.User(1)
	if err != nil || u.Name != "Dev" {
		t.Errorf("user = %+v, %v", u, err)
	}
	v, err := c.Venue(2)
	if err != nil || v.Name != "Blue Bottle" {
		t.Errorf("venue = %+v, %v", v, err)
	}
	if _, err := c.User(404); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing user = %v", err)
	}
	if _, err := c.Venue(404); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing venue = %v", err)
	}
}

func TestMalformedIDs(t *testing.T) {
	_, ts, _, _ := apiWorld(t)
	for _, path := range []string{"/api/v1/users/abc", "/api/v1/venues/xyz"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set("X-API-Key", "k-test")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestNearbyParamValidation(t *testing.T) {
	_, ts, _, _ := apiWorld(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/venues/nearby?lat=zzz&lon=1", nil)
	req.Header.Set("X-API-Key", "k-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad lat = %d, want 400", resp.StatusCode)
	}
}

func TestLargeScaleCheatingViaAPI(t *testing.T) {
	// §3.1: "this method is more convenient to issue a large-scale
	// cheating attack" — one SDK loop, many venues, paced to pass.
	_, ts, svc, clock := apiWorld(t)
	base, _ := geo.FindCity("San Francisco")
	var ids []uint64
	for i := 0; i < 10; i++ {
		id, err := svc.AddVenue("Mass", "", "San Francisco",
			base.Center.Destination(float64(i*36), 1000+float64(i)*300), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, uint64(id))
	}
	c := NewClient(ts.URL, "k-test")
	accepted := 0
	for _, id := range ids {
		v, err := c.Venue(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.CheckIn(1, id, v.Location)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			accepted++
		}
		clock.Advance(30 * time.Minute)
	}
	if accepted != len(ids) {
		t.Errorf("mass campaign accepted %d of %d", accepted, len(ids))
	}
}

func TestIssueEmptyKeyIgnored(t *testing.T) {
	srv := NewServer(lbsn.New(lbsn.DefaultConfig(), simclock.NewSimulated(simclock.Epoch()), nil))
	srv.IssueKey("")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, "")
	if _, err := c.User(1); !errors.Is(err, ErrUnauthorized) {
		t.Error("empty key must never authenticate")
	}
}
