// Package api implements the service's public developer API — the
// §3.1 spoofing vector 3: "Foursquare provides a set of application
// APIs that allow developers to create new applications ... These APIs
// can be employed by a location cheater to check into a place ... this
// method is more convenient to issue a large-scale cheating attack."
//
// It is a small JSON-over-HTTP surface with API-key authentication:
//
//	POST /api/v1/checkins        {userId, venueId, lat, lon}
//	GET  /api/v1/venues/search?q=...&limit=...
//	GET  /api/v1/venues/nearby?lat=..&lon=..&radius=..&limit=..
//	GET  /api/v1/users/{id}
//	GET  /api/v1/venues/{id}
//
// The check-in endpoint takes caller-supplied coordinates verbatim —
// precisely the trust-the-client flaw the paper exploits. The Client
// type is the attacker-side SDK.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"locheat/internal/backpressure"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/obs"
	"locheat/internal/stream"
	"locheat/internal/trace"
)

// Errors the client surfaces.
var (
	ErrUnauthorized = errors.New("api: missing or revoked API key")
	ErrBadRequest   = errors.New("api: bad request")
	ErrNotFound     = errors.New("api: not found")
)

// OverloadedError is the client-side view of a 429: the admission
// controller shed the request and advertised when to come back.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("api: overloaded, retry after %s", e.RetryAfter)
}

// IsOverloaded reports whether err is a shed (429) response, returning
// the advertised backoff.
func IsOverloaded(err error) (time.Duration, bool) {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return oe.RetryAfter, true
	}
	return 0, false
}

// Server exposes the developer API over an lbsn.Service.
type Server struct {
	svc *lbsn.Service
	mux *http.ServeMux

	mu        sync.Mutex
	keys      map[string]bool // key -> active
	pipeline  *stream.Pipeline
	policy    *lbsn.QuarantinePolicy
	cluster   ClusterBackend
	obs       *obs.Registry
	tracer    *trace.Tracer
	admission *backpressure.Admission

	served   int
	rejected int
}

var _ http.Handler = (*Server)(nil)

// NewServer builds the API server. Keys must be issued with IssueKey
// before clients can call.
func NewServer(svc *lbsn.Service) *Server {
	s := &Server{
		svc:  svc,
		keys: make(map[string]bool),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/checkins", s.auth(s.handleCheckin))
	mux.HandleFunc("/api/v1/venues/search", s.auth(s.handleVenueSearch))
	mux.HandleFunc("/api/v1/venues/nearby", s.auth(s.handleVenuesNearby))
	mux.HandleFunc("/api/v1/users/", s.auth(s.handleUser))
	mux.HandleFunc("/api/v1/venues/", s.auth(s.handleVenue))
	mux.HandleFunc("/api/v1/alerts", s.auth(s.handleAlerts))
	mux.HandleFunc("/api/v1/alerts/stats", s.auth(s.handleAlertStats))
	mux.HandleFunc("/api/v1/quarantine", s.auth(s.handleQuarantine))
	mux.HandleFunc("/api/v1/quarantine/", s.auth(s.handleQuarantineUser))
	mux.HandleFunc("/api/v1/cluster", s.auth(s.handleClusterStatus))
	mux.HandleFunc("/api/v1/traces", s.auth(s.handleTraces))
	mux.HandleFunc("/api/v1/traces/", s.auth(s.handleTraceByID))
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// IssueKey registers an API key (any non-empty string) as active.
func (s *Server) IssueKey(key string) {
	if key == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[key] = true
}

// RevokeKey deactivates a key; subsequent calls get 401.
func (s *Server) RevokeKey(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.keys, key)
}

// Stats reports authenticated requests served and rejected.
func (s *Server) Stats() (served, rejected int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served, s.rejected
}

// AttachAdmission gates POST /checkins behind the adaptive admission
// controller: saturated nodes answer 429 with a Retry-After instead of
// silently losing events deeper in the pipeline. Call before serving;
// nil detaches (every request admitted).
func (s *Server) AttachAdmission(a *backpressure.Admission) {
	s.mu.Lock()
	s.admission = a
	s.mu.Unlock()
}

func (s *Server) admissionHandle() *backpressure.Admission {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admission
}

func (s *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("X-API-Key")
		s.mu.Lock()
		ok := key != "" && s.keys[key]
		if ok {
			s.served++
		} else {
			s.rejected++
		}
		s.mu.Unlock()
		if !ok {
			writeError(w, http.StatusUnauthorized, "missing or revoked API key")
			return
		}
		next(w, r)
	}
}

// Wire types ------------------------------------------------------------

// CheckinRequest is the POST /checkins body.
type CheckinRequest struct {
	UserID  uint64  `json:"userId"`
	VenueID uint64  `json:"venueId"`
	Lat     float64 `json:"lat"`
	Lon     float64 `json:"lon"`
}

// CheckinResponse mirrors lbsn.CheckinResult on the wire.
type CheckinResponse struct {
	Accepted        bool     `json:"accepted"`
	Reason          string   `json:"reason,omitempty"`
	Detail          string   `json:"detail,omitempty"`
	PointsEarned    int      `json:"pointsEarned"`
	NewBadges       []string `json:"newBadges,omitempty"`
	BecameMayor     bool     `json:"becameMayor"`
	SpecialUnlocked string   `json:"specialUnlocked,omitempty"`
	// TraceID names the trace this check-in was head-sampled into,
	// when a tracer is attached and the rate draw hit — fetch the tree
	// at GET /api/v1/traces/{traceId}. Empty when unsampled.
	TraceID string `json:"traceId,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// Handlers ----------------------------------------------------------------

func (s *Server) handleCheckin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req CheckinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON body")
		return
	}
	// Adaptive admission at the ingest edge. Priority order: check-ins
	// from quarantined users are the denied-claim evidence path the
	// detectors feed on (never shed); repeat (user, venue) claims within
	// the window are dedupe-cheap (first shed); the rest are fresh
	// claims that shed probabilistically as saturation deepens.
	if adm := s.admissionHandle(); adm != nil {
		prio := adm.Classify(req.UserID, req.VenueID,
			s.svc.IsQuarantined(lbsn.UserID(req.UserID)))
		if d := adm.Admit(prio); !d.OK {
			secs := int(d.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "overloaded, retry later")
			return
		}
	}
	// Head-sample at the edge so the response can name the trace; a
	// rate miss here can still be force-sampled at publish (denied
	// claims always trace), the response just won't carry the ID.
	tctx := s.tracerHandle().Sample(false)
	res, err := s.svc.CheckIn(lbsn.CheckinRequest{
		UserID:   lbsn.UserID(req.UserID),
		VenueID:  lbsn.VenueID(req.VenueID),
		Reported: geo.Point{Lat: req.Lat, Lon: req.Lon},
		Trace:    tctx,
	})
	switch {
	case errors.Is(err, lbsn.ErrUserNotFound), errors.Is(err, lbsn.ErrVenueNotFound):
		writeError(w, http.StatusNotFound, err.Error())
		return
	case errors.Is(err, lbsn.ErrBadLocation):
		writeError(w, http.StatusBadRequest, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := CheckinResponse{
		Accepted:        res.Accepted,
		Reason:          string(res.Reason),
		Detail:          res.Detail,
		PointsEarned:    res.PointsEarned,
		NewBadges:       res.NewBadges,
		BecameMayor:     res.BecameMayor,
		SpecialUnlocked: res.SpecialUnlocked,
	}
	if tctx.Sampled() {
		out.TraceID = tctx.ID.String()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleVenueSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	limit := queryInt(r, "limit", 20)
	writeJSON(w, http.StatusOK, s.svc.SearchVenues(q, limit))
}

func (s *Server) handleVenuesNearby(w http.ResponseWriter, r *http.Request) {
	lat, err1 := strconv.ParseFloat(r.URL.Query().Get("lat"), 64)
	lon, err2 := strconv.ParseFloat(r.URL.Query().Get("lon"), 64)
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, "missing or malformed lat/lon")
		return
	}
	radius := queryFloat(r, "radius", 1000)
	limit := queryInt(r, "limit", 20)
	writeJSON(w, http.StatusOK, s.svc.NearbyVenues(geo.Point{Lat: lat, Lon: lon}, radius, limit))
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/api/v1/users/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed user id")
		return
	}
	view, ok := s.svc.User(lbsn.UserID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "no such user")
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleVenue(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/api/v1/venues/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed venue id")
		return
	}
	view, ok := s.svc.Venue(lbsn.VenueID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "no such venue")
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func queryInt(r *http.Request, name string, def int) int {
	v, err := strconv.Atoi(r.URL.Query().Get(name))
	if err != nil || v < 0 {
		return def
	}
	return v
}

func queryFloat(r *http.Request, name string, def float64) float64 {
	v, err := strconv.ParseFloat(r.URL.Query().Get(name), 64)
	if err != nil || v < 0 {
		return def
	}
	return v
}

// Client is the developer-SDK side — and the attacker's large-scale
// cheating tool when fed forged coordinates.
type Client struct {
	BaseURL string
	Key     string
	HTTP    *http.Client
}

// NewClient builds an SDK client.
func NewClient(baseURL, key string) *Client {
	return &Client{BaseURL: baseURL, Key: key, HTTP: http.DefaultClient}
}

func (c *Client) do(method, path string, body any, out any) error {
	var reader *strings.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("api client: marshal: %w", err)
		}
		reader = strings.NewReader(string(buf))
	} else {
		reader = strings.NewReader("")
	}
	req, err := http.NewRequest(method, c.BaseURL+path, reader)
	if err != nil {
		return fmt.Errorf("api client: %w", err)
	}
	req.Header.Set("X-API-Key", c.Key)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return fmt.Errorf("api client: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	case http.StatusUnauthorized:
		return ErrUnauthorized
	case http.StatusNotFound:
		return ErrNotFound
	case http.StatusBadRequest:
		return ErrBadRequest
	case http.StatusTooManyRequests:
		ra := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ra = time.Duration(secs) * time.Second
		}
		return &OverloadedError{RetryAfter: ra}
	default:
		return fmt.Errorf("api client: unexpected status %d", resp.StatusCode)
	}
}

// CheckIn submits a check-in with arbitrary coordinates.
func (c *Client) CheckIn(user, venue uint64, at geo.Point) (CheckinResponse, error) {
	var out CheckinResponse
	err := c.do(http.MethodPost, "/api/v1/checkins", CheckinRequest{
		UserID: user, VenueID: venue, Lat: at.Lat, Lon: at.Lon,
	}, &out)
	return out, err
}

// SearchVenues queries venues by name.
func (c *Client) SearchVenues(q string, limit int) ([]lbsn.VenueView, error) {
	var out []lbsn.VenueView
	path := fmt.Sprintf("/api/v1/venues/search?q=%s&limit=%d", urlEscape(q), limit)
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// NearbyVenues queries venues around a point.
func (c *Client) NearbyVenues(p geo.Point, radius float64, limit int) ([]lbsn.VenueView, error) {
	var out []lbsn.VenueView
	path := fmt.Sprintf("/api/v1/venues/nearby?lat=%f&lon=%f&radius=%f&limit=%d",
		p.Lat, p.Lon, radius, limit)
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// User fetches a user profile.
func (c *Client) User(id uint64) (lbsn.UserView, error) {
	var out lbsn.UserView
	err := c.do(http.MethodGet, fmt.Sprintf("/api/v1/users/%d", id), nil, &out)
	return out, err
}

// Venue fetches a venue profile.
func (c *Client) Venue(id uint64) (lbsn.VenueView, error) {
	var out lbsn.VenueView
	err := c.do(http.MethodGet, fmt.Sprintf("/api/v1/venues/%d", id), nil, &out)
	return out, err
}

func urlEscape(s string) string {
	r := strings.NewReplacer(" ", "+", "&", "%26", "?", "%3F", "#", "%23", "%", "%25")
	return r.Replace(s)
}
