package api

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"locheat/internal/backpressure"
	"locheat/internal/cluster"
	"locheat/internal/lbsn"
	"locheat/internal/obs"
	"locheat/internal/store"
	"locheat/internal/stream"
)

// This file mounts the online-detection surface: when a stream.Pipeline
// is attached, the API serves its alert store and counters so operators
// (and the paper's would-be Foursquare admins) can watch cheating
// detection happen live instead of waiting for the §4 batch analytics.
// Alerts come from the pipeline's store.AlertStore — a journal-backed
// daemon serves pre-restart history through the same endpoint.
//
//	GET /api/v1/alerts?limit=N&offset=N&since=T&until=T&user=N&detector=S
//	    paginated alerts, newest first; limit defaults to 50, capped at
//	    500; since/until accept RFC 3339 or unix seconds
//	GET /api/v1/alerts/stats
//	    pipeline counters (incl. dead-letter, drop, eviction and
//	    store-error counts), tumbling-window rates, alert-store stats
//	    and the quarantine feedback state
//
// Both endpoints require an API key, like the rest of the surface, and
// return 503 until a pipeline is attached.

// DefaultAlertsLimit is the page size when ?limit is absent;
// MaxAlertsLimit is the hard cap — the endpoint used to return the
// whole retained set, which is unbounded with a journal behind it.
const (
	DefaultAlertsLimit = 50
	MaxAlertsLimit     = 500
)

// AlertsResponse is the GET /alerts body: one page plus the pagination
// frame the client needs to fetch the rest.
type AlertsResponse struct {
	Alerts []store.Alert `json:"alerts"`
	// Total counts every alert matching the filters, ignoring
	// offset/limit — the post-filter match count. When the merged view
	// served the request it is the cluster-wide count: the sum of
	// per-node totals minus observed duplicates (an upper bound if
	// cross-node duplicates hide beyond the fetched page windows; see
	// internal/cluster/scatter.go).
	Total  int `json:"total"`
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
	// Cluster is set when a cluster backend served the merged view; it
	// says how many nodes contributed and whether the view is partial.
	Cluster *cluster.MergeInfo `json:"cluster,omitempty"`
}

// QuarantineStatsResponse bundles the feedback-loop state: the
// service-side counters plus the policy's, when one is attached.
type QuarantineStatsResponse struct {
	Service lbsn.QuarantineStats        `json:"service"`
	Policy  *lbsn.QuarantinePolicyStats `json:"policy,omitempty"`
}

// StreamStatsResponse is the GET /alerts/stats body. The top-level
// fields are always this node's own counters (rates and windows are
// inherently local); Cluster adds the merged per-node counters and
// cluster-wide totals when a cluster backend is attached.
type StreamStatsResponse struct {
	Pipeline   stream.Stats              `json:"pipeline"`
	Store      store.AlertStoreStats     `json:"store"`
	Rates      stream.Rates              `json:"rates"`
	Windows    []stream.WindowStats      `json:"windows"`
	Quarantine QuarantineStatsResponse   `json:"quarantine"`
	Cluster    *cluster.ClusterStatsView `json:"cluster,omitempty"`
	// Backpressure is the admission controller's state (engaged flag,
	// smoothed utilization, per-priority admitted/shed counts, per-stage
	// samples), when one is attached.
	Backpressure *backpressure.AdmissionStatus `json:"backpressure,omitempty"`
	// Obs carries the latency summaries (count/sum/p50/p99/p999) from
	// the node's telemetry registry, keyed by metric series — the same
	// registry /metrics scrapes, so both surfaces read the same memory.
	Obs map[string]obs.Summary `json:"obs,omitempty"`
}

// AttachPipeline mounts the alert endpoints over p. Call once, before
// serving; a nil pipeline leaves the endpoints answering 503.
func (s *Server) AttachPipeline(p *stream.Pipeline) {
	s.mu.Lock()
	s.pipeline = p
	s.mu.Unlock()
}

// AttachQuarantinePolicy surfaces the auto-quarantine policy's counters
// on /alerts/stats. Optional.
func (s *Server) AttachQuarantinePolicy(p *lbsn.QuarantinePolicy) {
	s.mu.Lock()
	s.policy = p
	s.mu.Unlock()
}

// AttachObs surfaces the telemetry registry's histogram summaries on
// /alerts/stats. Optional; nil detaches.
func (s *Server) AttachObs(reg *obs.Registry) {
	s.mu.Lock()
	s.obs = reg
	s.mu.Unlock()
}

func (s *Server) streamPipeline() *stream.Pipeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipeline
}

// parseAlertQuery builds the store query from request parameters,
// clamping the page size.
func parseAlertQuery(r *http.Request) (store.AlertQuery, error) {
	q := store.AlertQuery{
		Limit:    DefaultAlertsLimit,
		Detector: r.URL.Query().Get("detector"),
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return q, fmt.Errorf("malformed limit %q", v)
		}
		q.Limit = n
	}
	if q.Limit > MaxAlertsLimit {
		q.Limit = MaxAlertsLimit
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return q, fmt.Errorf("malformed offset %q", v)
		}
		q.Offset = n
	}
	if v := r.URL.Query().Get("user"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return q, fmt.Errorf("malformed user %q", v)
		}
		q.UserID = n
	}
	var err error
	if q.Since, err = parseTimeParam(r, "since"); err != nil {
		return q, err
	}
	if q.Until, err = parseTimeParam(r, "until"); err != nil {
		return q, err
	}
	return q, nil
}

// parseTimeParam reads an RFC 3339 timestamp or unix seconds.
func parseTimeParam(r *http.Request, name string) (time.Time, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t, nil
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.Unix(secs, 0).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("malformed %s %q (want RFC 3339 or unix seconds)", name, v)
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	p := s.streamPipeline()
	if p == nil {
		writeError(w, http.StatusServiceUnavailable, "no stream pipeline attached")
		return
	}
	q, err := parseAlertQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := AlertsResponse{Limit: q.Limit, Offset: q.Offset}
	if b := s.clusterBackend(); b != nil && !scopeLocal(r) {
		var info cluster.MergeInfo
		resp.Alerts, resp.Total, info = b.ClusterAlerts(q)
		resp.Cluster = &info
		setMergeHeaders(w, info)
	} else {
		resp.Alerts, resp.Total = p.Alerts(q)
	}
	if resp.Alerts == nil {
		resp.Alerts = []store.Alert{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAlertStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	p, pol, reg, adm := s.pipeline, s.policy, s.obs, s.admission
	s.mu.Unlock()
	if p == nil {
		writeError(w, http.StatusServiceUnavailable, "no stream pipeline attached")
		return
	}
	resp := StreamStatsResponse{
		Pipeline:   p.Stats(),
		Store:      p.AlertStore().Stats(),
		Rates:      p.Rates(),
		Windows:    p.Windows(),
		Quarantine: QuarantineStatsResponse{Service: s.svc.QuarantineStats()},
	}
	if pol != nil {
		st := pol.Stats()
		resp.Quarantine.Policy = &st
	}
	if adm != nil {
		st := adm.Status()
		resp.Backpressure = &st
	}
	if reg != nil {
		resp.Obs = reg.Summaries()
	}
	if b := s.clusterBackend(); b != nil && !scopeLocal(r) {
		view := b.ClusterStats()
		resp.Cluster = &view
		setMergeHeaders(w, view.Info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// Alerts fetches up to limit recent alerts, newest first (client side).
func (c *Client) Alerts(limit int) ([]store.Alert, error) {
	resp, err := c.AlertsPage(store.AlertQuery{Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Alerts, nil
}

// AlertsPage fetches one page of alerts with the full filter set.
func (c *Client) AlertsPage(q store.AlertQuery) (AlertsResponse, error) {
	params := url.Values{}
	if q.Limit > 0 {
		params.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Offset > 0 {
		params.Set("offset", strconv.Itoa(q.Offset))
	}
	if q.UserID != 0 {
		params.Set("user", strconv.FormatUint(q.UserID, 10))
	}
	if q.Detector != "" {
		params.Set("detector", q.Detector)
	}
	if !q.Since.IsZero() {
		params.Set("since", q.Since.Format(time.RFC3339))
	}
	if !q.Until.IsZero() {
		params.Set("until", q.Until.Format(time.RFC3339))
	}
	path := "/api/v1/alerts"
	if len(params) > 0 {
		path += "?" + params.Encode()
	}
	var out AlertsResponse
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// StreamStats fetches the pipeline counter snapshot and window rates.
func (c *Client) StreamStats() (StreamStatsResponse, error) {
	var out StreamStatsResponse
	err := c.do(http.MethodGet, "/api/v1/alerts/stats", nil, &out)
	return out, err
}
