package api

import (
	"fmt"
	"net/http"

	"locheat/internal/stream"
)

// This file mounts the online-detection surface: when a stream.Pipeline
// is attached, the API exposes its recent alerts and counters so
// operators (and the paper's would-be Foursquare admins) can watch
// cheating detection happen live instead of waiting for the §4 batch
// analytics.
//
//	GET /api/v1/alerts?limit=N   recent alerts, newest first
//	GET /api/v1/alerts/stats     pipeline counters + tumbling-window rates
//
// Both endpoints require an API key, like the rest of the surface, and
// return 503 until a pipeline is attached.

// StreamStatsResponse is the GET /alerts/stats body.
type StreamStatsResponse struct {
	Pipeline stream.Stats         `json:"pipeline"`
	Rates    stream.Rates         `json:"rates"`
	Windows  []stream.WindowStats `json:"windows"`
}

// AttachPipeline mounts the alert endpoints over p. Call once, before
// serving; a nil pipeline leaves the endpoints answering 503.
func (s *Server) AttachPipeline(p *stream.Pipeline) {
	s.mu.Lock()
	s.pipeline = p
	s.mu.Unlock()
}

func (s *Server) streamPipeline() *stream.Pipeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipeline
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	p := s.streamPipeline()
	if p == nil {
		writeError(w, http.StatusServiceUnavailable, "no stream pipeline attached")
		return
	}
	limit := queryInt(r, "limit", 50)
	alerts := p.RecentAlerts(limit)
	if alerts == nil {
		alerts = []stream.Alert{}
	}
	writeJSON(w, http.StatusOK, alerts)
}

func (s *Server) handleAlertStats(w http.ResponseWriter, r *http.Request) {
	p := s.streamPipeline()
	if p == nil {
		writeError(w, http.StatusServiceUnavailable, "no stream pipeline attached")
		return
	}
	writeJSON(w, http.StatusOK, StreamStatsResponse{
		Pipeline: p.Stats(),
		Rates:    p.Rates(),
		Windows:  p.Windows(),
	})
}

// Alerts fetches up to limit recent alerts, newest first (client side).
func (c *Client) Alerts(limit int) ([]stream.Alert, error) {
	var out []stream.Alert
	err := c.do(http.MethodGet, fmt.Sprintf("/api/v1/alerts?limit=%d", limit), nil, &out)
	return out, err
}

// StreamStats fetches the pipeline counter snapshot and window rates.
func (c *Client) StreamStats() (StreamStatsResponse, error) {
	var out StreamStatsResponse
	err := c.do(http.MethodGet, "/api/v1/alerts/stats", nil, &out)
	return out, err
}
