package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"locheat/internal/cluster"
	"locheat/internal/lbsn"
)

// Quarantine admin surface — the operator's view of the §4 → §2.3
// feedback loop, plus manual overrides for the cases the policy gets
// wrong in either direction:
//
//	GET    /api/v1/quarantine          active quarantines
//	POST   /api/v1/quarantine          {userId, seconds, reason} manual quarantine
//	DELETE /api/v1/quarantine/{id}     lift a quarantine early
//
// All three require an API key. Unlike the alert endpoints these work
// without a pipeline attached — quarantine is service state.

// QuarantineRequest is the POST /quarantine body.
type QuarantineRequest struct {
	UserID  uint64 `json:"userId"`
	Seconds int64  `json:"seconds"`
	Reason  string `json:"reason,omitempty"`
}

// QuarantineResponse confirms a manual quarantine or release. Until is
// a pointer so release responses omit it (encoding/json never treats a
// struct-typed time.Time as empty).
type QuarantineResponse struct {
	UserID      uint64     `json:"userId"`
	Quarantined bool       `json:"quarantined"`
	Until       *time.Time `json:"until,omitempty"`
}

func (s *Server) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		var list []lbsn.QuarantineView
		if b := s.clusterBackend(); b != nil && !scopeLocal(r) {
			// Merged cluster view: one entry per user across every live
			// node, the latest-expiring verdict winning. The body stays a
			// bare list for client compatibility; the headers say whether
			// the view is partial (an unreachable peer's quarantines are
			// missing, which an auditor must be able to tell apart from
			// "none exist").
			var info cluster.MergeInfo
			list, info = b.ClusterQuarantines()
			setMergeHeaders(w, info)
		} else {
			list = s.svc.QuarantinedUsers()
		}
		if list == nil {
			list = []lbsn.QuarantineView{}
		}
		writeJSON(w, http.StatusOK, list)
	case http.MethodPost:
		var req QuarantineRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "malformed JSON body")
			return
		}
		if req.Seconds <= 0 {
			writeError(w, http.StatusBadRequest, "seconds must be positive")
			return
		}
		reason := req.Reason
		if reason == "" {
			reason = "operator action"
		}
		d := time.Duration(req.Seconds) * time.Second
		err := s.svc.Quarantine(lbsn.UserID(req.UserID), d, reason, lbsn.QuarantineSourceManual)
		switch {
		case errors.Is(err, lbsn.ErrUserNotFound):
			writeError(w, http.StatusNotFound, err.Error())
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		until := s.svc.Clock().Now().Add(d)
		writeJSON(w, http.StatusOK, QuarantineResponse{
			UserID:      req.UserID,
			Quarantined: true,
			Until:       &until,
		})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func (s *Server) handleQuarantineUser(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/api/v1/quarantine/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed user id")
		return
	}
	switch r.Method {
	case http.MethodDelete:
		if !s.svc.Unquarantine(lbsn.UserID(id)) {
			writeError(w, http.StatusNotFound, "no active quarantine for that user")
			return
		}
		writeJSON(w, http.StatusOK, QuarantineResponse{UserID: id, Quarantined: false})
	default:
		writeError(w, http.StatusMethodNotAllowed, "DELETE only")
	}
}

// QuarantineList fetches the active quarantines (client side).
func (c *Client) QuarantineList() ([]lbsn.QuarantineView, error) {
	var out []lbsn.QuarantineView
	err := c.do(http.MethodGet, "/api/v1/quarantine", nil, &out)
	return out, err
}

// QuarantineUser manually quarantines a user for d.
func (c *Client) QuarantineUser(id uint64, d time.Duration, reason string) (QuarantineResponse, error) {
	var out QuarantineResponse
	err := c.do(http.MethodPost, "/api/v1/quarantine", QuarantineRequest{
		UserID:  id,
		Seconds: int64(d / time.Second),
		Reason:  reason,
	}, &out)
	return out, err
}

// UnquarantineUser lifts a quarantine early.
func (c *Client) UnquarantineUser(id uint64) (QuarantineResponse, error) {
	var out QuarantineResponse
	err := c.do(http.MethodDelete, fmt.Sprintf("/api/v1/quarantine/%d", id), nil, &out)
	return out, err
}
