package api

import (
	"net/http/httptest"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/stream"
)

func TestAlertsEndpoints(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	lincoln := geo.Point{Lat: 40.8136, Lon: -96.7026}
	sf := geo.Point{Lat: 37.7749, Lon: -122.4194}
	v1, err := svc.AddVenue("Here", "", "Lincoln", lincoln, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := svc.AddVenue("There", "", "San Francisco", sf, nil)
	if err != nil {
		t.Fatal(err)
	}
	user := svc.RegisterUser("cheat", "", "Lincoln")

	p := stream.New(stream.Config{Shards: 1, Clock: clock})
	defer p.Close()
	svc.SetCheckinObserver(func(ev lbsn.CheckinEvent) { p.Publish(ev) })

	srv := NewServer(svc)
	srv.IssueKey("k")
	srv.AttachPipeline(p)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL, "k")

	// A cross-country teleport through the developer API — §3.1 vector
	// 3 — must surface on /alerts.
	if _, err := client.CheckIn(uint64(user), uint64(v1), lincoln); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Minute)
	if _, err := client.CheckIn(uint64(user), uint64(v2), sf); err != nil {
		t.Fatal(err)
	}

	// The pipeline is asynchronous; poll briefly for the alert to land.
	deadline := time.Now().Add(2 * time.Second)
	var alerts []stream.Alert
	for time.Now().Before(deadline) {
		alerts, err = client.Alerts(10)
		if err != nil {
			t.Fatal(err)
		}
		if len(alerts) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(alerts) == 0 {
		t.Fatal("no alerts after a teleporting check-in")
	}
	foundSpeed := false
	for _, a := range alerts {
		if a.Detector == stream.StageSpeed && a.UserID == uint64(user) {
			foundSpeed = true
		}
	}
	if !foundSpeed {
		t.Fatalf("no speed alert for the teleporting user: %+v", alerts)
	}

	stats, err := client.StreamStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pipeline.Published != 2 {
		t.Fatalf("pipeline published %d, want 2", stats.Pipeline.Published)
	}
	if stats.Pipeline.AlertsByDetector[stream.StageSpeed] == 0 {
		t.Fatalf("stats missing speed alerts: %+v", stats.Pipeline)
	}
	if len(stats.Windows) == 0 {
		t.Fatal("stats missing tumbling windows")
	}

	// Without a key the alert surface must stay closed.
	if _, err := NewClient(ts.URL, "").Alerts(1); err != ErrUnauthorized {
		t.Fatalf("unauthenticated alerts read: %v", err)
	}
}

func TestAlertsWithoutPipeline(t *testing.T) {
	svc := lbsn.New(lbsn.DefaultConfig(), simclock.Real{}, nil)
	srv := NewServer(svc)
	srv.IssueKey("k")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL, "k")
	if _, err := client.Alerts(1); err == nil {
		t.Fatal("alerts served with no pipeline attached")
	}
}
