package api

import (
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"locheat/internal/cluster"
	"locheat/internal/trace"
)

// Flight-recorder surface: when a Tracer is attached, the API serves
// the retained trace trees so an operator chasing a slow or alerting
// check-in can see where the time went — which shard ring it waited
// in, which detector stages ran, whether it hopped nodes, when the
// journal fsynced.
//
//	GET /api/v1/traces?user=N&detector=S&minMs=N&limit=N
//	    retained traces, newest first; limit defaults to 50, capped
//	    at 500; minMs filters on total stitched duration
//	GET /api/v1/traces/{id}
//	    one trace tree by its 32-hex-digit ID (the value histogram
//	    exemplars and check-in responses carry)
//
// With a cluster backend attached both endpoints serve the merged
// view — fragments from every live node stitched into one tree per
// trace — and carry the X-Cluster-Nodes / X-Cluster-Failed headers
// like the other merged endpoints, so a partial view during a peer
// outage is visible instead of a silent hole. ?scope=local bypasses
// the merge. Without a tracer the endpoints answer 503.

// TraceBackend is the optional cluster-side trace scatter; a
// ClusterBackend that also implements it (as *cluster.Node does)
// serves the merged trace view. Separate from ClusterBackend so
// existing fakes and pre-trace backends keep compiling.
type TraceBackend interface {
	ClusterTraces(f trace.Filter) ([]trace.View, cluster.MergeInfo)
	ClusterTrace(id trace.ID) (trace.View, bool, cluster.MergeInfo)
}

var _ TraceBackend = (*cluster.Node)(nil)

// DefaultTracesLimit is the page size when ?limit is absent;
// MaxTracesLimit the hard cap (the recorder is bounded anyway).
const (
	DefaultTracesLimit = 50
	MaxTracesLimit     = 500
)

// TracesResponse is the GET /traces body.
type TracesResponse struct {
	Traces []trace.View `json:"traces"`
	// Cluster is set when the merged view served the request.
	Cluster *cluster.MergeInfo `json:"cluster,omitempty"`
}

// TraceResponse is the GET /traces/{id} body.
type TraceResponse struct {
	Trace   trace.View         `json:"trace"`
	Cluster *cluster.MergeInfo `json:"cluster,omitempty"`
}

// AttachTracer mounts the trace endpoints over t and makes the
// check-in handler head-sample requests (so responses can carry
// their trace ID). Call once, before serving; nil detaches.
func (s *Server) AttachTracer(t *trace.Tracer) {
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
}

func (s *Server) tracerHandle() *trace.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tracer
}

// traceBackend returns the cluster backend's trace scatter, if the
// attached backend has one.
func (s *Server) traceBackend() TraceBackend {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tb, ok := s.cluster.(TraceBackend); ok {
		return tb
	}
	return nil
}

// parseTracesQuery builds the recorder filter from request
// parameters, clamping the page size.
func parseTracesQuery(r *http.Request) (trace.Filter, string) {
	f := trace.Filter{
		Limit:    DefaultTracesLimit,
		Detector: r.URL.Query().Get("detector"),
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return f, "malformed limit " + strconv.Quote(v)
		}
		f.Limit = n
	}
	if f.Limit > MaxTracesLimit {
		f.Limit = MaxTracesLimit
	}
	if v := r.URL.Query().Get("user"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return f, "malformed user " + strconv.Quote(v)
		}
		f.UserID = n
	}
	if v := r.URL.Query().Get("minMs"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return f, "malformed minMs " + strconv.Quote(v)
		}
		f.MinDurationNanos = n * 1e6
	}
	return f, ""
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	tr := s.tracerHandle()
	if tr == nil {
		writeError(w, http.StatusServiceUnavailable, "tracing disabled (no tracer attached)")
		return
	}
	f, errMsg := parseTracesQuery(r)
	if errMsg != "" {
		writeError(w, http.StatusBadRequest, errMsg)
		return
	}
	resp := TracesResponse{}
	if b := s.traceBackend(); b != nil && !scopeLocal(r) {
		var info cluster.MergeInfo
		resp.Traces, info = b.ClusterTraces(f)
		resp.Cluster = &info
		setMergeHeaders(w, info)
	} else {
		resp.Traces = tr.List(f)
	}
	if resp.Traces == nil {
		resp.Traces = []trace.View{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	tr := s.tracerHandle()
	if tr == nil {
		writeError(w, http.StatusServiceUnavailable, "tracing disabled (no tracer attached)")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/api/v1/traces/")
	id, ok := trace.ParseID(idStr)
	if !ok {
		writeError(w, http.StatusBadRequest, "malformed trace id (want 32 hex digits)")
		return
	}
	resp := TraceResponse{}
	found := false
	if b := s.traceBackend(); b != nil && !scopeLocal(r) {
		var info cluster.MergeInfo
		resp.Trace, found, info = b.ClusterTrace(id)
		resp.Cluster = &info
		setMergeHeaders(w, info)
	} else {
		resp.Trace, found = tr.Get(id)
	}
	if !found {
		writeError(w, http.StatusNotFound, "trace not retained (recycled, evicted, or never sampled)")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Traces fetches retained traces matching the filter (client side).
func (c *Client) Traces(f trace.Filter) (TracesResponse, error) {
	params := url.Values{}
	if f.UserID != 0 {
		params.Set("user", strconv.FormatUint(f.UserID, 10))
	}
	if f.Detector != "" {
		params.Set("detector", f.Detector)
	}
	if f.MinDurationNanos > 0 {
		params.Set("minMs", strconv.FormatInt(f.MinDurationNanos/1e6, 10))
	}
	if f.Limit > 0 {
		params.Set("limit", strconv.Itoa(f.Limit))
	}
	path := "/api/v1/traces"
	if enc := params.Encode(); enc != "" {
		path += "?" + enc
	}
	var out TracesResponse
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// Trace fetches one trace tree by ID (client side).
func (c *Client) Trace(id string) (TraceResponse, error) {
	var out TraceResponse
	err := c.do(http.MethodGet, "/api/v1/traces/"+id, nil, &out)
	return out, err
}
