package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/stream"
)

func TestQuarantineEndpoints(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	user := svc.RegisterUser("suspect", "", "Lincoln")
	srv := NewServer(svc)
	srv.IssueKey("k")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL, "k")

	// Empty list first.
	list, err := client.QuarantineList()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("fresh service has quarantines: %+v", list)
	}

	// Manual quarantine.
	resp, err := client.QuarantineUser(uint64(user), time.Hour, "ops override")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Quarantined || resp.Until == nil || !resp.Until.Equal(clock.Now().Add(time.Hour)) {
		t.Fatalf("quarantine response %+v", resp)
	}
	if !svc.IsQuarantined(user) {
		t.Fatal("POST /quarantine did not quarantine")
	}
	list, err = client.QuarantineList()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].UserID != user || list[0].Source != lbsn.QuarantineSourceManual {
		t.Fatalf("list %+v", list)
	}
	if list[0].Reason != "ops override" {
		t.Fatalf("reason %q", list[0].Reason)
	}

	// Release: no expiry on the response, just the cleared state.
	rel, err := client.UnquarantineUser(uint64(user))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Quarantined || rel.Until != nil {
		t.Fatalf("release response %+v", rel)
	}
	if svc.IsQuarantined(user) {
		t.Fatal("DELETE /quarantine/{id} did not release")
	}
	if _, err := client.UnquarantineUser(uint64(user)); err != ErrNotFound {
		t.Fatalf("double release: %v", err)
	}

	// Error paths.
	if _, err := client.QuarantineUser(9999, time.Hour, ""); err != ErrNotFound {
		t.Fatalf("unknown user: %v", err)
	}
	if _, err := client.QuarantineUser(uint64(user), 0, ""); err != ErrBadRequest {
		t.Fatalf("zero duration: %v", err)
	}
	// No key: closed.
	if _, err := NewClient(ts.URL, "").QuarantineList(); err != ErrUnauthorized {
		t.Fatalf("unauthenticated quarantine list: %v", err)
	}
}

// TestJournalRestartAndAutoQuarantine is the PR's acceptance path end
// to end: a daemon-shaped stack (service + journal-backed pipeline +
// policy + API) detects a synthetic cheater, auto-quarantines them,
// denies their next check-in — then "restarts" onto the same journal
// dir and serves the pre-restart alerts from /api/v1/alerts.
func TestJournalRestartAndAutoQuarantine(t *testing.T) {
	dir := t.TempDir()
	lincoln := geo.Point{Lat: 40.8136, Lon: -96.7026}
	sf := geo.Point{Lat: 37.7749, Lon: -122.4194}

	buildStack := func() (*lbsn.Service, *stream.Pipeline, *store.AlertJournal, *httptest.Server, *simclock.Simulated) {
		clock := simclock.NewSimulated(simclock.Epoch())
		svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
		j, err := store.OpenAlertJournal(store.JournalConfig{Dir: dir, FsyncEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		p := stream.New(stream.Config{Shards: 1, Clock: clock, Store: j})
		svc.SetCheckinObserver(func(ev lbsn.CheckinEvent) { p.Publish(ev) })
		policy := lbsn.NewQuarantinePolicy(svc, lbsn.QuarantinePolicyConfig{
			Threshold: 3,
			Window:    time.Hour,
			Duration:  24 * time.Hour,
		})
		go policy.Run(p.Subscribe(64))
		srv := NewServer(svc)
		srv.IssueKey("k")
		srv.AttachPipeline(p)
		srv.AttachQuarantinePolicy(policy)
		return svc, p, j, httptest.NewServer(srv), clock
	}

	// --- first life: detect and quarantine a teleporting cheater.
	svc, p, j, ts, clock := buildStack()
	user := svc.RegisterUser("cheat", "", "Lincoln")
	v1, err := svc.AddVenue("Here", "", "Lincoln", lincoln, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := svc.AddVenue("There", "", "San Francisco", sf, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(ts.URL, "k")

	// Teleport back and forth: every hop raises speed (and
	// cheater-code) alerts until the policy trips.
	venues := []struct {
		id  lbsn.VenueID
		loc geo.Point
	}{{v1, lincoln}, {v2, sf}}
	start := time.Now()
	for i := 0; i < 8 && !svc.IsQuarantined(user); i++ {
		v := venues[i%2]
		clock.Advance(5 * time.Minute)
		if _, err := client.CheckIn(uint64(user), uint64(v.id), v.loc); err != nil {
			t.Fatal(err)
		}
		// The pipeline and policy are asynchronous; give this hop's
		// alert a moment to propagate before the next.
		deadline := time.Now().Add(time.Second)
		for time.Now().Before(deadline) {
			if st := p.Stats(); st.Processed == st.Published {
				break
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitQuarantine := time.Now().Add(2 * time.Second)
	for !svc.IsQuarantined(user) && time.Now().Before(waitQuarantine) {
		time.Sleep(5 * time.Millisecond)
	}
	if !svc.IsQuarantined(user) {
		t.Fatalf("cheater never auto-quarantined; stats %+v", p.Stats())
	}
	t.Logf("detection-to-quarantine: %v wall for a threshold-3 policy", time.Since(start))

	// Subsequent check-ins are denied by quarantine.
	res, err := client.CheckIn(uint64(user), uint64(v1), lincoln)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != string(lbsn.DenyQuarantined) {
		t.Fatalf("post-quarantine check-in: %+v", res)
	}

	// Stats surface the whole loop.
	stats, err := client.StreamStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store.Kind != "journal" || stats.Store.Appended == 0 {
		t.Fatalf("store stats %+v", stats.Store)
	}
	if stats.Quarantine.Service.Active != 1 || stats.Quarantine.Policy == nil || stats.Quarantine.Policy.Triggered != 1 {
		t.Fatalf("quarantine stats %+v", stats.Quarantine)
	}

	preRestart, err := client.AlertsPage(store.AlertQuery{Limit: MaxAlertsLimit})
	if err != nil {
		t.Fatal(err)
	}
	if preRestart.Total == 0 {
		t.Fatal("no alerts before restart")
	}

	// --- shutdown: drain pipeline, close journal.
	ts.Close()
	p.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// --- second life on the same journal dir.
	_, p2, j2, ts2, _ := buildStack()
	defer func() { ts2.Close(); p2.Close(); j2.Close() }()
	client2 := NewClient(ts2.URL, "k")
	replayed, err := client2.AlertsPage(store.AlertQuery{Limit: MaxAlertsLimit})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Total != preRestart.Total {
		t.Fatalf("restart lost alerts: %d before, %d after", preRestart.Total, replayed.Total)
	}
	if len(replayed.Alerts) == 0 || replayed.Alerts[0].UserID != uint64(user) {
		t.Fatalf("replayed alerts wrong: %+v", replayed.Alerts[:1])
	}
	// Filtered view also spans the restart.
	byUser, err := client2.AlertsPage(store.AlertQuery{UserID: uint64(user), Detector: stream.StageSpeed})
	if err != nil {
		t.Fatal(err)
	}
	if byUser.Total == 0 {
		t.Fatal("filtered query found nothing after restart")
	}
}

func TestAlertsPagination(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	mem := store.NewMemoryAlertStore(256)
	// Seed the store directly: endpoint behaviour is what's under test.
	t0 := simclock.Epoch()
	for i := 1; i <= 120; i++ {
		det := stream.StageSpeed
		if i%3 == 0 {
			det = stream.StageCheaterCode
		}
		if err := mem.Append(store.Alert{
			Seq: uint64(i), Detector: det, UserID: uint64(i%2 + 1),
			At: t0.Add(time.Duration(i) * time.Minute), Detail: "x",
		}); err != nil {
			t.Fatal(err)
		}
	}
	p := stream.New(stream.Config{Shards: 1, Clock: clock, Store: mem})
	defer p.Close()
	srv := NewServer(svc)
	srv.IssueKey("k")
	srv.AttachPipeline(p)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL, "k")

	// Default limit bounds the formerly unbounded endpoint.
	page, err := client.AlertsPage(store.AlertQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Alerts) != DefaultAlertsLimit || page.Total != 120 || page.Limit != DefaultAlertsLimit {
		t.Fatalf("default page: %d alerts, total %d, limit %d", len(page.Alerts), page.Total, page.Limit)
	}
	if page.Alerts[0].Seq != 120 {
		t.Fatalf("newest first violated: %d", page.Alerts[0].Seq)
	}

	// Offset walks the set without overlap.
	p2, err := client.AlertsPage(store.AlertQuery{Limit: 40, Offset: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Alerts) != 40 || p2.Alerts[0].Seq != 80 || p2.Offset != 40 {
		t.Fatalf("offset page: %d alerts, first seq %d", len(p2.Alerts), p2.Alerts[0].Seq)
	}

	// The server clamps absurd limits.
	raw, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/alerts?limit=999999", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw.Header.Set("X-API-Key", "k")
	resp, err := http.DefaultClient.Do(raw)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var clamped AlertsResponse
	if err := json.NewDecoder(resp.Body).Decode(&clamped); err != nil {
		t.Fatal(err)
	}
	if clamped.Limit != MaxAlertsLimit || len(clamped.Alerts) != 120 {
		t.Fatalf("limit not clamped: limit %d, %d alerts", clamped.Limit, len(clamped.Alerts))
	}

	// since + detector + user filters compose.
	f, err := client.AlertsPage(store.AlertQuery{
		Detector: stream.StageCheaterCode,
		UserID:   2,
		Since:    t0.Add(60 * time.Minute),
		Limit:    500,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 61; i <= 120; i++ {
		if i%3 == 0 && i%2+1 == 2 {
			want++
		}
	}
	if f.Total != want {
		t.Fatalf("filtered total %d, want %d", f.Total, want)
	}

	// Malformed params are 400s, not silent defaults.
	for _, qs := range []string{"limit=-1", "limit=zero", "offset=-2", "user=bob", "since=notatime"} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/alerts?"+qs, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", "k")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", qs, resp.StatusCode)
		}
	}
}
