package api

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"locheat/internal/cluster"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/trace"
)

// fakeTraceCluster is a ClusterBackend that also scatters traces — a
// canned stand-in for *cluster.Node so the API's merged-trace plumbing
// (headers, degraded peers, scope=local bypass) can be tested without
// booting a cluster.
type fakeTraceCluster struct {
	fakeCluster
	traces []trace.View
	info   cluster.MergeInfo
	lastF  trace.Filter
}

func (f *fakeTraceCluster) ClusterTraces(flt trace.Filter) ([]trace.View, cluster.MergeInfo) {
	f.lastF = flt
	return f.traces, f.info
}

func (f *fakeTraceCluster) ClusterTrace(id trace.ID) (trace.View, bool, cluster.MergeInfo) {
	for _, v := range f.traces {
		if v.ID == id.String() {
			return v, true, f.info
		}
	}
	return trace.View{}, false, f.info
}

func traceAPIWorld(t *testing.T, tr *trace.Tracer, fc *fakeTraceCluster) (*Client, string) {
	t.Helper()
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	sf, _ := geo.FindCity("San Francisco")
	if _, err := svc.AddVenue("Starbucks #1", "1 Market St", "San Francisco", sf.Center, nil); err != nil {
		t.Fatal(err)
	}
	svc.RegisterUser("Dev", "dev", "San Francisco")
	srv := NewServer(svc)
	srv.IssueKey("k")
	srv.AttachTracer(tr)
	if fc != nil {
		srv.AttachCluster(fc)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, "k"), ts.URL
}

func traceGET(t *testing.T, base, path string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", "k")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestTracesRequireTracer(t *testing.T) {
	_, base := traceAPIWorld(t, nil, nil)
	for _, path := range []string{"/api/v1/traces", "/api/v1/traces/" + strings.Repeat("ab", 16)} {
		if resp := traceGET(t, base, path); resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s without tracer: status %d, want 503", path, resp.StatusCode)
		}
	}
}

func TestTraceByIDValidation(t *testing.T) {
	tr := trace.New(trace.Config{Node: "n1", SampleRate: 1})
	_, base := traceAPIWorld(t, tr, nil)
	for _, bad := range []string{"xyz", strings.Repeat("0", 32), strings.Repeat("a", 31)} {
		if resp := traceGET(t, base, "/api/v1/traces/"+bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("id %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	// Well-formed but unknown: the body names the likely causes.
	resp := traceGET(t, base, "/api/v1/traces/"+strings.Repeat("ab", 16))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestTracesDegradeWhenPeerDown pins the partial-view contract: a dead
// peer during the trace scatter must surface as X-Cluster-Failed > 0 on
// a 200 response — never as an error that hides the fragments the live
// nodes did return.
func TestTracesDegradeWhenPeerDown(t *testing.T) {
	tr := trace.New(trace.Config{Node: "n1", SampleRate: 1})
	id := strings.Repeat("ab", 16)
	fc := &fakeTraceCluster{
		traces: []trace.View{{ID: id, UserID: 7, Nodes: []string{"n1", "n2"}}},
		info:   cluster.MergeInfo{Nodes: 2, Failed: 1},
	}
	client, base := traceAPIWorld(t, tr, fc)

	for _, path := range []string{"/api/v1/traces", "/api/v1/traces/" + id} {
		resp := traceGET(t, base, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, want 200 despite failed peer", path, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Cluster-Nodes"); got != "2" {
			t.Fatalf("%s: X-Cluster-Nodes = %q, want 2", path, got)
		}
		if got := resp.Header.Get("X-Cluster-Failed"); got != "1" {
			t.Fatalf("%s: X-Cluster-Failed = %q, want 1", path, got)
		}
	}

	// The typed client surfaces the same provenance in the body.
	list, err := client.Traces(trace.Filter{UserID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Cluster == nil || list.Cluster.Failed != 1 {
		t.Fatalf("merged list = %+v", list)
	}
	if fc.lastF.UserID != 7 {
		t.Fatalf("filter not forwarded: %+v", fc.lastF)
	}
	one, err := client.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	if one.Trace.UserID != 7 || one.Cluster == nil || one.Cluster.Failed != 1 {
		t.Fatalf("merged trace = %+v", one)
	}

	// scope=local bypasses the scatter entirely: no headers, local
	// recorder only (empty here).
	local := traceGET(t, base, "/api/v1/traces?scope=local")
	if local.StatusCode != http.StatusOK {
		t.Fatalf("scope=local: status %d", local.StatusCode)
	}
	if got := local.Header.Get("X-Cluster-Nodes"); got != "" {
		t.Fatalf("scope=local still carries X-Cluster-Nodes=%q", got)
	}
}

func TestTracesServeLocalRecorder(t *testing.T) {
	tr := trace.New(trace.Config{Node: "n1", SampleRate: 1})
	ctx := tr.Sample(true) // forced => retained
	tr.Begin(ctx, 42, 1, 1000)
	tr.MarkAlert(ctx, "speed")
	tr.End(ctx, 2000)

	client, _ := traceAPIWorld(t, tr, nil)
	list, err := client.Traces(trace.Filter{Detector: "speed"})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].UserID != 42 {
		t.Fatalf("local traces = %+v", list.Traces)
	}
	if list.Cluster != nil {
		t.Fatalf("single-node response claims merged provenance: %+v", list.Cluster)
	}
	one, err := client.Trace(ctx.ID.String())
	if err != nil {
		t.Fatal(err)
	}
	if !one.Trace.Alerted {
		t.Fatalf("trace by id = %+v", one.Trace)
	}
}

func TestTracesBadQuery(t *testing.T) {
	tr := trace.New(trace.Config{Node: "n1", SampleRate: 1})
	_, base := traceAPIWorld(t, tr, nil)
	for _, q := range []string{"?limit=0", "?limit=x", "?user=-1", "?minMs=-5"} {
		if resp := traceGET(t, base, "/api/v1/traces"+q); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestCheckinResponseCarriesTraceID pins the edge head-sampling loop:
// with sampling on, the check-in response names the trace the caller
// can immediately fetch from /api/v1/traces/{id}.
func TestCheckinResponseCarriesTraceID(t *testing.T) {
	tr := trace.New(trace.Config{Node: "n1", SampleRate: 1})
	client, _ := traceAPIWorld(t, tr, nil)
	sf, _ := geo.FindCity("San Francisco")
	res, err := client.CheckIn(1, 1, sf.Center)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TraceID) != 32 {
		t.Fatalf("traceId = %q, want 32 hex digits at sample rate 1", res.TraceID)
	}
	if _, ok := trace.ParseID(res.TraceID); !ok {
		t.Fatalf("traceId %q does not parse", res.TraceID)
	}

	// Without a tracer the field stays absent.
	plain, _ := traceAPIWorld(t, nil, nil)
	res, err = plain.CheckIn(1, 1, sf.Center)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != "" {
		t.Fatalf("traceId = %q without a tracer, want empty", res.TraceID)
	}
}
