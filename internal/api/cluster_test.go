package api

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"locheat/internal/cluster"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/stream"
)

// fakeCluster is a canned ClusterBackend: the API's merged-view
// plumbing can be tested without booting three daemons (the real
// multi-node path is covered by internal/cluster's e2e test).
type fakeCluster struct {
	alerts []store.Alert
	quar   []lbsn.QuarantineView
	status cluster.Status
	lastQ  store.AlertQuery
}

func (f *fakeCluster) ClusterAlerts(q store.AlertQuery) ([]store.Alert, int, cluster.MergeInfo) {
	f.lastQ = q
	page := store.PageAlerts(f.alerts, q.Offset, q.Limit)
	return page, len(f.alerts), cluster.MergeInfo{Nodes: 3, Deduped: 1}
}

func (f *fakeCluster) ClusterQuarantines() ([]lbsn.QuarantineView, cluster.MergeInfo) {
	return f.quar, cluster.MergeInfo{Nodes: 3}
}

func (f *fakeCluster) ClusterStats() cluster.ClusterStatsView {
	return cluster.ClusterStatsView{
		Totals: cluster.ClusterTotals{Alerts: uint64(len(f.alerts))},
		Info:   cluster.MergeInfo{Nodes: 3},
	}
}

func (f *fakeCluster) Status() cluster.Status { return f.status }

func newClusterTestServer(t *testing.T, fc *fakeCluster) (*Client, *lbsn.Service, *stream.Pipeline) {
	t.Helper()
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	p := stream.New(stream.Config{Shards: 1, Clock: clock})
	t.Cleanup(p.Close)
	srv := NewServer(svc)
	srv.IssueKey("k")
	srv.AttachPipeline(p)
	if fc != nil {
		srv.AttachCluster(fc)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, "k"), svc, p
}

func TestAlertsServeMergedClusterView(t *testing.T) {
	at := simclock.Epoch().Add(time.Hour)
	fc := &fakeCluster{
		alerts: []store.Alert{
			{Detector: "speed", UserID: 2, At: at.Add(time.Minute), Detail: "newer"},
			{Detector: "speed", UserID: 1, At: at, Detail: "older"},
		},
		status: cluster.Status{Self: "n1", Ring: []string{"n1", "n2", "n3"}},
	}
	client, _, _ := newClusterTestServer(t, fc)

	resp, err := client.AlertsPage(store.AlertQuery{Limit: 1, Offset: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Total != 2 {
		t.Fatalf("merged total = %d, want cluster-wide 2", resp.Total)
	}
	if len(resp.Alerts) != 1 || resp.Alerts[0].UserID != 1 {
		t.Fatalf("merged page = %v, want just user 1", resp.Alerts)
	}
	if resp.Cluster == nil || resp.Cluster.Nodes != 3 || resp.Cluster.Deduped != 1 {
		t.Fatalf("merge info missing or wrong: %+v", resp.Cluster)
	}
	if fc.lastQ.Limit != 1 || fc.lastQ.Offset != 1 {
		t.Fatalf("query not forwarded to backend: %+v", fc.lastQ)
	}

	st, err := client.ClusterStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Self != "n1" || len(st.Ring) != 3 {
		t.Fatalf("cluster status = %+v", st)
	}
}

func TestQuarantineServesMergedClusterView(t *testing.T) {
	until := simclock.Epoch().Add(time.Hour)
	fc := &fakeCluster{
		quar: []lbsn.QuarantineView{{UserID: 9, Until: until, Source: lbsn.QuarantineSourcePolicy}},
	}
	client, svc, _ := newClusterTestServer(t, fc)
	// Local state is empty; the merged view still lists the remote
	// node's quarantine.
	if got := svc.QuarantinedUsers(); len(got) != 0 {
		t.Fatalf("local quarantines = %v", got)
	}
	list, err := client.QuarantineList()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].UserID != 9 {
		t.Fatalf("merged quarantine list = %v", list)
	}
}

// TestMergedViewHeadersOnAllMergedEndpoints pins the header contract:
// every merged endpoint — alerts, alert stats AND quarantine — carries
// X-Cluster-Nodes/X-Cluster-Failed, so a partial view during an outage
// is detectable regardless of which surface an auditor reads. (The
// alerts and stats endpoints used to omit them; only quarantine had
// the headers.)
func TestMergedViewHeadersOnAllMergedEndpoints(t *testing.T) {
	fc := &fakeCluster{
		alerts: []store.Alert{{Detector: "speed", UserID: 1, At: simclock.Epoch(), Detail: "x"}},
	}
	client, _, _ := newClusterTestServer(t, fc)

	get := func(path string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, client.BaseURL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", "k")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	for _, path := range []string{"/api/v1/alerts", "/api/v1/alerts/stats", "/api/v1/quarantine"} {
		resp := get(path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Cluster-Nodes"); got != "3" {
			t.Fatalf("%s: X-Cluster-Nodes = %q, want 3", path, got)
		}
		if got := resp.Header.Get("X-Cluster-Failed"); got != "0" {
			t.Fatalf("%s: X-Cluster-Failed = %q, want 0", path, got)
		}
		// scope=local bypasses the merge and must NOT claim a merged
		// provenance.
		local := get(path + "?scope=local")
		if got := local.Header.Get("X-Cluster-Nodes"); got != "" {
			t.Fatalf("%s?scope=local still carries X-Cluster-Nodes=%q", path, got)
		}
	}
}

func TestClusterStatusWithoutBackend(t *testing.T) {
	client, _, _ := newClusterTestServer(t, nil)
	if _, err := client.ClusterStatus(); err == nil {
		t.Fatal("cluster status served on a single-node deployment")
	}
}

// TestAlertsTotalIsPostFilterCount pins the pagination contract: Total
// counts every alert matching the FILTERS, not the page slice — a
// client paging with limit must see a stable total. (Regression guard:
// the merged view reports cluster-wide totals through the same field.)
func TestAlertsTotalIsPostFilterCount(t *testing.T) {
	client, _, p := newClusterTestServer(t, nil)
	at := simclock.Epoch().Add(time.Hour)
	for i := 0; i < 10; i++ {
		det := "speed"
		if i%2 == 1 {
			det = "cheater-code"
		}
		if err := p.AlertStore().Append(store.Alert{
			Detector: det,
			UserID:   uint64(i + 1),
			VenueID:  uint64(i + 101),
			At:       at.Add(time.Duration(i) * time.Minute),
			Detail:   "t",
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := client.AlertsPage(store.AlertQuery{Detector: "speed", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Alerts) != 2 {
		t.Fatalf("page = %d alerts, want 2", len(resp.Alerts))
	}
	if resp.Total != 5 {
		t.Fatalf("total = %d, want 5 (post-filter count, not the page size)", resp.Total)
	}
	// Deeper page: same total, different alerts.
	resp2, err := client.AlertsPage(store.AlertQuery{Detector: "speed", Limit: 2, Offset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Total != 5 || len(resp2.Alerts) != 2 || resp2.Alerts[0].UserID == resp.Alerts[0].UserID {
		t.Fatalf("offset page wrong: total=%d alerts=%v", resp2.Total, resp2.Alerts)
	}
}
