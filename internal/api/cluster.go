package api

import (
	"net/http"
	"strconv"

	"locheat/internal/cluster"
	"locheat/internal/lbsn"
	"locheat/internal/store"
)

// Cluster view: when the daemon runs as part of a partitioned ingest
// tier (internal/cluster), the API's read surface stops being a
// single-node window. With a backend attached:
//
//   - GET /api/v1/alerts      returns the merged cluster view — every
//     node's matching alerts, deduped and time-ordered, with Total
//     counting cluster-wide matches; ?scope=local bypasses the merge
//     (debugging one node);
//   - GET /api/v1/alerts/stats keeps its single-node body (the local
//     pipeline's counters are still the most detailed view) and gains
//     a `cluster` section: per-node pipeline/store/quarantine counters
//     plus cluster-wide totals;
//   - GET /api/v1/quarantine  returns the merged active set (per user,
//     the latest-expiring verdict wins) with `X-Cluster-Nodes` /
//     `X-Cluster-Failed` headers so a partial view during an outage is
//     distinguishable from a complete one (the body stays a bare list
//     for compatibility); POST and DELETE stay local to the node the
//     operator addressed;
//   - GET /api/v1/cluster     reports membership, ring, forwarding,
//     handoff and scatter counters.
//
// Without a backend everything behaves exactly as before — clustering
// is a deployment decision, not an API change.

// ClusterBackend is what the API needs from the cluster tier;
// *cluster.Node implements it. An interface so API tests can fake a
// multi-node view without booting one.
type ClusterBackend interface {
	ClusterAlerts(q store.AlertQuery) ([]store.Alert, int, cluster.MergeInfo)
	ClusterQuarantines() ([]lbsn.QuarantineView, cluster.MergeInfo)
	ClusterStats() cluster.ClusterStatsView
	Status() cluster.Status
}

var _ ClusterBackend = (*cluster.Node)(nil)

// AttachCluster mounts the merged views over b. Call once, before
// serving; nil keeps the API single-node.
func (s *Server) AttachCluster(b ClusterBackend) {
	s.mu.Lock()
	s.cluster = b
	s.mu.Unlock()
}

func (s *Server) clusterBackend() ClusterBackend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cluster
}

// scopeLocal reports whether the request opted out of the merged view.
func scopeLocal(r *http.Request) bool {
	return r.URL.Query().Get("scope") == "local"
}

// setMergeHeaders stamps the merged-view provenance headers every
// merged endpoint carries (alerts, alert stats, quarantine): how many
// nodes contributed and how many live peers could not be reached, so a
// partial view during an outage is distinguishable from a complete
// one without parsing the body.
func setMergeHeaders(w http.ResponseWriter, info cluster.MergeInfo) {
	w.Header().Set("X-Cluster-Nodes", strconv.Itoa(info.Nodes))
	w.Header().Set("X-Cluster-Failed", strconv.Itoa(info.Failed))
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	b := s.clusterBackend()
	if b == nil {
		writeError(w, http.StatusServiceUnavailable, "not clustered (single-node deployment)")
		return
	}
	writeJSON(w, http.StatusOK, b.Status())
}

// ClusterStatus fetches the cluster status (client side).
func (c *Client) ClusterStatus() (cluster.Status, error) {
	var out cluster.Status
	err := c.do(http.MethodGet, "/api/v1/cluster", nil, &out)
	return out, err
}
