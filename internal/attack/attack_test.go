package attack

import (
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
)

// cityGrid builds a service with a dense venue grid around Albuquerque
// (the §3.3 testbed): venues every ~300 m on a k×k grid.
func cityGrid(t *testing.T, k int) (*lbsn.Service, *simclock.Simulated, geo.Point) {
	t.Helper()
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	abq, _ := geo.FindCity("Albuquerque")
	origin := abq.Center
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			loc := origin.Destination(0, float64(i)*300).Destination(90, float64(j)*300)
			if _, err := svc.AddVenue("Grid Venue", "addr", "Albuquerque", loc, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	return svc, clock, origin
}

func venueViews(t *testing.T, svc *lbsn.Service, ids ...lbsn.VenueID) []lbsn.VenueView {
	t.Helper()
	out := make([]lbsn.VenueView, 0, len(ids))
	for _, id := range ids {
		v, ok := svc.Venue(id)
		if !ok {
			t.Fatalf("venue %d missing", id)
		}
		out = append(out, v)
	}
	return out
}

func TestPlanIntervalRule(t *testing.T) {
	svc, _, origin := cityGrid(t, 2)
	_ = svc
	cfg := DefaultPlannerConfig()

	near := lbsn.VenueView{ID: 1, Location: origin}
	half := lbsn.VenueView{ID: 2, Location: origin.Destination(90, 0.5*geo.MetersPerMile)}
	threeMiles := lbsn.VenueView{ID: 3, Location: origin.Destination(90, 3.5*geo.MetersPerMile)}

	sch := Plan(cfg, []lbsn.VenueView{near, half, threeMiles})
	if len(sch) != 3 {
		t.Fatalf("schedule len = %d", len(sch))
	}
	if sch[0].Wait != 0 {
		t.Errorf("first stop wait = %v, want 0", sch[0].Wait)
	}
	// Under a mile: base 5 minutes.
	if sch[1].Wait != 5*time.Minute {
		t.Errorf("short hop wait = %v, want 5m", sch[1].Wait)
	}
	// 3 miles: 3 × 5 minutes (paper: T = D × 5 minutes).
	want := time.Duration(3.0 * float64(5*time.Minute))
	if sch[2].Wait < want-time.Second || sch[2].Wait > want+time.Minute {
		t.Errorf("3-mile hop wait = %v, want ~%v", sch[2].Wait, want)
	}
}

func TestPlanSameVenueCooldown(t *testing.T) {
	origin := geo.Point{Lat: 35.08, Lon: -106.65}
	a := lbsn.VenueView{ID: 1, Location: origin}
	b := lbsn.VenueView{ID: 2, Location: origin.Destination(90, 400)}
	sch := Plan(DefaultPlannerConfig(), []lbsn.VenueView{a, b, a})
	// Revisiting venue 1 ten minutes after its first visit must wait
	// out the 1-hour cooldown.
	if total := sch[1].Wait + sch[2].Wait; total < time.Hour {
		t.Errorf("revisit gap = %v, want >= 1h cooldown", total)
	}
}

func TestPlanZeroConfigDefaults(t *testing.T) {
	origin := geo.Point{Lat: 35.08, Lon: -106.65}
	vs := []lbsn.VenueView{
		{ID: 1, Location: origin},
		{ID: 2, Location: origin.Destination(0, 500)},
	}
	sch := Plan(PlannerConfig{}, vs)
	if sch[1].Wait != 5*time.Minute {
		t.Errorf("defaulted config wait = %v, want 5m", sch[1].Wait)
	}
}

func TestScheduleExecutePassesCheaterCode(t *testing.T) {
	// E5 in miniature: a planned tour through a dense grid must be
	// accepted end to end.
	svc, clock, origin := cityGrid(t, 8)
	user := svc.RegisterUser("Mallory", "", "Lincoln")
	moves := RightTurnTour(12, 450)
	venues, targets, err := PlanTour(svc, origin, moves)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != len(moves)+1 {
		t.Fatalf("targets = %d, want %d", len(targets), len(moves)+1)
	}
	sch := Plan(DefaultPlannerConfig(), venues)
	cheater := NewCheater(svc, user, clock)
	rep, err := cheater.Execute(sch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Denied != 0 {
		for _, s := range rep.Stops {
			if !s.Result.Accepted {
				t.Logf("denied at venue %d: %s %s", s.Stop.Venue, s.Result.Reason, s.Result.Detail)
			}
		}
		t.Fatalf("tour denied %d of %d stops; paper's tour had zero detections", rep.Denied, len(sch))
	}
	if rep.Points == 0 {
		t.Error("accepted tour earned no points")
	}
}

func TestTwentyFiveStopTourLikeFig35(t *testing.T) {
	// The paper "continued checking into 25 venues without being
	// detected as a cheater".
	svc, clock, origin := cityGrid(t, 12)
	user := svc.RegisterUser("Mallory", "", "Lincoln")
	venues, _, err := PlanTour(svc, origin, RightTurnTour(24, 450))
	if err != nil {
		t.Fatal(err)
	}
	if len(venues) != 25 {
		t.Fatalf("tour has %d stops, want 25", len(venues))
	}
	rep, err := NewCheater(svc, user, clock).Execute(Plan(DefaultPlannerConfig(), venues))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 25 || rep.Denied != 0 {
		t.Errorf("tour result = %d accepted / %d denied, want 25/0", rep.Accepted, rep.Denied)
	}
}

func TestRapidScheduleGetsDenied(t *testing.T) {
	// Sanity: ignoring the planner (zero waits) trips the cheater code.
	svc, clock, origin := cityGrid(t, 4)
	user := svc.RegisterUser("Rusher", "", "Lincoln")
	venues, _, err := PlanTour(svc, origin, RightTurnTour(6, 450))
	if err != nil {
		t.Fatal(err)
	}
	sch := make(Schedule, len(venues))
	for i, v := range venues {
		sch[i] = Stop{Venue: v.ID, Location: v.Location} // no waits
	}
	rep, err := NewCheater(svc, user, clock).Execute(sch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Denied == 0 {
		t.Error("zero-wait schedule should trip the cheater code")
	}
}

func TestPlanTourEmptyWorld(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	_, _, err := PlanTour(svc, geo.Point{Lat: 35, Lon: -106}, RightTurnTour(3, 450))
	if err == nil {
		t.Error("empty world tour should fail")
	}
}

func TestRightTurnTourBearings(t *testing.T) {
	moves := RightTurnTour(6, 450)
	wantBearings := []float64{0, 90, 180, 270, 0, 90}
	for i, m := range moves {
		if m.BearingDeg != wantBearings[i] {
			t.Errorf("move %d bearing = %v, want %v", i, m.BearingDeg, wantBearings[i])
		}
		if m.DistanceMeters != 450 {
			t.Errorf("move %d distance = %v", i, m.DistanceMeters)
		}
	}
}

func TestMayorshipCampaign(t *testing.T) {
	svc, clock, origin := cityGrid(t, 3)
	// An incumbent holds venue 1 with 2 days.
	incumbent := svc.RegisterUser("Incumbent", "", "Albuquerque")
	for d := 0; d < 2; d++ {
		res, err := svc.CheckIn(lbsn.CheckinRequest{UserID: incumbent, VenueID: 1, Reported: origin})
		if err != nil || !res.Accepted {
			t.Fatalf("incumbent: %+v %v", res, err)
		}
		clock.Advance(24 * time.Hour)
	}
	attacker := svc.RegisterUser("Mallory", "", "Lincoln")
	targets := venueViews(t, svc, 1, 2, 5)
	reports, held, err := NewCheater(svc, attacker, clock).
		MayorshipCampaign(DefaultPlannerConfig(), targets, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d, want 4", len(reports))
	}
	for d, rep := range reports {
		if rep.Denied != 0 {
			t.Errorf("day %d: %d denials", d, rep.Denied)
		}
	}
	if held != 3 {
		t.Errorf("held %d of 3 mayorships after 4-day campaign", held)
	}
	if svc.Mayor(1) != attacker {
		t.Error("incumbent survived a 4-day vs 2-day contest")
	}
}

func TestTargetSelection(t *testing.T) {
	db := store.New()
	db.UpsertVenue(store.VenueRow{ID: 1, Name: "Orphan", Special: "free", SpecialMayor: true})
	db.UpsertVenue(store.VenueRow{ID: 2, Name: "Open", Special: "10% off", SpecialMayor: false, MayorID: 9})
	db.UpsertVenue(store.VenueRow{ID: 3, Name: "Weak", Special: "deal", SpecialMayor: true, MayorID: 7, UniqueVisitors: 2})
	db.UpsertVenue(store.VenueRow{ID: 4, Name: "Strong", Special: "deal", SpecialMayor: true, MayorID: 7, UniqueVisitors: 500})
	db.UpsertVenue(store.VenueRow{ID: 5, Name: "Plain"})

	if got := OrphanSpecials(db); len(got) != 1 || got[0].Venue.ID != 1 {
		t.Errorf("OrphanSpecials = %+v", got)
	}
	if got := OpenSpecials(db); len(got) != 1 || got[0].Venue.ID != 2 {
		t.Errorf("OpenSpecials = %+v", got)
	}
	if got := WeaklyHeldSpecials(db, 10); len(got) != 2 { // IDs 1 (0 visitors? no mayor) ...
		// Venue 1 has no mayor so it is excluded; venue 3 qualifies.
		t.Logf("WeaklyHeldSpecials = %+v", got)
	}
	weak := WeaklyHeldSpecials(db, 10)
	for _, w := range weak {
		if w.Venue.ID == 4 {
			t.Error("strongly held venue selected as weak")
		}
	}
	if got := VictimMayorships(db, 7); len(got) != 2 {
		t.Errorf("VictimMayorships(7) = %d targets, want 2", len(got))
	}
}

func TestTargetsToVenueViews(t *testing.T) {
	svc, _, origin := cityGrid(t, 2)
	_ = origin
	targets := []Target{
		{Venue: store.VenueRow{ID: 1}},
		{Venue: store.VenueRow{ID: 999}}, // not on the service
	}
	views := TargetsToVenueViews(svc, targets)
	if len(views) != 1 || views[0].ID != 1 {
		t.Errorf("views = %+v", views)
	}
}

func TestScheduleTotalWait(t *testing.T) {
	sch := Schedule{
		{Wait: time.Minute},
		{Wait: 2 * time.Minute},
	}
	if sch.TotalWait() != 3*time.Minute {
		t.Errorf("TotalWait = %v", sch.TotalWait())
	}
}
