// Package attack implements the automated location-cheating machinery
// of §3.3–§3.4: a check-in schedule planner that keeps inside the
// cheater-code envelope (5-minute intervals under one mile, scaled
// intervals beyond — "if D > 1 mile, we let T = D * 5 minutes"), the
// semiautomatic virtual-tour tool of Fig 3.5 ("move 500 yards to the
// west" → nearest venue), an executor that spoofs the device GPS per
// stop, and the venue-profile target analysis that picks high-value
// victims from crawled data.
package attack

import (
	"errors"
	"fmt"
	"time"

	"locheat/internal/device"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
)

// ErrNoVenue is returned when a tour step finds no venue near the
// target location.
var ErrNoVenue = errors.New("attack: no venue near target location")

// Stop is one scheduled check-in.
type Stop struct {
	Venue    lbsn.VenueID
	Location geo.Point
	// Wait is how long to idle before this check-in, as computed by
	// the §3.3 interval rule.
	Wait time.Duration
}

// Schedule is an ordered check-in plan.
type Schedule []Stop

// TotalWait sums the schedule's idle time.
func (s Schedule) TotalWait() time.Duration {
	var total time.Duration
	for _, st := range s {
		total += st.Wait
	}
	return total
}

// PlannerConfig carries the §3.3 pacing rule parameters.
type PlannerConfig struct {
	// BaseInterval is the wait for hops under BaseDistance (paper: 5
	// minutes under 1 mile).
	BaseInterval time.Duration
	// BaseDistance in meters (paper: 1 mile).
	BaseDistance float64
	// SameVenueCooldown guards repeat visits (paper: 1 hour).
	SameVenueCooldown time.Duration
}

// DefaultPlannerConfig returns the paper's operating point.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{
		BaseInterval:      5 * time.Minute,
		BaseDistance:      geo.MetersPerMile,
		SameVenueCooldown: time.Hour,
	}
}

// Plan converts an ordered venue list into a schedule whose waits obey
// the interval rule: Wait = BaseInterval when the hop is under
// BaseDistance, else BaseInterval × (distance / BaseDistance). Repeat
// visits to a venue within the cooldown get their wait raised to the
// cooldown. The first stop has zero wait.
func Plan(cfg PlannerConfig, venues []lbsn.VenueView) Schedule {
	if cfg.BaseInterval <= 0 {
		cfg = DefaultPlannerConfig()
	}
	sch := make(Schedule, 0, len(venues))
	lastSeen := make(map[lbsn.VenueID]time.Duration, len(venues))
	var elapsed time.Duration
	for i, v := range venues {
		var wait time.Duration
		if i > 0 {
			wait = hopWait(cfg, venues[i-1].Location, v.Location)
		}
		if at, seen := lastSeen[v.ID]; seen {
			if since := elapsed + wait - at; since < cfg.SameVenueCooldown {
				wait += cfg.SameVenueCooldown - since
			}
		}
		elapsed += wait
		lastSeen[v.ID] = elapsed
		sch = append(sch, Stop{Venue: v.ID, Location: v.Location, Wait: wait})
	}
	return sch
}

// hopWait is the §3.3 interval rule for a single hop.
func hopWait(cfg PlannerConfig, from, to geo.Point) time.Duration {
	d := from.DistanceMeters(to)
	if d <= cfg.BaseDistance {
		return cfg.BaseInterval
	}
	return time.Duration(float64(cfg.BaseInterval) * d / cfg.BaseDistance)
}

// Move is one step of the semiautomatic tool: a direction and a
// distance ("move 500 yards to the west").
type Move struct {
	BearingDeg     float64
	DistanceMeters float64
}

// RightTurnTour builds the Fig 3.5 move sequence: start heading north,
// keep turning right, with a fixed step length (the paper used 0.005°,
// ~550 m in latitude / ~450 m in longitude).
func RightTurnTour(steps int, stepMeters float64) []Move {
	moves := make([]Move, steps)
	bearing := 0.0 // north
	for i := range moves {
		moves[i] = Move{BearingDeg: bearing, DistanceMeters: stepMeters}
		bearing += 90 // keep turning right
		if bearing >= 360 {
			bearing -= 360
		}
	}
	return moves
}

// PlanTour resolves a move sequence into venues: from the start point,
// each move sets a target location and the closest venue to it is
// selected (skipping the venue just visited so the tour advances). It
// returns the venue sequence plus the intended target points — the
// cross marks of Fig 3.5.
func PlanTour(svc *lbsn.Service, start geo.Point, moves []Move) ([]lbsn.VenueView, []geo.Point, error) {
	venues := make([]lbsn.VenueView, 0, len(moves)+1)
	targets := make([]geo.Point, 0, len(moves)+1)

	v, ok := svc.NearestVenue(start)
	if !ok {
		return nil, nil, fmt.Errorf("plan tour start %s: %w", start, ErrNoVenue)
	}
	venues = append(venues, v)
	targets = append(targets, start)
	pos := v.Location

	for i, m := range moves {
		target := pos.Destination(m.BearingDeg, m.DistanceMeters)
		targets = append(targets, target)
		// Nearest venue to the target; if it is the venue we're
		// standing at, take the next-closest within a generous radius.
		next, ok := svc.NearestVenue(target)
		if !ok {
			return nil, nil, fmt.Errorf("plan tour step %d: %w", i, ErrNoVenue)
		}
		if next.ID == venues[len(venues)-1].ID {
			// Don't stand still: take the next-closest distinct venue
			// within a generous radius. If none exists (degenerate
			// density), accept the repeat — Plan stretches the wait
			// past the same-venue cooldown.
			for _, cand := range svc.NearbyVenues(target, 2*m.DistanceMeters+500, 8) {
				if cand.ID != next.ID {
					next = cand
					break
				}
			}
		}
		venues = append(venues, next)
		pos = next.Location
	}
	return venues, targets, nil
}

// StopResult is the outcome of one executed stop.
type StopResult struct {
	Stop   Stop
	Result lbsn.CheckinResult
}

// Report summarizes an executed schedule.
type Report struct {
	Stops    []StopResult
	Accepted int
	Denied   int
	Points   int
	Badges   []string
	Mayors   int // mayorships won during the run
	Specials []string
}

// Cheater executes schedules against a service by spoofing the device
// GPS to each stop's coordinates — the emulator method the paper used.
// The sleeper paces the schedule; on a simulated clock the waits are
// instantaneous.
type Cheater struct {
	svc     *lbsn.Service
	user    lbsn.UserID
	gps     *device.FakeGPS
	client  *device.Client
	sleeper simclock.Sleeper
}

// NewCheater builds the attack rig for a user.
func NewCheater(svc *lbsn.Service, user lbsn.UserID, sleeper simclock.Sleeper) *Cheater {
	gps := device.NewFakeGPS()
	return &Cheater{
		svc:     svc,
		user:    user,
		gps:     gps,
		client:  device.NewClient(svc, user, gps),
		sleeper: sleeper,
	}
}

// Execute runs the schedule: wait, point the fake GPS at the stop,
// check in. Denied stops are recorded, not fatal — the attacker learns
// the envelope from them.
func (c *Cheater) Execute(sch Schedule) (Report, error) {
	var rep Report
	for _, stop := range sch {
		if stop.Wait > 0 {
			c.sleeper.Sleep(stop.Wait)
		}
		c.gps.Set(stop.Location)
		res, err := c.client.CheckIn(stop.Venue)
		if err != nil {
			return rep, fmt.Errorf("execute stop at venue %d: %w", stop.Venue, err)
		}
		rep.Stops = append(rep.Stops, StopResult{Stop: stop, Result: res})
		if res.Accepted {
			rep.Accepted++
			rep.Points += res.PointsEarned
			rep.Badges = append(rep.Badges, res.NewBadges...)
			if res.BecameMayor {
				rep.Mayors++
			}
			if res.SpecialUnlocked != "" {
				rep.Specials = append(rep.Specials, res.SpecialUnlocked)
			}
		} else {
			rep.Denied++
		}
	}
	return rep, nil
}

// MayorshipCampaign checks in at every target venue once a day for
// `days` consecutive days (the E1 recipe generalized to a venue set),
// pacing within each day by the planner rule. It returns the per-day
// reports and the number of target venues held as mayor at the end.
func (c *Cheater) MayorshipCampaign(cfg PlannerConfig, venues []lbsn.VenueView, days int) ([]Report, int, error) {
	if cfg.BaseInterval <= 0 {
		cfg = DefaultPlannerConfig()
	}
	reports := make([]Report, 0, days)
	sch := Plan(cfg, venues)
	// The day boundary must itself obey the travel envelope: the hop
	// from the day's last venue back to tomorrow's first can be longer
	// than the leftover day when targets span the country.
	var loopWait time.Duration
	if len(venues) > 1 {
		loopWait = hopWait(cfg, venues[len(venues)-1].Location, venues[0].Location)
	}
	for day := 0; day < days; day++ {
		rep, err := c.Execute(sch)
		if err != nil {
			return reports, 0, fmt.Errorf("campaign day %d: %w", day, err)
		}
		reports = append(reports, rep)
		rest := 24*time.Hour - sch.TotalWait()
		if rest < loopWait {
			rest = loopWait
		}
		if rest < cfg.SameVenueCooldown {
			rest = cfg.SameVenueCooldown // tomorrow revisits today's venues
		}
		c.sleeper.Sleep(rest)
	}
	held := 0
	for _, v := range venues {
		if c.svc.Mayor(v.ID) == c.user {
			held++
		}
	}
	return reports, held, nil
}

// Venue-profile analysis (§3.4) ------------------------------------------

// Target is a venue selected by profile analysis, with the reason.
type Target struct {
	Venue  store.VenueRow
	Reason string
}

// OrphanSpecials returns venues offering a special with no current
// mayor — "it is relatively easy to become the mayor of these venues"
// (the paper found ~1000).
func OrphanSpecials(db *store.DB) []Target {
	rows := db.Venues(func(v store.VenueRow) bool {
		return v.Special != "" && v.MayorID == 0
	})
	out := make([]Target, len(rows))
	for i, r := range rows {
		out[i] = Target{Venue: r, Reason: "special with no mayor"}
	}
	return out
}

// OpenSpecials returns venues whose special does not require the
// mayorship — "much easier to obtain; it's difficult to find such
// information without crawling the venue profiles."
func OpenSpecials(db *store.DB) []Target {
	rows := db.Venues(func(v store.VenueRow) bool {
		return v.Special != "" && !v.SpecialMayor
	})
	out := make([]Target, len(rows))
	for i, r := range rows {
		out[i] = Target{Venue: r, Reason: "special without mayorship requirement"}
	}
	return out
}

// WeaklyHeldSpecials returns venues with a mayor-only special whose
// visitor base is thin (≤ maxVisitors unique visitors), i.e. the
// mayorship is "less competitive".
func WeaklyHeldSpecials(db *store.DB, maxVisitors int) []Target {
	rows := db.Venues(func(v store.VenueRow) bool {
		return v.Special != "" && v.MayorID != 0 && v.UniqueVisitors <= maxVisitors
	})
	out := make([]Target, len(rows))
	for i, r := range rows {
		out[i] = Target{Venue: r, Reason: fmt.Sprintf("special held with <= %d visitors", maxVisitors)}
	}
	return out
}

// VictimMayorships returns the venues a victim user is mayor of — the
// §3.4 mayorship-denial attack's target list.
func VictimMayorships(db *store.DB, victim uint64) []Target {
	rows := db.Venues(func(v store.VenueRow) bool { return v.MayorID == victim })
	out := make([]Target, len(rows))
	for i, r := range rows {
		out[i] = Target{Venue: r, Reason: fmt.Sprintf("victim %d holds the mayorship", victim)}
	}
	return out
}

// TargetsToVenueViews resolves crawled targets against the live
// service for execution (crawled venue IDs equal service IDs — the
// enumerable-ID weakness again).
func TargetsToVenueViews(svc *lbsn.Service, targets []Target) []lbsn.VenueView {
	out := make([]lbsn.VenueView, 0, len(targets))
	for _, t := range targets {
		if v, ok := svc.Venue(lbsn.VenueID(t.Venue.ID)); ok {
			out = append(out, v)
		}
	}
	return out
}
