package lbsn

import (
	"sort"
	"time"
)

// BadgeSpec defines one badge: a name, the user-visible description,
// and the criterion evaluated against the user's activity state after
// every valid check-in. Badges are awarded at most once.
type BadgeSpec struct {
	Name        string
	Description string
	Earned      func(s *userState, now time.Time) bool
}

// userState is the per-user activity bookkeeping that badge criteria
// and mayorship tracking read. It exists only for users whose
// check-ins flow through the live pipeline; bulk-loaded synthetic
// users carry pre-computed totals instead.
type userState struct {
	distinctVenues map[VenueID]struct{}
	// checkinDays holds the distinct UTC day numbers with at least one
	// valid check-in, ascending.
	checkinDays []int
	// monthCounts counts valid check-ins per "YYYY-MM" month.
	monthCounts map[string]int
	// venueTimes holds recent valid check-in times per venue (capped)
	// for the Local badge.
	venueTimes map[VenueID][]time.Time
	// recentTimes holds the trailing valid check-in times (capped) for
	// the Crunked badge.
	recentTimes []time.Time
	validTotal  int
}

func newUserState() *userState {
	return &userState{
		distinctVenues: make(map[VenueID]struct{}),
		monthCounts:    make(map[string]int),
		venueTimes:     make(map[VenueID][]time.Time),
	}
}

const (
	stateVenueTimesCap  = 8
	stateRecentTimesCap = 8
)

// observe records a valid check-in into the state.
func (s *userState) observe(venue VenueID, at time.Time) {
	s.validTotal++
	s.distinctVenues[venue] = struct{}{}

	day := dayNumber(at)
	i := sort.SearchInts(s.checkinDays, day)
	if i == len(s.checkinDays) || s.checkinDays[i] != day {
		s.checkinDays = append(s.checkinDays, 0)
		copy(s.checkinDays[i+1:], s.checkinDays[i:])
		s.checkinDays[i] = day
	}

	s.monthCounts[at.UTC().Format("2006-01")]++

	times := append(s.venueTimes[venue], at)
	if len(times) > stateVenueTimesCap {
		times = times[len(times)-stateVenueTimesCap:]
	}
	s.venueTimes[venue] = times

	s.recentTimes = append(s.recentTimes, at)
	if len(s.recentTimes) > stateRecentTimesCap {
		s.recentTimes = s.recentTimes[len(s.recentTimes)-stateRecentTimesCap:]
	}
}

// consecutiveDaysEndingAt returns the length of the run of consecutive
// check-in days ending at the day containing `at`.
func (s *userState) consecutiveDaysEndingAt(at time.Time) int {
	day := dayNumber(at)
	i := sort.SearchInts(s.checkinDays, day)
	if i == len(s.checkinDays) || s.checkinDays[i] != day {
		return 0
	}
	run := 1
	for j := i - 1; j >= 0 && s.checkinDays[j] == s.checkinDays[j+1]-1; j-- {
		run++
	}
	return run
}

// dayNumber maps an instant to its UTC day index.
func dayNumber(t time.Time) int {
	return int(t.UTC().Unix() / 86400)
}

// DefaultBadges returns the Foursquare-era badge set the paper's
// experiments encountered. The "Adventurer" badge text is quoted from
// §3.1 ("Adventurer: You've checked into 10 different venues!"); the
// §2.1 examples — "30 check-ins in a month", "checked into 10
// different venues" — map to Super User and Adventurer.
func DefaultBadges() []BadgeSpec {
	return []BadgeSpec{
		{
			Name:        "Newbie",
			Description: "Your first check-in!",
			Earned: func(s *userState, _ time.Time) bool {
				return s.validTotal >= 1
			},
		},
		{
			Name:        "Adventurer",
			Description: "You've checked into 10 different venues!",
			Earned: func(s *userState, _ time.Time) bool {
				return len(s.distinctVenues) >= 10
			},
		},
		{
			Name:        "Explorer",
			Description: "You've checked into 25 different venues!",
			Earned: func(s *userState, _ time.Time) bool {
				return len(s.distinctVenues) >= 25
			},
		},
		{
			Name:        "Superstar",
			Description: "You've checked into 50 different venues!",
			Earned: func(s *userState, _ time.Time) bool {
				return len(s.distinctVenues) >= 50
			},
		},
		{
			Name:        "Super User",
			Description: "30 check-ins in a month!",
			Earned: func(s *userState, now time.Time) bool {
				return s.monthCounts[now.UTC().Format("2006-01")] >= 30
			},
		},
		{
			Name:        "Bender",
			Description: "Checked in 4 days in a row!",
			Earned: func(s *userState, now time.Time) bool {
				return s.consecutiveDaysEndingAt(now) >= 4
			},
		},
		{
			Name:        "Local",
			Description: "Checked in at the same place 3 times in a week!",
			Earned: func(s *userState, now time.Time) bool {
				weekAgo := now.Add(-7 * 24 * time.Hour)
				for _, times := range s.venueTimes {
					n := 0
					for _, t := range times {
						if !t.Before(weekAgo) {
							n++
						}
					}
					if n >= 3 {
						return true
					}
				}
				return false
			},
		},
		{
			Name:        "Crunked",
			Description: "4 check-ins in one night!",
			Earned: func(s *userState, now time.Time) bool {
				windowStart := now.Add(-12 * time.Hour)
				n := 0
				for _, t := range s.recentTimes {
					if !t.Before(windowStart) {
						n++
					}
				}
				return n >= 4
			},
		},
	}
}
