// Quarantine: the service-side half of the §4 → §2.3 feedback loop.
// The paper's detection signals only matter if flagged cheaters are
// acted on; this file gives the Service an access-control state
// (quarantined users have every check-in denied until an expiry) and a
// QuarantinePolicy that closes the loop automatically — it watches the
// stream pipeline's alert feed and quarantines any user whose alert
// volume crosses a threshold. Expiry is read off the service clock, so
// under simclock the whole loop is deterministic and testable without
// sleeps.
package lbsn

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"locheat/internal/obs"
	"locheat/internal/simclock"
	"locheat/internal/store"
)

// Quarantine sources recorded on entries, so operators can tell a
// manual ban from a policy trigger.
const (
	QuarantineSourceManual = "manual"
	QuarantineSourcePolicy = "policy"
)

// quarantineEntry is the internal record of one active quarantine.
type quarantineEntry struct {
	until  time.Time
	reason string
	source string
	since  time.Time
}

// QuarantineView is the public snapshot of an active quarantine.
type QuarantineView struct {
	UserID UserID    `json:"userId"`
	Since  time.Time `json:"since"`
	Until  time.Time `json:"until"`
	Reason string    `json:"reason"`
	Source string    `json:"source"`
}

// QuarantineStats counts quarantine activity for the stats surface.
type QuarantineStats struct {
	// Active is the number of currently quarantined users.
	Active int `json:"active"`
	// Issued counts Quarantine calls (manual and policy).
	Issued int `json:"issued"`
	// Released counts quarantines lifted early via Unquarantine
	// (lazy expiry is not a release — it is not an operator action).
	Released int `json:"released"`
	// DeniedCheckins counts check-ins refused because of quarantine.
	DeniedCheckins int `json:"deniedCheckins"`
}

// QuarantineChange is one quarantine transition, as delivered to
// change listeners: a user entered quarantine (Active, with the full
// record) or left it early (not Active). Lazy expiry is not a change —
// every node's clock expires entries on its own.
type QuarantineChange struct {
	UserID UserID
	Active bool
	// Record is the installed state when Active (the same shape the
	// snapshot and the cluster wire carry); zero otherwise.
	Record store.QuarantineRecord
	// Trace is the trace ID of the alert that triggered the transition,
	// when that check-in was head-sampled (internal/trace); empty for
	// manual quarantines and unsampled events. Observability freight
	// only — it rides the broadcast wire so remote nodes can link the
	// quarantine back to the originating trace.
	Trace string
}

// Quarantine denies the user's check-ins for d from now. A second call
// extends or shortens the window (last writer wins). The user must
// exist; the reason is surfaced in check-in denials and the admin list.
func (s *Service) Quarantine(id UserID, d time.Duration, reason, source string) error {
	return s.QuarantineTraced(id, d, reason, source, "")
}

// QuarantineTraced is Quarantine carrying the trace ID of the alert
// that triggered it (the quarantine policy's path); the ID flows to
// change listeners and onto the broadcast wire unmodified.
func (s *Service) QuarantineTraced(id UserID, d time.Duration, reason, source, traceID string) error {
	if d <= 0 {
		return fmt.Errorf("quarantine user %d: non-positive duration %s", id, d)
	}
	s.mu.Lock()
	if _, ok := s.users[id]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("quarantine: user %d: %w", id, ErrUserNotFound)
	}
	now := s.clock.Now()
	e := quarantineEntry{
		until:  now.Add(d),
		reason: reason,
		source: source,
		since:  now,
	}
	s.quarantined[id] = e
	s.quarantinesIssued++
	notify, listeners := s.onQuarantineChange, s.quarChangeListeners
	s.mu.Unlock()
	fireQuarantineChanges(notify, listeners, []QuarantineChange{{
		UserID: id, Active: true, Record: e.record(id), Trace: traceID,
	}})
	return nil
}

// record converts the internal entry to the wire/snapshot shape.
func (e quarantineEntry) record(id UserID) store.QuarantineRecord {
	return store.QuarantineRecord{
		UserID: uint64(id),
		Since:  e.since,
		Until:  e.until,
		Reason: e.reason,
		Source: e.source,
	}
}

// Unquarantine lifts a quarantine early; reports whether one was
// active.
func (s *Service) Unquarantine(id UserID) bool {
	s.mu.Lock()
	e, ok := s.quarantined[id]
	active := ok && e.until.After(s.clock.Now())
	delete(s.quarantined, id)
	if ok {
		s.quarantinesReleased++
	}
	notify, listeners := s.onQuarantineChange, s.quarChangeListeners
	s.mu.Unlock()
	if ok {
		fireQuarantineChanges(notify, listeners, []QuarantineChange{{UserID: id, Active: false}})
	}
	return active
}

// SetQuarantineListener installs fn to run after every change to the
// quarantine set (issue, lift, restore). It is called outside the
// service lock, so it may call back into the quarantine API — the
// daemon's snapshot persistence reads QuarantineRecords from it. A nil
// fn disables notification.
func (s *Service) SetQuarantineListener(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onQuarantineChange = fn
}

// AddQuarantineChangeListener registers fn to receive every quarantine
// transition with its detail — the seam the cluster's broadcast tier
// hangs off. Listeners run outside the service lock, in registration
// order, on the goroutine that made the change; they must not block
// (hand off to a queue, as the broadcaster does). Unlike
// SetQuarantineListener this is a fan-out: every registered listener
// fires.
func (s *Service) AddQuarantineChangeListener(fn func(QuarantineChange)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quarChangeListeners = append(s.quarChangeListeners, fn)
}

// fireQuarantineChanges delivers changes to the legacy no-arg listener
// (once) and every change listener (per change). Callers must have
// released the service lock.
func fireQuarantineChanges(notify func(), listeners []func(QuarantineChange), changes []QuarantineChange) {
	if len(changes) == 0 {
		return
	}
	if notify != nil {
		notify()
	}
	for _, fn := range listeners {
		for _, ch := range changes {
			fn(ch)
		}
	}
}

// QuarantineRecords exports the active quarantine set (for users
// matched by filter; nil matches all) as store records — the format
// both the on-disk snapshot and the cluster handoff bundle carry.
// Expired entries are skipped, not reaped (this is a read path).
func (s *Service) QuarantineRecords(filter func(UserID) bool) []store.QuarantineRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	now := s.clock.Now()
	var out []store.QuarantineRecord
	for id, e := range s.quarantined {
		if !e.until.After(now) {
			continue
		}
		if filter != nil && !filter(id) {
			continue
		}
		out = append(out, store.QuarantineRecord{
			UserID: uint64(id),
			Since:  e.since,
			Until:  e.until,
			Reason: e.reason,
			Source: e.source,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UserID < out[j].UserID })
	return out
}

// RestoreQuarantines installs previously exported quarantine records —
// the snapshot reload on restart and the receiving half of a cluster
// handoff. Unlike Quarantine it does not require the user to exist
// locally (a handed-off user may live in a peer's world) and does not
// count toward Issued. Records expired at the service clock are
// dropped; when a record collides with an active local entry the later
// Until wins (the stricter of the two verdicts). Returns how many
// records were installed.
func (s *Service) RestoreQuarantines(recs []store.QuarantineRecord) int {
	s.mu.Lock()
	now := s.clock.Now()
	var changes []QuarantineChange
	for _, r := range recs {
		if !r.Until.After(now) {
			continue
		}
		id := UserID(r.UserID)
		if e, ok := s.quarantined[id]; ok && e.until.After(r.Until) {
			continue
		}
		e := quarantineEntry{
			until:  r.Until,
			reason: r.Reason,
			source: r.Source,
			since:  r.Since,
		}
		s.quarantined[id] = e
		changes = append(changes, QuarantineChange{UserID: id, Active: true, Record: e.record(id)})
	}
	notify, listeners := s.onQuarantineChange, s.quarChangeListeners
	s.mu.Unlock()
	fireQuarantineChanges(notify, listeners, changes)
	return len(changes)
}

// SetQuarantineRecord installs rec unconditionally — last writer wins,
// even when rec SHORTENS an active window. This is the cluster
// broadcast's apply path: the LWW order is decided by the broadcast
// tier's versioning, so the service must not second-guess it the way
// RestoreQuarantines' keep-the-stricter merge (right for snapshots and
// handoffs, where collisions are unordered) would. Expired records are
// dropped; reports whether the record was installed.
func (s *Service) SetQuarantineRecord(rec store.QuarantineRecord) bool {
	s.mu.Lock()
	if !rec.Until.After(s.clock.Now()) {
		s.mu.Unlock()
		return false
	}
	id := UserID(rec.UserID)
	e := quarantineEntry{
		until:  rec.Until,
		reason: rec.Reason,
		source: rec.Source,
		since:  rec.Since,
	}
	s.quarantined[id] = e
	notify, listeners := s.onQuarantineChange, s.quarChangeListeners
	s.mu.Unlock()
	fireQuarantineChanges(notify, listeners, []QuarantineChange{{
		UserID: id, Active: true, Record: e.record(id),
	}})
	return true
}

// IsQuarantined reports whether the user is currently quarantined;
// expired entries read as not quarantined (and are reaped lazily by
// the write paths).
func (s *Service) IsQuarantined(id UserID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.quarantined[id]
	return ok && e.until.After(s.clock.Now())
}

// QuarantinedUsers lists active quarantines ordered by user ID,
// reaping expired entries on the way.
func (s *Service) QuarantinedUsers() []QuarantineView {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	out := make([]QuarantineView, 0, len(s.quarantined))
	for id, e := range s.quarantined {
		if !e.until.After(now) {
			delete(s.quarantined, id)
			continue
		}
		out = append(out, QuarantineView{
			UserID: id,
			Since:  e.since,
			Until:  e.until,
			Reason: e.reason,
			Source: e.source,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UserID < out[j].UserID })
	return out
}

// QuarantineStats snapshots quarantine counters.
func (s *Service) QuarantineStats() QuarantineStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	now := s.clock.Now()
	active := 0
	for _, e := range s.quarantined {
		if e.until.After(now) {
			active++
		}
	}
	return QuarantineStats{
		Active:         active,
		Issued:         s.quarantinesIssued,
		Released:       s.quarantinesReleased,
		DeniedCheckins: s.quarantineDenied,
	}
}

// RegisterObs exposes the quarantine tier on reg via read-through
// functions over the same counters QuarantineStats reports — the
// scrape surface and the stats API cannot disagree. Safe on a nil
// registry.
func (s *Service) RegisterObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("locheat_lbsn_quarantine_adds_total",
		"quarantines issued locally (manual and policy; remote installs are counted by the propagation histogram)",
		func() uint64 { return uint64(s.QuarantineStats().Issued) })
	reg.CounterFunc("locheat_lbsn_quarantine_releases_total",
		"quarantines lifted early via Unquarantine",
		func() uint64 { return uint64(s.QuarantineStats().Released) })
	reg.CounterFunc("locheat_lbsn_quarantine_denies_total",
		"check-ins denied because the user was quarantined",
		func() uint64 { return uint64(s.QuarantineStats().DeniedCheckins) })
	reg.GaugeFunc("locheat_lbsn_quarantine_active",
		"users currently quarantined",
		func() float64 { return float64(s.QuarantineStats().Active) })
}

// checkQuarantine is the CheckIn gate. Called with s.mu held; returns
// the denial detail when the user is quarantined, reaping the entry if
// it has expired.
func (s *Service) checkQuarantine(id UserID, now time.Time) (string, bool) {
	e, ok := s.quarantined[id]
	if !ok {
		return "", false
	}
	if !e.until.After(now) {
		delete(s.quarantined, id)
		return "", false
	}
	return fmt.Sprintf("quarantined until %s (%s: %s)",
		e.until.UTC().Format(time.RFC3339), e.source, e.reason), true
}

// QuarantinePolicyConfig tunes the automatic feedback loop. Zero
// values take defaults.
type QuarantinePolicyConfig struct {
	// Threshold is how many alerts inside Window trigger a quarantine
	// (default 5).
	Threshold int
	// Window is the sliding alert-counting window, in event time
	// (default 10m).
	Window time.Duration
	// Duration is how long a triggered quarantine lasts (default 1h).
	Duration time.Duration
	// IdleAfter drops a user's alert history after this much event time
	// without alerts, bounding the policy's own memory (default
	// 8×Window).
	IdleAfter time.Duration
}

func (c QuarantinePolicyConfig) withDefaults() QuarantinePolicyConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Minute
	}
	if c.Duration <= 0 {
		c.Duration = time.Hour
	}
	if c.IdleAfter <= 0 {
		c.IdleAfter = 8 * c.Window
	}
	return c
}

// QuarantinePolicy subscribes to the detector's alert feed and
// auto-quarantines users whose alert volume crosses the threshold —
// the §4 → §2.3 loop. Feed it alerts via Observe (or Run over a
// subscription channel); it calls Service.Quarantine when triggered.
// Counting is keyed off alert event time, deterministic under
// simclock. Safe for concurrent use.
type QuarantinePolicy struct {
	svc *Service
	cfg QuarantinePolicyConfig

	mu        sync.Mutex
	recent    map[UserID][]time.Time
	latest    time.Time
	lastSweep time.Time
	observed  uint64
	triggered uint64
}

// NewQuarantinePolicy builds a policy bound to svc.
func NewQuarantinePolicy(svc *Service, cfg QuarantinePolicyConfig) *QuarantinePolicy {
	return &QuarantinePolicy{
		svc:    svc,
		cfg:    cfg.withDefaults(),
		recent: make(map[UserID][]time.Time),
	}
}

// Observe feeds one alert into the policy. When the user's alert count
// inside the window reaches the threshold, the user is quarantined and
// their counting state reset (the next quarantine needs fresh
// evidence). Alerts for already-quarantined users are ignored:
// quarantine-denied claims still flow through the detectors (they are
// evidence, and journaled as such), and counting them would let a
// client that merely retries during quarantine extend it forever.
// Unknown users (an alert for a user the service never registered) are
// counted but the quarantine call's error is swallowed — the policy is
// advisory, not transactional.
func (p *QuarantinePolicy) Observe(a store.Alert) {
	user := UserID(a.UserID)
	if p.svc.IsQuarantined(user) {
		return
	}
	p.mu.Lock()
	p.observed++
	if a.At.After(p.latest) {
		p.latest = a.At
	}
	hist := simclock.SlideWindow(p.recent[user], a.At, p.cfg.Window)
	if len(hist) < p.cfg.Threshold {
		p.recent[user] = hist
		p.sweepLocked()
		p.mu.Unlock()
		return
	}
	delete(p.recent, user)
	p.triggered++
	p.mu.Unlock()

	// Quarantine outside the policy lock: Service.Quarantine takes the
	// service lock and may be contended with check-ins.
	reason := fmt.Sprintf("%d detector alerts within %s (last: %s)",
		p.cfg.Threshold, p.cfg.Window, a.Detector)
	// The triggering alert's trace ID (empty when unsampled) rides the
	// transition so remote nodes can link the quarantine to its trace.
	_ = p.svc.QuarantineTraced(user, p.cfg.Duration, reason, QuarantineSourcePolicy, a.Trace)
}

// sweepLocked drops users idle past IdleAfter, once per IdleAfter of
// event time. Caller holds p.mu.
func (p *QuarantinePolicy) sweepLocked() {
	if p.latest.Sub(p.lastSweep) < p.cfg.IdleAfter {
		return
	}
	p.lastSweep = p.latest
	cutoff := p.latest.Add(-p.cfg.IdleAfter)
	for u, hist := range p.recent {
		if len(hist) == 0 || hist[len(hist)-1].Before(cutoff) {
			delete(p.recent, u)
		}
	}
}

// Run drains a subscription channel into Observe; it returns when the
// channel closes (pipeline shutdown). Typical wiring:
//
//	go policy.Run(pipeline.Subscribe(256))
func (p *QuarantinePolicy) Run(alerts <-chan store.Alert) {
	for a := range alerts {
		p.Observe(a)
	}
}

// QuarantinePolicyStats is the policy's counter snapshot.
type QuarantinePolicyStats struct {
	// Observed counts alerts fed into the policy.
	Observed uint64 `json:"observed"`
	// Triggered counts auto-quarantines issued.
	Triggered uint64 `json:"triggered"`
	// TrackedUsers is the current counting-state size (bounded by
	// IdleAfter eviction).
	TrackedUsers int `json:"trackedUsers"`
	// Threshold/Window/Duration echo the effective config.
	Threshold int           `json:"threshold"`
	Window    time.Duration `json:"window"`
	Duration  time.Duration `json:"duration"`
}

// Stats snapshots the policy counters.
func (p *QuarantinePolicy) Stats() QuarantinePolicyStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return QuarantinePolicyStats{
		Observed:     p.observed,
		Triggered:    p.triggered,
		TrackedUsers: len(p.recent),
		Threshold:    p.cfg.Threshold,
		Window:       p.cfg.Window,
		Duration:     p.cfg.Duration,
	}
}
