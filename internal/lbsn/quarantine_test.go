package lbsn

import (
	"strings"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/simclock"
	"locheat/internal/store"
)

func quarantineFixture(t *testing.T) (*Service, *simclock.Simulated, UserID, VenueID) {
	t.Helper()
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := New(DefaultConfig(), clock, nil)
	user := svc.RegisterUser("suspect", "", "Lincoln")
	loc := geo.Point{Lat: 40.8136, Lon: -96.7026}
	venue, err := svc.AddVenue("Coffee", "", "Lincoln", loc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return svc, clock, user, venue
}

func checkin(t *testing.T, svc *Service, user UserID, venue VenueID) CheckinResult {
	t.Helper()
	view, ok := svc.Venue(venue)
	if !ok {
		t.Fatalf("venue %d missing", venue)
	}
	res, err := svc.CheckIn(CheckinRequest{UserID: user, VenueID: venue, Reported: view.Location})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestQuarantineExpiryUnderSimclock is the deterministic expiry
// contract: deny while active, allow again the instant the window has
// passed — no sleeps, only clock advancement.
func TestQuarantineExpiryUnderSimclock(t *testing.T) {
	svc, clock, user, venue := quarantineFixture(t)

	if svc.IsQuarantined(user) {
		t.Fatal("fresh user quarantined")
	}
	if err := svc.Quarantine(user, time.Hour, "manual test", QuarantineSourceManual); err != nil {
		t.Fatal(err)
	}
	if !svc.IsQuarantined(user) {
		t.Fatal("quarantine not active")
	}

	// Active: check-ins are denied with the reason and detail.
	res := checkin(t, svc, user, venue)
	if res.Accepted || res.Reason != DenyQuarantined {
		t.Fatalf("quarantined check-in not denied: %+v", res)
	}
	if !strings.Contains(res.Detail, "manual test") {
		t.Fatalf("denial detail missing reason: %q", res.Detail)
	}
	if res.PointsEarned != 0 {
		t.Fatal("quarantined check-in earned points")
	}

	// One second before expiry: still denied.
	clock.Advance(time.Hour - time.Second)
	if res := checkin(t, svc, user, venue); res.Reason != DenyQuarantined {
		t.Fatalf("denied reason %q just before expiry", res.Reason)
	}

	// Past expiry: quarantine lifts without any explicit call. The next
	// check-in must run the normal pipeline (here: denied by the 1 h
	// same-venue cooldown, NOT by quarantine — proving the gate opened).
	clock.Advance(2 * time.Second)
	if svc.IsQuarantined(user) {
		t.Fatal("quarantine outlived its expiry")
	}
	if res := checkin(t, svc, user, venue); res.Reason == DenyQuarantined {
		t.Fatal("expired quarantine still denying")
	}

	// §4.3: every denied attempt still counted.
	uview, _ := svc.User(user)
	if uview.TotalCheckins != 3 {
		t.Fatalf("total check-ins %d, want 3", uview.TotalCheckins)
	}
	qs := svc.QuarantineStats()
	if qs.Issued != 1 || qs.DeniedCheckins != 2 || qs.Active != 0 {
		t.Fatalf("stats %+v", qs)
	}
}

func TestUnquarantineAndList(t *testing.T) {
	svc, clock, user, venue := quarantineFixture(t)
	other := svc.RegisterUser("bystander", "", "Lincoln")

	if err := svc.Quarantine(user, time.Hour, "listed", QuarantineSourcePolicy); err != nil {
		t.Fatal(err)
	}
	list := svc.QuarantinedUsers()
	if len(list) != 1 || list[0].UserID != user || list[0].Source != QuarantineSourcePolicy {
		t.Fatalf("list %+v", list)
	}
	if want := clock.Now().Add(time.Hour); !list[0].Until.Equal(want) {
		t.Fatalf("until %s, want %s", list[0].Until, want)
	}
	if svc.IsQuarantined(other) {
		t.Fatal("quarantine leaked to another user")
	}

	if !svc.Unquarantine(user) {
		t.Fatal("unquarantine found nothing")
	}
	if svc.Unquarantine(user) {
		t.Fatal("double unquarantine reported active")
	}
	if res := checkin(t, svc, user, venue); res.Reason == DenyQuarantined {
		t.Fatal("manual release not honoured")
	}
	if got := len(svc.QuarantinedUsers()); got != 0 {
		t.Fatalf("list not empty after release: %d", got)
	}

	// Unknown users and bad durations are rejected.
	if err := svc.Quarantine(9999, time.Hour, "", QuarantineSourceManual); err == nil {
		t.Fatal("unknown user quarantined")
	}
	if err := svc.Quarantine(user, 0, "", QuarantineSourceManual); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestQuarantinePolicyThreshold(t *testing.T) {
	svc, _, user, _ := quarantineFixture(t)
	pol := NewQuarantinePolicy(svc, QuarantinePolicyConfig{
		Threshold: 3,
		Window:    10 * time.Minute,
		Duration:  time.Hour,
	})
	t0 := simclock.Epoch()
	alert := func(u UserID, at time.Time) store.Alert {
		return store.Alert{Detector: "speed", UserID: uint64(u), At: at, Detail: "x"}
	}

	// Two alerts inside the window: below threshold.
	pol.Observe(alert(user, t0))
	pol.Observe(alert(user, t0.Add(time.Minute)))
	if svc.IsQuarantined(user) {
		t.Fatal("quarantined below threshold")
	}
	// A third alert, but outside the window relative to the first: the
	// sliding window must have forgotten alert one... still 3 within
	// window? Third at t0+11m: window covers (t0+1m, t0+11m] -> alerts
	// 2 and 3 only.
	pol.Observe(alert(user, t0.Add(11*time.Minute)))
	if svc.IsQuarantined(user) {
		t.Fatal("stale alerts counted toward threshold")
	}
	// Two more inside the window: now 3 within 10 minutes -> trigger.
	pol.Observe(alert(user, t0.Add(12*time.Minute)))
	if svc.IsQuarantined(user) {
		t.Fatal("premature trigger")
	}
	pol.Observe(alert(user, t0.Add(13*time.Minute)))
	if !svc.IsQuarantined(user) {
		t.Fatal("threshold crossed but user not quarantined")
	}

	st := pol.Stats()
	if st.Triggered != 1 || st.Observed != 5 {
		t.Fatalf("policy stats %+v", st)
	}

	// Alerts for unknown users must not panic or quarantine anyone.
	pol.Observe(alert(777, t0.Add(14*time.Minute)))
	if svc.IsQuarantined(777) {
		t.Fatal("unknown user quarantined")
	}
}

func TestQuarantinePolicyStateBounded(t *testing.T) {
	svc, _, _, _ := quarantineFixture(t)
	pol := NewQuarantinePolicy(svc, QuarantinePolicyConfig{
		Threshold: 100, // never trigger
		Window:    time.Minute,
		IdleAfter: 4 * time.Minute,
	})
	t0 := simclock.Epoch()
	// 50 distinct users alert once in the first minute.
	for i := 0; i < 50; i++ {
		pol.Observe(store.Alert{UserID: uint64(i + 10), At: t0.Add(time.Duration(i) * time.Second)})
	}
	// A single user keeps alerting for 20 more minutes of event time.
	for m := 1; m <= 20; m++ {
		pol.Observe(store.Alert{UserID: 5, At: t0.Add(time.Duration(m) * time.Minute)})
	}
	if st := pol.Stats(); st.TrackedUsers > 2 {
		t.Fatalf("policy retains %d users; idle eviction failed", st.TrackedUsers)
	}
}

func TestQuarantinePolicyRunOverChannel(t *testing.T) {
	svc, _, user, venue := quarantineFixture(t)
	pol := NewQuarantinePolicy(svc, QuarantinePolicyConfig{Threshold: 2, Window: time.Hour, Duration: time.Hour})
	ch := make(chan store.Alert, 4)
	done := make(chan struct{})
	go func() { pol.Run(ch); close(done) }()

	t0 := simclock.Epoch()
	ch <- store.Alert{UserID: uint64(user), At: t0}
	ch <- store.Alert{UserID: uint64(user), At: t0.Add(time.Minute)}
	close(ch)
	<-done

	if !svc.IsQuarantined(user) {
		t.Fatal("channel-fed policy did not quarantine")
	}
	if res := checkin(t, svc, user, venue); res.Reason != DenyQuarantined {
		t.Fatalf("check-in after auto-quarantine: %+v", res)
	}
}

// TestQuarantineChangeListenerFanOut covers the per-transition change
// feed the cluster broadcast tier hangs off: every issue, lift and
// restore reaches every registered listener with its detail, alongside
// the legacy no-arg listener.
func TestQuarantineChangeListenerFanOut(t *testing.T) {
	svc, clock, user, _ := quarantineFixture(t)
	var got []QuarantineChange
	legacy := 0
	svc.SetQuarantineListener(func() { legacy++ })
	svc.AddQuarantineChangeListener(func(ch QuarantineChange) { got = append(got, ch) })
	second := 0
	svc.AddQuarantineChangeListener(func(QuarantineChange) { second++ })

	if err := svc.Quarantine(user, time.Hour, "fanout", QuarantineSourceManual); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Active || got[0].UserID != user {
		t.Fatalf("issue change = %+v", got)
	}
	rec := got[0].Record
	if rec.UserID != uint64(user) || rec.Reason != "fanout" || !rec.Until.After(clock.Now()) {
		t.Fatalf("issue record = %+v", rec)
	}

	if !svc.Unquarantine(user) {
		t.Fatal("unquarantine reported inactive")
	}
	if len(got) != 2 || got[1].Active || got[1].UserID != user {
		t.Fatalf("lift change = %+v", got)
	}

	n := svc.RestoreQuarantines([]store.QuarantineRecord{{
		UserID: uint64(user),
		Since:  clock.Now(),
		Until:  clock.Now().Add(time.Hour),
		Reason: "restored",
		Source: QuarantineSourcePolicy,
	}})
	if n != 1 {
		t.Fatalf("restored %d, want 1", n)
	}
	if len(got) != 3 || !got[2].Active || got[2].Record.Reason != "restored" {
		t.Fatalf("restore change = %+v", got)
	}
	if legacy != 3 || second != 3 {
		t.Fatalf("legacy fired %d, second listener %d, want 3 each", legacy, second)
	}
}
